package pv

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCompletePublicAPI(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	doc := MustParseDocument(exampleS)
	ext, inserted, err := schema.Complete(doc)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 2 {
		t.Errorf("inserted = %d, Figure 3 needs 2", inserted)
	}
	if err := schema.Validate(ext); err != nil {
		t.Errorf("completion must validate: %v", err)
	}
	if ext.Content() != doc.Content() {
		t.Error("completion changed character data")
	}
	// The original document is untouched.
	if doc.String() != exampleS {
		t.Error("Complete mutated its input")
	}
	// Completing w must fail.
	if _, _, err := schema.Complete(MustParseDocument(exampleW)); err == nil {
		t.Error("completing a non-PV document must fail")
	}
}

func TestCompleteXSDSchema(t *testing.T) {
	// The XSD path supports the same operations end to end.
	src := `
<schema>
  <element name="book">
    <complexType>
      <sequence>
        <element name="title" type="string"/>
        <element name="chapter" minOccurs="1" maxOccurs="unbounded">
          <complexType mixed="true">
            <sequence>
              <element name="note" type="string" minOccurs="0" maxOccurs="unbounded"/>
            </sequence>
          </complexType>
        </element>
      </sequence>
    </complexType>
  </element>
</schema>`
	schema, err := CompileXSD(src, "book", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An incomplete encoding: raw chapter text, no <chapter> markup yet.
	res, err := schema.CheckString(`<book><title>T</title>chapter one text</book>`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PotentiallyValid || res.Valid {
		t.Errorf("res = %+v", res)
	}
	ext, _, err := schema.Complete(MustParseDocument(`<book><title>T</title>chapter one text</book>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Validate(ext); err != nil {
		t.Errorf("completion must validate: %v\n%s", err, ext)
	}
	if !strings.Contains(ext.String(), "<chapter>chapter one text</chapter>") {
		t.Errorf("completion = %s", ext)
	}
	// A hard violation: <title> after a <chapter>.
	res, err = schema.CheckString(`<book><chapter>x</chapter><title>T</title></book>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.PotentiallyValid {
		t.Error("title after chapter must be a hard violation")
	}
}

func TestParseXSDErrors(t *testing.T) {
	if _, err := ParseXSD(`<oops/>`); err == nil {
		t.Error("bad XSD accepted")
	}
	if _, err := CompileXSD(`<schema><element name="a" type="string"/></schema>`, "ghost", Options{}); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestCompileDTDFileErrors(t *testing.T) {
	if _, err := CompileDTDFile("/nonexistent/schema.dtd", "r", Options{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ParseDocumentFile("/nonexistent/doc.xml"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCompleteDiffAndBytesPublicAPI(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})

	ext, d, err := schema.CompleteDiff(MustParseDocument(exampleS))
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 2 || len(d.Insertions) != 2 {
		t.Errorf("diff: %+v", d)
	}
	if d.Completed != ext.String() {
		t.Error("diff serialization disagrees with the completed document")
	}
	if d.Insertions[0].Name != "d" || !strings.HasPrefix(d.Insertions[0].Path, "/r/a[0]") {
		t.Errorf("first insertion: %+v", d.Insertions[0])
	}

	// The byte path produces the identical diff.
	outBytes, bd, err := schema.CompleteBytes([]byte(exampleS))
	if err != nil {
		t.Fatal(err)
	}
	if string(outBytes) != d.Completed || bd.Inserted != 2 {
		t.Errorf("byte path diverges: %s", outBytes)
	}

	// Already-valid identity through the public API: zero insertions,
	// byte-identical serialization.
	valid := `<r><a><c>x</c><d></d></a></r>`
	outBytes, bd, err = schema.CompleteBytes([]byte(valid))
	if err != nil {
		t.Fatal(err)
	}
	if bd.Inserted != 0 || string(outBytes) != valid {
		t.Errorf("already-valid: inserted %d, out %s", bd.Inserted, outBytes)
	}

	// Not potentially valid and malformed inputs fail.
	if _, _, err := schema.CompleteBytes([]byte(`<r><a><b>x</b><e></e><c>y</c></a></r>`)); err == nil {
		t.Error("not-PV input must fail")
	}
	if _, _, err := schema.CompleteBytes([]byte(`<r><a>`)); err == nil {
		t.Error("malformed input must fail")
	}
}

func TestEngineCompleteBatchPublicAPI(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 4})
	fig, err := eng.CompileDTD(Figure1DTD, "r", Options{})
	if err != nil {
		t.Fatal(err)
	}
	play, err := eng.CompileDTD(PlayDTD, "play", Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := []Doc{
		{ID: "fig", Content: exampleS},
		{ID: "valid", Content: `<r><a><c>x</c><d></d></a></r>`},
		{ID: "routed", Content: `<play><title>t</title></play>`, SchemaRef: play.Ref()[:12]},
		{ID: "notpv", Content: `<r><a><b>x</b><e></e><c>y</c></a></r>`},
	}
	results, stats := eng.CompleteBatch(fig, docs, true)
	if len(results) != 4 {
		t.Fatalf("results: %d", len(results))
	}
	if r := results[0]; !r.Completed || r.Inserted != 2 || len(r.Insertions) != 2 {
		t.Errorf("fig: %+v", r)
	}
	if r := results[1]; !r.AlreadyValid || r.Output != docs[1].Content {
		t.Errorf("valid: %+v", r)
	}
	if r := results[2]; !r.Completed || r.Inserted == 0 {
		t.Errorf("routed: %+v", r)
	}
	if r := results[3]; r.Completed || r.Detail == "" {
		t.Errorf("notpv: %+v", r)
	}
	if stats.Docs != 4 || stats.Inserted < 3 {
		t.Errorf("stats: %+v", stats)
	}

	// Single-document synchronous form.
	one := eng.Complete(nil, Doc{ID: "fig", Content: exampleS, SchemaRef: fig.Ref()[:12]}, false)
	if !one.Completed || one.Inserted != 2 || one.Insertions != nil {
		t.Errorf("Complete: %+v", one)
	}

	// The handler exposes the /complete routes.
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/complete", "application/json",
		strings.NewReader(`{"schema":"<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>","root":"r","documents":[{"id":"x","content":"<r>loose text</r>"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"inserted": 1`) {
		t.Errorf("POST /complete: %d %s", resp.StatusCode, body)
	}
}

func TestCompleteBytesPreservesProlog(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	in := []byte(`<?xml version="1.0"?><!-- note -->` + exampleS)
	out, d, err := schema.CompleteBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(out), `<?xml version="1.0"?><!-- note -->`) {
		t.Errorf("prolog dropped: %s", out)
	}
	if d.Inserted != 2 || d.Completed != string(out) {
		t.Errorf("diff: %+v", d)
	}
}
