package pv

import (
	"strings"
	"testing"
)

func TestCompletePublicAPI(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	doc := MustParseDocument(exampleS)
	ext, inserted, err := schema.Complete(doc)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 2 {
		t.Errorf("inserted = %d, Figure 3 needs 2", inserted)
	}
	if err := schema.Validate(ext); err != nil {
		t.Errorf("completion must validate: %v", err)
	}
	if ext.Content() != doc.Content() {
		t.Error("completion changed character data")
	}
	// The original document is untouched.
	if doc.String() != exampleS {
		t.Error("Complete mutated its input")
	}
	// Completing w must fail.
	if _, _, err := schema.Complete(MustParseDocument(exampleW)); err == nil {
		t.Error("completing a non-PV document must fail")
	}
}

func TestCompleteXSDSchema(t *testing.T) {
	// The XSD path supports the same operations end to end.
	src := `
<schema>
  <element name="book">
    <complexType>
      <sequence>
        <element name="title" type="string"/>
        <element name="chapter" minOccurs="1" maxOccurs="unbounded">
          <complexType mixed="true">
            <sequence>
              <element name="note" type="string" minOccurs="0" maxOccurs="unbounded"/>
            </sequence>
          </complexType>
        </element>
      </sequence>
    </complexType>
  </element>
</schema>`
	schema, err := CompileXSD(src, "book", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An incomplete encoding: raw chapter text, no <chapter> markup yet.
	res, err := schema.CheckString(`<book><title>T</title>chapter one text</book>`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PotentiallyValid || res.Valid {
		t.Errorf("res = %+v", res)
	}
	ext, _, err := schema.Complete(MustParseDocument(`<book><title>T</title>chapter one text</book>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Validate(ext); err != nil {
		t.Errorf("completion must validate: %v\n%s", err, ext)
	}
	if !strings.Contains(ext.String(), "<chapter>chapter one text</chapter>") {
		t.Errorf("completion = %s", ext)
	}
	// A hard violation: <title> after a <chapter>.
	res, err = schema.CheckString(`<book><chapter>x</chapter><title>T</title></book>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.PotentiallyValid {
		t.Error("title after chapter must be a hard violation")
	}
}

func TestParseXSDErrors(t *testing.T) {
	if _, err := ParseXSD(`<oops/>`); err == nil {
		t.Error("bad XSD accepted")
	}
	if _, err := CompileXSD(`<schema><element name="a" type="string"/></schema>`, "ghost", Options{}); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestCompileDTDFileErrors(t *testing.T) {
	if _, err := CompileDTDFile("/nonexistent/schema.dtd", "r", Options{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ParseDocumentFile("/nonexistent/doc.xml"); err == nil {
		t.Error("missing file accepted")
	}
}
