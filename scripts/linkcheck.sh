#!/usr/bin/env bash
# linkcheck.sh — fail on dead relative links in the repo's markdown docs.
#
# Scans README.md and docs/*.md for [text](target) links, ignores absolute
# URLs and pure anchors, and verifies every relative target (file or
# directory, optional #fragment stripped) exists relative to the linking
# file. CI runs this as the docs gate.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
files=(README.md docs/*.md)

for file in "${files[@]}"; do
  [ -f "$file" ] || continue
  dir=$(dirname "$file")
  # Extract link targets: capture (...) groups following ](, one per line,
  # then drop an optional quoted markdown title ( [x](path "Title") ).
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"         # strip fragment
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "$file: dead link -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//')
done

if [ "$fail" -ne 0 ]; then
  echo "linkcheck: dead relative links found" >&2
  exit 1
fi
echo "linkcheck: all relative links resolve"
