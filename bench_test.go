package pv

// testing.B benchmarks, one family per EXPERIMENTS.md table (X1-X6). The
// cmd/pvbench tool prints the same series as aligned tables; these benches
// expose them to `go test -bench` with allocation tracking.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/earley"
	"repro/internal/editor"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/validator"
)

// buildPlayDoc generates a stripped play document of roughly n δ_T tokens.
func buildPlayDoc(b *testing.B, target int, strip float64) (*core.Schema, *dom.Node, int) {
	b.Helper()
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	rng := rand.New(rand.NewSource(1))
	doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8})
	for len(grammar.DeltaT(doc)) < target {
		more := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8})
		for _, c := range more.Children {
			if c.Kind == dom.ElementNode && c.Name == "act" {
				doc.Append(c.Clone())
			}
		}
	}
	if strip > 0 {
		gen.Strip(rng, doc, strip)
	}
	return schema, doc, len(grammar.DeltaT(doc))
}

// BenchmarkPVLinear is X1 (Theorem 4): streaming whole-document check,
// fixed DTD, growing document. ns/op divided by tokens must stay flat.
func BenchmarkPVLinear(b *testing.B) {
	for _, target := range []int{1000, 4000, 16000, 64000} {
		schema, doc, n := buildPlayDoc(b, target, 0.2)
		src := doc.String()
		b.Run(fmt.Sprintf("tokens=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n)) // bytes column ≈ tokens/sec scale
			for i := 0; i < b.N; i++ {
				if err := schema.CheckStream(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPVTree is X1's tree-mode twin: CheckDocument on a parsed tree.
func BenchmarkPVTree(b *testing.B) {
	for _, target := range []int{1000, 16000} {
		schema, doc, n := buildPlayDoc(b, target, 0.2)
		b.Run(fmt.Sprintf("tokens=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := schema.CheckDocument(doc); v != nil {
					b.Fatal(v.Reason)
				}
			}
		})
	}
}

// BenchmarkEarleyBaseline is X2 (Section 3.3): the generic Earley parser on
// G' versus the ECRecognizer on identical inputs.
func BenchmarkEarleyBaseline(b *testing.B) {
	d := dtd.MustParse(dtd.Figure1)
	schema := core.MustCompile(d, "r", core.Options{})
	g, err := grammar.BuildECFG(d, "r", true)
	if err != nil {
		b.Fatal(err)
	}
	ear := earley.New(g.ToCFG())
	rng := rand.New(rand.NewSource(2))
	for _, target := range []int{16, 64, 256} {
		doc := gen.GenValid(rng, d, "r", gen.DocOptions{MaxDepth: 6})
		for len(grammar.DeltaT(doc)) < target {
			more := gen.GenValid(rng, d, "r", gen.DocOptions{MaxDepth: 6})
			for _, c := range more.Children {
				doc.Append(c.Clone())
			}
		}
		gen.Strip(rng, doc, 0.3)
		tokens := grammar.DeltaT(doc)
		b.Run(fmt.Sprintf("earley/tokens=%d", len(tokens)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !ear.Recognize(tokens) {
					b.Fatal("earley rejected")
				}
			}
		})
		b.Run(fmt.Sprintf("ecrecognizer/tokens=%d", len(tokens)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := schema.CheckDocument(doc); v != nil {
					b.Fatal(v.Reason)
				}
			}
		})
	}
}

// BenchmarkDepthBound is X3 (Theorem 4's k^D factor) on the PV-strong T2.
func BenchmarkDepthBound(b *testing.B) {
	d := dtd.MustParse(dtd.T2)
	schema := core.MustCompile(d, "a", core.Options{MaxDepth: 64})
	for _, depth := range []int{4, 8, 16, 32} {
		symbols := make([]core.Symbol, depth+1)
		for i := range symbols {
			symbols[i] = core.Elem("b")
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := schema.NewRecognizerDepth("a", depth)
				if !r.Recognize(symbols) {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// BenchmarkDTDSize is X4: fixed document size, growing random DTD.
func BenchmarkDTDSize(b *testing.B) {
	for _, m := range []int{8, 32, 128} {
		rng := rand.New(rand.NewSource(int64(m)))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: m, Class: gen.ClassWeak})
		schema := core.MustCompile(d, "e0", core.Options{})
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
		for len(grammar.DeltaT(doc)) < 4000 {
			more := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
			if len(more.Children) == 0 {
				break
			}
			for _, c := range more.Children {
				doc.Append(c.Clone())
			}
		}
		gen.Strip(rng, doc, 0.2)
		b.Run(fmt.Sprintf("m=%d/k=%d", m, d.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := schema.CheckDocument(doc); v != nil {
					b.Fatal(v.Reason)
				}
			}
		})
	}
}

// BenchmarkUpdateGuards is X5 (Theorem 2, Proposition 3): the incremental
// guards versus a full recheck on a large document.
func BenchmarkUpdateGuards(b *testing.B) {
	schema, doc, _ := buildPlayDoc(b, 64000, 0)
	var line, text *dom.Node
	doc.Walk(func(x *dom.Node) bool {
		if line == nil && x.Kind == dom.ElementNode && x.Name == "line" &&
			len(x.Children) > 0 && x.Children[0].Kind == dom.TextNode {
			line = x
		}
		if text == nil && x.Kind == dom.TextNode {
			text = x
		}
		return line == nil || text == nil
	})
	b.Run("text-update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := schema.CanUpdateText(text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := schema.CanInsertText(line); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("markup-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := schema.CanInsertMarkup(line, 0, 1, "stagedir"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("markup-delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := schema.CanDeleteMarkup(line); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := schema.CheckDocument(doc); v != nil {
				b.Fatal(v.Reason)
			}
		}
	})
}

// BenchmarkStripClosure is X6 (Theorem 2): strip-then-check round trips.
func BenchmarkStripClosure(b *testing.B) {
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	rng := rand.New(rand.NewSource(4))
	base := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8})
	for _, frac := range []float64{0.3, 0.7} {
		b.Run(fmt.Sprintf("strip=%.1f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doc := base.Clone()
				gen.Strip(rng, doc, frac)
				if v := schema.CheckDocument(doc); v != nil {
					b.Fatal("Theorem 2 violated: ", v.Reason)
				}
			}
		})
	}
}

// BenchmarkAblationNaive compares the production recognizer against the
// paper-literal NaiveRecognizer (core.NaiveRecognizer): the soundness and
// completeness corrections cost essentially nothing.
func BenchmarkAblationNaive(b *testing.B) {
	d := dtd.MustParse(dtd.Figure1)
	schema := core.MustCompile(d, "r", core.Options{})
	content := []core.Symbol{
		core.Elem("b"), core.Elem("c"), core.Sigma, core.Elem("e"),
	}
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !schema.NewRecognizer("a").Recognize(content) {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("paper-literal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !schema.NewNaiveRecognizer("a", 8).Recognize(content) {
				b.Fatal("rejected")
			}
		}
	})
}

// BenchmarkComplete measures extension synthesis (internal/complete) on
// stripped play documents — the constructive Figure 3 operation at scale.
func BenchmarkComplete(b *testing.B) {
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	comp := complete.New(schema)
	rng := rand.New(rand.NewSource(9))
	base := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8})
	gen.Strip(rng, base, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := comp.Complete(base); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEditorSession measures guarded-editing throughput: the paper's
// motivating workload — alternating text and markup operations, each
// pre-checked incrementally.
func BenchmarkEditorSession(b *testing.B) {
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	rng := rand.New(rand.NewSource(17))
	base := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8})
	gen.Strip(rng, base, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := base.Clone()
		sess, err := editor.NewSession(schema, doc)
		if err != nil {
			b.Fatal(err)
		}
		opRng := rand.New(rand.NewSource(int64(i)))
		names := d.Names()
		for op := 0; op < 50; op++ {
			elems := doc.Elements()
			target := elems[opRng.Intn(len(elems))]
			nc := len(target.Children)
			x := opRng.Intn(nc + 1)
			y := x + opRng.Intn(nc-x+1)
			// Outcomes don't matter; the guard cost does.
			_, _ = sess.InsertMarkup(target, x, y, names[opRng.Intn(len(names))])
			_, _ = sess.InsertText(target, opRng.Intn(len(target.Children)+1), "txt")
		}
	}
}

// BenchmarkCompile measures schema compilation (reachability closure + DAG
// construction) across DTD sizes — the precomputation the paper assumes.
func BenchmarkCompile(b *testing.B) {
	for _, m := range []int{8, 64, 256} {
		rng := rand.New(rand.NewSource(int64(m)))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: m, Class: gen.ClassWeak})
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(d, "e0", core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParseDocument measures the XML substrate alone (lexer + DOM).
func BenchmarkParseDocument(b *testing.B) {
	_, doc, n := buildPlayDoc(b, 16000, 0)
	src := doc.String()
	b.Run(fmt.Sprintf("tokens=%d", n), func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, err := dom.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkValidate measures the full-validity baseline on a valid
// document, for the X2 comparison's third column.
func BenchmarkValidate(b *testing.B) {
	d := dtd.MustParse(dtd.Play)
	val := validator.MustNew(d, "play")
	_, doc, n := buildPlayDoc(b, 16000, 0)
	b.Run(fmt.Sprintf("tokens=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := val.Validate(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
