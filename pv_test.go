package pv

import (
	"strings"
	"testing"
)

const (
	exampleW = `<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>`
	exampleS = `<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`
	exampleE = `<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`
)

func TestPublicAPIQuickstart(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	// Example 1, the paper's headline distinction.
	res, err := schema.CheckString(exampleW)
	if err != nil {
		t.Fatal(err)
	}
	if res.PotentiallyValid || res.Valid {
		t.Errorf("w: %+v, want neither valid nor potentially valid", res)
	}
	if !strings.Contains(res.Detail, "not potentially valid") {
		t.Errorf("w detail: %q", res.Detail)
	}
	res, err = schema.CheckString(exampleS)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PotentiallyValid || res.Valid {
		t.Errorf("s: %+v, want potentially valid but not valid", res)
	}
	res, err = schema.CheckString(exampleE)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PotentiallyValid || !res.Valid {
		t.Errorf("extension: %+v, want both", res)
	}
}

func TestSchemaInfoAndClass(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	if schema.Class() != NonRecursive {
		t.Errorf("class = %v", schema.Class())
	}
	info := schema.Info()
	for _, want := range []string{"root <r>", "7 elements", "k=19", "non-recursive"} {
		if !strings.Contains(info, want) {
			t.Errorf("Info() = %q missing %q", info, want)
		}
	}
	if got := MustCompileDTD(T1DTD, "a", Options{}).Class(); got != PVStrongRecursive {
		t.Errorf("T1 class = %v", got)
	}
	if got := MustCompileDTD(InlineDTD, "p", Options{}).Class(); got != PVWeakRecursive {
		t.Errorf("Inline class = %v", got)
	}
}

func TestDTDLintAndAccessors(t *testing.T) {
	d, err := ParseDTD(Figure1DTD)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Names(); len(got) != 7 || got[0] != "r" {
		t.Errorf("Names = %v", got)
	}
	if d.Size() != 19 {
		t.Errorf("Size = %d", d.Size())
	}
	if lint := d.Lint(); len(lint) != 0 {
		t.Errorf("Lint = %v", lint)
	}
	bad, err := ParseDTD(`<!ELEMENT a ((b, c) | (b, d))> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	if lint := bad.Lint(); len(lint) == 0 {
		t.Error("expected determinism lint")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileDTD(`<!ELEMENT`, "a", Options{}); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := CompileDTD(`<!ELEMENT a EMPTY>`, "nope", Options{}); err == nil {
		t.Error("bad root not reported")
	}
}

func TestCheckStream(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	if err := schema.CheckStream(exampleS); err != nil {
		t.Errorf("stream on s: %v", err)
	}
	if err := schema.CheckStream(exampleW); err == nil {
		t.Error("stream on w must fail")
	}
}

func TestValidate(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	if err := schema.ValidateString(exampleE); err != nil {
		t.Errorf("extension must validate: %v", err)
	}
	if err := schema.ValidateString(exampleS); err == nil {
		t.Error("s must not fully validate")
	}
}

func TestReachAPI(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	if !schema.Reachable("a", "e") || schema.Reachable("e", "a") {
		t.Error("Reachable wrong")
	}
	if !schema.CanInsertText("d") || schema.CanInsertText("e") {
		t.Error("CanInsertText wrong")
	}
	if schema.CanInsertText("ghost") {
		t.Error("undeclared element cannot take text")
	}
}

func TestDocumentNavigation(t *testing.T) {
	doc := MustParseDocument(exampleS)
	root := doc.Root()
	if root.Name() != "r" || !root.IsElement() {
		t.Fatal("root wrong")
	}
	b := root.Find("a/b")
	if b == nil || b.Name() != "b" {
		t.Fatal("Find(a/b) failed")
	}
	if got := b.Child(0).Text(); got != "A quick brown" {
		t.Errorf("text = %q", got)
	}
	if b.Parent().Name() != "a" {
		t.Error("Parent wrong")
	}
	if root.Find("a/zzz") != nil {
		t.Error("Find of missing path must be nil")
	}
	if doc.Depth() != 3 {
		t.Errorf("Depth = %d", doc.Depth())
	}
	if !strings.Contains(doc.Content(), "quick brown fox") {
		t.Errorf("Content = %q", doc.Content())
	}
}

func TestGuardedSessionPublicAPI(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	doc := MustParseDocument(`<r>A quick brown fox jumps over a lazy dog</r>`)
	sess, err := schema.NewSession(doc)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	a, err := sess.InsertMarkup(root, 0, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Mark up the phrase as in Example 1's s: b around the text, then try
	// the Example-1-w mistake.
	if _, err := sess.InsertMarkup(a, 0, 1, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.InsertText(a, 1, " fox jumps over a lazy"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.InsertMarkup(a, 1, 2, "c"); err != nil {
		t.Fatal(err)
	}
	// The Example 1 mistake — <e/> between the real <b> and the real <c> —
	// is refused by the guard.
	if _, err := sess.InsertMarkup(a, 1, 1, "e"); err == nil {
		t.Error("inserting <e/> between <b> and <c> must be refused (Example 1's w)")
	}
	// The correct placement at the end (Example 1's s) is allowed.
	if _, err := sess.InsertMarkup(a, 2, 2, "e"); err != nil {
		t.Errorf("inserting <e/> at the end must be allowed: %v", err)
	}
	applied, refused := sess.Stats()
	if applied != 5 || refused != 1 {
		t.Errorf("stats = applied %d, refused %d; want 5, 1", applied, refused)
	}
	if err := sess.Undo(); !err {
		t.Error("undo failed")
	}
}

func TestSessionRefusedOnBadStart(t *testing.T) {
	schema := MustCompileDTD(Figure1DTD, "r", Options{})
	doc := MustParseDocument(exampleW)
	if _, err := schema.NewSession(doc); err == nil {
		t.Error("session on non-PV document must fail")
	}
}

func TestAllFixturesCompile(t *testing.T) {
	fixtures := []struct{ src, root string }{
		{Figure1DTD, "r"}, {T1DTD, "a"}, {T2DTD, "a"},
		{InlineDTD, "p"}, {PlayDTD, "play"}, {ArticleDTD, "article"},
		{TEILiteDTD, "TEI"},
	}
	for _, f := range fixtures {
		if _, err := CompileDTD(f.src, f.root, Options{}); err != nil {
			t.Errorf("fixture %s: %v", f.root, err)
		}
	}
}
