package pv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// TestCheckBytesMatchesCheckString: the public byte path agrees with the
// string path on verdicts and on lexical errors.
func TestCheckBytesMatchesCheckString(t *testing.T) {
	s := MustCompileDTD(dtd.Figure1, "r", Options{})
	for _, xml := range []string{
		`<r><a><c>x</c><d></d></a></r>`,
		`<r><a><b>x</b><e></e><c>y</c></a></r>`,
		`<r><a><b>quick</b><c>fox</c> dog<e/></a></r>`,
		`<r><a>`,
		`garbage<`,
	} {
		sr, serr := s.CheckString(xml)
		br, berr := s.CheckBytes([]byte(xml))
		if (serr == nil) != (berr == nil) {
			t.Fatalf("%q: error mismatch %v vs %v", xml, serr, berr)
		}
		if sr != br {
			t.Errorf("%q: result mismatch %+v vs %+v", xml, sr, br)
		}
		streamErr := s.CheckStream(xml)
		streamBytesErr := s.CheckStreamBytes([]byte(xml))
		if (streamErr == nil) != (streamBytesErr == nil) {
			t.Errorf("%q: stream mismatch %v vs %v", xml, streamErr, streamBytesErr)
		}
	}
}

// TestFileChecker covers the reused-buffer file path: multiple files,
// shrinking and growing sizes, verdicts matching CheckString.
func TestFileChecker(t *testing.T) {
	s := MustCompileDTD(dtd.Figure1, "r", Options{})
	dir := t.TempDir()
	files := map[string]string{
		"valid.xml": `<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`,
		"notpv.xml": `<r><a><b>x</b><e></e><c>y</c></a></r>`,
		"tiny.xml":  `<r><a><c>x</c><d/></a></r>`,
		"bad.xml":   `<r><a>`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fc := s.NewFileChecker()
	for round := 0; round < 2; round++ { // second round exercises buffer reuse
		for name, content := range files {
			got, gotErr := fc.Check(filepath.Join(dir, name))
			want, wantErr := s.CheckString(content)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: error mismatch %v vs %v", name, gotErr, wantErr)
			}
			// Detail wording differs between the stream and tree paths (the
			// engine has the same property); the verdict bits must agree.
			if gotErr == nil && (got.PotentiallyValid != want.PotentiallyValid || got.Valid != want.Valid) {
				t.Errorf("%s: %+v vs %+v", name, got, want)
			}
			if gotErr == nil && !got.PotentiallyValid && got.Detail == "" {
				t.Errorf("%s: not-PV verdict without detail", name)
			}
			streamErr := fc.CheckStream(filepath.Join(dir, name))
			if (streamErr == nil) != (want.PotentiallyValid && wantErr == nil) {
				t.Errorf("%s: stream verdict %v, want pv=%t", name, streamErr, want.PotentiallyValid)
			}
		}
	}
	if _, err := fc.Check(filepath.Join(dir, "missing.xml")); err == nil {
		t.Error("missing file: want error")
	}
}

// TestSchemaRefRouting: engine-compiled schemas expose refs; a batch with
// per-document refs routes across schemas in one call.
func TestSchemaRefRouting(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2})
	fig, err := eng.CompileDTD(dtd.Figure1, "r", Options{})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := eng.CompileDTD(dtd.WeakRecursive, "p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Ref() == "" || weak.Ref() == "" {
		t.Fatalf("engine schemas must carry refs: %q, %q", fig.Ref(), weak.Ref())
	}
	if MustCompileDTD(dtd.Figure1, "r", Options{}).Ref() != "" {
		t.Fatal("non-engine schema must not carry a ref")
	}
	results, stats := eng.CheckBatch(fig, []Doc{
		{ID: "fig", Bytes: []byte(`<r><a><c>x</c><d></d></a></r>`)},
		{ID: "weak", Bytes: []byte(`<p>text <b>bold</b></p>`), SchemaRef: weak.Ref()[:12]},
	})
	if stats.Docs != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	for _, r := range results {
		if r.Err != nil || !r.PotentiallyValid {
			t.Errorf("%s: %+v", r.ID, r)
		}
	}

	// Self-routing with a nil default schema works for single checks and
	// batches alike (regression: this used to panic in Check).
	if r := eng.Check(nil, Doc{ID: "solo", Content: `<r><a><c>x</c><d></d></a></r>`, SchemaRef: fig.Ref()}); r.Err != nil || !r.PotentiallyValid {
		t.Errorf("nil-schema Check: %+v", r)
	}
	if r := eng.Check(nil, Doc{ID: "lost", Content: `<r></r>`}); r.Err == nil {
		t.Error("nil-schema Check without ref: want routing error")
	}
}

// TestCheckBytesLargeDoc sanity-checks the byte path on a larger document
// assembled from repeated fragments.
func TestCheckBytesLargeDoc(t *testing.T) {
	s := MustCompileDTD(dtd.Play, "play", Options{})
	var sb strings.Builder
	sb.WriteString(`<play><title>t</title><personae>`)
	for i := 0; i < 2000; i++ {
		sb.WriteString(`<persona>p</persona>`)
	}
	sb.WriteString(`</personae></play>`)
	if err := s.CheckStreamBytes([]byte(sb.String())); err != nil {
		t.Fatalf("large doc: %v", err)
	}
}
