// Package pv is a potential-validity toolkit for document-centric XML — a
// from-scratch Go reproduction of:
//
//	Ionut E. Iacob, Alex Dekhtyar, Michael I. Dekhtyar.
//	"On Potential Validity of Document-Centric XML Documents." ICDE 2006.
//
// An XML document w is *potentially valid* with respect to a DTD T and root
// element r if some extension of w — obtained by inserting matching tag
// pairs only, never deleting, renaming or reordering anything — is valid.
// Potential validity is what a document-centric XML editor needs to check
// while markup is being layered over pre-existing text: intermediate states
// are almost never valid, but they must stay completable.
//
// The package compiles a DTD into a Schema and offers:
//
//   - whole-document checking (the paper's Problem PV), in tree and
//     streaming form, in time linear in document size (Theorem 4);
//   - per-element content checking (Problem ECPV) via the paper's
//     ECRecognizer over a DAG model of the DTD, with the depth bound that
//     tames PV-strong recursive DTDs;
//   - O(1) incremental guards for editing operations (Theorem 2,
//     Proposition 3) and a guarded editing Session;
//   - full (standard) DTD validation, for when the encoding is finished;
//   - DTD analysis: recursion classification (non-recursive / PV-weak /
//     PV-strong), reachability, usability and determinism lint.
//
// Quick start:
//
//	schema, err := pv.CompileDTD(dtdSource, "r", pv.Options{})
//	...
//	res, err := schema.CheckString("<r><a><b>A quick brown</b>...</r>")
//	if res.PotentiallyValid { ... }
package pv

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/reach"
	"repro/internal/receipt"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// Options configures schema compilation.
type Options struct {
	// MaxDepth bounds the depth of hypothetical extension documents
	// considered when the DTD is PV-strong recursive (Section 4.3.1 of the
	// paper). Zero selects the default (16). Irrelevant for non-PV-strong
	// DTDs, where the checker is complete.
	MaxDepth int
	// IgnoreWhitespaceText makes whitespace-only text nodes invisible to
	// the potential-validity checker — convenient for pretty-printed
	// documents. Document-centric editing normally wants false.
	IgnoreWhitespaceText bool
	// AllowAnyRoot accepts any declared element as document root.
	AllowAnyRoot bool
	// DisableFastPath skips compiling the per-element content-model DFA
	// tables, so streaming checks run on the PV recognizer alone. Verdicts
	// are identical either way; the knob exists for apples-to-apples
	// benchmarking and as an operational escape hatch.
	DisableFastPath bool
}

// Class is the paper's DTD classification (Definitions 6-8).
type Class = reach.Class

// Re-exported classification constants.
const (
	NonRecursive      = reach.NonRecursive
	PVWeakRecursive   = reach.PVWeakRecursive
	PVStrongRecursive = reach.PVStrongRecursive
)

// Schema is a DTD compiled for potential-validity checking and validation.
type Schema struct {
	dtd   *dtd.DTD
	root  string
	core  *core.Schema
	valid *validator.Validator
	eng   *engine.Schema
}

// completer fetches a pooled completer from the engine artifact (every
// Schema carries one); return it with putCompleter. Completers memoize
// per-schema state that is expensive to rebuild, and the engine pool is
// shared by registry-cached schemas, so warm completers survive cache
// hits.
func (s *Schema) completer() *complete.Completer { return s.eng.Completer() }

// putCompleter returns a pooled completer.
func (s *Schema) putCompleter(c *complete.Completer) { s.eng.PutCompleter(c) }

// ParseDTD parses DTD source text (internal/external subset syntax).
func ParseDTD(src string) (*DTD, error) {
	d, err := dtd.Parse(src)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// DTD is a parsed Document Type Definition.
type DTD struct{ d *dtd.DTD }

// Names returns the declared element names in declaration order.
func (d *DTD) Names() []string { return d.d.Names() }

// String renders the DTD back in declaration syntax.
func (d *DTD) String() string { return d.d.String() }

// Size returns the paper's k measure: total element occurrences across
// content models plus one per declaration.
func (d *DTD) Size() int { return d.d.Size() }

// Lint reports structural problems: undeclared references and XML 1.0
// determinism violations. An empty slice means the DTD is clean.
func (d *DTD) Lint() []string { return d.d.Validate() }

// Compile prepares the DTD for checking against the given root element.
func (d *DTD) Compile(root string, opts Options) (*Schema, error) {
	c, err := core.Compile(d.d, root, core.Options{
		MaxDepth:             opts.MaxDepth,
		IgnoreWhitespaceText: opts.IgnoreWhitespaceText,
		AllowAnyRoot:         opts.AllowAnyRoot,
		DisableFastPath:      opts.DisableFastPath,
	})
	if err != nil {
		return nil, err
	}
	v, err := validator.New(d.d, root)
	if err != nil {
		return nil, err
	}
	return &Schema{dtd: d.d, root: root, core: c, valid: v, eng: engine.NewSchema(c, v)}, nil
}

// ParseXSD imports a W3C XML Schema (XSD) document, supported subset per
// internal/xsd, into the same representation as ParseDTD — the paper's
// Section 2 observation that potential validity only depends on the
// structural content model, whatever the schema language.
func ParseXSD(src string) (*DTD, error) {
	d, err := xsd.Parse(src)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// CompileXSD parses an XSD document and compiles it in one step.
func CompileXSD(src, root string, opts Options) (*Schema, error) {
	d, err := ParseXSD(src)
	if err != nil {
		return nil, err
	}
	return d.Compile(root, opts)
}

// CompileDTD parses and compiles in one step.
func CompileDTD(src, root string, opts Options) (*Schema, error) {
	d, err := ParseDTD(src)
	if err != nil {
		return nil, err
	}
	return d.Compile(root, opts)
}

// CompileDTDFile reads, parses and compiles a DTD file.
func CompileDTDFile(path, root string, opts Options) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return CompileDTD(string(data), root, opts)
}

// MustCompileDTD is CompileDTD that panics on error; for tests and
// examples.
func MustCompileDTD(src, root string, opts Options) *Schema {
	s, err := CompileDTD(src, root, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Root returns the designated root element.
func (s *Schema) Root() string { return s.root }

// Class returns the DTD's recursion classification.
func (s *Schema) Class() Class { return s.core.Class() }

// Result is the outcome of a potential-validity check.
type Result struct {
	// PotentiallyValid is the Problem PV verdict.
	PotentiallyValid bool
	// Valid is the standard validity verdict (Valid implies
	// PotentiallyValid).
	Valid bool
	// Detail explains the first potential-validity violation; empty when
	// PotentiallyValid.
	Detail string
}

// CheckString parses an XML string and checks it. The returned error covers
// lexical/well-formedness problems only; schema verdicts are in the Result.
func (s *Schema) CheckString(xml string) (Result, error) {
	doc, err := dom.Parse(xml)
	if err != nil {
		return Result{}, err
	}
	return s.checkRoot(doc.Root), nil
}

// CheckDocument checks a parsed document.
func (s *Schema) CheckDocument(doc *Document) Result { return s.checkRoot(doc.root) }

func (s *Schema) checkRoot(root *dom.Node) Result {
	res := Result{}
	if v := s.core.CheckDocument(root); v == nil {
		res.PotentiallyValid = true
	} else {
		res.Detail = v.Reason
	}
	if res.PotentiallyValid && s.valid.Validate(root) == nil {
		res.Valid = true
	}
	return res
}

// CheckBytes parses an XML document held as bytes and checks it, without
// ever copying the document into a string — the byte-path twin of
// CheckString. Verdicts are identical.
func (s *Schema) CheckBytes(xml []byte) (Result, error) {
	doc, err := dom.ParseBytes(xml)
	if err != nil {
		return Result{}, err
	}
	return s.checkRoot(doc.Root), nil
}

// CheckStream checks an XML string in a single streaming pass without
// building a tree — the recommended mode for large documents. It returns
// nil when the document is potentially valid.
func (s *Schema) CheckStream(xml string) error { return s.core.CheckStream(xml) }

// CheckStreamBytes is CheckStream on the zero-copy byte path: token names
// and data are subslices of xml, element names resolve through the
// schema's interned-name table, and an entity-free document is checked
// with no per-token allocation. The fastest way to check an mmap'd or
// pooled buffer.
func (s *Schema) CheckStreamBytes(xml []byte) error { return s.core.CheckStreamBytes(xml) }

// CheckReader is CheckStream over an io.Reader: the document is lexed
// through a fixed sliding window and never held in memory, so peak usage is
// O(element depth + window) — typically a few hundred KB — no matter the
// document size. Multi-GB files check at near-disk speed (bench X13); the
// verdict is identical to CheckStreamBytes over the same bytes. It returns
// nil when the document is potentially valid; the error otherwise explains
// the violation, well-formedness failure or read problem.
func (s *Schema) CheckReader(r io.Reader) error { return s.core.CheckReader(r) }

// Ref returns the schema's registry reference (a hex digest of source,
// kind, root and options) when the schema was compiled through an Engine,
// and "" otherwise. Documents in a mixed batch select their schema by this
// reference (any prefix of at least 8 hex digits).
func (s *Schema) Ref() string {
	if s.eng != nil {
		return s.eng.Ref
	}
	return ""
}

// FileChecker checks files one at a time through the byte path, reusing
// one read buffer (and one pooled streaming checker) across calls — file
// checking with one read syscall and no string round trip. Not safe for
// concurrent use; create one per goroutine.
type FileChecker struct {
	s   *Schema
	c   *core.StreamChecker
	buf []byte
}

// NewFileChecker returns a reusable file checker for the schema.
func (s *Schema) NewFileChecker() *FileChecker {
	return &FileChecker{s: s, c: s.core.NewStreamChecker()}
}

// read loads path into the checker's buffer, growing it only when a file
// exceeds every earlier size.
func (fc *FileChecker) read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	n := int(info.Size())
	if cap(fc.buf) < n {
		fc.buf = make([]byte, n)
	}
	fc.buf = fc.buf[:n]
	if _, err := io.ReadFull(f, fc.buf); err != nil {
		return nil, err
	}
	return fc.buf, nil
}

// Check reads and checks one file. The semantics mirror CheckString: the
// error covers I/O and lexical/well-formedness problems only, verdicts are
// in the Result.
func (fc *FileChecker) Check(path string) (Result, error) {
	data, err := fc.read(path)
	if err != nil {
		return Result{}, err
	}
	res := Result{}
	if err := fc.c.RunBytes(data); err != nil {
		if !core.IsViolation(err) {
			return Result{}, err
		}
		res.Detail = err.Error()
		return res, nil
	}
	res.PotentiallyValid = true
	doc, err := dom.ParseBytes(data)
	if err != nil {
		return Result{}, err
	}
	res.Valid = fc.s.valid.Validate(doc.Root) == nil
	return res, nil
}

// CheckStream streams one file through the byte path and returns the
// potential-validity verdict only (no tree parse, no full-validity bit) —
// the fastest per-file mode.
func (fc *FileChecker) CheckStream(path string) error {
	data, err := fc.read(path)
	if err != nil {
		return err
	}
	return fc.c.RunBytes(data)
}

// Validate runs standard (full) DTD validation: the check for finished
// encodings. It returns nil when the document is valid.
func (s *Schema) Validate(doc *Document) error { return s.valid.Validate(doc.root) }

// ValidateString parses and fully validates an XML string.
func (s *Schema) ValidateString(xml string) error { return s.valid.ValidateString(xml) }

// CanInsertText reports whether a new text node may be created under the
// named element in a potentially valid document — the O(1) check of
// Proposition 3.
func (s *Schema) CanInsertText(element string) bool {
	return s.core.LT.Has(element) && s.core.LT.ReachesPCDATA(element)
}

// Reachable reports whether element "to" may occur (at any depth) inside
// element "from" — the reachability lookup of Definition 5.
func (s *Schema) Reachable(from, to string) bool { return s.core.LT.Reachable(from, to) }

// ElementClass returns the recursion classification of one element.
func (s *Schema) ElementClass(name string) Class { return s.core.LT.ElementClass(name) }

// Complete synthesizes a valid extension of a potentially valid document —
// the constructive counterpart of Definition 3 (and of the paper's
// Figure 3, where two <d> insertions complete Example 1's s). It returns a
// fresh document (the input is untouched) and the number of elements
// inserted. It fails if the document is not potentially valid within the
// schema's depth bound. Completing an already-valid document is the
// identity: zero insertions and an unchanged serialization.
func (s *Schema) Complete(doc *Document) (*Document, int, error) {
	c := s.completer()
	ext, inserted, err := c.Complete(doc.root)
	s.putCompleter(c)
	if err != nil {
		return nil, 0, err
	}
	return &Document{root: ext}, inserted, nil
}

// Diff is the structured outcome of one completion: inserted count,
// per-insertion path/index/name records, and the completed document's
// serialization. See internal/diff for the path grammar.
type Diff = diff.Diff

// Insertion is one inserted element's path/position/name record inside a
// Diff.
type Insertion = diff.Insertion

// CompleteResult is the outcome of one batched completion (pv.Engine's
// CompleteBatch). Err covers lexical/well-formedness and routing problems;
// Detail explains a not-potentially-valid verdict; otherwise Output holds
// the completed document and Inserted/Insertions describe the edit.
type CompleteResult = engine.CompleteResult

// CompleteDiff completes doc and returns the structured diff alongside the
// completed document — the library twin of the engine's /complete routes.
// A Document holds the root subtree only, so the diff's serialization is
// root-level; CompleteBytes preserves prolog/epilog nodes too.
func (s *Schema) CompleteDiff(doc *Document) (*Document, *Diff, error) {
	c := s.completer()
	ext, nodes, err := c.CompleteTracked(doc.root)
	s.putCompleter(c)
	if err != nil {
		return nil, nil, err
	}
	return &Document{root: ext}, diff.Compute(ext, nodes), nil
}

// CompleteBytes parses an XML document held as bytes, completes it, and
// returns the completed serialization plus the structured diff — the
// byte-path completion entry. The output is serialized at document level,
// so prolog and epilog comments/PIs (including an XML declaration)
// survive. The returned error covers lexical/well-formedness problems and
// not-potentially-valid inputs.
func (s *Schema) CompleteBytes(xml []byte) ([]byte, *Diff, error) {
	parsed, err := dom.ParseBytes(xml)
	if err != nil {
		return nil, nil, err
	}
	c := s.completer()
	ext, nodes, err := c.CompleteTracked(parsed.Root)
	s.putCompleter(c)
	if err != nil {
		return nil, nil, err
	}
	parsed.Root = ext
	buf := parsed.AppendXML(nil)
	d := diff.ComputeDoc(ext, nodes, string(buf))
	return buf, d, nil
}

// Info summarizes the compiled schema for display.
func (s *Schema) Info() string {
	return fmt.Sprintf("root <%s>, %d elements, k=%d, class %s, depth bound %d",
		s.root, len(s.dtd.Order), s.dtd.Size(), s.Class(), s.core.EffectiveDepth())
}

// Engine is the concurrent checking front end: a schema registry that
// compiles sources once (keyed by content hash, root and options, under an
// LRU bound) plus a worker pool that fans batches of documents out over
// GOMAXPROCS-bounded workers, reusing per-worker streaming-checker state.
// It is the programmatic face of cmd/pvserve and the `pvcheck batch`
// subcommand. An Engine is safe for concurrent use.
type Engine struct{ e *engine.Engine }

// EngineConfig parameterizes NewEngine. The zero value is a good default:
// GOMAXPROCS workers, a 64-schema cache striped over 8 shards, both
// verdict bits computed, no disk cache.
type EngineConfig struct {
	// Workers bounds batch concurrency; <=0 selects GOMAXPROCS.
	Workers int
	// SchemaCacheSize bounds the compiled-schema store's total in-memory
	// capacity; <=0 selects 64.
	SchemaCacheSize int
	// SchemaCacheShards is the store's lock-stripe count; <=0 selects 8.
	// Concurrent compilation and ref-routing traffic contends per shard,
	// not on one mutex.
	SchemaCacheShards int
	// SchemaCacheDir enables the disk tier: compiled schemas persist as
	// content-addressed blobs under this directory, so later engines (and
	// process restarts) rehydrate them instead of recompiling. Empty
	// disables the tier.
	SchemaCacheDir string
	// PVOnly skips the full-validity bit, which needs a tree parse of each
	// potentially valid document — the fastest mode for firehose filtering.
	PVOnly bool
	// MaxDocBytes caps one document on the HTTP NDJSON stream routes
	// (/check/stream, /complete/stream); <=0 keeps the 64MB default. The
	// /check/raw route and CheckReader are never capped.
	MaxDocBytes int
	// StreamBufBytes is the sliding-window size of the bounded-memory
	// reader path (CheckReader, /check/raw); <=0 selects the 256KB default.
	StreamBufBytes int
	// JobWorkers bounds how many async jobs (SubmitBatch /
	// SubmitCompleteBatch) execute concurrently; each job's chunks still
	// share the engine-wide Workers bound. <=0 selects 2.
	JobWorkers int
	// JobQueueDepth bounds async jobs accepted but not yet running; a full
	// queue makes submission fail with ErrJobQueueFull. <=0 selects 64.
	JobQueueDepth int
	// JobResultTTL is how long a finished async job and its buffered
	// results are retained before reaping; <=0 selects 15 minutes.
	JobResultTTL time.Duration
	// VolatileJobs keeps async jobs in memory even when SchemaCacheDir is
	// set. By default a disk-backed engine records every submission in a
	// write-ahead log under <SchemaCacheDir>/jobs, so a restarted engine
	// re-serves finished jobs and re-runs interrupted ones.
	VolatileJobs bool
	// JobWALNoSync skips the per-submission fsync of the job write-ahead
	// log: faster accepts, and a process kill still loses nothing — only a
	// machine crash can drop the un-synced tail.
	JobWALNoSync bool
}

// Doc is one batch input: an identifier (path, queue key, anything) plus
// the XML content — as a string (Content) or zero-copy bytes (Bytes).
// Setting SchemaRef (a prefix of another Schema's Ref) routes the document
// to that registry-cached schema, so one CheckBatch can carry a mixed
// multi-schema firehose; documents without a ref use the batch's schema.
type Doc = engine.Doc

// BatchResult is the verdict for one batch document. Err is set for
// lexical/well-formedness problems (no verdict); otherwise
// PotentiallyValid/Valid carry the verdict and Detail explains the first
// potential-validity violation.
type BatchResult = engine.Result

// BatchStats aggregates one CheckBatch call (counts, bytes, wall-clock,
// throughput).
type BatchStats = engine.BatchStats

// EngineStats is an engine's lifetime counter snapshot.
type EngineStats = engine.Stats

// RegistryStats is a schema-registry counter snapshot.
type RegistryStats = engine.RegistryStats

// NewEngine builds a concurrent checking engine. It panics when
// SchemaCacheDir is set but cannot be created or opened; use OpenEngine to
// handle that error (a zero-value config never fails).
func NewEngine(cfg EngineConfig) *Engine {
	e, err := OpenEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// OpenEngine builds a concurrent checking engine, reporting a disk cache
// directory that cannot be created or opened as an error.
func OpenEngine(cfg EngineConfig) (*Engine, error) {
	e, err := engine.Open(engine.Config{
		Workers:        cfg.Workers,
		CacheSize:      cfg.SchemaCacheSize,
		Shards:         cfg.SchemaCacheShards,
		CacheDir:       cfg.SchemaCacheDir,
		PVOnly:         cfg.PVOnly,
		MaxDocBytes:    cfg.MaxDocBytes,
		StreamBufBytes: cfg.StreamBufBytes,
		JobWorkers:     cfg.JobWorkers,
		JobQueueDepth:  cfg.JobQueueDepth,
		JobResultTTL:   cfg.JobResultTTL,
		VolatileJobs:   cfg.VolatileJobs,
		JobWALNoSync:   cfg.JobWALNoSync,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// engineOptions converts public Options to the registry's key options.
func engineOptions(opts Options) engine.CompileOptions {
	return engine.CompileOptions{
		MaxDepth:             opts.MaxDepth,
		IgnoreWhitespaceText: opts.IgnoreWhitespaceText,
		AllowAnyRoot:         opts.AllowAnyRoot,
		DisableFastPath:      opts.DisableFastPath,
	}
}

// wrapEngineSchema rebuilds the thin public wrapper around a cached
// artifact; the heavy state (core, validator, checker and completer
// pools) is shared.
func wrapEngineSchema(es *engine.Schema) *Schema {
	return &Schema{dtd: es.Core.DTD, root: es.Core.Root, core: es.Core, valid: es.Valid, eng: es}
}

// CompileDTD resolves a DTD through the engine's registry: the first call
// for a given (source, root, options) compiles, subsequent calls hit the
// cache.
func (e *Engine) CompileDTD(src, root string, opts Options) (*Schema, error) {
	es, err := e.e.Compile(engine.DTDSource, src, root, engineOptions(opts))
	if err != nil {
		return nil, err
	}
	return wrapEngineSchema(es), nil
}

// CompileXSD is CompileDTD for the supported XML Schema subset.
func (e *Engine) CompileXSD(src, root string, opts Options) (*Schema, error) {
	es, err := e.e.Compile(engine.XSDSource, src, root, engineOptions(opts))
	if err != nil {
		return nil, err
	}
	return wrapEngineSchema(es), nil
}

// CheckBatch fans docs out over the engine's worker pool and returns one
// result per input, in input order, plus aggregate stats. Verdicts are
// identical to calling Schema.CheckString (or CheckBytes) per document
// sequentially. Documents carrying a SchemaRef are routed to the
// referenced schema; s covers the rest and may be nil when every document
// routes itself.
func (e *Engine) CheckBatch(s *Schema, docs []Doc) ([]BatchResult, BatchStats) {
	return e.e.CheckBatch(engSchema(s), docs)
}

// CheckAll is CheckBatch over bare XML strings.
func (e *Engine) CheckAll(s *Schema, xmls []string) ([]BatchResult, BatchStats) {
	return e.e.CheckAll(engSchema(s), xmls)
}

// Check runs one document synchronously on the caller's goroutine. s may
// be nil when the document routes itself by SchemaRef.
func (e *Engine) Check(s *Schema, d Doc) BatchResult { return e.e.Check(engSchema(s), d) }

// CheckReader checks one document streamed from r in bounded memory —
// O(element depth + sliding window) regardless of size, with no cap; the
// engine-side twin of Schema.CheckReader (HTTP: POST /check/raw). The
// verdict is potential validity only: the full-validity bit would need a
// tree parse, which is exactly the O(document) cost this path avoids. It
// counts against the engine's worker bound and lifetime stats.
func (e *Engine) CheckReader(s *Schema, id string, r io.Reader) BatchResult {
	return e.e.CheckReader(engSchema(s), id, r)
}

// CompleteBatch fans docs out over the engine's worker pool, completing
// each potentially valid document into a valid one, and returns one
// CompleteResult per input, in input order, plus aggregate stats (the
// completion twin of CheckBatch, including SchemaRef routing). withDiff
// asks for per-insertion records in addition to the completed output.
// Outputs and inserted counts are identical to sequential per-document
// completion.
func (e *Engine) CompleteBatch(s *Schema, docs []Doc, withDiff bool) ([]CompleteResult, BatchStats) {
	return e.e.CompleteBatch(engSchema(s), docs, withDiff)
}

// Complete runs one document's completion synchronously on the caller's
// goroutine. s may be nil when the document routes itself by SchemaRef.
func (e *Engine) Complete(s *Schema, d Doc, withDiff bool) CompleteResult {
	return e.e.Complete(engSchema(s), d, withDiff)
}

// engSchema unwraps the engine artifact, tolerating a nil schema (the
// SchemaRef self-routing mode).
func engSchema(s *Schema) *engine.Schema {
	if s == nil {
		return nil
	}
	return s.eng
}

// Job is one asynchronously submitted batch: identity, lifecycle state
// (queued → running → done|failed|canceled), progress counters and the
// retained NDJSON results. See internal/jobs for the machinery.
type Job = jobs.Job

// JobInfo is a job snapshot (state, progress, timestamps) — the wire form
// of GET /jobs/{id}.
type JobInfo = jobs.Info

// JobStats snapshots the engine's job queue: queued/running gauges plus
// submitted/completed/failed/canceled/rejected/reaped lifetime counters.
type JobStats = jobs.Stats

// JobRecoveryStats is the outcome of a job write-ahead-log replay: how
// many interrupted jobs were re-queued from scratch, resumed at a chunk
// boundary, re-served as already finished, or found unrecoverable.
type JobRecoveryStats = jobs.RecoveryStats

// ErrJobQueueFull rejects SubmitBatch/SubmitCompleteBatch when the job
// queue is at capacity (HTTP 429 on the wire).
var ErrJobQueueFull = engine.ErrJobQueueFull

// ErrJobNotFound reports an unknown — or already reaped — job id from
// CancelJob (HTTP 404 on the wire).
var ErrJobNotFound = jobs.ErrNotFound

// SubmitBatch enqueues docs for asynchronous checking and returns the
// accepted job without waiting for any verdict — the async twin of
// CheckBatch, with identical per-document verdicts. Poll Job.Info (or wait
// on Job.Done) for progress; stream the verdicts with Job.WriteResults
// once it finishes. s is the default schema for documents without a
// SchemaRef and may be nil when every document routes itself. Fails with
// ErrJobQueueFull when the queue is at capacity. The docs slice is
// retained until the job reaches a terminal state (then released, not
// held for the retention TTL); do not mutate it after submission.
func (e *Engine) SubmitBatch(s *Schema, docs []Doc) (*Job, error) {
	return e.e.SubmitCheckBatch(engSchema(s), docs)
}

// SubmitCompleteBatch enqueues docs for asynchronous completion — the
// async twin of CompleteBatch. Each retained NDJSON line is a /complete
// result object.
func (e *Engine) SubmitCompleteBatch(s *Schema, docs []Doc, withDiff bool) (*Job, error) {
	return e.e.SubmitCompleteBatch(engSchema(s), docs, withDiff)
}

// Job returns a submitted job by id, while it is retained (finished jobs
// are reaped after EngineConfig.JobResultTTL).
func (e *Engine) Job(id string) (*Job, bool) { return e.e.Jobs().Get(id) }

// JobList snapshots every retained job, newest submission first.
func (e *Engine) JobList() []JobInfo { return e.e.Jobs().List() }

// CancelJob cancels a queued or running job (partial results are kept).
// It reports whether a cancellation was delivered; unknown or reaped ids
// return ErrJobNotFound.
func (e *Engine) CancelJob(id string) (bool, error) { return e.e.Jobs().Cancel(id) }

// RemoveJob drops a finished job right now — freeing its buffered results
// and spill file without waiting for the TTL reaper. Active jobs are not
// removable (cancel first); it reports whether the job was removed.
func (e *Engine) RemoveJob(id string) bool { return e.e.Jobs().Remove(id) }

// JobStats snapshots the job queue's gauges and lifetime counters.
func (e *Engine) JobStats() JobStats { return e.e.Jobs().Stats() }

// JobRecovery reports the write-ahead-log replay outcome of OpenEngine
// and whether a recovery pass ran at all (it does whenever the engine has
// a persistent job store — SchemaCacheDir set and VolatileJobs false).
func (e *Engine) JobRecovery() (JobRecoveryStats, bool) { return e.e.JobRecovery() }

// Close stops the engine's async job workers and reaper; synchronous
// checking and completion remain usable. Running jobs are interrupted
// without waiting (a durable engine re-runs them on the next open); use
// Shutdown to drain them first.
func (e *Engine) Close() { e.e.Close() }

// Shutdown closes the engine and waits — bounded by ctx — for running
// jobs to finalize and the job write-ahead log to be released. It returns
// ctx.Err() when the drain outlives the context; the interrupted jobs
// recover on the next open.
func (e *Engine) Shutdown(ctx context.Context) error { return e.e.Shutdown(ctx) }

// Stats returns the engine's lifetime counters.
func (e *Engine) Stats() EngineStats { return e.e.Stats() }

// CacheStats returns the schema store's counters (shard aggregates plus
// disk-tier activity when a cache directory is configured).
func (e *Engine) CacheStats() RegistryStats { return e.e.Store().Stats() }

// Handler returns the engine's HTTP API (the full pvserve surface:
// POST /check, POST /batch (+?async=1&receipt=1), the NDJSON streams, the
// /jobs routes, GET /schemas, GET /stats, GET /metrics, POST /verify),
// for embedding in a larger server.
func (e *Engine) Handler() http.Handler { return engine.NewServer(e.e) }

// Receipt is a batch's verifiable verdict commitment: a Merkle root over
// every (document, schema, verdict, insertions, content digest) tuple
// plus one inclusion proof per document. Verify entries offline with
// VerifyReceipt — no engine, schema or cache required.
type Receipt = engine.Receipt

// DocProof is one document's entry in a Receipt: the committed leaf and
// the inclusion proof binding it to the root.
type DocProof = engine.DocProof

// ReceiptLeaf is the claim a receipt commits for one document.
type ReceiptLeaf = receipt.Leaf

// ReceiptAnchor is one anchored root record from the engine's durable
// anchor log (ReceiptAnchors / GET /receipts).
type ReceiptAnchor = receipt.Anchor

// VerifyReceipt checks one document's inclusion proof against a receipt
// root. It is pure computation over its arguments — stateless and
// offline — so any holder of the root can audit a verdict.
func VerifyReceipt(root string, leaf ReceiptLeaf, proof string) bool {
	return receipt.Verify(root, leaf, proof)
}

// DigestContent returns the canonical content digest committed into
// receipt leaves, for recomputing a leaf's ContentDigest from the
// original document during an audit.
func DigestContent(content []byte) string { return receipt.DigestContent(content) }

// CheckBatchReceipt is CheckBatch plus a verdict receipt: identical
// results and stats, and a Receipt committing every verdict (nil for an
// empty batch). On a disk-backed engine the root is also anchored under
// the cache directory and survives restarts (ReceiptAnchors).
func (e *Engine) CheckBatchReceipt(s *Schema, docs []Doc) ([]BatchResult, BatchStats, *Receipt, error) {
	return e.e.CheckBatchReceipt(engSchema(s), docs)
}

// CompleteBatchReceipt is CompleteBatch plus a verdict receipt — the
// completion twin of CheckBatchReceipt.
func (e *Engine) CompleteBatchReceipt(s *Schema, docs []Doc, withDiff bool) ([]CompleteResult, BatchStats, *Receipt, error) {
	return e.e.CompleteBatchReceipt(engSchema(s), docs, withDiff)
}

// SubmitBatchReceipt is SubmitBatch with a verdict receipt: once the job
// finishes, Job.Receipt carries the full receipt and the root is
// persisted with the job's terminal record.
func (e *Engine) SubmitBatchReceipt(s *Schema, docs []Doc) (*Job, error) {
	return e.e.SubmitCheckBatchReceipt(engSchema(s), docs)
}

// SubmitCompleteBatchReceipt is SubmitCompleteBatch with a verdict
// receipt — the completion twin of SubmitBatchReceipt.
func (e *Engine) SubmitCompleteBatchReceipt(s *Schema, docs []Doc, withDiff bool) (*Job, error) {
	return e.e.SubmitCompleteBatchReceipt(engSchema(s), docs, withDiff)
}

// ReceiptAnchors lists every receipt root the engine (and predecessors on
// the same cache directory) anchored, oldest first; memory-only engines
// return an empty list.
func (e *Engine) ReceiptAnchors() ([]ReceiptAnchor, error) { return e.e.Anchors() }

// WriteMetrics writes the engine's observable state — everything Stats,
// CacheStats, JobStats and JobRecovery report — as a Prometheus
// text-format exposition (the GET /metrics body).
func (e *Engine) WriteMetrics(w io.Writer) error { return e.e.WriteMetrics(w) }
