// Package pv is a potential-validity toolkit for document-centric XML — a
// from-scratch Go reproduction of:
//
//	Ionut E. Iacob, Alex Dekhtyar, Michael I. Dekhtyar.
//	"On Potential Validity of Document-Centric XML Documents." ICDE 2006.
//
// An XML document w is *potentially valid* with respect to a DTD T and root
// element r if some extension of w — obtained by inserting matching tag
// pairs only, never deleting, renaming or reordering anything — is valid.
// Potential validity is what a document-centric XML editor needs to check
// while markup is being layered over pre-existing text: intermediate states
// are almost never valid, but they must stay completable.
//
// The package compiles a DTD into a Schema and offers:
//
//   - whole-document checking (the paper's Problem PV), in tree and
//     streaming form, in time linear in document size (Theorem 4);
//   - per-element content checking (Problem ECPV) via the paper's
//     ECRecognizer over a DAG model of the DTD, with the depth bound that
//     tames PV-strong recursive DTDs;
//   - O(1) incremental guards for editing operations (Theorem 2,
//     Proposition 3) and a guarded editing Session;
//   - full (standard) DTD validation, for when the encoding is finished;
//   - DTD analysis: recursion classification (non-recursive / PV-weak /
//     PV-strong), reachability, usability and determinism lint.
//
// Quick start:
//
//	schema, err := pv.CompileDTD(dtdSource, "r", pv.Options{})
//	...
//	res, err := schema.CheckString("<r><a><b>A quick brown</b>...</r>")
//	if res.PotentiallyValid { ... }
package pv

import (
	"fmt"
	"os"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/reach"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// Options configures schema compilation.
type Options struct {
	// MaxDepth bounds the depth of hypothetical extension documents
	// considered when the DTD is PV-strong recursive (Section 4.3.1 of the
	// paper). Zero selects the default (16). Irrelevant for non-PV-strong
	// DTDs, where the checker is complete.
	MaxDepth int
	// IgnoreWhitespaceText makes whitespace-only text nodes invisible to
	// the potential-validity checker — convenient for pretty-printed
	// documents. Document-centric editing normally wants false.
	IgnoreWhitespaceText bool
	// AllowAnyRoot accepts any declared element as document root.
	AllowAnyRoot bool
}

// Class is the paper's DTD classification (Definitions 6-8).
type Class = reach.Class

// Re-exported classification constants.
const (
	NonRecursive      = reach.NonRecursive
	PVWeakRecursive   = reach.PVWeakRecursive
	PVStrongRecursive = reach.PVStrongRecursive
)

// Schema is a DTD compiled for potential-validity checking and validation.
type Schema struct {
	dtd   *dtd.DTD
	root  string
	core  *core.Schema
	valid *validator.Validator
}

// ParseDTD parses DTD source text (internal/external subset syntax).
func ParseDTD(src string) (*DTD, error) {
	d, err := dtd.Parse(src)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// DTD is a parsed Document Type Definition.
type DTD struct{ d *dtd.DTD }

// Names returns the declared element names in declaration order.
func (d *DTD) Names() []string { return d.d.Names() }

// String renders the DTD back in declaration syntax.
func (d *DTD) String() string { return d.d.String() }

// Size returns the paper's k measure: total element occurrences across
// content models plus one per declaration.
func (d *DTD) Size() int { return d.d.Size() }

// Lint reports structural problems: undeclared references and XML 1.0
// determinism violations. An empty slice means the DTD is clean.
func (d *DTD) Lint() []string { return d.d.Validate() }

// Compile prepares the DTD for checking against the given root element.
func (d *DTD) Compile(root string, opts Options) (*Schema, error) {
	c, err := core.Compile(d.d, root, core.Options{
		MaxDepth:             opts.MaxDepth,
		IgnoreWhitespaceText: opts.IgnoreWhitespaceText,
		AllowAnyRoot:         opts.AllowAnyRoot,
	})
	if err != nil {
		return nil, err
	}
	v, err := validator.New(d.d, root)
	if err != nil {
		return nil, err
	}
	return &Schema{dtd: d.d, root: root, core: c, valid: v}, nil
}

// ParseXSD imports a W3C XML Schema (XSD) document, supported subset per
// internal/xsd, into the same representation as ParseDTD — the paper's
// Section 2 observation that potential validity only depends on the
// structural content model, whatever the schema language.
func ParseXSD(src string) (*DTD, error) {
	d, err := xsd.Parse(src)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// CompileXSD parses an XSD document and compiles it in one step.
func CompileXSD(src, root string, opts Options) (*Schema, error) {
	d, err := ParseXSD(src)
	if err != nil {
		return nil, err
	}
	return d.Compile(root, opts)
}

// CompileDTD parses and compiles in one step.
func CompileDTD(src, root string, opts Options) (*Schema, error) {
	d, err := ParseDTD(src)
	if err != nil {
		return nil, err
	}
	return d.Compile(root, opts)
}

// CompileDTDFile reads, parses and compiles a DTD file.
func CompileDTDFile(path, root string, opts Options) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return CompileDTD(string(data), root, opts)
}

// MustCompileDTD is CompileDTD that panics on error; for tests and
// examples.
func MustCompileDTD(src, root string, opts Options) *Schema {
	s, err := CompileDTD(src, root, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Root returns the designated root element.
func (s *Schema) Root() string { return s.root }

// Class returns the DTD's recursion classification.
func (s *Schema) Class() Class { return s.core.Class() }

// Result is the outcome of a potential-validity check.
type Result struct {
	// PotentiallyValid is the Problem PV verdict.
	PotentiallyValid bool
	// Valid is the standard validity verdict (Valid implies
	// PotentiallyValid).
	Valid bool
	// Detail explains the first potential-validity violation; empty when
	// PotentiallyValid.
	Detail string
}

// CheckString parses an XML string and checks it. The returned error covers
// lexical/well-formedness problems only; schema verdicts are in the Result.
func (s *Schema) CheckString(xml string) (Result, error) {
	doc, err := dom.Parse(xml)
	if err != nil {
		return Result{}, err
	}
	return s.checkRoot(doc.Root), nil
}

// CheckDocument checks a parsed document.
func (s *Schema) CheckDocument(doc *Document) Result { return s.checkRoot(doc.root) }

func (s *Schema) checkRoot(root *dom.Node) Result {
	res := Result{}
	if v := s.core.CheckDocument(root); v == nil {
		res.PotentiallyValid = true
	} else {
		res.Detail = v.Reason
	}
	if res.PotentiallyValid && s.valid.Validate(root) == nil {
		res.Valid = true
	}
	return res
}

// CheckStream checks an XML string in a single streaming pass without
// building a tree — the recommended mode for large documents. It returns
// nil when the document is potentially valid.
func (s *Schema) CheckStream(xml string) error { return s.core.CheckStream(xml) }

// Validate runs standard (full) DTD validation: the check for finished
// encodings. It returns nil when the document is valid.
func (s *Schema) Validate(doc *Document) error { return s.valid.Validate(doc.root) }

// ValidateString parses and fully validates an XML string.
func (s *Schema) ValidateString(xml string) error { return s.valid.ValidateString(xml) }

// CanInsertText reports whether a new text node may be created under the
// named element in a potentially valid document — the O(1) check of
// Proposition 3.
func (s *Schema) CanInsertText(element string) bool {
	return s.core.LT.Has(element) && s.core.LT.ReachesPCDATA(element)
}

// Reachable reports whether element "to" may occur (at any depth) inside
// element "from" — the reachability lookup of Definition 5.
func (s *Schema) Reachable(from, to string) bool { return s.core.LT.Reachable(from, to) }

// ElementClass returns the recursion classification of one element.
func (s *Schema) ElementClass(name string) Class { return s.core.LT.ElementClass(name) }

// Complete synthesizes a valid extension of a potentially valid document —
// the constructive counterpart of Definition 3 (and of the paper's
// Figure 3, where two <d> insertions complete Example 1's s). It returns a
// fresh document (the input is untouched) and the number of elements
// inserted. It fails if the document is not potentially valid within the
// schema's depth bound.
func (s *Schema) Complete(doc *Document) (*Document, int, error) {
	ext, inserted, err := complete.New(s.core).Complete(doc.root)
	if err != nil {
		return nil, 0, err
	}
	return &Document{root: ext}, inserted, nil
}

// Info summarizes the compiled schema for display.
func (s *Schema) Info() string {
	return fmt.Sprintf("root <%s>, %d elements, k=%d, class %s, depth bound %d",
		s.root, len(s.dtd.Order), s.dtd.Size(), s.Class(), s.core.EffectiveDepth())
}
