// Command pvcheck checks XML documents against a DTD (or XML Schema
// subset) for potential validity (the paper's Problem PV) and full
// validity, optionally synthesizing valid completions.
//
// Usage:
//
//	pvcheck (-dtd schema.dtd | -xsd schema.xsd) -root r [flags] doc.xml...
//
// Exit status: 0 when every document is potentially valid, 1 when some
// document is not, 2 on usage or parse errors.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.PVCheck(os.Args[1:], os.Stdout, os.Stderr))
}
