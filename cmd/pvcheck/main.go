// Command pvcheck checks XML documents against a DTD (or XML Schema
// subset) for potential validity (the paper's Problem PV) and full
// validity, optionally synthesizing valid completions.
//
// Usage:
//
//	pvcheck (-dtd schema.dtd | -xsd schema.xsd) -root r [flags] doc.xml...
//	pvcheck batch (-dtd schema.dtd | -xsd schema.xsd) -root r [flags] dir...
//	pvcheck complete (-dtd schema.dtd | -xsd schema.xsd) -root r [-diff] [-in-place] [flags] dir...
//	pvcheck verify -receipt receipt.json [-root pvr1:...] [-id doc | -index N] [-content doc.xml]
//
// The verify form audits a verdict receipt (the ?receipt=1 response of
// pvserve's /batch and /complete routes, or the /jobs/{id}/receipt body)
// completely offline: no schema, engine or server is involved — only the
// Merkle inclusion proofs inside the file, checked against the receipt's
// root or a trusted -root override.
//
// The batch form fans a directory of documents out over the concurrent
// checking engine (see -workers); with -async it submits the corpus as one
// job on the engine's async queue instead and polls it to completion
// (progress every -poll interval) — the CLI twin of pvserve's
// POST /batch?async=1. The complete form rewrites potentially valid
// documents into valid ones, printing the completed document, the
// insertion records (-diff), or rewriting files in place (-in-place).
//
// Exit status: 0 when every document is potentially valid, 1 when some
// document is not, 2 on usage or parse errors.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "batch":
			os.Exit(cli.Batch(args[1:], os.Stdout, os.Stderr))
		case "complete":
			os.Exit(cli.Complete(args[1:], os.Stdout, os.Stderr))
		case "verify":
			os.Exit(cli.Verify(args[1:], os.Stdout, os.Stderr))
		}
	}
	os.Exit(cli.PVCheck(args, os.Stdout, os.Stderr))
}
