// Command pvgen generates workloads: random DTDs of a chosen recursion
// class, random valid documents for a DTD, and tag-stripped (potentially
// valid) variants — the corpora behind the benchmarks.
//
// Usage:
//
//	pvgen dtd   [-elements 10] [-class weak] [-seed 1]
//	pvgen doc   -dtd schema.dtd [-root r] [-depth 8] [-seed 1] [-strip 0.3]
//	pvgen doc   -dtd schema.dtd -stream -bytes 2G [-root r] [-depth 8] [-seed 1]
//
// -stream writes one valid document of at least -bytes bytes straight to
// stdout in O(depth) memory — star and plus groups repeat until the
// target is met — so multi-GB inputs for benchmarks and the streaming
// checker never have to exist as a tree (or fit in RAM). Sizes accept
// K/M/G suffixes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/dtd"
	"repro/internal/gen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "dtd":
		genDTD(os.Args[2:])
	case "doc":
		genDoc(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pvgen dtd [-elements N] [-class none|weak|strong] [-seed S]
  pvgen doc -dtd schema.dtd [-root r] [-depth D] [-seed S] [-strip F]
  pvgen doc -dtd schema.dtd -stream -bytes N[K|M|G] [-root r] [-depth D] [-seed S]`)
	os.Exit(2)
}

func genDTD(args []string) {
	fs := flag.NewFlagSet("dtd", flag.ExitOnError)
	elements := fs.Int("elements", 10, "number of element types")
	class := fs.String("class", "none", "recursion class: none, weak, strong")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	var c gen.DTDClass
	switch *class {
	case "none":
		c = gen.ClassNonRecursive
	case "weak":
		c = gen.ClassWeak
	case "strong":
		c = gen.ClassStrong
	default:
		usage()
	}
	rng := rand.New(rand.NewSource(*seed))
	d := gen.RandDTD(rng, gen.DTDOptions{Elements: *elements, Class: c})
	fmt.Print(d.String())
	fmt.Fprintf(os.Stderr, "class: %s, k=%d, root: e0\n", gen.Classify(d), d.Size())
}

func genDoc(args []string) {
	fs := flag.NewFlagSet("doc", flag.ExitOnError)
	dtdPath := fs.String("dtd", "", "path to the DTD file (required)")
	root := fs.String("root", "", "root element (default: first declared)")
	depth := fs.Int("depth", 8, "maximum nesting depth")
	seed := fs.Int64("seed", 1, "random seed")
	strip := fs.Float64("strip", 0, "fraction of elements to strip (0 = emit the valid document)")
	stream := fs.Bool("stream", false, "stream one valid document of at least -bytes to stdout in O(depth) memory")
	size := fs.String("bytes", "", "minimum document size for -stream (K/M/G suffixes, e.g. 64M, 2G)")
	fs.Parse(args)

	if *dtdPath == "" {
		usage()
	}
	data, err := os.ReadFile(*dtdPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pvgen: %v\n", err)
		os.Exit(2)
	}
	d, err := dtd.Parse(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pvgen: %v\n", err)
		os.Exit(2)
	}
	if *root == "" {
		*root = d.Order[0]
	}
	rng := rand.New(rand.NewSource(*seed))
	if *stream {
		if *strip > 0 {
			fmt.Fprintln(os.Stderr, "pvgen: -stream and -strip are mutually exclusive")
			os.Exit(2)
		}
		minBytes, err := parseSize(*size)
		if err != nil || minBytes <= 0 {
			fmt.Fprintf(os.Stderr, "pvgen: -stream needs -bytes N[K|M|G] (got %q)\n", *size)
			os.Exit(2)
		}
		out := bufio.NewWriterSize(os.Stdout, 256<<10)
		n, err := gen.StreamValid(out, rng, d, *root, gen.DocOptions{MaxDepth: *depth}, minBytes)
		if err == nil {
			err = out.Flush()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "streamed %d bytes (valid for root %s)\n", n, *root)
		if n < minBytes {
			fmt.Fprintf(os.Stderr, "pvgen: grammar admits no unbounded repetition from %s; stopped at %d of %d bytes\n", *root, n, minBytes)
			os.Exit(1)
		}
		return
	}
	doc := gen.GenValid(rng, d, *root, gen.DocOptions{MaxDepth: *depth})
	if *strip > 0 {
		removed := gen.Strip(rng, doc, *strip)
		fmt.Fprintf(os.Stderr, "stripped %d elements (result is potentially valid by Theorem 2)\n", removed)
	}
	fmt.Println(doc.String())
}

// parseSize parses a byte count with an optional K, M or G suffix
// (powers of 1024).
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	shift := 0
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		shift, s = 10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		shift, s = 20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		shift, s = 30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n << shift, nil
}
