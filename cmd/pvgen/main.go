// Command pvgen generates workloads: random DTDs of a chosen recursion
// class, random valid documents for a DTD, and tag-stripped (potentially
// valid) variants — the corpora behind the benchmarks.
//
// Usage:
//
//	pvgen dtd   [-elements 10] [-class weak] [-seed 1]
//	pvgen doc   -dtd schema.dtd [-root r] [-depth 8] [-seed 1] [-strip 0.3]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dtd"
	"repro/internal/gen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "dtd":
		genDTD(os.Args[2:])
	case "doc":
		genDoc(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pvgen dtd [-elements N] [-class none|weak|strong] [-seed S]
  pvgen doc -dtd schema.dtd [-root r] [-depth D] [-seed S] [-strip F]`)
	os.Exit(2)
}

func genDTD(args []string) {
	fs := flag.NewFlagSet("dtd", flag.ExitOnError)
	elements := fs.Int("elements", 10, "number of element types")
	class := fs.String("class", "none", "recursion class: none, weak, strong")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	var c gen.DTDClass
	switch *class {
	case "none":
		c = gen.ClassNonRecursive
	case "weak":
		c = gen.ClassWeak
	case "strong":
		c = gen.ClassStrong
	default:
		usage()
	}
	rng := rand.New(rand.NewSource(*seed))
	d := gen.RandDTD(rng, gen.DTDOptions{Elements: *elements, Class: c})
	fmt.Print(d.String())
	fmt.Fprintf(os.Stderr, "class: %s, k=%d, root: e0\n", gen.Classify(d), d.Size())
}

func genDoc(args []string) {
	fs := flag.NewFlagSet("doc", flag.ExitOnError)
	dtdPath := fs.String("dtd", "", "path to the DTD file (required)")
	root := fs.String("root", "", "root element (default: first declared)")
	depth := fs.Int("depth", 8, "maximum nesting depth")
	seed := fs.Int64("seed", 1, "random seed")
	strip := fs.Float64("strip", 0, "fraction of elements to strip (0 = emit the valid document)")
	fs.Parse(args)

	if *dtdPath == "" {
		usage()
	}
	data, err := os.ReadFile(*dtdPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pvgen: %v\n", err)
		os.Exit(2)
	}
	d, err := dtd.Parse(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pvgen: %v\n", err)
		os.Exit(2)
	}
	if *root == "" {
		*root = d.Order[0]
	}
	rng := rand.New(rand.NewSource(*seed))
	doc := gen.GenValid(rng, d, *root, gen.DocOptions{MaxDepth: *depth})
	if *strip > 0 {
		removed := gen.Strip(rng, doc, *strip)
		fmt.Fprintf(os.Stderr, "stripped %d elements (result is potentially valid by Theorem 2)\n", removed)
	}
	fmt.Println(doc.String())
}
