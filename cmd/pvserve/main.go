// Command pvserve is the HTTP front end of the concurrent checking and
// completion engine: compile once, check (or repair) a firehose of
// documents.
//
// Usage:
//
//	pvserve [-addr :8080] [-workers N] [-cache N] [-shards N] [-cache-dir DIR] [-pvonly]
//	        [-job-workers N] [-job-queue N] [-job-ttl DUR]
//
// Routes (all JSON; full wire spec in docs/http-api.md, async jobs in
// docs/jobs-api.md):
//
//	POST /check             {"schema","kind","root","options","document"}  -> verdict
//	POST /batch             {"schema","kind","root","options","documents"} -> verdicts + stats
//	POST /batch?async=1     same body -> 202 {jobId}; poll /jobs/{id}
//	POST /check/stream      NDJSON in (schema headers + documents), NDJSON out
//	POST /complete          {"schema",...,"documents","diff"} -> completions + diffs + stats
//	POST /complete?async=1  same body -> 202 {jobId}
//	POST /complete/stream   NDJSON in, NDJSON completion lines out (?diff=0 drops records)
//	GET  /jobs              retained async jobs; GET /jobs/{id} one job's progress
//	GET  /jobs/{id}/results one job's verdicts as NDJSON; DELETE /jobs/{id} cancels
//	GET  /schemas           cached compiled schemas, most recently used first
//	GET  /stats             registry, engine and job-queue lifetime counters
//
// Async jobs decouple document arrival from verdict production: a huge
// corpus is accepted in one 202 round trip, checked by -job-workers jobs
// draining through the shared worker pool, and its results are retained
// for -job-ttl after completion (spilling to <cache-dir>/jobs/<pid> past
// the in-memory buffer when a cache directory is configured).
//
// The schema travels inline with each request; the store dedupes by
// content hash, so resending it costs a hash, not a compilation. The store
// is lock-striped over -shards shards, and -cache-dir enables the
// disk-backed compiled-schema cache: a restarted pvserve rehydrates its
// hot schema set (and keeps honoring previously issued schemaRefs)
// without recompiling a single DTD. Documents may instead carry
// "schemaRef" (see GET /schemas) to route a mixed multi-schema batch. The
// *stream routes read documents incrementally (plain or gzip-encoded
// bodies), keep a bounded number in flight, and flush one output line per
// document — bodies of any size, with a 64MB cap per document (after
// decompression), not per body.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "compiled-schema store capacity across shards (0 = default 64)")
	shards := flag.Int("shards", 0, "schema store lock-stripe count (0 = default 8)")
	cacheDir := flag.String("cache-dir", "", "disk-backed compiled-schema cache directory (empty = memory only)")
	pvOnly := flag.Bool("pvonly", false, "skip the full-validity bit (fastest)")
	jobWorkers := flag.Int("job-workers", 0, "concurrent async jobs (0 = default 2)")
	jobQueue := flag.Int("job-queue", 0, "async jobs queued beyond the running ones before 429 (0 = default 64)")
	jobTTL := flag.Duration("job-ttl", 0, "retention of finished async jobs and their results (0 = default 15m)")
	flag.Parse()

	e, err := engine.Open(engine.Config{
		Workers:       *workers,
		CacheSize:     *cache,
		Shards:        *shards,
		CacheDir:      *cacheDir,
		PVOnly:        *pvOnly,
		JobWorkers:    *jobWorkers,
		JobQueueDepth: *jobQueue,
		JobResultTTL:  *jobTTL,
	})
	if err != nil {
		log.Fatalf("pvserve: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           engine.NewServer(e),
		ReadHeaderTimeout: 10 * time.Second,
		// Bodies on the non-streaming routes are capped at
		// engine.MaxRequestBytes; /check/stream lifts this deadline per
		// request via a ResponseController to read unbounded bodies.
		ReadTimeout: 2 * time.Minute,
		IdleTimeout: 2 * time.Minute,
	}
	st := e.Store().Stats()
	js := e.Jobs().Stats()
	log.Printf("pvserve listening on %s (workers=%d, cache=%d over %d shards, cache-dir=%q, pvonly=%v, job-workers=%d, job-queue=%d)",
		*addr, e.Workers(), st.Capacity, st.Shards, *cacheDir, *pvOnly, js.Workers, js.QueueDepth)
	log.Fatal(srv.ListenAndServe())
}
