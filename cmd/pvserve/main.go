// Command pvserve is the HTTP front end of the concurrent checking engine:
// compile once, check a firehose of documents.
//
// Usage:
//
//	pvserve [-addr :8080] [-workers N] [-cache N] [-pvonly]
//
// Routes (all JSON):
//
//	POST /check    {"schema","kind","root","options","document"}  -> verdict
//	POST /batch    {"schema","kind","root","options","documents"} -> verdicts + stats
//	GET  /schemas  cached compiled schemas, most recently used first
//	GET  /stats    registry and engine lifetime counters
//
// The schema travels inline with each request; the registry dedupes by
// content hash, so resending it costs a hash, not a compilation.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "compiled-schema LRU capacity (0 = default 64)")
	pvOnly := flag.Bool("pvonly", false, "skip the full-validity bit (fastest)")
	flag.Parse()

	e := engine.New(engine.Config{Workers: *workers, CacheSize: *cache, PVOnly: *pvOnly})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           engine.NewServer(e),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute, // bodies are capped at engine.MaxRequestBytes
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("pvserve listening on %s (workers=%d, cache=%d, pvonly=%v)",
		*addr, e.Workers(), e.Registry().Stats().Capacity, *pvOnly)
	log.Fatal(srv.ListenAndServe())
}
