// Command pvserve is the HTTP front end of the concurrent checking and
// completion engine: compile once, check (or repair) a firehose of
// documents.
//
// Usage:
//
//	pvserve [-addr :8080] [-workers N] [-cache N] [-shards N] [-cache-dir DIR] [-pvonly]
//	        [-disable-fast-path] [-max-doc-bytes N] [-stream-buf N]
//	        [-job-workers N] [-job-queue N] [-job-ttl DUR] [-job-volatile] [-job-wal-nosync]
//	        [-drain DUR]
//
// Routes (all JSON; full wire spec in docs/http-api.md, async jobs in
// docs/jobs-api.md):
//
//	POST /check             {"schema","kind","root","options","document"}  -> verdict
//	POST /batch             {"schema","kind","root","options","documents"} -> verdicts + stats
//	POST /batch?async=1     same body -> 202 {jobId}; poll /jobs/{id}
//	POST /check/raw         one raw XML body (any size) -> one verdict
//	POST /check/stream      NDJSON in (schema headers + documents), NDJSON out
//	POST /complete          {"schema",...,"documents","diff"} -> completions + diffs + stats
//	POST /complete?async=1  same body -> 202 {jobId}
//	POST /complete/stream   NDJSON in, NDJSON completion lines out (?diff=0 drops records)
//	GET  /jobs              retained async jobs; GET /jobs/{id} one job's progress
//	GET  /jobs/{id}/results one job's verdicts as NDJSON; DELETE /jobs/{id} cancels
//	GET  /schemas           cached compiled schemas, most recently used first
//	GET  /stats             registry, engine and job-queue lifetime counters
//
// Async jobs decouple document arrival from verdict production: a huge
// corpus is accepted in one 202 round trip, checked by -job-workers jobs
// draining through the shared worker pool, and its results are retained
// for -job-ttl after completion (spilling past the in-memory buffer when a
// cache directory is configured).
//
// With -cache-dir set, jobs are durable by default: every submission is
// recorded in a write-ahead log under <cache-dir>/jobs before it is
// accepted, so a restarted pvserve re-serves finished jobs and re-runs (or
// resumes) interrupted ones — GET /jobs/{id} keeps answering across
// restarts. -job-volatile opts out; -job-wal-nosync trades the per-submit
// fsync for throughput (a process kill still loses nothing, only a machine
// crash can). See docs/operations.md, "Durability & restart".
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops, in-
// flight requests and running jobs drain for up to -drain, and the WAL is
// closed cleanly before the process exits 0.
//
// The schema travels inline with each request; the store dedupes by
// content hash, so resending it costs a hash, not a compilation. The store
// is lock-striped over -shards shards, and -cache-dir enables the
// disk-backed compiled-schema cache: a restarted pvserve rehydrates its
// hot schema set (and keeps honoring previously issued schemaRefs)
// without recompiling a single DTD. Documents may instead carry
// "schemaRef" (see GET /schemas) to route a mixed multi-schema batch. The
// *stream routes read documents incrementally (plain or gzip-encoded
// bodies), keep a bounded number in flight, and flush one output line per
// document — bodies of any size, with a per-document cap (after
// decompression; -max-doc-bytes, default 64MB), not per body.
//
// POST /check/raw has no document cap at all: the body is one raw XML
// document (schema selected by X-Schema-Ref or ?schemaRef=), checked in a
// single bounded-memory pass through a -stream-buf sized sliding window —
// the route for the multi-GB documents the envelope routes cannot carry.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "compiled-schema store capacity across shards (0 = default 64)")
	shards := flag.Int("shards", 0, "schema store lock-stripe count (0 = default 8)")
	cacheDir := flag.String("cache-dir", "", "disk-backed compiled-schema cache directory (empty = memory only)")
	pvOnly := flag.Bool("pvonly", false, "skip the full-validity bit (fastest)")
	noFastPath := flag.Bool("disable-fast-path", false, "compile schemas without content-model DFA fast-path tables (recognizer-only checking; same verdicts, for benching and as an escape hatch)")
	maxDocBytes := flag.Int("max-doc-bytes", 0, "per-document cap on the NDJSON stream routes in bytes (0 = default 64MB; /check/raw is never capped)")
	streamBuf := flag.Int("stream-buf", 0, "sliding-window size of the /check/raw bounded-memory checker in bytes (0 = default 256KB)")
	jobWorkers := flag.Int("job-workers", 0, "concurrent async jobs (0 = default 2)")
	jobQueue := flag.Int("job-queue", 0, "async jobs queued beyond the running ones before 429 (0 = default 64)")
	jobTTL := flag.Duration("job-ttl", 0, "retention of finished async jobs and their results (0 = default 15m)")
	jobVolatile := flag.Bool("job-volatile", false, "keep async jobs in memory even when -cache-dir is set (no write-ahead log)")
	jobWALNoSync := flag.Bool("job-wal-nosync", false, "skip the per-submission fsync of the job write-ahead log")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests and running jobs")
	flag.Parse()

	e, err := engine.Open(engine.Config{
		Workers:         *workers,
		CacheSize:       *cache,
		Shards:          *shards,
		CacheDir:        *cacheDir,
		PVOnly:          *pvOnly,
		DisableFastPath: *noFastPath,
		MaxDocBytes:     *maxDocBytes,
		StreamBufBytes:  *streamBuf,
		JobWorkers:      *jobWorkers,
		JobQueueDepth:   *jobQueue,
		JobResultTTL:    *jobTTL,
		VolatileJobs:    *jobVolatile,
		JobWALNoSync:    *jobWALNoSync,
	})
	if err != nil {
		log.Fatalf("pvserve: %v", err)
	}
	if rec, ok := e.JobRecovery(); ok {
		if n := rec.Total(); n > 0 {
			log.Printf("pvserve: recovered %d job(s) from the write-ahead log (requeued=%d resumed=%d served=%d failed=%d)",
				n, rec.Requeued, rec.Resumed, rec.Served, rec.Failed)
		} else {
			log.Printf("pvserve: job write-ahead log replayed clean (no jobs to recover)")
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           engine.NewServer(e),
		ReadHeaderTimeout: 10 * time.Second,
		// Bodies on the non-streaming routes are capped at
		// engine.MaxRequestBytes; /check/stream lifts this deadline per
		// request via a ResponseController to read unbounded bodies.
		ReadTimeout: 2 * time.Minute,
		IdleTimeout: 2 * time.Minute,
	}
	st := e.Store().Stats()
	js := e.Jobs().Stats()
	log.Printf("pvserve listening on %s (workers=%d, cache=%d over %d shards, cache-dir=%q, pvonly=%v, job-workers=%d, job-queue=%d, durable-jobs=%v)",
		*addr, e.Workers(), st.Capacity, st.Shards, *cacheDir, *pvOnly, js.Workers, js.QueueDepth, js.Durable)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("pvserve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("pvserve: shutting down (drain budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("pvserve: http drain: %v", err)
	}
	// Let running jobs reach a chunk boundary (or finish) before the WAL
	// closes; anything still in flight is recorded as interrupted and
	// re-run on the next start.
	if err := e.Shutdown(dctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("pvserve: job drain: %v (interrupted jobs will recover on restart)", err)
	}
	e.Close()
	log.Printf("pvserve: bye")
}
