// Command dtdinfo analyzes a DTD with the paper's machinery: recursion
// classification (Definitions 6-8), reachability (Definition 5),
// star-groups (Definition 4), normalized models (Corollary 3.1,
// Proposition 1), per-element DAGs (Section 4.2, Figure 4), usability and
// the XML 1.0 determinism lint.
//
// Usage:
//
//	dtdinfo -dtd schema.dtd [-root r] [-dag] [-reach] [-grammar]
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.DTDInfo(os.Args[1:], os.Stdout, os.Stderr))
}
