// Command pvbench regenerates the experiment tables X1-X15: the empirical
// counterparts of the paper's analytical claims (X1-X6) plus the service
// layer's scaling experiments (X7 checking throughput, X8 zero-copy byte
// path, X9 completion throughput, X10 sharded two-tier schema store,
// X11 async job-queue ingest, X12 durable-job write-ahead log, X13
// bounded-memory streaming checker, X14 verdict-receipt overhead, X15
// two-tier DFA fast path vs recognizer-only checking).
//
// Usage:
//
//	pvbench [-quick] [-json] [-stream-file-mb N]
//	        [-only linear,earley,depth,dtdsize,updates,closure,throughput,bytepath,completion,schemastore,asyncingest,durability,streaming,receipt,twotier]
//
// -json emits the selected tables as a JSON array (the format committed
// under bench/, e.g. bench/X9.json, bench/X12.json and bench/X13.json).
// -stream-file-mb sizes X13's on-disk document (default 1024; the
// committed artifact uses a multi-GB file per the experiment's brief).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sizes, shorter timing budgets")
	only := flag.String("only", "", "comma-separated table names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit the tables as a JSON array instead of text")
	streamFileMB := flag.Int("stream-file-mb", 1024, "X13 on-disk document size in MB (quick mode shrinks it to 4)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	budget := 50 * time.Millisecond
	linSizes := []int{1000, 4000, 16000, 64000, 256000}
	earSizes := []int{8, 16, 32, 64, 128}
	depths := []int{2, 4, 8, 16, 24}
	dtdSizes := []int{8, 16, 32, 64}
	updSizes := []int{1000, 8000, 64000}
	fracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	trials := 40
	workerCounts := []int{1, 2, 4, 8}
	corpus := 256
	bytePathCorpus := 1000 // X8's acceptance corpus size
	schemaCount := 16      // X10's mixed-schema population
	shardCounts := []int{1, 2, 4, 8}
	streamMemMB := 8 // X13's in-cache document (the 15% acceptance bar)
	tputBudget := 1 * time.Second
	if *quick {
		budget = 2 * time.Millisecond
		linSizes = []int{500, 2000, 8000}
		earSizes = []int{8, 16, 32}
		depths = []int{2, 4, 8}
		dtdSizes = []int{8, 16}
		updSizes = []int{500, 4000}
		trials = 5
		corpus = 48
		bytePathCorpus = 128
		schemaCount = 6
		shardCounts = []int{1, 4}
		tputBudget = 25 * time.Millisecond
		streamMemMB = 2
		*streamFileMB = 4
	}

	experiments := []struct {
		name string
		run  func() *bench.Table
	}{
		{"linear", func() *bench.Table { return bench.LinearScaling(linSizes, budget) }},
		{"earley", func() *bench.Table { return bench.EarleyComparison(earSizes, budget) }},
		{"depth", func() *bench.Table { return bench.DepthSensitivity(depths, budget) }},
		{"dtdsize", func() *bench.Table { return bench.DTDSize(dtdSizes, 4000, budget) }},
		{"updates", func() *bench.Table { return bench.UpdateCosts(updSizes, budget) }},
		{"closure", func() *bench.Table { return bench.StripClosure(fracs, trials, budget) }},
		{"throughput", func() *bench.Table { return bench.Throughput(workerCounts, corpus, tputBudget) }},
		{"bytepath", func() *bench.Table { return bench.BytePath(bytePathCorpus, tputBudget) }},
		{"completion", func() *bench.Table { return bench.CompletionThroughput(workerCounts, corpus, tputBudget) }},
		{"schemastore", func() *bench.Table { return bench.SchemaStore(shardCounts, schemaCount, corpus, tputBudget) }},
		{"asyncingest", func() *bench.Table { return bench.AsyncIngest(workerCounts, corpus, tputBudget) }},
		{"durability", func() *bench.Table { return bench.Durability(corpus, tputBudget) }},
		{"streaming", func() *bench.Table { return bench.StreamingMemory(streamMemMB, *streamFileMB, tputBudget) }},
		{"receipt", func() *bench.Table { return bench.ReceiptOverhead(corpus, tputBudget) }},
		{"twotier", func() *bench.Table { return bench.TwoTierCheck(corpus, tputBudget) }},
	}

	var tables []*bench.Table
	for _, e := range experiments {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		tables = append(tables, e.run())
	}
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "pvbench: no tables matched -only")
		os.Exit(2)
	}
	if *asJSON {
		out, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pvbench: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
		return
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
}
