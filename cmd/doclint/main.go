// Command doclint enforces doc-comment conventions beyond go vet: every
// package it is pointed at must have a package comment, and every exported
// identifier (types, functions, methods, consts, vars) must carry a doc
// comment. CI runs it over the public API surface and the service packages:
//
//	go run ./cmd/doclint . ./internal/engine ./internal/diff ./internal/complete \
//	    ./internal/schemastore ./internal/mmapio ./internal/jobs
//
// Exit status: 0 clean, 1 findings, 2 usage or parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint package-dir...")
		os.Exit(2)
	}
	findings := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and reports
// missing doc comments.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	findings := 0
	report := func(pos token.Pos, format string, args ...any) {
		findings++
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...))
	}
	for _, pkg := range pkgs {
		if !hasPackageComment(pkg) {
			// Attribute the finding to the package clause of the first file.
			for _, f := range pkg.Files {
				report(f.Package, "package %s has no package comment", pkg.Name)
				break
			}
		}
		for _, f := range pkg.Files {
			lintFile(f, report)
		}
	}
	return findings, nil
}

// hasPackageComment reports whether any file of the package documents it.
func hasPackageComment(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			return true
		}
	}
	return false
}

// lintFile checks every exported top-level declaration of one file.
func lintFile(f *ast.File, report func(token.Pos, string, ...any)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
}

// funcKind names a FuncDecl for messages ("function" or "method").
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// exportedReceiver reports whether a method's receiver type is itself
// exported (unexported receivers are internal API even if the method name
// is capitalized).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// lintGenDecl checks const/var/type declarations: each exported spec must
// be documented on the spec, by a trailing line comment, or by the group's
// doc comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	if d.Tok == token.IMPORT {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if s.Doc == nil && d.Doc == nil && s.Comment == nil {
					report(name.Pos(), "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), name.Name)
				}
				break // one finding per spec line is enough
			}
		}
	}
}
