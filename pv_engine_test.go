package pv

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestEngineCompileCache exercises the public registry path: the second
// compile of the same (source, root, options) must be a cache hit, and
// different options must compile separately.
func TestEngineCompileCache(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 2})
	s1, err := e.CompileDTD(Figure1DTD, "r", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.CompileDTD(Figure1DTD, "r", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Hits != 1 || st.Misses != 1 || st.Compiles != 1 {
		t.Errorf("cache stats after two identical compiles: %+v", st)
	}
	if _, err := e.CompileDTD(Figure1DTD, "r", Options{AllowAnyRoot: true}); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Compiles != 2 {
		t.Errorf("distinct options should compile separately: %+v", st)
	}
	// Both wrappers share the compiled artifact and behave identically.
	r1, _ := s1.CheckString(exampleS)
	r2, _ := s2.CheckString(exampleS)
	if r1 != r2 || !r1.PotentiallyValid {
		t.Errorf("cached schema verdicts differ: %+v vs %+v", r1, r2)
	}
}

// TestEngineBatchMatchesCheckString is the public-API half of the
// differential acceptance criterion: CheckBatch with 8 workers against
// sequential Schema.CheckString over a generated corpus (all three DTD
// recursion classes; valid, tag-stripped, corrupted and truncated
// documents). CI runs it under -race.
func TestEngineBatchMatchesCheckString(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 8})
	total := 0
	for ci, class := range []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong} {
		rng := rand.New(rand.NewSource(int64(77 + ci)))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 9, Class: class})
		schema, err := e.CompileDTD(d.String(), "e0", Options{})
		if err != nil {
			t.Fatalf("class %d: %v", class, err)
		}
		var docs []Doc
		for i := 0; i < 70; i++ {
			doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 7})
			switch i % 4 {
			case 1:
				gen.Strip(rng, doc, 0.5)
			case 2:
				gen.Corrupt(rng, d, doc)
			case 3:
				src := doc.String()
				docs = append(docs, Doc{ID: fmt.Sprintf("c%d-%03d", ci, i), Content: src[:rng.Intn(len(src))]})
				continue
			}
			docs = append(docs, Doc{ID: fmt.Sprintf("c%d-%03d", ci, i), Content: doc.String()})
		}
		total += len(docs)

		results, stats := e.CheckBatch(schema, docs)
		if stats.Docs != len(docs) {
			t.Fatalf("stats: %+v", stats)
		}
		for i, r := range results {
			seq, err := schema.CheckString(docs[i].Content)
			got := fmt.Sprintf("pv=%t valid=%t malformed=%t", r.PotentiallyValid, r.Valid, r.Err != nil)
			want := fmt.Sprintf("pv=%t valid=%t malformed=%t", seq.PotentiallyValid, seq.Valid, err != nil)
			if got != want {
				t.Errorf("%s: batch %s, sequential %s\ndoc: %.200q", r.ID, got, want, docs[i].Content)
			}
		}
	}
	if total < 200 {
		t.Fatalf("corpus too small: %d documents", total)
	}
}

// TestEngineCheckAllAndStats smoke-tests the convenience path and lifetime
// counters through the public API.
func TestEngineCheckAllAndStats(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 4})
	schema, err := e.CompileDTD(Figure1DTD, "r", Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, stats := e.CheckAll(schema, []string{exampleS, exampleW, "<r"})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if !results[0].PotentiallyValid || results[1].PotentiallyValid || results[2].Err == nil {
		t.Errorf("verdicts: %+v", results)
	}
	if stats.PotentiallyValid != 1 || stats.Malformed != 1 {
		t.Errorf("stats: %+v", stats)
	}
	if agg := e.Stats(); agg.Docs != 3 || agg.Workers != 4 {
		t.Errorf("lifetime: %+v", agg)
	}
	if e.Handler() == nil {
		t.Error("Handler() returned nil")
	}
}

// TestEngineSubmitBatch exercises the public async job API: submit, wait,
// stream NDJSON results, and compare verdict counts with the synchronous
// batch.
func TestEngineSubmitBatch(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 4, JobWorkers: 2})
	defer e.Close()
	schema, err := e.CompileDTD(Figure1DTD, "r", Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]Doc, 150)
	for i := range docs {
		content := `<r><a><c>x</c><d></d></a></r>`
		if i%3 == 1 {
			content = `<r><a><b>text</b></a></r>` // potentially valid only
		}
		if i%3 == 2 {
			content = `<r><a>` // malformed
		}
		docs[i] = Doc{ID: fmt.Sprintf("d%d", i), Content: content}
	}
	job, err := e.SubmitBatch(schema, docs)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Job(job.ID()); !ok || got != job {
		t.Fatalf("Job(%q) lookup failed", job.ID())
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job stuck: %+v", job.Info())
	}
	info := job.Info()
	if info.State != "done" || info.Done != len(docs) {
		t.Fatalf("info = %+v", info)
	}
	var buf bytes.Buffer
	if _, err := job.WriteResults(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(docs) {
		t.Fatalf("results = %d lines, want %d", lines, len(docs))
	}
	if list := e.JobList(); len(list) != 1 || list[0].ID != job.ID() {
		t.Fatalf("JobList = %+v", list)
	}
	if st := e.JobStats(); st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("JobStats = %+v", st)
	}
	if _, err := e.CancelJob("nope"); err == nil {
		t.Fatal("CancelJob on unknown id must error")
	}
}
