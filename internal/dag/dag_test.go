package dag

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/dtd"
)

func buildFigure1(t *testing.T) *DAG {
	t.Helper()
	return Build(dtd.MustParse(dtd.Figure1))
}

func TestFigure4DAGForA(t *testing.T) {
	// Figure 4 shows DAG_a for a -> (b?, (c|f), d): after normalization
	// b -> {c, f} -> d, with entry {b}.
	g := buildFigure1(t)
	da := g.Element("a")
	if da == nil {
		t.Fatal("no DAG for a")
	}
	if len(da.Entry) != 1 || da.Entry[0].Label() != "b" {
		t.Fatalf("entry = %v", labels(da.Entry))
	}
	b := da.Entry[0]
	if got := labels(b.Succ); !reflect.DeepEqual(got, []string{"c", "f"}) {
		t.Fatalf("succ(b) = %v, want [c f]", got)
	}
	for _, n := range b.Succ {
		if got := labels(n.Succ); !reflect.DeepEqual(got, []string{"d"}) {
			t.Fatalf("succ(%s) = %v, want [d]", n.Label(), got)
		}
		if n.Type != Simple {
			t.Errorf("%s should be a simple node", n.Label())
		}
	}
	// The paths of DAG_a correspond to the production alternatives
	// A -> BCD and A -> BFD (Figure 4's observation).
	paths := da.Paths()
	want := [][]string{{"b", "c", "d"}, {"b", "f", "d"}}
	sortPaths(paths)
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v, want %v", paths, want)
	}
}

func TestFigure4DAGForD(t *testing.T) {
	// Figure 4: DAG_d is a single star-group node labeled "PCDATA, e".
	g := buildFigure1(t)
	dd := g.Element("d")
	if len(dd.Entry) != 1 {
		t.Fatalf("entry = %v", labels(dd.Entry))
	}
	n := dd.Entry[0]
	if n.Type != Group {
		t.Fatal("d's node must be a star-group")
	}
	if !n.HasPCDATA {
		t.Error("d's star-group must contain PCDATA")
	}
	if !reflect.DeepEqual(n.Elements, []string{"e"}) {
		t.Errorf("elements = %v, want [e]", n.Elements)
	}
	if got := n.Label(); got != "PCDATA, e" {
		t.Errorf("label = %q, want %q (as drawn in Figure 4)", got, "PCDATA, e")
	}
	if len(n.Succ) != 0 {
		t.Error("star-group node has no successors here")
	}
}

func TestDAGForRPlusBecomesStarGroup(t *testing.T) {
	// r -> (a+) normalizes to (a)*: a star-group node with element set {a}.
	g := buildFigure1(t)
	dr := g.Element("r")
	if len(dr.Entry) != 1 || dr.Entry[0].Type != Group {
		t.Fatalf("r's DAG should be one star-group node, got %v", dr.Dump())
	}
	if !reflect.DeepEqual(dr.Entry[0].Elements, []string{"a"}) {
		t.Errorf("elements = %v", dr.Entry[0].Elements)
	}
}

func TestDAGEmptyAndAny(t *testing.T) {
	g := Build(dtd.MustParse(`<!ELEMENT x EMPTY> <!ELEMENT y ANY>`))
	if len(g.Element("x").Entry) != 0 {
		t.Error("EMPTY element must have an empty DAG")
	}
	if !g.Element("y").Any {
		t.Error("ANY element must be marked Any")
	}
}

func TestDAGPCDATAOnly(t *testing.T) {
	// c -> #PCDATA becomes a PCDATA-only group node.
	g := buildFigure1(t)
	dc := g.Element("c")
	if len(dc.Entry) != 1 || dc.Entry[0].Type != Group || !dc.Entry[0].HasPCDATA {
		t.Fatalf("c's DAG: %s", dc.Dump())
	}
	if len(dc.Entry[0].Elements) != 0 {
		t.Errorf("c's group should have no elements, got %v", dc.Entry[0].Elements)
	}
}

func TestBranchRejoin(t *testing.T) {
	// ((a | b), c): both alternatives feed the same c node — a DAG, not a
	// tree (storage argument of Section 4.2).
	g := Build(dtd.MustParse(`<!ELEMENT x ((a | b), c)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`))
	dx := g.Element("x")
	if len(dx.Entry) != 2 {
		t.Fatalf("entry = %v", labels(dx.Entry))
	}
	c0 := dx.Entry[0].Succ
	c1 := dx.Entry[1].Succ
	if len(c0) != 1 || len(c1) != 1 || c0[0] != c1[0] {
		t.Error("both branches must share the same successor node")
	}
}

func TestT2DAG(t *testing.T) {
	// T2: a -> ((a | b), b): entry {a, b}, both to a second b node.
	g := Build(dtd.MustParse(dtd.T2))
	da := g.Element("a")
	if got := labels(da.Entry); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("entry = %v", got)
	}
	if da.Entry[0].Succ[0] != da.Entry[1].Succ[0] {
		t.Error("branches must rejoin at the second b")
	}
	paths := da.Paths()
	sortPaths(paths)
	want := [][]string{{"a", "b"}, {"b", "b"}}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v, want %v", paths, want)
	}
}

func TestNodeIDsTopological(t *testing.T) {
	g := buildFigure1(t)
	for _, name := range []string{"r", "a", "b", "c", "d", "f"} {
		ed := g.Element(name)
		for _, n := range ed.Nodes() {
			for _, s := range n.Succ {
				if s.ID <= n.ID {
					t.Errorf("DAG_%s: edge %d -> %d not topological", name, n.ID, s.ID)
				}
			}
		}
	}
}

func TestDumpStable(t *testing.T) {
	g := buildFigure1(t)
	d1 := g.Element("a").Dump()
	d2 := Build(dtd.MustParse(dtd.Figure1)).Element("a").Dump()
	if d1 != d2 {
		t.Errorf("Dump not deterministic:\n%s\n%s", d1, d2)
	}
}

func labels(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label()
	}
	sort.Strings(out)
	return out
}

func sortPaths(paths [][]string) {
	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i], paths[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
