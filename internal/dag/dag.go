// Package dag implements the Directed Acyclic Graph model of a DTD from
// Section 4.2 of the paper (Figure 4). For each element x a DAG_x is built
// from the normalized content model (Corollary 3.1 applied, star-groups
// flattened per Proposition 1): its nodes are simple element nodes and
// star-group nodes, and edges connect adjacent content particles, with "|"
// introducing branching. Every root-to-leaf path spells one production
// alternative of X̂.
package dag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dtd"
)

// NodeType distinguishes the two node shapes of the paper's DAG model.
type NodeType int

const (
	// Simple is a node for a single element occurrence outside any
	// star-group (drawn as a circle in Figure 4).
	Simple NodeType = iota
	// Group is a star-group node labeled with the element set of the group
	// (drawn as a box in Figure 4).
	Group
)

// Node is a DAG node. Exactly one of the Simple/Group payloads is
// meaningful, per Type.
type Node struct {
	Type NodeType
	// Element is the element name of a Simple node.
	Element string
	// Elements is the sorted element set of a Group node.
	Elements []string
	// HasPCDATA marks a Group node whose star-group contains #PCDATA.
	HasPCDATA bool
	// Succ are the nodes adjacent after this one (the paper's
	// children(n)).
	Succ []*Node
	// ID is unique within one ElementDAG, assigned in construction order;
	// the recognizer uses it for frontier deduplication.
	ID int
}

// Label renders the node label as in Figure 4: the element name for simple
// nodes, the comma-separated element list (with PCDATA) for group nodes.
func (n *Node) Label() string {
	if n.Type == Simple {
		return n.Element
	}
	parts := []string{}
	if n.HasPCDATA {
		parts = append(parts, "PCDATA")
	}
	parts = append(parts, n.Elements...)
	return strings.Join(parts, ", ")
}

// ElementDAG is the DAG of a single element's content model: a virtual root
// labeled with the element whose successors are the first content
// particles. EMPTY elements have a root with no successors; ANY elements
// have Any set and no graph.
type ElementDAG struct {
	Element string
	// Entry lists the first nodes of the content model (the paper's
	// children(root)).
	Entry []*Node
	// Any marks an ANY content model, for which ECPV is trivially "yes"
	// (Section 4, last paragraph before 4.1).
	Any bool
	// nodes in construction order (topological: successors come later).
	nodes []*Node
}

// Nodes returns all nodes of the DAG in a topological order.
func (d *ElementDAG) Nodes() []*Node { return d.nodes }

// DAG is the collection DAG_T = ∪ DAG_x for all x ∈ T.
type DAG struct {
	ByElement map[string]*ElementDAG
}

// Element returns DAG_x, or nil if x is undeclared.
func (g *DAG) Element(x string) *ElementDAG { return g.ByElement[x] }

// Build constructs DAG_T from the DTD. Content models are normalized and
// star-group-flattened first, so the builder sees only names, sequences,
// choices and star-groups.
func Build(d *dtd.DTD) *DAG {
	g := &DAG{ByElement: make(map[string]*ElementDAG, len(d.Order))}
	for _, name := range d.Order {
		g.ByElement[name] = buildElement(d.Elements[name])
	}
	return g
}

func buildElement(decl *dtd.ElementDecl) *ElementDAG {
	ed := &ElementDAG{Element: decl.Name}
	switch decl.Category {
	case dtd.Empty:
		return ed
	case dtd.Any:
		ed.Any = true
		return ed
	}
	model := contentmodel.FlattenStarGroups(contentmodel.Normalize(decl.Model))
	b := &builder{dag: ed}
	entry, _ := b.build(model)
	ed.Entry = entry
	return ed
}

type builder struct {
	dag *ElementDAG
}

func (b *builder) newNode(n *Node) *Node {
	n.ID = len(b.dag.nodes)
	b.dag.nodes = append(b.dag.nodes, n)
	return n
}

// build returns the entry and exit node sets for expr. Edges from an
// expression's exits to the following expression's entries are added by the
// sequence case.
func (b *builder) build(e *contentmodel.Expr) (entry, exit []*Node) {
	switch e.Kind {
	case contentmodel.KindName:
		n := b.newNode(&Node{Type: Simple, Element: e.Name})
		return []*Node{n}, []*Node{n}
	case contentmodel.KindPCDATA:
		// A bare #PCDATA outside a star (the "(#PCDATA)" mixed model, as in
		// element c of Figure 1) becomes a PCDATA-only group node: on the
		// inputs produced by δ_T (no two adjacent σ) the languages σ|ε and
		// σ* coincide.
		n := b.newNode(&Node{Type: Group, HasPCDATA: true})
		return []*Node{n}, []*Node{n}
	case contentmodel.KindStar:
		// After FlattenStarGroups every star is a star-group in canonical
		// (a1,...,an)* form: one group node.
		group := e.Children[0]
		names := group.ElementNames()
		sort.Strings(names)
		n := b.newNode(&Node{Type: Group, Elements: names, HasPCDATA: group.HasPCDATA()})
		return []*Node{n}, []*Node{n}
	case contentmodel.KindSeq:
		entry, exit = b.build(e.Children[0])
		for _, c := range e.Children[1:] {
			centry, cexit := b.build(c)
			for _, x := range exit {
				x.Succ = append(x.Succ, centry...)
			}
			exit = cexit
		}
		return entry, exit
	case contentmodel.KindChoice:
		for _, c := range e.Children {
			centry, cexit := b.build(c)
			entry = append(entry, centry...)
			exit = append(exit, cexit...)
		}
		return entry, exit
	}
	panic(fmt.Sprintf("dag: unexpected expression kind %v after normalization", e.Kind))
}

// RawNode is the serializable shape of one Node: successors by ID instead
// of by pointer.
type RawNode struct {
	Group     bool
	Element   string
	Elements  []string
	HasPCDATA bool
	Succ      []int
}

// RawElement is the serializable shape of an ElementDAG: nodes in ID order
// with entry points by ID. It exists for the compiled-schema disk cache
// (internal/core's binary codec).
type RawElement struct {
	Any   bool
	Entry []int
	Nodes []RawNode
}

// Raw exports the DAG's structure for serialization.
func (d *ElementDAG) Raw() RawElement {
	r := RawElement{Any: d.Any}
	for _, e := range d.Entry {
		r.Entry = append(r.Entry, e.ID)
	}
	for _, n := range d.nodes {
		rn := RawNode{
			Group:     n.Type == Group,
			Element:   n.Element,
			Elements:  n.Elements,
			HasPCDATA: n.HasPCDATA,
		}
		for _, s := range n.Succ {
			rn.Succ = append(rn.Succ, s.ID)
		}
		r.Nodes = append(r.Nodes, rn)
	}
	return r
}

// ElementFromRaw rebuilds an ElementDAG from its raw form, validating that
// every node and entry reference is in range.
func ElementFromRaw(element string, r RawElement) (*ElementDAG, error) {
	ed := &ElementDAG{Element: element, Any: r.Any}
	if r.Any {
		return ed, nil
	}
	ed.nodes = make([]*Node, len(r.Nodes))
	for i := range r.Nodes {
		ed.nodes[i] = &Node{ID: i}
	}
	resolve := func(ids []int) ([]*Node, error) {
		if len(ids) == 0 {
			return nil, nil
		}
		out := make([]*Node, len(ids))
		for i, id := range ids {
			if id < 0 || id >= len(ed.nodes) {
				return nil, fmt.Errorf("dag: node reference %d out of range for %q (%d nodes)", id, element, len(ed.nodes))
			}
			out[i] = ed.nodes[id]
		}
		return out, nil
	}
	for i, rn := range r.Nodes {
		n := ed.nodes[i]
		if rn.Group {
			n.Type = Group
		}
		n.Element = rn.Element
		n.Elements = rn.Elements
		n.HasPCDATA = rn.HasPCDATA
		succ, err := resolve(rn.Succ)
		if err != nil {
			return nil, err
		}
		n.Succ = succ
	}
	entry, err := resolve(r.Entry)
	if err != nil {
		return nil, err
	}
	ed.Entry = entry
	return ed, nil
}

// Paths enumerates all root-to-leaf label sequences of the DAG — each is
// one production alternative of X̂ (the Figure 4 property). Intended for
// tests and the dtdinfo tool; exponential in the worst case.
func (d *ElementDAG) Paths() [][]string {
	if len(d.Entry) == 0 {
		return nil
	}
	var out [][]string
	var walk func(n *Node, prefix []string)
	walk = func(n *Node, prefix []string) {
		prefix = append(prefix[:len(prefix):len(prefix)], n.Label())
		if len(n.Succ) == 0 {
			out = append(out, prefix)
			return
		}
		for _, s := range n.Succ {
			walk(s, prefix)
		}
	}
	for _, e := range d.Entry {
		walk(e, nil)
	}
	return out
}

// Dump renders the DAG in a stable text form for tests and tooling: one
// line per node, "id(label) -> succIDs".
func (d *ElementDAG) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DAG(%s)", d.Element)
	if d.Any {
		b.WriteString(" ANY\n")
		return b.String()
	}
	b.WriteString(" entry=[")
	for i, e := range d.Entry {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", e.ID)
	}
	b.WriteString("]\n")
	for _, n := range d.nodes {
		fmt.Fprintf(&b, "  %d(%s) ->", n.ID, n.Label())
		for _, s := range n.Succ {
			fmt.Fprintf(&b, " %d", s.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
