package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmltext"
)

// byteCorpus builds a mixed corpus (valid, stripped, corrupted, truncated)
// for one generated DTD, mirroring the engine's differential corpus.
func byteCorpus(rng *rand.Rand, d *dtd.DTD, root string) []string {
	var docs []string
	for i := 0; i < 25; i++ {
		docs = append(docs, gen.GenValid(rng, d, root, gen.DocOptions{MaxDepth: 8}).String())
	}
	for i := 0; i < 20; i++ {
		doc := gen.GenValid(rng, d, root, gen.DocOptions{MaxDepth: 8})
		gen.Strip(rng, doc, 0.3+0.5*rng.Float64())
		docs = append(docs, doc.String())
	}
	for i := 0; i < 15; i++ {
		doc := gen.GenValid(rng, d, root, gen.DocOptions{MaxDepth: 8})
		gen.Corrupt(rng, d, doc)
		docs = append(docs, doc.String())
	}
	for i := 0; i < 10; i++ {
		src := gen.GenValid(rng, d, root, gen.DocOptions{MaxDepth: 8}).String()
		docs = append(docs, src[:rng.Intn(len(src))])
	}
	return docs
}

// TestCheckStreamBytesMatchesString is the checker half of the byte-path
// differential acceptance criterion: CheckStreamBytes must return exactly
// the same verdict — including error text and violation typing — as
// CheckStream on the full generated corpus, across all three DTD
// recursion classes. Run under -race in CI.
func TestCheckStreamBytesMatchesString(t *testing.T) {
	classes := []struct {
		name string
		c    gen.DTDClass
	}{
		{"nonrecursive", gen.ClassNonRecursive},
		{"weak", gen.ClassWeak},
		{"strong", gen.ClassStrong},
	}
	total := 0
	for ci, cl := range classes {
		t.Run(cl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + ci)))
			d := gen.RandDTD(rng, gen.DTDOptions{Elements: 10, Class: cl.c})
			s, err := Compile(d, "e0", Options{})
			if err != nil {
				t.Fatalf("generated DTD does not compile: %v\n%s", err, d.String())
			}
			docs := byteCorpus(rng, d, "e0")
			total += len(docs)
			for i, xml := range docs {
				strErr := s.CheckStream(xml)
				byteErr := s.CheckStreamBytes([]byte(xml))
				if !sameVerdict(strErr, byteErr) {
					t.Errorf("doc %d: verdict mismatch\n  string: %v\n  bytes:  %v\n  doc: %.200q",
						i, strErr, byteErr, xml)
				}
				// Lexer half of the differential: identical token streams.
				strToks, serr := xmltext.Tokenize(xml)
				byteToks, berr := xmltext.TokenizeBytes([]byte(xml))
				if (serr == nil) != (berr == nil) || !reflect.DeepEqual(strToks, byteToks) {
					t.Errorf("doc %d: token stream mismatch (%v vs %v)", i, serr, berr)
				}
			}
		})
	}
	if total < 200 {
		t.Fatalf("corpus too small: %d documents, want >= 200", total)
	}
}

// sameVerdict compares two checker results: same acceptance, same
// violation typing, same message.
func sameVerdict(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return IsViolation(a) == IsViolation(b) && a.Error() == b.Error()
}

// TestCheckStreamBytesFixtures covers the deterministic fixture documents
// used across the test suite, including explicit byte-path edge cases.
func TestCheckStreamBytesFixtures(t *testing.T) {
	schemas := fuzzSchemas(t)
	inputs := []string{
		`<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`,
		`<r><a><b>A quick brown</b><e></e><c> fox</c> dog</a></r>`,
		`<r><a><c>x</c><d></d></a></r>`,
		`<play><title>t</title><personae><persona>p</persona></personae></play>`,
		`<p>text <b>bold <i>both</i></b> tail</p>`,
		`<a><b></b><b></b></a>`,
		`<r>`, `</r>`, `<r></r><r></r>`, `<r><a></b></r>`, `x<r></r>`,
		`<r><!-- c --><?pi d?></r>`, `<r><![CDATA[<a>]]></r>`, ``,
		`<r>&lt;escaped&gt;</r>`,
		`<undeclared><r></r></undeclared>`,
		"  <r></r>  ",
	}
	for _, s := range schemas {
		for _, xml := range inputs {
			strErr := s.CheckStream(xml)
			byteErr := s.CheckStreamBytes([]byte(xml))
			if !sameVerdict(strErr, byteErr) {
				t.Errorf("schema %s, doc %q:\n  string: %v\n  bytes:  %v", s.Root, xml, strErr, byteErr)
			}
		}
	}
}

// TestRunBytesReuseAcrossDocuments exercises the engine's pooling pattern:
// one checker driven over many byte documents with interleaved verdicts.
func TestRunBytesReuseAcrossDocuments(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{})
	c := s.NewStreamChecker()
	docs := []struct {
		xml string
		ok  bool
	}{
		{`<r><a><c>x</c><d></d></a></r>`, true},
		{`<r><a><b>x</b><e></e><c>y</c></a></r>`, false},
		{`<r><a>`, false},
		{`<r><a><c>x</c><d></d></a></r>`, true},
	}
	for round := 0; round < 3; round++ {
		for i, d := range docs {
			err := c.RunBytes([]byte(d.xml))
			if (err == nil) != d.ok {
				t.Fatalf("round %d doc %d: got %v, want ok=%t", round, i, err, d.ok)
			}
		}
	}
}

// TestRunBytesSteadyStateAllocs pins the zero-copy promise at the checker
// level: after warm-up, a pooled checker re-checking an entity-free
// potentially valid document allocates only its per-element recognizers.
func TestRunBytesSteadyStateAllocs(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Play), "play", Options{})
	var sb strings.Builder
	sb.WriteString("<play><title>t</title><personae>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<persona>someone</persona>")
	}
	sb.WriteString("</personae></play>")
	src := []byte(sb.String())
	c := s.NewStreamChecker()
	run := func() {
		if err := c.RunBytes(src); err != nil {
			t.Fatal(err)
		}
	}
	run()
	bytesAllocs := testing.AllocsPerRun(10, run)
	strSrc := sb.String()
	strAllocs := testing.AllocsPerRun(10, func() {
		if err := c.Run(strSrc); err != nil {
			t.Fatal(err)
		}
	})
	if bytesAllocs >= strAllocs {
		t.Errorf("byte path allocates %.0f/doc, string path %.0f/doc — byte path must allocate strictly less", bytesAllocs, strAllocs)
	}
	// The string path allocates per token; the byte path only per open
	// element (recognizer state). Demand a big margin, not a rounding win.
	if bytesAllocs > strAllocs/2 {
		t.Errorf("byte path allocates %.0f/doc, want at most half of the string path's %.0f/doc", bytesAllocs, strAllocs)
	}
}
