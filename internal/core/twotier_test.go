package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/validator"
	"repro/internal/xmltext"
)

// twoTierPair is one schema compiled both ways — with the content-model
// DFA fast path and recognizer-only — plus the full validator, the ground
// truth for the strict-validity shortcut.
type twoTierPair struct {
	fast  *Schema
	slow  *Schema
	valid *validator.Validator
}

func newTwoTierPair(tb testing.TB, d *dtd.DTD, root string) twoTierPair {
	tb.Helper()
	v, err := validator.New(d, root)
	if err != nil {
		tb.Fatalf("validator.New(%s): %v", root, err)
	}
	return twoTierPair{
		fast:  MustCompile(d, root, Options{}),
		slow:  MustCompile(d, root, Options{DisableFastPath: true}),
		valid: v,
	}
}

// twoTierPairs compiles fast/slow twins of the fuzz fixture schemas — one
// per recursion class, plus the paper's Figure 1.
func twoTierPairs(tb testing.TB) []twoTierPair {
	tb.Helper()
	return []twoTierPair{
		newTwoTierPair(tb, dtd.MustParse(dtd.Figure1), "r"),
		newTwoTierPair(tb, dtd.MustParse(dtd.Play), "play"),
		newTwoTierPair(tb, dtd.MustParse(dtd.WeakRecursive), "p"),
		newTwoTierPair(tb, dtd.MustParse(dtd.T2), "a"),
	}
}

// twoTierCheckers returns the four dispatch configurations whose verdicts
// must be indistinguishable: the two-tier fast path, the recognizer-only
// schema, and the forced-fallback knob at 0 (replay of an empty prefix)
// and 2 (replay of a nonempty DFA-viable prefix).
func (p twoTierPair) twoTierCheckers() (names []string, checkers []*StreamChecker) {
	fast := p.fast.NewStreamChecker()
	slow := p.slow.NewStreamChecker()
	forced0 := p.fast.NewStreamChecker()
	forced0.ForceFallbackAfter(0)
	forced2 := p.fast.NewStreamChecker()
	forced2.ForceFallbackAfter(2)
	return []string{"fast", "slow", "forced0", "forced2"},
		[]*StreamChecker{fast, slow, forced0, forced2}
}

// driveTwoTier feeds xml token-for-token into all four checker
// configurations and fails the test at the first event where any verdict
// (acceptance, violation typing, or message) diverges from the
// recognizer-only reference. It returns the reference's final error and
// the fast checker for strict-validity inspection.
func driveTwoTier(t *testing.T, p twoTierPair, xml string) (error, *StreamChecker) {
	t.Helper()
	names, checkers := p.twoTierCheckers()
	for _, c := range checkers {
		c.Reset()
	}
	event := 0
	lx := xmltext.NewLexer(xml)
	for {
		tok, lexErr := lx.Next()
		if lexErr != nil || tok == nil {
			break
		}
		event++
		errs := make([]error, len(checkers))
		for i, c := range checkers {
			switch tok.Kind {
			case xmltext.StartTag:
				errs[i] = c.StartElement(tok.Name)
			case xmltext.EndTag:
				errs[i] = c.EndElement(tok.Name)
			case xmltext.Text:
				errs[i] = c.Text(tok.Data)
			}
		}
		for i := range checkers {
			if !sameVerdict(errs[1], errs[i]) {
				t.Fatalf("event %d (%v %q) of %q: %s and %s disagree\n  %s: %v\n  %s: %v",
					event, tok.Kind, tok.Name, xml, names[1], names[i], names[1], errs[1], names[i], errs[i])
			}
		}
		if errs[1] != nil {
			return errs[1], checkers[0]
		}
	}
	closes := make([]error, len(checkers))
	for i, c := range checkers {
		closes[i] = c.Close()
	}
	for i := range checkers {
		if !sameVerdict(closes[1], closes[i]) {
			t.Fatalf("Close of %q: %s and %s disagree\n  %s: %v\n  %s: %v",
				xml, names[1], names[i], names[1], closes[1], names[i], closes[i])
		}
	}
	return closes[1], checkers[0]
}

// checkStrictClaim asserts the strict-validity shortcut is sound: whenever
// the fast checker claims StrictlyValid, the full validator must accept
// the parsed tree. (The converse is not required — strict is a
// conservative proof, and false only defers to the tree pass.)
func checkStrictClaim(t *testing.T, p twoTierPair, xml string, fast *StreamChecker) {
	t.Helper()
	if !fast.StrictlyValid() {
		return
	}
	doc, err := dom.Parse(xml)
	if err != nil {
		t.Fatalf("StrictlyValid claimed on unparseable input %q: %v", xml, err)
	}
	if verr := p.valid.Validate(doc.Root); verr != nil {
		t.Fatalf("StrictlyValid claimed but the validator rejects %q: %v", xml, verr)
	}
}

// FuzzDFAVsRecognizer differentially fuzzes the two-tier dispatch: the DFA
// fast path, the recognizer-only slow tier, and the forced-fallback replay
// path must produce identical verdicts token-for-token on arbitrary input,
// across all three recursion classes — the invariant that makes the fast
// path a pure optimization. It also pins the strict-validity shortcut
// against the full validator.
func FuzzDFAVsRecognizer(f *testing.F) {
	for _, seed := range []string{
		`<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`,
		`<r><a><b>A quick brown</b><e></e><c> fox</c> dog</a></r>`,
		`<r><a><c>x</c><d></d></a></r>`,
		`<play><title>t</title><personae><persona>p</persona></personae></play>`,
		`<p>text <b>bold <i>both</i></b> tail</p>`,
		`<a><b></b><b></b></a>`,
		`<a><b></b><b></b><b></b></a>`,
		`<r><a><e></e><e></e></a></r>`,
		`<r>`, `</r>`, `<r></r><r></r>`, `<r><a></b></r>`, `x<r></r>`,
		`<r><!-- c --><?pi d?></r>`, `<r><![CDATA[<a>]]></r>`, ``,
	} {
		f.Add(seed)
	}
	pairs := twoTierPairs(f)
	f.Fuzz(func(t *testing.T, xml string) {
		for _, p := range pairs {
			err, fast := driveTwoTier(t, p, xml)
			if err == nil {
				checkStrictClaim(t, p, xml, fast)
			}
		}
	})
}

// TestTwoTierDifferentialGenerated runs the four checker configurations
// over 1000+ generated documents — valid, tag-stripped (PV by Theorem 2),
// and corrupted, over random DTDs of every recursion class and the
// fixtures — pinning verdict equality and strict-shortcut soundness at
// scale.
func TestTwoTierDifferentialGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(1511))
	pairs := twoTierPairs(t)
	for _, class := range []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong} {
		for i := 0; i < 3; i++ {
			d := gen.RandDTD(rng, gen.DTDOptions{Elements: 6 + rng.Intn(10), Class: class})
			pairs = append(pairs, newTwoTierPair(t, d, "e0"))
		}
	}
	docs := 0
	for _, p := range pairs {
		root := p.fast.Root
		for i := 0; i < 80; i++ {
			doc := gen.GenValid(rng, p.fast.DTD, root, gen.DocOptions{MaxDepth: 6, MaxRepeat: 3})
			switch i % 4 {
			case 1:
				gen.Strip(rng, doc, 0.3)
			case 2:
				gen.StripAll(doc)
			case 3:
				gen.Corrupt(rng, p.fast.DTD, doc)
			}
			xml := doc.String()
			err, fast := driveTwoTier(t, p, xml)
			if err == nil {
				checkStrictClaim(t, p, xml, fast)
			}
			docs++
		}
	}
	if docs < 1000 {
		t.Fatalf("differential corpus too small: %d documents, want >= 1000", docs)
	}
}

// TestTwoTierStrictMatchesValidator pins the corners where the strict
// shortcut must stand down even though the stream checker sees nothing
// wrong: checker-invisible text inside EMPTY elements, non-schema roots
// under AllowAnyRoot, incomplete-but-completable content, and no-fast-path
// recursion.
func TestTwoTierStrictMatchesValidator(t *testing.T) {
	fig1 := dtd.MustParse(dtd.Figure1)
	cases := []struct {
		name   string
		dtdSrc *dtd.DTD
		root   string
		opts   Options
		xml    string
		strict bool
	}{
		{"valid-doc-strict", fig1, "r", Options{},
			`<r><a><b><d>t</d></b><c>y</c><d><e></e></d></a></r>`, true},
		{"incomplete-not-strict", fig1, "r", Options{},
			`<r></r>`, false}, // PV (completable) but not a complete word of (a+)
		{"empty-elem-with-ws", fig1, "r", Options{IgnoreWhitespaceText: true},
			`<r><a><b><d>t</d></b><c>y</c><d><e> </e></d></a></r>`, false}, // ws inside EMPTY <e> is invisible to the checker, fatal to the validator
		{"empty-elem-cdata", fig1, "r", Options{},
			`<r><a><b><d>t</d></b><c>y</c><d><e><![CDATA[]]></e></d></a></r>`, false},
		{"anyroot-nonschema-root", fig1, "r", Options{AllowAnyRoot: true},
			`<d><e></e>t</d>`, false}, // stream accepts any declared root; the validator still pins <r>
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := MustCompile(tc.dtdSrc, tc.root, tc.opts)
			c := s.NewStreamChecker()
			if err := c.Run(tc.xml); err != nil {
				t.Fatalf("Run(%q): %v", tc.xml, err)
			}
			if got := c.StrictlyValid(); got != tc.strict {
				t.Fatalf("StrictlyValid(%q) = %v, want %v", tc.xml, got, tc.strict)
			}
			if c.StrictlyValid() {
				v, err := validator.New(tc.dtdSrc, tc.root)
				if err != nil {
					t.Fatal(err)
				}
				doc := dom.MustParse(tc.xml)
				if verr := v.Validate(doc.Root); verr != nil {
					t.Fatalf("strict claim contradicts validator on %q: %v", tc.xml, verr)
				}
			}
		})
	}
}

// TestTwoTierFastPathStats pins the hit/fallback accounting the engine
// aggregates into pv_engine_fast_path_* metrics.
func TestTwoTierFastPathStats(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{})
	c := s.NewStreamChecker()

	// Fully valid: every element settles on its DFA lane.
	if err := c.Run(`<r><a><b><d>t</d></b><c>y</c><d><e></e></d></a></r>`); err != nil {
		t.Fatal(err)
	}
	hits, fallbacks := c.FastPathStats()
	if hits != 7 || fallbacks != 0 {
		t.Fatalf("valid doc: hits=%d fallbacks=%d, want 7/0", hits, fallbacks)
	}
	if !c.StrictlyValid() {
		t.Fatal("valid doc not flagged strictly valid")
	}

	// <a> with children (e, e): the DFA for (b?, (c | f), d) dies at the
	// first <e>, so <a> falls back; ancestors and siblings keep their lanes.
	if err := c.Run(`<r><a><e></e><e></e></a></r>`); err != nil {
		t.Fatal(err)
	}
	hits, fallbacks = c.FastPathStats()
	if fallbacks != 1 {
		t.Fatalf("fallback doc: fallbacks=%d, want 1 (hits=%d)", fallbacks, hits)
	}
	if hits != 3 { // r, e, e stay on their lanes
		t.Fatalf("fallback doc: hits=%d, want 3", hits)
	}
	if c.StrictlyValid() {
		t.Fatal("fallback doc must not claim strict validity")
	}

	// Recognizer-only compilation never touches the fast path.
	slow := MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{DisableFastPath: true})
	sc := slow.NewStreamChecker()
	if err := sc.Run(`<r><a><b><d>t</d></b><c>y</c><d><e></e></d></a></r>`); err != nil {
		t.Fatal(err)
	}
	hits, fallbacks = sc.FastPathStats()
	if hits != 0 || fallbacks != 0 {
		t.Fatalf("slow schema: hits=%d fallbacks=%d, want 0/0", hits, fallbacks)
	}
	if sc.StrictlyValid() {
		t.Fatal("slow schema must never claim strict validity")
	}
}

// TestTwoTierConcurrentSharedDFA runs many checkers over one shared
// compiled schema (hence one shared set of DFA tables) from concurrent
// goroutines — the engine's deployment shape. Run under -race this pins
// that the tables are read-only after compilation.
func TestTwoTierConcurrentSharedDFA(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Play), "play", Options{})
	rng := rand.New(rand.NewSource(7))
	var docs []string
	var want []bool // potential validity per doc
	for i := 0; i < 32; i++ {
		doc := gen.GenValid(rng, s.DTD, "play", gen.DocOptions{MaxDepth: 6, MaxRepeat: 3})
		if i%3 == 1 {
			gen.Strip(rng, doc, 0.4)
		}
		if i%3 == 2 {
			gen.Corrupt(rng, s.DTD, doc)
		}
		xml := doc.String()
		docs = append(docs, xml)
		want = append(want, s.CheckStream(xml) == nil)
	}
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.NewStreamChecker()
			for round := 0; round < 8; round++ {
				for i, xml := range docs {
					got := c.Run(xml) == nil
					if got != want[i] {
						errc <- fmt.Errorf("worker %d round %d doc %d: verdict %v, want %v", w, round, i, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
