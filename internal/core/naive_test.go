package core

import (
	"math/rand"
	"testing"

	"repro/internal/dtd"
)

// TestNaiveUnsoundLine29 pins down defect (1) of the literal Figure 5
// pseudocode: it accepts content c, b under a → (b, c), b → (c), although
// no insertion-only extension exists (the c precedes the real b in
// document order). The corrected recognizer rejects.
func TestNaiveUnsoundLine29(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b, c)> <!ELEMENT b (c)> <!ELEMENT c EMPTY>`)
	s := MustCompile(d, "a", Options{})
	input := Elems("c", "b")
	if !s.NewNaiveRecognizer("a", 8).Recognize(input) {
		t.Error("the paper-literal recognizer is expected to (wrongly) accept c, b")
	}
	if s.NewRecognizer("a").Recognize(input) {
		t.Error("the corrected recognizer must reject c, b")
	}
}

// TestNaiveLine29MasksShadowing documents the interplay of the two
// pseudocode defects: on [b, σ, e, d] under Figure 1 the literal algorithm
// reaches the right verdict (accept) through the WRONG path — the engaged
// d entry matches the real <d> tag via the unsound line 29, re-interpreting
// symbols already consumed inside the hypothesized d. Fixing the
// unsoundness alone (blocking line 29 on engaged entries, with set-of-nodes
// frontier semantics) would flip this input to a wrong reject; soundness
// therefore requires the fresh-position frontier refinement the production
// Recognizer implements (engaged entries do not shadow fresh positions).
// Regression for the refinement itself: TestEngagedDoesNotShadowFreshPosition.
func TestNaiveLine29MasksShadowing(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{})
	input := []Symbol{Elem("b"), Sigma, Elem("e"), Elem("d")}
	if !s.NewNaiveRecognizer("a", 8).Recognize(input) {
		t.Error("the paper-literal recognizer accepts [b, σ, e, d] (via unsound line 29)")
	}
	if !s.NewRecognizer("a").Recognize(input) {
		t.Error("the corrected recognizer must accept [b, σ, e, d] (via the fresh d position)")
	}
}

// TestNaiveAgreesOnPaperExamples: on the paper's own worked examples the
// two recognizers coincide — the defects are off the paper's happy path,
// which is presumably why they went unnoticed.
func TestNaiveAgreesOnPaperExamples(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{})
	cases := [][]Symbol{
		Elems("b", "e", "c"),                     // w's order: both reject
		{Elem("b"), Elem("c"), Sigma, Elem("e")}, // s: both accept
		{Elem("b"), Elem("c"), Sigma},            //
		{Elem("c"), Elem("d")},                   //
		{Sigma},                                  //
		Elems("e", "e"),                          //
	}
	for _, input := range cases {
		naive := s.NewNaiveRecognizer("a", 8).Recognize(input)
		fixed := s.NewRecognizer("a").Recognize(input)
		if naive != fixed {
			t.Errorf("disagreement on [%s]: naive=%v fixed=%v", FormatSymbols(input), naive, fixed)
		}
	}
}

// TestNaiveDisagreementRate measures how often the defects matter on random
// content sequences: disagreements must be exactly the two known patterns
// (naive-accepts-fixed-rejects via line 29, naive-rejects-fixed-accepts via
// set semantics) and rare overall.
func TestNaiveDisagreementRate(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{})
	names := []string{"a", "b", "c", "d", "e", "f"}
	rng := rand.New(rand.NewSource(11))
	total, disagree := 0, 0
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(5)
		input := make([]Symbol, n)
		for i := range input {
			if rng.Intn(5) == 0 {
				input[i] = Sigma
			} else {
				input[i] = Elem(names[rng.Intn(len(names))])
			}
		}
		elem := names[rng.Intn(len(names))]
		naive := s.NewNaiveRecognizer(elem, 8).Recognize(input)
		fixed := s.NewRecognizer(elem).Recognize(input)
		total++
		if naive != fixed {
			disagree++
		}
	}
	t.Logf("naive vs fixed: %d/%d disagreements", disagree, total)
	if disagree > total/5 {
		t.Errorf("suspiciously many disagreements: %d/%d", disagree, total)
	}
}
