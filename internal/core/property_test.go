package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// randContent builds a random content sequence over the DTD's names with no
// adjacent σ (the Δ_T invariant).
func randContent(rng *rand.Rand, names []string, maxLen int) []Symbol {
	n := rng.Intn(maxLen + 1)
	out := make([]Symbol, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 && (len(out) == 0 || !out[len(out)-1].Text) {
			out = append(out, Sigma)
		} else {
			out = append(out, Elem(names[rng.Intn(len(names))]))
		}
	}
	return out
}

// removeAt removes symbol i, merging σσ neighbours the removal may create.
func removeAt(content []Symbol, i int) []Symbol {
	out := append(append([]Symbol{}, content[:i]...), content[i+1:]...)
	for j := 1; j < len(out); j++ {
		if out[j].Text && out[j-1].Text {
			out = append(out[:j], out[j+1:]...)
			j--
		}
	}
	return out
}

// TestPropertyDeletionClosure is Theorem 2 at the content level: if a
// content sequence is accepted, deleting any single element symbol (the
// markup deletion of a childless element) keeps it accepted.
func TestPropertyDeletionClosure(t *testing.T) {
	fixtures := []struct{ src, root string }{
		{dtd.Figure1, "r"}, {dtd.Play, "play"}, {dtd.Article, "article"},
		{dtd.WeakRecursive, "p"},
	}
	for _, fix := range fixtures {
		d := dtd.MustParse(fix.src)
		s := MustCompile(d, fix.root, Options{})
		names := d.Names()
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			elem := names[rng.Intn(len(names))]
			content := randContent(rng, names, 6)
			if !s.CheckContent(elem, content) {
				return true // vacuous
			}
			for i, sym := range content {
				if sym.Text {
					continue
				}
				if !s.CheckContent(elem, removeAt(content, i)) {
					t.Logf("elem=%s content=[%s] minus #%d rejected",
						elem, FormatSymbols(content), i)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", fix.root, err)
		}
	}
}

// TestPropertyPrefixClosure: the recognizer is online, so acceptance of a
// sequence implies acceptance of every prefix (each prefix was accepted on
// the way). This pins the online property explicitly.
func TestPropertyPrefixClosure(t *testing.T) {
	d := dtd.MustParse(dtd.Article)
	s := MustCompile(d, "article", Options{})
	names := d.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		elem := names[rng.Intn(len(names))]
		content := randContent(rng, names, 8)
		if !s.CheckContent(elem, content) {
			return true
		}
		for i := 0; i <= len(content); i++ {
			if !s.CheckContent(elem, content[:i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTextInsertionProp3: inserting a σ anywhere into accepted
// content is accepted iff the element reaches #PCDATA (Proposition 3 lifted
// to content sequences: some enclosing element of the new text — possibly
// inserted — must allow character data; at the content level, σ insertion
// into an accepted sequence of an element x that reaches PCDATA is always
// completable... tested in the sound direction only: x not reaching PCDATA
// must reject any σ).
func TestPropertyTextInsertionProp3(t *testing.T) {
	d := dtd.MustParse(`
		<!ELEMENT r (x*, y*)>
		<!ELEMENT x EMPTY>
		<!ELEMENT y (x?)>
	`)
	s := MustCompile(d, "r", Options{})
	// No element reaches PCDATA: any content with σ must be rejected.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		content := randContent(rng, d.Names(), 5)
		hasSigma := false
		for _, sym := range content {
			if sym.Text {
				hasSigma = true
			}
		}
		got := s.CheckContent("r", content)
		if hasSigma && got {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStripDocumentClosure: Theorem 2 at the document level on
// random DTDs (quick-driven): stripping any subset of tags from a valid
// document keeps it potentially valid.
func TestPropertyStripDocumentClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		class := []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong}[rng.Intn(3)]
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 7, Class: class})
		s := MustCompile(d, "e0", Options{})
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 6})
		gen.Strip(rng, doc, rng.Float64())
		return s.CheckDocument(doc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRecognizerDeterminism: Validate is deterministic — the same
// sequence always yields the same verdict and trace.
func TestPropertyRecognizerDeterminism(t *testing.T) {
	d := dtd.MustParse(dtd.Figure1)
	s := MustCompile(d, "r", Options{})
	names := d.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		content := randContent(rng, names, 6)
		r1 := s.NewRecognizer("a")
		r2 := s.NewRecognizer("a")
		for _, sym := range content {
			a1 := r1.Validate(sym)
			a2 := r2.Validate(sym)
			if a1 != a2 || r1.TraceString() != r2.TraceString() {
				return false
			}
			if !a1 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
