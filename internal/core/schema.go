// Package core implements the paper's primary contribution: the
// ECRecognizer algorithm (Figure 5) for Element Content Potential Validity
// (Problem ECPV), the whole-document potential-validity check (Problem PV),
// a single-pass streaming variant, and the constant-time incremental update
// checks of Theorem 2 and Proposition 3.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/dtd"
	"repro/internal/reach"
)

// DefaultMaxDepth is the default bound on the depth of hypothetical
// (extension) documents considered for PV-strong recursive DTDs. The paper
// motivates a small bound: in practice most XML documents' depths are of
// one-digit magnitude (Section 4.3.1, citing [12]).
const DefaultMaxDepth = 16

// Options configures schema compilation.
type Options struct {
	// MaxDepth bounds the depth of extension documents considered when the
	// DTD is PV-strong recursive (Section 4.3.1). Zero means
	// DefaultMaxDepth. For non-PV-strong DTDs the recognizer is complete
	// regardless: the effective bound is raised to cover the longest
	// possible chain of missing intermediate elements.
	MaxDepth int
	// IgnoreWhitespaceText makes whitespace-only text nodes invisible to
	// the checker (they produce no σ symbol). Document-centric editing
	// usually wants false: all text is content.
	IgnoreWhitespaceText bool
	// AllowAnyRoot accepts documents whose root is any declared element,
	// not just the schema root.
	AllowAnyRoot bool
}

// Schema is a DTD compiled for potential-validity checking: the parsed
// declarations Γ, the designated root r, the reachability lookup table LT
// (Definition 5), and the DAG model DAG_T (Section 4.2).
type Schema struct {
	DTD  *dtd.DTD
	Root string
	LT   *reach.Table
	DAG  *dag.DAG

	opts  Options
	depth int // effective top-level recognizer depth
	// interned maps each declared element name to itself. The byte-path
	// checker looks names up with a []byte key (map[string]T indexing with
	// string(b) compiles to an allocation-free lookup), so start/end tags
	// never materialize a string on the hot path, and the names the checker
	// retains are the schema's own — they never alias a document buffer.
	interned map[string]string
}

// Compile builds a Schema for checking potential validity w.r.t. d and
// root. It fails if the root is undeclared, if any content model references
// an undeclared element (reachability would be unsound), or if some element
// is unproductive (the paper's usability assumption, Section 3.3: an
// unproductive element can never occur in a finite valid document, and
// Theorem 3 — every nonterminal derives ε — relies on its absence).
func Compile(d *dtd.DTD, root string, opts Options) (*Schema, error) {
	if _, ok := d.Elements[root]; !ok {
		return nil, fmt.Errorf("core: root element %q is not declared", root)
	}
	if missing := d.UndeclaredReferences(); len(missing) > 0 {
		return nil, fmt.Errorf("core: content models reference undeclared elements: %s", strings.Join(missing, ", "))
	}
	lt := reach.Build(d)
	if unprod := unproductive(d, lt); len(unprod) > 0 {
		return nil, fmt.Errorf("core: unproductive elements (can never appear in a finite valid document): %s", strings.Join(unprod, ", "))
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	s := &Schema{
		DTD:      d,
		Root:     root,
		LT:       lt,
		DAG:      dag.Build(d),
		opts:     opts,
		interned: make(map[string]string, len(d.Order)),
	}
	for _, name := range d.Order {
		s.interned[name] = name
	}
	// For non-PV-strong DTDs nested recognizers implement missing
	// intermediate elements along acyclic chains only, so a bound of
	// longest-chain+2 makes the algorithm complete (DESIGN.md §2). For
	// PV-strong DTDs the user bound is the semantics; we still never go
	// below the acyclic-chain requirement.
	minComplete := lt.LongestStrongChain() + 2
	s.depth = opts.MaxDepth
	if s.depth < minComplete {
		s.depth = minComplete
	}
	if lt.Class() != reach.PVStrongRecursive {
		s.depth = minComplete
	}
	return s, nil
}

// MustCompile is Compile that panics on error; for tests and fixtures.
func MustCompile(d *dtd.DTD, root string, opts Options) *Schema {
	s, err := Compile(d, root, opts)
	if err != nil {
		panic(err)
	}
	return s
}

func unproductive(d *dtd.DTD, lt *reach.Table) []string {
	var out []string
	for _, name := range d.Order {
		// Usable(name) marks name itself usable iff productive (an element
		// trivially reaches itself as root).
		if !lt.Usable(name)[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Class returns the DTD's recursion classification (Definitions 6-8).
func (s *Schema) Class() reach.Class { return s.LT.Class() }

// Options returns the options the schema was compiled with.
func (s *Schema) Options() Options { return s.opts }

// EffectiveDepth returns the depth bound actually used by top-level
// recognizers (the user bound adjusted for completeness on acyclic chains).
func (s *Schema) EffectiveDepth() int { return s.depth }

// CheckContent solves Problem ECPV: given an element name and the Δ_T
// symbol sequence of a node's children, it reports whether the content is
// potentially valid. Elements with ANY content accept trivially.
func (s *Schema) CheckContent(elem string, symbols []Symbol) bool {
	r := s.NewRecognizer(elem)
	return r.Recognize(symbols)
}

// CheckContentPrefix returns the number of symbols accepted before the
// first rejection; len(symbols) means the whole sequence is accepted.
func (s *Schema) CheckContentPrefix(elem string, symbols []Symbol) int {
	r := s.NewRecognizer(elem)
	for i, x := range symbols {
		if !r.Validate(x) {
			return i
		}
	}
	return len(symbols)
}
