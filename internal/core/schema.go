// Package core implements the paper's primary contribution: the
// ECRecognizer algorithm (Figure 5) for Element Content Potential Validity
// (Problem ECPV), the whole-document potential-validity check (Problem PV),
// a single-pass streaming variant, and the constant-time incremental update
// checks of Theorem 2 and Proposition 3.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/dfa"
	"repro/internal/dtd"
	"repro/internal/reach"
)

// DefaultMaxDepth is the default bound on the depth of hypothetical
// (extension) documents considered for PV-strong recursive DTDs. The paper
// motivates a small bound: in practice most XML documents' depths are of
// one-digit magnitude (Section 4.3.1, citing [12]).
const DefaultMaxDepth = 16

// Options configures schema compilation.
type Options struct {
	// MaxDepth bounds the depth of extension documents considered when the
	// DTD is PV-strong recursive (Section 4.3.1). Zero means
	// DefaultMaxDepth. For non-PV-strong DTDs the recognizer is complete
	// regardless: the effective bound is raised to cover the longest
	// possible chain of missing intermediate elements.
	MaxDepth int
	// IgnoreWhitespaceText makes whitespace-only text nodes invisible to
	// the checker (they produce no σ symbol). Document-centric editing
	// usually wants false: all text is content.
	IgnoreWhitespaceText bool
	// AllowAnyRoot accepts documents whose root is any declared element,
	// not just the schema root.
	AllowAnyRoot bool
	// DisableFastPath skips compiling the content-model DFA tables, so
	// every element runs on the PV recognizer alone (the slow tier).
	// Verdicts are identical either way; the knob exists for
	// apples-to-apples benching (X15) and as an operational escape hatch.
	DisableFastPath bool
}

// Schema is a DTD compiled for potential-validity checking: the parsed
// declarations Γ, the designated root r, the reachability lookup table LT
// (Definition 5), and the DAG model DAG_T (Section 4.2).
type Schema struct {
	DTD  *dtd.DTD
	Root string
	LT   *reach.Table
	DAG  *dag.DAG

	opts  Options
	depth int // effective top-level recognizer depth
	// interned maps each declared element name to its symbol-table row.
	// The byte-path checker looks names up with a []byte key (map[string]T
	// indexing with string(b) compiles to an allocation-free lookup), so
	// start/end tags never materialize a string on the hot path, and the
	// names the checker retains are the schema's own — they never alias a
	// document buffer. The row also carries the element's interned symbol
	// ID, so one lookup serves both the DFA fast path and the fallback.
	interned map[string]internedName
	// symNames maps a symbol ID back to its element name (index 0, σ, is
	// empty) — the replay direction when a checker leaves its DFA lane.
	symNames []string
	// isEmpty marks symbol IDs of elements declared EMPTY, consulted by
	// the strict-validity bookkeeping (an EMPTY element whose only content
	// is checker-invisible text is still invalid to the full validator).
	isEmpty []bool
	// fast holds the per-element content-model DFAs (the fast path of the
	// two-tier stream checker); nil when compiled with DisableFastPath.
	fast *dfa.Set
}

// internedName is one symbol-table row: the schema's own copy of a
// declared element name plus its DFA symbol ID (σ is ID 0; elements are
// 1-based in declaration order).
type internedName struct {
	name string
	id   int32
}

// Compile builds a Schema for checking potential validity w.r.t. d and
// root. It fails if the root is undeclared, if any content model references
// an undeclared element (reachability would be unsound), or if some element
// is unproductive (the paper's usability assumption, Section 3.3: an
// unproductive element can never occur in a finite valid document, and
// Theorem 3 — every nonterminal derives ε — relies on its absence).
func Compile(d *dtd.DTD, root string, opts Options) (*Schema, error) {
	if _, ok := d.Elements[root]; !ok {
		return nil, fmt.Errorf("core: root element %q is not declared", root)
	}
	if missing := d.UndeclaredReferences(); len(missing) > 0 {
		return nil, fmt.Errorf("core: content models reference undeclared elements: %s", strings.Join(missing, ", "))
	}
	lt := reach.Build(d)
	if unprod := unproductive(d, lt); len(unprod) > 0 {
		return nil, fmt.Errorf("core: unproductive elements (can never appear in a finite valid document): %s", strings.Join(unprod, ", "))
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	s := &Schema{
		DTD:  d,
		Root: root,
		LT:   lt,
		DAG:  dag.Build(d),
		opts: opts,
	}
	s.initSymbols()
	if !opts.DisableFastPath {
		s.fast = dfa.Compile(d, 0)
	}
	// For non-PV-strong DTDs nested recognizers implement missing
	// intermediate elements along acyclic chains only, so a bound of
	// longest-chain+2 makes the algorithm complete (DESIGN.md §2). For
	// PV-strong DTDs the user bound is the semantics; we still never go
	// below the acyclic-chain requirement.
	minComplete := lt.LongestStrongChain() + 2
	s.depth = opts.MaxDepth
	if s.depth < minComplete {
		s.depth = minComplete
	}
	if lt.Class() != reach.PVStrongRecursive {
		s.depth = minComplete
	}
	return s, nil
}

// MustCompile is Compile that panics on error; for tests and fixtures.
func MustCompile(d *dtd.DTD, root string, opts Options) *Schema {
	s, err := Compile(d, root, opts)
	if err != nil {
		panic(err)
	}
	return s
}

func unproductive(d *dtd.DTD, lt *reach.Table) []string {
	var out []string
	for _, name := range d.Order {
		// Usable(name) marks name itself usable iff productive (an element
		// trivially reaches itself as root).
		if !lt.Usable(name)[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// initSymbols builds the symbol table (interned names, ID mappings and
// the EMPTY-category bits) from the DTD; shared by Compile and the binary
// decoder.
func (s *Schema) initSymbols() {
	m := len(s.DTD.Order)
	s.interned = make(map[string]internedName, m)
	s.symNames = make([]string, m+1)
	s.isEmpty = make([]bool, m+1)
	for i, name := range s.DTD.Order {
		id := int32(i + 1)
		s.interned[name] = internedName{name: name, id: id}
		s.symNames[id] = name
		s.isEmpty[id] = s.DTD.Elements[name].Category == dtd.Empty
	}
}

// symbolOf maps an interned symbol ID back to its Δ_T symbol — the replay
// direction when a stream checker abandons a DFA lane and hands the
// buffered prefix to a recognizer.
func (s *Schema) symbolOf(id int32) Symbol {
	if id == 0 {
		return Sigma
	}
	return Elem(s.symNames[id])
}

// fastMachine returns the content-model DFA for the element with the
// given symbol ID, or nil when that element — or the whole schema — has
// no fast path.
func (s *Schema) fastMachine(id int32) *dfa.Machine {
	if s.fast == nil {
		return nil
	}
	return s.fast.Machine(id)
}

// FastPathEnabled reports whether the schema carries compiled DFA tables
// (false when compiled with Options.DisableFastPath).
func (s *Schema) FastPathEnabled() bool { return s.fast != nil }

// FastPathStates returns the total DFA state count across all element
// content models (0 without a fast path) — the pv_engine_dfa_states gauge
// sums this over resident schemas.
func (s *Schema) FastPathStates() int {
	if s.fast == nil {
		return 0
	}
	return s.fast.States()
}

// Class returns the DTD's recursion classification (Definitions 6-8).
func (s *Schema) Class() reach.Class { return s.LT.Class() }

// Options returns the options the schema was compiled with.
func (s *Schema) Options() Options { return s.opts }

// EffectiveDepth returns the depth bound actually used by top-level
// recognizers (the user bound adjusted for completeness on acyclic chains).
func (s *Schema) EffectiveDepth() int { return s.depth }

// CheckContent solves Problem ECPV: given an element name and the Δ_T
// symbol sequence of a node's children, it reports whether the content is
// potentially valid. Elements with ANY content accept trivially.
func (s *Schema) CheckContent(elem string, symbols []Symbol) bool {
	r := s.NewRecognizer(elem)
	return r.Recognize(symbols)
}

// CheckContentPrefix returns the number of symbols accepted before the
// first rejection; len(symbols) means the whole sequence is accepted.
func (s *Schema) CheckContentPrefix(elem string, symbols []Symbol) int {
	r := s.NewRecognizer(elem)
	for i, x := range symbols {
		if !r.Validate(x) {
			return i
		}
	}
	return len(symbols)
}
