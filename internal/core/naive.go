package core

import "repro/internal/dag"

// NaiveRecognizer is a literal transcription of the Figure 5 pseudocode,
// kept as an executable ablation of the two corrections the production
// Recognizer applies (see DESIGN.md §2 and EXPERIMENTS.md "Deviations"):
//
//  1. line 29 is applied as printed — a simple node matches its own element
//     tag even when its nested recognizer has already consumed input
//     (unsound: accepts content like c, b under a → (b, c), b → (c));
//  2. the active node set has set-of-DAG-nodes semantics — at most one
//     entry per DAG node — so an engaged entry shadows the fresh position
//     (incomplete: rejects content like b, σ, e, d under the Figure 1 DTD).
//
// It must never be used for real checking; tests use it to pin down the
// exact behavioral difference, and the ablation benchmark uses it to show
// the corrections are essentially free.
type NaiveRecognizer struct {
	schema  *Schema
	element string
	depth   int
	active  []*naiveEntry
	any     bool
	created *int
}

type naiveEntry struct {
	node *dag.Node
	sub  *NaiveRecognizer
}

// NewNaiveRecognizer builds the paper-literal recognizer with an explicit
// depth bound.
func (s *Schema) NewNaiveRecognizer(elem string, depth int) *NaiveRecognizer {
	counter := 0
	return s.newNaiveRecognizer(elem, depth, &counter)
}

func (s *Schema) newNaiveRecognizer(elem string, depth int, counter *int) *NaiveRecognizer {
	*counter++
	r := &NaiveRecognizer{schema: s, element: elem, depth: depth, created: counter}
	ed := s.DAG.Element(elem)
	if ed == nil {
		return r
	}
	if ed.Any {
		r.any = true
		return r
	}
	for _, n := range ed.Entry {
		r.active = append(r.active, &naiveEntry{node: n})
	}
	return r
}

// Created returns the number of recognizer objects constructed so far.
func (r *NaiveRecognizer) Created() int { return *r.created }

// Recognize is Figure 5's recognize(): feed all symbols.
func (r *NaiveRecognizer) Recognize(symbols []Symbol) bool {
	for _, x := range symbols {
		if !r.Validate(x) {
			return false
		}
	}
	return true
}

// Validate is Figure 5's validate() as printed, with set semantics on
// activeNodesSet.
func (r *NaiveRecognizer) Validate(x Symbol) bool {
	if r.any {
		return x.Text || r.schema.LT.Has(x.Name)
	}
	result := false
	queue := r.active
	inSet := make(map[int]bool, len(queue)*2)
	for _, e := range queue {
		inSet[e.node.ID] = true
	}
	var next []*naiveEntry
	var prepended []*naiveEntry

	appendChildren := func(n *dag.Node) {
		// Figure 5 lines 34-35: append children(n) to activeNodesSet —
		// same-symbol processing, set semantics.
		for _, s := range n.Succ {
			if !inSet[s.ID] {
				inSet[s.ID] = true
				queue = append(queue, &naiveEntry{node: s})
			}
		}
	}

	for i := 0; i < len(queue); i++ {
		e := queue[i]
		n := e.node
		if n.Type == dag.Group {
			// Lines 13-21.
			if r.groupMatchesNaive(n, x) {
				result = true
				next = append(next, e)
				continue
			}
			appendChildren(n)
			continue
		}
		y := n.Element
		// Lines 23-28.
		if r.symbolReachableFrom(y, x) {
			if e.sub == nil {
				e.sub = r.schema.newNaiveRecognizer(y, r.depth-1, r.created)
			}
			if e.sub.depth > 0 && e.sub.Validate(x) {
				result = true
				next = append(next, e)
				continue
			}
		}
		// Lines 29-33, as printed: no engagement check.
		if !x.Text && x.Name == y {
			result = true
			for _, s := range n.Succ {
				prepended = append(prepended, &naiveEntry{node: s})
			}
			continue
		}
		appendChildren(n)
	}

	if result {
		merged := append(prepended, next...)
		// Set semantics: one entry per DAG node.
		seen := map[int]bool{}
		out := merged[:0]
		for _, e := range merged {
			if seen[e.node.ID] {
				continue
			}
			seen[e.node.ID] = true
			out = append(out, e)
		}
		r.active = out
	}
	return result
}

func (r *NaiveRecognizer) groupMatchesNaive(n *dag.Node, x Symbol) bool {
	lt := r.schema.LT
	if x.Text {
		if n.HasPCDATA {
			return true
		}
		for _, y := range n.Elements {
			if lt.ReachesPCDATA(y) {
				return true
			}
		}
		return false
	}
	for _, y := range n.Elements {
		if y == x.Name || lt.Reachable(y, x.Name) {
			return true
		}
	}
	return false
}

func (r *NaiveRecognizer) symbolReachableFrom(y string, x Symbol) bool {
	if x.Text {
		return r.schema.LT.ReachesPCDATA(y)
	}
	return r.schema.LT.Reachable(y, x.Name)
}
