package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/dfa"
	"repro/internal/xmltext"
)

// ViolationError is a potential-validity violation reported by the stream
// checker: the input is well-formed XML so far, but its content cannot be
// extended to a valid document. Lexical and well-formedness problems
// (mismatched or unclosed tags, multiple roots, character data outside the
// root) are reported as plain errors instead, mirroring the tree path where
// dom.Parse rejects them before CheckDocument ever runs. Callers that need
// to tell the two apart (the concurrent engine, differential tests) use
// IsViolation.
type ViolationError struct{ Reason string }

// Error implements the error interface with the violation's reason.
func (e *ViolationError) Error() string { return e.Reason }

// IsViolation reports whether err is a potential-validity violation, as
// opposed to a lexical or well-formedness error.
func IsViolation(err error) bool {
	var v *ViolationError
	return errors.As(err, &v)
}

// frame is one open element of the stream checker. An element starts on
// its content model's DFA lane (mach + state) and buffers its child
// symbols in the checker's shared prefix arena; the first symbol the DFA
// cannot take lazily spawns the PV recognizer (rec), which replays the
// buffered prefix and takes over for the rest of that element's content.
// Ancestors keep their own lanes either way.
type frame struct {
	rec         *Recognizer  // nil while the element is on its DFA lane
	mach        *dfa.Machine // nil once fallen back (or never fast-pathed)
	name        string
	id          int32 // interned symbol ID of the element
	state       int32 // current DFA state while on the fast lane
	prefixStart int32 // start of this frame's slice of the prefix arena
	lastWasText bool  // collapses adjacent text events into one σ per δ_T
}

// StreamChecker checks whole-document potential validity in one pass over a
// token stream — the incremental formulation the paper recommends ("we can
// solve the potential validity problem incrementally, for each document
// node, by considering only node's children", Section 4). It is equivalent
// to CheckDocument and is what the editor layer and the large-document
// benchmarks use.
//
// Checking is two-tier: per open element the compiled content-model DFA
// (internal/dfa) settles each child symbol with one table load and zero
// allocations; the paper's ECRecognizer (Figure 5) — the machinery that
// can hypothesize inserted elements — runs only from the first symbol the
// DFA cannot take. A DFA-viable prefix is always completable, so the
// switch can never change a verdict, only defer the expensive sweep to
// the residue that needs it. The per-element buffered prefix holds
// interned symbol IDs only, adding O(children on the open path) memory to
// the checker's O(depth) frame stack.
type StreamChecker struct {
	schema *Schema
	frames []frame
	depth  int
	err    error
	seen   bool // a root element has been seen and closed
	// strict tracks whether every closed element so far was settled
	// entirely on its DFA lane in an accepting state (and nothing
	// checker-invisible could make the full validator disagree): when it
	// survives to Close, the document is strictly valid and the engine
	// skips the tree pass.
	strict bool
	// prefix is the shared arena of buffered child-symbol IDs for frames
	// still on their DFA lane; each frame owns prefix[f.prefixStart:] up
	// to the next frame's start, and EndElement truncates its slice.
	prefix []int32
	// fastHits / fastFallbacks count elements fully settled on the DFA
	// lane vs elements that fell back to a recognizer, since Reset.
	fastHits      int64
	fastFallbacks int64
	// forceFallbackAt >= 0 abandons a frame's DFA lane as soon as that
	// frame has buffered this many symbols — a test/bench knob that
	// exercises the replay path; -1 (the default) disables it.
	forceFallbackAt int
	// free recycles per-element recognizers (with their arenas and visited
	// scratch) popped by EndElement, so a pooled checker's steady state
	// creates no recognizer state at all for repeated element kinds.
	free []*Recognizer
	// clx is the reader-path chunked lexer, created on first RunReader and
	// reused (with its sliding window) across documents by pooled checkers.
	clx *xmltext.ChunkedLexer
}

// NewStreamChecker returns a fresh streaming checker.
func (s *Schema) NewStreamChecker() *StreamChecker {
	return &StreamChecker{schema: s, forceFallbackAt: -1}
}

// Err returns the first violation encountered, or nil.
func (c *StreamChecker) Err() error { return c.err }

// Depth returns the current open-element depth.
func (c *StreamChecker) Depth() int { return c.depth }

// Reset returns the checker to its initial state for a fresh document,
// retaining allocated stack capacity — the hook that lets worker pools
// (engine.CheckBatch) reuse checkers across many documents.
func (c *StreamChecker) Reset() {
	// Clear through capacity, not length: EndElement pops truncate without
	// clearing, so after a completed document the Recognizers (and name
	// strings, which alias the schema) linger beyond len.
	clear(c.frames[:cap(c.frames)])
	c.frames = c.frames[:0]
	c.prefix = c.prefix[:0]
	c.depth = 0
	c.err = nil
	c.seen = false
	c.strict = c.schema.fast != nil
	c.fastHits = 0
	c.fastFallbacks = 0
}

// ForceFallbackAfter makes every element abandon its DFA lane once it has
// buffered n child symbols (n=0: before the first symbol), exercising the
// recognizer replay path regardless of what the DFA would accept. A
// negative n restores normal two-tier dispatch. Verdicts are identical in
// every mode — the differential fuzz target pins this.
func (c *StreamChecker) ForceFallbackAfter(n int) { c.forceFallbackAt = n }

// FastPathStats returns the number of elements fully settled on the DFA
// fast path and the number that fell back to a PV recognizer since the
// last Reset.
func (c *StreamChecker) FastPathStats() (hits, fallbacks int64) {
	return c.fastHits, c.fastFallbacks
}

// StrictlyValid reports whether the last run proved the document fully
// (strictly) valid on the DFA fast path alone: every element closed in an
// accepting DFA state and nothing checker-invisible could change the full
// validator's mind. Meaningful only after a run ended with no error;
// false never means invalid — just "not proven", so the caller must fall
// back to the tree pass for the full-validity bit.
func (c *StreamChecker) StrictlyValid() bool { return c.err == nil && c.seen && c.strict }

// fail records a well-formedness failure.
func (c *StreamChecker) fail(format string, args ...any) error {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
	return c.err
}

// violate records a potential-validity violation.
func (c *StreamChecker) violate(format string, args ...any) error {
	if c.err == nil {
		c.err = &ViolationError{Reason: fmt.Sprintf(format, args...)}
	}
	return c.err
}

// streamText constrains the two document representations the checker
// accepts: the string compatibility path and the zero-copy byte path. The
// generic handlers below are the single source of truth for both; the
// exported methods are thin instantiations, so the paths cannot diverge.
type streamText interface{ ~string | ~[]byte }

// StartElement processes a start tag.
func (c *StreamChecker) StartElement(name string) error { return startElement(c, name) }

// StartElementBytes is StartElement on the zero-copy byte path: the name
// is resolved through the schema's interned-name table without
// materializing a string (undeclared names only surface inside the
// violation message). Verdicts and messages are identical to
// StartElement(string(name)).
func (c *StreamChecker) StartElementBytes(name []byte) error { return startElement(c, name) }

func startElement[S streamText](c *StreamChecker, name S) error {
	if c.err != nil {
		return c.err
	}
	if len(c.frames) == 0 {
		if c.seen {
			return c.fail("second root element <%s>", name)
		}
		if !c.schema.opts.AllowAnyRoot && string(name) != c.schema.Root {
			return c.violate("root element is <%s>, schema requires <%s>", name, c.schema.Root)
		}
	}
	in, declared := c.schema.interned[string(name)]
	if !declared {
		return c.violate("element <%s> is not declared in the DTD", name)
	}
	// Use the schema's own copy of the name from here on: the lexed name
	// aliases the document, and anything the checker retains (open-element
	// names, recognizer elements — including freelisted recognizers that
	// outlive Reset) must not pin the document buffer.
	if len(c.frames) > 0 {
		if !c.feedTop(in.id) {
			return c.violate("content of <%s> is not potentially valid at <%s>", c.frames[len(c.frames)-1].name, in.name)
		}
		c.frames[len(c.frames)-1].lastWasText = false
	} else if in.name != c.schema.Root {
		c.strict = false // the full validator pins the root to the schema root
	}
	f := frame{name: in.name, id: in.id, prefixStart: int32(len(c.prefix))}
	if mach := c.schema.fastMachine(in.id); mach != nil {
		f.mach = mach
	} else {
		f.rec = c.newRecognizer(in.name)
		c.strict = false
	}
	c.frames = append(c.frames, f)
	c.depth++
	return nil
}

// maxBufferedChildren caps how many child symbols one frame may buffer on
// its DFA lane. An element exceeding the cap falls back to its recognizer
// (O(1) state per element), so the checker's extra memory is a constant
// per open element and the reader path keeps its O(depth + window) bound
// even over pathologically flat documents.
const maxBufferedChildren = 1024

// feedTop advances the innermost open element by one child symbol. While
// the frame is on its DFA lane this is one table load; the first symbol
// the DFA cannot take (or the forced-fallback knob, or the buffering cap)
// switches the frame to a PV recognizer via fallback. Returns whether the
// symbol keeps the element's content potentially valid.
func (c *StreamChecker) feedTop(sym int32) bool {
	f := &c.frames[len(c.frames)-1]
	if f.rec == nil {
		buffered := int32(len(c.prefix)) - f.prefixStart
		forced := c.forceFallbackAt >= 0 && buffered >= int32(c.forceFallbackAt)
		if !forced && buffered < maxBufferedChildren {
			if next := f.mach.Step(f.state, sym); next != dfa.Dead {
				f.state = next
				c.prefix = append(c.prefix, sym)
				return true
			}
		}
		c.fallback(f)
	}
	return f.rec.Validate(c.schema.symbolOf(sym))
}

// fallback abandons f's DFA lane: it spawns the element's recognizer and
// replays the buffered child-symbol prefix into it. A DFA-viable prefix
// is a viable prefix of the exact content language, hence completable,
// hence potentially valid — so the replay cannot reject; the differential
// fuzz target (FuzzDFAVsRecognizer) pins that invariant.
func (c *StreamChecker) fallback(f *frame) {
	rec := c.newRecognizer(f.name)
	for _, id := range c.prefix[f.prefixStart:] {
		rec.Validate(c.schema.symbolOf(id))
	}
	c.prefix = c.prefix[:f.prefixStart]
	f.rec = rec
	f.mach = nil
	c.fastFallbacks++
	c.strict = false
}

// newRecognizer takes a recognizer from the checker's freelist, falling
// back to a fresh one.
func (c *StreamChecker) newRecognizer(name string) *Recognizer {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		r.reinit(c.schema, name, c.schema.depth)
		return r
	}
	return c.schema.NewRecognizer(name)
}

// Text processes a character-data event. Empty and (optionally) whitespace
// text is invisible; adjacent text events collapse into one σ.
func (c *StreamChecker) Text(data string) error { return text(c, data) }

// TextBytes is Text on the byte path; the data is only inspected, never
// retained or converted.
func (c *StreamChecker) TextBytes(data []byte) error { return text(c, data) }

func text[S streamText](c *StreamChecker, data S) error {
	if c.err != nil {
		return c.err
	}
	if len(data) == 0 || (c.schema.opts.IgnoreWhitespaceText && isSpace(data)) {
		// Invisible to the checker — but not to the full validator, which
		// rejects an EMPTY element containing any text node at all, so
		// the strict-validity shortcut stands down and lets the tree pass
		// decide.
		if len(c.frames) > 0 && c.schema.isEmpty[c.frames[len(c.frames)-1].id] {
			c.strict = false
		}
		return nil
	}
	if len(c.frames) == 0 {
		if isSpace(data) {
			return nil
		}
		return c.fail("character data outside the root element")
	}
	f := &c.frames[len(c.frames)-1]
	if f.lastWasText {
		return nil // same σ as the previous text event
	}
	if !c.feedTop(0) {
		return c.violate("content of <%s> is not potentially valid at character data", f.name)
	}
	f.lastWasText = true
	return nil
}

// EndElement processes an end tag.
func (c *StreamChecker) EndElement(name string) error { return endElement(c, name) }

// EndElementBytes is EndElement on the byte path; the open-tag comparison
// is an allocation-free string/byte equality check.
func (c *StreamChecker) EndElementBytes(name []byte) error { return endElement(c, name) }

func endElement[S streamText](c *StreamChecker, name S) error {
	if c.err != nil {
		return c.err
	}
	if len(c.frames) == 0 {
		return c.fail("unexpected end tag </%s>", name)
	}
	i := len(c.frames) - 1
	f := &c.frames[i]
	if f.name != string(name) {
		return c.fail("end tag </%s> does not match open <%s>", name, f.name)
	}
	// Closing never violates potential validity: PV allows completing the
	// content with hypothesized elements after the close. On the DFA lane
	// the accepting bit decides the cheaper question — whether the content
	// as written is a complete word of the model (strict validity).
	if f.rec == nil {
		c.fastHits++
		if !f.mach.Accepting(f.state) {
			c.strict = false
		}
		c.prefix = c.prefix[:f.prefixStart]
	} else {
		c.free = append(c.free, f.rec)
	}
	c.frames = c.frames[:i]
	c.depth--
	if len(c.frames) == 0 {
		c.seen = true
	}
	return nil
}

// Close verifies that the document ended properly (all elements closed,
// exactly one root seen) and returns the final verdict.
func (c *StreamChecker) Close() error {
	if c.err != nil {
		return c.err
	}
	if len(c.frames) > 0 {
		return c.fail("unclosed element <%s>", c.frames[len(c.frames)-1].name)
	}
	if !c.seen {
		return c.fail("no root element")
	}
	return nil
}

// CheckStream tokenizes src and runs the streaming check over it — a
// single-pass Problem PV solver for strings.
func (s *Schema) CheckStream(src string) error { return s.NewStreamChecker().Run(src) }

// CheckStreamBytes is CheckStream on the zero-copy byte path: the document
// is never copied into a string, token names and data are subslices, and
// element names resolve through the interned-name table. Verdicts are
// identical to CheckStream(string(src)).
func (s *Schema) CheckStreamBytes(src []byte) error { return s.NewStreamChecker().RunBytes(src) }

// Run resets the checker and drives it over src in one pass. It returns nil
// when the document is potentially valid, a *ViolationError when it is
// well-formed but not potentially valid, and a plain error for lexical or
// well-formedness problems.
func (c *StreamChecker) Run(src string) error {
	c.Reset()
	lx := xmltext.NewLexer(src)
	for {
		tok, err := lx.Next()
		if err != nil {
			return err
		}
		if tok == nil {
			return c.Close()
		}
		switch tok.Kind {
		case xmltext.StartTag:
			if err := c.StartElement(tok.Name); err != nil {
				return err
			}
		case xmltext.EndTag:
			if err := c.EndElement(tok.Name); err != nil {
				return err
			}
		case xmltext.Text:
			if err := c.Text(tok.Data); err != nil {
				return err
			}
		}
	}
}

// RunBytes is Run on the zero-copy byte path. The lexer state lives on the
// checker's stack frame and tokens are consumed in place, so a potentially
// valid entity-free document is checked with no per-token allocation.
func (c *StreamChecker) RunBytes(src []byte) error {
	c.Reset()
	lx := xmltext.NewByteLexer(src)
	for {
		tok, err := lx.Next()
		if err != nil {
			return err
		}
		if tok == nil {
			return c.Close()
		}
		switch tok.Kind {
		case xmltext.StartTag:
			if err := c.StartElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.EndTag:
			if err := c.EndElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.Text:
			if err := c.TextBytes(tok.Data); err != nil {
				return err
			}
		}
	}
}

// RunReader is Run over an io.Reader: the document is lexed through a
// sliding window (xmltext.ChunkedLexer) and never held in memory, so peak
// usage is O(element depth + buffered child symbols on the open path +
// window), independent of document size — the external-memory streaming
// formulation. Verdicts and error messages are identical to RunBytes over
// the same bytes. The reader-path verdict is potential validity only;
// full validity additionally needs the tree pass.
func (c *StreamChecker) RunReader(r io.Reader) error {
	return c.RunReaderBuffer(r, 0)
}

// RunReaderBuffer is RunReader with an explicit window size in bytes
// (xmltext.DefaultChunkSize if bufSize <= 0). The window is retained on the
// checker across runs; a run asking for a larger window than the retained
// one re-allocates it once.
func (c *StreamChecker) RunReaderBuffer(r io.Reader, bufSize int) error {
	c.Reset()
	if c.clx == nil || (bufSize > 0 && c.clx.BufSize() < bufSize) {
		c.clx = xmltext.NewChunkedLexer(r, bufSize)
	} else {
		c.clx.Reset(r)
	}
	for {
		tok, err := c.clx.Next()
		if err != nil {
			return err
		}
		if tok == nil {
			return c.Close()
		}
		switch tok.Kind {
		case xmltext.StartTag:
			if err := c.StartElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.EndTag:
			if err := c.EndElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.Text:
			if err := c.TextBytes(tok.Data); err != nil {
				return err
			}
		}
	}
}

// CheckReader is CheckStream over an io.Reader: one bounded-memory pass,
// O(element depth + window) peak usage regardless of document size.
func (s *Schema) CheckReader(r io.Reader) error { return s.NewStreamChecker().RunReader(r) }

// isSpace reports whether the text is entirely XML whitespace; shared by
// the string and byte event paths (and by Δ_T via isWhitespace).
func isSpace[S streamText](s S) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}
