package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/xmltext"
)

// ViolationError is a potential-validity violation reported by the stream
// checker: the input is well-formed XML so far, but its content cannot be
// extended to a valid document. Lexical and well-formedness problems
// (mismatched or unclosed tags, multiple roots, character data outside the
// root) are reported as plain errors instead, mirroring the tree path where
// dom.Parse rejects them before CheckDocument ever runs. Callers that need
// to tell the two apart (the concurrent engine, differential tests) use
// IsViolation.
type ViolationError struct{ Reason string }

// Error implements the error interface with the violation's reason.
func (e *ViolationError) Error() string { return e.Reason }

// IsViolation reports whether err is a potential-validity violation, as
// opposed to a lexical or well-formedness error.
func IsViolation(err error) bool {
	var v *ViolationError
	return errors.As(err, &v)
}

// StreamChecker checks whole-document potential validity in one pass over a
// token stream, maintaining one ECRecognizer per open element — the
// incremental formulation the paper recommends ("we can solve the potential
// validity problem incrementally, for each document node, by considering
// only node's children", Section 4). It is equivalent to CheckDocument and
// is what the editor layer and the large-document benchmarks use.
type StreamChecker struct {
	schema *Schema
	stack  []*Recognizer
	names  []string
	depth  int
	err    error
	seen   bool // a root element has been seen and closed
	// lastWasText collapses adjacent text events into a single σ per δ_T.
	lastWasText []bool
	// free recycles per-element recognizers (with their arenas and visited
	// scratch) popped by EndElement, so a pooled checker's steady state
	// creates no recognizer state at all for repeated element kinds.
	free []*Recognizer
	// clx is the reader-path chunked lexer, created on first RunReader and
	// reused (with its sliding window) across documents by pooled checkers.
	clx *xmltext.ChunkedLexer
}

// NewStreamChecker returns a fresh streaming checker.
func (s *Schema) NewStreamChecker() *StreamChecker {
	return &StreamChecker{schema: s}
}

// Err returns the first violation encountered, or nil.
func (c *StreamChecker) Err() error { return c.err }

// Depth returns the current open-element depth.
func (c *StreamChecker) Depth() int { return c.depth }

// Reset returns the checker to its initial state for a fresh document,
// retaining allocated stack capacity — the hook that lets worker pools
// (engine.CheckBatch) reuse checkers across many documents.
func (c *StreamChecker) Reset() {
	// Clear through capacity, not length: EndElement pops truncate without
	// clearing, so after a completed document the Recognizers (and name
	// strings, which alias the document's backing array) linger beyond len.
	clear(c.stack[:cap(c.stack)])
	clear(c.names[:cap(c.names)])
	c.stack = c.stack[:0]
	c.names = c.names[:0]
	c.lastWasText = c.lastWasText[:0]
	c.depth = 0
	c.err = nil
	c.seen = false
}

// fail records a well-formedness failure.
func (c *StreamChecker) fail(format string, args ...any) error {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
	return c.err
}

// violate records a potential-validity violation.
func (c *StreamChecker) violate(format string, args ...any) error {
	if c.err == nil {
		c.err = &ViolationError{Reason: fmt.Sprintf(format, args...)}
	}
	return c.err
}

// streamText constrains the two document representations the checker
// accepts: the string compatibility path and the zero-copy byte path. The
// generic handlers below are the single source of truth for both; the
// exported methods are thin instantiations, so the paths cannot diverge.
type streamText interface{ ~string | ~[]byte }

// StartElement processes a start tag.
func (c *StreamChecker) StartElement(name string) error { return startElement(c, name) }

// StartElementBytes is StartElement on the zero-copy byte path: the name
// is resolved through the schema's interned-name table without
// materializing a string (undeclared names only surface inside the
// violation message). Verdicts and messages are identical to
// StartElement(string(name)).
func (c *StreamChecker) StartElementBytes(name []byte) error { return startElement(c, name) }

func startElement[S streamText](c *StreamChecker, name S) error {
	if c.err != nil {
		return c.err
	}
	if len(c.stack) == 0 {
		if c.seen {
			return c.fail("second root element <%s>", name)
		}
		if !c.schema.opts.AllowAnyRoot && string(name) != c.schema.Root {
			return c.violate("root element is <%s>, schema requires <%s>", name, c.schema.Root)
		}
	}
	interned, declared := c.schema.interned[string(name)]
	if !declared {
		return c.violate("element <%s> is not declared in the DTD", name)
	}
	// Use the schema's own copy of the name from here on: the lexed name
	// aliases the document, and anything the checker retains (open-element
	// names, recognizer elements — including freelisted recognizers that
	// outlive Reset) must not pin the document buffer.
	if len(c.stack) > 0 {
		top := c.stack[len(c.stack)-1]
		if !top.Validate(Elem(interned)) {
			return c.violate("content of <%s> is not potentially valid at <%s>", c.names[len(c.names)-1], interned)
		}
		c.lastWasText[len(c.lastWasText)-1] = false
	}
	c.stack = append(c.stack, c.newRecognizer(interned))
	c.names = append(c.names, interned)
	c.lastWasText = append(c.lastWasText, false)
	c.depth++
	return nil
}

// newRecognizer takes a recognizer from the checker's freelist, falling
// back to a fresh one.
func (c *StreamChecker) newRecognizer(name string) *Recognizer {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		r.reinit(c.schema, name, c.schema.depth)
		return r
	}
	return c.schema.NewRecognizer(name)
}

// Text processes a character-data event. Empty and (optionally) whitespace
// text is invisible; adjacent text events collapse into one σ.
func (c *StreamChecker) Text(data string) error { return text(c, data) }

// TextBytes is Text on the byte path; the data is only inspected, never
// retained or converted.
func (c *StreamChecker) TextBytes(data []byte) error { return text(c, data) }

func text[S streamText](c *StreamChecker, data S) error {
	if c.err != nil {
		return c.err
	}
	if len(data) == 0 || (c.schema.opts.IgnoreWhitespaceText && isSpace(data)) {
		return nil
	}
	if len(c.stack) == 0 {
		if isSpace(data) {
			return nil
		}
		return c.fail("character data outside the root element")
	}
	i := len(c.stack) - 1
	if c.lastWasText[i] {
		return nil // same σ as the previous text event
	}
	if !c.stack[i].Validate(Sigma) {
		return c.violate("content of <%s> is not potentially valid at character data", c.names[i])
	}
	c.lastWasText[i] = true
	return nil
}

// EndElement processes an end tag.
func (c *StreamChecker) EndElement(name string) error { return endElement(c, name) }

// EndElementBytes is EndElement on the byte path; the open-tag comparison
// is an allocation-free string/byte equality check.
func (c *StreamChecker) EndElementBytes(name []byte) error { return endElement(c, name) }

func endElement[S streamText](c *StreamChecker, name S) error {
	if c.err != nil {
		return c.err
	}
	if len(c.stack) == 0 {
		return c.fail("unexpected end tag </%s>", name)
	}
	i := len(c.stack) - 1
	if c.names[i] != string(name) {
		return c.fail("end tag </%s> does not match open <%s>", name, c.names[i])
	}
	c.free = append(c.free, c.stack[i])
	c.stack[i] = nil
	c.stack = c.stack[:i]
	c.names = c.names[:i]
	c.lastWasText = c.lastWasText[:i]
	c.depth--
	if len(c.stack) == 0 {
		c.seen = true
	}
	return nil
}

// Close verifies that the document ended properly (all elements closed,
// exactly one root seen) and returns the final verdict.
func (c *StreamChecker) Close() error {
	if c.err != nil {
		return c.err
	}
	if len(c.stack) > 0 {
		return c.fail("unclosed element <%s>", c.names[len(c.names)-1])
	}
	if !c.seen {
		return c.fail("no root element")
	}
	return nil
}

// CheckStream tokenizes src and runs the streaming check over it — a
// single-pass Problem PV solver for strings.
func (s *Schema) CheckStream(src string) error { return s.NewStreamChecker().Run(src) }

// CheckStreamBytes is CheckStream on the zero-copy byte path: the document
// is never copied into a string, token names and data are subslices, and
// element names resolve through the interned-name table. Verdicts are
// identical to CheckStream(string(src)).
func (s *Schema) CheckStreamBytes(src []byte) error { return s.NewStreamChecker().RunBytes(src) }

// Run resets the checker and drives it over src in one pass. It returns nil
// when the document is potentially valid, a *ViolationError when it is
// well-formed but not potentially valid, and a plain error for lexical or
// well-formedness problems.
func (c *StreamChecker) Run(src string) error {
	c.Reset()
	lx := xmltext.NewLexer(src)
	for {
		tok, err := lx.Next()
		if err != nil {
			return err
		}
		if tok == nil {
			return c.Close()
		}
		switch tok.Kind {
		case xmltext.StartTag:
			if err := c.StartElement(tok.Name); err != nil {
				return err
			}
		case xmltext.EndTag:
			if err := c.EndElement(tok.Name); err != nil {
				return err
			}
		case xmltext.Text:
			if err := c.Text(tok.Data); err != nil {
				return err
			}
		}
	}
}

// RunBytes is Run on the zero-copy byte path. The lexer state lives on the
// checker's stack frame and tokens are consumed in place, so a potentially
// valid entity-free document is checked with no per-token allocation.
func (c *StreamChecker) RunBytes(src []byte) error {
	c.Reset()
	lx := xmltext.NewByteLexer(src)
	for {
		tok, err := lx.Next()
		if err != nil {
			return err
		}
		if tok == nil {
			return c.Close()
		}
		switch tok.Kind {
		case xmltext.StartTag:
			if err := c.StartElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.EndTag:
			if err := c.EndElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.Text:
			if err := c.TextBytes(tok.Data); err != nil {
				return err
			}
		}
	}
}

// RunReader is Run over an io.Reader: the document is lexed through a
// sliding window (xmltext.ChunkedLexer) and never held in memory, so peak
// usage is O(element depth + window), independent of document size — the
// external-memory streaming formulation. Verdicts and error messages are
// identical to RunBytes over the same bytes. The reader-path verdict is
// potential validity only; full validity additionally needs the tree pass.
func (c *StreamChecker) RunReader(r io.Reader) error {
	return c.RunReaderBuffer(r, 0)
}

// RunReaderBuffer is RunReader with an explicit window size in bytes
// (xmltext.DefaultChunkSize if bufSize <= 0). The window is retained on the
// checker across runs; a run asking for a larger window than the retained
// one re-allocates it once.
func (c *StreamChecker) RunReaderBuffer(r io.Reader, bufSize int) error {
	c.Reset()
	if c.clx == nil || (bufSize > 0 && c.clx.BufSize() < bufSize) {
		c.clx = xmltext.NewChunkedLexer(r, bufSize)
	} else {
		c.clx.Reset(r)
	}
	for {
		tok, err := c.clx.Next()
		if err != nil {
			return err
		}
		if tok == nil {
			return c.Close()
		}
		switch tok.Kind {
		case xmltext.StartTag:
			if err := c.StartElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.EndTag:
			if err := c.EndElementBytes(tok.Name); err != nil {
				return err
			}
		case xmltext.Text:
			if err := c.TextBytes(tok.Data); err != nil {
				return err
			}
		}
	}
}

// CheckReader is CheckStream over an io.Reader: one bounded-memory pass,
// O(element depth + window) peak usage regardless of document size.
func (s *Schema) CheckReader(r io.Reader) error { return s.NewStreamChecker().RunReader(r) }

// isSpace reports whether the text is entirely XML whitespace; shared by
// the string and byte event paths (and by Δ_T via isWhitespace).
func isSpace[S streamText](s S) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}
