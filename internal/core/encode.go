package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/contentmodel"
	"repro/internal/dag"
	"repro/internal/dfa"
	"repro/internal/dtd"
	"repro/internal/reach"
)

// This file is the compiled-schema binary codec: a versioned, checksummed
// encoding of everything Compile derives from a DTD — the element table
// (declarations and content models over an interned symbol table), the
// reachability lookup table LT with its transitive closures, and the
// recognizer DAGs. Decoding rehydrates a Schema without parsing DTD text
// or re-running the Floyd-Warshall closure, which is what makes the
// disk-backed schema cache (internal/schemastore) a real cold-start win:
// a process restart re-loads its hot schema set at deserialization speed.
//
// The format is strictly versioned (BinaryVersion) and ends in a CRC32 of
// the payload; any mismatch, truncation or out-of-range reference fails
// decoding, and callers fall back to compiling from source.

// BinaryVersion is the current compiled-schema binary format version.
// Decoders reject any other version; bump it whenever the encoded shape
// of the schema (element tables, reach matrices, DAG nodes, DFA tables)
// changes. Version 2 added the content-model DFA fast-path tables and the
// DisableFastPath option flag.
const BinaryVersion = 2

// binaryMagic brands a compiled-schema blob ("PV schema, compiled").
var binaryMagic = [4]byte{'P', 'V', 'S', 'C'}

type encoder struct {
	buf []byte
	sym map[string]int
	err error
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) count(v int)      { e.uvarint(uint64(v)) }
func (e *encoder) byteVal(b byte)   { e.buf = append(e.buf, b) }
func (e *encoder) stringVal(s string) {
	e.count(len(s))
	e.buf = append(e.buf, s...)
}

// symbol writes the interned index of an element name; referencing a name
// outside the symbol table is an encoder-side invariant violation.
func (e *encoder) symbol(name string) {
	i, ok := e.sym[name]
	if !ok && e.err == nil {
		e.err = fmt.Errorf("core: encode: element %q is not in the symbol table", name)
	}
	e.count(i)
}

// bitset packs a bool slice LSB-first, 8 cells per byte.
func (e *encoder) bitset(bits []bool) {
	var cur byte
	for i, b := range bits {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.byteVal(cur)
			cur = 0
		}
	}
	if len(bits)%8 != 0 {
		e.byteVal(cur)
	}
}

func (e *encoder) expr(x *contentmodel.Expr) {
	e.count(int(x.Kind))
	switch x.Kind {
	case contentmodel.KindPCDATA:
	case contentmodel.KindName:
		e.symbol(x.Name)
	default:
		e.count(len(x.Children))
		for _, c := range x.Children {
			e.expr(c)
		}
	}
}

// MarshalBinary encodes the compiled schema in the versioned binary format.
// The blob is self-contained (symbol table, element declarations, reach
// matrices, recognizer DAGs, options and effective depth) and ends in a
// CRC32 checksum.
func (s *Schema) MarshalBinary() ([]byte, error) {
	m := len(s.DTD.Order)
	e := &encoder{buf: make([]byte, 0, 256+64*m), sym: make(map[string]int, m)}
	e.buf = append(e.buf, binaryMagic[:]...)
	e.uvarint(BinaryVersion)

	// Symbol table: element names in declaration order (the interned table).
	e.count(m)
	for i, name := range s.DTD.Order {
		e.sym[name] = i
		e.stringVal(name)
	}
	e.symbol(s.Root)

	var flags byte
	if s.opts.IgnoreWhitespaceText {
		flags |= 1
	}
	if s.opts.AllowAnyRoot {
		flags |= 2
	}
	if s.opts.DisableFastPath {
		flags |= 4
	}
	e.byteVal(flags)
	e.count(s.opts.MaxDepth)
	e.count(s.depth)

	// Element table: category plus content model per declaration.
	for _, name := range s.DTD.Order {
		decl := s.DTD.Elements[name]
		e.count(int(decl.Category))
		if decl.Category == dtd.Mixed || decl.Category == dtd.Children {
			e.expr(decl.Model)
		}
	}

	// Reachability lookup table: PCDATA column, both closures, classes.
	raw := s.LT.Raw()
	e.bitset(raw.PCData)
	e.bitset(raw.Reach)
	e.bitset(raw.Strong)
	for _, c := range raw.Classes {
		e.count(int(c))
	}
	e.count(int(raw.Class))
	e.count(raw.LongestStrongChain)

	// Recognizer automata: one DAG per element.
	for _, name := range s.DTD.Order {
		rd := s.DAG.Element(name).Raw()
		var dflags byte
		if rd.Any {
			dflags |= 1
		}
		e.byteVal(dflags)
		if rd.Any {
			continue
		}
		e.count(len(rd.Nodes))
		for _, n := range rd.Nodes {
			var nflags byte
			if n.Group {
				nflags |= 1
			}
			if n.HasPCDATA {
				nflags |= 2
			}
			e.byteVal(nflags)
			if n.Group {
				e.count(len(n.Elements))
				for _, el := range n.Elements {
					e.symbol(el)
				}
			} else {
				e.symbol(n.Element)
			}
			e.count(len(n.Succ))
			for _, id := range n.Succ {
				e.count(id)
			}
		}
		e.count(len(rd.Entry))
		for _, id := range rd.Entry {
			e.count(id)
		}
	}

	// Content-model DFA tables (the two-tier fast path). Serialized even
	// though they are derivable from the element table: warm restarts must
	// load DFAs at deserialization speed, not re-run subset construction.
	if s.fast == nil {
		e.byteVal(0)
	} else {
		e.byteVal(1)
		for _, mach := range s.fast.ByID {
			if mach == nil { // element with no fast path (state cap)
				e.byteVal(0)
				continue
			}
			e.byteVal(1)
			e.count(mach.States())
			e.bitset(mach.Accept)
			for _, v := range mach.Trans {
				e.uvarint(uint64(v + 1)) // dfa.Dead (-1) encodes as 0
			}
		}
	}
	if e.err != nil {
		return nil, e.err
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	return e.buf, nil
}

type decoder struct {
	data  []byte
	pos   int
	names []string
}

var errTruncated = fmt.Errorf("core: decode: truncated compiled-schema blob")

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.pos += n
	return v, nil
}

// count reads a non-negative size bounded by the remaining input, so a
// corrupt length can never drive allocation beyond the blob itself.
func (d *decoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.data)) {
		return 0, fmt.Errorf("core: decode: implausible count %d", v)
	}
	return int(v), nil
}

func (d *decoder) byteVal() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, errTruncated
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) stringVal() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	if d.pos+n > len(d.data) {
		return "", errTruncated
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

func (d *decoder) symbol() (string, error) {
	i, err := d.count()
	if err != nil {
		return "", err
	}
	if i >= len(d.names) {
		return "", fmt.Errorf("core: decode: symbol index %d out of range (%d names)", i, len(d.names))
	}
	return d.names[i], nil
}

func (d *decoder) bitset(n int) ([]bool, error) {
	nbytes := (n + 7) / 8
	if d.pos+nbytes > len(d.data) {
		return nil, errTruncated
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.data[d.pos+i/8]&(1<<(i%8)) != 0
	}
	d.pos += nbytes
	return out, nil
}

// expr decodes one content-model node. depth bounds recursion so a corrupt
// blob cannot overflow the stack.
func (d *decoder) expr(depth int) (*contentmodel.Expr, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("core: decode: content model nested too deeply")
	}
	k, err := d.count()
	if err != nil {
		return nil, err
	}
	kind := contentmodel.Kind(k)
	switch kind {
	case contentmodel.KindPCDATA:
		return contentmodel.NewPCDATA(), nil
	case contentmodel.KindName:
		name, err := d.symbol()
		if err != nil {
			return nil, err
		}
		return contentmodel.NewName(name), nil
	case contentmodel.KindSeq, contentmodel.KindChoice, contentmodel.KindStar, contentmodel.KindPlus, contentmodel.KindOpt:
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		unary := kind == contentmodel.KindStar || kind == contentmodel.KindPlus || kind == contentmodel.KindOpt
		if unary && n != 1 || !unary && n < 2 {
			return nil, fmt.Errorf("core: decode: %v node with %d children", kind, n)
		}
		children := make([]*contentmodel.Expr, n)
		for i := range children {
			if children[i], err = d.expr(depth - 1); err != nil {
				return nil, err
			}
		}
		return &contentmodel.Expr{Kind: kind, Children: children}, nil
	}
	return nil, fmt.Errorf("core: decode: unknown content-model kind %d", k)
}

// UnmarshalBinary decodes a compiled-schema blob produced by MarshalBinary,
// rebuilding the Schema without touching the DTD text parser or recomputing
// the reachability closure. It fails on any version mismatch, checksum
// mismatch, truncation or out-of-range reference; callers treat a failure
// as a cache miss and compile from source.
func UnmarshalBinary(data []byte) (*Schema, error) {
	if len(data) < len(binaryMagic)+5 {
		return nil, errTruncated
	}
	if [4]byte(data[:4]) != binaryMagic {
		return nil, fmt.Errorf("core: decode: not a compiled-schema blob (bad magic)")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("core: decode: checksum mismatch (corrupt compiled-schema blob)")
	}
	d := &decoder{data: body, pos: len(binaryMagic)}
	version, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if version != BinaryVersion {
		return nil, fmt.Errorf("core: decode: compiled-schema format version %d (this build reads %d)", version, BinaryVersion)
	}

	m, err := d.count()
	if err != nil {
		return nil, err
	}
	d.names = make([]string, m)
	seen := make(map[string]bool, m)
	for i := range d.names {
		name, err := d.stringVal()
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, fmt.Errorf("core: decode: empty element name in symbol table")
		}
		if seen[name] {
			return nil, fmt.Errorf("core: decode: duplicate element %q in symbol table", name)
		}
		d.names[i] = name
		seen[name] = true
	}
	root, err := d.symbol()
	if err != nil {
		return nil, err
	}
	flags, err := d.byteVal()
	if err != nil {
		return nil, err
	}
	opts := Options{IgnoreWhitespaceText: flags&1 != 0, AllowAnyRoot: flags&2 != 0, DisableFastPath: flags&4 != 0}
	if opts.MaxDepth, err = d.count(); err != nil {
		return nil, err
	}
	depth, err := d.count()
	if err != nil {
		return nil, err
	}

	dd := &dtd.DTD{Elements: make(map[string]*dtd.ElementDecl, m), Order: append([]string(nil), d.names...)}
	for _, name := range d.names {
		cat, err := d.count()
		if err != nil {
			return nil, err
		}
		decl := &dtd.ElementDecl{Name: name, Category: dtd.Category(cat)}
		switch decl.Category {
		case dtd.Empty, dtd.Any:
		case dtd.Mixed, dtd.Children:
			if decl.Model, err = d.expr(10_000); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: decode: unknown content category %d for %q", cat, name)
		}
		dd.Elements[name] = decl
	}

	raw := &reach.Raw{}
	if raw.PCData, err = d.bitset(m); err != nil {
		return nil, err
	}
	if raw.Reach, err = d.bitset(m * m); err != nil {
		return nil, err
	}
	if raw.Strong, err = d.bitset(m * m); err != nil {
		return nil, err
	}
	raw.Classes = make([]reach.Class, m)
	for i := range raw.Classes {
		c, err := d.count()
		if err != nil {
			return nil, err
		}
		raw.Classes[i] = reach.Class(c)
	}
	cls, err := d.count()
	if err != nil {
		return nil, err
	}
	raw.Class = reach.Class(cls)
	if raw.LongestStrongChain, err = d.count(); err != nil {
		return nil, err
	}
	lt, err := reach.FromRaw(dd, raw)
	if err != nil {
		return nil, err
	}

	g := &dag.DAG{ByElement: make(map[string]*dag.ElementDAG, m)}
	for _, name := range d.names {
		dflags, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		rd := dag.RawElement{Any: dflags&1 != 0}
		if !rd.Any {
			nnodes, err := d.count()
			if err != nil {
				return nil, err
			}
			rd.Nodes = make([]dag.RawNode, nnodes)
			for i := range rd.Nodes {
				n := &rd.Nodes[i]
				nflags, err := d.byteVal()
				if err != nil {
					return nil, err
				}
				n.Group = nflags&1 != 0
				n.HasPCDATA = nflags&2 != 0
				if n.Group {
					ne, err := d.count()
					if err != nil {
						return nil, err
					}
					n.Elements = make([]string, ne)
					for j := range n.Elements {
						if n.Elements[j], err = d.symbol(); err != nil {
							return nil, err
						}
					}
				} else if n.Element, err = d.symbol(); err != nil {
					return nil, err
				}
				ns, err := d.count()
				if err != nil {
					return nil, err
				}
				n.Succ = make([]int, ns)
				for j := range n.Succ {
					if n.Succ[j], err = d.count(); err != nil {
						return nil, err
					}
				}
			}
			nentry, err := d.count()
			if err != nil {
				return nil, err
			}
			rd.Entry = make([]int, nentry)
			for i := range rd.Entry {
				if rd.Entry[i], err = d.count(); err != nil {
					return nil, err
				}
			}
		}
		ed, err := dag.ElementFromRaw(name, rd)
		if err != nil {
			return nil, err
		}
		g.ByElement[name] = ed
	}

	fast, err := d.fastTables(m)
	if err != nil {
		return nil, err
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("core: decode: %d trailing bytes after compiled schema", len(body)-d.pos)
	}

	s := &Schema{
		DTD:   dd,
		Root:  root,
		LT:    lt,
		DAG:   g,
		opts:  opts,
		depth: depth,
		fast:  fast,
	}
	s.initSymbols()
	return s, nil
}

// fastTables decodes the per-element DFA section written by MarshalBinary:
// a presence byte, then per element another presence byte, state count,
// accepting bitset and the dense transition table (values biased by one so
// dfa.Dead encodes as 0).
func (d *decoder) fastTables(m int) (*dfa.Set, error) {
	present, err := d.byteVal()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	stride := int32(m + 1)
	set := &dfa.Set{Stride: stride, ByID: make([]*dfa.Machine, m)}
	for i := 0; i < m; i++ {
		has, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		if has == 0 {
			continue
		}
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		// Each transition entry costs at least one byte, so a plausible
		// state count is bounded by the remaining input.
		if n == 0 || n*int(stride) > len(d.data)-d.pos {
			return nil, fmt.Errorf("core: decode: implausible DFA state count %d", n)
		}
		accept, err := d.bitset(n)
		if err != nil {
			return nil, err
		}
		trans := make([]int32, n*int(stride))
		for j := range trans {
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if v > uint64(n) {
				return nil, fmt.Errorf("core: decode: DFA transition target %d out of range (%d states)", int64(v)-1, n)
			}
			trans[j] = int32(v) - 1
		}
		mach, err := dfa.NewMachine(trans, accept, stride)
		if err != nil {
			return nil, fmt.Errorf("core: decode: %w", err)
		}
		set.ByID[i] = mach
	}
	return set, nil
}
