package core

import (
	"strings"

	"repro/internal/dom"
)

// Symbol is one token of an element-content sequence as produced by the
// paper's Δ_T operator: either an element name (the child's start/end tag
// pair, collapsed) or σ, a non-empty run of character data.
type Symbol struct {
	// Text marks the σ symbol; Name is empty then.
	Text bool
	// Name is the element name for non-text symbols.
	Name string
}

// Sigma is the σ symbol (a non-empty character-data run).
var Sigma = Symbol{Text: true}

// Elem returns the symbol for an element name.
func Elem(name string) Symbol { return Symbol{Name: name} }

// String renders the symbol as in the paper: the element name, or "σ".
func (s Symbol) String() string {
	if s.Text {
		return "σ"
	}
	return s.Name
}

// FormatSymbols renders a symbol sequence like the paper's examples:
// "b, e, c, σ".
func FormatSymbols(symbols []Symbol) string {
	parts := make([]string, len(symbols))
	for i, s := range symbols {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// Elems is a convenience constructor: Elems("b","e","c") plus optional
// interleaving is covered by tests building slices directly.
func Elems(names ...string) []Symbol {
	out := make([]Symbol, len(names))
	for i, n := range names {
		out[i] = Elem(n)
	}
	return out
}

// ChildSymbols applies Δ_T to a DOM element node: its children, in document
// order, mapped to symbols. Consecutive text (already merged by the DOM
// layer) yields one σ; comments and processing instructions are invisible.
// Whitespace-only text yields no symbol when ignoreWS is set.
func ChildSymbols(n *dom.Node, ignoreWS bool) []Symbol {
	var out []Symbol
	lastText := false
	for _, c := range n.Children {
		switch c.Kind {
		case dom.ElementNode:
			out = append(out, Elem(c.Name))
			lastText = false
		case dom.TextNode:
			if c.Data == "" || (ignoreWS && isWhitespace(c.Data)) {
				continue
			}
			// Adjacent text separated only by comments/PIs still collapses
			// to a single σ, matching δ_T ("all consecutive character
			// data ... replaced with a single σ").
			if !lastText {
				out = append(out, Sigma)
				lastText = true
			}
		default:
			// comments and PIs do not affect potential validity
		}
	}
	return out
}

func isWhitespace(s string) bool { return isSpace(s) }
