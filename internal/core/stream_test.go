package core

import (
	"strings"
	"testing"

	"repro/internal/dom"
)

func TestStreamMatchesDocumentCheck(t *testing.T) {
	s := figure1Schema(t)
	cases := []struct {
		src  string
		want bool // potentially valid?
	}{
		{exampleW, false},
		{exampleS, true},
		{exampleExt, true},
		{`<r></r>`, true},
		{`<r><a></a></r>`, true},
		{`<r><a><e></e><e></e></a></r>`, true},                 // one inserted <d> wraps both e's
		{`<r><a><e></e><c>x</c></a></r>`, true},                // e hides in an inserted <b><d>…
		{`<r><a><b><d></d></b><e></e><c>x</c></a></r>`, false}, // …but not after a real <b>
		{`<r><a><c>x</c><d>y<e></e></d></a></r>`, true},
		{`<r><a><f><e></e><c>x</c></f></b></a></r>`, false}, // also ill-formed
	}
	for _, c := range cases {
		streamErr := s.CheckStream(c.src)
		if (streamErr == nil) != c.want {
			t.Errorf("CheckStream(%q) err=%v, want ok=%v", c.src, streamErr, c.want)
		}
		// Cross-check against the tree-based checker when well-formed.
		if doc, err := dom.Parse(c.src); err == nil {
			v := s.CheckDocument(doc.Root)
			if (v == nil) != (streamErr == nil) {
				t.Errorf("stream/tree disagree on %q: stream=%v tree=%v", c.src, streamErr, v)
			}
		}
	}
}

func TestStreamEventAPI(t *testing.T) {
	s := figure1Schema(t)
	c := s.NewStreamChecker()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.StartElement("r"))
	must(c.StartElement("a"))
	must(c.StartElement("b"))
	must(c.Text("A quick brown"))
	must(c.EndElement("b"))
	must(c.StartElement("c"))
	must(c.Text(" fox jumps over a lazy"))
	must(c.EndElement("c"))
	must(c.Text(" dog"))
	must(c.StartElement("e"))
	must(c.EndElement("e"))
	must(c.EndElement("a"))
	must(c.EndElement("r"))
	must(c.Close())
}

func TestStreamRejectsEarly(t *testing.T) {
	// The stream checker reports the violation at the offending start tag,
	// before the document is complete — the editor-feedback property.
	s := figure1Schema(t)
	c := s.NewStreamChecker()
	if err := c.StartElement("r"); err != nil {
		t.Fatal(err)
	}
	if err := c.StartElement("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.StartElement("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.EndElement("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.StartElement("e"); err != nil {
		t.Fatal(err)
	}
	if err := c.EndElement("e"); err != nil {
		t.Fatal(err)
	}
	// <c> after <e> violates a's model immediately.
	if err := c.StartElement("c"); err == nil {
		t.Error("expected violation at <c>")
	}
	// The checker stays failed.
	if err := c.Close(); err == nil {
		t.Error("Close must report the sticky error")
	}
}

func TestStreamAdjacentTextCollapses(t *testing.T) {
	s := figure1Schema(t)
	c := s.NewStreamChecker()
	for _, call := range []func() error{
		func() error { return c.StartElement("r") },
		func() error { return c.StartElement("a") },
		func() error { return c.StartElement("c") },
		func() error { return c.Text("one ") },
		func() error { return c.Text("two") }, // same σ
		func() error { return c.EndElement("c") },
		func() error { return c.StartElement("d") },
		func() error { return c.EndElement("d") },
		func() error { return c.EndElement("a") },
		func() error { return c.EndElement("r") },
	} {
		if err := call(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}

func TestStreamWellFormedness(t *testing.T) {
	s := figure1Schema(t)
	cases := []string{
		`<r><a></r>`,             // mismatched end
		`<r></r><r></r>`,         // two roots
		`<a></a>`,                // wrong root
		`<r></r>trailing`,        // data after root
		`<r><ghost></ghost></r>`, // undeclared (also a content violation)
	}
	for _, src := range cases {
		if err := s.CheckStream(src); err == nil {
			t.Errorf("CheckStream(%q): expected error", src)
		}
	}
	if err := s.CheckStream(`<r>`); err == nil {
		t.Error("unclosed root must fail at Close")
	}
}

func TestStreamDepthTracking(t *testing.T) {
	s := figure1Schema(t)
	c := s.NewStreamChecker()
	c.StartElement("r")
	c.StartElement("a")
	if c.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", c.Depth())
	}
	c.EndElement("a")
	c.EndElement("r")
	if c.Depth() != 0 {
		t.Errorf("Depth = %d, want 0", c.Depth())
	}
}

func TestStreamErrorMessages(t *testing.T) {
	s := figure1Schema(t)
	err := s.CheckStream(`<r><a><b></b><e></e><c></c></a></r>`)
	if err == nil || !strings.Contains(err.Error(), "<a>") {
		t.Errorf("error should name the failing parent: %v", err)
	}
}
