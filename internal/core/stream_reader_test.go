package core

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// repeatReader streams header + body×count + footer without materializing
// the document: the synthetic multi-hundred-MB inputs the bounded-memory
// tests validate. Read never allocates.
type repeatReader struct {
	header, body, footer []byte
	count                int
	phase                int // 0=header 1=body 2=footer 3=done
	off                  int
	emitted              int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		var cur []byte
		switch r.phase {
		case 0:
			cur = r.header
		case 1:
			cur = r.body
		case 2:
			cur = r.footer
		default:
			if total > 0 {
				return total, nil
			}
			return 0, io.EOF
		}
		n := copy(p, cur[r.off:])
		total += n
		r.off += n
		p = p[n:]
		if r.off == len(cur) {
			r.off = 0
			switch r.phase {
			case 0:
				r.phase = 1
			case 1:
				if r.emitted++; r.emitted >= r.count {
					r.phase = 2
				}
			case 2:
				r.phase = 3
			}
		}
	}
	return total, nil
}

func (r *repeatReader) size() int64 {
	return int64(len(r.header)) + int64(len(r.body))*int64(r.count) + int64(len(r.footer))
}

const readerTestDTD = `<!ELEMENT log (entry)*>
<!ELEMENT entry (msg, code)>
<!ELEMENT msg (#PCDATA)>
<!ELEMENT code (#PCDATA)>`

func newRepeatDoc(count int) *repeatReader {
	return &repeatReader{
		header: []byte(`<log>`),
		body:   []byte(`<entry><msg>all systems nominal &amp; green</msg><code>200</code></entry>`),
		footer: []byte(`</log>`),
		count:  count,
	}
}

// TestRunReaderMatchesRunBytes pins the reader path's verdicts to the
// whole-buffer path on the shared fixtures, valid and invalid alike.
func TestRunReaderMatchesRunBytes(t *testing.T) {
	s := MustCompile(dtd.MustParse(readerTestDTD), "log", Options{})
	docs := []string{
		`<log></log>`,
		`<log><entry><msg>m</msg><code>1</code></entry></log>`,
		`<log><entry><msg>m</msg></entry></log>`,       // missing <code>
		`<log><entry><code>1</code></entry></log>`,     // out of order
		`<log><bogus/></log>`,                          // undeclared element
		`<log><entry><msg>m</msg><code>1</code></log>`, // mismatched end tag
		`<log>`,
	}
	c := s.NewStreamChecker()
	for _, doc := range docs {
		want := s.CheckStreamBytes([]byte(doc))
		got := c.RunReaderBuffer(strings.NewReader(doc), 16)
		if (want == nil) != (got == nil) || (want != nil && want.Error() != got.Error()) {
			t.Errorf("%q:\n  bytes:  %v\n  reader: %v", doc, want, got)
		}
		if IsViolation(want) != IsViolation(got) {
			t.Errorf("%q: violation classification diverged", doc)
		}
	}
}

// TestRunReaderBoundedMemory pins the tentpole claim: validating a ~128MB
// synthetic document through RunReader allocates O(window + depth), not
// O(document). The document is streamed from a generator so the test itself
// holds no large buffer, and total allocation across the run is asserted to
// stay under 8MB — two orders of magnitude below the document size.
func TestRunReaderBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large synthetic document; skipped under -short")
	}
	s := MustCompile(dtd.MustParse(readerTestDTD), "log", Options{})
	c := s.NewStreamChecker()

	// Warm-up run: populate the checker's window, recognizer freelist and
	// scratch so the measured run sees the pooled steady state.
	if err := c.RunReader(newRepeatDoc(1000)); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	doc := newRepeatDoc(1_850_000) // ~129MB
	if doc.size() < 128<<20 {
		t.Fatalf("synthetic document too small: %d bytes", doc.size())
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := c.RunReader(doc); err != nil {
		t.Fatalf("RunReader: %v", err)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc
	t.Logf("document %dMB, total allocated %dKB", doc.size()>>20, allocated>>10)
	if allocated > 8<<20 {
		t.Fatalf("RunReader allocated %dMB over a %dMB document; the reader path must not allocate O(n)",
			allocated>>20, doc.size()>>20)
	}
}

// TestRunReaderGzipComposition mirrors the /check/raw inflate path: the
// checker sits behind any io.Reader, so a decompressing reader composes for
// free. (Plain bytes.Reader here; the HTTP tests exercise real gzip.)
func TestRunReaderGzipComposition(t *testing.T) {
	s := MustCompile(dtd.MustParse(readerTestDTD), "log", Options{})
	var buf bytes.Buffer
	buf.WriteString(`<log><entry><msg>x</msg><code>0</code></entry></log>`)
	if err := s.CheckReader(&buf); err != nil {
		t.Fatalf("CheckReader: %v", err)
	}
}
