package core

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
)

func TestCanInsertTextProposition3(t *testing.T) {
	s := figure1Schema(t)
	doc := dom.MustParse(`<r><a><c>x</c><d></d></a></r>`)
	a := doc.Root.Children[0]
	c := a.Children[0]
	d := a.Children[1]
	// a ⇝ #PCDATA (via c or d): text insertion under a preserves PV.
	if err := s.CanInsertText(a); err != nil {
		t.Errorf("CanInsertText(a): %v", err)
	}
	if err := s.CanInsertText(c); err != nil {
		t.Errorf("CanInsertText(c): %v", err)
	}
	if err := s.CanInsertText(d); err != nil {
		t.Errorf("CanInsertText(d): %v", err)
	}
	// e is EMPTY: no path to #PCDATA.
	e := dom.NewElement("e")
	if err := s.CanInsertText(e); err == nil {
		t.Error("CanInsertText(e) must fail")
	}
	// Non-element argument.
	if err := s.CanInsertText(dom.NewText("t")); err == nil {
		t.Error("CanInsertText on a text node must fail")
	}
}

func TestCanUpdateTextAlwaysOK(t *testing.T) {
	s := figure1Schema(t)
	doc := dom.MustParse(`<r><a><c>x</c><d></d></a></r>`)
	text := doc.Root.Children[0].Children[0].Children[0]
	if err := s.CanUpdateText(text); err != nil {
		t.Errorf("Theorem 2: text updates always preserve PV: %v", err)
	}
	if err := s.CanUpdateText(doc.Root); err == nil {
		t.Error("CanUpdateText on an element must fail")
	}
}

func TestCanDeleteMarkupAlwaysOK(t *testing.T) {
	s := figure1Schema(t)
	doc := dom.MustParse(exampleExt)
	// Any non-root element may be unwrapped (Theorem 2).
	var checked int
	doc.Root.Walk(func(n *dom.Node) bool {
		if n.Kind == dom.ElementNode && n.Parent != nil {
			if err := s.CanDeleteMarkup(n); err != nil {
				t.Errorf("CanDeleteMarkup(%s): %v", n.Name, err)
			}
			checked++
		}
		return true
	})
	if checked == 0 {
		t.Fatal("no elements checked")
	}
	if err := s.CanDeleteMarkup(doc.Root); err == nil {
		t.Error("root deletion must be refused")
	}
}

func TestTheorem2DeletionClosure(t *testing.T) {
	// Deleting any single element's markup from a potentially valid
	// document yields a potentially valid document.
	s := figure1Schema(t)
	base := dom.MustParse(exampleExt).Root
	if v := s.CheckDocument(base); v != nil {
		t.Fatalf("fixture not PV: %v", v)
	}
	// Enumerate non-root elements by index and unwrap each in a clone.
	n := len(base.Elements())
	for i := 1; i < n; i++ {
		clone := base.Clone()
		elems := clone.Elements()
		name := elems[i].Name
		elems[i].Unwrap()
		if v := s.CheckDocument(clone); v != nil {
			t.Errorf("deleting element #%d (<%s>) broke PV: %v", i, name, v)
		}
	}
}

func TestTheorem2UpdateClosure(t *testing.T) {
	// Changing the characters of existing text nodes never breaks PV.
	s := figure1Schema(t)
	base := dom.MustParse(exampleS).Root
	clone := base.Clone()
	clone.Walk(func(n *dom.Node) bool {
		if n.Kind == dom.TextNode {
			n.Data = "REPLACED " + n.Data + " TEXT"
		}
		return true
	})
	if v := s.CheckDocument(clone); v != nil {
		t.Errorf("text update broke PV: %v", v)
	}
}

func TestCanInsertMarkup(t *testing.T) {
	s := figure1Schema(t)
	// The Figure 3 editing step: wrap b's text in <d>, wrap trailing
	// "dog"+<e> in <d>.
	doc := dom.MustParse(exampleS)
	a := doc.Root.Children[0]
	b := a.Children[0]
	if err := s.CanInsertMarkup(b, 0, 1, "d"); err != nil {
		t.Errorf("wrapping b's text in <d>: %v", err)
	}
	if err := s.CanInsertMarkup(a, 2, 4, "d"); err != nil {
		t.Errorf("wrapping dog+<e> in <d>: %v", err)
	}
	// A wrong wrap: <e> cannot contain the text.
	if err := s.CanInsertMarkup(b, 0, 1, "e"); err == nil {
		t.Error("wrapping text in <e> must be refused")
	}
	// Wrapping that breaks the parent: a second <c> directly under <a>.
	if err := s.CanInsertMarkup(a, 3, 3, "c"); err == nil {
		t.Error("inserting <c> after <e> under <a> must be refused")
	}
	// Undeclared wrapper.
	if err := s.CanInsertMarkup(a, 0, 1, "ghost"); err == nil {
		t.Error("undeclared wrapper must be refused")
	}
	// Bad ranges.
	if err := s.CanInsertMarkup(a, 3, 2, "d"); err == nil {
		t.Error("inverted range must be refused")
	}
	if err := s.CanInsertMarkup(a, 0, 99, "d"); err == nil {
		t.Error("out-of-bounds range must be refused")
	}
}

func TestCanInsertMarkupDoesNotMutate(t *testing.T) {
	s := figure1Schema(t)
	doc := dom.MustParse(exampleS)
	a := doc.Root.Children[0]
	before := doc.Root.String()
	_ = s.CanInsertMarkup(a, 0, 2, "b")
	_ = s.CanInsertMarkup(a, 0, 1, "e")
	if doc.Root.String() != before {
		t.Error("CanInsertMarkup mutated the document")
	}
}

func TestInsertMarkupThenCheckAgrees(t *testing.T) {
	// Property on the fixture: CanInsertMarkup's verdict must agree with
	// performing the wrap and re-checking the whole document.
	s := figure1Schema(t)
	base := dom.MustParse(exampleS).Root
	names := []string{"a", "b", "c", "d", "e", "f"}
	elems := base.Elements()
	for ei := range elems {
		nc := len(elems[ei].Children)
		for i := 0; i <= nc; i++ {
			for j := i; j <= nc; j++ {
				for _, name := range names {
					clone := base.Clone()
					target := clone.Elements()[ei]
					verdict := s.CanInsertMarkup(target, i, j, name)
					target.WrapChildren(i, j, name)
					full := s.CheckDocument(clone)
					if (verdict == nil) != (full == nil) {
						t.Errorf("disagreement wrapping [%d,%d) of <%s> in <%s>: incremental=%v full=%v\ndoc: %s",
							i, j, target.Name, name, verdict, full, clone)
					}
				}
			}
		}
	}
}

func TestUpdateChecksAreCheap(t *testing.T) {
	// Proposition 3 / Theorem 2: the O(1) checks must not depend on
	// document size. We verify behaviorally: the checks on a node of a
	// large document equal those on a small one (cost is covered by the
	// X5 benchmark).
	s := figure1Schema(t)
	small := dom.MustParse(`<r><a><c>x</c><d></d></a></r>`)
	if err := s.CanInsertText(small.Root.Children[0]); err != nil {
		t.Error(err)
	}
	if err := s.CanUpdateText(small.Root.Children[0].Children[0].Children[0]); err != nil {
		t.Error(err)
	}
}

func TestAnyRootInsert(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r ANY> <!ELEMENT x (#PCDATA)>`)
	s := MustCompile(d, "r", Options{})
	doc := dom.MustParse(`<r>text<x>y</x></r>`)
	if err := s.CanInsertMarkup(doc.Root, 0, 1, "x"); err != nil {
		t.Errorf("wrap text under ANY: %v", err)
	}
	// Wrapping text plus the existing <x> must be refused: <x> holds only
	// #PCDATA, so it cannot contain the inner <x>.
	if err := s.CanInsertMarkup(doc.Root, 0, 2, "x"); err == nil {
		t.Error("wrapping <x> inside <x> must be refused")
	}
}
