package core

import (
	"testing"

	"repro/internal/dtd"
	"repro/internal/reach"
)

func figure1Schema(t *testing.T) *Schema {
	t.Helper()
	return MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{})
}

// TestExample1ContentOfA reproduces Figure 6: ECRecognizer on the content
// of <a> for the two encodings of Example 1.
func TestExample1ContentOfA(t *testing.T) {
	s := figure1Schema(t)
	// String w: children of a are b, e, c, σ — rejected (the e/c order
	// contradicts the DTD).
	w := []Symbol{Elem("b"), Elem("e"), Elem("c"), Sigma}
	if s.CheckContent("a", w) {
		t.Errorf("content [%s] of <a> must be rejected", FormatSymbols(w))
	}
	// String s: children of a are b, c, σ, e — accepted (only <d> tags are
	// missing).
	sSeq := []Symbol{Elem("b"), Elem("c"), Sigma, Elem("e")}
	if !s.CheckContent("a", sSeq) {
		t.Errorf("content [%s] of <a> must be accepted", FormatSymbols(sSeq))
	}
}

// TestFigure6RejectPosition pins down where string w fails: Figure 6(A)
// shows the search for the third symbol (c) rejecting.
func TestFigure6RejectPosition(t *testing.T) {
	s := figure1Schema(t)
	w := []Symbol{Elem("b"), Elem("e"), Elem("c"), Sigma}
	if got := s.CheckContentPrefix("a", w); got != 2 {
		t.Errorf("reject position = %d, want 2 (the c after e)", got)
	}
}

// TestFigure6TraceW replays Figure 6(A) step by step, checking the active
// node sets after each symbol.
func TestFigure6TraceW(t *testing.T) {
	s := figure1Schema(t)
	r := s.NewRecognizer("a")
	// Initial active set: {b} (line 8 of the algorithm).
	if got := r.TraceString(); got != "{b}" {
		t.Errorf("initial active = %s, want {b}", got)
	}
	// (1) search for b: found at the simple node b; frontier advances.
	if !r.Validate(Elem("b")) {
		t.Fatal("b must be accepted")
	}
	if got := r.TraceString(); got != "{c f}" {
		t.Errorf("after b: active = %s, want {c f}", got)
	}
	// (2) search for e: c cannot match it and ε-advances to d; both d and f
	// host nested recognizers that find e (the dotted boxes of Figure 6).
	if !r.Validate(Elem("e")) {
		t.Fatal("e must be accepted")
	}
	if got := r.TraceString(); got != "{d+rec([PCDATA, e]) f+rec()}" {
		t.Errorf("after e: active = %s", got)
	}
	// (3) search for c: f's nested recognizer is exhausted, d cannot reach
	// c — reject (step 5 of Figure 6(A)).
	if r.Validate(Elem("c")) {
		t.Error("c must be rejected after b, e")
	}
}

// TestFigure6TraceS replays Figure 6(B): every symbol of b, c, σ, e is
// matched and the content is accepted.
func TestFigure6TraceS(t *testing.T) {
	s := figure1Schema(t)
	r := s.NewRecognizer("a")
	steps := []struct {
		sym  Symbol
		want string
	}{
		// After b: frontier {c, f}.
		{Elem("b"), "{c f}"},
		// After c: c matched exactly (frontier d); f also engages a nested
		// recognizer having found c inside a hypothesized f.
		{Elem("c"), "{d f+rec(e)}"},
		// After σ: d engages its star-group (PCDATA, e); f's recognizer
		// cannot take σ and f ε-advances away (d deduplicates).
		{Sigma, "{d+rec([PCDATA, e])}"},
		// After e: still inside d's star-group.
		{Elem("e"), "{d+rec([PCDATA, e])}"},
	}
	for i, st := range steps {
		if !r.Validate(st.sym) {
			t.Fatalf("step %d: symbol %s rejected", i, st.sym)
		}
		if got := r.TraceString(); got != st.want {
			t.Errorf("step %d (%s): active = %s, want %s", i, st.sym, got, st.want)
		}
	}
}

// TestExample5DepthBoundStopsLoop reproduces Example 5 / Figure 7: for the
// PV-strong recursive DTD T1, the content b, b of <a> is recognized, and
// the number of recognizers created is bounded by the depth bound rather
// than growing without bound.
func TestExample5DepthBoundStopsLoop(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.T1), "a", Options{MaxDepth: 8})
	if s.Class() != reach.PVStrongRecursive {
		t.Fatal("T1 must be PV-strong recursive")
	}
	r := s.NewRecognizer("a")
	if !r.Recognize(Elems("b", "b")) {
		t.Error("content b, b of <a> is potentially valid under T1 (the document is valid)")
	}
	// With depth bound D the chain of nested recognizers is at most D long;
	// Figure 7 shows that without the bound it would be infinite.
	if got := r.Created(); got > 16 {
		t.Errorf("created %d recognizers; depth bound failed to cap recursion", got)
	}
}

// TestExample5DepthScaling: the number of recognizers created grows with
// the depth bound on T1 — the k^D factor of Theorem 4 in its simplest form.
func TestExample5DepthScaling(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.T1), "a", Options{MaxDepth: 4})
	prev := 0
	for _, depth := range []int{2, 4, 8, 16} {
		r := s.NewRecognizerDepth("a", depth)
		if !r.Recognize(Elems("b", "b")) {
			t.Fatalf("depth %d: rejected", depth)
		}
		if r.Created() <= prev {
			t.Errorf("depth %d: created %d, not more than depth %d's %d",
				depth, r.Created(), depth/2, prev)
		}
		prev = r.Created()
	}
}

// TestExample6RecursiveStep reproduces Example 6's point: under T2 a
// recursive step (a nested recognizer for the PV-strong element a) is
// genuinely necessary — recursion cannot simply be cut off.
//
// Paper erratum: the example's instance <a><b/><b/></a> is in fact directly
// valid (the (a|b) slot takes the first b), so it needs no recursive step.
// The smallest content that does is b, b, b, whose only extension nests one
// inserted <a>: <a><a><b/><b/></a><b/></a>. A depth-1 recognizer (nesting
// disabled) must reject it; depth 2 must accept.
func TestExample6RecursiveStep(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.T2), "a", Options{MaxDepth: 8})
	// The paper's literal instance: accepted, at every depth (it is valid).
	if !s.CheckContent("a", Elems("b", "b")) {
		t.Error("b, b must be accepted under T2")
	}
	if !s.NewRecognizerDepth("a", 1).Recognize(Elems("b", "b")) {
		t.Error("b, b is directly valid; even depth 1 must accept")
	}
	// The content that requires one recursive step.
	if !s.CheckContent("a", Elems("b", "b", "b")) {
		t.Error("b, b, b must be accepted under T2 with sufficient depth")
	}
	if s.NewRecognizerDepth("a", 1).Recognize(Elems("b", "b", "b")) {
		t.Error("with depth 1 the recursive step is unavailable; b, b, b must be rejected")
	}
	if !s.NewRecognizerDepth("a", 2).Recognize(Elems("b", "b", "b")) {
		t.Error("depth 2 allows the one recursive step Example 6 is about")
	}
}

// TestT2DepthLadder: each extra b under T2 requires one more level of
// inserted <a> wrappers, so acceptance of n+2 b's needs depth n+1 — the
// recognizer-depth/extension-depth correspondence of Section 4.3.1.
func TestT2DepthLadder(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.T2), "a", Options{MaxDepth: 8})
	for n := 2; n <= 5; n++ {
		bs := make([]Symbol, n)
		for i := range bs {
			bs[i] = Elem("b")
		}
		needed := n - 1 // depth needed: n-1 for n b's (n-2 recursive steps)
		if got := s.NewRecognizerDepth("a", needed).Recognize(bs); !got {
			t.Errorf("%d b's at depth %d: want accept", n, needed)
		}
		if n > 2 {
			if got := s.NewRecognizerDepth("a", needed-1).Recognize(bs); got {
				t.Errorf("%d b's at depth %d: want reject", n, needed-1)
			}
		}
	}
}

// TestEngagedNodeCannotSelfMatch is the regression test for the Figure 5
// line 29 soundness correction (DESIGN.md §2): with
// <!ELEMENT a (b, c)> <!ELEMENT b (c)>, the content c, b of <a> has no
// insertion-only extension — the c precedes the b in document order, and
// insertions cannot reorder or lift content.
func TestEngagedNodeCannotSelfMatch(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b, c)> <!ELEMENT b (c)> <!ELEMENT c EMPTY>`)
	s := MustCompile(d, "a", Options{})
	if s.CheckContent("a", Elems("c", "b")) {
		t.Error("content c, b of <a> must be rejected (line 29 unsoundness)")
	}
	// Sanity: orders that do have extensions are accepted.
	if !s.CheckContent("a", Elems("c", "c")) {
		t.Error("c, c is potentially valid: <b><c/></b><c/>")
	}
	if !s.CheckContent("a", Elems("b", "c")) {
		t.Error("b, c is trivially potentially valid")
	}
}

// TestEngagedSelfMatchWhenModelAllowsTwo: with a model that has two b
// slots, the engaged-node correction must not over-reject: c, b extends to
// <b_ins><c/></b_ins><b_real/>.
func TestEngagedSelfMatchWhenModelAllowsTwo(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b, b)> <!ELEMENT b (c)> <!ELEMENT c EMPTY>`)
	s := MustCompile(d, "a", Options{})
	if !s.CheckContent("a", Elems("c", "b")) {
		t.Error("c, b must be accepted under a -> (b, b)")
	}
	if s.CheckContent("a", Elems("c", "b", "b")) {
		t.Error("c, b, b must be rejected: only two b slots")
	}
}

// TestGreedyDescendThenFallThrough: a symbol matched inside a hypothesized
// element, with later symbols falling through to the outer frontier —
// the b₁-closure behavior discussed around Example 4.
func TestGreedyDescendThenFallThrough(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b, c)> <!ELEMENT b (c, d)> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`)
	s := MustCompile(d, "a", Options{})
	// c consumed inside hypothesized b; d likewise; then c at top level.
	if !s.CheckContent("a", Elems("c", "d", "c")) {
		t.Error("c, d, c must be accepted: <b><c/><d/></b><c/>")
	}
	// c inside b, then c at top level (b's d derives ε / is inserted).
	if !s.CheckContent("a", Elems("c", "c")) {
		t.Error("c, c must be accepted: <b><c/></b><c/>")
	}
	// d cannot be followed by c, d again: only one b slot and one top c.
	if s.CheckContent("a", Elems("c", "d", "c", "d")) {
		t.Error("c, d, c, d must be rejected")
	}
}

// TestEngagedDoesNotShadowFreshPosition is the regression test for a
// completeness bug the X2 benchmark exposed: [b, σ, e, d] under the
// Figure 1 DTD is potentially valid (σ and e sit inside an inserted <f>, or
// σ inside an inserted <c> — and the e plus following real d then require
// the alternative where the hypothesized d is NOT consumed). An engaged
// active entry for a DAG node must not prevent a sibling path from reaching
// the same node as a fresh position.
func TestEngagedDoesNotShadowFreshPosition(t *testing.T) {
	s := figure1Schema(t)
	if !s.CheckContent("a", []Symbol{Elem("b"), Sigma, Elem("e"), Elem("d")}) {
		t.Error("[b, σ, e, d] must be accepted: <b/><f><c>σ</c><e/></f><d/>")
	}
	// And the soundness direction still holds: consuming inside a
	// hypothesized d and then seeing the real d is only acceptable because
	// of the f alternative; without f-like cover it must reject.
	d := dtd.MustParse(`<!ELEMENT a (b, d)> <!ELEMENT b EMPTY> <!ELEMENT d (#PCDATA | e)*> <!ELEMENT e EMPTY>`)
	s2 := MustCompile(d, "a", Options{})
	if !s2.CheckContent("a", []Symbol{Elem("b"), Elem("e"), Elem("d")}) {
		// e inside inserted d? then real d follows — but wait, TWO d's
		// cannot fit (b, d). Re-deriving: e must sit inside the single d
		// slot, and then the real <d> has no slot left: not PV.
		t.Log("[b, e, d] verdict: reject (single d slot)")
	} else {
		t.Error("[b, e, d] with a single d slot must be rejected")
	}
}

func TestEmptyElementContent(t *testing.T) {
	s := figure1Schema(t)
	if !s.CheckContent("e", nil) {
		t.Error("EMPTY element with no content is fine")
	}
	if s.CheckContent("e", Elems("b")) {
		t.Error("EMPTY element must reject any child")
	}
	if s.CheckContent("e", []Symbol{Sigma}) {
		t.Error("EMPTY element must reject text")
	}
}

func TestEveryContentAcceptsEmpty(t *testing.T) {
	// Theorem 3: every nonterminal derives ε, so the empty content is
	// potentially valid for every element.
	s := figure1Schema(t)
	for _, name := range s.DTD.Order {
		if !s.CheckContent(name, nil) {
			t.Errorf("empty content of <%s> must be potentially valid", name)
		}
	}
}

func TestSigmaPlacement(t *testing.T) {
	s := figure1Schema(t)
	// σ under a: a ⇝ c ⇝ PCDATA, accepted via a hypothesized c (or d).
	if !s.CheckContent("a", []Symbol{Sigma}) {
		t.Error("σ under <a> must be accepted")
	}
	// σ under e (EMPTY): rejected.
	if s.CheckContent("e", []Symbol{Sigma}) {
		t.Error("σ under <e> must be rejected")
	}
	// σ under c (PCDATA): accepted directly.
	if !s.CheckContent("c", []Symbol{Sigma}) {
		t.Error("σ under <c> must be accepted")
	}
}

func TestAnyContent(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (x)> <!ELEMENT x ANY> <!ELEMENT y EMPTY>`)
	s := MustCompile(d, "r", Options{})
	if !s.CheckContent("x", []Symbol{Elem("y"), Sigma, Elem("x"), Elem("r")}) {
		t.Error("ANY content accepts any declared elements and text")
	}
	if s.CheckContent("x", Elems("ghost")) {
		t.Error("ANY content must reject undeclared elements")
	}
}

func TestUndeclaredSymbolRejected(t *testing.T) {
	s := figure1Schema(t)
	if s.CheckContent("a", Elems("ghost")) {
		t.Error("undeclared element must be rejected")
	}
}

func TestWeakRecursionNoNesting(t *testing.T) {
	// PV-weak DTD: arbitrarily deep symbol nesting is resolved through
	// star-group reachability; everything under p accepts.
	s := MustCompile(dtd.MustParse(dtd.WeakRecursive), "p", Options{})
	if s.Class() != reach.PVWeakRecursive {
		t.Fatal("WeakRecursive fixture must be PV-weak")
	}
	if !s.CheckContent("p", []Symbol{Sigma, Elem("b"), Elem("i"), Sigma, Elem("tt"), Elem("b")}) {
		t.Error("mixed inline content must be accepted")
	}
	if !s.CheckContent("tt", []Symbol{Sigma}) {
		t.Error("tt holds text")
	}
	if s.CheckContent("tt", Elems("b")) {
		t.Error("tt -> (#PCDATA) must reject element children")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(dtd.MustParse(dtd.Figure1), "ghost", Options{}); err == nil {
		t.Error("undeclared root must fail compilation")
	}
	if _, err := Compile(dtd.MustParse(`<!ELEMENT a (missing)>`), "a", Options{}); err == nil {
		t.Error("undeclared reference must fail compilation")
	}
	if _, err := Compile(dtd.MustParse(`<!ELEMENT a (x?)> <!ELEMENT x (x)>`), "a", Options{}); err == nil {
		t.Error("unproductive element must fail compilation (usability assumption)")
	}
}

func TestRecognizeStopsAtFirstReject(t *testing.T) {
	s := figure1Schema(t)
	r := s.NewRecognizer("e")
	if r.Recognize([]Symbol{Elem("b"), Elem("c")}) {
		t.Error("must reject")
	}
}

// TestStarGroupOrderIndependence: Proposition 2(2) — a star-group matches
// symbols reachable from its members in any order, because each repetition
// can host a fresh hypothesized wrapper.
func TestStarGroupOrderIndependence(t *testing.T) {
	d := dtd.MustParse(`
		<!ELEMENT root (y*)>
		<!ELEMENT y (c, d)>
		<!ELEMENT c EMPTY>
		<!ELEMENT d EMPTY>
	`)
	s := MustCompile(d, "root", Options{})
	// d before c: impossible inside a single y, but fine across two y's.
	if !s.CheckContent("root", Elems("d", "c")) {
		t.Error("d, c must be accepted: <y><d/>(c inserted)</y><y><c/>...</y>")
	}
	if !s.CheckContent("root", Elems("d", "d", "c", "c")) {
		t.Error("any order works inside a star-group")
	}
}
