package core
