package core

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

var codecFixtures = []struct {
	name, src, root string
}{
	{"figure1", dtd.Figure1, "r"},
	{"t1", dtd.T1, "a"},
	{"t2", dtd.T2, "a"},
	{"weak", dtd.WeakRecursive, "p"},
	{"play", dtd.Play, "play"},
	{"teilite", dtd.TEILite, "TEI"},
	{"article", dtd.Article, "article"},
}

// TestBinaryRoundTripDifferential is the compiled-schema codec's acceptance
// property: for every fixture DTD (under several option sets),
// encode→decode must yield a schema whose verdicts are identical to the
// freshly compiled one — checked structurally (DTD rendering, DAG dumps,
// reach lookups, classification, depth) and differentially over >=200
// generated documents per fixture (valid, tag-stripped and corrupted), on
// both the tree and the streaming checker.
func TestBinaryRoundTripDifferential(t *testing.T) {
	optSets := []Options{
		{},
		{MaxDepth: 5, IgnoreWhitespaceText: true},
		{AllowAnyRoot: true},
	}
	for _, fx := range codecFixtures {
		for oi, opts := range optSets {
			d, err := dtd.Parse(fx.src)
			if err != nil {
				t.Fatal(err)
			}
			orig, err := Compile(d, fx.root, opts)
			if err != nil {
				t.Fatalf("%s: %v", fx.name, err)
			}
			blob, err := orig.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: marshal: %v", fx.name, err)
			}
			dec, err := UnmarshalBinary(blob)
			if err != nil {
				t.Fatalf("%s: unmarshal: %v", fx.name, err)
			}

			if dec.Root != orig.Root || dec.Class() != orig.Class() || dec.EffectiveDepth() != orig.EffectiveDepth() {
				t.Fatalf("%s/opts%d: root/class/depth mismatch: %s/%v/%d vs %s/%v/%d",
					fx.name, oi, dec.Root, dec.Class(), dec.EffectiveDepth(), orig.Root, orig.Class(), orig.EffectiveDepth())
			}
			if got, want := dec.Options(), orig.Options(); got != want {
				t.Fatalf("%s/opts%d: options %+v, want %+v", fx.name, oi, got, want)
			}
			if dec.DTD.String() != orig.DTD.String() {
				t.Fatalf("%s/opts%d: decoded DTD renders differently:\n%s\nvs\n%s", fx.name, oi, dec.DTD.String(), orig.DTD.String())
			}
			for _, name := range orig.DTD.Order {
				if got, want := dec.DAG.Element(name).Dump(), orig.DAG.Element(name).Dump(); got != want {
					t.Fatalf("%s/opts%d: DAG(%s) mismatch:\n%s\nvs\n%s", fx.name, oi, name, got, want)
				}
				if dec.LT.ReachesPCDATA(name) != orig.LT.ReachesPCDATA(name) ||
					dec.LT.ElementClass(name) != orig.LT.ElementClass(name) {
					t.Fatalf("%s/opts%d: LT(%s) pcdata/class mismatch", fx.name, oi, name)
				}
				for _, to := range orig.DTD.Order {
					if dec.LT.Reachable(name, to) != orig.LT.Reachable(name, to) ||
						dec.LT.StrongReachable(name, to) != orig.LT.StrongReachable(name, to) {
						t.Fatalf("%s/opts%d: LT reachability mismatch %s->%s", fx.name, oi, name, to)
					}
				}
			}

			if oi > 0 {
				continue // the differential corpus runs once per fixture
			}
			rng := rand.New(rand.NewSource(int64(len(fx.name)) * 31))
			for i := 0; i < 210; i++ {
				doc := gen.GenValid(rng, d, fx.root, gen.DocOptions{MaxDepth: 6, MaxRepeat: 3})
				switch i % 3 {
				case 1:
					gen.Strip(rng, doc, 0.4)
				case 2:
					gen.Corrupt(rng, d, doc)
				}
				wantV := orig.CheckDocument(doc)
				gotV := dec.CheckDocument(doc)
				if (wantV == nil) != (gotV == nil) {
					t.Fatalf("%s doc %d: tree verdict differs: orig=%v decoded=%v", fx.name, i, wantV, gotV)
				}
				src := doc.String()
				wantS := orig.CheckStream(src)
				gotS := dec.CheckStream(src)
				if (wantS == nil) != (gotS == nil) {
					t.Fatalf("%s doc %d: stream verdict differs: orig=%v decoded=%v", fx.name, i, wantS, gotS)
				}
				if gotB := dec.CheckStreamBytes([]byte(src)); (gotB == nil) != (wantS == nil) {
					t.Fatalf("%s doc %d: byte-stream verdict differs: orig=%v decoded=%v", fx.name, i, wantS, gotB)
				}
			}
		}
	}
}

// TestBinaryDecodeRejectsDamage pins the codec's failure discipline: bad
// magic, a bumped format version, a flipped payload byte, truncation and
// trailing garbage must all fail decoding (never panic, never return a
// half-built schema).
func TestBinaryDecodeRejectsDamage(t *testing.T) {
	s := MustCompile(dtd.MustParse(dtd.Play), "play", Options{})
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBinary(blob); err != nil {
		t.Fatalf("pristine blob must decode: %v", err)
	}

	reseal := func(b []byte) []byte {
		body := b[:len(b)-4]
		return binary.LittleEndian.AppendUint32(body[:len(body):len(body)], crc32.ChecksumIEEE(body))
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), blob[4:]...),
		"truncated": blob[:len(blob)/2],
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	cases["flipped byte"] = flipped

	versioned := append([]byte(nil), blob...)
	versioned[4] = BinaryVersion + 1 // the version varint is one byte for small versions
	cases["future version"] = reseal(versioned)

	cases["trailing garbage"] = reseal(append(append([]byte(nil), blob[:len(blob)-4]...), 0xAB, 0xCD))

	for name, data := range cases {
		if _, err := UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
