package core

import (
	"fmt"

	"repro/internal/dom"
)

// Violation describes why a document failed the potential-validity check.
type Violation struct {
	// Node is the element whose content (or name) is at fault.
	Node *dom.Node
	// Element is the node's element name ("" for a root-name mismatch on a
	// nil node — impossible in practice; kept for symmetry).
	Element string
	// SymbolIndex is the index of the first rejected symbol of the node's
	// Δ_T sequence, or -1 when the problem is not content (undeclared
	// element, wrong root).
	SymbolIndex int
	// Symbols is the node's Δ_T sequence, for diagnostics.
	Symbols []Symbol
	// Reason is a human-readable explanation.
	Reason string
}

// String renders the violation's reason; a nil violation reads
// "potentially valid".
func (v *Violation) String() string {
	if v == nil {
		return "potentially valid"
	}
	return v.Reason
}

// CheckDocument solves Problem PV for a parsed document: it checks
// potential validity of every node (Problem ECPV via Δ_T, Section 4) and
// returns nil if the document is potentially valid w.r.t. the schema, or a
// Violation describing the first failure in document order.
func (s *Schema) CheckDocument(root *dom.Node) *Violation {
	if root.Kind != dom.ElementNode {
		return &Violation{Node: root, SymbolIndex: -1, Reason: "root is not an element node"}
	}
	if !s.opts.AllowAnyRoot && root.Name != s.Root {
		return &Violation{
			Node: root, Element: root.Name, SymbolIndex: -1,
			Reason: fmt.Sprintf("root element is <%s>, schema requires <%s>", root.Name, s.Root),
		}
	}
	if s.opts.AllowAnyRoot && !s.LT.Has(root.Name) {
		return &Violation{
			Node: root, Element: root.Name, SymbolIndex: -1,
			Reason: fmt.Sprintf("root element <%s> is not declared", root.Name),
		}
	}
	var violation *Violation
	root.Walk(func(n *dom.Node) bool {
		if violation != nil || n.Kind != dom.ElementNode {
			return false
		}
		if v := s.checkNode(n); v != nil {
			violation = v
			return false
		}
		return true
	})
	return violation
}

// checkNode runs Problem ECPV on one element node.
func (s *Schema) checkNode(n *dom.Node) *Violation {
	if !s.LT.Has(n.Name) {
		return &Violation{
			Node: n, Element: n.Name, SymbolIndex: -1,
			Reason: fmt.Sprintf("element <%s> is not declared in the DTD", n.Name),
		}
	}
	symbols := ChildSymbols(n, s.opts.IgnoreWhitespaceText)
	if idx := s.CheckContentPrefix(n.Name, symbols); idx < len(symbols) {
		return &Violation{
			Node: n, Element: n.Name, SymbolIndex: idx, Symbols: symbols,
			Reason: fmt.Sprintf("content of <%s> is not potentially valid: symbol %s rejected at position %d of [%s]",
				n.Name, symbols[idx], idx, FormatSymbols(symbols)),
		}
	}
	return nil
}

// CheckNodeContent runs Problem ECPV for a single node without descending:
// it checks only n's own child sequence. Exposed for incremental checking.
func (s *Schema) CheckNodeContent(n *dom.Node) bool {
	if !s.LT.Has(n.Name) {
		return false
	}
	return s.CheckContent(n.Name, ChildSymbols(n, s.opts.IgnoreWhitespaceText))
}

// CheckString parses an XML string and checks potential validity.
func (s *Schema) CheckString(xml string) (*Violation, error) {
	doc, err := dom.Parse(xml)
	if err != nil {
		return nil, err
	}
	return s.CheckDocument(doc.Root), nil
}
