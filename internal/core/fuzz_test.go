package core

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
)

// fuzzSchemas compiles one schema per recursion class (plus the paper's
// Figure 1) for the stream/tree differential fuzz target.
func fuzzSchemas(tb testing.TB) []*Schema {
	tb.Helper()
	return []*Schema{
		MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{}),
		MustCompile(dtd.MustParse(dtd.Play), "play", Options{}),
		MustCompile(dtd.MustParse(dtd.WeakRecursive), "p", Options{}),
		MustCompile(dtd.MustParse(dtd.T2), "a", Options{}),
	}
}

// FuzzCheckStream asserts that on arbitrary input the streaming checker
// never panics, rejects everything the tree parser rejects, and agrees
// with CheckDocument on the potential-validity verdict of everything that
// parses — the equivalence the concurrent engine's single-pass fast path
// depends on.
func FuzzCheckStream(f *testing.F) {
	for _, seed := range []string{
		`<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`,
		`<r><a><b>A quick brown</b><e></e><c> fox</c> dog</a></r>`,
		`<r><a><c>x</c><d></d></a></r>`,
		`<play><title>t</title><personae><persona>p</persona></personae></play>`,
		`<p>text <b>bold <i>both</i></b> tail</p>`,
		`<a><b></b><b></b></a>`,
		`<r>`, `</r>`, `<r></r><r></r>`, `<r><a></b></r>`, `x<r></r>`,
		`<r><!-- c --><?pi d?></r>`, `<r><![CDATA[<a>]]></r>`, ``,
	} {
		f.Add(seed)
	}
	schemas := fuzzSchemas(f)
	f.Fuzz(func(t *testing.T, xml string) {
		for _, s := range schemas {
			streamErr := s.CheckStream(xml)
			// The zero-copy byte path must agree with the string path on
			// acceptance, violation typing and message text.
			if byteErr := s.CheckStreamBytes([]byte(xml)); !sameVerdict(streamErr, byteErr) {
				t.Fatalf("schema %s: string/byte stream paths disagree on %q\n  string: %v\n  bytes:  %v",
					s.Root, xml, streamErr, byteErr)
			}
			doc, parseErr := dom.Parse(xml)
			if parseErr != nil {
				if streamErr == nil {
					t.Fatalf("schema %s: stream accepted input the tree parser rejects (%v): %q",
						s.Root, parseErr, xml)
				}
				continue
			}
			treeViolation := s.CheckDocument(doc.Root)
			if (treeViolation == nil) != (streamErr == nil) {
				t.Fatalf("schema %s: stream/tree disagree on %q\n  stream: %v\n  tree:   %v",
					s.Root, xml, streamErr, treeViolation)
			}
			// Stream failures on parseable input must be typed as
			// potential-validity violations, never as well-formedness errors.
			if streamErr != nil && !IsViolation(streamErr) {
				t.Fatalf("schema %s: untyped stream violation on well-formed input %q: %v",
					s.Root, xml, streamErr)
			}
		}
	})
}
