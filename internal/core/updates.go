package core

import (
	"fmt"

	"repro/internal/dom"
)

// This file implements the incremental update checks of Section 2 and
// Section 4: given a document already known to be potentially valid, decide
// whether an editing operation preserves potential validity — without
// re-checking the whole document.
//
//   - character-data update of an existing text node: always preserves PV
//     (Theorem 2); O(1).
//   - markup deletion (unwrapping an element): always preserves PV
//     (Theorem 2); O(1).
//   - character-data insertion (a new text node under element x): preserves
//     PV iff x ⇝ #PCDATA (Proposition 3); O(1) via the lookup table.
//   - markup insertion (wrapping children [i,j) of t in a new element δ):
//     preserves PV iff Problem ECPV holds for the new node and for its
//     parent ("checking potential validity for markup insertion ... reduces
//     to solving twice Problem ECPV", Section 4).

// CanUpdateText reports whether changing the characters of an existing text
// node preserves potential validity. By Theorem 2 it always does; the
// method exists so call sites document their reasoning and remains O(1).
func (s *Schema) CanUpdateText(n *dom.Node) error {
	if n.Kind != dom.TextNode {
		return fmt.Errorf("core: CanUpdateText on a %v node", n.Kind)
	}
	return nil
}

// CanDeleteMarkup reports whether unwrapping element n (splicing its
// children into its parent) preserves potential validity. By Theorem 2
// deletion always preserves PV; only structural preconditions are checked.
func (s *Schema) CanDeleteMarkup(n *dom.Node) error {
	if n.Kind != dom.ElementNode {
		return fmt.Errorf("core: CanDeleteMarkup on a %v node", n.Kind)
	}
	if n.Parent == nil {
		return fmt.Errorf("core: cannot delete the root element's markup")
	}
	return nil
}

// CanInsertText reports whether creating a new text node under parent
// preserves potential validity — the O(1) check of Proposition 3.
func (s *Schema) CanInsertText(parent *dom.Node) error {
	if parent.Kind != dom.ElementNode {
		return fmt.Errorf("core: CanInsertText under a %v node", parent.Kind)
	}
	if !s.LT.Has(parent.Name) {
		return fmt.Errorf("core: element <%s> is not declared", parent.Name)
	}
	if !s.LT.ReachesPCDATA(parent.Name) {
		return fmt.Errorf("core: character data cannot occur inside <%s> (no path to #PCDATA)", parent.Name)
	}
	return nil
}

// CanInsertMarkup reports whether wrapping children [i, j) of parent in a
// new element named name preserves potential validity. It solves Problem
// ECPV twice — once for the hypothetical new node's content, once for the
// parent's updated child sequence — without mutating the document.
func (s *Schema) CanInsertMarkup(parent *dom.Node, i, j int, name string) error {
	if parent.Kind != dom.ElementNode {
		return fmt.Errorf("core: CanInsertMarkup under a %v node", parent.Kind)
	}
	if i < 0 || j < i || j > len(parent.Children) {
		return fmt.Errorf("core: child range [%d,%d) out of bounds [0,%d]", i, j, len(parent.Children))
	}
	if !s.LT.Has(name) {
		return fmt.Errorf("core: element <%s> is not declared", name)
	}
	if !s.LT.Has(parent.Name) {
		return fmt.Errorf("core: element <%s> is not declared", parent.Name)
	}
	// ECPV for the inserted node: the wrapped children become its content.
	inner := rangeSymbols(parent, i, j, s.opts.IgnoreWhitespaceText)
	if !s.CheckContent(name, inner) {
		return fmt.Errorf("core: content [%s] is not potentially valid inside a new <%s>",
			FormatSymbols(inner), name)
	}
	// ECPV for the parent: the wrapped range is replaced by one <name>
	// symbol.
	outer := rangeSymbols(parent, 0, i, s.opts.IgnoreWhitespaceText)
	outer = append(outer, Elem(name))
	tail := rangeSymbols(parent, j, len(parent.Children), s.opts.IgnoreWhitespaceText)
	outer = append(outer, tail...)
	if !s.CheckContent(parent.Name, outer) {
		return fmt.Errorf("core: inserting <%s> makes the content of <%s> not potentially valid: [%s]",
			name, parent.Name, FormatSymbols(outer))
	}
	return nil
}

// rangeSymbols maps children [i,j) of n to Δ_T symbols (like ChildSymbols
// but over a sub-range; adjacent text inside the range collapses).
func rangeSymbols(n *dom.Node, i, j int, ignoreWS bool) []Symbol {
	var out []Symbol
	lastText := false
	for _, c := range n.Children[i:j] {
		switch c.Kind {
		case dom.ElementNode:
			out = append(out, Elem(c.Name))
			lastText = false
		case dom.TextNode:
			if c.Data == "" || (ignoreWS && isWhitespace(c.Data)) {
				continue
			}
			if !lastText {
				out = append(out, Sigma)
				lastText = true
			}
		}
	}
	return out
}
