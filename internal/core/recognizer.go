package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dag"
)

// Recognizer is the ECRecognizer of Figure 5: a greedy online recognizer
// for one element's content. Symbols are fed one at a time via Validate (or
// in bulk via Recognize); the recognizer maintains the paper's active node
// set over the element's DAG, creating nested recognizers lazily when an
// input symbol can only occur inside a missing (yet-to-be-inserted)
// intermediate element, and bounding the nesting by the depth parameter so
// that PV-strong recursive DTDs terminate (Section 4.3.1, Figure 7).
//
// One deliberate soundness correction relative to the Figure 5 pseudocode
// (see DESIGN.md §2): a simple node whose nested recognizer has already
// consumed input ("engaged") no longer matches its own element tag — those
// consumed symbols precede the tag in document order and could not be moved
// inside it. The node can still be ε-advanced past, closing the
// hypothesized element (Theorem 3 lets the unmatched remainder derive ε).
type Recognizer struct {
	schema  *Schema
	element string
	depth   int
	active  []*activeEntry
	any     bool // ANY content: accept everything (Section 4, Problem ECPV remark)
	// created counts recognizer objects rooted here (this one plus nested
	// ones, recursively) — the measure Figure 7 is about.
	created *int
	// ownCount backs created for root recognizers, avoiding a separate
	// counter allocation per element on the checking hot path.
	ownCount int
	// seen is an epoch-stamped per-DAG-node scratch replacing a per-Validate
	// map: seen[id] == epoch means node id was visited in the current sweep.
	// Indexed by dag.Node.ID, which is dense within one element's DAG.
	seen  []uint32
	epoch uint32
	// arena batch-allocates active entries; shared across the recognizer
	// tree rooted here.
	arena *entryArena
	// spareA/spareB are persistent scratch for Validate's prepended/next
	// sets; their backing arrays are kept disjoint from active's so one
	// sweep can read the old frontier while writing the new one.
	spareA, spareB []*activeEntry
}

// beginSeen starts a fresh visited generation without clearing the slice.
func (r *Recognizer) beginSeen() {
	r.epoch++
	if r.epoch == 0 {
		// Wrapped: clear stale stamps and restart. Clear through capacity —
		// init may later regrow the slice within cap, and pre-wrap stamps
		// beyond the current length would otherwise resurface.
		clear(r.seen[:cap(r.seen)])
		r.epoch = 1
	}
}

func (r *Recognizer) markSeen(id int)    { r.seen[id] = r.epoch }
func (r *Recognizer) isSeen(id int) bool { return r.seen[id] == r.epoch }

// activeEntry is one element of the active node set: a DAG node plus the
// lazily created nested recognizer of Figure 5 line 25.
type activeEntry struct {
	node    *dag.Node
	sub     *Recognizer
	engaged bool // sub has consumed at least one symbol
}

// entryArena batch-allocates activeEntry values for one recognizer tree
// (the root and its nested recognizers share one arena via newRecognizer).
// When a block fills, a fresh block is started and the full one is simply
// abandoned — handed-out pointers keep it alive, so entries never move.
type entryArena struct {
	buf []activeEntry
}

func (a *entryArena) new(node *dag.Node) *activeEntry {
	if len(a.buf) == cap(a.buf) {
		a.buf = make([]activeEntry, 0, max(16, 2*cap(a.buf)))
	}
	a.buf = append(a.buf, activeEntry{node: node})
	return &a.buf[len(a.buf)-1]
}

// reset recycles the current block. Only legal once nothing references the
// arena's entries any more (the recognizer's active set has been dropped).
func (a *entryArena) reset() { a.buf = a.buf[:0] }

// NewRecognizer builds a recognizer for the content of element elem, with
// the schema's effective depth bound.
func (s *Schema) NewRecognizer(elem string) *Recognizer {
	return s.newRecognizer(elem, s.depth, nil, nil)
}

// NewRecognizerDepth builds a recognizer with an explicit depth bound,
// exposed for the depth-sensitivity experiments (X3) and the Figure 7
// reproduction.
func (s *Schema) NewRecognizerDepth(elem string, depth int) *Recognizer {
	return s.newRecognizer(elem, depth, nil, nil)
}

// newRecognizer constructs one recognizer; a nil counter makes this a root
// (its creation count lives inline in ownCount and it owns a fresh arena).
func (s *Schema) newRecognizer(elem string, depth int, counter *int, arena *entryArena) *Recognizer {
	r := &Recognizer{schema: s, element: elem, depth: depth, created: counter, arena: arena}
	if counter == nil {
		r.created = &r.ownCount
	}
	if arena == nil {
		r.arena = &entryArena{}
	}
	*r.created++
	r.init()
	return r
}

// init (re)derives the element-dependent state: the active entry set, the
// ANY flag and the visited scratch. The arena, counter and depth are set by
// the caller.
func (r *Recognizer) init() {
	ed := r.schema.DAG.Element(r.element)
	if ed == nil {
		// Undeclared element: empty active set; any symbol rejects.
		return
	}
	if ed.Any {
		r.any = true
		return
	}
	if n := len(ed.Nodes()); n > 0 {
		if cap(r.seen) >= n {
			// Stale stamps are from older epochs and can never equal a
			// post-beginSeen epoch, so no clearing is needed.
			r.seen = r.seen[:n]
		} else {
			r.seen = make([]uint32, n)
		}
	}
	// Figure 5 line 8: append children(root) to activeNodesSet.
	for _, n := range ed.Entry {
		r.active = append(r.active, r.arena.new(n))
	}
}

// reinit readies a recycled recognizer for a fresh element — the
// StreamChecker's pooling hook. The previous element's entries must be
// unreachable (its active set popped) before the arena is recycled.
func (r *Recognizer) reinit(s *Schema, elem string, depth int) {
	r.schema = s
	r.element = elem
	r.depth = depth
	r.ownCount = 1
	r.created = &r.ownCount
	r.any = false
	r.active = r.active[:0]
	r.arena.reset()
	r.init()
}

// Element returns the element whose content this recognizer checks.
func (r *Recognizer) Element() string { return r.element }

// Depth returns the recognizer's remaining depth budget.
func (r *Recognizer) Depth() int { return r.depth }

// Created returns the total number of recognizer objects constructed for
// this check (this recognizer and all nested ones). Example 5 / Figure 7
// show this growing without bound if the depth is not bounded.
func (r *Recognizer) Created() int { return *r.created }

// Recognize feeds all symbols (Figure 5 lines 38-43) and reports
// acceptance.
func (r *Recognizer) Recognize(symbols []Symbol) bool {
	for _, x := range symbols {
		if !r.Validate(x) {
			return false
		}
	}
	return true
}

// Validate feeds one symbol (Figure 5 lines 10-37) and reports whether the
// content read so far remains potentially valid.
func (r *Recognizer) Validate(x Symbol) bool {
	if r.any {
		// ANY content admits any declared element and any character data.
		return x.Text || r.schema.LT.Has(x.Name)
	}
	result := false
	queue := r.active
	// seen guards the same-symbol ε-advance cascade: each DAG node is
	// visited at most once per Validate call *as a fresh position*. Engaged
	// entries are distinct configurations — symbols already consumed inside
	// a hypothesized element — and must not shadow the fresh position: a
	// sibling path may close its own hypothesis and reach this node with
	// nothing consumed (e.g. [b, σ, e, d] under the Figure 1 DTD, where
	// σ and e sit inside an inserted <f> and the real <d> then matches the
	// fresh d position).
	r.beginSeen()
	for _, e := range queue {
		if !e.engaged {
			r.markSeen(e.node.ID)
		}
	}
	next := r.spareB[:0]      // survivors, in order; exact-match children are prepended
	prepended := r.spareA[:0] // collected fronts, kept in match order

	epsilonAdvance := func(n *dag.Node) {
		for _, s := range n.Succ {
			if !r.isSeen(s.ID) {
				r.markSeen(s.ID)
				queue = append(queue, r.arena.new(s))
			}
		}
	}

	for i := 0; i < len(queue); i++ {
		e := queue[i]
		n := e.node
		if n.Type == dag.Group {
			// Figure 5 lines 13-21, justified by Proposition 2(2): a
			// star-group matches any symbol reachable from one of its
			// members; the node stays active (stars repeat).
			if r.groupMatches(n, x) {
				result = true
				next = append(next, e)
				continue
			}
			epsilonAdvance(n)
			continue
		}
		y := n.Element
		// Figure 5 lines 23-28: if x can occur strictly inside y, search
		// within a hypothesized (missing) y via a nested recognizer,
		// decrementing the depth budget (Section 4.3.1).
		if r.symbolReachableFrom(y, x) {
			if e.sub == nil {
				e.sub = r.schema.newRecognizer(y, r.depth-1, r.created, r.arena)
			}
			if e.sub.depth > 0 && e.sub.Validate(x) {
				e.engaged = true
				result = true
				next = append(next, e)
				continue
			}
		}
		// Figure 5 lines 29-33, with the engagement correction: the element
		// tag itself matches and the frontier advances for the *next*
		// symbol (children are prepended, not reprocessed for x).
		if !x.Text && x.Name == y && !e.engaged {
			result = true
			for _, s := range n.Succ {
				prepended = append(prepended, r.arena.new(s))
			}
			continue
		}
		// Figure 5 lines 34-35: ε-advance — the node derives ε (Theorem 3)
		// and its successors are searched for the same symbol.
		epsilonAdvance(n)
	}

	if result {
		old := r.active
		r.active = r.dedupEntries(append(prepended, next...))
		// Rotate buffers: the old frontier's array becomes scratch for the
		// next sweep, and the arrays stay pairwise disjoint.
		r.spareA = old[:0]
		r.spareB = next[:0]
	}
	// On reject the active set is left unchanged; recognize() stops anyway,
	// and nested speculative recognizers are discarded by their parent.
	return result
}

// dedupEntries drops duplicate non-engaged entries for the same DAG node,
// which can arise when one predecessor exact-matches (prepending a child)
// while another ε-advances to the same node. It opens a fresh seen
// generation, so it must not run concurrently with a sweep.
func (r *Recognizer) dedupEntries(entries []*activeEntry) []*activeEntry {
	if len(entries) < 2 {
		return entries
	}
	r.beginSeen()
	out := entries[:0]
	for _, e := range entries {
		if !e.engaged {
			if r.isSeen(e.node.ID) {
				continue
			}
			r.markSeen(e.node.ID)
		}
		out = append(out, e)
	}
	return out
}

func (r *Recognizer) groupMatches(n *dag.Node, x Symbol) bool {
	lt := r.schema.LT
	if x.Text {
		if n.HasPCDATA {
			return true
		}
		for _, y := range n.Elements {
			if lt.ReachesPCDATA(y) {
				return true
			}
		}
		return false
	}
	for _, y := range n.Elements {
		if y == x.Name || lt.Reachable(y, x.Name) {
			return true
		}
	}
	return false
}

// symbolReachableFrom reports whether x may occur strictly inside element y
// (the LT lookup of Figure 5 line 23). Strictness matters: "b is not found
// in the lookup table of b" (Example 4) unless b is recursive.
func (r *Recognizer) symbolReachableFrom(y string, x Symbol) bool {
	if x.Text {
		return r.schema.LT.ReachesPCDATA(y)
	}
	return r.schema.LT.Reachable(y, x.Name)
}

// ActiveLabels renders the current active node set for tracing (the solid
// nodes of Figure 6), sorted for stability. Engaged nodes are marked with
// "+rec" and show their nested recognizer's active labels in brackets.
func (r *Recognizer) ActiveLabels() []string {
	if r.any {
		return []string{"ANY"}
	}
	out := make([]string, 0, len(r.active))
	for _, e := range r.active {
		label := e.node.Label()
		if e.node.Type == dag.Group {
			label = "[" + label + "]"
		}
		if e.engaged {
			label += "+rec(" + strings.Join(e.sub.ActiveLabels(), "; ") + ")"
		}
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}

// TraceString renders the active set on one line for test assertions.
func (r *Recognizer) TraceString() string {
	return fmt.Sprintf("{%s}", strings.Join(r.ActiveLabels(), " "))
}
