package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dag"
)

// Recognizer is the ECRecognizer of Figure 5: a greedy online recognizer
// for one element's content. Symbols are fed one at a time via Validate (or
// in bulk via Recognize); the recognizer maintains the paper's active node
// set over the element's DAG, creating nested recognizers lazily when an
// input symbol can only occur inside a missing (yet-to-be-inserted)
// intermediate element, and bounding the nesting by the depth parameter so
// that PV-strong recursive DTDs terminate (Section 4.3.1, Figure 7).
//
// One deliberate soundness correction relative to the Figure 5 pseudocode
// (see DESIGN.md §2): a simple node whose nested recognizer has already
// consumed input ("engaged") no longer matches its own element tag — those
// consumed symbols precede the tag in document order and could not be moved
// inside it. The node can still be ε-advanced past, closing the
// hypothesized element (Theorem 3 lets the unmatched remainder derive ε).
type Recognizer struct {
	schema  *Schema
	element string
	depth   int
	active  []*activeEntry
	any     bool // ANY content: accept everything (Section 4, Problem ECPV remark)
	// created counts recognizer objects rooted here (this one plus nested
	// ones, recursively) — the measure Figure 7 is about.
	created *int
}

// activeEntry is one element of the active node set: a DAG node plus the
// lazily created nested recognizer of Figure 5 line 25.
type activeEntry struct {
	node    *dag.Node
	sub     *Recognizer
	engaged bool // sub has consumed at least one symbol
}

// NewRecognizer builds a recognizer for the content of element elem, with
// the schema's effective depth bound.
func (s *Schema) NewRecognizer(elem string) *Recognizer {
	counter := 0
	return s.newRecognizer(elem, s.depth, &counter)
}

// NewRecognizerDepth builds a recognizer with an explicit depth bound,
// exposed for the depth-sensitivity experiments (X3) and the Figure 7
// reproduction.
func (s *Schema) NewRecognizerDepth(elem string, depth int) *Recognizer {
	counter := 0
	return s.newRecognizer(elem, depth, &counter)
}

func (s *Schema) newRecognizer(elem string, depth int, counter *int) *Recognizer {
	*counter++
	r := &Recognizer{schema: s, element: elem, depth: depth, created: counter}
	ed := s.DAG.Element(elem)
	if ed == nil {
		// Undeclared element: empty active set; any symbol rejects.
		return r
	}
	if ed.Any {
		r.any = true
		return r
	}
	// Figure 5 line 8: append children(root) to activeNodesSet.
	for _, n := range ed.Entry {
		r.active = append(r.active, &activeEntry{node: n})
	}
	return r
}

// Element returns the element whose content this recognizer checks.
func (r *Recognizer) Element() string { return r.element }

// Depth returns the recognizer's remaining depth budget.
func (r *Recognizer) Depth() int { return r.depth }

// Created returns the total number of recognizer objects constructed for
// this check (this recognizer and all nested ones). Example 5 / Figure 7
// show this growing without bound if the depth is not bounded.
func (r *Recognizer) Created() int { return *r.created }

// Recognize feeds all symbols (Figure 5 lines 38-43) and reports
// acceptance.
func (r *Recognizer) Recognize(symbols []Symbol) bool {
	for _, x := range symbols {
		if !r.Validate(x) {
			return false
		}
	}
	return true
}

// Validate feeds one symbol (Figure 5 lines 10-37) and reports whether the
// content read so far remains potentially valid.
func (r *Recognizer) Validate(x Symbol) bool {
	if r.any {
		// ANY content admits any declared element and any character data.
		return x.Text || r.schema.LT.Has(x.Name)
	}
	result := false
	queue := r.active
	// seen guards the same-symbol ε-advance cascade: each DAG node is
	// visited at most once per Validate call *as a fresh position*. Engaged
	// entries are distinct configurations — symbols already consumed inside
	// a hypothesized element — and must not shadow the fresh position: a
	// sibling path may close its own hypothesis and reach this node with
	// nothing consumed (e.g. [b, σ, e, d] under the Figure 1 DTD, where
	// σ and e sit inside an inserted <f> and the real <d> then matches the
	// fresh d position).
	seen := make(map[int]bool, len(queue)*2)
	for _, e := range queue {
		if !e.engaged {
			seen[e.node.ID] = true
		}
	}
	var next []*activeEntry      // survivors, in order; exact-match children are prepended
	var prepended []*activeEntry // collected fronts, kept in match order

	epsilonAdvance := func(n *dag.Node) {
		for _, s := range n.Succ {
			if !seen[s.ID] {
				seen[s.ID] = true
				queue = append(queue, &activeEntry{node: s})
			}
		}
	}

	for i := 0; i < len(queue); i++ {
		e := queue[i]
		n := e.node
		if n.Type == dag.Group {
			// Figure 5 lines 13-21, justified by Proposition 2(2): a
			// star-group matches any symbol reachable from one of its
			// members; the node stays active (stars repeat).
			if r.groupMatches(n, x) {
				result = true
				next = append(next, e)
				continue
			}
			epsilonAdvance(n)
			continue
		}
		y := n.Element
		// Figure 5 lines 23-28: if x can occur strictly inside y, search
		// within a hypothesized (missing) y via a nested recognizer,
		// decrementing the depth budget (Section 4.3.1).
		if r.symbolReachableFrom(y, x) {
			if e.sub == nil {
				e.sub = r.schema.newRecognizer(y, r.depth-1, r.created)
			}
			if e.sub.depth > 0 && e.sub.Validate(x) {
				e.engaged = true
				result = true
				next = append(next, e)
				continue
			}
		}
		// Figure 5 lines 29-33, with the engagement correction: the element
		// tag itself matches and the frontier advances for the *next*
		// symbol (children are prepended, not reprocessed for x).
		if !x.Text && x.Name == y && !e.engaged {
			result = true
			for _, s := range n.Succ {
				prepended = append(prepended, &activeEntry{node: s})
			}
			continue
		}
		// Figure 5 lines 34-35: ε-advance — the node derives ε (Theorem 3)
		// and its successors are searched for the same symbol.
		epsilonAdvance(n)
	}

	if result {
		r.active = dedupEntries(append(prepended, next...))
	}
	// On reject the active set is left unchanged; recognize() stops anyway,
	// and nested speculative recognizers are discarded by their parent.
	return result
}

// dedupEntries drops duplicate non-engaged entries for the same DAG node,
// which can arise when one predecessor exact-matches (prepending a child)
// while another ε-advances to the same node.
func dedupEntries(entries []*activeEntry) []*activeEntry {
	if len(entries) < 2 {
		return entries
	}
	seen := map[int]bool{}
	out := entries[:0]
	for _, e := range entries {
		if !e.engaged {
			if seen[e.node.ID] {
				continue
			}
			seen[e.node.ID] = true
		}
		out = append(out, e)
	}
	return out
}

func (r *Recognizer) groupMatches(n *dag.Node, x Symbol) bool {
	lt := r.schema.LT
	if x.Text {
		if n.HasPCDATA {
			return true
		}
		for _, y := range n.Elements {
			if lt.ReachesPCDATA(y) {
				return true
			}
		}
		return false
	}
	for _, y := range n.Elements {
		if y == x.Name || lt.Reachable(y, x.Name) {
			return true
		}
	}
	return false
}

// symbolReachableFrom reports whether x may occur strictly inside element y
// (the LT lookup of Figure 5 line 23). Strictness matters: "b is not found
// in the lookup table of b" (Example 4) unless b is recursive.
func (r *Recognizer) symbolReachableFrom(y string, x Symbol) bool {
	if x.Text {
		return r.schema.LT.ReachesPCDATA(y)
	}
	return r.schema.LT.Reachable(y, x.Name)
}

// ActiveLabels renders the current active node set for tracing (the solid
// nodes of Figure 6), sorted for stability. Engaged nodes are marked with
// "+rec" and show their nested recognizer's active labels in brackets.
func (r *Recognizer) ActiveLabels() []string {
	if r.any {
		return []string{"ANY"}
	}
	out := make([]string, 0, len(r.active))
	for _, e := range r.active {
		label := e.node.Label()
		if e.node.Type == dag.Group {
			label = "[" + label + "]"
		}
		if e.engaged {
			label += "+rec(" + strings.Join(e.sub.ActiveLabels(), "; ") + ")"
		}
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}

// TraceString renders the active set on one line for test assertions.
func (r *Recognizer) TraceString() string {
	return fmt.Sprintf("{%s}", strings.Join(r.ActiveLabels(), " "))
}
