package core

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
)

// Example 1's two encodings.
const (
	exampleW = `<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>`
	exampleS = `<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`
	// Figure 3 / Example 2: the valid extension of s obtained by inserting
	// two <d> tags.
	exampleExt = `<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`
)

func TestExample1Documents(t *testing.T) {
	s := figure1Schema(t)
	// w is not potentially valid: the b, e, c order contradicts the DTD.
	v, err := s.CheckString(exampleW)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Error("w must not be potentially valid")
	} else {
		if v.Element != "a" {
			t.Errorf("violation at <%s>, want <a>", v.Element)
		}
		if v.SymbolIndex != 2 {
			t.Errorf("violation at symbol %d, want 2 (the c)", v.SymbolIndex)
		}
	}
	// s is potentially valid (Definition 3; Example 2 modulo its w/s label
	// swap).
	v, err = s.CheckString(exampleS)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("s must be potentially valid, got %v", v)
	}
}

func TestExtensionIsValidAndPV(t *testing.T) {
	// The Figure 3 extension is fully valid, and valid ⊆ potentially valid.
	s := figure1Schema(t)
	v, err := s.CheckString(exampleExt)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("the Figure 3 extension must be potentially valid: %v", v)
	}
}

func TestWrongRoot(t *testing.T) {
	s := figure1Schema(t)
	v, err := s.CheckString(`<a><c>x</c><d></d></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || !strings.Contains(v.Reason, "root") {
		t.Errorf("want root violation, got %v", v)
	}
	// With AllowAnyRoot the same document checks against <a> directly.
	s2 := MustCompile(dtd.MustParse(dtd.Figure1), "r", Options{AllowAnyRoot: true})
	v, err = s2.CheckString(`<a><c>x</c><d></d></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("AllowAnyRoot: %v", v)
	}
}

func TestUndeclaredElementViolation(t *testing.T) {
	s := figure1Schema(t)
	v, err := s.CheckString(`<r><a><ghost></ghost></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Element != "a" {
		// The ghost is caught while checking <a>'s content (not reachable).
		t.Errorf("want content violation at <a>, got %v", v)
	}
}

func TestDeepPVFailureLocated(t *testing.T) {
	// The violation node is the deepest failing element, not the root.
	s := figure1Schema(t)
	// f requires (c, e); e before c is a hard order violation inside f.
	v, err := s.CheckString(`<r><a><b><f><e></e><c>x</c></f></b><c>y</c><d></d></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("expected violation")
	}
	if v.Element != "f" {
		t.Errorf("violation at <%s>, want <f>", v.Element)
	}
	if v.SymbolIndex != 1 {
		t.Errorf("violation index %d, want 1", v.SymbolIndex)
	}
}

func TestTextPlacementViolation(t *testing.T) {
	s := figure1Schema(t)
	// Text directly under <r> can never be enclosed: r's content is (a+)
	// and a ⇝ PCDATA... careful: text under r CAN be wrapped into an
	// inserted <a>! a ⇝ c ⇝ PCDATA. So this is potentially valid.
	v, err := s.CheckString(`<r>loose text</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("text under <r> is wrappable into an inserted <a>: %v", v)
	}
	// Text under <e> (EMPTY) is a hard violation.
	v, err = s.CheckString(`<r><a><c>x</c><d><e>boom</e></d></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Element != "e" {
		t.Errorf("want violation at <e>, got %v", v)
	}
}

func TestCommentsAndPIsInvisible(t *testing.T) {
	s := figure1Schema(t)
	v, err := s.CheckString(`<r><!-- note --><a><?pi?><c>x</c><d></d></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("comments/PIs must not affect PV: %v", v)
	}
}

func TestWhitespaceOption(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (x)> <!ELEMENT x EMPTY>`)
	src := "<r>\n  <x></x>\n</r>"
	// Default: whitespace is σ, and r has no path to #PCDATA — reject.
	strict := MustCompile(d, "r", Options{})
	if v, _ := strict.CheckString(src); v == nil {
		t.Error("strict mode: whitespace σ under <r> must be rejected")
	}
	// IgnoreWhitespaceText: pretty-printed documents pass.
	loose := MustCompile(d, "r", Options{IgnoreWhitespaceText: true})
	if v, _ := loose.CheckString(src); v != nil {
		t.Errorf("loose mode: %v", v)
	}
}

func TestCheckNodeContent(t *testing.T) {
	s := figure1Schema(t)
	doc := dom.MustParse(exampleS)
	a := doc.Root.Children[0]
	if !s.CheckNodeContent(a) {
		t.Error("content of <a> in s is potentially valid")
	}
	if !s.CheckNodeContent(doc.Root) {
		t.Error("content of <r> is potentially valid")
	}
}

func TestChildSymbols(t *testing.T) {
	doc := dom.MustParse(`<a><b>x</b>mid<!-- c -->dle<e></e>tail</a>`)
	syms := ChildSymbols(doc.Root, false)
	// b, σ (mid+dle collapse across the comment), e, σ.
	want := "b, σ, e, σ"
	if got := FormatSymbols(syms); got != want {
		t.Errorf("ChildSymbols = %q, want %q", got, want)
	}
}

func TestViolationString(t *testing.T) {
	var v *Violation
	if v.String() != "potentially valid" {
		t.Error("nil violation should read as potentially valid")
	}
	s := figure1Schema(t)
	v, _ = s.CheckString(exampleW)
	if v == nil || !strings.Contains(v.String(), "not potentially valid") {
		t.Errorf("violation text: %v", v)
	}
}
