// Bounded-memory streaming front-end for the zero-copy byte lexer.
// ChunkedLexer reads an io.Reader into a fixed sliding window and drives a
// ByteLexer in streaming mode over it: when the window ends mid-token the
// inner lexer reports errNeedMore, the unconsumed tail is slid to the front
// of the buffer, more input is appended, and the token is re-lexed. In the
// steady state tokens remain zero-copy subslices of the window; only the
// rare token that outgrows the window forces the buffer to grow (doubling,
// so re-lexing a giant token stays amortized linear). Memory is therefore
// O(buffer + largest single token), never O(document) — the property
// core.StreamChecker.RunReader and the /check/raw route build on.
package xmltext

import (
	"errors"
	"io"
)

// DefaultChunkSize is the sliding-window size ChunkedLexer uses when the
// caller does not choose one. Large enough that refill bookkeeping is noise
// against lexing (X13 prices this), small enough to keep per-stream memory
// trivial.
const DefaultChunkSize = 256 << 10

// ChunkedLexer lexes an XML document streamed from an io.Reader in bounded
// memory. Token byte slices are valid only until the next call to Next —
// a refill may slide the window they point into.
type ChunkedLexer struct {
	r     io.Reader
	inner ByteLexer
	buf   []byte
	n     int   // bytes of buf holding the current window
	base  int64 // global offset of buf[0] within the stream
	eof   bool  // r is exhausted; the window holds the document's tail
}

// NewChunkedLexer returns a lexer that reads src through a sliding window of
// bufSize bytes (DefaultChunkSize if bufSize <= 0).
func NewChunkedLexer(src io.Reader, bufSize int) *ChunkedLexer {
	if bufSize <= 0 {
		bufSize = DefaultChunkSize
	}
	cl := &ChunkedLexer{buf: make([]byte, bufSize)}
	cl.Reset(src)
	return cl
}

// Reset rewinds the lexer onto a new stream, retaining its window buffer —
// the hook that lets checker pools stream many documents without
// re-allocating the window.
func (cl *ChunkedLexer) Reset(src io.Reader) {
	cl.r = src
	cl.n = 0
	cl.base = 0
	cl.eof = false
	cl.inner = ByteLexer{line: 1, col: 1, streaming: true,
		attrs: cl.inner.attrs, scratch: cl.inner.scratch}
}

// BufSize returns the current window size (it grows only when a single
// token exceeded it).
func (cl *ChunkedLexer) BufSize() int { return len(cl.buf) }

// Next returns the next token, or (nil, nil) at end of input. Errors are
// either *SyntaxError values identical (message and global position) to
// what the whole-buffer ByteLexer would produce, or errors from the
// underlying reader.
func (cl *ChunkedLexer) Next() (*ByteToken, error) {
	for {
		// Snapshot the consumed point: on a mid-token window end the failed
		// attempt is rolled back to here and retried after a refill.
		cp, line, col := cl.inner.pos, cl.inner.line, cl.inner.col
		tok, err := cl.inner.Next()
		if err == errNeedMore || (err == nil && tok == nil && !cl.eof) {
			if rerr := cl.refill(cp); rerr != nil {
				return nil, rerr
			}
			cl.inner.src = cl.buf[:cl.n]
			cl.inner.pos = 0 // refill slid the consumed point to the front
			cl.inner.line, cl.inner.col = line, col
			continue
		}
		if err != nil {
			// Inner positions are window-relative; lift to the stream.
			var se *SyntaxError
			if errors.As(err, &se) {
				se.Pos.Offset += int(cl.base)
			}
			return nil, err
		}
		if tok == nil {
			return nil, nil
		}
		tok.Pos.Offset += int(cl.base)
		tok.End += int(cl.base)
		return tok, nil
	}
}

// refill discards the cp consumed bytes at the front of the window, slides
// the unconsumed tail down, and appends at least one new byte from the
// reader. At end of input it flips the inner lexer out of streaming mode so
// end-of-window conditions become definitive (token or syntax error).
func (cl *ChunkedLexer) refill(cp int) error {
	if cp > 0 {
		copy(cl.buf, cl.buf[cp:cl.n])
		cl.n -= cp
		cl.base += int64(cp)
	}
	if cl.n == len(cl.buf) {
		// A single token fills the whole window: grow so it can complete.
		grown := make([]byte, 2*len(cl.buf))
		copy(grown, cl.buf[:cl.n])
		cl.buf = grown
	}
	for empty := 0; ; {
		m, err := cl.r.Read(cl.buf[cl.n:])
		cl.n += m
		if m > 0 {
			if err == io.EOF {
				cl.eof = true
				cl.inner.streaming = false
			}
			return nil
		}
		switch {
		case err == io.EOF:
			cl.eof = true
			cl.inner.streaming = false
			return nil
		case err != nil:
			return err
		default:
			if empty++; empty >= 100 {
				return io.ErrNoProgress
			}
		}
	}
}

// InputOffset returns the global byte offset of the next unconsumed byte —
// at end of input, the document length.
func (cl *ChunkedLexer) InputOffset() int64 { return cl.base + int64(cl.inner.pos) }
