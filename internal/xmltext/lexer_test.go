package xmltext

import (
	"reflect"
	"testing"
)

func kinds(tokens []Token) []TokenKind {
	out := make([]TokenKind, len(tokens))
	for i, t := range tokens {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeExample1(t *testing.T) {
	// The w string of Example 1.
	src := `<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>`
	tokens, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		StartTag, StartTag, StartTag, Text, EndTag, // <r><a><b>A quick brown</b>
		StartTag, EndTag, // <e></e>
		StartTag, Text, EndTag, // <c>...</c>
		Text, EndTag, EndTag, // dog</a></r>
	}
	if !reflect.DeepEqual(kinds(tokens), want) {
		t.Errorf("kinds = %v, want %v", kinds(tokens), want)
	}
	if tokens[3].Data != "A quick brown" {
		t.Errorf("text = %q", tokens[3].Data)
	}
	if tokens[0].Name != "r" || tokens[12].Name != "r" {
		t.Errorf("root tags wrong: %q %q", tokens[0].Name, tokens[12].Name)
	}
}

func TestSelfClosingTag(t *testing.T) {
	tokens, err := Tokenize(`<a><e/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{StartTag, StartTag, EndTag, EndTag}
	if !reflect.DeepEqual(kinds(tokens), want) {
		t.Fatalf("kinds = %v, want %v", kinds(tokens), want)
	}
	if !tokens[1].SelfClose {
		t.Error("SelfClose flag not set")
	}
	if tokens[2].Name != "e" {
		t.Errorf("synthetic end tag name = %q", tokens[2].Name)
	}
}

func TestAttributes(t *testing.T) {
	tokens, err := Tokenize(`<a id="x1" lang='en' title="a &lt;b&gt; &amp; c"></a>`)
	if err != nil {
		t.Fatal(err)
	}
	attrs := tokens[0].Attrs
	want := []Attr{{"id", "x1"}, {"lang", "en"}, {"title", "a <b> & c"}}
	if !reflect.DeepEqual(attrs, want) {
		t.Errorf("attrs = %v, want %v", attrs, want)
	}
}

func TestDuplicateAttributeRejected(t *testing.T) {
	if _, err := Tokenize(`<a id="1" id="2"/>`); err == nil {
		t.Error("expected duplicate-attribute error")
	}
}

func TestEntitiesAndCharRefs(t *testing.T) {
	tokens, err := Tokenize(`<a>&lt;tag&gt; &amp; &#65;&#x42;</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if tokens[1].Data != "<tag> & AB" {
		t.Errorf("text = %q", tokens[1].Data)
	}
}

func TestUnknownEntityRejected(t *testing.T) {
	if _, err := Tokenize(`<a>&nope;</a>`); err == nil {
		t.Error("expected unknown-entity error")
	}
}

func TestCDATAAndComments(t *testing.T) {
	tokens, err := Tokenize(`<a><![CDATA[raw <b> & stuff]]><!-- note --><?pi data?></a>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{StartTag, Text, Comment, ProcInst, EndTag}
	if !reflect.DeepEqual(kinds(tokens), want) {
		t.Fatalf("kinds = %v, want %v", kinds(tokens), want)
	}
	if tokens[1].Data != "raw <b> & stuff" {
		t.Errorf("CDATA = %q", tokens[1].Data)
	}
	if tokens[2].Data != " note " {
		t.Errorf("comment = %q", tokens[2].Data)
	}
	if tokens[3].Name != "pi" || tokens[3].Data != "data" {
		t.Errorf("PI = %q %q", tokens[3].Name, tokens[3].Data)
	}
}

func TestDoctypeSkipped(t *testing.T) {
	tokens, err := Tokenize(`<!DOCTYPE r SYSTEM "r.dtd" [ <!ELEMENT r ANY> ]><r></r>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{Doctype, StartTag, EndTag}
	if !reflect.DeepEqual(kinds(tokens), want) {
		t.Fatalf("kinds = %v, want %v", kinds(tokens), want)
	}
}

func TestPositions(t *testing.T) {
	tokens, err := Tokenize("<a>\n<b></b></a>")
	if err != nil {
		t.Fatal(err)
	}
	b := tokens[2]
	if b.Name != "b" || b.Pos.Line != 2 || b.Pos.Col != 1 {
		t.Errorf("position of <b> = %+v", b.Pos)
	}
	if b.Pos.Offset != 4 {
		t.Errorf("offset of <b> = %d, want 4", b.Pos.Offset)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"<a",                // unterminated start tag
		"<a><!-- never",     // unterminated comment
		"<a><![CDATA[ oops", // unterminated CDATA
		"<a x=1></a>",       // unquoted attribute
		"<a x></a>",         // attribute without value
		"</ >",              // bad end tag
		"<a>&unterminated",  // entity without semicolon
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestEscapeHelpers(t *testing.T) {
	if got := EscapeText(`a < b & c > d`); got != "a &lt; b &amp; c &gt; d" {
		t.Errorf("EscapeText = %q", got)
	}
	if got := EscapeAttr(`say "hi" & <go>`); got != `say &quot;hi&quot; &amp; &lt;go>` {
		t.Errorf("EscapeAttr = %q", got)
	}
}

func TestUnicodeNames(t *testing.T) {
	tokens, err := Tokenize(`<été>ça</été>`)
	if err != nil {
		t.Fatal(err)
	}
	if tokens[0].Name != "été" {
		t.Errorf("name = %q", tokens[0].Name)
	}
}
