// Zero-copy byte-path lexer. ByteLexer recognizes exactly the grammar of
// Lexer but operates on []byte input and emits tokens whose Name/Data/Attrs
// are subslices of the input (or of an internal scratch buffer when entity
// references force resolution), so the steady-state token loop performs no
// per-token allocation. The string Lexer remains the compatibility surface;
// ByteToken.Token and TokenizeBytes are the thin string shims over this
// path, and FuzzLexBytes plus TestByteLexerMatchesStringLexer pin the two
// implementations to byte-identical token streams.
package xmltext

import (
	"bytes"
	"fmt"
	"unicode"
	"unicode/utf8"
)

// ByteAttr is one attribute of a start tag. Name always subslices the
// input; Value subslices the input when the raw value contains no entity
// references, and the lexer's scratch buffer otherwise.
type ByteAttr struct {
	Name  []byte
	Value []byte
}

// ByteToken is the zero-copy counterpart of Token. Its byte slices (and the
// token itself, which the lexer reuses) are valid only until the next call
// to Next; callers that need to retain a token materialize it with Token.
type ByteToken struct {
	Kind      TokenKind
	Name      []byte // element name for StartTag/EndTag, target for ProcInst
	Data      []byte // text content, comment body, PI data
	Attrs     []ByteAttr
	SelfClose bool
	Pos       Pos
	End       int
}

// Token materializes the byte token as an owning string Token — the
// compatibility shim for callers on the string API.
func (t *ByteToken) Token() Token {
	out := Token{
		Kind:      t.Kind,
		Name:      string(t.Name),
		Data:      string(t.Data),
		SelfClose: t.SelfClose,
		Pos:       t.Pos,
		End:       t.End,
	}
	if len(t.Attrs) > 0 {
		out.Attrs = make([]Attr, len(t.Attrs))
		for i, a := range t.Attrs {
			out.Attrs[i] = Attr{Name: string(a.Name), Value: string(a.Value)}
		}
	}
	return out
}

// ByteLexer tokenizes an XML byte slice without copying it. The input must
// not be mutated while the lexer is in use.
type ByteLexer struct {
	src       []byte
	pos       int
	line, col int
	tok       ByteToken // reused; returned by Next
	attrs     []ByteAttr
	scratch   []byte // entity-resolved text and attribute values
	pendTok   ByteToken
	havePend  bool // a synthetic EndTag follows a self-closing StartTag
	streaming bool // src is a window, not the whole document; see errNeedMore
}

// errNeedMore is returned (in streaming mode only) when the window ends in
// the middle of a token: the condition that reads as a syntax error on a
// whole document may resolve once more bytes arrive. ChunkedLexer reacts by
// refilling the window and re-lexing from the last consumed position; the
// sentinel never escapes to ChunkedLexer callers. Sites that can hit the end
// of input funnel through (*ByteLexer).more so the streaming and
// whole-buffer paths stay in lockstep.
var errNeedMore = fmt.Errorf("xmltext: need more input")

// more converts an at-end-of-input condition into either the retryable
// refill sentinel (streaming mode) or the definitive syntax error
// (whole-buffer mode, or streaming mode after the final refill).
func (l *ByteLexer) more(pos Pos, format string, args ...any) error {
	if l.streaming {
		return errNeedMore
	}
	return l.errf(pos, format, args...)
}

// NewByteLexer returns a lexer over src.
func NewByteLexer(src []byte) *ByteLexer {
	return &ByteLexer{src: src, line: 1, col: 1}
}

// Reset rewinds the lexer onto a new input, retaining its internal buffers
// — the hook that lets checker pools lex many documents without
// re-allocating lexer state.
func (l *ByteLexer) Reset(src []byte) {
	l.src = src
	l.pos = 0
	l.line, l.col = 1, 1
	l.havePend = false
}

// TokenizeBytes lexes the entire slice through the zero-copy path and
// materializes string tokens — byte-for-byte equivalent to Tokenize(string(src)).
func TokenizeBytes(src []byte) ([]Token, error) {
	lx := NewByteLexer(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if tok == nil {
			return out, nil
		}
		out = append(out, tok.Token())
	}
}

func (l *ByteLexer) position() Pos { return Pos{Offset: l.pos, Line: l.line, Col: l.col} }

func (l *ByteLexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *ByteLexer) errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var (
	bComment = []byte("<!--")
	bCDATA   = []byte("<![CDATA[")
	bDoctype = []byte("<!DOCTYPE")
	bPI      = []byte("<?")
	bEndOpen = []byte("</")
	bSelfEnd = []byte("/>")
)

// Next returns the next token, or (nil, nil) at end of input. The returned
// token is owned by the lexer and overwritten by the following call.
func (l *ByteLexer) Next() (*ByteToken, error) {
	if l.havePend {
		l.havePend = false
		l.tok = l.pendTok
		return &l.tok, nil
	}
	if l.pos >= len(l.src) {
		return nil, nil
	}
	l.scratch = l.scratch[:0]
	start := l.position()
	if l.src[l.pos] != '<' {
		return l.lexText(start)
	}
	rest := l.src[l.pos:]
	if l.streaming && len(rest) < len(bCDATA) {
		// The window may end inside a markup marker ("<!", "<![CD", …): the
		// dispatch below would mis-lex the fragment as a start tag. Refill
		// before deciding. rest always begins with '<', so a prefix match
		// here is a genuine split marker, never plain text.
		for _, m := range [][]byte{bComment, bCDATA, bDoctype, bPI, bEndOpen} {
			if len(rest) < len(m) && bytes.HasPrefix(m, rest) {
				return nil, errNeedMore
			}
		}
	}
	switch {
	case bytes.HasPrefix(rest, bComment):
		return l.lexComment(start)
	case bytes.HasPrefix(rest, bCDATA):
		return l.lexCDATA(start)
	case bytes.HasPrefix(rest, bDoctype):
		return l.lexDoctype(start)
	case bytes.HasPrefix(rest, bPI):
		return l.lexPI(start)
	case bytes.HasPrefix(rest, bEndOpen):
		return l.lexEndTag(start)
	default:
		return l.lexStartTag(start)
	}
}

func (l *ByteLexer) lexText(start Pos) (*ByteToken, error) {
	from := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '<' && l.src[l.pos] != '&' {
		l.advance(1)
	}
	if l.pos >= len(l.src) || l.src[l.pos] == '<' {
		if l.streaming && l.pos >= len(l.src) {
			return nil, errNeedMore // the text run may continue past the window
		}
		// Fast path: no entity references, the text is a pure subslice.
		l.tok = ByteToken{Kind: Text, Data: l.src[from:l.pos], Pos: start, End: l.pos}
		return &l.tok, nil
	}
	l.scratch = append(l.scratch, l.src[from:l.pos]...)
	for l.pos < len(l.src) && l.src[l.pos] != '<' {
		if l.src[l.pos] == '&' {
			if err := l.appendEntity(); err != nil {
				return nil, err
			}
			continue
		}
		l.scratch = append(l.scratch, l.src[l.pos])
		l.advance(1)
	}
	if l.streaming && l.pos >= len(l.src) {
		return nil, errNeedMore
	}
	l.tok = ByteToken{Kind: Text, Data: l.scratch, Pos: start, End: l.pos}
	return &l.tok, nil
}

// appendEntity resolves one entity reference at the cursor into scratch.
func (l *ByteLexer) appendEntity() error {
	start := l.position()
	semi := bytes.IndexByte(l.src[l.pos:], ';')
	if semi < 0 || semi > 12 {
		// Streaming: the ';' may sit just past the window, but only while
		// fewer than 13 bytes ('&' plus the longest legal reference body)
		// have been scanned; beyond that the reference is unterminated no
		// matter what follows.
		if l.streaming && semi < 0 && len(l.src)-l.pos <= 12 {
			return errNeedMore
		}
		return l.errf(start, "unterminated entity reference")
	}
	name := l.src[l.pos+1 : l.pos+semi]
	l.advance(semi + 1)
	if len(name) >= 2 && name[0] == '#' && (name[1] == 'x' || name[1] == 'X') {
		r, ok := charRefValue(name[2:], 16)
		if !ok {
			return l.errf(start, "bad character reference &%s;", name)
		}
		l.scratch = utf8.AppendRune(l.scratch, r)
		return nil
	}
	if len(name) >= 1 && name[0] == '#' {
		r, ok := charRefValue(name[1:], 10)
		if !ok {
			return l.errf(start, "bad character reference &%s;", name)
		}
		l.scratch = utf8.AppendRune(l.scratch, r)
		return nil
	}
	switch string(name) { // compiles to comparisons; no conversion allocation
	case "lt":
		l.scratch = append(l.scratch, '<')
	case "gt":
		l.scratch = append(l.scratch, '>')
	case "amp":
		l.scratch = append(l.scratch, '&')
	case "apos":
		l.scratch = append(l.scratch, '\'')
	case "quot":
		l.scratch = append(l.scratch, '"')
	default:
		return l.errf(start, "unknown entity &%s;", name)
	}
	return nil
}

func (l *ByteLexer) lexComment(start Pos) (*ByteToken, error) {
	l.advance(4) // <!--
	end := bytes.Index(l.src[l.pos:], []byte("-->"))
	if end < 0 {
		return nil, l.more(start, "unterminated comment")
	}
	data := l.src[l.pos : l.pos+end]
	l.advance(end + 3)
	l.tok = ByteToken{Kind: Comment, Data: data, Pos: start, End: l.pos}
	return &l.tok, nil
}

func (l *ByteLexer) lexCDATA(start Pos) (*ByteToken, error) {
	l.advance(9) // <![CDATA[
	end := bytes.Index(l.src[l.pos:], []byte("]]>"))
	if end < 0 {
		return nil, l.more(start, "unterminated CDATA section")
	}
	data := l.src[l.pos : l.pos+end]
	l.advance(end + 3)
	l.tok = ByteToken{Kind: Text, Data: data, Pos: start, End: l.pos}
	return &l.tok, nil
}

func (l *ByteLexer) lexDoctype(start Pos) (*ByteToken, error) {
	l.advance(len("<!DOCTYPE"))
	depth := 0
	from := l.pos
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '"', '\'':
			q := l.src[l.pos]
			l.advance(1)
			for l.pos < len(l.src) && l.src[l.pos] != q {
				l.advance(1)
			}
		case '>':
			if depth == 0 {
				data := l.src[from:l.pos]
				l.advance(1)
				l.tok = ByteToken{Kind: Doctype, Data: bytes.TrimSpace(data), Pos: start, End: l.pos}
				return &l.tok, nil
			}
		}
		l.advance(1)
	}
	return nil, l.more(start, "unterminated DOCTYPE declaration")
}

func (l *ByteLexer) lexPI(start Pos) (*ByteToken, error) {
	l.advance(2) // <?
	end := bytes.Index(l.src[l.pos:], []byte("?>"))
	if end < 0 {
		return nil, l.more(start, "unterminated processing instruction")
	}
	body := l.src[l.pos : l.pos+end]
	l.advance(end + 2)
	name := body
	var data []byte
	if i := bytes.IndexAny(body, " \t\r\n"); i >= 0 {
		name, data = body[:i], bytes.TrimSpace(body[i:])
	}
	l.tok = ByteToken{Kind: ProcInst, Name: name, Data: data, Pos: start, End: l.pos}
	return &l.tok, nil
}

func (l *ByteLexer) lexEndTag(start Pos) (*ByteToken, error) {
	l.advance(2) // </
	name, err := l.lexName()
	if err != nil {
		return nil, err
	}
	l.skipSpace()
	if l.pos >= len(l.src) {
		return nil, l.more(start, "malformed end tag </%s", name)
	}
	if l.src[l.pos] != '>' {
		return nil, l.errf(start, "malformed end tag </%s", name)
	}
	l.advance(1)
	l.tok = ByteToken{Kind: EndTag, Name: name, Pos: start, End: l.pos}
	return &l.tok, nil
}

func (l *ByteLexer) lexStartTag(start Pos) (*ByteToken, error) {
	l.advance(1) // <
	name, err := l.lexName()
	if err != nil {
		return nil, err
	}
	l.attrs = l.attrs[:0]
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			return nil, l.more(start, "unterminated start tag <%s", name)
		}
		switch l.src[l.pos] {
		case '>':
			l.advance(1)
			l.tok = ByteToken{Kind: StartTag, Name: name, Attrs: l.attrs, Pos: start, End: l.pos}
			return &l.tok, nil
		case '/':
			if !bytes.HasPrefix(l.src[l.pos:], bSelfEnd) {
				if l.streaming && l.pos+1 >= len(l.src) {
					return nil, errNeedMore // "/" may be the start of "/>"
				}
				return nil, l.errf(l.position(), "expected '/>' in tag <%s", name)
			}
			l.advance(2)
			l.pendTok = ByteToken{Kind: EndTag, Name: name, Pos: l.position(), End: l.pos}
			l.havePend = true
			l.tok = ByteToken{Kind: StartTag, Name: name, Attrs: l.attrs, SelfClose: true, Pos: start, End: l.pos}
			return &l.tok, nil
		default:
			attr, err := l.lexAttr()
			if err != nil {
				return nil, err
			}
			// Linear scan instead of a per-tag set: tags have few attributes
			// and this keeps the hot path allocation-free.
			for _, a := range l.attrs {
				if bytes.Equal(a.Name, attr.Name) {
					return nil, l.errf(start, "duplicate attribute %q in tag <%s", attr.Name, name)
				}
			}
			l.attrs = append(l.attrs, attr)
		}
	}
}

func (l *ByteLexer) lexAttr() (ByteAttr, error) {
	name, err := l.lexName()
	if err != nil {
		return ByteAttr{}, err
	}
	l.skipSpace()
	if l.pos >= len(l.src) {
		return ByteAttr{}, l.more(l.position(), "attribute %q missing '='", name)
	}
	if l.src[l.pos] != '=' {
		return ByteAttr{}, l.errf(l.position(), "attribute %q missing '='", name)
	}
	l.advance(1)
	l.skipSpace()
	if l.pos >= len(l.src) {
		return ByteAttr{}, l.more(l.position(), "attribute %q value must be quoted", name)
	}
	if l.src[l.pos] != '"' && l.src[l.pos] != '\'' {
		return ByteAttr{}, l.errf(l.position(), "attribute %q value must be quoted", name)
	}
	q := l.src[l.pos]
	l.advance(1)
	from := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != q && l.src[l.pos] != '&' && l.src[l.pos] != '<' {
		l.advance(1)
	}
	if l.pos < len(l.src) && l.src[l.pos] == q {
		// Fast path: no entities, the value is a pure subslice.
		val := l.src[from:l.pos]
		l.advance(1)
		return ByteAttr{Name: name, Value: val}, nil
	}
	if l.streaming && l.pos >= len(l.src) {
		return ByteAttr{}, errNeedMore
	}
	valStart := len(l.scratch)
	l.scratch = append(l.scratch, l.src[from:l.pos]...)
	for l.pos < len(l.src) && l.src[l.pos] != q {
		if l.src[l.pos] == '&' {
			if err := l.appendEntity(); err != nil {
				return ByteAttr{}, err
			}
			continue
		}
		if l.src[l.pos] == '<' {
			return ByteAttr{}, l.errf(l.position(), "'<' not allowed in attribute value")
		}
		l.scratch = append(l.scratch, l.src[l.pos])
		l.advance(1)
	}
	if l.pos >= len(l.src) {
		return ByteAttr{}, l.more(l.position(), "unterminated attribute value for %q", name)
	}
	l.advance(1)
	return ByteAttr{Name: name, Value: l.scratch[valStart:len(l.scratch):len(l.scratch)]}, nil
}

func (l *ByteLexer) lexName() ([]byte, error) {
	start := l.pos
	r, size := utf8.DecodeRune(l.src[l.pos:])
	if size == 0 || !(r == '_' || r == ':' || unicode.IsLetter(r)) {
		// Streaming: an empty window, or a RuneError from what may be a
		// multi-byte rune truncated by the window edge, can both resolve
		// after a refill. A RuneError with utf8.UTFMax bytes in hand is a
		// genuinely invalid byte and stays an error.
		if l.streaming && (size == 0 || (r == utf8.RuneError && size == 1 && len(l.src)-l.pos < utf8.UTFMax)) {
			return nil, errNeedMore
		}
		if l.streaming && len(l.src)-l.pos < 10 {
			// The error message quotes up to 10 bytes of context; refill so
			// the streamed message matches the whole-buffer one exactly.
			return nil, errNeedMore
		}
		return nil, l.errf(l.position(), "expected a name, found %q", l.src[l.pos:min(l.pos+10, len(l.src))])
	}
	l.advance(size)
	for l.pos < len(l.src) {
		r, size = utf8.DecodeRune(l.src[l.pos:])
		if r == utf8.RuneError && size == 1 && l.streaming && len(l.src)-l.pos < utf8.UTFMax {
			return nil, errNeedMore // possibly a name rune split by the window edge
		}
		if !(r == '_' || r == ':' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
			break
		}
		l.advance(size)
	}
	if l.streaming && l.pos >= len(l.src) {
		return nil, errNeedMore // the name may continue past the window
	}
	return l.src[start:l.pos], nil
}

func (l *ByteLexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\r', '\n':
			l.advance(1)
		default:
			return
		}
	}
}

// charRefValue parses the digits of a numeric character reference in the
// given base (10 or 16). It is strict — no signs, no trailing garbage, no
// values beyond the Unicode code space — and shared by both lexers so the
// string and byte paths agree on every input.
func charRefValue[S ~string | ~[]byte](digits S, base int32) (rune, bool) {
	if len(digits) == 0 {
		return 0, false
	}
	var n int32
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		var d int32
		switch {
		case '0' <= c && c <= '9':
			d = int32(c - '0')
		case base == 16 && 'a' <= c && c <= 'f':
			d = int32(c-'a') + 10
		case base == 16 && 'A' <= c && c <= 'F':
			d = int32(c-'A') + 10
		default:
			return 0, false
		}
		n = n*base + d
		if n > unicode.MaxRune {
			return 0, false
		}
	}
	return rune(n), true
}
