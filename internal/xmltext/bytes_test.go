package xmltext

import (
	"reflect"
	"strings"
	"testing"
)

// differentialInputs is a corpus spanning every token kind, both entity
// paths, error cases and position-sensitive shapes.
var differentialInputs = []string{
	``,
	`<a></a>`,
	`<a/>`,
	`<a x="1" y='2'/>`,
	`<a>text</a>`,
	`<a>one<b>two</b>three</a>`,
	`<a>&lt;tag&gt; &amp; &#65;&#x42;</a>`,
	`<a x="&quot;q&quot;" y="a&amp;b"></a>`,
	`<a><![CDATA[<raw>&amp;]]></a>`,
	`<a><!-- a comment --><?pi target data?></a>`,
	`<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r>t</r>`,
	"<a>\nline two\n  <b>indented</b>\n</a>",
	`<ns:elem ns:attr="v"/>`,
	`<a-b.c_d>x</a-b.c_d>`,
	`<a x="same" x="dup"/>`,
	`<a>&unknown;</a>`,
	`<a>&#xZZ;</a>`,
	`<a>&#;</a>`,
	`<a>&noend</a>`,
	`<a`,
	`<a x`,
	`<a x=`,
	`<a x=">`,
	`<a x="<"/>`,
	`</a>`,
	`</a `,
	`<a><b></a>`,
	`<1bad/>`,
	`<a><!-- unterminated`,
	`<a><![CDATA[ unterminated`,
	`<?pi unterminated`,
	`<!DOCTYPE unterminated`,
	`<a>x</a>trailing&`,
	`<a>&#1114112;</a>`,   // beyond MaxRune
	`<a>&#x10FFFF;</a>`,   // exactly MaxRune
	`<élem attr="café"/>`, // multi-byte names and values
	`<a>mixed &#x263A; text</a>`,
}

// TestByteLexerMatchesStringLexer pins the zero-copy path to the string
// lexer: identical token streams (kinds, names, data, attributes,
// positions) and identical errors on every corpus input.
func TestByteLexerMatchesStringLexer(t *testing.T) {
	for _, src := range differentialInputs {
		want, wantErr := Tokenize(src)
		got, gotErr := TokenizeBytes([]byte(src))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: error mismatch\n  string: %v\n  bytes:  %v", src, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Errorf("%q: error text mismatch\n  string: %v\n  bytes:  %v", src, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%q: token mismatch\n  string: %#v\n  bytes:  %#v", src, want, got)
		}
	}
}

// TestByteTokensAreSubslices verifies the zero-copy contract: on input free
// of entity references, token names, data and attribute values alias the
// source buffer rather than copies of it.
func TestByteTokensAreSubslices(t *testing.T) {
	src := []byte(`<doc id="d1"><title>plain text</title><empty/></doc>`)
	aliases := func(b []byte) bool {
		if len(b) == 0 {
			return true
		}
		for i := range src {
			if &src[i] == &b[0] {
				return true
			}
		}
		return false
	}
	lx := NewByteLexer(src)
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok == nil {
			return
		}
		if !aliases(tok.Name) {
			t.Errorf("token %v name %q does not alias the input", tok.Kind, tok.Name)
		}
		if !aliases(tok.Data) {
			t.Errorf("token %v data %q does not alias the input", tok.Kind, tok.Data)
		}
		for _, a := range tok.Attrs {
			if !aliases(a.Name) || !aliases(a.Value) {
				t.Errorf("attr %q=%q does not alias the input", a.Name, a.Value)
			}
		}
	}
}

// TestByteLexerSteadyStateAllocs verifies the byte path's reason to exist:
// after warm-up, lexing an entity-free document performs zero allocations.
func TestByteLexerSteadyStateAllocs(t *testing.T) {
	src := []byte(strings.Repeat(`<a x="1"><b>some text</b><c/></a>`, 50))
	src = append(append([]byte(`<root>`), src...), `</root>`...)
	lx := NewByteLexer(nil)
	run := func() {
		lx.Reset(src)
		for {
			tok, err := lx.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tok == nil {
				return
			}
		}
	}
	run() // warm up attrs buffer
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Errorf("byte lexer allocates %.1f times per entity-free document, want 0", avg)
	}
}

// TestByteLexerScratchReuse ensures entity-bearing values are correct even
// though they share the lexer's scratch buffer within one token.
func TestByteLexerScratchReuse(t *testing.T) {
	toks, err := TokenizeBytes([]byte(`<a x="1&amp;2" y="3&lt;4" z="&#65;&#66;">&gt;text&lt;</a>`))
	if err != nil {
		t.Fatal(err)
	}
	start := toks[0]
	want := []Attr{{"x", "1&2"}, {"y", "3<4"}, {"z", "AB"}}
	if !reflect.DeepEqual(start.Attrs, want) {
		t.Errorf("attrs = %v, want %v", start.Attrs, want)
	}
	if toks[1].Data != ">text<" {
		t.Errorf("text = %q, want %q", toks[1].Data, ">text<")
	}
}

func BenchmarkLexString(b *testing.B) {
	src := benchDoc()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lx := NewLexer(src)
		for {
			tok, err := lx.Next()
			if err != nil {
				b.Fatal(err)
			}
			if tok == nil {
				break
			}
		}
	}
}

func BenchmarkLexBytes(b *testing.B) {
	src := []byte(benchDoc())
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	lx := NewByteLexer(nil)
	for i := 0; i < b.N; i++ {
		lx.Reset(src)
		for {
			tok, err := lx.Next()
			if err != nil {
				b.Fatal(err)
			}
			if tok == nil {
				break
			}
		}
	}
}

func benchDoc() string {
	var sb strings.Builder
	sb.WriteString(`<doc version="1" kind="bench">`)
	for i := 0; i < 200; i++ {
		sb.WriteString(`<item id="x"><name>some element name</name><desc>a longer run of character data to lex</desc><tag/></item>`)
	}
	sb.WriteString(`</doc>`)
	return sb.String()
}
