package xmltext

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

// chunkedBufSizes are the window sizes the differential tests pin: tiny
// windows force every token (and every markup marker) to straddle refill
// boundaries, 4096 exercises the steady state, and the default size checks
// the common configuration.
var chunkedBufSizes = []int{7, 64, 4096, DefaultChunkSize}

func tokenizeChunked(src io.Reader, bufSize int) ([]Token, error) {
	cl := NewChunkedLexer(src, bufSize)
	var out []Token
	for {
		tok, err := cl.Next()
		if err != nil {
			return nil, err
		}
		if tok == nil {
			return out, nil
		}
		out = append(out, tok.Token())
	}
}

// TestChunkedLexerMatchesByteLexer pins the sliding-window path to the
// whole-buffer byte lexer: identical token streams (kinds, names, data,
// attributes, global positions) and identical error text on every corpus
// input at every window size, including char-refs, comments and multi-byte
// runes straddling refill boundaries.
func TestChunkedLexerMatchesByteLexer(t *testing.T) {
	inputs := append([]string{}, differentialInputs...)
	inputs = append(inputs, straddleInputs()...)
	for _, src := range inputs {
		want, wantErr := TokenizeBytes([]byte(src))
		for _, size := range chunkedBufSizes {
			got, gotErr := tokenizeChunked(strings.NewReader(src), size)
			compareChunked(t, fmt.Sprintf("buf=%d %.60q", size, src), want, wantErr, got, gotErr)
		}
	}
}

// TestChunkedLexerOneByteReads drives the lexer with a reader that returns
// one byte per Read call — the worst-case refill cadence an io.Reader can
// legally produce.
func TestChunkedLexerOneByteReads(t *testing.T) {
	for _, src := range straddleInputs() {
		want, wantErr := TokenizeBytes([]byte(src))
		got, gotErr := tokenizeChunked(iotest.OneByteReader(strings.NewReader(src)), 64)
		compareChunked(t, fmt.Sprintf("onebyte %.60q", src), want, wantErr, got, gotErr)
	}
}

// TestChunkedLexerReset verifies window reuse across documents: a pooled
// lexer must not leak state (positions, pending tokens, EOF latch) from the
// previous stream.
func TestChunkedLexerReset(t *testing.T) {
	cl := NewChunkedLexer(strings.NewReader(`<a>first</a>`), 16)
	for {
		tok, err := cl.Next()
		if err != nil {
			t.Fatalf("first doc: %v", err)
		}
		if tok == nil {
			break
		}
	}
	cl.Reset(strings.NewReader(`<b x="&#65;">second</b>`))
	var got []Token
	for {
		tok, err := cl.Next()
		if err != nil {
			t.Fatalf("second doc: %v", err)
		}
		if tok == nil {
			break
		}
		got = append(got, tok.Token())
	}
	want, _ := TokenizeBytes([]byte(`<b x="&#65;">second</b>`))
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("after Reset: token mismatch\n  want: %#v\n  got:  %#v", want, got)
	}
}

// TestChunkedLexerGrowsForGiantToken checks the escape hatch: a single token
// larger than the window forces the buffer to grow (geometrically) instead
// of failing, and the token still comes out intact.
func TestChunkedLexerGrowsForGiantToken(t *testing.T) {
	big := strings.Repeat("x", 10_000)
	src := `<a><!--` + big + `--></a>`
	cl := NewChunkedLexer(strings.NewReader(src), 64)
	var comment string
	for {
		tok, err := cl.Next()
		if err != nil {
			t.Fatalf("lex: %v", err)
		}
		if tok == nil {
			break
		}
		if tok.Kind == Comment {
			comment = string(tok.Data)
		}
	}
	if comment != big {
		t.Fatalf("comment body corrupted: got %d bytes, want %d", len(comment), len(big))
	}
	if cl.BufSize() < len(big) {
		t.Fatalf("window did not grow past the giant token: %d", cl.BufSize())
	}
	if cl.InputOffset() != int64(len(src)) {
		t.Fatalf("InputOffset = %d, want %d", cl.InputOffset(), len(src))
	}
}

// TestChunkedLexerReadError verifies reader failures surface as-is rather
// than as syntax errors.
func TestChunkedLexerReadError(t *testing.T) {
	boom := fmt.Errorf("disk on fire")
	r := io.MultiReader(strings.NewReader(`<a>ok`), iotest.ErrReader(boom))
	_, err := tokenizeChunked(r, 16)
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("want reader error, got %v", err)
	}
}

func compareChunked(t *testing.T, label string, want []Token, wantErr error, got []Token, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Errorf("%s: error mismatch\n  whole:   %v\n  chunked: %v", label, wantErr, gotErr)
		return
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Errorf("%s: error text mismatch\n  whole:   %v\n  chunked: %v", label, wantErr, gotErr)
		}
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: token mismatch\n  whole:   %#v\n  chunked: %#v", label, want, got)
	}
}

// straddleInputs builds documents whose char-refs, comments, CDATA markers
// and multi-byte runes are guaranteed to cross refill boundaries at the
// small window sizes: long runs of short tokens plus markup placed at every
// alignment modulo the window.
func straddleInputs() []string {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, `<item id="v&amp;%d">t&#x263A;xt<!-- note %d --></item>`, i, i)
	}
	b.WriteString("</root>")
	long := b.String()
	return []string{
		long,
		`<r>` + strings.Repeat(`&#65;`, 100) + `</r>`,
		`<r><![CDATA[` + strings.Repeat(`]] >`, 50) + `]]></r>`,
		`<r>` + strings.Repeat(`é`, 100) + `<é·name·like·this attr·x="café"/></r>`,
		`<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r>` + strings.Repeat("deep text ", 40) + `</r>`,
		strings.Repeat(`<a/>`, 100),
	}
}
