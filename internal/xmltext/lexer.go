// Package xmltext tokenizes document-centric XML strings. It is a
// deliberately small, self-contained lexer (the standard library's
// encoding/xml has no DTD machinery and normalizes away details we need,
// such as exact text segmentation and byte offsets for editor operations).
//
// The lexer recognizes start tags with attributes, end tags, self-closing
// tags, character data, CDATA sections, comments, processing instructions,
// a DOCTYPE declaration, and the five predefined entity references. It
// reports positions as byte offsets plus line/column, which the editor
// layer uses to address update operations.
package xmltext

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind identifies the kind of a lexical token.
type TokenKind int

const (
	// StartTag is <name attr="v" ...> (or the open half of <name/>).
	StartTag TokenKind = iota
	// EndTag is </name>. Self-closing tags emit StartTag (SelfClose=true)
	// followed by a synthetic EndTag at the same position.
	EndTag
	// Text is character data (entity references resolved, CDATA unwrapped).
	Text
	// Comment is <!-- ... --> with the delimiters stripped.
	Comment
	// ProcInst is <?target data?> with the delimiters stripped.
	ProcInst
	// Doctype is a <!DOCTYPE ...> declaration, raw contents.
	Doctype
)

// String names the token kind.
func (k TokenKind) String() string {
	switch k {
	case StartTag:
		return "StartTag"
	case EndTag:
		return "EndTag"
	case Text:
		return "Text"
	case Comment:
		return "Comment"
	case ProcInst:
		return "ProcInst"
	case Doctype:
		return "Doctype"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Attr is one attribute of a start tag.
type Attr struct {
	Name  string
	Value string
}

// Pos is a position in the source string.
type Pos struct {
	Offset int // byte offset
	Line   int // 1-based
	Col    int // 1-based, in bytes
}

// String renders the position in the "line L, col C" form used by
// SyntaxError messages.
func (p Pos) String() string { return fmt.Sprintf("line %d, col %d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind      TokenKind
	Name      string // element name for StartTag/EndTag, target for ProcInst
	Data      string // text content, comment body, PI data
	Attrs     []Attr // attributes for StartTag
	SelfClose bool   // true for <name/>; a synthetic EndTag follows
	Pos       Pos    // start position of the token
	End       int    // byte offset one past the token
}

// SyntaxError is a lexical error with position information.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface: "xml: line L, col C: msg".
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml: %s: %s", e.Pos, e.Msg)
}

// Lexer tokenizes an XML string.
type Lexer struct {
	src       string
	pos       int
	line, col int
	// pending holds a synthetic EndTag to emit after a self-closing
	// StartTag.
	pending *Token
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize lexes the entire string.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if tok == nil {
			return out, nil
		}
		out = append(out, *tok)
	}
}

func (l *Lexer) position() Pos { return Pos{Offset: l.pos, Line: l.line, Col: l.col} }

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token, or (nil, nil) at end of input.
func (l *Lexer) Next() (*Token, error) {
	if l.pending != nil {
		t := l.pending
		l.pending = nil
		return t, nil
	}
	if l.pos >= len(l.src) {
		return nil, nil
	}
	start := l.position()
	if l.src[l.pos] != '<' {
		return l.lexText(start)
	}
	rest := l.src[l.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return l.lexComment(start)
	case strings.HasPrefix(rest, "<![CDATA["):
		return l.lexCDATA(start)
	case strings.HasPrefix(rest, "<!DOCTYPE"):
		return l.lexDoctype(start)
	case strings.HasPrefix(rest, "<?"):
		return l.lexPI(start)
	case strings.HasPrefix(rest, "</"):
		return l.lexEndTag(start)
	default:
		return l.lexStartTag(start)
	}
}

func (l *Lexer) lexText(start Pos) (*Token, error) {
	var b strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != '<' {
		if l.src[l.pos] == '&' {
			s, err := l.lexEntity()
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
			continue
		}
		b.WriteByte(l.src[l.pos])
		l.advance(1)
	}
	return &Token{Kind: Text, Data: b.String(), Pos: start, End: l.pos}, nil
}

var entities = map[string]string{
	"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": `"`,
}

func (l *Lexer) lexEntity() (string, error) {
	start := l.position()
	semi := strings.IndexByte(l.src[l.pos:], ';')
	if semi < 0 || semi > 12 {
		return "", l.errf(start, "unterminated entity reference")
	}
	name := l.src[l.pos+1 : l.pos+semi]
	l.advance(semi + 1)
	if strings.HasPrefix(name, "#x") || strings.HasPrefix(name, "#X") {
		r, ok := charRefValue(name[2:], 16)
		if !ok {
			return "", l.errf(start, "bad character reference &%s;", name)
		}
		return string(r), nil
	}
	if strings.HasPrefix(name, "#") {
		r, ok := charRefValue(name[1:], 10)
		if !ok {
			return "", l.errf(start, "bad character reference &%s;", name)
		}
		return string(r), nil
	}
	if s, ok := entities[name]; ok {
		return s, nil
	}
	return "", l.errf(start, "unknown entity &%s;", name)
}

func (l *Lexer) lexComment(start Pos) (*Token, error) {
	l.advance(4) // <!--
	end := strings.Index(l.src[l.pos:], "-->")
	if end < 0 {
		return nil, l.errf(start, "unterminated comment")
	}
	data := l.src[l.pos : l.pos+end]
	l.advance(end + 3)
	return &Token{Kind: Comment, Data: data, Pos: start, End: l.pos}, nil
}

func (l *Lexer) lexCDATA(start Pos) (*Token, error) {
	l.advance(9) // <![CDATA[
	end := strings.Index(l.src[l.pos:], "]]>")
	if end < 0 {
		return nil, l.errf(start, "unterminated CDATA section")
	}
	data := l.src[l.pos : l.pos+end]
	l.advance(end + 3)
	return &Token{Kind: Text, Data: data, Pos: start, End: l.pos}, nil
}

func (l *Lexer) lexDoctype(start Pos) (*Token, error) {
	l.advance(len("<!DOCTYPE"))
	depth := 0
	from := l.pos
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '"', '\'':
			q := l.src[l.pos]
			l.advance(1)
			for l.pos < len(l.src) && l.src[l.pos] != q {
				l.advance(1)
			}
		case '>':
			if depth == 0 {
				data := l.src[from:l.pos]
				l.advance(1)
				return &Token{Kind: Doctype, Data: strings.TrimSpace(data), Pos: start, End: l.pos}, nil
			}
		}
		l.advance(1)
	}
	return nil, l.errf(start, "unterminated DOCTYPE declaration")
}

func (l *Lexer) lexPI(start Pos) (*Token, error) {
	l.advance(2) // <?
	end := strings.Index(l.src[l.pos:], "?>")
	if end < 0 {
		return nil, l.errf(start, "unterminated processing instruction")
	}
	body := l.src[l.pos : l.pos+end]
	l.advance(end + 2)
	name := body
	data := ""
	if i := strings.IndexAny(body, " \t\r\n"); i >= 0 {
		name, data = body[:i], strings.TrimSpace(body[i:])
	}
	return &Token{Kind: ProcInst, Name: name, Data: data, Pos: start, End: l.pos}, nil
}

func (l *Lexer) lexEndTag(start Pos) (*Token, error) {
	l.advance(2) // </
	name, err := l.lexName()
	if err != nil {
		return nil, err
	}
	l.skipSpace()
	if l.pos >= len(l.src) || l.src[l.pos] != '>' {
		return nil, l.errf(start, "malformed end tag </%s", name)
	}
	l.advance(1)
	return &Token{Kind: EndTag, Name: name, Pos: start, End: l.pos}, nil
}

func (l *Lexer) lexStartTag(start Pos) (*Token, error) {
	l.advance(1) // <
	name, err := l.lexName()
	if err != nil {
		return nil, err
	}
	tok := &Token{Kind: StartTag, Name: name, Pos: start}
	seen := map[string]bool{}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			return nil, l.errf(start, "unterminated start tag <%s", name)
		}
		switch l.src[l.pos] {
		case '>':
			l.advance(1)
			tok.End = l.pos
			return tok, nil
		case '/':
			if !strings.HasPrefix(l.src[l.pos:], "/>") {
				return nil, l.errf(l.position(), "expected '/>' in tag <%s", name)
			}
			l.advance(2)
			tok.SelfClose = true
			tok.End = l.pos
			l.pending = &Token{Kind: EndTag, Name: name, Pos: l.position(), End: l.pos}
			return tok, nil
		default:
			attr, err := l.lexAttr()
			if err != nil {
				return nil, err
			}
			if seen[attr.Name] {
				return nil, l.errf(start, "duplicate attribute %q in tag <%s", attr.Name, name)
			}
			seen[attr.Name] = true
			tok.Attrs = append(tok.Attrs, attr)
		}
	}
}

func (l *Lexer) lexAttr() (Attr, error) {
	name, err := l.lexName()
	if err != nil {
		return Attr{}, err
	}
	l.skipSpace()
	if l.pos >= len(l.src) || l.src[l.pos] != '=' {
		return Attr{}, l.errf(l.position(), "attribute %q missing '='", name)
	}
	l.advance(1)
	l.skipSpace()
	if l.pos >= len(l.src) || (l.src[l.pos] != '"' && l.src[l.pos] != '\'') {
		return Attr{}, l.errf(l.position(), "attribute %q value must be quoted", name)
	}
	q := l.src[l.pos]
	l.advance(1)
	var b strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != q {
		if l.src[l.pos] == '&' {
			s, err := l.lexEntity()
			if err != nil {
				return Attr{}, err
			}
			b.WriteString(s)
			continue
		}
		if l.src[l.pos] == '<' {
			return Attr{}, l.errf(l.position(), "'<' not allowed in attribute value")
		}
		b.WriteByte(l.src[l.pos])
		l.advance(1)
	}
	if l.pos >= len(l.src) {
		return Attr{}, l.errf(l.position(), "unterminated attribute value for %q", name)
	}
	l.advance(1)
	return Attr{Name: name, Value: b.String()}, nil
}

func (l *Lexer) lexName() (string, error) {
	start := l.pos
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	if size == 0 || !(r == '_' || r == ':' || unicode.IsLetter(r)) {
		return "", l.errf(l.position(), "expected a name, found %q", l.src[l.pos:min(l.pos+10, len(l.src))])
	}
	l.advance(size)
	for l.pos < len(l.src) {
		r, size = utf8.DecodeRuneInString(l.src[l.pos:])
		if !(r == '_' || r == ':' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
			break
		}
		l.advance(size)
	}
	return l.src[start:l.pos], nil
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\r', '\n':
			l.advance(1)
		default:
			return
		}
	}
}

// EscapeText escapes character data for serialization.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes an attribute value for serialization in double quotes.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}
