package xmltext

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzLexBytes asserts that on arbitrary input the zero-copy byte lexer
// and the string lexer agree exactly: same token stream (kinds, names,
// data, attributes, positions) on acceptance, same error text on
// rejection. The streaming checker's byte fast path and dom.ParseBytes
// both ride on this equivalence.
func FuzzLexBytes(f *testing.F) {
	for _, seed := range differentialInputs {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		want, wantErr := Tokenize(src)
		got, gotErr := TokenizeBytes([]byte(src))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch on %q\n  string: %v\n  bytes:  %v", src, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text mismatch on %q\n  string: %v\n  bytes:  %v", src, wantErr, gotErr)
			}
			return
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("token mismatch on %q\n  string: %#v\n  bytes:  %#v", src, want, got)
		}
	})
}

// FuzzChunkedLexer asserts that on arbitrary input the sliding-window
// streaming lexer agrees exactly with the whole-buffer byte lexer at every
// window size — same token stream with global positions on acceptance, same
// error text on rejection. Tiny windows make every marker, char-ref and
// multi-byte rune straddle refill boundaries; this equivalence is what lets
// RunReader and /check/raw claim whole-buffer semantics on unbounded input.
func FuzzChunkedLexer(f *testing.F) {
	for _, seed := range differentialInputs {
		f.Add(seed)
	}
	for _, seed := range straddleInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		want, wantErr := TokenizeBytes([]byte(src))
		for _, size := range []int{3, 7, 64, 4096} {
			got, gotErr := tokenizeChunked(strings.NewReader(src), size)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("buf=%d: error mismatch on %q\n  whole:   %v\n  chunked: %v", size, src, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("buf=%d: error text mismatch on %q\n  whole:   %v\n  chunked: %v", size, src, wantErr, gotErr)
				}
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("buf=%d: token mismatch on %q\n  whole:   %#v\n  chunked: %#v", size, src, want, got)
			}
		}
	})
}
