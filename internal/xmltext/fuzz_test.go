package xmltext

import (
	"reflect"
	"testing"
)

// FuzzLexBytes asserts that on arbitrary input the zero-copy byte lexer
// and the string lexer agree exactly: same token stream (kinds, names,
// data, attributes, positions) on acceptance, same error text on
// rejection. The streaming checker's byte fast path and dom.ParseBytes
// both ride on this equivalence.
func FuzzLexBytes(f *testing.F) {
	for _, seed := range differentialInputs {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		want, wantErr := Tokenize(src)
		got, gotErr := TokenizeBytes([]byte(src))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch on %q\n  string: %v\n  bytes:  %v", src, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text mismatch on %q\n  string: %v\n  bytes:  %v", src, wantErr, gotErr)
			}
			return
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("token mismatch on %q\n  string: %#v\n  bytes:  %#v", src, want, got)
		}
	})
}
