package complete

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/validator"
)

func fig1Completer(t *testing.T) (*Completer, *validator.Validator) {
	t.Helper()
	d := dtd.MustParse(dtd.Figure1)
	return New(core.MustCompile(d, "r", core.Options{})), validator.MustNew(d, "r")
}

func TestCompleteFigure3(t *testing.T) {
	// The paper's Figure 3: completing Example 1's s requires exactly two
	// <d> insertions.
	c, v := fig1Completer(t)
	doc := dom.MustParse(`<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`)
	ext, inserted, err := c.Complete(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(ext); err != nil {
		t.Fatalf("completion not valid: %v\n%s", err, ext)
	}
	if ext.Content() != doc.Root.Content() {
		t.Errorf("completion changed character data: %q", ext.Content())
	}
	if inserted != 2 {
		t.Errorf("inserted %d elements, Figure 3 needs 2", inserted)
	}
	want := `<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`
	if got := ext.String(); got != want {
		t.Errorf("completion = %s\nwant         %s", got, want)
	}
}

func TestCompleteRejectsNonPV(t *testing.T) {
	c, _ := fig1Completer(t)
	doc := dom.MustParse(`<r><a><b>x</b><e></e><c>y</c> z</a></r>`) // Example 1's w
	if _, _, err := c.Complete(doc.Root); err == nil {
		t.Error("completing a non-PV document must fail")
	}
}

func TestCompleteValidIsIdentity(t *testing.T) {
	c, v := fig1Completer(t)
	src := `<r><a><b><d>x</d></b><c>y</c><d>z<e></e></d></a></r>`
	doc := dom.MustParse(src)
	ext, inserted, err := c.Complete(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 0 {
		t.Errorf("valid document needed %d insertions", inserted)
	}
	if err := v.Validate(ext); err != nil {
		t.Fatal(err)
	}
	if ext.String() != src {
		t.Errorf("identity completion changed the document: %s", ext)
	}
}

func TestCompleteEmptyRoot(t *testing.T) {
	// <r></r> with r -> (a+): completion must synthesize a minimal <a>
	// subtree: a -> (b?, (c|f), d) minimal = <a><c></c><d></d></a>.
	c, v := fig1Completer(t)
	doc := dom.MustParse(`<r></r>`)
	ext, inserted, err := c.Complete(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(ext); err != nil {
		t.Fatalf("completion not valid: %v\n%s", err, ext)
	}
	if inserted < 3 {
		t.Errorf("expected at least <a><c/><d/> synthesized, inserted=%d", inserted)
	}
	if got := ext.String(); got != `<r><a><c></c><d></d></a></r>` {
		t.Errorf("minimal completion = %s", got)
	}
}

func TestCompleteMandatorySibling(t *testing.T) {
	// f -> (c, e): a lone <e> inside f needs a synthesized <c> BEFORE it.
	c, v := fig1Completer(t)
	doc := dom.MustParse(`<r><a><f><e></e></f><d></d></a></r>`)
	ext, _, err := c.Complete(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(ext); err != nil {
		t.Fatalf("completion not valid: %v\n%s", err, ext)
	}
	if got := ext.String(); got != `<r><a><f><c></c><e></e></f><d></d></a></r>` {
		t.Errorf("completion = %s", got)
	}
}

func TestCompleteDeepWrapping(t *testing.T) {
	// A bare <e> under <a> must end up inside an inserted d (or b/f chain).
	c, v := fig1Completer(t)
	doc := dom.MustParse(`<r><a><e></e></a></r>`)
	ext, _, err := c.Complete(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(ext); err != nil {
		t.Fatalf("completion not valid: %v\n%s", err, ext)
	}
	if ext.Content() != "" {
		t.Errorf("content changed: %q", ext.Content())
	}
}

func TestCompleteTextInElementContent(t *testing.T) {
	// Loose text under <r> (element content!) must be wrapped down to a
	// PCDATA-capable element.
	c, v := fig1Completer(t)
	doc := dom.MustParse(`<r>loose text</r>`)
	ext, _, err := c.Complete(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(ext); err != nil {
		t.Fatalf("completion not valid: %v\n%s", err, ext)
	}
	if ext.Content() != "loose text" {
		t.Errorf("content changed: %q", ext.Content())
	}
}

func TestCompletePreservesComments(t *testing.T) {
	c, v := fig1Completer(t)
	doc := dom.MustParse(`<r><!-- head --><a><c>x</c><!-- mid --><d></d></a></r>`)
	ext, _, err := c.Complete(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(ext); err != nil {
		t.Fatal(err)
	}
	s := ext.String()
	for _, want := range []string{"<!-- head -->", "<!-- mid -->"} {
		if !contains(s, want) {
			t.Errorf("completion lost %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestCompleteStrippedCorpus is the system-level property: for every
// stripped-valid document (which is PV by Theorem 2), Complete must produce
// a document that (a) validates, (b) preserves character data, and (c) the
// original markup survives as a subset (unwrapping the inserted elements is
// not tracked here, so we check (a)+(b) plus PV of the result).
func TestCompleteStrippedCorpus(t *testing.T) {
	fixtures := []struct{ src, root string }{
		{dtd.Figure1, "r"},
		{dtd.Play, "play"},
		{dtd.Article, "article"},
	}
	for _, fix := range fixtures {
		d := dtd.MustParse(fix.src)
		schema := core.MustCompile(d, fix.root, core.Options{})
		comp := New(schema)
		val := validator.MustNew(d, fix.root)
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed))
			doc := gen.GenValid(rng, d, fix.root, gen.DocOptions{MaxDepth: 8})
			content := doc.Content()
			gen.Strip(rng, doc, 0.5)
			ext, inserted, err := comp.Complete(doc)
			if err != nil {
				t.Fatalf("%s seed %d: %v\n%s", fix.root, seed, err, doc)
			}
			if err := val.Validate(ext); err != nil {
				t.Errorf("%s seed %d: completion invalid: %v\noriginal: %s\ncompleted: %s",
					fix.root, seed, err, doc, ext)
			}
			if ext.Content() != content {
				t.Errorf("%s seed %d: content changed", fix.root, seed)
			}
			if err := ext.Validate(); err != nil {
				t.Errorf("%s seed %d: tree invariants: %v", fix.root, seed, err)
			}
			_ = inserted
		}
	}
}

// TestCompleteRecursive exercises the depth-bounded host recursion on the
// PV-strong T2: n b's complete into the nested-<a> tower.
func TestCompleteRecursive(t *testing.T) {
	d := dtd.MustParse(dtd.T2)
	schema := core.MustCompile(d, "a", core.Options{MaxDepth: 10})
	comp := New(schema)
	val := validator.MustNew(d, "a")
	for _, n := range []int{2, 3, 4, 5} {
		doc := dom.NewElement("a")
		for i := 0; i < n; i++ {
			doc.Append(dom.NewElement("b"))
		}
		ext, _, err := comp.Complete(doc)
		if err != nil {
			t.Fatalf("%d b's: %v", n, err)
		}
		if err := val.Validate(ext); err != nil {
			t.Errorf("%d b's: completion invalid: %v\n%s", n, err, ext)
		}
	}
}

// TestCompleteAlreadyValidIdentity is the regression test for the
// completion identity: completing an already-valid document inserts
// nothing and serializes byte-identically to the input tree. The engine's
// already-valid fast path and the /complete endpoints rely on this
// equivalence.
func TestCompleteAlreadyValidIdentity(t *testing.T) {
	for _, fix := range []struct{ src, root string }{
		{dtd.Figure1, "r"},
		{dtd.Play, "play"},
		{dtd.WeakRecursive, "p"},
		{dtd.TEILite, "TEI"},
	} {
		d := dtd.MustParse(fix.src)
		schema := core.MustCompile(d, fix.root, core.Options{})
		comp := New(schema)
		val := validator.MustNew(d, fix.root)
		for trial := 0; trial < 100; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*31 + 1))
			doc := gen.GenValid(rng, d, fix.root, gen.DocOptions{MaxDepth: 7, MaxRepeat: 3})
			if err := val.Validate(doc); err != nil {
				t.Fatalf("%s trial %d: generator emitted invalid doc: %v", fix.root, trial, err)
			}
			before := doc.String()
			ext, inserted, err := comp.Complete(doc)
			if err != nil {
				t.Fatalf("%s trial %d: %v", fix.root, trial, err)
			}
			if inserted != 0 {
				t.Errorf("%s trial %d: inserted %d elements into a valid document", fix.root, trial, inserted)
			}
			if got := ext.String(); got != before {
				t.Errorf("%s trial %d: serialization changed\n before: %.300s\n after:  %.300s",
					fix.root, trial, before, got)
			}
			if doc.String() != before {
				t.Errorf("%s trial %d: Complete mutated its input", fix.root, trial)
			}
		}
	}
}
