// Package complete synthesizes valid extensions: given a potentially valid
// document, it constructs a concrete valid document by inserting tag pairs
// — the constructive counterpart of Definition 3 and of the paper's
// Figure 3 (where two <d> insertions complete Example 1's s).
//
// Per element node the problem is local (as with checking): embed the
// existing child sequence into the node's content model, allowing each
// model position that carries an element symbol to be satisfied either by
// a real child with that name or by a *inserted* element wrapping a
// consecutive run of the remaining children (possibly empty). The search is
// a memoized dynamic program over (Glushkov position, input index), with
// inserted-wrapper feasibility decided recursively under the same depth
// bound the checker uses.
package complete

import (
	"fmt"

	"repro/internal/contentmodel"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
)

// Completer synthesizes valid extensions w.r.t. a compiled schema.
type Completer struct {
	schema *core.Schema
	// automata on the ORIGINAL content models (with ? and +): the
	// completion must satisfy real validity, not the normalized relaxation.
	automata map[string]*contentmodel.Automaton
	minimal  map[string]*dom.Node // memoized minimal valid instances
}

// New builds a Completer for the schema.
func New(schema *core.Schema) *Completer {
	c := &Completer{
		schema:   schema,
		automata: map[string]*contentmodel.Automaton{},
		minimal:  map[string]*dom.Node{},
	}
	for _, name := range schema.DTD.Order {
		decl := schema.DTD.Elements[name]
		if decl.Category == dtd.Children || decl.Category == dtd.Mixed {
			c.automata[name] = contentmodel.CompileAutomaton(decl.Model)
		}
	}
	return c
}

// insLog accumulates the element nodes a completion inserts, in creation
// order. The inserted count is always len(nodes).
type insLog struct {
	nodes []*dom.Node
}

// addTree records every element of an inserted subtree.
func (l *insLog) addTree(n *dom.Node) {
	n.Walk(func(x *dom.Node) bool {
		if x.Kind == dom.ElementNode {
			l.nodes = append(l.nodes, x)
		}
		return true
	})
}

// Complete returns a valid extension of root (a fresh tree; the input is
// not modified) together with the number of elements inserted. It fails if
// the document is not potentially valid within the schema's depth bound;
// that failure satisfies core.IsViolation, distinguishing it from internal
// errors.
func (c *Completer) Complete(root *dom.Node) (*dom.Node, int, error) {
	out, nodes, err := c.CompleteTracked(root)
	if err != nil {
		return nil, 0, err
	}
	return out, len(nodes), nil
}

// CompleteTracked is Complete returning the inserted element nodes
// themselves (nodes of the returned tree, in creation order) instead of
// just their count — the input for diff computation (internal/diff).
func (c *Completer) CompleteTracked(root *dom.Node) (*dom.Node, []*dom.Node, error) {
	if v := c.schema.CheckDocument(root); v != nil {
		return nil, nil, &core.ViolationError{Reason: fmt.Sprintf("complete: document is not potentially valid: %v", v)}
	}
	out := root.Clone()
	log := &insLog{}
	if err := c.completeNode(out, c.schema.EffectiveDepth(), log); err != nil {
		return nil, nil, err
	}
	return out, log.nodes, nil
}

// completeNode rewrites n's children into a valid configuration (recursing
// into original children first), inserting wrapper elements as needed.
func (c *Completer) completeNode(n *dom.Node, depth int, log *insLog) error {
	if n.Kind != dom.ElementNode {
		return nil
	}
	// Complete original element children first: their subtrees are
	// independent subproblems.
	for _, child := range n.Children {
		if child.Kind == dom.ElementNode {
			if err := c.completeNode(child, depth, log); err != nil {
				return err
			}
		}
	}
	decl := c.schema.DTD.Elements[n.Name]
	if decl == nil {
		return fmt.Errorf("complete: element <%s> not declared", n.Name)
	}
	switch decl.Category {
	case dtd.Empty:
		if len(realChildren(n)) > 0 {
			return fmt.Errorf("complete: EMPTY <%s> has content", n.Name)
		}
		return nil
	case dtd.Any:
		// ANY content admits any declared elements and character data;
		// the checker already verified declarations. Nothing to insert.
		return nil
	}
	// Children and Mixed content both go through the embedding DP: mixed
	// content may hold child elements outside its allowed set only by
	// wrapping them into allowed hosts (e.g. an <item> inside <para>
	// becomes <list><item/></list>).
	newChildren, err := c.arrange(n.Name, n.Children, depth, log)
	if err != nil {
		return fmt.Errorf("complete: inside <%s>: %w", n.Name, err)
	}
	n.Children = nil
	for _, ch := range newChildren {
		n.Append(ch)
	}
	return nil
}

// realChildren filters to element/text children (comments and PIs carry no
// validity weight but are preserved by arrange).
func realChildren(n *dom.Node) []*dom.Node {
	var out []*dom.Node
	for _, ch := range n.Children {
		if ch.Kind == dom.ElementNode || ch.Kind == dom.TextNode {
			out = append(out, ch)
		}
	}
	return out
}

// arrange embeds the child list into elem's content model, returning the
// new child list (with wrappers inserted). Whitespace-only text in element
// content is permitted by XML and kept in place next to its neighbor.
func (c *Completer) arrange(elem string, children []*dom.Node, depth int, log *insLog) ([]*dom.Node, error) {
	// Split children into the "significant" items the model must account
	// for, and a map of trailing decorations (comments/PIs/whitespace)
	// re-attached after arrangement. In mixed content all text is
	// significant (it matches PCDATA positions).
	mixed := c.schema.DTD.Elements[elem].Category == dtd.Mixed
	items, decorations := splitItems(children, mixed)
	d := &dp{
		c:     c,
		elem:  elem,
		items: items,
		auto:  c.automata[elem],
		memo:  map[dpKey]*dpVal{},
		depth: depth,
		off:   0,
		ctx:   &arrangeCtx{hostMemo: map[hostKeyD]bool{}},
	}
	plan, ok := d.solveStart()
	if !ok {
		return nil, fmt.Errorf("no embedding of %d children into model of <%s>", len(items), elem)
	}
	out := d.render(plan, log)
	// Re-attach decorations: items keep their original relative order;
	// decorations that followed item i are appended after i's final
	// position. Leading decorations go first.
	return weave(out, items, decorations), nil
}

// splitItems separates model-relevant children (elements; non-whitespace
// text is impossible here — the PV checker would have rejected it unless
// the model reaches PCDATA, which Children content cannot) from
// decorations keyed by the index of the item they follow (-1 = leading).
func splitItems(children []*dom.Node, mixed bool) ([]*dom.Node, map[int][]*dom.Node) {
	var items []*dom.Node
	decorations := map[int][]*dom.Node{}
	for _, ch := range children {
		switch ch.Kind {
		case dom.ElementNode:
			items = append(items, ch)
		case dom.TextNode:
			if !mixed && isWhitespace(ch.Data) {
				// Whitespace in element content is decoration (XML allows
				// it anywhere there).
				decorations[len(items)-1] = append(decorations[len(items)-1], ch)
			} else {
				// Text is significant: it matches a PCDATA position in
				// mixed content, or must hide inside an inserted element
				// in element content.
				items = append(items, ch)
			}
		default:
			decorations[len(items)-1] = append(decorations[len(items)-1], ch)
		}
	}
	return items, decorations
}

func isWhitespace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// dp is the per-node dynamic program.
type dp struct {
	c     *Completer
	elem  string
	items []*dom.Node
	auto  *contentmodel.Automaton
	memo  map[dpKey]*dpVal
	depth int
	// off is the absolute offset of items[0] within the top-level
	// arrangement's item list; host memoization is keyed on absolute
	// ranges so equivalent sub-problems are shared across the recursion.
	off int
	ctx *arrangeCtx
	// stack guards zero-progress recursion through canHost cycles.
	stack map[hostKey]bool
}

// arrangeCtx is shared by one top-level arrange call and all its sub-DPs.
type arrangeCtx struct {
	// hostMemo caches canHost verdicts by (element, absolute range,
	// depth budget); the depth is part of the key because a range
	// hostable with a deep budget may be infeasible with a shallow one.
	hostMemo map[hostKeyD]bool
}

// dpKey: position p of the Glushkov automaton (0 = virtual start) and
// input index i.
type dpKey struct{ p, i int }

type hostKey struct {
	elem string
	i, j int
}

type hostKeyD struct {
	elem  string
	i, j  int
	depth int
}

// dpVal records the decision at (p, i) for plan reconstruction.
type dpVal struct {
	ok bool
	// kind: "accept" (end), "consume" (item i matched at position q),
	// "host" (insert element of position q wrapping items [i, j)).
	kind string
	q    int // next position
	j    int // end of hosted range (kind == "host")
}

// solveStart runs the DP from the virtual start position.
func (d *dp) solveStart() (*dpVal, bool) {
	if d.stack == nil {
		d.stack = map[hostKey]bool{}
	}
	v := d.solve(0, 0)
	return v, v.ok
}

// positionsAfter returns the successor positions of p (first set for the
// virtual start 0, follow set otherwise).
func (d *dp) positionsAfter(p int) []int {
	if p == 0 {
		return d.auto.First()
	}
	return d.auto.Follow(p)
}

// canEnd reports whether the model may stop after position p.
func (d *dp) canEnd(p int) bool {
	if p == 0 {
		return d.auto.Nullable()
	}
	return d.auto.Last(p)
}

// solve decides whether input items[i:] can be embedded starting after
// position p.
func (d *dp) solve(p, i int) *dpVal {
	key := dpKey{p, i}
	if v, ok := d.memo[key]; ok {
		return v
	}
	// Mark in-progress to break zero-consumption cycles conservatively.
	d.memo[key] = &dpVal{ok: false, kind: "cycle"}
	v := d.compute(p, i)
	d.memo[key] = v
	return v
}

func (d *dp) compute(p, i int) *dpVal {
	if i == len(d.items) && d.canEnd(p) {
		return &dpVal{ok: true, kind: "accept"}
	}
	succ := d.positionsAfter(p)
	// Pass 1 — consume: the next real item matches a successor position
	// directly (an element at its own symbol, text at a PCDATA position).
	// Preferring consumption keeps completions minimal: real markup lands
	// at its natural slot before any wrapper is considered.
	if i < len(d.items) {
		it := d.items[i]
		for _, q := range succ {
			sym := d.auto.Symbol(q)
			matches := (it.Kind == dom.ElementNode && it.Name == sym) ||
				(it.Kind == dom.TextNode && sym == contentmodel.PCDATASymbol)
			if matches {
				if v := d.solve(q, i+1); v.ok {
					return &dpVal{ok: true, kind: "consume", q: q}
				}
			}
		}
	}
	// Pass 2 — pass through an empty PCDATA slot (character data may be
	// the empty string; PCDATA → ε in the paper's grammar).
	for _, q := range succ {
		if d.auto.Symbol(q) == contentmodel.PCDATASymbol {
			if v := d.solve(q, i); v.ok {
				return &dpVal{ok: true, kind: "skip", q: q}
			}
		}
	}
	// Pass 3 — host: insert a fresh element at an element position,
	// wrapping items [i, j). Longest ranges first (Figure 3's style: one
	// <d> absorbs both the text and the <e>).
	for _, q := range succ {
		sym := d.auto.Symbol(q)
		if sym == contentmodel.PCDATASymbol {
			continue
		}
		for j := len(d.items); j >= i; j-- {
			if !d.canHost(sym, i, j) {
				continue
			}
			if v := d.solve(q, j); v.ok {
				return &dpVal{ok: true, kind: "host", q: q, j: j}
			}
		}
	}
	return &dpVal{ok: false, kind: "fail"}
}

// canHost reports whether a fresh <elem> can contain items [i, j) as its
// (completed) content.
func (d *dp) canHost(elem string, i, j int) bool {
	if j == i {
		// Empty host: any productive element (compilation guarantees all
		// are) can be synthesized minimally.
		return true
	}
	if d.depth <= 0 {
		return false
	}
	memoKey := hostKeyD{elem, d.off + i, d.off + j, d.depth - 1}
	if v, ok := d.ctx.hostMemo[memoKey]; ok {
		return v
	}
	key := hostKey{elem, d.off + i, d.off + j}
	if d.stack[key] {
		return false // cycle with no progress; not cached (stack-relative)
	}
	decl := d.c.schema.DTD.Elements[elem]
	if decl == nil {
		return false
	}
	switch decl.Category {
	case dtd.Empty:
		d.ctx.hostMemo[memoKey] = false
		return false
	case dtd.Any:
		// ANY hosts any declared elements and text.
		ok := true
		for _, it := range d.items[i:j] {
			if it.Kind == dom.ElementNode && d.c.schema.DTD.Elements[it.Name] == nil {
				ok = false
				break
			}
		}
		d.ctx.hostMemo[memoKey] = ok
		return ok
	}
	// Children and Mixed content: recurse with a sub-DP (mixed content may
	// need further wrappers for elements outside its allowed set).
	d.stack[key] = true
	sub := &dp{
		c:     d.c,
		elem:  elem,
		items: d.items[i:j],
		auto:  d.c.automata[elem],
		memo:  map[dpKey]*dpVal{},
		depth: d.depth - 1,
		off:   d.off + i,
		ctx:   d.ctx,
		stack: d.stack,
	}
	_, ok := sub.solveStart()
	delete(d.stack, key)
	d.ctx.hostMemo[memoKey] = ok
	return ok
}

// render reconstructs the completed child list from the DP decisions.
func (d *dp) render(start *dpVal, log *insLog) []*dom.Node {
	var out []*dom.Node
	p, i := 0, 0
	v := start
	for {
		switch v.kind {
		case "accept":
			return out
		case "skip":
			p = v.q
		case "consume":
			out = append(out, d.items[i])
			i++
			p = v.q
		case "host":
			elem := d.auto.Symbol(v.q)
			host := d.buildHost(elem, i, v.j, log)
			out = append(out, host)
			i = v.j
			p = v.q
		default:
			panic("complete: render on failed plan")
		}
		v = d.memo[dpKey{p, i}]
		if v == nil {
			panic("complete: broken plan chain")
		}
	}
}

// buildHost constructs the inserted <elem> wrapping items [i, j),
// completing its interior recursively.
func (d *dp) buildHost(elem string, i, j int, log *insLog) *dom.Node {
	if j == i {
		host := d.c.synthesizeMinimal(elem)
		log.addTree(host)
		return host
	}
	decl := d.c.schema.DTD.Elements[elem]
	host := dom.NewElement(elem)
	log.nodes = append(log.nodes, host)
	if decl.Category == dtd.Any {
		// ANY: the items go in as-is.
		for _, it := range d.items[i:j] {
			host.Append(it)
		}
		return host
	}
	sub := &dp{
		c:     d.c,
		elem:  elem,
		items: d.items[i:j],
		auto:  d.c.automata[elem],
		memo:  map[dpKey]*dpVal{},
		depth: d.depth - 1,
		off:   d.off + i,
		ctx:   d.ctx,
		stack: d.stack,
	}
	plan, ok := sub.solveStart()
	if !ok {
		panic("complete: host became infeasible during render")
	}
	for _, ch := range sub.render(plan, log) {
		host.Append(ch)
	}
	return host
}

// synthesizeMinimal builds a minimal valid instance of elem (memoized,
// deterministic): EMPTY/Mixed/ANY are empty; Children content picks
// minimal-height alternatives, zero repetitions, and empty optionals. The
// caller records the returned subtree's elements in its insLog.
func (c *Completer) synthesizeMinimal(elem string) *dom.Node {
	if cached, ok := c.minimal[elem]; ok {
		return cached.Clone()
	}
	n := dom.NewElement(elem)
	decl := c.schema.DTD.Elements[elem]
	if decl != nil && decl.Category == dtd.Children {
		for _, child := range c.minimalSeq(decl.Model) {
			n.Append(child)
		}
	}
	c.minimal[elem] = n.Clone()
	return n
}

// minimalSeq returns a minimal child sequence satisfying e.
func (c *Completer) minimalSeq(e *contentmodel.Expr) []*dom.Node {
	switch e.Kind {
	case contentmodel.KindPCDATA:
		return nil // empty text
	case contentmodel.KindName:
		return []*dom.Node{c.synthesizeMinimal(e.Name)}
	case contentmodel.KindSeq:
		var out []*dom.Node
		for _, ch := range e.Children {
			out = append(out, c.minimalSeq(ch)...)
		}
		return out
	case contentmodel.KindChoice:
		// Pick the alternative with the fewest mandatory elements; the
		// productivity guarantee from compilation means some alternative
		// terminates.
		best := e.Children[0]
		bestCost := c.minCost(best, map[string]bool{})
		for _, ch := range e.Children[1:] {
			if cost := c.minCost(ch, map[string]bool{}); cost < bestCost {
				best, bestCost = ch, cost
			}
		}
		return c.minimalSeq(best)
	case contentmodel.KindStar, contentmodel.KindOpt:
		return nil
	case contentmodel.KindPlus:
		return c.minimalSeq(e.Children[0])
	}
	return nil
}

// minCost estimates the number of elements a minimal satisfaction of e
// needs; `busy` breaks recursive cycles (cycled elements cost a lot, so
// productive alternatives win).
func (c *Completer) minCost(e *contentmodel.Expr, busy map[string]bool) int {
	const expensive = 1 << 20
	switch e.Kind {
	case contentmodel.KindPCDATA:
		return 0
	case contentmodel.KindName:
		if busy[e.Name] {
			return expensive
		}
		decl := c.schema.DTD.Elements[e.Name]
		if decl == nil {
			return expensive
		}
		if decl.Category != dtd.Children {
			return 1
		}
		busy[e.Name] = true
		cost := 1 + c.minCost(decl.Model, busy)
		delete(busy, e.Name)
		return cost
	case contentmodel.KindSeq:
		total := 0
		for _, ch := range e.Children {
			total += c.minCost(ch, busy)
			if total >= expensive {
				return expensive
			}
		}
		return total
	case contentmodel.KindChoice:
		best := expensive
		for _, ch := range e.Children {
			if cost := c.minCost(ch, busy); cost < best {
				best = cost
			}
		}
		return best
	case contentmodel.KindStar, contentmodel.KindOpt:
		return 0
	case contentmodel.KindPlus:
		return c.minCost(e.Children[0], busy)
	}
	return expensive
}

// weave re-attaches decorations (comments, PIs, whitespace) around the
// arranged items: a decoration that followed original item k is placed
// immediately after item k's new position (possibly inside a wrapper —
// decorations follow their item). Leading decorations go first.
func weave(arranged []*dom.Node, items []*dom.Node, decorations map[int][]*dom.Node) []*dom.Node {
	if len(decorations) == 0 {
		return arranged
	}
	// Locate each item's hosting top-level child.
	after := map[*dom.Node]int{} // item -> index of original item order
	for k, it := range items {
		after[it] = k
	}
	var out []*dom.Node
	out = append(out, decorations[-1]...)
	for _, ch := range arranged {
		out = append(out, ch)
		// The decorations for every item contained in ch (it may be a
		// wrapper) are appended inside/after: simplest faithful placement
		// is after the top-level child containing the item.
		maxItem := -1
		ch.Walk(func(x *dom.Node) bool {
			if k, ok := after[x]; ok && k > maxItem {
				maxItem = k
			}
			return true
		})
		if k, ok := after[ch]; ok && k > maxItem {
			maxItem = k
		}
		if maxItem >= 0 {
			out = append(out, decorations[maxItem]...)
		}
	}
	return out
}
