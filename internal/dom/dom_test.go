package dom

import (
	"strings"
	"testing"
)

// Example 1's two encodings (Figure 2 shows their DOM trees).
const (
	exampleW = `<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>`
	exampleS = `<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`
)

func TestParseExample1Trees(t *testing.T) {
	// Figure 2: both trees have root r with one child a; w's a has children
	// b, e, c, text; s's a has children b, c, text, e.
	w := MustParse(exampleW)
	if w.Root.Name != "r" || len(w.Root.Children) != 1 {
		t.Fatalf("w root structure wrong: %s", w.Root)
	}
	a := w.Root.Children[0]
	gotKinds := childSummary(a)
	if gotKinds != "b e c #text" {
		t.Errorf("w children of a = %q, want %q", gotKinds, "b e c #text")
	}

	s := MustParse(exampleS)
	a = s.Root.Children[0]
	if got := childSummary(a); got != "b c #text e" {
		t.Errorf("s children of a = %q, want %q", got, "b c #text e")
	}
}

func childSummary(n *Node) string {
	var parts []string
	for _, c := range n.Children {
		if c.Kind == TextNode {
			parts = append(parts, "#text")
		} else {
			parts = append(parts, c.Name)
		}
	}
	return strings.Join(parts, " ")
}

func TestContentOperator(t *testing.T) {
	// content(w) must be the phrase regardless of markup (Section 2).
	want := "A quick brown fox jumps over a lazy dog"
	for _, src := range []string{exampleW, exampleS} {
		doc := MustParse(src)
		if got := doc.Root.Content(); got != want {
			t.Errorf("content(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestElementNames(t *testing.T) {
	doc := MustParse(exampleW)
	names := doc.Root.ElementNames()
	for _, n := range []string{"r", "a", "b", "c", "e"} {
		if !names[n] {
			t.Errorf("elements(w) missing %q", n)
		}
	}
	if names["d"] {
		t.Error("elements(w) must not contain d")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	for _, src := range []string{exampleW, exampleS, `<a><b>x &amp; y</b><c/></a>`} {
		doc := MustParse(src)
		re, err := Parse(doc.Root.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", doc.Root.String(), err)
		}
		if !doc.Root.Equal(re.Root) {
			t.Errorf("round trip changed tree:\n%s\n%s", doc.Root, re.Root)
		}
	}
}

func TestWellFormednessErrors(t *testing.T) {
	cases := []string{
		`<a><b></a></b>`, // mismatched nesting
		`<a>`,            // unclosed
		`</a>`,           // close without open
		`<a></a><b></b>`, // two roots
		`text<a></a>`,    // data before root
		``,               // no root
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestCommentsOutsideRootPreserved(t *testing.T) {
	doc := MustParse(`<!-- head --><a></a><!-- tail -->`)
	if len(doc.Prolog) != 1 || len(doc.Epilog) != 1 {
		t.Fatalf("prolog/epilog = %d/%d", len(doc.Prolog), len(doc.Epilog))
	}
	if !strings.Contains(doc.String(), "<!-- head --><a></a><!-- tail -->") {
		t.Errorf("document serialization = %q", doc.String())
	}
}

func TestDepth(t *testing.T) {
	doc := MustParse(`<a><b><c>x</c></b><d></d></a>`)
	if got := doc.Root.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	leaf := MustParse(`<a>text</a>`)
	if got := leaf.Root.Depth(); got != 1 {
		t.Errorf("Depth = %d, want 1", got)
	}
}

func TestWrapChildren(t *testing.T) {
	// Figure 3: wrapping to obtain the valid extension. Start from s and
	// wrap b's text in d, and the trailing "dog"+<e> in d.
	doc := MustParse(exampleS)
	a := doc.Root.Children[0]
	b := a.Children[0]
	b.WrapChildren(0, 1, "d")
	a.WrapChildren(2, 4, "d")
	want := `<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`
	if got := doc.Root.String(); got != want {
		t.Errorf("wrapped = %q\nwant      %q", got, want)
	}
	if err := doc.Root.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWrapEmptyRange(t *testing.T) {
	doc := MustParse(`<a><b></b></a>`)
	a := doc.Root
	a.WrapChildren(1, 1, "c") // insert empty <c> after <b>
	if got := a.String(); got != `<a><b></b><c></c></a>` {
		t.Errorf("got %q", got)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestUnwrap(t *testing.T) {
	// Unwrap is the markup-deletion of Theorem 2: children splice in place.
	doc := MustParse(`<a><b>x<c>y</c></b>z</a>`)
	b := doc.Root.Children[0]
	b.Unwrap()
	if got := doc.Root.String(); got != `<a>x<c>y</c>z</a>` {
		t.Errorf("after unwrap: %q", got)
	}
	if err := doc.Root.Validate(); err != nil {
		t.Error(err)
	}
}

func TestUnwrapThenWrapInverse(t *testing.T) {
	src := `<a><b><c>x</c>y</b><d>z</d></a>`
	doc := MustParse(src)
	b := doc.Root.Children[0]
	nChildren := len(b.Children)
	b.Unwrap()
	reborn := doc.Root.WrapChildren(0, nChildren, "b")
	if doc.Root.String() != src {
		t.Errorf("wrap∘unwrap is not identity: %q", doc.Root.String())
	}
	if reborn.Parent != doc.Root {
		t.Error("parent pointer broken")
	}
}

func TestInsertAndRemoveChild(t *testing.T) {
	doc := MustParse(`<a><b></b><d></d></a>`)
	doc.Root.InsertChild(1, NewElement("c"))
	if got := childSummary(doc.Root); got != "b c d" {
		t.Errorf("after insert: %q", got)
	}
	removed := doc.Root.RemoveChildAt(0)
	if removed.Name != "b" || removed.Parent != nil {
		t.Errorf("removed = %v parent=%v", removed.Name, removed.Parent)
	}
	if got := childSummary(doc.Root); got != "c d" {
		t.Errorf("after remove: %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	doc := MustParse(exampleW)
	clone := doc.Root.Clone()
	if !doc.Root.Equal(clone) {
		t.Fatal("clone differs")
	}
	clone.Children[0].Children[0].Data = "mutated"
	clone.Children[0].Name = "zzz"
	if !doc.Root.Equal(MustParse(exampleW).Root) {
		t.Error("mutating clone affected original")
	}
}

func TestCountNodes(t *testing.T) {
	doc := MustParse(`<a><b>x</b><c></c>y</a>`)
	// elements a,b,c + texts x,y = 5
	if got := doc.Root.CountNodes(); got != 5 {
		t.Errorf("CountNodes = %d, want 5", got)
	}
}

func TestMergeAdjacentText(t *testing.T) {
	// Entity boundaries split text during lexing; the DOM must re-merge so
	// δ_T sees a single character-data run.
	doc := MustParse(`<a>one &amp; two</a>`)
	if len(doc.Root.Children) != 1 {
		t.Fatalf("want 1 merged text child, got %d", len(doc.Root.Children))
	}
	if doc.Root.Children[0].Data != "one & two" {
		t.Errorf("text = %q", doc.Root.Children[0].Data)
	}
}

func TestSelfClosingEqualsEmptyPair(t *testing.T) {
	a := MustParse(`<a><e/></a>`)
	b := MustParse(`<a><e></e></a>`)
	if !a.Root.Equal(b.Root) {
		t.Error("<e/> and <e></e> must parse identically (δ_T treats them alike)")
	}
}
