package dom

import (
	"fmt"

	"repro/internal/xmltext"
)

// Document is a parsed XML document: a root element plus any comments and
// processing instructions found outside it.
type Document struct {
	Root *Node
	// Prolog holds comment/PI nodes appearing before the root element.
	Prolog []*Node
	// Epilog holds comment/PI nodes appearing after the root element.
	Epilog []*Node
}

// treeBuilder assembles a Document from a token stream, one token at a
// time, enforcing well-formedness: properly nested matching tags, a single
// root element, and nothing but whitespace, comments and PIs outside the
// root. Feeding tokens incrementally (rather than materializing a token
// slice first) is what lets ParseBytes ride the zero-copy lexer.
type treeBuilder struct {
	doc   Document
	stack []*Node
}

func (b *treeBuilder) push(n *Node) error {
	if len(b.stack) > 0 {
		b.stack[len(b.stack)-1].Append(n)
		return nil
	}
	switch n.Kind {
	case ElementNode:
		if b.doc.Root != nil {
			return fmt.Errorf("xml: multiple root elements (<%s> after <%s>)", n.Name, b.doc.Root.Name)
		}
		b.doc.Root = n
	case TextNode:
		if !isWhitespace(n.Data) {
			return fmt.Errorf("xml: character data outside the root element: %.20q", n.Data)
		}
		// whitespace between top-level constructs is dropped
	default:
		if b.doc.Root == nil {
			b.doc.Prolog = append(b.doc.Prolog, n)
		} else {
			b.doc.Epilog = append(b.doc.Epilog, n)
		}
	}
	return nil
}

// add consumes one token. The token may be transient (a reused ByteToken
// materialized to strings); the builder retains only the strings it is
// handed.
func (b *treeBuilder) add(tok *xmltext.Token) error {
	switch tok.Kind {
	case xmltext.StartTag:
		n := &Node{Kind: ElementNode, Name: tok.Name, Attrs: tok.Attrs}
		if err := b.push(n); err != nil {
			return err
		}
		b.stack = append(b.stack, n)
	case xmltext.EndTag:
		if len(b.stack) == 0 {
			return fmt.Errorf("xml: %s: unexpected end tag </%s>", tok.Pos, tok.Name)
		}
		top := b.stack[len(b.stack)-1]
		if top.Name != tok.Name {
			return fmt.Errorf("xml: %s: end tag </%s> does not match open <%s>", tok.Pos, tok.Name, top.Name)
		}
		b.stack = b.stack[:len(b.stack)-1]
	case xmltext.Text:
		if tok.Data == "" {
			return nil
		}
		return b.push(&Node{Kind: TextNode, Data: tok.Data})
	case xmltext.Comment:
		return b.push(&Node{Kind: CommentNode, Data: tok.Data})
	case xmltext.ProcInst:
		return b.push(&Node{Kind: ProcInstNode, Name: tok.Name, Data: tok.Data})
	case xmltext.Doctype:
		// A DOCTYPE declaration in the instance is tolerated and ignored;
		// the DTD is supplied separately in this system.
	}
	return nil
}

// finish validates the end state and returns the document.
func (b *treeBuilder) finish() (*Document, error) {
	if len(b.stack) > 0 {
		return nil, fmt.Errorf("xml: unclosed element <%s>", b.stack[len(b.stack)-1].Name)
	}
	if b.doc.Root == nil {
		return nil, fmt.Errorf("xml: no root element")
	}
	// Merge adjacent text nodes produced by entity/CDATA boundaries so that
	// the tree matches the paper's model, where consecutive character data
	// is a single text node (and δ_T maps it to a single σ).
	mergeText(b.doc.Root)
	return &b.doc, nil
}

// Parse parses an XML string into a document tree.
func Parse(src string) (*Document, error) {
	var b treeBuilder
	lx := xmltext.NewLexer(src)
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if tok == nil {
			return b.finish()
		}
		if err := b.add(tok); err != nil {
			return nil, err
		}
	}
}

// ParseBytes parses an XML byte slice into a document tree without first
// copying it into a string. Tokens come from the zero-copy lexer; only the
// names, data and attributes the tree actually retains are materialized as
// strings, so the resulting document does not pin the input buffer.
func ParseBytes(src []byte) (*Document, error) {
	var b treeBuilder
	lx := xmltext.NewByteLexer(src)
	for {
		bt, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if bt == nil {
			return b.finish()
		}
		tok := bt.Token()
		if err := b.add(&tok); err != nil {
			return nil, err
		}
	}
}

// MustParse is Parse that panics on error; intended for tests and fixtures.
func MustParse(src string) *Document {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseRoot parses src and returns just the root element.
func ParseRoot(src string) (*Node, error) {
	d, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return d.Root, nil
}

func mergeText(n *Node) {
	out := n.Children[:0]
	for _, c := range n.Children {
		if c.Kind == TextNode && len(out) > 0 && out[len(out)-1].Kind == TextNode {
			out[len(out)-1].Data += c.Data
			continue
		}
		out = append(out, c)
		if c.Kind == ElementNode {
			mergeText(c)
		}
	}
	n.Children = out
}

func isWhitespace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// String serializes the document: prolog nodes, root, epilog nodes.
func (d *Document) String() string {
	return string(d.AppendXML(nil))
}

// AppendXML serializes the document (prolog, root, epilog) appended to
// buf — the pooled-buffer twin of String, byte-identical output.
func (d *Document) AppendXML(buf []byte) []byte {
	for _, n := range d.Prolog {
		buf = n.AppendXML(buf)
	}
	buf = d.Root.AppendXML(buf)
	for _, n := range d.Epilog {
		buf = n.AppendXML(buf)
	}
	return buf
}
