package dom

import (
	"fmt"

	"repro/internal/xmltext"
)

// Document is a parsed XML document: a root element plus any comments and
// processing instructions found outside it.
type Document struct {
	Root *Node
	// Prolog holds comment/PI nodes appearing before the root element.
	Prolog []*Node
	// Epilog holds comment/PI nodes appearing after the root element.
	Epilog []*Node
}

// Parse parses an XML string into a document tree, enforcing
// well-formedness: properly nested matching tags, a single root element,
// and nothing but whitespace, comments and PIs outside the root.
func Parse(src string) (*Document, error) {
	tokens, err := xmltext.Tokenize(src)
	if err != nil {
		return nil, err
	}
	doc := &Document{}
	var stack []*Node
	push := func(n *Node) error {
		if len(stack) > 0 {
			stack[len(stack)-1].Append(n)
			return nil
		}
		switch n.Kind {
		case ElementNode:
			if doc.Root != nil {
				return fmt.Errorf("xml: multiple root elements (<%s> after <%s>)", n.Name, doc.Root.Name)
			}
			doc.Root = n
		case TextNode:
			if !isWhitespace(n.Data) {
				return fmt.Errorf("xml: character data outside the root element: %.20q", n.Data)
			}
			// whitespace between top-level constructs is dropped
		default:
			if doc.Root == nil {
				doc.Prolog = append(doc.Prolog, n)
			} else {
				doc.Epilog = append(doc.Epilog, n)
			}
		}
		return nil
	}
	for i := range tokens {
		tok := &tokens[i]
		switch tok.Kind {
		case xmltext.StartTag:
			n := &Node{Kind: ElementNode, Name: tok.Name, Attrs: tok.Attrs}
			if err := push(n); err != nil {
				return nil, err
			}
			stack = append(stack, n)
		case xmltext.EndTag:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xml: %s: unexpected end tag </%s>", tok.Pos, tok.Name)
			}
			top := stack[len(stack)-1]
			if top.Name != tok.Name {
				return nil, fmt.Errorf("xml: %s: end tag </%s> does not match open <%s>", tok.Pos, tok.Name, top.Name)
			}
			stack = stack[:len(stack)-1]
		case xmltext.Text:
			if tok.Data == "" {
				continue
			}
			if err := push(&Node{Kind: TextNode, Data: tok.Data}); err != nil {
				return nil, err
			}
		case xmltext.Comment:
			if err := push(&Node{Kind: CommentNode, Data: tok.Data}); err != nil {
				return nil, err
			}
		case xmltext.ProcInst:
			if err := push(&Node{Kind: ProcInstNode, Name: tok.Name, Data: tok.Data}); err != nil {
				return nil, err
			}
		case xmltext.Doctype:
			// A DOCTYPE declaration in the instance is tolerated and ignored;
			// the DTD is supplied separately in this system.
		}
	}
	if len(stack) > 0 {
		return nil, fmt.Errorf("xml: unclosed element <%s>", stack[len(stack)-1].Name)
	}
	if doc.Root == nil {
		return nil, fmt.Errorf("xml: no root element")
	}
	// Merge adjacent text nodes produced by entity/CDATA boundaries so that
	// the tree matches the paper's model, where consecutive character data
	// is a single text node (and δ_T maps it to a single σ).
	mergeText(doc.Root)
	return doc, nil
}

// MustParse is Parse that panics on error; intended for tests and fixtures.
func MustParse(src string) *Document {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseRoot parses src and returns just the root element.
func ParseRoot(src string) (*Node, error) {
	d, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return d.Root, nil
}

func mergeText(n *Node) {
	out := n.Children[:0]
	for _, c := range n.Children {
		if c.Kind == TextNode && len(out) > 0 && out[len(out)-1].Kind == TextNode {
			out[len(out)-1].Data += c.Data
			continue
		}
		out = append(out, c)
		if c.Kind == ElementNode {
			mergeText(c)
		}
	}
	n.Children = out
}

func isWhitespace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// String serializes the document: prolog nodes, root, epilog nodes.
func (d *Document) String() string {
	out := ""
	for _, n := range d.Prolog {
		out += n.String()
	}
	out += d.Root.String()
	for _, n := range d.Epilog {
		out += n.String()
	}
	return out
}
