package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTreeOps drives a random sequence of tree mutations and checks the
// structural invariants after every step.
func TestPropertyRandomMutationsKeepInvariants(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := NewElement("root", NewText("seed text"))
		for op := 0; op < 40; op++ {
			elems := root.Elements()
			target := elems[rng.Intn(len(elems))]
			switch rng.Intn(4) {
			case 0: // wrap a random range
				nc := len(target.Children)
				i := rng.Intn(nc + 1)
				j := i + rng.Intn(nc-i+1)
				target.WrapChildren(i, j, names[rng.Intn(len(names))])
			case 1: // unwrap a non-root element
				if target.Parent != nil {
					target.Unwrap()
				}
			case 2: // insert a text child
				target.InsertChild(rng.Intn(len(target.Children)+1), NewText("x"))
			case 3: // remove a child
				if len(target.Children) > 0 {
					target.RemoveChildAt(rng.Intn(len(target.Children)))
				}
			}
			if err := root.Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		// Serialization round-trips.
		re, err := Parse(root.String())
		if err != nil {
			t.Logf("seed %d: re-parse: %v", seed, err)
			return false
		}
		// Equality modulo text merging: re-serialize both.
		return re.Root.String() == root.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWrapUnwrapInverse: unwrap(wrap(range)) is the identity on the
// serialized tree.
func TestPropertyWrapUnwrapInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := NewElement("root")
		for i := 0; i < 3+rng.Intn(5); i++ {
			if rng.Intn(2) == 0 {
				root.Append(NewText("t"))
			} else {
				root.Append(NewElement("x", NewText("y")))
			}
		}
		before := root.String()
		nc := len(root.Children)
		i := rng.Intn(nc + 1)
		j := i + rng.Intn(nc-i+1)
		w := root.WrapChildren(i, j, "wrap")
		if root.String() == before && j > i {
			return false // wrapping a non-empty range must change the string
		}
		w.Unwrap()
		return root.String() == before && root.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyContentInvariantUnderMarkupOps: wrapping and unwrapping never
// change content(w) — the textual core the paper's editing model protects.
func TestPropertyContentInvariantUnderMarkupOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := NewElement("root",
			NewText("alpha "), NewElement("x", NewText("beta")), NewText(" gamma"))
		want := root.Content()
		for op := 0; op < 20; op++ {
			elems := root.Elements()
			target := elems[rng.Intn(len(elems))]
			if rng.Intn(2) == 0 {
				nc := len(target.Children)
				i := rng.Intn(nc + 1)
				j := i + rng.Intn(nc-i+1)
				target.WrapChildren(i, j, "w")
			} else if target.Parent != nil {
				target.Unwrap()
			}
			if root.Content() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
