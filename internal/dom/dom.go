// Package dom implements the document tree model of the paper (Figure 2):
// a mutable tree of element and text nodes with document-order traversal,
// depth computation, serialization, and the splice operations that the
// potential-validity update theory is stated over — markup insertion
// (wrapping a consecutive run of siblings in a new element), markup
// deletion (unwrapping an element into its parent), and character-data
// insertion/update/deletion.
package dom

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltext"
)

// NodeKind identifies the kind of a tree node.
type NodeKind int

const (
	// ElementNode is an element with a name, attributes and children.
	ElementNode NodeKind = iota
	// TextNode is character data.
	TextNode
	// CommentNode preserves a comment; ignored by all checkers.
	CommentNode
	// ProcInstNode preserves a processing instruction; ignored by checkers.
	ProcInstNode
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcInstNode:
		return "pi"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a node of the document tree.
type Node struct {
	Kind     NodeKind
	Name     string // element name or PI target
	Data     string // text, comment or PI content
	Attrs    []xmltext.Attr
	Parent   *Node
	Children []*Node
}

// NewElement returns a parentless element node.
func NewElement(name string, children ...*Node) *Node {
	n := &Node{Kind: ElementNode, Name: name}
	for _, c := range children {
		n.Append(c)
	}
	return n
}

// NewText returns a parentless text node.
func NewText(data string) *Node { return &Node{Kind: TextNode, Data: data} }

// Append adds c as the last child of n and sets its parent pointer.
func (n *Node) Append(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChild inserts c at index i among n's children (0 ≤ i ≤ len).
func (n *Node) InsertChild(i int, c *Node) {
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("dom: InsertChild index %d out of range [0,%d]", i, len(n.Children)))
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// ChildIndex returns the index of c among n's children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, ch := range n.Children {
		if ch == c {
			return i
		}
	}
	return -1
}

// RemoveChildAt removes and returns the child at index i.
func (n *Node) RemoveChildAt(i int) *Node {
	c := n.Children[i]
	n.Children = append(n.Children[:i], n.Children[i+1:]...)
	c.Parent = nil
	return c
}

// WrapChildren replaces children [i, j) of n with a new element named name
// whose children are the wrapped nodes — the paper's markup-insertion
// operation (Definition 2: w1<δ>w2</δ>w3). It returns the new element.
func (n *Node) WrapChildren(i, j int, name string) *Node {
	if i < 0 || j < i || j > len(n.Children) {
		panic(fmt.Sprintf("dom: WrapChildren range [%d,%d) out of bounds [0,%d]", i, j, len(n.Children)))
	}
	wrapped := make([]*Node, j-i)
	copy(wrapped, n.Children[i:j])
	elem := &Node{Kind: ElementNode, Name: name, Parent: n}
	for _, c := range wrapped {
		c.Parent = elem
	}
	elem.Children = wrapped
	rest := append([]*Node{elem}, n.Children[j:]...)
	n.Children = append(n.Children[:i:i], rest...)
	return elem
}

// Unwrap removes element node c from its parent, splicing c's children into
// the parent at c's position — the paper's markup-deletion operation. It
// panics if c has no parent (the root cannot be unwrapped in place).
func (c *Node) Unwrap() {
	p := c.Parent
	if p == nil {
		panic("dom: Unwrap on a parentless node")
	}
	i := p.ChildIndex(c)
	for _, g := range c.Children {
		g.Parent = p
	}
	tail := make([]*Node, 0, len(c.Children)+len(p.Children)-i-1)
	tail = append(tail, c.Children...)
	tail = append(tail, p.Children[i+1:]...)
	p.Children = append(p.Children[:i:i], tail...)
	c.Parent = nil
	c.Children = nil
}

// Depth returns the height of the subtree rooted at n, counting n itself:
// a leaf element has depth 1. Text nodes do not add depth.
func (n *Node) Depth() int {
	if n.Kind != ElementNode {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Walk visits n and all descendants in document order (preorder). If fn
// returns false the walk skips the node's children.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Elements returns all element nodes in the subtree in document order,
// including n itself if it is an element.
func (n *Node) Elements() []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Kind == ElementNode {
			out = append(out, x)
		}
		return true
	})
	return out
}

// ElementNames returns the set of element names used in the subtree — the
// paper's elements(w).
func (n *Node) ElementNames() map[string]bool {
	set := map[string]bool{}
	n.Walk(func(x *Node) bool {
		if x.Kind == ElementNode {
			set[x.Name] = true
		}
		return true
	})
	return set
}

// Content returns the concatenation of all character data in document
// order — the paper's content(w) operator.
func (n *Node) Content() string {
	var b strings.Builder
	n.Walk(func(x *Node) bool {
		if x.Kind == TextNode {
			b.WriteString(x.Data)
		}
		return true
	})
	return b.String()
}

// CountNodes returns the number of element and text nodes in the subtree.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(x *Node) bool {
		if x.Kind == ElementNode || x.Kind == TextNode {
			count++
		}
		return true
	})
	return count
}

// Clone returns a deep copy of the subtree with a nil parent.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]xmltext.Attr(nil), n.Attrs...)
	}
	for _, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// String serializes the subtree back to XML text. Empty elements serialize
// as a start/end tag pair (never the self-closing form) so that the output
// round-trips through the paper's string-based definitions unambiguously.
func (n *Node) String() string {
	return string(n.AppendXML(nil))
}

// AppendXML serializes the subtree to XML text appended to buf, returning
// the extended slice — the allocation-free twin of String for callers
// holding a reusable (pooled) buffer. The output is byte-identical to
// String's. Text escaping is inlined (no per-node replacer), so a subtree
// with many text nodes serializes with no allocations beyond buffer
// growth.
func (n *Node) AppendXML(buf []byte) []byte {
	switch n.Kind {
	case TextNode:
		buf = appendEscapedText(buf, n.Data)
	case CommentNode:
		buf = append(buf, "<!--"...)
		buf = append(buf, n.Data...)
		buf = append(buf, "-->"...)
	case ProcInstNode:
		buf = append(buf, "<?"...)
		buf = append(buf, n.Name...)
		if n.Data != "" {
			buf = append(buf, ' ')
			buf = append(buf, n.Data...)
		}
		buf = append(buf, "?>"...)
	case ElementNode:
		buf = append(buf, '<')
		buf = append(buf, n.Name...)
		for _, a := range n.Attrs {
			buf = append(buf, ' ')
			buf = append(buf, a.Name...)
			buf = append(buf, '=')
			buf = strconv.AppendQuote(buf, xmltext.EscapeAttr(a.Value))
		}
		buf = append(buf, '>')
		for _, c := range n.Children {
			buf = c.AppendXML(buf)
		}
		buf = append(buf, "</"...)
		buf = append(buf, n.Name...)
		buf = append(buf, '>')
	}
	return buf
}

// appendEscapedText appends s with the character-data escapes of
// xmltext.EscapeText (&, <, >) without building a replacer.
func appendEscapedText(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			buf = append(buf, "&amp;"...)
		case '<':
			buf = append(buf, "&lt;"...)
		case '>':
			buf = append(buf, "&gt;"...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// Equal reports whether two subtrees are structurally identical (kinds,
// names, data, attributes and child structure).
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind || n.Name != o.Name || n.Data != o.Data || len(n.Children) != len(o.Children) || len(n.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range n.Attrs {
		if n.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Validate checks internal tree invariants (parent pointers and kinds) and
// returns a descriptive error for the first violation. Used by tests and
// after editor operations.
func (n *Node) Validate() error {
	for _, c := range n.Children {
		if c.Parent != n {
			return fmt.Errorf("dom: child %v of %v has wrong parent pointer", c.Name, n.Name)
		}
		if n.Kind != ElementNode {
			return fmt.Errorf("dom: non-element node %v has children", n.Kind)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}
