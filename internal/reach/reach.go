// Package reach implements the reachability graph R_T of Definition 5, the
// precomputed lookup table LT, the usability analysis of Section 3.3, and
// the recursion classification of Definitions 6-8 (non-recursive, PV-weak
// recursive, PV-strong recursive).
package reach

import (
	"fmt"
	"sort"

	"repro/internal/contentmodel"
	"repro/internal/dtd"
)

// Class is the paper's three-way DTD classification.
type Class int

const (
	// NonRecursive: no element derives itself.
	NonRecursive Class = iota
	// PVWeakRecursive: recursion exists but only through star-group
	// occurrences (Definition 8); reachability alone resolves it.
	PVWeakRecursive
	// PVStrongRecursive: some element derives itself through non-star-group
	// occurrences (Definition 7); the recognizer needs the depth bound.
	PVStrongRecursive
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case NonRecursive:
		return "non-recursive"
	case PVWeakRecursive:
		return "PV-weak recursive"
	case PVStrongRecursive:
		return "PV-strong recursive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Table is the precomputed reachability structure for a DTD: the transitive
// closure of R_T (Definition 5) over element types and #PCDATA, the
// restricted "strong" graph used for the recursion classification, and the
// longest acyclic chain length used to bound nested recognizers.
type Table struct {
	dtd     *dtd.DTD
	index   map[string]int // element name -> row
	names   []string       // row -> element name
	m       int            // number of elements
	pcdata  []bool         // element reaches #PCDATA
	reach   [][]bool       // strict transitive closure of R_T
	strong  [][]bool       // closure of the non-star-group occurrence graph
	classes []Class        // per-element classification
	class   Class          // whole-DTD classification
	// longestStrongChain is the length (edge count) of the longest acyclic
	// path in the strong occurrence graph; for non-PV-strong DTDs it bounds
	// the depth of nested recognizers needed for completeness.
	longestStrongChain int
}

// Build computes the reachability table for d. Content models are
// normalized internally (Corollary 3.1) before star-group occurrence
// analysis; reachability itself is identical on normalized and original
// models.
func Build(d *dtd.DTD) *Table {
	m := len(d.Order)
	t := &Table{
		dtd:    d,
		index:  make(map[string]int, m),
		names:  append([]string(nil), d.Order...),
		m:      m,
		pcdata: make([]bool, m),
	}
	for i, name := range d.Order {
		t.index[name] = i
	}

	direct := makeMatrix(m)
	strongDirect := makeMatrix(m)
	directPCDATA := make([]bool, m)

	for i, name := range d.Order {
		decl := d.Elements[name]
		switch decl.Category {
		case dtd.Empty:
			// no edges
		case dtd.Any:
			// ANY content admits every declared element and character data;
			// these edges are star-group-like (unordered, repeatable), so
			// they contribute to reach but not to the strong graph.
			for j := range d.Order {
				direct[i][j] = true
			}
			directPCDATA[i] = true
		default:
			norm := contentmodel.Normalize(decl.Model)
			for _, ref := range norm.ElementNames() {
				if j, ok := t.index[ref]; ok {
					direct[i][j] = true
				}
			}
			if norm.HasPCDATA() {
				directPCDATA[i] = true
			}
			outside, _ := contentmodel.InStarGroup(norm)
			for ref := range outside {
				if j, ok := t.index[ref]; ok {
					strongDirect[i][j] = true
				}
			}
		}
	}

	t.reach = closure(direct)
	t.strong = closure(strongDirect)

	// x reaches #PCDATA if some reachable element (or x itself) has a
	// direct #PCDATA occurrence.
	for i := 0; i < m; i++ {
		if directPCDATA[i] {
			t.pcdata[i] = true
			continue
		}
		for j := 0; j < m; j++ {
			if t.reach[i][j] && directPCDATA[j] {
				t.pcdata[i] = true
				break
			}
		}
	}

	// Classification (Definitions 6-8). An element is recursive iff it
	// reaches itself in R_T; PV-strong recursive iff it reaches itself in
	// the strong graph.
	t.classes = make([]Class, m)
	t.class = NonRecursive
	for i := 0; i < m; i++ {
		switch {
		case t.strong[i][i]:
			t.classes[i] = PVStrongRecursive
			t.class = PVStrongRecursive
		case t.reach[i][i]:
			t.classes[i] = PVWeakRecursive
			if t.class == NonRecursive {
				t.class = PVWeakRecursive
			}
		default:
			t.classes[i] = NonRecursive
		}
	}

	t.longestStrongChain = longestPath(strongDirect, t.strong)
	return t
}

func makeMatrix(m int) [][]bool {
	rows := make([][]bool, m)
	cells := make([]bool, m*m)
	for i := range rows {
		rows[i] = cells[i*m : (i+1)*m : (i+1)*m]
	}
	return rows
}

// closure returns the strict transitive closure (Floyd-Warshall) of the
// direct-edge matrix. The result is strict: r[i][i] is true only if i lies
// on a cycle.
func closure(direct [][]bool) [][]bool {
	m := len(direct)
	r := makeMatrix(m)
	for i := 0; i < m; i++ {
		copy(r[i], direct[i])
	}
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			if !r[i][k] {
				continue
			}
			rk := r[k]
			ri := r[i]
			for j := 0; j < m; j++ {
				if rk[j] {
					ri[j] = true
				}
			}
		}
	}
	return r
}

// longestPath returns the number of edges on the longest simple path of the
// direct graph restricted to vertices not on cycles (per the strong
// closure); vertices on cycles make the longest path unbounded, and the
// caller falls back to the user depth bound there.
func longestPath(direct, closed [][]bool) int {
	m := len(direct)
	memo := make([]int, m)
	for i := range memo {
		memo[i] = -1
	}
	var dfs func(i int) int
	dfs = func(i int) int {
		if closed[i][i] {
			return 0 // on a cycle; contribution handled by the depth bound
		}
		if memo[i] >= 0 {
			return memo[i]
		}
		memo[i] = 0 // mark to cut re-entry; acyclic here so safe
		best := 0
		for j := 0; j < m; j++ {
			if direct[i][j] && !closed[j][j] {
				if d := dfs(j) + 1; d > best {
					best = d
				}
			}
		}
		memo[i] = best
		return best
	}
	best := 0
	for i := 0; i < m; i++ {
		if d := dfs(i); d > best {
			best = d
		}
	}
	return best
}

// Raw is the serializable shape of a Table: the precomputed matrices and
// classifications without the DTD back-pointer or index maps. Matrices are
// flattened row-major (m*m cells for m elements, in declaration order).
// It exists for the compiled-schema disk cache (internal/core's binary
// codec): rehydrating a Table from Raw skips the Floyd-Warshall closure,
// the dominant cost of reach.Build on large DTDs.
type Raw struct {
	PCData             []bool
	Reach              []bool
	Strong             []bool
	Classes            []Class
	Class              Class
	LongestStrongChain int
}

// Raw exports the table's precomputed state for serialization.
func (t *Table) Raw() *Raw {
	r := &Raw{
		PCData:             append([]bool(nil), t.pcdata...),
		Reach:              make([]bool, 0, t.m*t.m),
		Strong:             make([]bool, 0, t.m*t.m),
		Classes:            append([]Class(nil), t.classes...),
		Class:              t.class,
		LongestStrongChain: t.longestStrongChain,
	}
	for i := 0; i < t.m; i++ {
		r.Reach = append(r.Reach, t.reach[i]...)
		r.Strong = append(r.Strong, t.strong[i]...)
	}
	return r
}

// FromRaw rebuilds a Table for d from previously exported raw state,
// validating dimensions against the DTD's declaration count. The caller is
// responsible for pairing the raw state with the DTD it was computed from
// (the disk cache's content addressing guarantees this; a checksum guards
// against bit rot).
func FromRaw(d *dtd.DTD, r *Raw) (*Table, error) {
	m := len(d.Order)
	if len(r.PCData) != m || len(r.Classes) != m || len(r.Reach) != m*m || len(r.Strong) != m*m {
		return nil, fmt.Errorf("reach: raw table dimensions do not match DTD with %d elements", m)
	}
	t := &Table{
		dtd:                d,
		index:              make(map[string]int, m),
		names:              append([]string(nil), d.Order...),
		m:                  m,
		pcdata:             append([]bool(nil), r.PCData...),
		reach:              makeMatrix(m),
		strong:             makeMatrix(m),
		classes:            append([]Class(nil), r.Classes...),
		class:              r.Class,
		longestStrongChain: r.LongestStrongChain,
	}
	for i, name := range d.Order {
		t.index[name] = i
	}
	for i := 0; i < m; i++ {
		copy(t.reach[i], r.Reach[i*m:(i+1)*m])
		copy(t.strong[i], r.Strong[i*m:(i+1)*m])
	}
	return t, nil
}

// Has reports whether name is a declared element.
func (t *Table) Has(name string) bool {
	_, ok := t.index[name]
	return ok
}

// Reachable reports the strict reachability from ⇝ to in R_T: whether the
// markup of element `to` may occur in the content of element `from` at any
// depth. Reachable(x, x) is true only for recursive x.
func (t *Table) Reachable(from, to string) bool {
	i, ok := t.index[from]
	if !ok {
		return false
	}
	j, ok := t.index[to]
	if !ok {
		return false
	}
	return t.reach[i][j]
}

// ReachesPCDATA reports whether character data may occur (at any depth)
// inside element from — the Proposition 3 lookup.
func (t *Table) ReachesPCDATA(from string) bool {
	i, ok := t.index[from]
	if !ok {
		return false
	}
	return t.pcdata[i]
}

// StrongReachable reports reachability restricted to non-star-group
// occurrences — the relation behind Definition 7.
func (t *Table) StrongReachable(from, to string) bool {
	i, ok := t.index[from]
	if !ok {
		return false
	}
	j, ok := t.index[to]
	if !ok {
		return false
	}
	return t.strong[i][j]
}

// Class returns the whole-DTD classification.
func (t *Table) Class() Class { return t.class }

// ElementClass returns the classification of a single element.
func (t *Table) ElementClass(name string) Class {
	i, ok := t.index[name]
	if !ok {
		return NonRecursive
	}
	return t.classes[i]
}

// RecursiveElements returns the sorted names of recursive elements.
func (t *Table) RecursiveElements() []string {
	var out []string
	for i, name := range t.names {
		if t.reach[i][i] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// PVStrongElements returns the sorted names of PV-strong recursive elements.
func (t *Table) PVStrongElements() []string {
	var out []string
	for i, name := range t.names {
		if t.strong[i][i] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// LongestStrongChain returns the length (in edges) of the longest acyclic
// chain of non-star-group occurrences. For non-PV-strong DTDs, nested
// recognizers never stack deeper than this, so depth bound
// LongestStrongChain+1 makes the recognizer complete.
func (t *Table) LongestStrongChain() int { return t.longestStrongChain }

// Usable computes the set of usable elements relative to root (Section
// 3.3): elements that occur in some derivation of a finite valid document.
// An element is usable iff it is productive (its content model can be
// satisfied using productive elements) and reachable from the root (or is
// the root). The result maps every declared element to its usability.
func (t *Table) Usable(root string) map[string]bool {
	productive := t.productiveSet()
	out := make(map[string]bool, t.m)
	ri, rootDeclared := t.index[root]
	for i, name := range t.names {
		reachableFromRoot := rootDeclared && (i == ri || t.reach[ri][i])
		out[name] = productive[i] && reachableFromRoot
	}
	return out
}

// productiveSet computes, by fixpoint, which elements can derive a finite
// valid subtree under the *original* content models.
func (t *Table) productiveSet() []bool {
	productive := make([]bool, t.m)
	changed := true
	for changed {
		changed = false
		for i, name := range t.names {
			if productive[i] {
				continue
			}
			decl := t.dtd.Elements[name]
			ok := false
			switch decl.Category {
			case dtd.Empty, dtd.Any:
				// ANY is productive with empty content.
				ok = true
			default:
				ok = t.satisfiable(decl.Model, productive)
			}
			if ok {
				productive[i] = true
				changed = true
			}
		}
	}
	return productive
}

// satisfiable reports whether model can match some finite sequence using
// only elements currently known productive.
func (t *Table) satisfiable(e *contentmodel.Expr, productive []bool) bool {
	switch e.Kind {
	case contentmodel.KindPCDATA:
		return true
	case contentmodel.KindName:
		i, ok := t.index[e.Name]
		return ok && productive[i]
	case contentmodel.KindSeq:
		for _, c := range e.Children {
			if !t.satisfiable(c, productive) {
				return false
			}
		}
		return true
	case contentmodel.KindChoice:
		for _, c := range e.Children {
			if t.satisfiable(c, productive) {
				return true
			}
		}
		return false
	case contentmodel.KindStar, contentmodel.KindOpt:
		return true // zero repetitions
	case contentmodel.KindPlus:
		return t.satisfiable(e.Children[0], productive)
	}
	return false
}
