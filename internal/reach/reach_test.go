package reach

import (
	"reflect"
	"testing"

	"repro/internal/dtd"
)

func buildFigure1(t *testing.T) *Table {
	t.Helper()
	return Build(dtd.MustParse(dtd.Figure1))
}

func TestReachabilityFigure1(t *testing.T) {
	lt := buildFigure1(t)
	// Direct edges (Definition 5): r->a; a->b,c,f,d; b->d,f; d->e; f->c,e.
	cases := []struct {
		from, to string
		want     bool
	}{
		{"r", "a", true},
		{"r", "e", true}, // transitively via a->d->e
		{"a", "c", true},
		{"a", "e", true},
		{"b", "c", true}, // b->f->c
		{"b", "e", true}, // b->d->e and b->f->e
		{"c", "e", false},
		{"e", "e", false}, // EMPTY reaches nothing
		{"e", "d", false},
		{"d", "e", true},
		{"d", "c", false}, // d's content is (#PCDATA|e)*: no c below d
		{"f", "c", true},
		{"c", "a", false},
		{"b", "b", false}, // strictness: "b is not found in the lookup table of b" (Example 4)
		{"a", "a", false},
	}
	for _, c := range cases {
		if got := lt.Reachable(c.from, c.to); got != c.want {
			t.Errorf("Reachable(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestReachesPCDATAFigure1(t *testing.T) {
	lt := buildFigure1(t)
	want := map[string]bool{
		"r": true, "a": true, "b": true, "c": true, "d": true, "f": true,
		"e": false,
	}
	for name, w := range want {
		if got := lt.ReachesPCDATA(name); got != w {
			t.Errorf("ReachesPCDATA(%s) = %v, want %v", name, got, w)
		}
	}
}

func TestUndeclaredNamesAreUnreachable(t *testing.T) {
	lt := buildFigure1(t)
	if lt.Reachable("r", "ghost") || lt.Reachable("ghost", "r") {
		t.Error("undeclared names must be unreachable")
	}
	if lt.Has("ghost") {
		t.Error("Has(ghost) must be false")
	}
}

func TestClassificationFigure1(t *testing.T) {
	lt := buildFigure1(t)
	if got := lt.Class(); got != NonRecursive {
		t.Errorf("Figure 1 DTD class = %v, want non-recursive", got)
	}
	if rec := lt.RecursiveElements(); len(rec) != 0 {
		t.Errorf("recursive elements = %v, want none", rec)
	}
}

func TestClassificationT1T2Strong(t *testing.T) {
	// Examples 5 and 6: both T1 and T2 are PV-strong recursive via element a.
	for _, src := range []string{dtd.T1, dtd.T2} {
		lt := Build(dtd.MustParse(src))
		if got := lt.Class(); got != PVStrongRecursive {
			t.Errorf("class(%q) = %v, want PV-strong recursive", src, got)
		}
		if got := lt.PVStrongElements(); !reflect.DeepEqual(got, []string{"a"}) {
			t.Errorf("PV-strong elements = %v, want [a]", got)
		}
		if got := lt.ElementClass("a"); got != PVStrongRecursive {
			t.Errorf("ElementClass(a) = %v", got)
		}
		if got := lt.ElementClass("b"); got != NonRecursive {
			t.Errorf("ElementClass(b) = %v", got)
		}
	}
}

func TestClassificationWeak(t *testing.T) {
	// XHTML-style inline nesting recurses only through star-groups
	// (Definition 8): PV-weak.
	lt := Build(dtd.MustParse(dtd.WeakRecursive))
	if got := lt.Class(); got != PVWeakRecursive {
		t.Errorf("class = %v, want PV-weak recursive", got)
	}
	if got := lt.PVStrongElements(); len(got) != 0 {
		t.Errorf("PV-strong elements = %v, want none", got)
	}
	for _, name := range []string{"b", "i"} {
		if got := lt.ElementClass(name); got != PVWeakRecursive {
			t.Errorf("ElementClass(%s) = %v, want PV-weak", name, got)
		}
	}
	if !lt.Reachable("b", "b") {
		t.Error("b must reach itself through the star-group")
	}
	if lt.StrongReachable("b", "b") {
		t.Error("b must not strongly reach itself")
	}
}

func TestMixedStrongAndWeak(t *testing.T) {
	// Recursion via (a, c)* is weak; recursion via (x, y) chain is strong.
	d := dtd.MustParse(`
		<!ELEMENT a (b, (a, c)*)>
		<!ELEMENT b (#PCDATA)>
		<!ELEMENT c EMPTY>
		<!ELEMENT x (y?)>
		<!ELEMENT y (x | b)>
	`)
	lt := Build(d)
	if got := lt.ElementClass("a"); got != PVWeakRecursive {
		t.Errorf("ElementClass(a) = %v, want PV-weak", got)
	}
	if got := lt.ElementClass("x"); got != PVStrongRecursive {
		t.Errorf("ElementClass(x) = %v, want PV-strong", got)
	}
	if got := lt.Class(); got != PVStrongRecursive {
		t.Errorf("DTD class = %v, want PV-strong (one strong element suffices)", got)
	}
}

func TestDefinition7PaperExample(t *testing.T) {
	// "<!ELEMENT a ((a | c), b*)>" — the paper's trivial strong-recursion
	// example after Definition 7.
	d := dtd.MustParse(`<!ELEMENT a ((a | c), b*)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	lt := Build(d)
	if got := lt.ElementClass("a"); got != PVStrongRecursive {
		t.Errorf("ElementClass(a) = %v, want PV-strong", got)
	}
}

func TestAnyContentReachesEverything(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a ANY> <!ELEMENT b EMPTY>`)
	lt := Build(d)
	if !lt.Reachable("a", "b") || !lt.Reachable("a", "a") {
		t.Error("ANY must reach every declared element")
	}
	if !lt.ReachesPCDATA("a") {
		t.Error("ANY must reach #PCDATA")
	}
	// ANY recursion counts as weak: no ordering constraint can be violated.
	if got := lt.ElementClass("a"); got != PVWeakRecursive {
		t.Errorf("ElementClass(a) = %v, want PV-weak", got)
	}
}

func TestLongestStrongChain(t *testing.T) {
	lt := buildFigure1(t)
	// Strong edges in Figure 1 (occurrences outside star-groups): r has
	// none (a+ normalizes to the star-group (a)*); a->b,c,f,d; b->d,f;
	// f->c,e. Longest chain: a->b->f->c (3 edges).
	if got := lt.LongestStrongChain(); got != 3 {
		t.Errorf("LongestStrongChain = %d, want 3", got)
	}
}

func TestUsable(t *testing.T) {
	// x is unproductive (needs itself forever); z is unreachable from r.
	d := dtd.MustParse(`
		<!ELEMENT r (a)>
		<!ELEMENT a (#PCDATA)>
		<!ELEMENT x (x)>
		<!ELEMENT z EMPTY>
	`)
	lt := Build(d)
	usable := lt.Usable("r")
	want := map[string]bool{"r": true, "a": true, "x": false, "z": false}
	if !reflect.DeepEqual(usable, want) {
		t.Errorf("Usable = %v, want %v", usable, want)
	}
}

func TestUsableMutualRecursionProductive(t *testing.T) {
	// Mutually recursive but productive thanks to the EMPTY escape.
	d := dtd.MustParse(`
		<!ELEMENT r (p)>
		<!ELEMENT p (q | stop)>
		<!ELEMENT q (p)>
		<!ELEMENT stop EMPTY>
	`)
	usable := Build(d).Usable("r")
	for name, u := range usable {
		if !u {
			t.Errorf("element %s should be usable", name)
		}
	}
}

func TestUsableUnproductivePair(t *testing.T) {
	// p and q need each other with no escape: both unproductive.
	d := dtd.MustParse(`
		<!ELEMENT r (p?)>
		<!ELEMENT p (q)>
		<!ELEMENT q (p)>
	`)
	usable := Build(d).Usable("r")
	if usable["p"] || usable["q"] {
		t.Errorf("p, q should be unusable: %v", usable)
	}
	if !usable["r"] {
		t.Error("r is usable with zero p's")
	}
}
