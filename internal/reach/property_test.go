package reach_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/reach"
)

// TestPropertyTransitivity: the lookup table is transitively closed.
func TestPropertyTransitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		class := []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong}[rng.Intn(3)]
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 9, Class: class})
		lt := reach.Build(d)
		names := d.Names()
		for _, a := range names {
			for _, b := range names {
				if !lt.Reachable(a, b) {
					continue
				}
				for _, c := range names {
					if lt.Reachable(b, c) && !lt.Reachable(a, c) {
						return false
					}
				}
				if lt.ReachesPCDATA(b) && !lt.ReachesPCDATA(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStrongSubsetOfReach: strong reachability implies reachability.
func TestPropertyStrongSubsetOfReach(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 9, Class: gen.ClassStrong})
		lt := reach.Build(d)
		for _, a := range d.Names() {
			for _, b := range d.Names() {
				if lt.StrongReachable(a, b) && !lt.Reachable(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyClassConsistency: the DTD class is the max over element
// classes, and PV-strong elements are exactly the strong self-reachers.
func TestPropertyClassConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		class := []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong}[rng.Intn(3)]
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 8, Class: class})
		lt := reach.Build(d)
		max := reach.NonRecursive
		for _, name := range d.Names() {
			ec := lt.ElementClass(name)
			if ec > max {
				max = ec
			}
			if (ec == reach.PVStrongRecursive) != lt.StrongReachable(name, name) {
				return false
			}
			if ec == reach.PVWeakRecursive && !lt.Reachable(name, name) {
				return false
			}
		}
		return lt.Class() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReachabilityMatchesDerivation: a ⇝ b implies b occurs in some
// generated document under a (sampled), and conversely, every observed
// ancestor/descendant pair in generated documents is in the table.
func TestPropertyReachabilityMatchesDerivation(t *testing.T) {
	d := dtd.MustParse(dtd.Article)
	lt := reach.Build(d)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := gen.GenValid(rng, d, "article", gen.DocOptions{MaxDepth: 10})
		// Every strict ancestor/descendant element pair must be Reachable.
		elems := doc.Elements()
		for _, anc := range elems {
			for _, desc := range anc.Elements()[1:] {
				if !lt.Reachable(anc.Name, desc.Name) {
					t.Fatalf("observed <%s> inside <%s> but table says unreachable",
						desc.Name, anc.Name)
				}
			}
		}
	}
}
