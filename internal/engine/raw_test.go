package engine

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// postRaw sends a raw-XML /check/raw request with optional headers.
func postRaw(t *testing.T, h http.Handler, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func rawResult(t *testing.T, rec *httptest.ResponseRecorder) resultJSON {
	t.Helper()
	var res resultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad verdict body %.200s: %v", rec.Body, err)
	}
	return res
}

func TestCheckRawVerdicts(t *testing.T) {
	e := New(Config{Workers: 2})
	s, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(e)
	ref := s.Ref[:16]

	rec := postRaw(t, h, "/check/raw?schemaRef="+ref+"&id=doc-1", []byte(`<r><a><c>x</c><d></d></a></r>`), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	res := rawResult(t, rec)
	if !res.PotentiallyValid || res.Valid || res.ID != "doc-1" || res.Error != "" {
		t.Errorf("pv doc: %+v", res)
	}

	// Same schema via the header spelling; a PV violation comes back as a
	// typed detail, not an HTTP error.
	rec = postRaw(t, h, "/check/raw", []byte(`<r><a><b>x</b><e></e><c>y</c></a></r>`), map[string]string{"X-Schema-Ref": ref})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if res = rawResult(t, rec); res.PotentiallyValid || res.Detail == "" {
		t.Errorf("violation doc: %+v", res)
	}

	// Malformed XML: still a 200 with the lexical error in the verdict.
	rec = postRaw(t, h, "/check/raw?schemaRef="+ref, []byte(`<r><a>`), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if res = rawResult(t, rec); res.Error == "" || res.PotentiallyValid {
		t.Errorf("malformed doc: %+v", res)
	}

	if stats := e.Stats(); stats.Docs != 3 || stats.PotentiallyValid != 1 || stats.Malformed != 1 {
		t.Errorf("lifetime stats: %+v", stats)
	}
}

// TestCheckRawContract pins the 400/404/415 error contract.
func TestCheckRawContract(t *testing.T) {
	e := New(Config{Workers: 2})
	if _, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	h := NewServer(e)

	if rec := postRaw(t, h, "/check/raw", []byte(`<r></r>`), nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing ref: status %d, want 400", rec.Code)
	}
	if rec := postRaw(t, h, "/check/raw?schemaRef="+strings.Repeat("0", 16), []byte(`<r></r>`), nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown ref: status %d, want 404", rec.Code)
	}
	rec := postRaw(t, h, "/check/raw?schemaRef=whatever", []byte(`<r></r>`), map[string]string{"Content-Encoding": "br"})
	if rec.Code != http.StatusNotFound && rec.Code != http.StatusUnsupportedMediaType {
		t.Errorf("bad encoding: status %d", rec.Code)
	}
}

// TestCheckRawGzip streams a gzip-compressed body through the shared
// inflate path; the verdict (and byte accounting) applies to inflated data.
func TestCheckRawGzip(t *testing.T) {
	e := New(Config{Workers: 2})
	s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(e)

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	fmt.Fprint(zw, `<play><title>t</title><act><title>a</title><scene><title>s</title><speech><speaker>x</speaker><line>l</line></speech></scene></act></play>`)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	rec := postRaw(t, h, "/check/raw?schemaRef="+s.Ref[:16], buf.Bytes(), map[string]string{"Content-Encoding": "gzip"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if res := rawResult(t, rec); !res.PotentiallyValid {
		t.Errorf("gzip doc: %+v", res)
	}

	if rec := postRaw(t, h, "/check/raw?schemaRef="+s.Ref[:16], []byte("not gzip"), map[string]string{"Content-Encoding": "gzip"}); rec.Code != http.StatusBadRequest {
		t.Errorf("bad gzip: status %d, want 400", rec.Code)
	}
}

// TestConfigMaxDocBytes exercises the configurable NDJSON per-document cap:
// a tiny cap rejects a small streamed document with 413, while /check/raw
// on the same engine happily checks a body far beyond the cap.
func TestConfigMaxDocBytes(t *testing.T) {
	e := New(Config{Workers: 2, MaxDocBytes: 128})
	s, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxDocBytes() != 128 {
		t.Fatalf("MaxDocBytes() = %d", e.MaxDocBytes())
	}
	h := NewServer(e)

	doc := `<r><a><c>` + strings.Repeat("x", 256) + `</c><d></d></a></r>`
	body := ndjson(header(t, dtd.Figure1, "r"), docLine(t, "big", doc, ""))
	if rec := post(t, h, "/check/stream", body); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("stream over cap: status %d, want 413", rec.Code)
	}

	big := `<r><a><c>` + strings.Repeat("y", 1<<20) + `</c><d></d></a></r>`
	rec := postRaw(t, h, "/check/raw?schemaRef="+s.Ref[:16], []byte(big), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("raw over cap: status %d: %.200s", rec.Code, rec.Body)
	}
	if res := rawResult(t, rec); !res.PotentiallyValid {
		t.Errorf("raw over cap: %+v", res)
	}

	// Zero keeps the 64MB default.
	if New(Config{Workers: 1}).MaxDocBytes() != MaxDocumentBytes {
		t.Error("default MaxDocBytes should be MaxDocumentBytes")
	}
}
