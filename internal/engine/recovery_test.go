package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs/walstore"
)

// The engine-level restart suite: two engines opened over the same cache
// directory stand in for a pvserve process and its restarted successor.
// The schema disk tier is what makes runner reconstruction work — the
// recovered submission's schema refs resolve through it — so these tests
// double as integration coverage for the registry/jobs layering.

// openDurable builds an engine whose cache dir (schema tier + job WAL)
// is rooted at dir. The WAL is opened without its single-writer lock and
// injected as the JobStore: these tests simulate a killed pvserve by
// abandoning a live engine, and the "dead" predecessor's lock would
// otherwise refuse the restarted one.
func openDurable(t *testing.T, dir string) *Engine {
	t.Helper()
	ws, err := walstore.Open(filepath.Join(dir, "jobs"), walstore.Options{NoLock: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(Config{Workers: 2, JobWorkers: 1, CacheDir: dir, JobStore: ws})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// shutdownEngine drains e with a generous deadline.
func shutdownEngine(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFinishedJobSurvivesRestart is the acceptance path: a job submitted
// to and finished by one process answers GET /jobs/{id} (state and
// byte-identical results) on a fresh process over the same cache dir.
func TestFinishedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	h1 := NewServer(e1)
	docs := mixedJobCorpus(t, e1, 100)
	id := submitAsync(t, h1, "/batch", docs)
	if info := pollJob(t, h1, id); info["state"] != "done" {
		t.Fatalf("job ended %v: %v", info["state"], info["error"])
	}
	want := get(t, h1, "/jobs/"+id+"/results").Body.String()
	shutdownEngine(t, e1)

	e2 := openDurable(t, dir)
	defer e2.Close()
	h2 := NewServer(e2)
	rec, ok := e2.JobRecovery()
	if !ok || rec.Served != 1 || rec.Requeued != 0 || rec.Failed != 0 {
		t.Fatalf("recovery = %+v (ran %v)", rec, ok)
	}
	res := get(t, h2, "/jobs/"+id)
	if res.Code != http.StatusOK {
		t.Fatalf("GET /jobs/%s on restarted process: %d %s", id, res.Code, res.Body)
	}
	var info map[string]any
	if err := json.Unmarshal(res.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["state"] != "done" || info["recovered"] != true || info["done"].(float64) != 100 {
		t.Fatalf("restarted job info = %+v", info)
	}
	res = get(t, h2, "/jobs/"+id+"/results?require=done")
	if res.Code != http.StatusOK || res.Header().Get("X-Job-State") != "done" {
		t.Fatalf("restarted results: %d, X-Job-State %q", res.Code, res.Header().Get("X-Job-State"))
	}
	if got := res.Body.String(); got != want {
		t.Fatalf("restarted results not byte-equal:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}
	// The stats surface reports the recovery.
	var stats statsResponse
	if err := json.Unmarshal(get(t, h2, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Recovery == nil || stats.Recovery.Served != 1 || !stats.Jobs.Durable || stats.Jobs.Recovered != 1 {
		t.Fatalf("stats recovery block = %+v, jobs = %+v", stats.Recovery, stats.Jobs)
	}
}

// TestInterruptedJobRecoversToTerminal kills the first engine right after
// acceptance: the restarted engine must drive the job to done — with the
// full verdict set, matching a synchronous reference run — instead of
// 404ing the poller.
func TestInterruptedJobRecoversToTerminal(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	h1 := NewServer(e1)
	docs := mixedJobCorpus(t, e1, 2000)
	id := submitAsync(t, h1, "/batch", docs)
	// The "crash": no drain, no waiting — the job is at best a few chunks
	// in. (Close never persists a terminal state for interrupted jobs, so
	// the WAL replays this as in-flight.)
	e1.Close()

	e2 := openDurable(t, dir)
	defer e2.Close()
	h2 := NewServer(e2)
	rec, ok := e2.JobRecovery()
	if !ok || rec.Total() != 1 || rec.Failed != 0 {
		t.Fatalf("recovery = %+v (ran %v)", rec, ok)
	}
	info := pollJob(t, h2, id)
	if info["state"] != "done" {
		t.Fatalf("recovered job ended %v: %v", info["state"], info["error"])
	}
	if info["done"].(float64) != 2000 || info["recovered"] != true {
		t.Fatalf("recovered job info = %+v", info)
	}
	got := fetchResults(t, h2, id)
	want, _ := e2.CheckBatch(nil, docs)
	if len(got) != len(want) {
		t.Fatalf("got %d result lines, want %d", len(got), len(want))
	}
	for i, g := range got {
		w := toJSON(want[i])
		w.Index = i
		if g != w {
			t.Fatalf("result %d after recovery: %+v != sync %+v", i, g, w)
		}
	}
}

// TestDurableJobStoreRequiresCacheDir pins the fail-fast: a durable
// custom JobStore without a CacheDir has no write-through directory to
// re-serve recovered results from — every replayed done job would degrade
// to failed — so Open refuses the combination outright.
func TestDurableJobStoreRequiresCacheDir(t *testing.T) {
	ws, err := walstore.Open(filepath.Join(t.TempDir(), "jobs"), walstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if _, err := Open(Config{Workers: 1, JobStore: ws}); err == nil {
		t.Fatal("Open accepted a durable JobStore without a CacheDir")
	}
}

// TestResultsStateSignaling pins satellite 3: X-Job-State on every
// results response and ?require=done conflicting (409) until the job is
// actually done — a poller can no longer mistake a truncated prefix for
// the complete verdict set.
func TestResultsStateSignaling(t *testing.T) {
	e := New(Config{Workers: 2, JobWorkers: 1})
	defer e.Close()
	h := NewServer(e)

	firstChunk := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	j, err := e.Jobs().Submit("check", 128, nil, func(lo, hi int) ([][]byte, error) {
		once.Do(func() { close(firstChunk) })
		<-release
		lines := make([][]byte, hi-lo)
		for i := range lines {
			lines[i] = []byte("{}")
		}
		return lines, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-firstChunk
	// Running: 200 with the state header; strict fetch conflicts.
	rec := get(t, h, "/jobs/"+j.ID()+"/results")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Job-State") != "running" {
		t.Fatalf("running results: %d, X-Job-State %q", rec.Code, rec.Header().Get("X-Job-State"))
	}
	rec = get(t, h, "/jobs/"+j.ID()+"/results?require=done")
	if rec.Code != http.StatusConflict || rec.Header().Get("X-Job-State") != "running" {
		t.Fatalf("strict fetch on running job: %d, X-Job-State %q", rec.Code, rec.Header().Get("X-Job-State"))
	}
	close(release)
	if info := pollJob(t, h, j.ID()); info["state"] != "done" {
		t.Fatalf("job ended %v", info["state"])
	}
	rec = get(t, h, "/jobs/"+j.ID()+"/results?require=done")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Job-State") != "done" {
		t.Fatalf("strict fetch on done job: %d, X-Job-State %q", rec.Code, rec.Header().Get("X-Job-State"))
	}

	// A failed job signals its state the same way.
	jf, err := e.Jobs().Submit("check", 1, nil, func(lo, hi int) ([][]byte, error) {
		return nil, context.DeadlineExceeded
	})
	if err != nil {
		t.Fatal(err)
	}
	if info := pollJob(t, h, jf.ID()); info["state"] != "failed" {
		t.Fatalf("job ended %v", info["state"])
	}
	rec = get(t, h, "/jobs/"+jf.ID()+"/results")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Job-State") != "failed" {
		t.Fatalf("failed results: %d, X-Job-State %q", rec.Code, rec.Header().Get("X-Job-State"))
	}
	if rec = get(t, h, "/jobs/"+jf.ID()+"/results?require=done"); rec.Code != http.StatusConflict {
		t.Fatalf("strict fetch on failed job: %d", rec.Code)
	}
}
