package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dtd"
)

func mustSchema(t *testing.T, e *Engine, src, root string) *Schema {
	t.Helper()
	s, err := e.Compile(DTDSource, src, root, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckVerdicts(t *testing.T) {
	e := New(Config{Workers: 4})
	s := mustSchema(t, e, dtd.Figure1, "r")

	cases := []struct {
		name, xml          string
		pv, valid, wantErr bool
		detailFragment     string
	}{
		{name: "valid", xml: `<r><a><c>x</c><d></d></a></r>`, pv: true, valid: true},
		{name: "pv-incomplete", xml: `<r><a><b>A quick brown</b><c>fox</c> dog<e></e></a></r>`, pv: true},
		{name: "not-pv", xml: `<r><a><b>x</b><e></e><c>y</c></a></r>`, detailFragment: "not potentially valid"},
		{name: "undeclared", xml: `<r><zzz></zzz></r>`, detailFragment: "not declared"},
		{name: "wrong-root", xml: `<a></a>`, detailFragment: "root element is <a>"},
		{name: "malformed-mismatch", xml: `<r><a></b></r>`, wantErr: true},
		{name: "malformed-unclosed", xml: `<r><a>`, wantErr: true},
		{name: "malformed-empty", xml: ``, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := e.Check(s, Doc{ID: tc.name, Content: tc.xml})
			if (res.Err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", res.Err, tc.wantErr)
			}
			if res.PotentiallyValid != tc.pv || res.Valid != tc.valid {
				t.Errorf("pv=%v valid=%v, want pv=%v valid=%v (detail %q)",
					res.PotentiallyValid, res.Valid, tc.pv, tc.valid, res.Detail)
			}
			if tc.detailFragment != "" && !strings.Contains(res.Detail, tc.detailFragment) {
				t.Errorf("detail %q missing %q", res.Detail, tc.detailFragment)
			}
		})
	}
}

func TestCheckBatchOrderAndStats(t *testing.T) {
	e := New(Config{Workers: 8})
	s := mustSchema(t, e, dtd.Figure1, "r")

	var docs []Doc
	for i := 0; i < 100; i++ {
		var content string
		switch i % 3 {
		case 0:
			content = `<r><a><c>x</c><d></d></a></r>` // valid
		case 1:
			content = `<r><a><c>x</c></a></r>` // pv only (missing d)
		default:
			content = `<r><a>` // malformed
		}
		docs = append(docs, Doc{ID: fmt.Sprintf("doc%03d", i), Content: content})
	}
	results, stats := e.CheckBatch(s, docs)
	if len(results) != len(docs) {
		t.Fatalf("got %d results for %d docs", len(results), len(docs))
	}
	for i, r := range results {
		if r.Index != i || r.ID != docs[i].ID {
			t.Fatalf("result %d out of order: index %d id %s", i, r.Index, r.ID)
		}
	}
	if stats.Docs != 100 || stats.PotentiallyValid != 67 || stats.Valid != 34 || stats.Malformed != 33 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Workers != 8 || stats.DocsPerSec <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	agg := e.Stats()
	if agg.Docs != 100 || agg.PotentiallyValid != 67 || agg.Valid != 34 || agg.Malformed != 33 {
		t.Errorf("lifetime stats = %+v", agg)
	}
}

func TestCheckBatchEmptyAndSingle(t *testing.T) {
	e := New(Config{Workers: 4})
	s := mustSchema(t, e, dtd.Figure1, "r")
	results, stats := e.CheckBatch(s, nil)
	if len(results) != 0 || stats.Docs != 0 {
		t.Errorf("empty batch: %d results, stats %+v", len(results), stats)
	}
	results, _ = e.CheckAll(s, []string{`<r><a><c>x</c><d></d></a></r>`})
	if len(results) != 1 || !results[0].Valid {
		t.Errorf("single: %+v", results)
	}
}

// TestConcurrentBatchesShareWorkerBound runs several batches at once on one
// engine: the engine-wide semaphore must neither deadlock nor corrupt
// per-batch results (exercised under -race in CI).
func TestConcurrentBatchesShareWorkerBound(t *testing.T) {
	e := New(Config{Workers: 2})
	s := mustSchema(t, e, dtd.Figure1, "r")
	docs := make([]Doc, 40)
	for i := range docs {
		docs[i] = Doc{ID: fmt.Sprint(i), Content: `<r><a><c>x</c><d></d></a></r>`}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, stats := e.CheckBatch(s, docs)
			if stats.Valid != len(docs) {
				t.Errorf("stats: %+v", stats)
			}
			for i, r := range results {
				if !r.Valid || r.Index != i {
					t.Errorf("result %d: %+v", i, r)
				}
			}
		}()
	}
	wg.Wait()
	if got := e.Stats().Docs; got != 240 {
		t.Errorf("lifetime docs = %d, want 240", got)
	}
}

func TestPVOnlySkipsValidBit(t *testing.T) {
	e := New(Config{Workers: 2, PVOnly: true})
	s := mustSchema(t, e, dtd.Figure1, "r")
	res := e.Check(s, Doc{Content: `<r><a><c>x</c><d></d></a></r>`})
	if !res.PotentiallyValid || res.Valid {
		t.Errorf("PVOnly: pv=%v valid=%v, want pv=true valid=false", res.PotentiallyValid, res.Valid)
	}
}

func TestRegistryHitMissEvict(t *testing.T) {
	r := NewRegistry(2)
	if _, err := r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	s1, err := r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if s1 != s2 {
		t.Error("hit did not return the cached artifact")
	}
	// Different options are a different key.
	if _, err := r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{AllowAnyRoot: true}); err != nil {
		t.Fatal(err)
	}
	// Third distinct key evicts the LRU entry.
	if _, err := r.Compile(DTDSource, dtd.Play, "play", CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("size/cap = %d/%d, want 2/2", st.Size, st.Capacity)
	}
	if st.Hits != 2 || st.Misses != 3 || st.Evictions != 1 || st.Compiles != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegistryNegativeCaching(t *testing.T) {
	r := NewRegistry(4)
	_, err1 := r.Compile(DTDSource, "<!ELEMENT a (b)>", "a", CompileOptions{}) // b undeclared
	if err1 == nil {
		t.Fatal("want compile error for undeclared reference")
	}
	_, err2 := r.Compile(DTDSource, "<!ELEMENT a (b)>", "a", CompileOptions{})
	if err2 == nil {
		t.Fatal("want cached compile error")
	}
	st := r.Stats()
	if st.Compiles != 1 || st.Hits != 1 {
		t.Errorf("failed compile not cached: %+v", st)
	}
	infos := r.Schemas()
	if len(infos) != 1 || infos[0].Error == "" {
		t.Errorf("schema listing should carry the error: %+v", infos)
	}
}

func TestRegistryConcurrentCompileOnce(t *testing.T) {
	r := NewRegistry(8)
	const goroutines = 32
	var wg sync.WaitGroup
	schemas := make([]*Schema, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := r.Compile(DTDSource, dtd.TEILite, "TEI", CompileOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			schemas[i] = s
		}(i)
	}
	wg.Wait()
	for _, s := range schemas[1:] {
		if s != schemas[0] {
			t.Fatal("concurrent compiles returned distinct artifacts")
		}
	}
	if st := r.Stats(); st.Compiles != 1 {
		t.Errorf("compiled %d times, want 1 (%+v)", st.Compiles, st)
	}
}

func TestRegistrySchemasListing(t *testing.T) {
	r := NewRegistry(8)
	r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	r.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	infos := r.Schemas()
	if len(infos) != 2 {
		t.Fatalf("got %d infos", len(infos))
	}
	// MRU first.
	if infos[0].Root != "play" || infos[1].Root != "r" {
		t.Errorf("order: %+v", infos)
	}
	if infos[0].Class == "" || infos[0].Elements == 0 || infos[0].Hash == "" || infos[0].Kind != "dtd" {
		t.Errorf("missing detail: %+v", infos[0])
	}
}

func TestParseSourceKind(t *testing.T) {
	for in, want := range map[string]SourceKind{"": DTDSource, "dtd": DTDSource, "xsd": XSDSource} {
		got, err := ParseSourceKind(in)
		if err != nil || got != want {
			t.Errorf("ParseSourceKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSourceKind("relaxng"); err == nil {
		t.Error("want error for unknown kind")
	}
}
