package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// TestCheckBatchBytesMatchesString is the engine half of the byte-path
// differential: the same corpus submitted once as Content and once as
// Bytes must produce identical verdicts, details and errors. Run under
// -race in CI.
func TestCheckBatchBytesMatchesString(t *testing.T) {
	e := New(Config{Workers: 8})
	rng := rand.New(rand.NewSource(99))
	d := gen.RandDTD(rng, gen.DTDOptions{Elements: 10, Class: gen.ClassWeak})
	schema, err := e.Compile(DTDSource, d.String(), "e0", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var asString, asBytes []Doc
	add := func(xml string) {
		id := fmt.Sprint(len(asString))
		asString = append(asString, Doc{ID: id, Content: xml})
		asBytes = append(asBytes, Doc{ID: id, Bytes: []byte(xml)})
	}
	for i := 0; i < 80; i++ {
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 7})
		switch i % 4 {
		case 1:
			gen.Strip(rng, doc, 0.5)
		case 2:
			gen.Corrupt(rng, d, doc)
		case 3:
			src := doc.String()
			add(src[:rng.Intn(len(src))])
			continue
		}
		add(doc.String())
	}
	rs, _ := e.CheckBatch(schema, asString)
	rb, stats := e.CheckBatch(schema, asBytes)
	if stats.Bytes == 0 {
		t.Fatal("byte batch reported zero bytes")
	}
	for i := range rs {
		s, b := rs[i], rb[i]
		if s.PotentiallyValid != b.PotentiallyValid || s.Valid != b.Valid ||
			s.Detail != b.Detail || (s.Err == nil) != (b.Err == nil) || s.Bytes != b.Bytes {
			t.Errorf("doc %s: string %+v != bytes %+v", s.ID, s, b)
		}
		if s.Err != nil && s.Err.Error() != b.Err.Error() {
			t.Errorf("doc %s: error text: %v != %v", s.ID, s.Err, b.Err)
		}
	}
}

// TestCheckBatchMultiSchema routes one mixed batch across three cached
// schemas by SchemaRef, with a default schema for unrouted documents.
func TestCheckBatchMultiSchema(t *testing.T) {
	e := New(Config{Workers: 4})
	fig, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	play, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := e.Compile(DTDSource, dtd.WeakRecursive, "p", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Ref == "" || play.Ref == "" || weak.Ref == "" {
		t.Fatalf("registry schemas missing refs: %q %q %q", fig.Ref, play.Ref, weak.Ref)
	}

	figDoc := `<r><a><c>x</c><d></d></a></r>`
	playDoc := `<play><title>t</title><personae><persona>p</persona></personae>` +
		`<act><title>a</title><scene><title>s</title><speech><speaker>x</speaker><line>l</line></speech></scene></act></play>`
	weakDoc := `<p>text <b>bold</b></p>`
	docs := []Doc{
		{ID: "fig-default", Content: figDoc},                           // default schema
		{ID: "play", Content: playDoc, SchemaRef: play.Ref},            // full ref
		{ID: "weak", Bytes: []byte(weakDoc), SchemaRef: weak.Ref[:12]}, // prefix ref + bytes
		{ID: "cross", Content: playDoc, SchemaRef: fig.Ref},            // wrong schema: not PV
		{ID: "unknown", Content: figDoc, SchemaRef: strings.Repeat("f", 16)},
		{ID: "short", Content: figDoc, SchemaRef: "ab"},
	}
	results, stats := e.CheckBatch(fig, docs)
	if stats.Docs != len(docs) {
		t.Fatalf("stats: %+v", stats)
	}
	// The two unroutable documents are routing errors, not malformed docs.
	if stats.RoutingErrors != 2 || stats.Malformed != 0 {
		t.Errorf("routing stats: %+v", stats)
	}
	byID := map[string]Result{}
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, id := range []string{"fig-default", "play", "weak"} {
		if r := byID[id]; r.Err != nil || !r.PotentiallyValid || !r.Valid {
			t.Errorf("%s: want valid, got %+v", id, r)
		}
	}
	if r := byID["cross"]; r.Err != nil || r.PotentiallyValid {
		t.Errorf("cross-schema doc: want not-PV verdict, got %+v", r)
	}
	if r := byID["unknown"]; r.Err == nil || !strings.Contains(r.Err.Error(), "unknown schemaRef") {
		t.Errorf("unknown ref: want unknown-schemaRef error, got %+v", r)
	}
	if r := byID["short"]; r.Err == nil || !strings.Contains(r.Err.Error(), "too short") {
		t.Errorf("short ref: want too-short error, got %+v", r)
	}
}

// TestCheckBatchNoDefaultSchema: a batch with a nil default works as long
// as every document routes itself; unrouted documents get a typed error.
func TestCheckBatchNoDefaultSchema(t *testing.T) {
	e := New(Config{Workers: 2})
	fig, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docs := []Doc{
		{ID: "routed", Content: `<r><a><c>x</c><d></d></a></r>`, SchemaRef: fig.Ref},
		{ID: "unrouted", Content: `<r></r>`},
	}
	results, _ := e.CheckBatch(nil, docs)
	if r := results[0]; r.Err != nil || !r.PotentiallyValid {
		t.Errorf("routed: %+v", r)
	}
	if r := results[1]; r.Err == nil || !strings.Contains(r.Err.Error(), "no schemaRef") {
		t.Errorf("unrouted: want no-schema error, got %+v", r)
	}
}

// TestResolveRef covers the registry's ref lookup directly: prefix match,
// ambiguity, negative-cache refs, and LRU touching.
func TestResolveRef(t *testing.T) {
	r := NewRegistry(8)
	s1, err := r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same source, different root: distinct key, distinct ref.
	s2, err := r.Compile(DTDSource, dtd.Figure1, "a", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Ref == s2.Ref {
		t.Fatalf("same-source schemas share a ref: %s", s1.Ref)
	}
	got, err := r.ResolveRef(s1.Ref[:RefMinLen])
	if err != nil || got != s1 {
		t.Fatalf("prefix resolve: %v, %v", got, err)
	}
	if got, err := r.ResolveRef(strings.ToUpper(s2.Ref[:12])); err != nil || got != s2 {
		t.Fatalf("case-insensitive resolve: %v, %v", got, err)
	}
	if _, err := r.ResolveRef(strings.Repeat("0", RefMinLen)); err == nil {
		t.Fatal("expected unknown-ref error")
	}
	// A schema that failed to compile is not resolvable.
	if _, cerr := r.Compile(DTDSource, "<!ELEMENT", "x", CompileOptions{}); cerr == nil {
		t.Fatal("bad DTD compiled")
	}
}
