package engine

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/receipt"
)

// decodeBatchReceipt decodes a /batch?receipt=1 response.
func decodeBatchReceipt(t *testing.T, body []byte) batchResponse {
	t.Helper()
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerBatchReceipt pins the sync receipt path end to end:
// ?receipt=1 returns a receipt whose every proof verifies offline, the
// committed verdicts match the response verdicts, and receipts stay off
// by default.
func TestServerBatchReceipt(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 12)
	// An unresolvable ref exercises the routing-error verdict (and makes
	// the count odd, exercising promotion).
	docs = append(docs, Doc{ID: "lost", Content: `<a></a>`, SchemaRef: "ffffffffffffffff"})
	rec := postJSON(t, h, "/batch?receipt=1", map[string]any{"documents": docs})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	out := decodeBatchReceipt(t, rec.Body.Bytes())
	if out.Receipt == nil {
		t.Fatal("no receipt on ?receipt=1 response")
	}
	r := out.Receipt
	if r.Count != len(docs) || r.Kind != "check" || len(r.Proofs) != len(docs) {
		t.Fatalf("receipt shape: count=%d kind=%q proofs=%d", r.Count, r.Kind, len(r.Proofs))
	}
	if r.Anchored {
		t.Fatal("memory-only engine anchored a receipt")
	}
	for i, p := range r.Proofs {
		if p.Index != i || p.Leaf.DocID != docs[i].ID {
			t.Fatalf("proof %d: index=%d docID=%q", i, p.Index, p.Leaf.DocID)
		}
		if !receipt.Verify(r.Root, p.Leaf, p.Proof) {
			t.Fatalf("proof %d does not verify", i)
		}
		// The committed verdict agrees with the response verdict. The
		// routing-error case is pinned separately below (the wire error
		// string does not discriminate it).
		if i == len(docs)-1 {
			continue
		}
		res := out.Results[i]
		want := VerdictNotPotentiallyValid
		switch {
		case res.Error != "":
			want = VerdictMalformed
		case res.Valid:
			want = VerdictValid
		case res.PotentiallyValid:
			want = VerdictPotentiallyValid
		}
		if p.Leaf.Verdict != want {
			t.Fatalf("doc %d: committed verdict %q, response implies %q", i, p.Leaf.Verdict, want)
		}
	}
	if got := r.Proofs[len(docs)-1].Leaf.Verdict; got != VerdictRoutingError {
		t.Fatalf("unroutable document committed %q, want %q", got, VerdictRoutingError)
	}
	// Default-off: the plain route carries no receipt.
	plain := postJSON(t, h, "/batch", map[string]any{"documents": docs})
	if strings.Contains(plain.Body.String(), `"receipt"`) {
		t.Fatal("receipt present without ?receipt=1")
	}
	// The builder counters moved; the anchor counter did not.
	if s := e.Stats(); s.ReceiptsBuilt != 1 || s.ReceiptsAnchored != 0 {
		t.Fatalf("receipt counters = built %d anchored %d", s.ReceiptsBuilt, s.ReceiptsAnchored)
	}
}

// TestServerCompleteReceipt pins the completion twin: insertion counts are
// committed into the leaves and verify offline.
func TestServerCompleteReceipt(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	h := NewServer(e)
	body := map[string]any{
		"schema": jobDTDB, "root": "b",
		"documents": []Doc{
			{ID: "needs-z", Content: `<b><y>two</y></b>`}, // completable: inserts <z/>
			{ID: "already", Content: `<b><y>two</y><z></z></b>`},
			{ID: "hopeless", Content: `<b><z></z><y>y</y></b>`},
		},
	}
	rec := postJSON(t, h, "/complete?receipt=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out completeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Receipt == nil || out.Receipt.Kind != "complete" || len(out.Receipt.Proofs) != 3 {
		t.Fatalf("receipt = %+v", out.Receipt)
	}
	wantVerdicts := []string{VerdictCompleted, VerdictAlreadyValid, VerdictNotPotentiallyValid}
	for i, p := range out.Receipt.Proofs {
		if p.Leaf.Verdict != wantVerdicts[i] {
			t.Fatalf("doc %d verdict %q, want %q", i, p.Leaf.Verdict, wantVerdicts[i])
		}
		if !receipt.Verify(out.Receipt.Root, p.Leaf, p.Proof) {
			t.Fatalf("proof %d does not verify", i)
		}
	}
	if out.Receipt.Proofs[0].Leaf.Insertions == 0 {
		t.Fatal("completed document committed zero insertions")
	}
	if out.Receipt.Proofs[1].Leaf.Insertions != 0 {
		t.Fatal("already-valid document committed insertions")
	}
}

// TestServerVerifyRoute pins POST /verify: stateless acceptance of a good
// proof, rejection of a tampered one, whole-receipt mode with failed
// indices, and the 400 on an underspecified body.
func TestServerVerifyRoute(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 5)
	out := decodeBatchReceipt(t, postJSON(t, h, "/batch?receipt=1", map[string]any{"documents": docs}).Body.Bytes())
	r := out.Receipt

	// Single-triple mode, against a server that never saw the batch: a
	// fresh engine's handler answers identically (statelessness).
	fresh := NewServer(New(Config{}))
	single := postJSON(t, fresh, "/verify", map[string]any{
		"root": r.Root, "leaf": r.Proofs[2].Leaf, "proof": r.Proofs[2].Proof,
	})
	var v verifyResponse
	if err := json.Unmarshal(single.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Checked != 1 {
		t.Fatalf("verify triple = %+v", v)
	}

	// Whole-receipt mode with one tampered leaf: ok=false and the failed
	// index named.
	tampered := *r
	tampered.Proofs = append([]DocProof(nil), r.Proofs...)
	tampered.Proofs[3].Leaf.Verdict = VerdictValid + "!"
	whole := postJSON(t, fresh, "/verify", map[string]any{"receipt": &tampered})
	if err := json.Unmarshal(whole.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Checked != len(docs) || len(v.Failed) != 1 || v.Failed[0] != 3 {
		t.Fatalf("verify tampered receipt = %+v", v)
	}

	if rec := postJSON(t, fresh, "/verify", map[string]any{"root": r.Root}); rec.Code != http.StatusBadRequest {
		t.Fatalf("underspecified body: status %d", rec.Code)
	}
}

// TestAsyncReceipt drives the async path: a job submitted with
// ?async=1&receipt=1 serves its full receipt from GET /jobs/{id}/receipt
// after finishing, every proof verifying offline; a job submitted without
// receipts answers 404 there.
func TestAsyncReceipt(t *testing.T) {
	e := New(Config{Workers: 2, JobWorkers: 2})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 57) // several chunks, odd tail
	id := submitAsync(t, h, "/batch?receipt=1", docs)
	if info := pollJob(t, h, id); info["state"] != "done" {
		t.Fatalf("job ended %v: %v", info["state"], info["error"])
	}
	res := get(t, h, "/jobs/"+id+"/receipt")
	if res.Code != http.StatusOK {
		t.Fatalf("GET receipt: %d %s", res.Code, res.Body)
	}
	var r Receipt
	if err := json.Unmarshal(res.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Count != len(docs) || len(r.Proofs) != len(docs) {
		t.Fatalf("receipt count=%d proofs=%d", r.Count, len(r.Proofs))
	}
	for i := range r.Proofs {
		if !receipt.Verify(r.Root, r.Proofs[i].Leaf, r.Proofs[i].Proof) {
			t.Fatalf("async proof %d does not verify", i)
		}
	}
	// The job info snapshot carries the root.
	var info map[string]any
	if err := json.Unmarshal(get(t, h, "/jobs/"+id).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["receiptRoot"] != r.Root {
		t.Fatalf("Info.ReceiptRoot = %v, receipt root %s", info["receiptRoot"], r.Root)
	}

	// An async receipt commits the same leaves in the same order as the
	// sync path over the same inputs — the roots must be equal.
	sync := decodeBatchReceipt(t, postJSON(t, h, "/batch?receipt=1", map[string]any{"documents": docs}).Body.Bytes())
	if sync.Receipt.Root != r.Root {
		t.Fatalf("async root %s != sync root %s", r.Root, sync.Receipt.Root)
	}

	// No ?receipt=1 → no receipt.
	plainID := submitAsync(t, h, "/batch", docs[:4])
	pollJob(t, h, plainID)
	if res := get(t, h, "/jobs/"+plainID+"/receipt"); res.Code != http.StatusNotFound {
		t.Fatalf("receipt of plain job: status %d", res.Code)
	}
}

// TestReceiptCrossRestart is the durability pin: a root anchored by one
// engine is re-served byte-equal by a fresh engine over the same cache
// directory, a pre-restart proof still verifies against it, and a
// recovered receipt job still answers its root.
func TestReceiptCrossRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	h1 := NewServer(e1)
	docs := mixedJobCorpus(t, e1, 12)

	// One sync receipt (anchored) ...
	out := decodeBatchReceipt(t, postJSON(t, h1, "/batch?receipt=1", map[string]any{"documents": docs}).Body.Bytes())
	r := out.Receipt
	if r == nil || !r.Anchored || r.Seq != 1 {
		t.Fatalf("sync receipt on durable engine = %+v", r)
	}
	// ... and one async receipt job (also anchored, under the job's id).
	jobID := submitAsync(t, h1, "/batch?receipt=1", docs)
	if info := pollJob(t, h1, jobID); info["state"] != "done" {
		t.Fatalf("job ended %v", info["state"])
	}
	var jobRec Receipt
	if err := json.Unmarshal(get(t, h1, "/jobs/"+jobID+"/receipt").Body.Bytes(), &jobRec); err != nil {
		t.Fatal(err)
	}
	keepLeaf, keepProof := r.Proofs[7].Leaf, r.Proofs[7].Proof
	shutdownEngine(t, e1)

	e2 := openDurable(t, dir)
	defer e2.Close()
	h2 := NewServer(e2)
	res := get(t, h2, "/receipts")
	if res.Code != http.StatusOK {
		t.Fatalf("GET /receipts: %d %s", res.Code, res.Body)
	}
	var listed struct {
		Anchors []receipt.Anchor `json:"anchors"`
	}
	if err := json.Unmarshal(res.Body.Bytes(), &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed.Anchors) != 2 {
		t.Fatalf("anchors after restart = %d, want 2", len(listed.Anchors))
	}
	if a := listed.Anchors[0]; a.Root != r.Root || a.Seq != 1 || a.Kind != "check" || a.Leaves != len(docs) {
		t.Fatalf("re-served anchor = %+v, want root %s", a, r.Root)
	}
	if listed.Anchors[1].Root != jobRec.Root {
		t.Fatalf("job anchor root = %s, want %s", listed.Anchors[1].Root, jobRec.Root)
	}
	// The pre-restart proof verifies against the re-served root — pure
	// computation, no state from either engine process.
	if !receipt.Verify(listed.Anchors[0].Root, keepLeaf, keepProof) {
		t.Fatal("pre-restart proof does not verify against the re-served root")
	}
	// The recovered job answers its root (root-only: proofs are not
	// persisted across restarts).
	res = get(t, h2, "/jobs/"+jobID+"/receipt")
	if res.Code != http.StatusOK {
		t.Fatalf("recovered job receipt: %d %s", res.Code, res.Body)
	}
	var rootOnly map[string]any
	if err := json.Unmarshal(res.Body.Bytes(), &rootOnly); err != nil {
		t.Fatal(err)
	}
	if rootOnly["root"] != jobRec.Root {
		t.Fatalf("recovered receipt root = %v, want %s", rootOnly["root"], jobRec.Root)
	}
	if _, hasProofs := rootOnly["proofs"]; hasProofs {
		t.Fatal("recovered receipt claims proofs it cannot have")
	}
}

// scrapeParity fetches /stats and /metrics from a quiesced engine and
// checks every /stats field against its exported family. The explicit
// table is the satellite's point: adding a /stats field without exporting
// it (or exporting a stale name) fails here.
func scrapeParity(t *testing.T, h http.Handler, instance string) {
	t.Helper()
	var stats statsResponse
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	res := get(t, h, "/metrics")
	if res.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", res.Code, res.Body)
	}
	if ct := res.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	exp, err := metrics.Parse(res.Body.Bytes())
	if err != nil {
		t.Fatalf("parsing /metrics: %v\n%s", err, res.Body)
	}

	want := map[string]float64{
		"pv_engine_workers":                   float64(stats.Engine.Workers),
		"pv_engine_docs_total":                float64(stats.Engine.Docs),
		"pv_engine_potentially_valid_total":   float64(stats.Engine.PotentiallyValid),
		"pv_engine_valid_total":               float64(stats.Engine.Valid),
		"pv_engine_malformed_total":           float64(stats.Engine.Malformed),
		"pv_engine_routing_errors_total":      float64(stats.Engine.RoutingErrors),
		"pv_engine_inserted_elements_total":   float64(stats.Engine.Inserted),
		"pv_engine_bytes_total":               float64(stats.Engine.Bytes),
		"pv_engine_receipts_built_total":      float64(stats.Engine.ReceiptsBuilt),
		"pv_engine_receipts_anchored_total":   float64(stats.Engine.ReceiptsAnchored),
		"pv_engine_fast_path_hits_total":      float64(stats.Engine.FastPathHits),
		"pv_engine_fast_path_fallbacks_total": float64(stats.Engine.FastPathFallbacks),
		"pv_engine_dfa_states":                float64(stats.Engine.DFAStates),
		"pv_schema_store_size":                float64(stats.Registry.Size),
		"pv_schema_store_capacity":            float64(stats.Registry.Capacity),
		"pv_schema_store_shards":              float64(stats.Registry.Shards),
		"pv_schema_store_hits_total":          float64(stats.Registry.Hits),
		"pv_schema_store_misses_total":        float64(stats.Registry.Misses),
		"pv_schema_store_evictions_total":     float64(stats.Registry.Evictions),
		"pv_schema_store_compiles_total":      float64(stats.Registry.Compiles),
		"pv_schema_store_disk_loads_total":    float64(stats.Registry.DiskLoads),
		"pv_schema_store_disk_discards_total": float64(stats.Registry.DiskDiscards),
		"pv_jobs_queued":                      float64(stats.Jobs.Queued),
		"pv_jobs_running":                     float64(stats.Jobs.Running),
		"pv_jobs_retained":                    float64(stats.Jobs.Retained),
		"pv_jobs_submitted_total":             float64(stats.Jobs.Submitted),
		"pv_jobs_completed_total":             float64(stats.Jobs.Completed),
		"pv_jobs_failed_total":                float64(stats.Jobs.Failed),
		"pv_jobs_canceled_total":              float64(stats.Jobs.Canceled),
		"pv_jobs_rejected_total":              float64(stats.Jobs.Rejected),
		"pv_jobs_reaped_total":                float64(stats.Jobs.Reaped),
		"pv_jobs_recovered_total":             float64(stats.Jobs.Recovered),
		"pv_jobs_workers":                     float64(stats.Jobs.Workers),
		"pv_jobs_queue_depth":                 float64(stats.Jobs.QueueDepth),
	}
	if stats.Jobs.Durable {
		want["pv_jobs_durable"] = 1
	} else {
		want["pv_jobs_durable"] = 0
	}
	if stats.Registry.Disk != nil {
		want["pv_schema_disk_hits_total"] = float64(stats.Registry.Disk.Hits)
		want["pv_schema_disk_misses_total"] = float64(stats.Registry.Disk.Misses)
		want["pv_schema_disk_writes_total"] = float64(stats.Registry.Disk.Writes)
		want["pv_schema_disk_errors_total"] = float64(stats.Registry.Disk.Errors)
	}
	if stats.Recovery != nil {
		want["pv_jobs_recovery_requeued"] = float64(stats.Recovery.Requeued)
		want["pv_jobs_recovery_resumed"] = float64(stats.Recovery.Resumed)
		want["pv_jobs_recovery_served"] = float64(stats.Recovery.Served)
		want["pv_jobs_recovery_failed"] = float64(stats.Recovery.Failed)
	}
	for name, wantV := range want {
		s, ok := exp.One(name)
		if !ok {
			t.Errorf("metric %s missing or ambiguous", name)
			continue
		}
		if s.Value != wantV {
			t.Errorf("%s = %v, /stats says %v", name, s.Value, wantV)
		}
		if s.Labels["instance"] != instance {
			t.Errorf("%s instance label = %q, want %q", name, s.Labels["instance"], instance)
		}
		if typ := exp.Types[name]; typ != metrics.Counter && typ != metrics.Gauge {
			t.Errorf("%s has no TYPE header (got %q)", name, typ)
		}
	}
	// Busy seconds is derived (nanos/1e9), compared against the same
	// derivation rather than listed above.
	if v, ok := exp.Value("pv_engine_busy_seconds_total"); !ok || v != float64(stats.Engine.BusyNanos)/1e9 {
		t.Errorf("pv_engine_busy_seconds_total = %v, /stats busyNanos %d", v, stats.Engine.BusyNanos)
	}
}

// TestMetricsStatsParity runs a mixed workload — sync checks, a completed
// async job, completions, receipts — and requires /metrics to agree with
// /stats field for field; then restarts the engine over the same cache
// directory and requires parity again, now with the recovery gauges
// present.
func TestMetricsStatsParity(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	h1 := NewServer(e1)
	docs := mixedJobCorpus(t, e1, 30)
	postJSON(t, h1, "/batch", map[string]any{"documents": docs})
	postJSON(t, h1, "/batch?receipt=1", map[string]any{"documents": docs[:7]})
	postJSON(t, h1, "/complete", map[string]any{
		"schema": jobDTDB, "root": "b",
		"documents": []Doc{{ID: "c0", Content: `<b><y>t</y></b>`}},
	})
	id := submitAsync(t, h1, "/batch?receipt=1", docs)
	if info := pollJob(t, h1, id); info["state"] != "done" {
		t.Fatalf("job ended %v", info["state"])
	}
	scrapeParity(t, h1, e1.InstanceID())
	shutdownEngine(t, e1)

	e2 := openDurable(t, dir)
	defer e2.Close()
	if rec, ok := e2.JobRecovery(); !ok || rec.Served != 1 {
		t.Fatalf("recovery = %+v (ran %v)", rec, ok)
	}
	scrapeParity(t, NewServer(e2), e2.InstanceID())
}
