package engine

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/receipt"
)

// Verifiable verdict receipts: a batch's verdicts are committed into a
// deterministic Merkle tree (internal/receipt) whose root is a compact,
// tamper-evident fingerprint of every (document, schema, verdict,
// insertion count, content digest) tuple the engine produced. A client —
// or an auditor holding only the root — verifies any single document's
// verdict offline with receipt.Verify(root, leaf, proof): no engine, no
// schema, no cache. Receipt emission is opt-in per call
// (CheckBatchReceipt / ?receipt=1); the plain batch paths are untouched.
// On a disk-backed engine every emitted root is also appended to an
// anchor log under <CacheDir>/receipts, so roots survive restarts and
// GET /receipts re-serves them byte-equal.

// DocProof is one document's entry in a Receipt: the leaf (the claim) and
// the inclusion proof binding it to the receipt's root.
type DocProof struct {
	// Index is the document's position in the submitted batch.
	Index int `json:"index"`
	// Leaf is the committed claim: document id, schema ref, verdict,
	// insertion count and content digest.
	Leaf receipt.Leaf `json:"leaf"`
	// Proof is the versioned inclusion-proof record ("pvp1:...").
	Proof string `json:"proof"`
}

// Receipt is a batch's verifiable verdict commitment: the Merkle root
// over all verdicts plus one inclusion proof per document. Verify any
// entry offline with receipt.Verify(Root, Proofs[i].Leaf, Proofs[i].Proof).
type Receipt struct {
	// Root is the versioned root record ("pvr1:<hex>") committing to every
	// leaf (and to the batch size).
	Root string `json:"root"`
	// Count is the number of documents the root commits to.
	Count int `json:"count"`
	// Kind is the workload that produced the batch ("check" or "complete").
	Kind string `json:"kind"`
	// Anchored reports whether the root was appended to the engine's anchor
	// log; Seq/Time are the anchor record's coordinates when it was.
	Anchored bool      `json:"anchored,omitempty"`
	Seq      int64     `json:"seq,omitempty"`
	Time     time.Time `json:"time,omitempty"`
	// Proofs holds one entry per document, in batch order. Absent on the
	// root-only form served for receipts recovered across a restart.
	Proofs []DocProof `json:"proofs,omitempty"`
}

// Verify checks every proof in the receipt against its root, returning
// the indices that fail (nil when the receipt is fully consistent). It is
// stateless: a receipt from anywhere can be checked with no engine state.
func (r *Receipt) Verify() []int {
	var bad []int
	for i := range r.Proofs {
		if !receipt.Verify(r.Root, r.Proofs[i].Leaf, r.Proofs[i].Proof) {
			bad = append(bad, r.Proofs[i].Index)
		}
	}
	return bad
}

// Verdict strings committed into check-path leaves.
const (
	// VerdictValid marks a fully valid document.
	VerdictValid = "valid"
	// VerdictPotentiallyValid marks a potentially valid (completable)
	// document that is not yet valid.
	VerdictPotentiallyValid = "potentially-valid"
	// VerdictNotPotentiallyValid marks a well-formed document no insertion
	// sequence can complete.
	VerdictNotPotentiallyValid = "not-potentially-valid"
	// VerdictMalformed marks a document that failed lexically.
	VerdictMalformed = "malformed"
	// VerdictRoutingError marks a document that never reached a schema.
	VerdictRoutingError = "routing-error"
	// VerdictCompleted marks a completion-path document that was completed.
	VerdictCompleted = "completed"
	// VerdictAlreadyValid marks a completion-path document that needed no
	// insertion.
	VerdictAlreadyValid = "already-valid"
)

// checkVerdict maps a check Result onto its committed verdict string.
func checkVerdict(r *Result) string {
	switch {
	case IsRoutingError(r.Err):
		return VerdictRoutingError
	case r.Err != nil:
		return VerdictMalformed
	case r.Valid:
		return VerdictValid
	case r.PotentiallyValid:
		return VerdictPotentiallyValid
	}
	return VerdictNotPotentiallyValid
}

// completeVerdict maps a CompleteResult onto its committed verdict string.
func completeVerdict(r *CompleteResult) string {
	switch {
	case IsRoutingError(r.Err):
		return VerdictRoutingError
	case r.Err != nil:
		return VerdictMalformed
	case r.AlreadyValid:
		return VerdictAlreadyValid
	case r.Completed:
		return VerdictCompleted
	}
	return VerdictNotPotentiallyValid
}

// docLeaf builds the committed leaf for one document: the schema it was
// routed by (its own ref, else the batch default's registry ref), the
// verdict, the insertion count and the content digest.
func docLeaf(d *Doc, def *Schema, verdict string, insertions int64) receipt.Leaf {
	ref := d.SchemaRef
	if ref == "" && def != nil {
		ref = def.Ref
	}
	content := d.Bytes
	if content == nil {
		content = []byte(d.Content)
	}
	return receipt.Leaf{
		DocID:         d.ID,
		SchemaRef:     ref,
		Verdict:       verdict,
		Insertions:    insertions,
		ContentDigest: receipt.DigestContent(content),
	}
}

// anchorLog lazily opens the engine's anchor log under
// <CacheDir>/receipts; a memory-only engine (no CacheDir) anchors nothing
// and returns nil. The open error is sticky and surfaces on the first
// receipt build.
func (e *Engine) anchorLog() (*receipt.AnchorLog, error) {
	if e.cacheDir == "" {
		return nil, nil
	}
	e.anchorsOnce.Do(func() {
		e.anchors, e.anchorsErr = receipt.OpenAnchorLogFS(filepath.Join(e.cacheDir, "receipts"), e.fsys)
	})
	return e.anchors, e.anchorsErr
}

// Anchors lists every root the engine (and its predecessors on the same
// cache directory) anchored, oldest first. Memory-only engines return an
// empty list.
func (e *Engine) Anchors() ([]receipt.Anchor, error) {
	log, err := e.anchorLog()
	if err != nil || log == nil {
		return nil, err
	}
	return log.List()
}

// closeAnchors releases the anchor log, if one was opened.
func (e *Engine) closeAnchors() {
	e.anchorsOnce.Do(func() {}) // settle the lazy open
	if e.anchors != nil {
		_ = e.anchors.Close()
	}
}

// buildReceipt commits the batch's leaves: Merkle tree, root record, one
// proof per document (when withProofs), and an anchor-log append on
// disk-backed engines. batch names the async job for the anchor record
// ("" for synchronous calls). A zero-leaf batch has nothing to commit and
// returns nil.
func (e *Engine) buildReceipt(kind, batch string, leaves []receipt.Leaf, withProofs bool) (*Receipt, error) {
	if len(leaves) == 0 {
		return nil, nil
	}
	tree, err := receipt.Build(leaves)
	if err != nil {
		return nil, fmt.Errorf("engine: building receipt: %w", err)
	}
	rec := &Receipt{Root: tree.RootRecord(), Count: len(leaves), Kind: kind}
	if withProofs {
		rec.Proofs = make([]DocProof, len(leaves))
		for i := range leaves {
			p, perr := tree.Prove(i)
			if perr != nil {
				return nil, fmt.Errorf("engine: proving leaf %d: %w", i, perr)
			}
			rec.Proofs[i] = DocProof{Index: i, Leaf: leaves[i], Proof: p}
		}
	}
	e.receiptsBuilt.Add(1)
	log, err := e.anchorLog()
	if err != nil {
		return nil, fmt.Errorf("engine: opening anchor log: %w", err)
	}
	if log != nil {
		a, aerr := log.Append(receipt.Anchor{Kind: kind, Batch: batch, Leaves: len(leaves), Root: rec.Root})
		if aerr != nil {
			return nil, fmt.Errorf("engine: anchoring receipt root: %w", aerr)
		}
		rec.Anchored = true
		rec.Seq = a.Seq
		rec.Time = a.Time
		e.receiptsAnchored.Add(1)
	}
	return rec, nil
}

// CheckBatchReceipt is CheckBatch plus a verdict receipt: identical
// results and stats, and a Receipt committing every verdict to a Merkle
// root with one inclusion proof per document. The receipt is nil for an
// empty batch. Anchor-log failures surface as the error; the verdicts are
// still returned.
func (e *Engine) CheckBatchReceipt(s *Schema, docs []Doc) ([]Result, BatchStats, *Receipt, error) {
	results, stats := e.CheckBatch(s, docs)
	leaves := make([]receipt.Leaf, len(results))
	for i := range results {
		leaves[i] = docLeaf(&docs[i], s, checkVerdict(&results[i]), 0)
	}
	rec, err := e.buildReceipt("check", "", leaves, true)
	return results, stats, rec, err
}

// CompleteBatchReceipt is CompleteBatch plus a verdict receipt — the
// completion twin of CheckBatchReceipt; each leaf commits the completion
// verdict and the insertion count.
func (e *Engine) CompleteBatchReceipt(s *Schema, docs []Doc, withDiff bool) ([]CompleteResult, BatchStats, *Receipt, error) {
	results, stats := e.CompleteBatch(s, docs, withDiff)
	leaves := make([]receipt.Leaf, len(results))
	for i := range results {
		leaves[i] = docLeaf(&docs[i], s, completeVerdict(&results[i]), int64(results[i].Inserted))
	}
	rec, err := e.buildReceipt("complete", "", leaves, true)
	return results, stats, rec, err
}

// receiptCollector accumulates one async job's leaves across its chunk
// runner calls and builds the receipt when the last document lands. The
// manager runs a job's chunks sequentially on one worker, so the
// collector needs no locking; resumed recovered jobs skip their already
// durable chunks, never fill completely, and produce no receipt (their
// persisted root, if any, still serves).
type receiptCollector struct {
	e       *Engine
	kind    string
	batch   string
	leaves  []receipt.Leaf
	filled  int
	deliver func(*Receipt)
}

// add records one chunk's leaves and fires the build on completion.
func (c *receiptCollector) add(lo int, leaves []receipt.Leaf) {
	copy(c.leaves[lo:], leaves)
	c.filled += len(leaves)
	if c.filled != len(c.leaves) {
		return
	}
	rec, err := c.e.buildReceipt(c.kind, c.batch, c.leaves, true)
	if err != nil || rec == nil {
		// The verdicts themselves are intact; a receipt that cannot anchor
		// is dropped rather than failing the job.
		return
	}
	c.deliver(rec)
}

// receiptCell hands a built receipt to its job across the submit race:
// Submit queues the job before returning, so the runner can deliver
// before the submitter learns the job handle — whichever of attach and
// deliver comes second applies the receipt.
type receiptCell struct {
	mu  sync.Mutex
	job *jobs.Job
	rec *Receipt
}

// attach binds the job handle (called by the submitter once Submit
// returns).
func (c *receiptCell) attach(j *jobs.Job) {
	c.mu.Lock()
	c.job = j
	rec := c.rec
	c.mu.Unlock()
	if rec != nil {
		applyReceipt(j, rec)
	}
}

// deliver binds the built receipt (called by the runner's collector).
func (c *receiptCell) deliver(rec *Receipt) {
	c.mu.Lock()
	c.rec = rec
	j := c.job
	c.mu.Unlock()
	if j != nil {
		applyReceipt(j, rec)
	}
}

// applyReceipt encodes the receipt onto the job.
func applyReceipt(j *jobs.Job, rec *Receipt) {
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	j.SetReceipt(rec.Root, data)
}

// SubmitCheckBatchReceipt is SubmitCheckBatch with a verdict receipt: the
// job's runner additionally commits every verdict, and once the last
// chunk lands the job carries the receipt (Job.Receipt, Info.ReceiptRoot,
// GET /jobs/{id}/receipt). The root is persisted with the job's terminal
// record; proofs live for the job's retention only.
func (e *Engine) SubmitCheckBatchReceipt(s *Schema, docs []Doc) (*jobs.Job, error) {
	payload, err := e.encodeJobPayload("check", s, docs, false, true)
	if err != nil {
		return nil, err
	}
	cell := &receiptCell{}
	col := &receiptCollector{e: e, kind: "check", leaves: make([]receipt.Leaf, len(docs)), deliver: cell.deliver}
	j, err := e.jobs.Submit("check", len(docs), payload, e.checkRunner(s, docs, col))
	if err != nil {
		return nil, err
	}
	cell.attach(j)
	return j, nil
}

// SubmitCompleteBatchReceipt is SubmitCompleteBatch with a verdict
// receipt — the completion twin of SubmitCheckBatchReceipt.
func (e *Engine) SubmitCompleteBatchReceipt(s *Schema, docs []Doc, withDiff bool) (*jobs.Job, error) {
	payload, err := e.encodeJobPayload("complete", s, docs, withDiff, true)
	if err != nil {
		return nil, err
	}
	cell := &receiptCell{}
	col := &receiptCollector{e: e, kind: "complete", leaves: make([]receipt.Leaf, len(docs)), deliver: cell.deliver}
	j, err := e.jobs.Submit("complete", len(docs), payload, e.completeRunner(s, docs, withDiff, col))
	if err != nil {
		return nil, err
	}
	cell.attach(j)
	return j, nil
}
