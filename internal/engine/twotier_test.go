package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// TestEngineTwoTierDifferential pins that the DFA fast path — including
// the strict-validity shortcut that skips the tree pass — is invisible in
// engine verdicts: a fast engine and a DisableFastPath engine produce
// identical PotentiallyValid, Valid and Detail for 1000+ generated
// documents (valid, stripped, corrupted) across the fixture and random
// DTDs, plus the shortcut's corner cases (whitespace inside EMPTY
// elements, AllowAnyRoot with a non-schema root).
func TestEngineTwoTierDifferential(t *testing.T) {
	fast, err := Open(Config{Workers: 4, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := Open(Config{Workers: 4, VolatileJobs: true, DisableFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	type workload struct {
		src  string
		root string
		opts CompileOptions
		docs []Doc
	}
	rng := rand.New(rand.NewSource(406))
	var workloads []workload

	// Fixture DTDs plus random ones of every recursion class.
	type schemaCase struct {
		src  string
		root string
		opts CompileOptions
	}
	cases := []schemaCase{
		{dtd.Figure1, "r", CompileOptions{}},
		{dtd.Figure1, "r", CompileOptions{IgnoreWhitespaceText: true}},
		{dtd.Figure1, "r", CompileOptions{AllowAnyRoot: true}},
		{dtd.Play, "play", CompileOptions{}},
		{dtd.WeakRecursive, "p", CompileOptions{}},
		{dtd.T2, "a", CompileOptions{}},
	}
	for _, class := range []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong} {
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 8 + rng.Intn(8), Class: class})
		cases = append(cases, schemaCase{d.String(), "e0", CompileOptions{}})
	}
	for _, sc := range cases {
		d, err := dtd.Parse(sc.src)
		if err != nil {
			t.Fatal(err)
		}
		w := workload{src: sc.src, root: sc.root, opts: sc.opts}
		for i := 0; i < 120; i++ {
			doc := gen.GenValid(rng, d, sc.root, gen.DocOptions{MaxDepth: 6, MaxRepeat: 3})
			switch i % 4 {
			case 1:
				gen.Strip(rng, doc, 0.3)
			case 2:
				gen.Corrupt(rng, d, doc)
			case 3:
				gen.StripAll(doc)
			}
			w.docs = append(w.docs, Doc{ID: fmt.Sprintf("%s-%d", sc.root, i), Content: doc.String()})
		}
		workloads = append(workloads, w)
	}
	// Hand-written corners the generator cannot hit: checker-invisible
	// text inside EMPTY elements (the validator rejects it, the stream
	// checker never sees it) and a non-schema root under AllowAnyRoot.
	workloads = append(workloads,
		workload{src: dtd.Figure1, root: "r", opts: CompileOptions{IgnoreWhitespaceText: true}, docs: []Doc{
			{ID: "ws-in-empty", Content: "<r><a><b><d>t</d></b><c>y</c><d><e> </e></d></a></r>"},
			{ID: "valid", Content: "<r><a><b><d>t</d></b><c>y</c><d><e></e></d></a></r>"},
		}},
		workload{src: dtd.Figure1, root: "r", opts: CompileOptions{}, docs: []Doc{
			{ID: "cdata-in-empty", Content: "<r><a><b><d>t</d></b><c>y</c><d><e><![CDATA[]]></e></d></a></r>"},
		}},
		workload{src: dtd.Figure1, root: "r", opts: CompileOptions{AllowAnyRoot: true}, docs: []Doc{
			{ID: "anyroot-d", Content: "<d><e></e>t</d>"},
			{ID: "anyroot-r", Content: "<r><a><b><d>t</d></b><c>y</c><d><e></e></d></a></r>"},
		}},
	)

	total := 0
	for _, w := range workloads {
		fs, err := fast.Compile(DTDSource, w.src, w.root, w.opts)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := slow.Compile(DTDSource, w.src, w.root, w.opts)
		if err != nil {
			t.Fatal(err)
		}
		fr, _ := fast.CheckBatch(fs, w.docs)
		sr, _ := slow.CheckBatch(ss, w.docs)
		for i := range w.docs {
			if fr[i].PotentiallyValid != sr[i].PotentiallyValid ||
				fr[i].Valid != sr[i].Valid ||
				fr[i].Detail != sr[i].Detail ||
				(fr[i].Err != nil) != (sr[i].Err != nil) {
				t.Fatalf("doc %s (root %s, opts %+v): fast %+v vs slow %+v\n%s",
					w.docs[i].ID, w.root, w.opts, fr[i], sr[i], w.docs[i].Content)
			}
			total++
		}
	}
	if total < 1000 {
		t.Fatalf("differential corpus too small: %d documents, want >= 1000", total)
	}

	// The workload above is valid-heavy, so the fast engine must have
	// settled elements on the DFA lane (and the slow engine must never
	// have touched it).
	if st := fast.Stats(); st.FastPathHits == 0 {
		t.Fatal("fast engine recorded no fast-path hits over a valid-heavy corpus")
	} else if st.DFAStates == 0 {
		t.Fatal("fast engine reports no resident DFA states")
	}
	if st := slow.Stats(); st.FastPathHits != 0 || st.FastPathFallbacks != 0 || st.DFAStates != 0 {
		t.Fatalf("slow engine touched the fast path: %+v", st)
	}
}
