package engine

import (
	"io"

	"repro/internal/metrics"
)

// WriteMetrics writes the engine's whole observable state as a Prometheus
// text-format (0.0.4) exposition: everything GET /stats reports — engine
// lifetime counters, schema-store tiers, job-queue gauges, recovery
// outcome, receipt counters — as typed counter and gauge families, every
// sample labeled with the engine's instance id. GET /metrics serves this;
// the parity test pins that no /stats field is missing here.
func (e *Engine) WriteMetrics(out io.Writer) error {
	w := metrics.NewWriter(out, metrics.Label{Name: "instance", Value: e.instanceID})

	es := e.Stats()
	w.Gauge("pv_engine_workers", "Size of the engine's checking worker pool.", float64(es.Workers))
	w.Counter("pv_engine_docs_total", "Documents checked or completed over the engine's lifetime.", float64(es.Docs))
	w.Counter("pv_engine_potentially_valid_total", "Documents judged potentially valid.", float64(es.PotentiallyValid))
	w.Counter("pv_engine_valid_total", "Documents judged fully valid.", float64(es.Valid))
	w.Counter("pv_engine_malformed_total", "Documents rejected as malformed.", float64(es.Malformed))
	w.Counter("pv_engine_routing_errors_total", "Documents that never reached a schema.", float64(es.RoutingErrors))
	w.Counter("pv_engine_inserted_elements_total", "Elements inserted by the completion workload.", float64(es.Inserted))
	w.Counter("pv_engine_bytes_total", "Document bytes processed.", float64(es.Bytes))
	w.Counter("pv_engine_busy_seconds_total", "Wall-clock seconds spent inside batch checking.", float64(es.BusyNanos)/1e9)
	w.Counter("pv_engine_receipts_built_total", "Verdict receipts committed.", float64(es.ReceiptsBuilt))
	w.Counter("pv_engine_receipts_anchored_total", "Receipt roots appended to the anchor log.", float64(es.ReceiptsAnchored))
	w.Counter("pv_engine_fast_path_hits_total", "Elements settled entirely on the content-model DFA fast path.", float64(es.FastPathHits))
	w.Counter("pv_engine_fast_path_fallbacks_total", "Elements that fell back from the DFA fast path to a PV recognizer.", float64(es.FastPathFallbacks))
	w.Gauge("pv_engine_dfa_states", "Compiled content-model DFA states resident across the schema store.", float64(es.DFAStates))

	rs := e.Store().Stats()
	w.Gauge("pv_schema_store_size", "Compiled schemas resident in the registry.", float64(rs.Size))
	w.Gauge("pv_schema_store_capacity", "Registry capacity in schemas.", float64(rs.Capacity))
	w.Gauge("pv_schema_store_shards", "Registry shard count.", float64(rs.Shards))
	w.Counter("pv_schema_store_hits_total", "Registry cache hits.", float64(rs.Hits))
	w.Counter("pv_schema_store_misses_total", "Registry cache misses.", float64(rs.Misses))
	w.Counter("pv_schema_store_evictions_total", "Schemas evicted from the registry LRU.", float64(rs.Evictions))
	w.Counter("pv_schema_store_compiles_total", "Schema compilations.", float64(rs.Compiles))
	w.Counter("pv_schema_store_disk_loads_total", "Schemas resurrected from the disk tier.", float64(rs.DiskLoads))
	w.Counter("pv_schema_store_disk_discards_total", "Disk-tier entries discarded as stale or corrupt.", float64(rs.DiskDiscards))
	if rs.Disk != nil {
		w.Counter("pv_schema_disk_hits_total", "Disk-tier cache hits.", float64(rs.Disk.Hits))
		w.Counter("pv_schema_disk_misses_total", "Disk-tier cache misses.", float64(rs.Disk.Misses))
		w.Counter("pv_schema_disk_writes_total", "Disk-tier cache writes.", float64(rs.Disk.Writes))
		w.Counter("pv_schema_disk_errors_total", "Disk-tier I/O errors.", float64(rs.Disk.Errors))
	}

	js := e.Jobs().Stats()
	w.Gauge("pv_jobs_queued", "Async jobs waiting in the queue.", float64(js.Queued))
	w.Gauge("pv_jobs_running", "Async jobs currently running.", float64(js.Running))
	w.Gauge("pv_jobs_retained", "Jobs retained in the job table (all states).", float64(js.Retained))
	w.Counter("pv_jobs_submitted_total", "Async jobs accepted.", float64(js.Submitted))
	w.Counter("pv_jobs_completed_total", "Async jobs finished successfully.", float64(js.Completed))
	w.Counter("pv_jobs_failed_total", "Async jobs that failed.", float64(js.Failed))
	w.Counter("pv_jobs_canceled_total", "Async jobs canceled.", float64(js.Canceled))
	w.Counter("pv_jobs_rejected_total", "Async submissions rejected (queue full).", float64(js.Rejected))
	w.Counter("pv_jobs_reaped_total", "Finished jobs reaped after their retention TTL.", float64(js.Reaped))
	w.Counter("pv_jobs_recovered_total", "Jobs replayed from the persistent store at boot.", float64(js.Recovered))
	w.Gauge("pv_jobs_workers", "Async job worker count.", float64(js.Workers))
	w.Gauge("pv_jobs_queue_depth", "Async job queue capacity.", float64(js.QueueDepth))
	durable := 0.0
	if js.Durable {
		durable = 1
	}
	w.Gauge("pv_jobs_durable", "Whether job state survives a restart (1) or not (0).", durable)

	if rec, ok := e.JobRecovery(); ok {
		w.Gauge("pv_jobs_recovery_requeued", "Interrupted jobs re-queued by this process's boot replay.", float64(rec.Requeued))
		w.Gauge("pv_jobs_recovery_resumed", "Re-queued jobs that resumed from a durable chunk boundary.", float64(rec.Resumed))
		w.Gauge("pv_jobs_recovery_served", "Finished jobs re-registered for result serving at boot.", float64(rec.Served))
		w.Gauge("pv_jobs_recovery_failed", "Persisted jobs whose runner could not be rebuilt at boot.", float64(rec.Failed))
	}

	return w.Err()
}
