package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/validator"
)

// The disk-tier blob is an engine envelope around internal/core's compiled
// schema binary: the registry key fields (source hash, kind, root and the
// *requested* compile options — core stores the defaulted ones) plus the
// source length, so a blob found by content address alone (ResolveRef
// resurrection after a restart) rebuilds the full registry entry. The core
// payload carries its own version and checksum; the envelope adds a
// version byte of its own so either layer can evolve independently.

// envelopeVersion is the current engine envelope format version.
const envelopeVersion = 1

// envelopeMagic brands an engine schema envelope ("PV schema, envelope").
var envelopeMagic = [4]byte{'P', 'V', 'S', 'E'}

// envelope is a decoded disk blob: the registry key, the source length and
// the rehydrated schema artifact.
type envelope struct {
	key    key
	srcLen int
	schema *Schema
}

// encodeEnvelope wraps a compiled schema and its registry key into a disk
// blob.
func encodeEnvelope(k *key, srcLen int, s *Schema) ([]byte, error) {
	payload, err := s.Core.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(payload)+sha256.Size+len(k.root)+32)
	buf = append(buf, envelopeMagic[:]...)
	buf = binary.AppendUvarint(buf, envelopeVersion)
	buf = append(buf, k.hash[:]...)
	buf = binary.AppendUvarint(buf, uint64(k.kind))
	buf = binary.AppendUvarint(buf, uint64(len(k.root)))
	buf = append(buf, k.root...)
	var flags byte
	if k.opts.IgnoreWhitespaceText {
		flags |= 1
	}
	if k.opts.AllowAnyRoot {
		flags |= 2
	}
	if k.opts.DisableFastPath {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(k.opts.MaxDepth))
	buf = binary.AppendUvarint(buf, uint64(srcLen))
	return append(buf, payload...), nil
}

// decodeEnvelope parses a disk blob back into its key and schema,
// rebuilding the full validator from the decoded element table. Any
// structural damage fails decoding (the caller discards the blob and
// compiles from source).
func decodeEnvelope(data []byte) (*envelope, error) {
	if len(data) < len(envelopeMagic)+1 || [4]byte(data[:4]) != envelopeMagic {
		return nil, fmt.Errorf("engine: not a compiled-schema envelope")
	}
	pos := len(envelopeMagic)
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("engine: truncated schema envelope")
		}
		pos += n
		return v, nil
	}
	version, err := next()
	if err != nil {
		return nil, err
	}
	if version != envelopeVersion {
		return nil, fmt.Errorf("engine: schema envelope version %d (this build reads %d)", version, envelopeVersion)
	}
	env := &envelope{}
	if pos+sha256.Size > len(data) {
		return nil, fmt.Errorf("engine: truncated schema envelope")
	}
	copy(env.key.hash[:], data[pos:])
	pos += sha256.Size
	kind, err := next()
	if err != nil {
		return nil, err
	}
	if kind > uint64(XSDSource) {
		return nil, fmt.Errorf("engine: schema envelope names unknown source kind %d", kind)
	}
	env.key.kind = SourceKind(kind)
	rootLen, err := next()
	if err != nil {
		return nil, err
	}
	if rootLen > uint64(len(data)-pos) {
		return nil, fmt.Errorf("engine: truncated schema envelope")
	}
	env.key.root = string(data[pos : pos+int(rootLen)])
	pos += int(rootLen)
	if pos >= len(data) {
		return nil, fmt.Errorf("engine: truncated schema envelope")
	}
	flags := data[pos]
	pos++
	env.key.opts.IgnoreWhitespaceText = flags&1 != 0
	env.key.opts.AllowAnyRoot = flags&2 != 0
	env.key.opts.DisableFastPath = flags&4 != 0
	maxDepth, err := next()
	if err != nil {
		return nil, err
	}
	env.key.opts.MaxDepth = int(maxDepth)
	srcLen, err := next()
	if err != nil {
		return nil, err
	}
	env.srcLen = int(srcLen)

	c, err := core.UnmarshalBinary(data[pos:])
	if err != nil {
		return nil, err
	}
	if c.Root != env.key.root {
		return nil, fmt.Errorf("engine: schema envelope root %q does not match compiled root %q", env.key.root, c.Root)
	}
	// The validator is derived state over the decoded element table —
	// rebuilt here (Glushkov automata are cheap relative to the closure the
	// core payload spares us) rather than serialized.
	v, err := validator.New(c.DTD, c.Root)
	if err != nil {
		return nil, err
	}
	env.schema = NewSchema(c, v)
	return env, nil
}
