// Package engine is the concurrent checking subsystem: a schema registry
// that compiles DTD/XSD sources once and caches the compiled artifacts
// under an LRU bound, and a worker-pool batch checker that fans documents
// out over a bounded number of goroutines, reusing per-worker streaming
// checker state. It is the service-shaped layer the ROADMAP's production
// north star asks for: compile once, check a firehose of documents —
// Theorem 4's linear-time check only pays off at scale when the k-dependent
// compilation cost is amortized across many documents.
package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// SourceKind identifies the schema language of a registry source.
type SourceKind int

const (
	// DTDSource is classic DTD declaration syntax.
	DTDSource SourceKind = iota
	// XSDSource is the supported W3C XML Schema subset (internal/xsd).
	XSDSource
)

// String names the source kind ("dtd" / "xsd").
func (k SourceKind) String() string {
	if k == XSDSource {
		return "xsd"
	}
	return "dtd"
}

// ParseSourceKind converts a kind string ("dtd", "xsd", "" = dtd).
func ParseSourceKind(s string) (SourceKind, error) {
	switch s {
	case "", "dtd":
		return DTDSource, nil
	case "xsd":
		return XSDSource, nil
	}
	return 0, fmt.Errorf("engine: unknown schema kind %q (want \"dtd\" or \"xsd\")", s)
}

// CompileOptions mirrors core.Options; it is part of the cache key, so two
// compilations of the same source with different options are distinct
// artifacts.
type CompileOptions struct {
	MaxDepth             int
	IgnoreWhitespaceText bool
	AllowAnyRoot         bool
}

// key identifies one compiled artifact: source hash + root + options +
// schema language. Hashing (rather than keying on the full source) keeps
// the map cheap when clients resend multi-kilobyte schemas per request.
type key struct {
	hash [sha256.Size]byte
	kind SourceKind
	root string
	opts CompileOptions
}

// refOf digests the full key — source hash, kind, root and options — into
// the hex reference documents use to select a schema. Hashing the whole key
// (not just the source) keeps refs unambiguous when one source is compiled
// under several roots or option sets.
func refOf(k key) string {
	sum := sha256.Sum256(fmt.Appendf(nil, "%x|%d|%s|%+v", k.hash, k.kind, k.root, k.opts))
	return hex.EncodeToString(sum[:])
}

// entry is one registry slot. The sync.Once gives compile-once semantics
// under concurrent misses for the same key: the slot is published under the
// registry lock, but compilation runs outside it, so N racing clients cost
// one compilation, not N.
type entry struct {
	key    key
	ref    string // refOf(key), precomputed for ResolveRef prefix scans
	srcLen int
	once   sync.Once
	done   atomic.Bool // set after once.Do completes; guards schema/err reads
	schema *Schema
	err    error
	hits   int64 // guarded by the registry mutex
	elem   *list.Element
}

// DefaultCapacity is the registry's default LRU bound.
const DefaultCapacity = 64

// Registry caches compiled schemas keyed by (source hash, root, options),
// evicting least-recently-used entries beyond its capacity. Failed
// compilations are cached too (negative caching), so a hot loop of bad
// requests does not recompile per request.
type Registry struct {
	mu      sync.Mutex
	cap     int
	entries map[key]*entry
	lru     *list.List // front = most recently used; values are *entry

	hits      int64
	misses    int64
	evictions int64
	compiles  atomic.Int64
}

// RegistryStats is a snapshot of registry counters.
type RegistryStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Compiles  int64 `json:"compiles"`
}

// NewRegistry builds a registry bounded to capacity entries (<=0 selects
// DefaultCapacity).
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Registry{
		cap:     capacity,
		entries: make(map[key]*entry, capacity),
		lru:     list.New(),
	}
}

// Compile returns the compiled schema for (kind, src, root, opts),
// compiling at most once per key and touching the entry's LRU position.
func (r *Registry) Compile(kind SourceKind, src, root string, opts CompileOptions) (*Schema, error) {
	k := key{hash: sha256.Sum256([]byte(src)), kind: kind, root: root, opts: opts}

	r.mu.Lock()
	e, ok := r.entries[k]
	if ok {
		r.hits++
		e.hits++
		r.lru.MoveToFront(e.elem)
	} else {
		r.misses++
		e = &entry{key: k, ref: refOf(k), srcLen: len(src)}
		e.elem = r.lru.PushFront(e)
		r.entries[k] = e
		for r.lru.Len() > r.cap {
			oldest := r.lru.Back()
			victim := oldest.Value.(*entry)
			r.lru.Remove(oldest)
			delete(r.entries, victim.key)
			r.evictions++
		}
	}
	r.mu.Unlock()

	e.once.Do(func() {
		r.compiles.Add(1)
		e.schema, e.err = compile(kind, src, root, opts)
		if e.schema != nil {
			e.schema.Ref = e.ref
		}
		e.done.Store(true)
	})
	return e.schema, e.err
}

// RefMinLen is the shortest accepted schemaRef prefix, in hex digits.
const RefMinLen = 8

// ResolveRef finds the cached compiled schema whose reference (Schema.Ref)
// begins with ref, case-insensitively. A hit touches the entry's LRU
// position like a Compile hit. Entries still compiling are invisible —
// a ref only works once the schema it names has been compiled.
func (r *Registry) ResolveRef(ref string) (*Schema, error) {
	if len(ref) < RefMinLen {
		return nil, routingErrf("engine: schemaRef %q is too short (want at least %d hex digits)", ref, RefMinLen)
	}
	want := strings.ToLower(ref)
	r.mu.Lock()
	defer r.mu.Unlock()
	var found *entry
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !e.done.Load() || !strings.HasPrefix(e.ref, want) {
			continue
		}
		if found != nil {
			return nil, routingErrf("engine: ambiguous schemaRef %q (matches several cached schemas)", ref)
		}
		found = e
	}
	switch {
	case found == nil:
		return nil, routingErrf("engine: unknown schemaRef %q", ref)
	case found.err != nil:
		return nil, routingErrf("engine: schemaRef %q names a schema that failed to compile: %v", ref, found.err)
	}
	r.hits++
	found.hits++
	r.lru.MoveToFront(found.elem)
	return found.schema, nil
}

// compile builds the artifact: parse the schema source, compile the
// potential-validity core, and build the full validator.
func compile(kind SourceKind, src, root string, opts CompileOptions) (*Schema, error) {
	var d *dtd.DTD
	var err error
	switch kind {
	case XSDSource:
		d, err = xsd.Parse(src)
	default:
		d, err = dtd.Parse(src)
	}
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(d, root, core.Options{
		MaxDepth:             opts.MaxDepth,
		IgnoreWhitespaceText: opts.IgnoreWhitespaceText,
		AllowAnyRoot:         opts.AllowAnyRoot,
	})
	if err != nil {
		return nil, err
	}
	v, err := validator.New(d, root)
	if err != nil {
		return nil, err
	}
	return NewSchema(c, v), nil
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Size:      r.lru.Len(),
		Capacity:  r.cap,
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: r.evictions,
		Compiles:  r.compiles.Load(),
	}
}

// Len returns the number of cached entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// SchemaInfo describes one cached artifact for listings (GET /schemas).
type SchemaInfo struct {
	Hash        string `json:"hash"` // short hex prefix of the source hash
	Ref         string `json:"ref"`  // schemaRef prefix (full-key digest) for batch routing
	Kind        string `json:"kind"`
	Root        string `json:"root"`
	SourceBytes int    `json:"sourceBytes"`
	Elements    int    `json:"elements,omitempty"`
	Class       string `json:"class,omitempty"`
	Hits        int64  `json:"hits"`
	Error       string `json:"error,omitempty"`
}

// Schemas lists the cached entries, most recently used first. Entries still
// compiling are listed with zero detail fields.
func (r *Registry) Schemas() []SchemaInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SchemaInfo, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		info := SchemaInfo{
			Hash:        hex.EncodeToString(e.key.hash[:8]),
			Ref:         e.ref[:16],
			Kind:        e.key.kind.String(),
			Root:        e.key.root,
			SourceBytes: e.srcLen,
			Hits:        e.hits,
		}
		if e.done.Load() { // schema/err are immutable once done is set
			if e.err != nil {
				info.Error = e.err.Error()
			} else if e.schema != nil {
				info.Elements = len(e.schema.Core.DTD.Order)
				info.Class = e.schema.Core.Class().String()
			}
		}
		out = append(out, info)
	}
	return out
}
