// Package engine is the concurrent checking subsystem: a sharded two-tier
// schema store that compiles DTD/XSD sources once and caches the compiled
// artifacts (lock-striped in-memory shards over an optional disk-backed
// content-addressed cache), and a worker-pool batch checker that fans
// documents out over a bounded number of goroutines, reusing per-worker
// streaming checker state. It is the service-shaped layer the ROADMAP's
// production north star asks for: compile once, check a firehose of
// documents — Theorem 4's linear-time check only pays off at scale when
// the k-dependent compilation cost is amortized across many documents.
package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/schemastore"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// SourceKind identifies the schema language of a registry source.
type SourceKind int

const (
	// DTDSource is classic DTD declaration syntax.
	DTDSource SourceKind = iota
	// XSDSource is the supported W3C XML Schema subset (internal/xsd).
	XSDSource
)

// String names the source kind ("dtd" / "xsd").
func (k SourceKind) String() string {
	if k == XSDSource {
		return "xsd"
	}
	return "dtd"
}

// ParseSourceKind converts a kind string ("dtd", "xsd", "" = dtd).
func ParseSourceKind(s string) (SourceKind, error) {
	switch s {
	case "", "dtd":
		return DTDSource, nil
	case "xsd":
		return XSDSource, nil
	}
	return 0, fmt.Errorf("engine: unknown schema kind %q (want \"dtd\" or \"xsd\")", s)
}

// CompileOptions mirrors core.Options; it is part of the cache key, so two
// compilations of the same source with different options are distinct
// artifacts.
type CompileOptions struct {
	MaxDepth             int
	IgnoreWhitespaceText bool
	AllowAnyRoot         bool
	// DisableFastPath compiles the schema without content-model DFA
	// tables, forcing every check onto the PV recognizer (core.Options.
	// DisableFastPath). Part of the key: the fast and slow artifacts of
	// one source are distinct cache entries with distinct refs.
	DisableFastPath bool
}

// key identifies one compiled artifact: source hash + root + options +
// schema language. Hashing (rather than keying on the full source) keeps
// the map cheap when clients resend multi-kilobyte schemas per request.
type key struct {
	hash [sha256.Size]byte
	kind SourceKind
	root string
	opts CompileOptions
}

// refOf digests the full key — source hash, kind, root and options — into
// the hex reference documents use to select a schema. Hashing the whole key
// (not just the source) keeps refs unambiguous when one source is compiled
// under several roots or option sets. The same digest addresses the
// compiled blob in the disk tier.
func refOf(k key) string {
	sum := sha256.Sum256(fmt.Appendf(nil, "%x|%d|%s|%+v", k.hash, k.kind, k.root, k.opts))
	return hex.EncodeToString(sum[:])
}

// entry is one registry slot. The sync.Once gives compile-once semantics
// under concurrent misses for the same key: the slot is published under its
// shard's lock, but compilation (or disk rehydration) runs outside it, so N
// racing clients cost one compilation, not N.
type entry struct {
	key     key
	ref     string // refOf(key), precomputed for ResolveRef prefix scans
	srcLen  int
	once    sync.Once
	done    atomic.Bool // set after once.Do completes; guards schema/err reads
	schema  *Schema
	err     error
	hits    int64 // guarded by the shard mutex
	touched int64 // registry clock at last touch, for global MRU listings
	elem    *list.Element
}

// DefaultCapacity is the store's default total LRU bound (split across
// shards).
const DefaultCapacity = 64

// DefaultShards is the default shard count of a sharded store.
const DefaultShards = 8

// shard is one lock stripe of the registry: an independently locked LRU
// over the keys whose refs hash into it.
type shard struct {
	mu      sync.Mutex
	cap     int
	entries map[key]*entry
	lru     *list.List // front = most recently used; values are *entry

	hits      int64
	misses    int64
	evictions int64
}

// Registry is the sharded two-tier schema store: tier 1 is a set of
// lock-striped in-memory shards (key-hash partitioned, each with its own
// LRU bound), tier 2 an optional disk-backed content-addressed cache of
// compiled-schema blobs. Failed compilations are cached too (negative
// caching, memory tier only), so a hot loop of bad requests does not
// recompile per request. Registry implements SchemaStore.
type Registry struct {
	shards []*shard
	disk   *schemastore.Cache

	// clock stamps entry touches so Schemas() can present a global MRU
	// ordering without a global LRU list.
	clock atomic.Int64

	compiles atomic.Int64
	// diskLoads counts schemas rehydrated from the disk tier instead of
	// compiled; diskDiscards counts blobs discarded as corrupt or
	// version-mismatched (each falls back to a source compile).
	diskLoads    atomic.Int64
	diskDiscards atomic.Int64
}

// RegistryStats is a snapshot of store counters. DiskLoads counts schemas
// rehydrated from the disk tier without compiling; DiskDiscards counts
// cache blobs discarded as corrupt or version-mismatched; DFAStates sums
// the compiled fast-path DFA states across resident schemas; Disk carries
// the disk tier's own I/O counters and is nil when no cache directory is
// configured.
type RegistryStats struct {
	Size         int                `json:"size"`
	Capacity     int                `json:"capacity"`
	Shards       int                `json:"shards"`
	Hits         int64              `json:"hits"`
	Misses       int64              `json:"misses"`
	Evictions    int64              `json:"evictions"`
	Compiles     int64              `json:"compiles"`
	DiskLoads    int64              `json:"diskLoads,omitempty"`
	DiskDiscards int64              `json:"diskDiscards,omitempty"`
	DFAStates    int64              `json:"dfaStates"`
	Disk         *schemastore.Stats `json:"disk,omitempty"`
}

// NewRegistry builds a single-shard, memory-only registry bounded to
// capacity entries (<=0 selects DefaultCapacity) — the configuration whose
// LRU and stats behavior is exactly the pre-sharding registry's.
func NewRegistry(capacity int) *Registry {
	return NewShardedRegistry(capacity, 1, nil)
}

// NewShardedRegistry builds a registry striped over the given shard count
// (<=0 selects DefaultShards) with the total capacity split evenly across
// shards (<=0 selects DefaultCapacity), backed by the optional disk cache
// (nil for memory-only).
func NewShardedRegistry(capacity, shards int, disk *schemastore.Cache) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > capacity {
		shards = capacity
	}
	r := &Registry{shards: make([]*shard, shards), disk: disk}
	for i := range r.shards {
		// Exact split: the first capacity%shards shards take the remainder,
		// so the summed capacity equals the configured bound.
		perShard := capacity / shards
		if i < capacity%shards {
			perShard++
		}
		r.shards[i] = &shard{
			cap:     perShard,
			entries: make(map[key]*entry, perShard),
			lru:     list.New(),
		}
	}
	return r
}

// shardFor maps a ref (or any >=8-hex-digit prefix of one) to its shard.
// The shard is determined by the first eight hex digits — exactly the
// RefMinLen prefix every valid schemaRef carries — so ref resolution is
// always a shard-local lookup. ok is false for non-hex input.
func (r *Registry) shardFor(ref string) (*shard, bool) {
	var v uint32
	for i := 0; i < 8; i++ {
		c := ref[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		default:
			return nil, false
		}
	}
	return r.shards[v%uint32(len(r.shards))], true
}

// getOrAdd finds or inserts the entry for k under the shard lock, touching
// its LRU position and stats. New entries beyond the shard's capacity evict
// the shard's least-recently-used entry.
func (sh *shard) getOrAdd(k key, ref string, srcLen int, stamp int64) *entry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[k]
	if ok {
		sh.hits++
		e.hits++
		e.touched = stamp
		sh.lru.MoveToFront(e.elem)
		return e
	}
	sh.misses++
	e = &entry{key: k, ref: ref, srcLen: srcLen, touched: stamp}
	e.elem = sh.lru.PushFront(e)
	sh.entries[k] = e
	for sh.lru.Len() > sh.cap {
		oldest := sh.lru.Back()
		victim := oldest.Value.(*entry)
		sh.lru.Remove(oldest)
		delete(sh.entries, victim.key)
		sh.evictions++
	}
	return e
}

// Compile returns the compiled schema for (kind, src, root, opts),
// compiling at most once per key and touching the entry's LRU position.
// With a disk tier configured, a first miss tries to rehydrate the
// compiled blob by its content address before compiling from source, and a
// fresh compilation is persisted for future processes.
func (r *Registry) Compile(kind SourceKind, src, root string, opts CompileOptions) (*Schema, error) {
	k := key{hash: sha256.Sum256([]byte(src)), kind: kind, root: root, opts: opts}
	ref := refOf(k)
	sh, _ := r.shardFor(ref) // refs are hex by construction
	e := sh.getOrAdd(k, ref, len(src), r.clock.Add(1))
	e.once.Do(func() {
		defer e.done.Store(true)
		if s, ok := r.loadFromDisk(e.ref, &k); ok {
			e.schema = s
			return
		}
		r.compiles.Add(1)
		e.schema, e.err = compile(kind, src, root, opts)
		if e.schema != nil {
			e.schema.Ref = e.ref
			r.persist(e)
		}
	})
	return e.schema, e.err
}

// loadFromDisk tries to rehydrate the compiled schema addressed by ref from
// the disk tier, verifying that the envelope's key matches want (when
// non-nil). Undecodable or mismatched blobs are deleted and counted as
// discards; every failure is just a miss — the caller compiles from source.
func (r *Registry) loadFromDisk(ref string, want *key) (*Schema, bool) {
	if r.disk == nil {
		return nil, false
	}
	data, err := r.disk.Get(ref)
	if err != nil {
		return nil, false
	}
	env, err := decodeEnvelope(data)
	if err == nil && want != nil && env.key != *want {
		err = fmt.Errorf("engine: cached blob %s carries a different schema key", ref[:16])
	}
	if err != nil {
		r.diskDiscards.Add(1)
		_ = r.disk.Delete(ref)
		return nil, false
	}
	env.schema.Ref = ref
	r.diskLoads.Add(1)
	return env.schema, true
}

// persist writes a freshly compiled entry's blob to the disk tier (best
// effort: cache I/O failures are counted by the cache and never fail the
// compile).
func (r *Registry) persist(e *entry) {
	if r.disk == nil {
		return
	}
	data, err := encodeEnvelope(&e.key, e.srcLen, e.schema)
	if err == nil {
		_ = r.disk.Put(e.ref, data)
	}
}

// RefMinLen is the shortest accepted schemaRef prefix, in hex digits. It
// also covers the shard selector (the first eight digits), so resolving a
// ref never scans more than one shard.
const RefMinLen = 8

// ResolveRef finds the cached compiled schema whose reference (Schema.Ref)
// begins with ref, case-insensitively. A hit touches the entry's LRU
// position like a Compile hit. Entries still compiling are invisible —
// a ref only works once the schema it names has been compiled. A ref
// missing from the memory tier (evicted, or cached by an earlier process)
// is resurrected from the disk tier when one is configured.
func (r *Registry) ResolveRef(ref string) (*Schema, error) {
	if len(ref) < RefMinLen {
		return nil, routingErrf("engine: schemaRef %q is too short (want at least %d hex digits)", ref, RefMinLen)
	}
	want := strings.ToLower(ref)
	sh, ok := r.shardFor(want)
	if !ok {
		return nil, routingErrf("engine: unknown schemaRef %q", ref)
	}
	sh.mu.Lock()
	var found *entry
	for el := sh.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !e.done.Load() || !strings.HasPrefix(e.ref, want) {
			continue
		}
		if found != nil {
			sh.mu.Unlock()
			return nil, routingErrf("engine: ambiguous schemaRef %q (matches several cached schemas)", ref)
		}
		found = e
	}
	if found != nil {
		defer sh.mu.Unlock()
		if found.err != nil {
			return nil, routingErrf("engine: schemaRef %q names a schema that failed to compile: %v", ref, found.err)
		}
		sh.hits++
		found.hits++
		found.touched = r.clock.Add(1)
		sh.lru.MoveToFront(found.elem)
		return found.schema, nil
	}
	sh.mu.Unlock()
	return r.resurrectRef(sh, want, ref)
}

// resurrectRef serves a ResolveRef miss from the disk tier: the unique blob
// whose content address starts with the prefix is decoded and installed in
// the shard, so a restarted process keeps honoring refs handed out by its
// predecessor even though no source was ever re-sent.
func (r *Registry) resurrectRef(sh *shard, want, orig string) (*Schema, error) {
	if r.disk == nil {
		return nil, routingErrf("engine: unknown schemaRef %q", orig)
	}
	fullRef, data, err := r.disk.FindByPrefix(want)
	if err != nil {
		if err == schemastore.ErrAmbiguous {
			return nil, routingErrf("engine: ambiguous schemaRef %q (matches several cached schemas)", orig)
		}
		return nil, routingErrf("engine: unknown schemaRef %q", orig)
	}
	env, err := decodeEnvelope(data)
	if err != nil || refOf(env.key) != fullRef {
		r.diskDiscards.Add(1)
		_ = r.disk.Delete(fullRef)
		return nil, routingErrf("engine: unknown schemaRef %q", orig)
	}
	env.schema.Ref = fullRef
	r.diskLoads.Add(1)
	e := sh.getOrAdd(env.key, fullRef, env.srcLen, r.clock.Add(1))
	// If a racing Compile for the same key got to the once first, Do waits
	// for it and that artifact wins; the one decoded here is dropped.
	e.once.Do(func() {
		e.schema = env.schema
		e.done.Store(true)
	})
	if e.err != nil {
		return nil, routingErrf("engine: schemaRef %q names a schema that failed to compile: %v", orig, e.err)
	}
	return e.schema, nil
}

// compile builds the artifact: parse the schema source, compile the
// potential-validity core, and build the full validator.
func compile(kind SourceKind, src, root string, opts CompileOptions) (*Schema, error) {
	var d *dtd.DTD
	var err error
	switch kind {
	case XSDSource:
		d, err = xsd.Parse(src)
	default:
		d, err = dtd.Parse(src)
	}
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(d, root, core.Options{
		MaxDepth:             opts.MaxDepth,
		IgnoreWhitespaceText: opts.IgnoreWhitespaceText,
		AllowAnyRoot:         opts.AllowAnyRoot,
		DisableFastPath:      opts.DisableFastPath,
	})
	if err != nil {
		return nil, err
	}
	v, err := validator.New(d, root)
	if err != nil {
		return nil, err
	}
	return NewSchema(c, v), nil
}

// Stats returns an aggregate snapshot of the store's counters across all
// shards (plus the disk tier's, when configured).
func (r *Registry) Stats() RegistryStats {
	st := RegistryStats{
		Shards:       len(r.shards),
		Compiles:     r.compiles.Load(),
		DiskLoads:    r.diskLoads.Load(),
		DiskDiscards: r.diskDiscards.Load(),
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		st.Size += sh.lru.Len()
		st.Capacity += sh.cap
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if e.done.Load() && e.schema != nil { // schema is immutable once done
				st.DFAStates += int64(e.schema.Core.FastPathStates())
			}
		}
		sh.mu.Unlock()
	}
	if r.disk != nil {
		ds := r.disk.Stats()
		st.Disk = &ds
	}
	return st
}

// Len returns the number of cached entries across all shards.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// SchemaInfo describes one cached artifact for listings (GET /schemas).
type SchemaInfo struct {
	Hash        string `json:"hash"` // short hex prefix of the source hash
	Ref         string `json:"ref"`  // schemaRef prefix (full-key digest) for batch routing
	Kind        string `json:"kind"`
	Root        string `json:"root"`
	SourceBytes int    `json:"sourceBytes"`
	Elements    int    `json:"elements,omitempty"`
	Class       string `json:"class,omitempty"`
	Hits        int64  `json:"hits"`
	Error       string `json:"error,omitempty"`
}

// Schemas lists the cached entries, most recently used first (across all
// shards, by touch order). Entries still compiling are listed with zero
// detail fields.
func (r *Registry) Schemas() []SchemaInfo {
	type stamped struct {
		info    SchemaInfo
		touched int64
	}
	var all []stamped
	for _, sh := range r.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			info := SchemaInfo{
				Hash:        hex.EncodeToString(e.key.hash[:8]),
				Ref:         e.ref[:16],
				Kind:        e.key.kind.String(),
				Root:        e.key.root,
				SourceBytes: e.srcLen,
				Hits:        e.hits,
			}
			if e.done.Load() { // schema/err are immutable once done is set
				if e.err != nil {
					info.Error = e.err.Error()
				} else if e.schema != nil {
					info.Elements = len(e.schema.Core.DTD.Order)
					info.Class = e.schema.Core.Class().String()
				}
			}
			all = append(all, stamped{info: info, touched: e.touched})
		}
		sh.mu.Unlock()
	}
	// Insertion sort by descending touch stamp: listings are small (LRU
	// bounded) and this keeps the MRU-first contract of the single-mutex
	// registry.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j-1].touched < all[j].touched; j-- {
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	out := make([]SchemaInfo, len(all))
	for i, s := range all {
		out[i] = s.info
	}
	return out
}
