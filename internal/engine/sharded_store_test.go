package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// The tests in this file keep several engines open over one cache
// directory at the same time (the differential comparisons need the cold
// engine alive next to the warm one). That is exactly what the job WAL's
// single-writer lock forbids, and none of these tests exercise jobs —
// hence VolatileJobs on every Open.

// TestDiskTierWarmStart pins the tentpole's cold-start contract: a first
// engine compiles and persists its schemas; a second engine over the same
// cache directory rehydrates every one of them with zero source
// compilations; and a third resolves a schemaRef it has never seen a
// source for (disk resurrection). Verdicts — including the full-validity
// bit, whose validator is rebuilt at decode time — are differentially
// identical to the freshly compiled engine's over a generated mixed
// corpus.
func TestDiskTierWarmStart(t *testing.T) {
	dir := t.TempDir()
	fixtures := []struct {
		src, root string
		opts      CompileOptions
	}{
		{dtd.Play, "play", CompileOptions{}},
		{dtd.Figure1, "r", CompileOptions{}},
		{dtd.Figure1, "r", CompileOptions{MaxDepth: 5, IgnoreWhitespaceText: true}},
		{dtd.TEILite, "TEI", CompileOptions{}},
	}

	e1, err := Open(Config{Workers: 2, CacheDir: dir, Shards: 4, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]string, len(fixtures))
	for i, fx := range fixtures {
		s, err := e1.Compile(DTDSource, fx.src, fx.root, fx.opts)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = s.Ref
	}
	st := e1.Store().Stats()
	if st.Compiles != int64(len(fixtures)) || st.DiskLoads != 0 {
		t.Fatalf("cold engine stats = %+v", st)
	}
	if st.Disk == nil || st.Disk.Writes != int64(len(fixtures)) {
		t.Fatalf("disk stats = %+v", st.Disk)
	}

	// Second start, warm directory: every Compile must rehydrate.
	e2, err := Open(Config{Workers: 2, CacheDir: dir, Shards: 4, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, fx := range fixtures {
		s, err := e2.Compile(DTDSource, fx.src, fx.root, fx.opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.Ref != refs[i] {
			t.Fatalf("fixture %d: warm ref %s != cold ref %s", i, s.Ref[:16], refs[i][:16])
		}
	}
	st = e2.Store().Stats()
	if st.Compiles != 0 || st.DiskLoads != int64(len(fixtures)) {
		t.Fatalf("warm start must not compile: %+v", st)
	}

	// Differential: rehydrated artifacts give byte-identical verdicts.
	rng := rand.New(rand.NewSource(42))
	d := dtd.MustParse(dtd.Play)
	docs := make([]Doc, 200)
	for i := range docs {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 6, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.4)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs[i] = Doc{ID: fmt.Sprint(i), Content: doc.String()}
	}
	s1, _ := e1.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	s2, _ := e2.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	r1, _ := e1.CheckBatch(s1, docs)
	r2, _ := e2.CheckBatch(s2, docs)
	for i := range r1 {
		if r1[i].PotentiallyValid != r2[i].PotentiallyValid || r1[i].Valid != r2[i].Valid ||
			(r1[i].Err != nil) != (r2[i].Err != nil) {
			t.Fatalf("doc %d: cold %+v vs warm %+v", i, r1[i], r2[i])
		}
	}

	// Third start: resolve a ref with no source ever submitted.
	e3, err := Open(Config{Workers: 2, CacheDir: dir, Shards: 4, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e3.Store().ResolveRef(refs[0][:RefMinLen])
	if err != nil {
		t.Fatalf("disk resurrection failed: %v", err)
	}
	if rs.Ref != refs[0] {
		t.Fatalf("resurrected ref %s, want %s", rs.Ref[:16], refs[0][:16])
	}
	res := e3.Check(nil, Doc{ID: "routed", Content: `<play><title>t</title></play>`, SchemaRef: refs[0][:12]})
	if res.Err != nil || !res.PotentiallyValid {
		t.Fatalf("routed check after resurrection: %+v", res)
	}
	st = e3.Store().Stats()
	if st.Compiles != 0 || st.DiskLoads == 0 {
		t.Fatalf("resurrection must not compile: %+v", st)
	}
}

// TestDiskTierCorruptionFallsBack pins the failure discipline: a damaged
// blob is discarded (and deleted) and the schema silently recompiled from
// source; a resurrection attempt against a damaged blob is an unknown-ref
// routing error, not a crash.
func TestDiskTierCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Workers: 2, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e1.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blobPath := filepath.Join(dir, s.Ref[:2], s.Ref+".pvsc")
	if err := os.WriteFile(blobPath, []byte("garbage, not a schema"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Config{Workers: 2, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e2.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatalf("corrupt blob must fall back to compile: %v", err)
	}
	if s2.Ref != s.Ref {
		t.Fatalf("ref changed across corruption fallback")
	}
	st := e2.Store().Stats()
	if st.Compiles != 1 || st.DiskDiscards != 1 || st.DiskLoads != 0 {
		t.Fatalf("fallback stats = %+v", st)
	}
	// The recompile re-persisted a good blob; a fresh engine loads it.
	e3, err := Open(Config{Workers: 2, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Compile(DTDSource, dtd.Play, "play", CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := e3.Store().Stats(); st.Compiles != 0 || st.DiskLoads != 1 {
		t.Fatalf("post-repair stats = %+v", st)
	}

	// Resurrection against damage: corrupt again, resolve by prefix only.
	if err := os.WriteFile(blobPath, []byte("garbage again"), 0o644); err != nil {
		t.Fatal(err)
	}
	e4, err := Open(Config{Workers: 2, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e4.Store().ResolveRef(s.Ref[:12]); !IsRoutingError(err) {
		t.Fatalf("resurrecting a corrupt blob = %v, want routing error", err)
	}
	if _, statErr := os.Stat(blobPath); !os.IsNotExist(statErr) {
		t.Errorf("corrupt blob should have been deleted")
	}
}

// TestDiskTierStaleVersionRecompiles pins the codec version-bump
// discipline: a disk blob whose core payload carries an older
// BinaryVersion (here: a pre-fast-path version 1 blob, crafted by patching
// a good blob's version varint and re-sealing its CRC) is discarded on
// load and the schema recompiled from source — stale schemastore caches
// can never smuggle in DFA-less artifacts under the current version.
func TestDiskTierStaleVersionRecompiles(t *testing.T) {
	dir := t.TempDir()
	e1, err := Open(Config{Workers: 2, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e1.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blobPath := filepath.Join(dir, s.Ref[:2], s.Ref+".pvsc")
	blob, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	// The core payload starts at the "PVSC" magic inside the engine
	// envelope; its version uvarint is the byte after the magic (small
	// versions are single-byte uvarints), and the payload ends in a CRC32
	// of everything before the checksum.
	idx := bytes.Index(blob, []byte("PVSC"))
	if idx < 0 {
		t.Fatal("no core payload magic in the disk blob")
	}
	payload := blob[idx:]
	if payload[4] != 2 {
		t.Fatalf("payload version byte = %d, want 2 (update this test alongside BinaryVersion)", payload[4])
	}
	payload[4] = 1
	binary.LittleEndian.PutUint32(payload[len(payload)-4:], crc32.ChecksumIEEE(payload[:len(payload)-4]))
	if err := os.WriteFile(blobPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Config{Workers: 2, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e2.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatalf("stale-version blob must fall back to compile: %v", err)
	}
	if s2.Ref != s.Ref {
		t.Fatalf("ref changed across the version fallback")
	}
	if !s2.Core.FastPathEnabled() {
		t.Fatal("recompiled schema lost its DFA fast path")
	}
	st := e2.Store().Stats()
	if st.Compiles != 1 || st.DiskDiscards != 1 || st.DiskLoads != 0 {
		t.Fatalf("stale-version fallback stats = %+v", st)
	}
	res := e2.Check(nil, Doc{ID: "d", Content: `<play><title>t</title></play>`, SchemaRef: s.Ref})
	if res.Err != nil || !res.PotentiallyValid {
		t.Fatalf("check after version fallback: %+v", res)
	}
	// The recompile re-persisted a current-version blob; a fresh engine
	// loads it clean.
	e3, err := Open(Config{Workers: 2, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Compile(DTDSource, dtd.Play, "play", CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := e3.Store().Stats(); st.Compiles != 0 || st.DiskLoads != 1 {
		t.Fatalf("post-reseal stats = %+v", st)
	}
}

// TestShardedResolveRefShardLocal compiles a population of schemas across
// many shards and resolves every one by its minimum-length prefix — the
// shard selector and the prefix scan must agree for every ref.
func TestShardedResolveRefShardLocal(t *testing.T) {
	r := NewShardedRegistry(64, 8, nil)
	for i := 0; i < 24; i++ {
		s, err := r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{MaxDepth: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ResolveRef(s.Ref[:RefMinLen])
		if err != nil || got != s {
			t.Fatalf("schema %d: ResolveRef(%s) = %v, %v", i, s.Ref[:RefMinLen], got, err)
		}
	}
	if _, err := r.ResolveRef("zzzzzzzz"); !IsRoutingError(err) {
		t.Errorf("non-hex ref must be a routing error")
	}
	if st := r.Stats(); st.Shards != 8 || st.Size != 24 {
		t.Errorf("stats = %+v", st)
	}
}

// storeScript drives one deterministic op mix against a registry, either
// from 8 concurrent goroutines or sequentially from one. The op totals are
// order-independent by construction: the hot phase never exceeds any
// shard's capacity (12 hot keys vs a per-shard cap of 12, so no eviction
// can disturb the hit counts), a barrier separates it from the cold phase,
// and each cold (evicting) key is compiled exactly once by exactly one
// goroutine — per-shard insert and eviction totals are then independent of
// interleaving, so the concurrent run must land on exactly the sequential
// run's counters.
func storeScript(r *Registry, parallel bool) {
	const (
		goroutines = 8
		rounds     = 5
		hotKeys    = 12
		coldKeys   = 40
	)
	hot := func() {
		for round := 0; round < rounds; round++ {
			for i := 0; i < hotKeys; i++ {
				s, err := r.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{MaxDepth: i + 1})
				if err != nil {
					panic(err)
				}
				if _, err := r.ResolveRef(s.Ref[:RefMinLen]); err != nil {
					panic(err)
				}
			}
		}
	}
	cold := func(g int) {
		for i := g; i < coldKeys; i += goroutines {
			if _, err := r.Compile(DTDSource, dtd.Play, "play", CompileOptions{MaxDepth: i + 1}); err != nil {
				panic(err)
			}
		}
	}
	if !parallel {
		for g := 0; g < goroutines; g++ {
			hot()
		}
		for g := 0; g < goroutines; g++ {
			cold(g)
		}
		return
	}
	each := func(fn func(g int)) {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				fn(g)
			}(g)
		}
		wg.Wait()
	}
	each(func(int) { hot() })
	each(cold) // barrier above: evictions only start once the hot phase is done
}

// TestShardedStoreConcurrentExactStats hammers the sharded store with
// parallel Compile/ResolveRef/evict traffic from 8 goroutines (run under
// -race in CI) and pins hits, misses, evictions and compiles to the exact
// totals of an identical sequential replay — compile-once, per-shard LRU
// accounting and ref resolution must all be deterministic under
// concurrency.
func TestShardedStoreConcurrentExactStats(t *testing.T) {
	// A per-shard cap of 12 means the 12-key hot phase can never evict (no
	// matter how the refs hash), while the 52 total keys guarantee at least
	// one shard overflows during the cold phase (pigeonhole: 52/4 > 12).
	const capacity, shards = 48, 4
	concurrent := NewShardedRegistry(capacity, shards, nil)
	sequential := NewShardedRegistry(capacity, shards, nil)
	storeScript(concurrent, true)
	storeScript(sequential, false)

	got, want := concurrent.Stats(), sequential.Stats()
	if got != want {
		t.Fatalf("concurrent stats diverge from sequential replay:\n  concurrent %+v\n  sequential %+v", got, want)
	}
	// Pin the arithmetic, not just the equality: 12 hot keys miss once each
	// and 40 cold keys miss once each; every other hot Compile is a hit and
	// every ResolveRef is a hit (8 goroutines × 5 rounds × 12 keys, twice,
	// minus the 12 first-touch misses).
	const hotOps = 8 * 5 * 12
	if want.Misses != 12+40 || want.Hits != hotOps-12+hotOps || want.Compiles != 12+40 {
		t.Fatalf("sequential replay totals unexpected: %+v", want)
	}
	if want.Evictions == 0 || want.Evictions != want.Misses-int64(want.Size) {
		t.Fatalf("evictions not exercised or identity violated: %+v", want)
	}
}
