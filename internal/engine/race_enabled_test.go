//go:build race

package engine

// raceEnabled reports whether the race detector is on; allocation-count
// pins skip under it (instrumentation allocates).
const raceEnabled = true
