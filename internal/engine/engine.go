package engine

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/faultfs"
	"repro/internal/jobs"
	"repro/internal/jobs/jobstore"
	"repro/internal/jobs/walstore"
	"repro/internal/receipt"
	"repro/internal/schemastore"
	"repro/internal/validator"
)

// Schema is one compiled checking artifact: the potential-validity core,
// the full validator, and pools of reusable streaming checkers and
// completers. A Schema is safe for concurrent use; the pools keep
// per-worker checker and completer state off the allocator on the hot
// path.
type Schema struct {
	Core  *core.Schema
	Valid *validator.Validator

	// Ref is the full hex digest of the schema's registry key hash, set by
	// Registry.Compile. Documents in a mixed batch select their schema by
	// (a prefix of) this reference. Empty for schemas built outside a
	// registry.
	Ref string

	checkers   sync.Pool
	completers sync.Pool
}

// NewSchema wraps an already compiled core schema and validator for use
// with the engine. The root-package API builds these for every pv.Schema.
func NewSchema(c *core.Schema, v *validator.Validator) *Schema {
	s := &Schema{Core: c, Valid: v}
	s.checkers.New = func() any { return c.NewStreamChecker() }
	s.completers.New = func() any { return complete.New(c) }
	return s
}

// Doc is one batch input: an identifier (a path, a queue key — anything)
// and the XML content. Content and Bytes are alternatives: when Bytes is
// non-nil it is the document and the zero-copy byte path checks it without
// ever materializing a string; otherwise Content is checked on the string
// path. SchemaRef optionally routes the document to a registry-cached
// schema (a prefix of Schema.Ref, at least RefMinLen hex digits), letting
// one batch carry a mixed multi-schema firehose.
type Doc struct {
	ID        string `json:"id"`
	Content   string `json:"content,omitempty"`
	Bytes     []byte `json:"-"`
	SchemaRef string `json:"schemaRef,omitempty"`
}

// Size returns the payload length in bytes.
func (d *Doc) Size() int {
	if d.Bytes != nil {
		return len(d.Bytes)
	}
	return len(d.Content)
}

// Result is the verdict for one document. It mirrors the sequential
// CheckString contract: Err is set for lexical/well-formedness problems (the
// document has no verdict); otherwise PotentiallyValid and Valid carry the
// verdict and Detail explains the first potential-validity violation.
type Result struct {
	ID               string
	Index            int
	PotentiallyValid bool
	Valid            bool
	Detail           string
	Err              error
	Bytes            int
}

// BatchStats aggregates one CheckBatch or CompleteBatch call. Malformed
// counts documents that failed lexically; RoutingErrors counts documents
// that never reached a schema (bad schemaRef, no default) — a
// configuration signal, not a data-quality one. On the completion path,
// PotentiallyValid counts completable documents, Valid the already-valid
// ones, and Inserted the total elements inserted across the batch.
type BatchStats struct {
	Docs             int           `json:"docs"`
	PotentiallyValid int           `json:"potentiallyValid"`
	Valid            int           `json:"valid"`
	Malformed        int           `json:"malformed"`
	RoutingErrors    int           `json:"routingErrors,omitempty"`
	Inserted         int64         `json:"inserted,omitempty"`
	Bytes            int64         `json:"bytes"`
	Workers          int           `json:"workers"`
	Elapsed          time.Duration `json:"elapsedNs"`
	DocsPerSec       float64       `json:"docsPerSec"`
	MBPerSec         float64       `json:"mbPerSec"`
}

// tally classifies one result into the stats counters (bytes + verdict) —
// the single source of truth for verdict accounting, shared by CheckBatch,
// the lifetime counters and the streaming endpoint.
func (s *BatchStats) tally(r *Result) {
	s.Bytes += int64(r.Bytes)
	switch {
	case IsRoutingError(r.Err):
		s.RoutingErrors++
	case r.Err != nil:
		s.Malformed++
	case r.Valid:
		s.Valid++
		s.PotentiallyValid++
	case r.PotentiallyValid:
		s.PotentiallyValid++
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds batch concurrency; <=0 selects GOMAXPROCS.
	Workers int
	// CacheSize bounds the schema store's total in-memory capacity (split
	// across shards); <=0 selects DefaultCapacity.
	CacheSize int
	// Shards is the schema store's lock-stripe count; <=0 selects
	// DefaultShards. 1 reproduces the single-mutex registry exactly.
	Shards int
	// CacheDir enables the disk tier: compiled schemas are persisted as
	// content-addressed blobs under this directory and rehydrated (instead
	// of recompiled) on later misses — including by freshly started
	// processes. Empty disables the tier.
	CacheDir string
	// PVOnly skips the full-validity bit (which needs a tree parse of every
	// potentially valid document) — the fastest mode for firehose filtering.
	PVOnly bool
	// DisableFastPath makes every schema this engine compiles skip the
	// content-model DFA fast path, running the PV recognizer for every
	// element (engine-wide CompileOptions.DisableFastPath). Verdicts are
	// identical; the knob exists for apples-to-apples benching and as an
	// operational escape hatch.
	DisableFastPath bool
	// JobWorkers bounds how many async jobs execute concurrently (each
	// job's chunks still share the engine-wide Workers semaphore, so this
	// bounds job-level parallelism, not CPU use); <=0 selects 2.
	JobWorkers int
	// JobQueueDepth bounds async jobs accepted but not yet running; a full
	// queue rejects submission (ErrJobQueueFull, HTTP 429). <=0 selects 64.
	JobQueueDepth int
	// JobResultTTL is how long a finished async job and its buffered
	// results are retained before reaping (a reaped job answers 404); <=0
	// selects 15 minutes.
	JobResultTTL time.Duration
	// VolatileJobs opts out of job durability: with a CacheDir the engine
	// defaults to a write-ahead submission log under <CacheDir>/jobs (jobs
	// survive a restart: finished ones are re-served, interrupted ones
	// re-run); setting this keeps job state in-process only.
	VolatileJobs bool
	// JobWALNoSync disables the fsync-on-submit of the job WAL, trading
	// the machine-crash guarantee for submit latency (a process crash
	// alone loses nothing either way — the page cache survives it).
	JobWALNoSync bool
	// MaxDocBytes caps one document on the NDJSON stream routes (/stream,
	// /complete/stream, async job chunks share the same line-length bound);
	// <=0 keeps the MaxDocumentBytes default (64MB). The /check/raw route is
	// never capped — it exists precisely for documents beyond any cap.
	MaxDocBytes int
	// StreamBufBytes is the sliding-window size of the bounded-memory reader
	// path (CheckReader, /check/raw); <=0 selects xmltext.DefaultChunkSize
	// (256KB). X13 (bench.StreamingMemory) prices this knob.
	StreamBufBytes int
	// FS is the filesystem seam under the engine's durable tier — the
	// compiled-schema disk cache, the job WAL, and the receipt anchor log
	// all perform their I/O through it. Nil selects the real filesystem;
	// crash-consistency tests inject a fault-injecting implementation.
	FS faultfs.FS
	// JobStore overrides the job-event store entirely (a custom
	// jobstore.Store implementation — e.g. a shared store in tests, or a
	// future database backend). When set, CacheDir/VolatileJobs do not
	// influence job persistence, but a durable JobStore still requires a
	// CacheDir: recovered results are re-served from write-through files
	// under <CacheDir>/jobs/results, and without that directory every
	// replayed done job would degrade to failed (Open rejects the
	// combination). The engine owns the store and closes it.
	JobStore jobstore.Store
}

// Engine is the concurrent checking front end: a sharded schema store plus
// a worker pool configuration and lifetime counters.
type Engine struct {
	store       SchemaStore
	reg         *Registry // the built-in store, when store is one
	jobs        *jobs.Manager
	workers     int
	pvOnly      bool
	noFastPath  bool // Config.DisableFastPath: compile every schema slow-tier only
	maxDocBytes int  // per-document cap on the NDJSON stream routes
	streamBuf   int  // CheckReader sliding-window size; 0 = xmltext default
	// recovery holds the replay outcome when the engine recovered jobs
	// from a persistent store at Open (recovered reports whether it did).
	recovery  jobs.RecoveryStats
	recovered bool
	// sem bounds checking concurrency engine-wide, not per batch: N
	// concurrent CheckBatch calls (pvserve requests) share the same
	// `workers` slots instead of multiplying them.
	sem chan struct{}

	// cacheDir is Config.CacheDir; the receipt anchor log lives under it
	// (lazily opened on the first receipt build). fsys is the filesystem
	// seam (Config.FS) every durable component was built over.
	cacheDir    string
	fsys        faultfs.FS
	instanceID  string
	anchorsOnce sync.Once
	anchors     *receipt.AnchorLog
	anchorsErr  error

	docs      atomic.Int64
	pv        atomic.Int64
	valid     atomic.Int64
	malformed atomic.Int64
	routing   atomic.Int64
	inserted  atomic.Int64
	bytes     atomic.Int64
	busyNanos atomic.Int64 // wall-clock spent inside CheckBatch calls

	// fastHits / fastFallbacks count elements settled entirely on the DFA
	// fast path vs elements that fell back to a PV recognizer, across all
	// checking paths.
	fastHits      atomic.Int64
	fastFallbacks atomic.Int64

	receiptsBuilt    atomic.Int64
	receiptsAnchored atomic.Int64
}

// New builds an engine. It panics when Config.CacheDir is set but cannot
// be opened — only possible with a disk tier configured; use Open to
// handle that error.
func New(cfg Config) *Engine {
	e, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Open builds an engine, reporting a disk-tier cache directory that cannot
// be created or opened as an error.
func Open(cfg Config) (*Engine, error) {
	if cfg.JobStore != nil && cfg.JobStore.Durable() && cfg.CacheDir == "" {
		// Fail fast: without the write-through results directory a durable
		// store's recovery degrades every replayed done job to failed
		// ("recovered results incomplete") and re-runs interrupted ones
		// from scratch — durability the caller asked for but would not get.
		return nil, errors.New("engine: a durable JobStore requires CacheDir (recovered results are re-served from <CacheDir>/jobs/results)")
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS
	}
	var disk *schemastore.Cache
	if cfg.CacheDir != "" {
		var err error
		if disk, err = schemastore.OpenFS(cfg.CacheDir, cfg.FS); err != nil {
			return nil, err
		}
	}
	reg := NewShardedRegistry(cfg.CacheSize, cfg.Shards, disk)
	// Async job results spill next to the schema cache when a disk tier is
	// configured; memory-only engines buffer results in memory.
	var spill string
	if cfg.CacheDir != "" {
		spill = filepath.Join(cfg.CacheDir, "jobs")
	}
	// Job persistence: an explicit JobStore wins; otherwise a disk tier
	// implies the write-ahead log under <CacheDir>/jobs (unless opted out),
	// and a memory-only engine keeps the in-process default.
	store := cfg.JobStore
	if store == nil && cfg.CacheDir != "" && !cfg.VolatileJobs {
		ws, err := walstore.Open(spill, walstore.Options{NoSync: cfg.JobWALNoSync, FS: cfg.FS})
		if err != nil {
			return nil, fmt.Errorf("engine: opening job WAL: %w", err)
		}
		store = ws
	}
	e := &Engine{
		store: reg,
		reg:   reg,
		jobs: jobs.NewManager(jobs.Config{
			Workers:    cfg.JobWorkers,
			QueueDepth: cfg.JobQueueDepth,
			ResultTTL:  cfg.JobResultTTL,
			SpillDir:   spill,
			Store:      store,
		}),
		workers:     w,
		pvOnly:      cfg.PVOnly,
		noFastPath:  cfg.DisableFastPath,
		maxDocBytes: cfg.MaxDocBytes,
		streamBuf:   cfg.StreamBufBytes,
		sem:         make(chan struct{}, w),
		cacheDir:    cfg.CacheDir,
		fsys:        cfg.FS,
		instanceID:  newInstanceID(),
	}
	if e.maxDocBytes <= 0 {
		e.maxDocBytes = MaxDocumentBytes
	}
	if store != nil {
		// Replay whatever the store retained before accepting any new
		// submission: finished jobs come back servable, interrupted ones
		// re-queue (their runners rebuilt from the persisted payloads
		// through the schema registry's refs).
		stats, err := e.jobs.Recover(e.recoverRunner)
		if err != nil {
			return nil, fmt.Errorf("engine: recovering jobs: %w", err)
		}
		e.recovery = stats
		e.recovered = true
	}
	return e, nil
}

// newInstanceID draws the engine's metrics instance label: a short random
// hex tag distinguishing this engine's series from a restarted successor
// scraping into the same Prometheus.
func newInstanceID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// InstanceID returns the engine's metrics instance label — a random hex
// tag drawn at Open.
func (e *Engine) InstanceID() string { return e.instanceID }

// Close stops the engine's async job workers and reaper. Running jobs
// finish their current chunk; queued jobs stop being picked up (on a
// durable store they replay as interrupted after a restart). Batch and
// single-document checking remain usable (they never go through the job
// layer). Close does not wait for running jobs — use Shutdown for a
// bounded drain.
func (e *Engine) Close() {
	e.jobs.Close()
	e.closeAnchors()
}

// Shutdown closes the engine and waits — bounded by ctx — for running
// jobs to finalize and the job store to be released. It returns ctx.Err()
// when the drain outlives the context.
func (e *Engine) Shutdown(ctx context.Context) error {
	err := e.jobs.Shutdown(ctx)
	e.closeAnchors()
	return err
}

// JobRecovery reports the job-replay outcome of Open: the counts of
// re-queued, resumed, re-served and unrecoverable jobs, and whether a
// recovery pass ran at all (it does whenever the engine has a persistent
// job store).
func (e *Engine) JobRecovery() (jobs.RecoveryStats, bool) { return e.recovery, e.recovered }

// Store returns the engine's schema store.
func (e *Engine) Store() SchemaStore { return e.store }

// Registry returns the engine's built-in sharded registry (the default
// SchemaStore).
func (e *Engine) Registry() *Registry { return e.reg }

// Workers returns the configured worker bound.
func (e *Engine) Workers() int { return e.workers }

// Compile resolves a schema through the store (compile-once, sharded LRU,
// optional disk tier). An engine opened with Config.DisableFastPath
// forces the slow tier onto every compilation.
func (e *Engine) Compile(kind SourceKind, src, root string, opts CompileOptions) (*Schema, error) {
	if e.noFastPath {
		opts.DisableFastPath = true
	}
	return e.store.Compile(kind, src, root, opts)
}

// check runs the verdict for one document on a (reusable) stream checker.
// The streaming pass settles well-formedness and potential validity in one
// linear scan; only documents that pass it pay for the tree parse that the
// full-validity bit needs. Byte documents ride the zero-copy path end to
// end (RunBytes + ParseBytes); string documents the compatibility path.
func (e *Engine) check(s *Schema, c *core.StreamChecker, d Doc) Result {
	res := Result{ID: d.ID, Bytes: d.Size()}
	var err error
	if d.Bytes != nil {
		err = c.RunBytes(d.Bytes)
	} else {
		err = c.Run(d.Content)
	}
	e.harvestFastPath(c)
	if err != nil {
		if core.IsViolation(err) {
			res.Detail = err.Error()
		} else {
			res.Err = err
		}
		return res
	}
	res.PotentiallyValid = true
	if !e.pvOnly {
		if c.StrictlyValid() {
			// Every element closed in an accepting DFA state: the content
			// is a complete word of its model everywhere, so the document
			// is fully valid and the tree parse has nothing left to
			// decide. This is the fast path's big win on valid-heavy
			// traffic — the whole DOM pass disappears (X15 prices it, the
			// engine differential test pins verdict equality).
			res.Valid = true
			return res
		}
		var doc *dom.Document
		var perr error
		if d.Bytes != nil {
			doc, perr = dom.ParseBytes(d.Bytes)
		} else {
			doc, perr = dom.Parse(d.Content)
		}
		if perr != nil {
			// The stream lexer and the tree parser should agree on
			// well-formedness (the fuzz targets enforce it); if they ever
			// diverge, surface the parse error rather than inventing a
			// PV-but-not-valid verdict CheckString would not produce.
			res.PotentiallyValid = false
			res.Err = perr
			return res
		}
		res.Valid = s.Valid.Validate(doc.Root) == nil
	}
	return res
}

// harvestFastPath folds one finished run's fast-path counters into the
// engine's lifetime totals.
func (e *Engine) harvestFastPath(c *core.StreamChecker) {
	hits, fallbacks := c.FastPathStats()
	if hits != 0 {
		e.fastHits.Add(hits)
	}
	if fallbacks != 0 {
		e.fastFallbacks.Add(fallbacks)
	}
}

// RoutingError marks a failure to route a document to a schema (an
// unknown, ambiguous or malformed schemaRef, or a missing default): a
// request-configuration problem, counted separately from malformed
// documents in all stats.
type RoutingError struct{ msg string }

// Error returns the routing failure's explanation.
func (e *RoutingError) Error() string { return e.msg }

// routingErrf builds a RoutingError.
func routingErrf(format string, args ...any) error {
	return &RoutingError{msg: fmt.Sprintf(format, args...)}
}

// IsRoutingError reports whether err is a schema-routing failure, as
// opposed to a verdict on the document itself.
func IsRoutingError(err error) bool {
	var r *RoutingError
	return errors.As(err, &r)
}

// errNoSchema reports a document that cannot be routed to any schema.
var errNoSchema error = &RoutingError{msg: "engine: document has no schemaRef and the batch has no default schema"}

// refTable is a per-batch resolution of the distinct SchemaRefs appearing
// in a document set; resolving once up front keeps the worker loop free of
// registry traffic.
type refTable struct {
	schemas map[string]*Schema
	errs    map[string]error
}

// resolveRefs builds the ref table for docs (nil when no doc carries a ref).
func (e *Engine) resolveRefs(docs []Doc) *refTable {
	var t *refTable
	for i := range docs {
		ref := docs[i].SchemaRef
		if ref == "" {
			continue
		}
		if t == nil {
			t = &refTable{schemas: map[string]*Schema{}, errs: map[string]error{}}
		}
		if _, ok := t.schemas[ref]; ok {
			continue
		}
		if _, ok := t.errs[ref]; ok {
			continue
		}
		if s, err := e.store.ResolveRef(ref); err != nil {
			t.errs[ref] = err
		} else {
			t.schemas[ref] = s
		}
	}
	return t
}

// schemaFor routes one document: its SchemaRef if set, else the batch
// default.
func (t *refTable) schemaFor(d *Doc, def *Schema) (*Schema, error) {
	if d.SchemaRef != "" {
		if s, ok := t.schemas[d.SchemaRef]; ok {
			return s, nil
		}
		return nil, t.errs[d.SchemaRef]
	}
	if def == nil {
		return nil, errNoSchema
	}
	return def, nil
}

// Check runs one document synchronously on the caller's goroutine (it
// still counts against the engine-wide worker bound). s may be nil when
// the document carries a SchemaRef.
func (e *Engine) Check(s *Schema, d Doc) Result {
	if d.SchemaRef != "" {
		rs, err := e.store.ResolveRef(d.SchemaRef)
		if err != nil {
			res := Result{ID: d.ID, Bytes: d.Size(), Err: err}
			e.account(&res)
			return res
		}
		s = rs
	}
	if s == nil {
		res := Result{ID: d.ID, Bytes: d.Size(), Err: errNoSchema}
		e.account(&res)
		return res
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	c := s.checkers.Get().(*core.StreamChecker)
	res := e.check(s, c, d)
	s.checkers.Put(c)
	e.account(&res)
	return res
}

// countReader counts the bytes an io.Reader delivers, for result accounting
// on the streamed path.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// CheckReader checks one document streamed from r in bounded memory —
// O(element depth + sliding window), independent of document size, with no
// cap. The verdict is potential validity only: the full-validity bit needs
// a tree parse, which is exactly the O(document) cost this path exists to
// avoid (Valid is always false here). Like Check, it counts against the
// engine-wide worker bound and the lifetime counters.
func (e *Engine) CheckReader(s *Schema, id string, r io.Reader) Result {
	if s == nil {
		res := Result{ID: id, Err: errNoSchema}
		e.account(&res)
		return res
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	c := s.checkers.Get().(*core.StreamChecker)
	cr := &countReader{r: r}
	err := c.RunReaderBuffer(cr, e.streamBuf)
	e.harvestFastPath(c)
	s.checkers.Put(c)
	res := Result{ID: id, Bytes: int(cr.n)}
	switch {
	case err == nil:
		res.PotentiallyValid = true
	case core.IsViolation(err):
		res.Detail = err.Error()
	default:
		res.Err = err
	}
	e.account(&res)
	return res
}

// MaxDocBytes returns the per-document cap enforced on the NDJSON stream
// routes (Config.MaxDocBytes, defaulted).
func (e *Engine) MaxDocBytes() int { return e.maxDocBytes }

// runBatch is the shared worker-pool core of CheckBatch and CompleteBatch:
// workers claim documents through an atomic cursor (cheap work stealing:
// large documents do not stall a fixed partition) and write results into
// disjoint slots, so the only synchronization on the hot path is the
// cursor increment. Each worker keeps one pooled resource of type C (a
// stream checker or a completer) per schema it encounters (linear scan —
// batches mix a handful of schemas, not hundreds). Documents that fail
// schema routing are mapped through errResult. Returns the results (Index
// not yet set) and the worker count used.
func runBatch[C any, R any](e *Engine, s *Schema, docs []Doc,
	acquire func(*Schema) C,
	release func(*Schema, C),
	run func(*Schema, C, Doc) R,
	errResult func(*Doc, error) R,
) ([]R, int) {
	results := make([]R, len(docs))
	refs := e.resolveRefs(docs)
	workers := e.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.sem <- struct{}{} // engine-wide bound across concurrent batches
			defer func() { <-e.sem }()
			var schemas []*Schema
			var held []C
			defer func() {
				for i, sc := range schemas {
					release(sc, held[i])
				}
			}()
			resourceFor := func(sc *Schema) C {
				for i, x := range schemas {
					if x == sc {
						return held[i]
					}
				}
				c := acquire(sc)
				schemas = append(schemas, sc)
				held = append(held, c)
				return c
			}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				d := &docs[i]
				sc, err := refs.schemaFor(d, s)
				if err != nil {
					results[i] = errResult(d, err)
					continue
				}
				results[i] = run(sc, resourceFor(sc), docs[i])
			}
		}()
	}
	wg.Wait()
	return results, workers
}

// finishBatch computes per-batch throughput and folds the stats into the
// lifetime counters.
func (e *Engine) finishBatch(stats *BatchStats, start time.Time) {
	stats.Elapsed = time.Since(start)
	if secs := stats.Elapsed.Seconds(); secs > 0 {
		stats.DocsPerSec = float64(stats.Docs) / secs
		stats.MBPerSec = float64(stats.Bytes) / (1 << 20) / secs
	}
	e.accountBatch(*stats)
}

// CheckBatch fans docs out over the engine's worker pool and returns one
// Result per input, in input order, plus aggregate stats.
//
// Documents carrying a SchemaRef are routed to the referenced
// registry-cached schema, so one batch can mix schemas in a single round
// trip; s is the default for documents without a ref and may be nil when
// every document carries one. Each worker keeps one pooled checker per
// schema it encounters.
func (e *Engine) CheckBatch(s *Schema, docs []Doc) ([]Result, BatchStats) {
	start := time.Now()
	results, workers := runBatch(e, s, docs,
		func(sc *Schema) *core.StreamChecker { return sc.checkers.Get().(*core.StreamChecker) },
		func(sc *Schema, c *core.StreamChecker) { sc.checkers.Put(c) },
		e.check,
		func(d *Doc, err error) Result { return Result{ID: d.ID, Bytes: d.Size(), Err: err} },
	)
	stats := BatchStats{Docs: len(docs), Workers: workers}
	for i := range results {
		results[i].Index = i
		stats.tally(&results[i])
	}
	e.finishBatch(&stats, start)
	return results, stats
}

// CheckAll is CheckBatch over bare XML strings; IDs are the input indices.
func (e *Engine) CheckAll(s *Schema, xmls []string) ([]Result, BatchStats) {
	docs := make([]Doc, len(xmls))
	for i, x := range xmls {
		docs[i] = Doc{ID: strconv.Itoa(i), Content: x}
	}
	return e.CheckBatch(s, docs)
}

func (e *Engine) account(r *Result) {
	bs := BatchStats{Docs: 1}
	bs.tally(r)
	e.accountBatch(bs)
}

func (e *Engine) accountBatch(s BatchStats) {
	e.docs.Add(int64(s.Docs))
	e.pv.Add(int64(s.PotentiallyValid))
	e.valid.Add(int64(s.Valid))
	e.malformed.Add(int64(s.Malformed))
	e.routing.Add(int64(s.RoutingErrors))
	e.inserted.Add(s.Inserted)
	e.bytes.Add(s.Bytes)
	e.busyNanos.Add(s.Elapsed.Nanoseconds())
}

// Stats is a lifetime snapshot of engine counters. Inserted accumulates
// the elements added by the completion workload.
type Stats struct {
	Workers          int   `json:"workers"`
	Docs             int64 `json:"docs"`
	PotentiallyValid int64 `json:"potentiallyValid"`
	Valid            int64 `json:"valid"`
	Malformed        int64 `json:"malformed"`
	RoutingErrors    int64 `json:"routingErrors"`
	Inserted         int64 `json:"inserted"`
	Bytes            int64 `json:"bytes"`
	BusyNanos        int64 `json:"busyNanos"`
	// ReceiptsBuilt and ReceiptsAnchored count verdict receipts committed
	// and anchor-log records written.
	ReceiptsBuilt    int64 `json:"receiptsBuilt"`
	ReceiptsAnchored int64 `json:"receiptsAnchored"`
	// FastPathHits counts elements settled entirely on the content-model
	// DFA fast path; FastPathFallbacks counts elements that fell back to
	// the PV recognizer. DFAStates gauges the compiled DFA states resident
	// across the schema store.
	FastPathHits      int64 `json:"fastPathHits"`
	FastPathFallbacks int64 `json:"fastPathFallbacks"`
	DFAStates         int64 `json:"dfaStates"`
}

// Stats returns the engine's lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:           e.workers,
		Docs:              e.docs.Load(),
		PotentiallyValid:  e.pv.Load(),
		Valid:             e.valid.Load(),
		Malformed:         e.malformed.Load(),
		RoutingErrors:     e.routing.Load(),
		Inserted:          e.inserted.Load(),
		Bytes:             e.bytes.Load(),
		BusyNanos:         e.busyNanos.Load(),
		ReceiptsBuilt:     e.receiptsBuilt.Load(),
		ReceiptsAnchored:  e.receiptsAnchored.Load(),
		FastPathHits:      e.fastHits.Load(),
		FastPathFallbacks: e.fastFallbacks.Load(),
		DFAStates:         e.store.Stats().DFAStates,
	}
}
