package engine

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/validator"
)

// Schema is one compiled checking artifact: the potential-validity core, the
// full validator, and a pool of reusable streaming checkers. A Schema is
// safe for concurrent use; the pool keeps per-worker checker state off the
// allocator on the hot path.
type Schema struct {
	Core  *core.Schema
	Valid *validator.Validator

	checkers sync.Pool
}

// NewSchema wraps an already compiled core schema and validator for use
// with the engine. The root-package API builds these for every pv.Schema.
func NewSchema(c *core.Schema, v *validator.Validator) *Schema {
	s := &Schema{Core: c, Valid: v}
	s.checkers.New = func() any { return c.NewStreamChecker() }
	return s
}

// Doc is one batch input: an identifier (a path, a queue key — anything)
// and the XML content.
type Doc struct {
	ID      string `json:"id"`
	Content string `json:"content"`
}

// Result is the verdict for one document. It mirrors the sequential
// CheckString contract: Err is set for lexical/well-formedness problems (the
// document has no verdict); otherwise PotentiallyValid and Valid carry the
// verdict and Detail explains the first potential-validity violation.
type Result struct {
	ID               string
	Index            int
	PotentiallyValid bool
	Valid            bool
	Detail           string
	Err              error
	Bytes            int
}

// BatchStats aggregates one CheckBatch call.
type BatchStats struct {
	Docs             int           `json:"docs"`
	PotentiallyValid int           `json:"potentiallyValid"`
	Valid            int           `json:"valid"`
	Malformed        int           `json:"malformed"`
	Bytes            int64         `json:"bytes"`
	Workers          int           `json:"workers"`
	Elapsed          time.Duration `json:"elapsedNs"`
	DocsPerSec       float64       `json:"docsPerSec"`
	MBPerSec         float64       `json:"mbPerSec"`
}

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds batch concurrency; <=0 selects GOMAXPROCS.
	Workers int
	// CacheSize bounds the schema registry; <=0 selects DefaultCapacity.
	CacheSize int
	// PVOnly skips the full-validity bit (which needs a tree parse of every
	// potentially valid document) — the fastest mode for firehose filtering.
	PVOnly bool
}

// Engine is the concurrent checking front end: a registry plus a worker
// pool configuration and lifetime counters.
type Engine struct {
	reg     *Registry
	workers int
	pvOnly  bool
	// sem bounds checking concurrency engine-wide, not per batch: N
	// concurrent CheckBatch calls (pvserve requests) share the same
	// `workers` slots instead of multiplying them.
	sem chan struct{}

	docs      atomic.Int64
	pv        atomic.Int64
	valid     atomic.Int64
	malformed atomic.Int64
	bytes     atomic.Int64
	busyNanos atomic.Int64 // wall-clock spent inside CheckBatch calls
}

// New builds an engine.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		reg:     NewRegistry(cfg.CacheSize),
		workers: w,
		pvOnly:  cfg.PVOnly,
		sem:     make(chan struct{}, w),
	}
}

// Registry returns the engine's schema registry.
func (e *Engine) Registry() *Registry { return e.reg }

// Workers returns the configured worker bound.
func (e *Engine) Workers() int { return e.workers }

// Compile resolves a schema through the registry (compile-once, LRU).
func (e *Engine) Compile(kind SourceKind, src, root string, opts CompileOptions) (*Schema, error) {
	return e.reg.Compile(kind, src, root, opts)
}

// check runs the verdict for one document on a (reusable) stream checker.
// The streaming pass settles well-formedness and potential validity in one
// linear scan; only documents that pass it pay for the tree parse that the
// full-validity bit needs.
func (e *Engine) check(s *Schema, c *core.StreamChecker, d Doc) Result {
	res := Result{ID: d.ID, Bytes: len(d.Content)}
	if err := c.Run(d.Content); err != nil {
		if core.IsViolation(err) {
			res.Detail = err.Error()
		} else {
			res.Err = err
		}
		return res
	}
	res.PotentiallyValid = true
	if !e.pvOnly {
		doc, err := dom.Parse(d.Content)
		if err != nil {
			// The stream lexer and the tree parser should agree on
			// well-formedness (the fuzz targets enforce it); if they ever
			// diverge, surface the parse error rather than inventing a
			// PV-but-not-valid verdict CheckString would not produce.
			res.PotentiallyValid = false
			res.Err = err
			return res
		}
		res.Valid = s.Valid.Validate(doc.Root) == nil
	}
	return res
}

// Check runs one document synchronously on the caller's goroutine (it
// still counts against the engine-wide worker bound).
func (e *Engine) Check(s *Schema, d Doc) Result {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	c := s.checkers.Get().(*core.StreamChecker)
	res := e.check(s, c, d)
	s.checkers.Put(c)
	e.account(1, &res)
	return res
}

// CheckBatch fans docs out over the engine's worker pool and returns one
// Result per input, in input order, plus aggregate stats. Workers claim
// documents through an atomic cursor (cheap work stealing: large documents
// do not stall a fixed partition) and write results into disjoint slots, so
// the only synchronization on the hot path is the cursor increment.
func (e *Engine) CheckBatch(s *Schema, docs []Doc) ([]Result, BatchStats) {
	start := time.Now()
	results := make([]Result, len(docs))
	workers := e.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.sem <- struct{}{} // engine-wide bound across concurrent batches
			defer func() { <-e.sem }()
			c := s.checkers.Get().(*core.StreamChecker)
			defer s.checkers.Put(c)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				results[i] = e.check(s, c, docs[i])
				results[i].Index = i
			}
		}()
	}
	wg.Wait()

	stats := BatchStats{Docs: len(docs), Workers: workers, Elapsed: time.Since(start)}
	for i := range results {
		r := &results[i]
		stats.Bytes += int64(r.Bytes)
		switch {
		case r.Err != nil:
			stats.Malformed++
		case r.Valid:
			stats.Valid++
			stats.PotentiallyValid++
		case r.PotentiallyValid:
			stats.PotentiallyValid++
		}
	}
	if secs := stats.Elapsed.Seconds(); secs > 0 {
		stats.DocsPerSec = float64(stats.Docs) / secs
		stats.MBPerSec = float64(stats.Bytes) / (1 << 20) / secs
	}
	e.accountBatch(stats)
	return results, stats
}

// CheckAll is CheckBatch over bare XML strings; IDs are the input indices.
func (e *Engine) CheckAll(s *Schema, xmls []string) ([]Result, BatchStats) {
	docs := make([]Doc, len(xmls))
	for i, x := range xmls {
		docs[i] = Doc{ID: strconv.Itoa(i), Content: x}
	}
	return e.CheckBatch(s, docs)
}

func (e *Engine) account(n int64, r *Result) {
	e.docs.Add(n)
	e.bytes.Add(int64(r.Bytes))
	switch {
	case r.Err != nil:
		e.malformed.Add(1)
	case r.Valid:
		e.valid.Add(1)
		e.pv.Add(1)
	case r.PotentiallyValid:
		e.pv.Add(1)
	}
}

func (e *Engine) accountBatch(s BatchStats) {
	e.docs.Add(int64(s.Docs))
	e.pv.Add(int64(s.PotentiallyValid))
	e.valid.Add(int64(s.Valid))
	e.malformed.Add(int64(s.Malformed))
	e.bytes.Add(s.Bytes)
	e.busyNanos.Add(s.Elapsed.Nanoseconds())
}

// Stats is a lifetime snapshot of engine counters.
type Stats struct {
	Workers          int   `json:"workers"`
	Docs             int64 `json:"docs"`
	PotentiallyValid int64 `json:"potentiallyValid"`
	Valid            int64 `json:"valid"`
	Malformed        int64 `json:"malformed"`
	Bytes            int64 `json:"bytes"`
	BusyNanos        int64 `json:"busyNanos"`
}

// Stats returns the engine's lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:          e.workers,
		Docs:             e.docs.Load(),
		PotentiallyValid: e.pv.Load(),
		Valid:            e.valid.Load(),
		Malformed:        e.malformed.Load(),
		Bytes:            e.bytes.Load(),
		BusyNanos:        e.busyNanos.Load(),
	}
}
