package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/diff"
	"repro/internal/jobs"
	"repro/internal/receipt"
)

// The HTTP front end (cmd/pvserve) speaks JSON over these routes:
//
//	POST /check             one document           -> one verdict
//	POST /batch             many documents         -> verdicts + batch stats
//	POST /batch?async=1     many documents         -> 202 {jobId} (async job)
//	POST /check/raw         one raw XML body       -> one verdict (no size cap)
//	POST /check/stream      NDJSON document stream -> NDJSON verdict stream
//	POST /complete          many documents         -> completions + stats
//	POST /complete?async=1  many documents         -> 202 {jobId} (async job)
//	POST /complete/stream   NDJSON document stream -> NDJSON completion stream
//	GET  /jobs              retained async jobs (newest first)
//	GET  /jobs/{id}         one job's state + progress
//	GET  /jobs/{id}/results one job's verdicts as NDJSON
//	GET  /jobs/{id}/receipt one job's verdict receipt (root + proofs)
//	DELETE /jobs/{id}       cancel an active job / remove a finished one
//	GET  /schemas           cached compiled schemas (MRU first)
//	GET  /stats             registry + engine + job-queue lifetime counters
//	GET  /metrics           the same counters as a Prometheus exposition
//	POST /verify            check a receipt proof offline (no engine state)
//	GET  /receipts          anchored receipt roots, oldest first
//
// ?receipt=1 on /batch and /complete (sync or async) additionally commits
// every verdict into a Merkle tree (see internal/receipt): the response —
// or GET /jobs/{id}/receipt once an async job finishes — carries the root
// and one inclusion proof per document, verifiable offline with
// POST /verify or `pvcheck verify`.
//
// POST /check/batch and POST /complete/batch are aliases of /batch and
// /complete (async-capable spellings that name the workload explicitly).
//
// The POST routes carry the schema source inline; the registry dedupes by
// content hash, so resending the same schema with every request costs one
// hash, not one compilation. Documents may instead carry a "schemaRef" (a
// prefix of a cached schema's ref, as listed by GET /schemas), routing a
// mixed multi-schema firehose in one request; the inline schema then
// becomes optional.
//
// The *stream routes read their bodies incrementally — one JSON object per
// line, optionally gzip-encoded (Content-Encoding: gzip) — and flush one
// output line per document as soon as it is ready, with a bounded number
// of documents in flight (backpressure instead of buffering whole
// batches). A line with "schema"/"root" fields (re)sets the default
// schema for subsequent documents; other lines are documents
// {"id","content","schemaRef"}. The response ends with a {"stats":...}
// line. Each document is capped per engine (Config.MaxDocBytes, default
// MaxDocumentBytes), enforced on decompressed bytes (the request body as a
// whole is uncapped — that is the point of streaming).
//
// POST /check/raw escapes the per-document cap entirely: the body is one
// raw XML document — no JSON envelope, optionally gzip-encoded — checked in
// bounded memory (O(element depth + sliding window)) no matter its size.
// The schema comes from an X-Schema-Ref header or ?schemaRef= query
// parameter; the verdict is potential validity only (the full-validity bit
// needs a tree, which is what this route avoids building).
//
// The /complete* routes answer with the completed document (a valid
// extension of a potentially valid input, per the paper's Definition 3)
// plus a structured diff: inserted count and per-insertion
// path/index/name records (internal/diff); "?diff=0" — or "diff": false
// in the /complete body — drops the records. A document that is not
// potentially valid yields a typed "detail" verdict, not an HTTP error.

// schemaRequest is the shared schema half of /check and /batch bodies.
type schemaRequest struct {
	Schema  string         `json:"schema"`         // DTD or XSD source text
	Kind    string         `json:"kind,omitempty"` // "dtd" (default) or "xsd"
	Root    string         `json:"root"`
	Options CompileOptions `json:"options,omitempty"`
}

type checkRequest struct {
	schemaRequest
	Document string `json:"document"`
}

type batchRequest struct {
	schemaRequest
	Documents []Doc `json:"documents"`
}

// completeRequest is the /complete body: the /batch shape plus the diff
// switch (nil means true — insertion records are on by default).
type completeRequest struct {
	schemaRequest
	Documents []Doc `json:"documents"`
	Diff      *bool `json:"diff,omitempty"`
}

// resultJSON is the wire form of Result.
type resultJSON struct {
	ID               string `json:"id,omitempty"`
	Index            int    `json:"index"`
	PotentiallyValid bool   `json:"potentiallyValid"`
	Valid            bool   `json:"valid"`
	Detail           string `json:"detail,omitempty"`
	Error            string `json:"error,omitempty"`
}

func toJSON(r Result) resultJSON {
	out := resultJSON{
		ID:               r.ID,
		Index:            r.Index,
		PotentiallyValid: r.PotentiallyValid,
		Valid:            r.Valid,
		Detail:           r.Detail,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

type batchResponse struct {
	Results []resultJSON `json:"results"`
	Stats   BatchStats   `json:"stats"`
	// Receipt carries the batch's verdict commitment when the request asked
	// for one (?receipt=1).
	Receipt *Receipt `json:"receipt,omitempty"`
}

// completeJSON is the wire form of CompleteResult.
type completeJSON struct {
	ID           string           `json:"id,omitempty"`
	Index        int              `json:"index"`
	Completed    bool             `json:"completed"`
	AlreadyValid bool             `json:"alreadyValid,omitempty"`
	Inserted     int              `json:"inserted"`
	Insertions   []diff.Insertion `json:"insertions,omitempty"`
	Output       string           `json:"output,omitempty"`
	Detail       string           `json:"detail,omitempty"`
	Error        string           `json:"error,omitempty"`
}

func completeToJSON(r CompleteResult) completeJSON {
	out := completeJSON{
		ID:           r.ID,
		Index:        r.Index,
		Completed:    r.Completed,
		AlreadyValid: r.AlreadyValid,
		Inserted:     r.Inserted,
		Insertions:   r.Insertions,
		Output:       r.Output,
		Detail:       r.Detail,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

type completeResponse struct {
	Results []completeJSON `json:"results"`
	Stats   BatchStats     `json:"stats"`
	// Receipt carries the batch's verdict commitment when the request asked
	// for one (?receipt=1).
	Receipt *Receipt `json:"receipt,omitempty"`
}

type statsResponse struct {
	Registry RegistryStats `json:"registry"`
	Engine   Stats         `json:"engine"`
	Jobs     jobs.Stats    `json:"jobs"`
	// Recovery is the job-replay outcome of this process's boot — present
	// only when the engine runs on a persistent job store.
	Recovery *jobs.RecoveryStats `json:"recovery,omitempty"`
}

// jobAccepted is the 202 response of an async submission.
type jobAccepted struct {
	JobID    string `json:"jobId"`
	State    string `json:"state"`
	Total    int    `json:"total"`
	Location string `json:"location"`
}

// wantAsync reports whether the request selects the async job path
// (?async=1, true or yes).
func wantAsync(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("async")) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// wantReceipt reports whether the request asks for a verdict receipt
// (?receipt=1, true or yes).
func wantReceipt(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("receipt")) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// accepted answers an async submission: 202 with the job id and where to
// poll.
func accepted(w http.ResponseWriter, j *jobs.Job) {
	w.Header().Set("Content-Type", "application/json")
	loc := "/jobs/" + j.ID()
	w.Header().Set("Location", loc)
	w.WriteHeader(http.StatusAccepted)
	info := j.Info()
	_ = json.NewEncoder(w).Encode(jobAccepted{
		JobID: info.ID, State: info.State, Total: info.Total, Location: loc,
	})
}

// submitError maps job-submission failures: a full queue is 429, anything
// else a 500.
func submitError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrJobQueueFull) {
		httpError(w, http.StatusTooManyRequests,
			"job queue is full; retry later or raise -job-queue")
		return
	}
	httpError(w, http.StatusInternalServerError, err.Error())
}

// NewServer returns the HTTP handler over e.
func NewServer(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /check", func(w http.ResponseWriter, r *http.Request) {
		var req checkRequest
		if !decode(w, r, &req) {
			return
		}
		s, ok := resolve(w, e, req.schemaRequest)
		if !ok {
			return
		}
		reply(w, toJSON(e.Check(s, Doc{Content: req.Document})))
	})
	batch := func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if !decode(w, r, &req) {
			return
		}
		// The inline schema is optional when documents route themselves by
		// schemaRef; documents without a ref then get a per-document error.
		var s *Schema
		if req.Schema != "" || req.Root != "" {
			var ok bool
			if s, ok = resolve(w, e, req.schemaRequest); !ok {
				return
			}
		}
		withReceipt := wantReceipt(r)
		if wantAsync(r) {
			var j *jobs.Job
			var err error
			if withReceipt {
				j, err = e.SubmitCheckBatchReceipt(s, req.Documents)
			} else {
				j, err = e.SubmitCheckBatch(s, req.Documents)
			}
			if err != nil {
				submitError(w, err)
				return
			}
			accepted(w, j)
			return
		}
		var results []Result
		var stats BatchStats
		var rec *Receipt
		if withReceipt {
			var err error
			if results, stats, rec, err = e.CheckBatchReceipt(s, req.Documents); err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
		} else {
			results, stats = e.CheckBatch(s, req.Documents)
		}
		out := batchResponse{Results: make([]resultJSON, len(results)), Stats: stats, Receipt: rec}
		for i, res := range results {
			out.Results[i] = toJSON(res)
		}
		reply(w, out)
	}
	mux.HandleFunc("POST /batch", batch)
	mux.HandleFunc("POST /check/batch", batch)
	mux.HandleFunc("POST /check/raw", func(w http.ResponseWriter, r *http.Request) {
		serveCheckRaw(e, w, r)
	})
	mux.HandleFunc("POST /check/stream", func(w http.ResponseWriter, r *http.Request) {
		serveCheckStream(e, w, r)
	})
	complete := func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decode(w, r, &req) {
			return
		}
		var s *Schema
		if req.Schema != "" || req.Root != "" {
			var ok bool
			if s, ok = resolve(w, e, req.schemaRequest); !ok {
				return
			}
		}
		withDiff := wantDiff(r) && (req.Diff == nil || *req.Diff)
		withReceipt := wantReceipt(r)
		if wantAsync(r) {
			var j *jobs.Job
			var err error
			if withReceipt {
				j, err = e.SubmitCompleteBatchReceipt(s, req.Documents, withDiff)
			} else {
				j, err = e.SubmitCompleteBatch(s, req.Documents, withDiff)
			}
			if err != nil {
				submitError(w, err)
				return
			}
			accepted(w, j)
			return
		}
		var results []CompleteResult
		var stats BatchStats
		var rec *Receipt
		if withReceipt {
			var err error
			if results, stats, rec, err = e.CompleteBatchReceipt(s, req.Documents, withDiff); err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
		} else {
			results, stats = e.CompleteBatch(s, req.Documents, withDiff)
		}
		out := completeResponse{Results: make([]completeJSON, len(results)), Stats: stats, Receipt: rec}
		for i, res := range results {
			out.Results[i] = completeToJSON(res)
		}
		reply(w, out)
	}
	mux.HandleFunc("POST /complete", complete)
	mux.HandleFunc("POST /complete/batch", complete)
	mux.HandleFunc("POST /complete/stream", func(w http.ResponseWriter, r *http.Request) {
		serveCompleteStream(e, w, r)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		reply(w, map[string]any{"jobs": e.Jobs().List()})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Jobs().Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job (unknown id, or reaped after its TTL)")
			return
		}
		reply(w, j.Info())
	})
	mux.HandleFunc("GET /jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Jobs().Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job (unknown id, or reaped after its TTL)")
			return
		}
		// The body alone cannot distinguish "every verdict" from "the
		// prefix a running/failed/canceled job retained", so the state
		// rides along: X-Job-State on every response, and ?require=done
		// turns anything but a complete set into a 409 for strict clients.
		state := j.State()
		w.Header().Set("X-Job-State", state.String())
		if r.URL.Query().Get("require") == "done" && state != jobs.Done {
			httpError(w, http.StatusConflict,
				"job is "+state.String()+", not done; results would be a partial set (drop require=done to fetch them)")
			return
		}
		// A running job streams the prefix retained so far; poll
		// GET /jobs/{id} to a terminal state first for the complete set.
		w.Header().Set("Content-Type", "application/x-ndjson")
		if _, err := j.WriteResults(w); err != nil {
			// Output may be half-written; the broken stream is the signal.
			return
		}
	})
	mux.HandleFunc("GET /jobs/{id}/receipt", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Jobs().Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job (unknown id, or reaped after its TTL)")
			return
		}
		if !j.State().Finished() {
			httpError(w, http.StatusConflict,
				"job is "+j.State().String()+"; the receipt is committed when the job finishes")
			return
		}
		root, data := j.Receipt()
		switch {
		case len(data) > 0:
			// The full receipt (root + per-document proofs) built by this
			// process.
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
			if len(data) == 0 || data[len(data)-1] != '\n' {
				_, _ = w.Write([]byte("\n"))
			}
		case root != "":
			// Only the root survived a restart (proofs are recomputable from
			// the inputs but are not persisted); serve the root-only form.
			reply(w, map[string]any{
				"root": root,
				"note": "proofs were not retained across a restart; re-run the batch with ?receipt=1 to re-derive them",
			})
		default:
			httpError(w, http.StatusNotFound,
				"job has no receipt (submit with ?receipt=1 to commit one)")
		}
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		// Cancel an active job (queued: immediately; running: at its next
		// chunk boundary, keeping partial results and the record until TTL
		// reap); remove a finished one (its results become 404).
		id := r.PathValue("id")
		j, ok := e.Jobs().Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such job (unknown id, or reaped after its TTL)")
			return
		}
		remove := func() {
			info := j.Info()
			// Remove can lose a race against a concurrent DELETE or the TTL
			// reaper — the loser answers 404 like any other missing job.
			if !e.Jobs().Remove(id) {
				httpError(w, http.StatusNotFound, "no such job (unknown id, or reaped after its TTL)")
				return
			}
			reply(w, map[string]any{"removed": true, "job": info})
		}
		if j.State().Finished() {
			remove()
			return
		}
		canceled := j.Cancel()
		if !canceled && j.State().Finished() {
			// The job finished between the check above and Cancel: honor the
			// finished-job contract (remove on the spot) rather than answer
			// an undocumented {"canceled": false}.
			remove()
			return
		}
		reply(w, map[string]any{"canceled": canceled, "job": j.Info()})
	})
	mux.HandleFunc("GET /schemas", func(w http.ResponseWriter, r *http.Request) {
		reply(w, map[string]any{"schemas": e.Store().Schemas()})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		out := statsResponse{Registry: e.Store().Stats(), Engine: e.Stats(), Jobs: e.Jobs().Stats()}
		if rec, ok := e.JobRecovery(); ok {
			out.Recovery = &rec
		}
		reply(w, out)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A write error here means the scraper hung up; there is no one
		// left to report it to.
		_ = e.WriteMetrics(w)
	})
	mux.HandleFunc("POST /verify", func(w http.ResponseWriter, r *http.Request) {
		// Stateless by design: verification touches no engine state, so a
		// receipt from any engine — or any epoch — checks here.
		var req verifyRequest
		if !decode(w, r, &req) {
			return
		}
		switch {
		case req.Receipt != nil:
			failed := req.Receipt.Verify()
			reply(w, verifyResponse{OK: len(failed) == 0, Checked: req.Receipt.Count, Failed: failed})
		case req.Root != "" && req.Leaf != nil && req.Proof != "":
			ok := receipt.Verify(req.Root, *req.Leaf, req.Proof)
			reply(w, verifyResponse{OK: ok, Checked: 1})
		default:
			httpError(w, http.StatusBadRequest,
				"body must carry either {receipt} or {root, leaf, proof}")
		}
	})
	mux.HandleFunc("GET /receipts", func(w http.ResponseWriter, r *http.Request) {
		anchors, err := e.Anchors()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if anchors == nil {
			anchors = []receipt.Anchor{}
		}
		reply(w, map[string]any{"anchors": anchors})
	})
	return mux
}

// verifyRequest is the POST /verify body: either one (root, leaf, proof)
// triple or a whole receipt.
type verifyRequest struct {
	Root    string        `json:"root,omitempty"`
	Leaf    *receipt.Leaf `json:"leaf,omitempty"`
	Proof   string        `json:"proof,omitempty"`
	Receipt *Receipt      `json:"receipt,omitempty"`
}

// verifyResponse is the POST /verify answer: whether every checked proof
// verified, how many were checked, and the batch indices that failed.
type verifyResponse struct {
	OK      bool  `json:"ok"`
	Checked int   `json:"checked"`
	Failed  []int `json:"failed,omitempty"`
}

// MaxRequestBytes bounds /check and /batch request bodies; a batch larger
// than this should be split client-side (or streamed — see ROADMAP).
const MaxRequestBytes = 64 << 20

// decode parses the JSON body into dst, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// resolve compiles the request's schema through the registry, writing a 422
// for schemas that do not compile.
func resolve(w http.ResponseWriter, e *Engine, req schemaRequest) (*Schema, bool) {
	kind, err := ParseSourceKind(req.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	if req.Root == "" {
		httpError(w, http.StatusBadRequest, "missing root element")
		return nil, false
	}
	s, err := e.Compile(kind, req.Schema, req.Root, req.Options)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf("schema does not compile: %v", err))
		return nil, false
	}
	return s, true
}

func reply(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
