package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/diff"
)

// The HTTP front end (cmd/pvserve) speaks JSON over seven routes:
//
//	POST /check            one document           -> one verdict
//	POST /batch            many documents         -> verdicts + batch stats
//	POST /check/stream     NDJSON document stream -> NDJSON verdict stream
//	POST /complete         many documents         -> completions + stats
//	POST /complete/stream  NDJSON document stream -> NDJSON completion stream
//	GET  /schemas          cached compiled schemas (MRU first)
//	GET  /stats            registry + engine lifetime counters
//
// The POST routes carry the schema source inline; the registry dedupes by
// content hash, so resending the same schema with every request costs one
// hash, not one compilation. Documents may instead carry a "schemaRef" (a
// prefix of a cached schema's ref, as listed by GET /schemas), routing a
// mixed multi-schema firehose in one request; the inline schema then
// becomes optional.
//
// The *stream routes read their bodies incrementally — one JSON object per
// line, optionally gzip-encoded (Content-Encoding: gzip) — and flush one
// output line per document as soon as it is ready, with a bounded number
// of documents in flight (backpressure instead of buffering whole
// batches). A line with "schema"/"root" fields (re)sets the default
// schema for subsequent documents; other lines are documents
// {"id","content","schemaRef"}. The response ends with a {"stats":...}
// line. Each document is capped at MaxDocumentBytes, enforced on
// decompressed bytes (the request body as a whole is uncapped — that is
// the point of streaming).
//
// The /complete* routes answer with the completed document (a valid
// extension of a potentially valid input, per the paper's Definition 3)
// plus a structured diff: inserted count and per-insertion
// path/index/name records (internal/diff); "?diff=0" — or "diff": false
// in the /complete body — drops the records. A document that is not
// potentially valid yields a typed "detail" verdict, not an HTTP error.

// schemaRequest is the shared schema half of /check and /batch bodies.
type schemaRequest struct {
	Schema  string         `json:"schema"`         // DTD or XSD source text
	Kind    string         `json:"kind,omitempty"` // "dtd" (default) or "xsd"
	Root    string         `json:"root"`
	Options CompileOptions `json:"options,omitempty"`
}

type checkRequest struct {
	schemaRequest
	Document string `json:"document"`
}

type batchRequest struct {
	schemaRequest
	Documents []Doc `json:"documents"`
}

// completeRequest is the /complete body: the /batch shape plus the diff
// switch (nil means true — insertion records are on by default).
type completeRequest struct {
	schemaRequest
	Documents []Doc `json:"documents"`
	Diff      *bool `json:"diff,omitempty"`
}

// resultJSON is the wire form of Result.
type resultJSON struct {
	ID               string `json:"id,omitempty"`
	Index            int    `json:"index"`
	PotentiallyValid bool   `json:"potentiallyValid"`
	Valid            bool   `json:"valid"`
	Detail           string `json:"detail,omitempty"`
	Error            string `json:"error,omitempty"`
}

func toJSON(r Result) resultJSON {
	out := resultJSON{
		ID:               r.ID,
		Index:            r.Index,
		PotentiallyValid: r.PotentiallyValid,
		Valid:            r.Valid,
		Detail:           r.Detail,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

type batchResponse struct {
	Results []resultJSON `json:"results"`
	Stats   BatchStats   `json:"stats"`
}

// completeJSON is the wire form of CompleteResult.
type completeJSON struct {
	ID           string           `json:"id,omitempty"`
	Index        int              `json:"index"`
	Completed    bool             `json:"completed"`
	AlreadyValid bool             `json:"alreadyValid,omitempty"`
	Inserted     int              `json:"inserted"`
	Insertions   []diff.Insertion `json:"insertions,omitempty"`
	Output       string           `json:"output,omitempty"`
	Detail       string           `json:"detail,omitempty"`
	Error        string           `json:"error,omitempty"`
}

func completeToJSON(r CompleteResult) completeJSON {
	out := completeJSON{
		ID:           r.ID,
		Index:        r.Index,
		Completed:    r.Completed,
		AlreadyValid: r.AlreadyValid,
		Inserted:     r.Inserted,
		Insertions:   r.Insertions,
		Output:       r.Output,
		Detail:       r.Detail,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

type completeResponse struct {
	Results []completeJSON `json:"results"`
	Stats   BatchStats     `json:"stats"`
}

type statsResponse struct {
	Registry RegistryStats `json:"registry"`
	Engine   Stats         `json:"engine"`
}

// NewServer returns the HTTP handler over e.
func NewServer(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /check", func(w http.ResponseWriter, r *http.Request) {
		var req checkRequest
		if !decode(w, r, &req) {
			return
		}
		s, ok := resolve(w, e, req.schemaRequest)
		if !ok {
			return
		}
		reply(w, toJSON(e.Check(s, Doc{Content: req.Document})))
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if !decode(w, r, &req) {
			return
		}
		// The inline schema is optional when documents route themselves by
		// schemaRef; documents without a ref then get a per-document error.
		var s *Schema
		if req.Schema != "" || req.Root != "" {
			var ok bool
			if s, ok = resolve(w, e, req.schemaRequest); !ok {
				return
			}
		}
		results, stats := e.CheckBatch(s, req.Documents)
		out := batchResponse{Results: make([]resultJSON, len(results)), Stats: stats}
		for i, res := range results {
			out.Results[i] = toJSON(res)
		}
		reply(w, out)
	})
	mux.HandleFunc("POST /check/stream", func(w http.ResponseWriter, r *http.Request) {
		serveCheckStream(e, w, r)
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decode(w, r, &req) {
			return
		}
		var s *Schema
		if req.Schema != "" || req.Root != "" {
			var ok bool
			if s, ok = resolve(w, e, req.schemaRequest); !ok {
				return
			}
		}
		withDiff := wantDiff(r) && (req.Diff == nil || *req.Diff)
		results, stats := e.CompleteBatch(s, req.Documents, withDiff)
		out := completeResponse{Results: make([]completeJSON, len(results)), Stats: stats}
		for i, res := range results {
			out.Results[i] = completeToJSON(res)
		}
		reply(w, out)
	})
	mux.HandleFunc("POST /complete/stream", func(w http.ResponseWriter, r *http.Request) {
		serveCompleteStream(e, w, r)
	})
	mux.HandleFunc("GET /schemas", func(w http.ResponseWriter, r *http.Request) {
		reply(w, map[string]any{"schemas": e.Store().Schemas()})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		reply(w, statsResponse{Registry: e.Store().Stats(), Engine: e.Stats()})
	})
	return mux
}

// MaxRequestBytes bounds /check and /batch request bodies; a batch larger
// than this should be split client-side (or streamed — see ROADMAP).
const MaxRequestBytes = 64 << 20

// decode parses the JSON body into dst, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// resolve compiles the request's schema through the registry, writing a 422
// for schemas that do not compile.
func resolve(w http.ResponseWriter, e *Engine, req schemaRequest) (*Schema, bool) {
	kind, err := ParseSourceKind(req.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	if req.Root == "" {
		httpError(w, http.StatusBadRequest, "missing root element")
		return nil, false
	}
	s, err := e.Compile(kind, req.Schema, req.Root, req.Options)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf("schema does not compile: %v", err))
		return nil, false
	}
	return s, true
}

func reply(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
