package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/complete"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/gen"
)

// exampleS is the paper's running example (Figure 3: two <d> insertions).
const exampleS = `<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`

func TestCompleteBatchBasics(t *testing.T) {
	e := New(Config{Workers: 4})
	s, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docs := []Doc{
		{ID: "figure3", Content: exampleS},
		{ID: "valid", Content: `<r><a><c>x</c><d></d></a></r>`},
		{ID: "notpv", Content: `<r><a><b>x</b><e></e><c>y</c></a></r>`},
		{ID: "malformed", Content: `<r><a>`},
	}
	results, stats := e.CompleteBatch(s, docs, true)
	if len(results) != 4 {
		t.Fatalf("results: %d", len(results))
	}
	fig := results[0]
	if !fig.Completed || fig.AlreadyValid || fig.Inserted != 2 || len(fig.Insertions) != 2 {
		t.Errorf("figure3: %+v", fig)
	}
	if !strings.Contains(fig.Output, "<d>") {
		t.Errorf("figure3 output: %s", fig.Output)
	}
	valid := results[1]
	if !valid.Completed || !valid.AlreadyValid || valid.Inserted != 0 || valid.Output != docs[1].Content {
		t.Errorf("valid: %+v", valid)
	}
	if results[2].Completed || results[2].Detail == "" || results[2].Err != nil {
		t.Errorf("notpv: %+v", results[2])
	}
	if results[3].Err == nil {
		t.Errorf("malformed: %+v", results[3])
	}
	if stats.Docs != 4 || stats.PotentiallyValid != 2 || stats.Valid != 1 ||
		stats.Malformed != 1 || stats.Inserted != 2 {
		t.Errorf("stats: %+v", stats)
	}
	// Lifetime counters picked the insertions up.
	if es := e.Stats(); es.Inserted != 2 || es.Docs != 4 {
		t.Errorf("engine stats: %+v", es)
	}
}

// TestCompleteBatchOutputsValidate: every completed output must fully
// validate under its schema, and re-completing it must be a no-op.
func TestCompleteBatchOutputsValidate(t *testing.T) {
	e := New(Config{Workers: 4})
	s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	d := dtd.MustParse(dtd.Play)
	var docs []Doc
	for i := 0; i < 60; i++ {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 7, MaxRepeat: 3})
		if i%2 == 1 {
			gen.Strip(rng, doc, 0.4)
		}
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	results, stats := e.CompleteBatch(s, docs, true)
	if stats.Malformed != 0 || stats.PotentiallyValid != len(docs) {
		t.Fatalf("stats: %+v", stats)
	}
	for _, r := range results {
		out, err := dom.Parse(r.Output)
		if err != nil {
			t.Fatalf("doc %s output does not parse: %v", r.ID, err)
		}
		if verr := s.Valid.Validate(out.Root); verr != nil {
			t.Errorf("doc %s completion does not validate: %v", r.ID, verr)
		}
		if r.Inserted == 0 && r.Output != docs[r.Index].Content {
			t.Errorf("doc %s: zero insertions but output differs", r.ID)
		}
	}
}

// TestCompleteBatchDifferential pins the worker-pool completion to the
// sequential library path: identical outputs and inserted counts, across a
// mixed corpus and several worker counts.
func TestCompleteBatchDifferential(t *testing.T) {
	d := dtd.MustParse(dtd.Figure1)
	rng := rand.New(rand.NewSource(7))
	var docs []Doc
	for i := 0; i < 120; i++ {
		doc := gen.GenValid(rng, d, "r", gen.DocOptions{MaxDepth: 6, MaxRepeat: 2})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.5)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	// Sequential reference: one fresh completer per document batchless.
	seq := make([]CompleteResult, len(docs))
	refEngine := New(Config{Workers: 1})
	refSchema, err := refEngine.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range docs {
		c := complete.New(refSchema.Core)
		seq[i] = refEngine.completeOne(refSchema, c, doc, true)
		seq[i].Index = i
	}
	for _, workers := range []int{1, 2, 8} {
		e := New(Config{Workers: workers})
		s, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		results, _ := e.CompleteBatch(s, docs, true)
		for i := range results {
			got, want := results[i], seq[i]
			if got.Completed != want.Completed || got.Inserted != want.Inserted ||
				got.Output != want.Output || got.Detail != want.Detail ||
				(got.Err == nil) != (want.Err == nil) {
				t.Errorf("workers=%d doc %d diverges:\n got  %+v\n want %+v", workers, i, got, want)
			}
			if len(got.Insertions) != len(want.Insertions) {
				t.Errorf("workers=%d doc %d: %d insertions, want %d", workers, i, len(got.Insertions), len(want.Insertions))
				continue
			}
			for k := range got.Insertions {
				if got.Insertions[k] != want.Insertions[k] {
					t.Errorf("workers=%d doc %d insertion %d: %+v != %+v", workers, i, k, got.Insertions[k], want.Insertions[k])
				}
			}
		}
	}
}

// TestCompleteSchemaRefRouting: a mixed batch routes completions by ref;
// docs without ref and without default get a routing error.
func TestCompleteSchemaRefRouting(t *testing.T) {
	e := New(Config{Workers: 2})
	fig, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	play, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docs := []Doc{
		{ID: "fig", Content: exampleS, SchemaRef: fig.Ref[:12]},
		{ID: "play", Content: `<play><title>t</title></play>`, SchemaRef: play.Ref[:12]},
		{ID: "lost", Content: `<r></r>`},
		{ID: "badref", Content: `<r></r>`, SchemaRef: strings.Repeat("f", 16)},
	}
	results, stats := e.CompleteBatch(nil, docs, false)
	if !results[0].Completed || results[0].Inserted != 2 {
		t.Errorf("fig: %+v", results[0])
	}
	if !results[1].Completed || results[1].Inserted == 0 {
		t.Errorf("play: %+v", results[1])
	}
	if !IsRoutingError(results[2].Err) || !IsRoutingError(results[3].Err) {
		t.Errorf("routing: %+v / %+v", results[2], results[3])
	}
	if stats.RoutingErrors != 2 {
		t.Errorf("stats: %+v", stats)
	}
	// withDiff=false leaves records off but keeps output + count.
	if results[0].Insertions != nil {
		t.Errorf("diff off but records present: %+v", results[0])
	}
}

func completeBody(t *testing.T, schema, root string, docs []map[string]any, diffFlag *bool) string {
	t.Helper()
	m := map[string]any{"documents": docs}
	if schema != "" {
		m["schema"] = schema
	}
	if root != "" {
		m["root"] = root
	}
	if diffFlag != nil {
		m["diff"] = *diffFlag
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestServerComplete(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	body := completeBody(t, dtd.Figure1, "r", []map[string]any{
		{"id": "figure3", "content": exampleS},
		{"id": "valid", "content": `<r><a><c>x</c><d></d></a></r>`},
		{"id": "notpv", "content": `<r><a><b>x</b><e></e><c>y</c></a></r>`},
	}, nil)
	rec := post(t, h, "/complete", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp completeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results: %+v", resp.Results)
	}
	fig := resp.Results[0]
	if !fig.Completed || fig.Inserted != 2 || len(fig.Insertions) != 2 || !strings.Contains(fig.Output, "<d>") {
		t.Errorf("figure3: %+v", fig)
	}
	if !resp.Results[1].AlreadyValid || resp.Results[1].Inserted != 0 {
		t.Errorf("valid: %+v", resp.Results[1])
	}
	// Not potentially valid is a typed verdict with detail — not a 500.
	notpv := resp.Results[2]
	if notpv.Completed || notpv.Detail == "" || notpv.Error != "" {
		t.Errorf("notpv: %+v", notpv)
	}
	if resp.Stats.Inserted != 2 || resp.Stats.Docs != 3 {
		t.Errorf("stats: %+v", resp.Stats)
	}
}

// TestServerCompleteDiffSwitch: "diff": false drops insertion records.
func TestServerCompleteDiffSwitch(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	off := false
	body := completeBody(t, dtd.Figure1, "r", []map[string]any{
		{"id": "figure3", "content": exampleS},
	}, &off)
	rec := post(t, h, "/complete", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp completeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if r := resp.Results[0]; r.Inserted != 2 || r.Insertions != nil || r.Output == "" {
		t.Errorf("diff off: %+v", r)
	}
}

// TestServerCompleteErrorPaths covers the satellite matrix: unknown schema
// ref, not-PV input, bad schema, and an oversized body.
func TestServerCompleteErrorPaths(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))

	// Unknown schema ref: per-document error, request still 200.
	body := completeBody(t, "", "", []map[string]any{
		{"id": "ghost", "content": `<r></r>`, "schemaRef": strings.Repeat("e", 16)},
	}, nil)
	rec := post(t, h, "/complete", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown ref status %d: %s", rec.Code, rec.Body)
	}
	var resp completeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Results[0].Error, "unknown schemaRef") || resp.Stats.RoutingErrors != 1 {
		t.Errorf("unknown ref: %+v stats %+v", resp.Results[0], resp.Stats)
	}

	// Schema that does not compile: 422.
	rec = post(t, h, "/complete", completeBody(t, "<!ELEMENT broken", "r", nil, nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad schema status %d: %s", rec.Code, rec.Body)
	}

	// Garbage body: 400.
	rec = post(t, h, "/complete", `{"this is not json`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body status %d", rec.Code)
	}
}

// TestServerCompleteOversized: a /complete body over MaxRequestBytes draws
// a 413 (the batched route caps the whole body, like /batch).
func TestServerCompleteOversized(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates >64MB")
	}
	h := NewServer(New(Config{Workers: 2}))
	big := strings.Repeat("x", MaxRequestBytes+1)
	body := completeBody(t, dtd.Figure1, "r", []map[string]any{{"id": "big", "content": big}}, nil)
	rec := post(t, h, "/complete", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

// TestCompleteStreamHappyPath: NDJSON in, per-document completion lines
// with diff records out, stats trailer with inserted total.
func TestCompleteStreamHappyPath(t *testing.T) {
	h := NewServer(New(Config{Workers: 4}))
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "figure3", exampleS, ""),
		docLine(t, "valid", `<r><a><c>x</c><d></d></a></r>`, ""),
		docLine(t, "notpv", `<r><a><b>x</b><e></e><c>y</c></a></r>`, ""),
		docLine(t, "malformed", `<r><a>`, ""),
	)
	rec := post(t, h, "/complete/stream", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	results, errLines, stats := parseCompleteStream(t, rec.Body.String())
	if len(errLines) > 0 {
		t.Fatalf("unexpected error lines: %v", errLines)
	}
	if len(results) != 4 || stats == nil {
		t.Fatalf("results %d, stats %v", len(results), stats)
	}
	if r := results[0]; !r.Completed || r.Inserted != 2 || len(r.Insertions) != 2 || r.Index != 0 {
		t.Errorf("figure3: %+v", r)
	}
	if r := results[1]; !r.AlreadyValid || r.Inserted != 0 {
		t.Errorf("valid: %+v", r)
	}
	if r := results[2]; r.Completed || r.Detail == "" || r.Error != "" {
		t.Errorf("notpv: %+v", r)
	}
	if r := results[3]; r.Error == "" {
		t.Errorf("malformed: %+v", r)
	}
	if stats.Docs != 4 || stats.Inserted != 2 || stats.Malformed != 1 {
		t.Errorf("stats: %+v", stats)
	}
}

// parseCompleteStream splits an NDJSON completion response into result
// lines and the stats trailer.
func parseCompleteStream(t *testing.T, body string) (results []completeJSON, errLines []string, stats *BatchStats) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad response line %q: %v", line, err)
		}
		switch {
		case probe["stats"] != nil:
			var s streamStats
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				t.Fatal(err)
			}
			stats = &s.Stats
		case probe["error"] != nil && probe["index"] == nil:
			var e map[string]string
			json.Unmarshal([]byte(line), &e)
			errLines = append(errLines, e["error"])
		default:
			var r completeJSON
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
	}
	return results, errLines, stats
}

// TestCompleteStreamMixedSchemaCorpus is the acceptance experiment: a
// 1k-document mixed-schema NDJSON corpus streams through
// POST /complete/stream with per-document diff records, and the streamed
// outputs match sequential per-document completion exactly (completed
// output and inserted counts identical).
func TestCompleteStreamMixedSchemaCorpus(t *testing.T) {
	const corpus = 1000
	e := New(Config{Workers: 4})
	fig, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	play, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(e)

	figD := dtd.MustParse(dtd.Figure1)
	playD := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(42))
	lines := []string{header(t, dtd.WeakRecursive, "p")} // default schema for ref-less docs
	type docRec struct {
		id      string
		content string
		schema  *Schema
	}
	var docsMeta []docRec
	for i := 0; i < corpus; i++ {
		var content string
		var ref string
		var s *Schema
		switch i % 3 {
		case 0:
			doc := gen.GenValid(rng, figD, "r", gen.DocOptions{MaxDepth: 5, MaxRepeat: 2})
			gen.Strip(rng, doc, 0.4)
			content, ref, s = doc.String(), fig.Ref[:16], fig
		case 1:
			doc := gen.GenValid(rng, playD, "play", gen.DocOptions{MaxDepth: 6, MaxRepeat: 2})
			gen.Strip(rng, doc, 0.3)
			content, ref, s = doc.String(), play.Ref[:16], play
		case 2:
			content = fmt.Sprintf(`<p>pv %d <b>bold</b> tail</p>`, i)
			var werr error
			s, werr = e.Compile(DTDSource, dtd.WeakRecursive, "p", CompileOptions{})
			if werr != nil {
				t.Fatal(werr)
			}
		}
		id := fmt.Sprint(i)
		docsMeta = append(docsMeta, docRec{id: id, content: content, schema: s})
		lines = append(lines, docLine(t, id, content, ref))
	}
	start := time.Now()
	rec := post(t, h, "/complete/stream", ndjson(lines...))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %.400s", rec.Code, rec.Body)
	}
	results, errLines, stats := parseCompleteStream(t, rec.Body.String())
	if len(errLines) > 0 {
		t.Fatalf("error lines: %v", errLines)
	}
	if len(results) != corpus || stats == nil || stats.Docs != corpus {
		t.Fatalf("results %d stats %+v", len(results), stats)
	}
	if stats.Malformed != 0 || stats.RoutingErrors != 0 || stats.PotentiallyValid != corpus {
		t.Fatalf("stats: %+v", stats)
	}
	t.Logf("1k mixed-schema completions in %v (%d elements inserted)", time.Since(start), stats.Inserted)

	// Engine-vs-sequential differential equality: identical outputs and
	// inserted counts, plus every stripped document carries diff records.
	for i, r := range results {
		meta := docsMeta[i]
		if r.ID != meta.id || r.Index != i {
			t.Fatalf("ordering broke at %d: %+v", i, r)
		}
		doc, err := dom.Parse(meta.content)
		if err != nil {
			t.Fatal(err)
		}
		c := complete.New(meta.schema.Core)
		if meta.schema.Valid.Validate(doc.Root) == nil {
			if !r.AlreadyValid || r.Inserted != 0 || r.Output != meta.content {
				t.Errorf("doc %s: already-valid mismatch: %+v", r.ID, r)
			}
			continue
		}
		out, nodes, err := c.CompleteTracked(doc.Root)
		if err != nil {
			t.Fatalf("sequential completion of %s failed: %v", r.ID, err)
		}
		if r.Output != out.String() || r.Inserted != len(nodes) {
			t.Errorf("doc %s diverges from sequential: inserted %d vs %d", r.ID, r.Inserted, len(nodes))
		}
		if r.Inserted > 0 && len(r.Insertions) != r.Inserted {
			t.Errorf("doc %s: %d insertion records for %d insertions", r.ID, len(r.Insertions), r.Inserted)
		}
	}
}

// TestCompleteStreamOversizedDocument: per-document 64MB cap with a typed
// 413, as on /check/stream.
func TestCompleteStreamOversizedDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates >128MB")
	}
	h := NewServer(New(Config{Workers: 2}))
	big := strings.Repeat("x", MaxDocumentBytes+1)
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "big", "<r>"+big+"</r>", ""),
	)
	rec := post(t, h, "/complete/stream", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e["error"], "per-document cap") {
		t.Fatalf("error body: %.200s", rec.Body)
	}
}

// TestCompleteStreamClientDisconnect: the handler finishes promptly after
// the client dies mid-stream, having flushed completed results.
func TestCompleteStreamClientDisconnect(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	pr, pw := io.Pipe()
	req := httptest.NewRequest("POST", "/complete/stream", pr)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, req)
	}()
	pw.Write([]byte(header(t, dtd.Figure1, "r") + "\n"))
	pw.Write([]byte(docLine(t, "one", exampleS, "") + "\n"))
	pw.CloseWithError(io.ErrUnexpectedEOF) // client vanishes mid-stream
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not finish after client disconnect")
	}
	results, errLines, _ := parseCompleteStream(t, rec.Body.String())
	if len(results) != 1 || !results[0].Completed || results[0].Inserted != 2 {
		t.Fatalf("flushed results before disconnect: %+v", results)
	}
	if len(errLines) != 1 || !strings.Contains(errLines[0], "reading request body") {
		t.Fatalf("error lines: %v", errLines)
	}
}

// TestCompleteStreamDiffQueryParam: ?diff=0 suppresses insertion records on
// the stream.
func TestCompleteStreamDiffQueryParam(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "figure3", exampleS, ""),
	)
	rec := post(t, h, "/complete/stream?diff=0", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	results, _, _ := parseCompleteStream(t, rec.Body.String())
	if len(results) != 1 || results[0].Inserted != 2 || results[0].Insertions != nil {
		t.Fatalf("diff=0: %+v", results)
	}
}

// TestCompletePreservesProlog: completion output is a document-level
// serialization — the XML declaration PI and prolog/epilog comments
// survive, on both the already-valid fast path and the DP path.
func TestCompletePreservesProlog(t *testing.T) {
	e := New(Config{Workers: 2})
	s, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const prolog = `<?xml version="1.0"?><!-- license -->`
	const epilog = `<!-- end -->`
	results, _ := e.CompleteBatch(s, []Doc{
		{ID: "needs-work", Content: prolog + exampleS + epilog},
		{ID: "already-valid", Content: prolog + `<r><a><c>x</c><d></d></a></r>` + epilog},
	}, true)
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("%s: %+v", r.ID, r)
		}
		if !strings.HasPrefix(r.Output, prolog) || !strings.HasSuffix(r.Output, epilog) {
			t.Errorf("%s dropped prolog/epilog: %s", r.ID, r.Output)
		}
	}
	if results[0].Inserted != 2 || results[1].Inserted != 0 {
		t.Errorf("inserted counts: %d / %d", results[0].Inserted, results[1].Inserted)
	}
	// The diff's records are computed against the root; the serialization
	// carried on the wire matches Output.
	if !strings.Contains(results[0].Output, "<d>") {
		t.Errorf("completion missing: %s", results[0].Output)
	}
}
