package engine

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// MaxDocumentBytes is the default per-document cap on the NDJSON streaming
// endpoints (Config.MaxDocBytes overrides it per engine). Unlike
// MaxRequestBytes (which bounds whole /check, /batch and /complete bodies),
// this is a per-document bound: a stream may carry terabytes as long as
// each document fits. POST /check/raw has no cap at all — it checks a
// single document of any size in bounded memory.
const MaxDocumentBytes = 64 << 20

// streamLine is one NDJSON request line: either a schema header (Schema or
// Root set) that (re)establishes the default schema for subsequent
// documents, or a document.
type streamLine struct {
	Schema  string         `json:"schema,omitempty"`
	Kind    string         `json:"kind,omitempty"`
	Root    string         `json:"root,omitempty"`
	Options CompileOptions `json:"options,omitempty"`

	ID        string `json:"id,omitempty"`
	Content   string `json:"content,omitempty"`
	SchemaRef string `json:"schemaRef,omitempty"`
}

func (ln *streamLine) isHeader() bool { return ln.Schema != "" || ln.Root != "" }

// streamFail is a terminal stream error: reported as a real HTTP status if
// no output has been flushed yet, and as a final {"error":...} line
// otherwise.
type streamFail struct {
	code int
	msg  string
}

// streamOut is the outcome of one streamed document: the wire line to emit
// (rendered once the final stream index is known) plus its verdict
// accounting.
type streamOut struct {
	line     func(index int) any
	tally    Result
	inserted int
}

// streamRunner runs one document on behalf of a streaming endpoint. The
// check and complete streams differ only here; the reading, backpressure,
// ordering and error discipline are shared.
type streamRunner func(e *Engine, s *Schema, d Doc) streamOut

// streamJob is one unit in the ordered result pipeline: a pending outcome,
// or a terminal failure.
type streamJob struct {
	res  chan streamOut // buffered(1), written by the worker goroutine
	fail *streamFail
}

// streamStats is the closing NDJSON line.
type streamStats struct {
	Stats BatchStats `json:"stats"`
}

// runCheck adapts the checking path to the shared stream pipeline.
func runCheck(e *Engine, s *Schema, d Doc) streamOut {
	res := e.Check(s, d)
	return streamOut{
		line:  func(i int) any { res.Index = i; return toJSON(res) },
		tally: res,
	}
}

// runComplete adapts the completion path to the shared stream pipeline.
func runComplete(withDiff bool) streamRunner {
	return func(e *Engine, s *Schema, d Doc) streamOut {
		res := e.Complete(s, d, withDiff)
		return streamOut{
			line:     func(i int) any { res.Index = i; return completeToJSON(res) },
			tally:    res.tallyResult(),
			inserted: res.Inserted,
		}
	}
}

// serveCheckStream implements POST /check/stream.
func serveCheckStream(e *Engine, w http.ResponseWriter, r *http.Request) {
	serveDocStream(e, w, r, runCheck)
}

// serveCompleteStream implements POST /complete/stream; ?diff=0 drops the
// per-insertion records (the completed output always travels).
func serveCompleteStream(e *Engine, w http.ResponseWriter, r *http.Request) {
	serveDocStream(e, w, r, runComplete(wantDiff(r)))
}

// wantDiff reads the diff query parameter; insertion records default to on.
func wantDiff(r *http.Request) bool {
	switch r.URL.Query().Get("diff") {
	case "0", "false", "no":
		return false
	}
	return true
}

// streamBody resolves the request's Content-Encoding: identity bodies pass
// through, gzip bodies are inflated transparently (the per-document cap
// then applies to the *decompressed* bytes, since every downstream limit —
// the scanner's line bound and the explicit content check — sees inflated
// data). The cleanup closes the inflater; a nil reader means the encoding
// was rejected and an error response has been written.
func streamBody(w http.ResponseWriter, r *http.Request) (io.Reader, func()) {
	switch enc := strings.ToLower(r.Header.Get("Content-Encoding")); enc {
	case "", "identity":
		return r.Body, func() {}
	case "gzip", "x-gzip":
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad gzip request body: %v", err))
			return nil, func() {}
		}
		return zr, func() { _ = zr.Close() }
	default:
		httpError(w, http.StatusUnsupportedMediaType,
			fmt.Sprintf("unsupported Content-Encoding %q (want gzip or identity)", enc))
		return nil, func() {}
	}
}

// serveDocStream is the shared NDJSON document-stream pipeline behind
// POST /check/stream and POST /complete/stream: documents are read
// incrementally off the request body (optionally gzip-encoded), processed
// with at most 2×workers in flight (the reader blocks when the window is
// full — TCP backpressure instead of buffering), and each outcome is
// flushed as soon as it is ready, in input order.
func serveDocStream(e *Engine, w http.ResponseWriter, r *http.Request, run streamRunner) {
	start := time.Now()
	body, closeBody := streamBody(w, r)
	if body == nil {
		return
	}
	defer closeBody()
	// A stream reads the body for as long as the client keeps sending;
	// lift the server's ReadTimeout for this request only (the slow-client
	// protection of the bounded routes stays in place). Errors are ignored:
	// test recorders and exotic transports simply keep their defaults.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	sc := bufio.NewScanner(body)
	// A JSON-escaped document inflates by at most 2x for sane inputs; the
	// slack keeps a cap-sized document scannable while still bounding one
	// line's buffer.
	sc.Buffer(make([]byte, 64<<10), 2*e.maxDocBytes+(64<<10))

	inflight := 2 * e.workers
	queue := make(chan streamJob, inflight)
	writerDead := make(chan struct{})

	stats := BatchStats{Workers: e.workers}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		started, discard, failed := false, false, false
		flush := func() {}
		if f, ok := w.(http.Flusher); ok {
			flush = f.Flush
		}
		enc := json.NewEncoder(w)
		emit := func(v any) {
			if discard {
				return
			}
			if !started {
				w.Header().Set("Content-Type", "application/x-ndjson")
				started = true
			}
			if err := enc.Encode(v); err != nil {
				// Client is gone; keep draining so the reader never blocks
				// on a full queue.
				discard = true
				close(writerDead)
				return
			}
			flush()
		}
		for j := range queue {
			if j.fail != nil {
				failed = true
				if !started && !discard {
					httpError(w, j.fail.code, j.fail.msg)
					discard = true
				} else {
					emit(map[string]string{"error": j.fail.msg})
				}
				continue
			}
			out := <-j.res
			index := stats.Docs
			stats.Docs++
			out.tally.Index = index
			stats.tally(&out.tally)
			stats.Inserted += int64(out.inserted)
			emit(out.line(index))
		}
		if !failed {
			stats.Elapsed = time.Since(start)
			if secs := stats.Elapsed.Seconds(); secs > 0 {
				stats.DocsPerSec = float64(stats.Docs) / secs
				stats.MBPerSec = float64(stats.Bytes) / (1 << 20) / secs
			}
			emit(streamStats{Stats: stats})
		}
	}()

	// enqueue hands a job to the writer, giving up if the writer or client
	// died; false stops the read loop.
	enqueue := func(j streamJob) bool {
		select {
		case queue <- j:
			return true
		case <-writerDead:
			return false
		case <-r.Context().Done():
			return false
		}
	}
	terminal := func(code int, msg string) {
		enqueue(streamJob{fail: &streamFail{code: code, msg: msg}})
	}

	var cur *Schema
	lineNo := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		lineNo++
		var ln streamLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ln); err != nil {
			terminal(http.StatusBadRequest, fmt.Sprintf("line %d: bad JSON: %v", lineNo, err))
			break
		}
		if ln.isHeader() {
			kind, err := ParseSourceKind(ln.Kind)
			if err != nil {
				terminal(http.StatusBadRequest, fmt.Sprintf("line %d: %v", lineNo, err))
				break
			}
			if ln.Root == "" {
				terminal(http.StatusBadRequest, fmt.Sprintf("line %d: schema header missing root element", lineNo))
				break
			}
			s, err := e.Compile(kind, ln.Schema, ln.Root, ln.Options)
			if err != nil {
				terminal(http.StatusUnprocessableEntity, fmt.Sprintf("line %d: schema does not compile: %v", lineNo, err))
				break
			}
			cur = s
			continue
		}
		if len(ln.Content) > e.maxDocBytes {
			terminal(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("line %d: document %q is %d bytes; the per-document cap is %d", lineNo, ln.ID, len(ln.Content), e.maxDocBytes))
			break
		}
		j := streamJob{res: make(chan streamOut, 1)}
		if !enqueue(j) {
			break
		}
		// run blocks on the engine-wide worker bound, resolves the
		// document's SchemaRef (or uses the current default) and accounts
		// lifetime counters; the buffered channel means no goroutine leaks
		// even if the writer has given up.
		go func(s *Schema, d Doc) {
			j.res <- run(e, s, d)
		}(cur, Doc{ID: ln.ID, Content: ln.Content, SchemaRef: ln.SchemaRef})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			terminal(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("line %d: document line exceeds the per-document cap of %d bytes", lineNo+1, e.maxDocBytes))
		} else {
			// Most commonly a client disconnect mid-stream.
			terminal(http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		}
	}
	close(queue)
	wg.Wait()
	e.busyNanos.Add(time.Since(start).Nanoseconds())
}

// serveCheckRaw implements POST /check/raw: the body is one raw XML
// document (no JSON envelope), checked in bounded memory with no size cap —
// the route for documents past MaxDocumentBytes. The schema is selected by
// reference only (X-Schema-Ref header or ?schemaRef=, against a schema
// previously compiled via /schemas or a stream header): 400 without a ref,
// 404 when it resolves to nothing. gzip Content-Encoding is honored (415
// otherwise, like the stream routes) and the check sees inflated bytes.
// The verdict is potential validity only; Valid is always false here.
func serveCheckRaw(e *Engine, w http.ResponseWriter, r *http.Request) {
	ref := r.Header.Get("X-Schema-Ref")
	if ref == "" {
		ref = r.URL.Query().Get("schemaRef")
	}
	if ref == "" {
		httpError(w, http.StatusBadRequest, "missing schema reference (X-Schema-Ref header or ?schemaRef=)")
		return
	}
	s, err := e.store.ResolveRef(ref)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	body, closeBody := streamBody(w, r)
	if body == nil {
		return
	}
	defer closeBody()
	// An unbounded body can legitimately take longer than the server's
	// ReadTimeout; lift it for this request like the stream routes do.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	res := e.CheckReader(s, r.URL.Query().Get("id"), body)
	reply(w, toJSON(res))
}
