package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dtd"
)

// ndjson joins request lines into a stream body.
func ndjson(lines ...string) string { return strings.Join(lines, "\n") + "\n" }

func header(t *testing.T, schema, root string) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{"schema": schema, "root": root})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func docLine(t *testing.T, id, content, ref string) string {
	t.Helper()
	m := map[string]any{"id": id, "content": content}
	if ref != "" {
		m["schemaRef"] = ref
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parseStream splits an NDJSON response into result lines and the stats
// trailer.
func parseStream(t *testing.T, body string) (results []resultJSON, errLines []string, stats *BatchStats) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad response line %q: %v", line, err)
		}
		switch {
		case probe["stats"] != nil:
			var s streamStats
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				t.Fatal(err)
			}
			stats = &s.Stats
		case probe["error"] != nil && probe["index"] == nil:
			var e map[string]string
			json.Unmarshal([]byte(line), &e)
			errLines = append(errLines, e["error"])
		default:
			var r resultJSON
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
	}
	return results, errLines, stats
}

func TestStreamHappyPath(t *testing.T) {
	h := NewServer(New(Config{Workers: 4}))
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "ok", `<r><a><c>x</c><d></d></a></r>`, ""),
		docLine(t, "notpv", `<r><a><b>x</b><e></e><c>y</c></a></r>`, ""),
		docLine(t, "malformed", `<r><a>`, ""),
	)
	rec := post(t, h, "/check/stream", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	results, errLines, stats := parseStream(t, rec.Body.String())
	if len(errLines) > 0 {
		t.Fatalf("unexpected error lines: %v", errLines)
	}
	if len(results) != 3 || stats == nil {
		t.Fatalf("results %v, stats %v", results, stats)
	}
	if !results[0].PotentiallyValid || !results[0].Valid || results[0].ID != "ok" || results[0].Index != 0 {
		t.Errorf("doc 0: %+v", results[0])
	}
	if results[1].PotentiallyValid || results[1].Detail == "" {
		t.Errorf("doc 1: %+v", results[1])
	}
	if results[2].Error == "" {
		t.Errorf("doc 2: %+v", results[2])
	}
	if stats.Docs != 3 || stats.PotentiallyValid != 1 || stats.Valid != 1 || stats.Malformed != 1 {
		t.Errorf("stats: %+v", stats)
	}
}

// TestStreamMultiSchema switches the default schema mid-stream and routes
// one document by schemaRef.
func TestStreamMultiSchema(t *testing.T) {
	e := New(Config{Workers: 2})
	weak, err := e.Compile(DTDSource, dtd.WeakRecursive, "p", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(e)
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "fig", `<r><a><c>x</c><d></d></a></r>`, ""),
		docLine(t, "weak-ref", `<p>text <b>bold</b></p>`, weak.Ref[:16]),
		header(t, dtd.Play, "play"),
		docLine(t, "play-default", `<play><title>t</title></play>`, ""),
	)
	rec := post(t, h, "/check/stream", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	results, _, stats := parseStream(t, rec.Body.String())
	if len(results) != 3 || stats == nil || stats.Docs != 3 {
		t.Fatalf("results %v stats %+v", results, stats)
	}
	for i, want := range []bool{true, true, true} { // all three PV under their own schema
		if results[i].PotentiallyValid != want {
			t.Errorf("doc %d (%s): %+v", i, results[i].ID, results[i])
		}
	}
	if results[2].Valid {
		t.Errorf("play-default is incomplete; must not be fully valid: %+v", results[2])
	}
}

// TestStreamMalformedJSON: a bad line before any output is a proper 400.
func TestStreamMalformedJSON(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	rec := post(t, h, "/check/stream", ndjson(`{"this is not json`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e["error"], "bad JSON") {
		t.Fatalf("error body: %s", rec.Body)
	}
}

// TestStreamMalformedJSONMidStream: after results have been flushed the
// stream cannot change its status; the failure becomes a terminal error
// line and no stats trailer is written.
func TestStreamMalformedJSONMidStream(t *testing.T) {
	h := NewServer(New(Config{Workers: 1}))
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "ok", `<r><a><c>x</c><d></d></a></r>`, ""),
		`not json at all`,
	)
	rec := post(t, h, "/check/stream", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	results, errLines, stats := parseStream(t, rec.Body.String())
	if len(results) != 1 || !results[0].PotentiallyValid {
		t.Fatalf("results: %v", results)
	}
	if len(errLines) != 1 || !strings.Contains(errLines[0], "bad JSON") {
		t.Fatalf("error lines: %v", errLines)
	}
	if stats != nil {
		t.Fatalf("stats trailer after terminal error: %+v", stats)
	}
}

// TestStreamUnknownSchemaRef: an unresolvable ref is a per-document error
// — the stream keeps going.
func TestStreamUnknownSchemaRef(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "bad-ref", `<r></r>`, strings.Repeat("d", 16)),
		docLine(t, "ok", `<r><a><c>x</c><d></d></a></r>`, ""),
	)
	rec := post(t, h, "/check/stream", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	results, _, stats := parseStream(t, rec.Body.String())
	if len(results) != 2 || stats == nil || stats.Docs != 2 || stats.RoutingErrors != 1 || stats.Malformed != 0 {
		t.Fatalf("results %v stats %+v", results, stats)
	}
	if !strings.Contains(results[0].Error, "unknown schemaRef") {
		t.Errorf("bad-ref: %+v", results[0])
	}
	if !results[1].PotentiallyValid {
		t.Errorf("ok doc: %+v", results[1])
	}
}

// TestStreamNoSchema: documents before any header and without a ref get a
// typed per-document error.
func TestStreamNoSchema(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	rec := post(t, h, "/check/stream", ndjson(docLine(t, "d", `<r></r>`, "")))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	results, _, _ := parseStream(t, rec.Body.String())
	if len(results) != 1 || !strings.Contains(results[0].Error, "no schemaRef") {
		t.Fatalf("results: %v", results)
	}
}

// TestStreamBadSchemaHeader: a schema that does not compile is terminal
// (422 before output).
func TestStreamBadSchemaHeader(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	rec := post(t, h, "/check/stream", ndjson(header(t, "<!ELEMENT broken", "r")))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
}

// TestStreamOversizedDocument is the 64MB-cap regression test: a document
// over MaxDocumentBytes draws a typed 413 JSON error, per document rather
// than per body (a same-size body split into small documents is fine).
func TestStreamOversizedDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates >128MB")
	}
	h := NewServer(New(Config{Workers: 2}))
	big := strings.Repeat("x", MaxDocumentBytes+1)
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "big", "<r>"+big+"</r>", ""),
	)
	rec := post(t, h, "/check/stream", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e["error"], "per-document cap") {
		t.Fatalf("error body: %.200s", rec.Body)
	}

	// Per-document, not per-body: many small documents totalling more than
	// the cap stream through fine.
	var lines []string
	lines = append(lines, header(t, dtd.Figure1, "r"))
	doc := `<r><a><c>` + strings.Repeat("y", 1<<20) + `</c><d></d></a></r>`
	for i := 0; i < 80; i++ { // ~80MB body, 1MB documents
		lines = append(lines, docLine(t, fmt.Sprint(i), doc, ""))
	}
	rec = post(t, h, "/check/stream", ndjson(lines...))
	if rec.Code != http.StatusOK {
		t.Fatalf("split body status %d: %.300s", rec.Code, rec.Body)
	}
	results, errLines, stats := parseStream(t, rec.Body.String())
	if len(errLines) > 0 || stats == nil || stats.Docs != 80 || len(results) != 80 {
		t.Fatalf("split body: %d results, errs %v, stats %+v", len(results), errLines, stats)
	}
}

// TestStreamClientDisconnect drives the handler over a pipe that dies
// mid-stream and requires it to finish promptly without hanging or
// panicking, having flushed the verdicts it completed.
func TestStreamClientDisconnect(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	pr, pw := io.Pipe()
	req := httptest.NewRequest("POST", "/check/stream", pr)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, req)
	}()
	pw.Write([]byte(header(t, dtd.Figure1, "r") + "\n"))
	pw.Write([]byte(docLine(t, "one", `<r><a><c>x</c><d></d></a></r>`, "") + "\n"))
	pw.CloseWithError(io.ErrUnexpectedEOF) // client vanishes mid-stream
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not finish after client disconnect")
	}
	results, errLines, _ := parseStream(t, rec.Body.String())
	if len(results) != 1 || !results[0].PotentiallyValid {
		t.Fatalf("flushed results before disconnect: %v", results)
	}
	if len(errLines) != 1 || !strings.Contains(errLines[0], "reading request body") {
		t.Fatalf("error lines: %v", errLines)
	}
}

// TestStreamEmptyBody: an empty stream is fine — just a stats trailer.
func TestStreamEmptyBody(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	rec := post(t, h, "/check/stream", "\n\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	results, errLines, stats := parseStream(t, rec.Body.String())
	if len(results) != 0 || len(errLines) != 0 || stats == nil || stats.Docs != 0 {
		t.Fatalf("results %v errs %v stats %+v", results, errLines, stats)
	}
}

// TestBatchSchemaRefOverHTTP exercises multi-schema routing through the
// non-streaming /batch route, including ref-only batches with no inline
// schema.
func TestBatchSchemaRefOverHTTP(t *testing.T) {
	e := New(Config{Workers: 2})
	fig, err := e.Compile(DTDSource, dtd.Figure1, "r", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(e)
	body, err := json.Marshal(map[string]any{
		"documents": []map[string]string{
			{"id": "a", "content": `<r><a><c>x</c><d></d></a></r>`, "schemaRef": fig.Ref[:16]},
			{"id": "b", "content": `<r></r>`},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, "/batch", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || !resp.Results[0].PotentiallyValid {
		t.Fatalf("results: %+v", resp.Results)
	}
	if !strings.Contains(resp.Results[1].Error, "no schemaRef") {
		t.Fatalf("unrouted doc: %+v", resp.Results[1])
	}
}
