package engine

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// postGzip posts a gzip-compressed body with Content-Encoding: gzip.
func postGzip(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(body)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, &buf)
	req.Header.Set("Content-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestStreamGzipRoundTrip runs the same NDJSON stream plain and
// gzip-encoded through both stream endpoints: verdicts must be identical.
func TestStreamGzipRoundTrip(t *testing.T) {
	h := NewServer(New(Config{Workers: 4}))
	body := ndjson(
		header(t, dtd.Figure1, "r"),
		docLine(t, "ok", `<r><a><c>x</c><d></d></a></r>`, ""),
		docLine(t, "notpv", `<r><a><b>x</b><e></e><c>y</c></a></r>`, ""),
		docLine(t, "malformed", `<r><a>`, ""),
	)
	for _, path := range []string{"/check/stream", "/complete/stream"} {
		plain := post(t, h, path, body)
		zipped := postGzip(t, h, path, body)
		if plain.Code != http.StatusOK || zipped.Code != http.StatusOK {
			t.Fatalf("%s: plain %d, gzip %d", path, plain.Code, zipped.Code)
		}
		if plain.Body.String() == "" || countStreamDocs(t, zipped.Body.String()) != countStreamDocs(t, plain.Body.String()) {
			t.Fatalf("%s: gzip results diverge:\nplain: %s\ngzip: %s", path, plain.Body, zipped.Body)
		}
	}
	// Spot-check the verdict content on the checking endpoint.
	results, errLines, stats := parseStream(t, postGzip(t, h, "/check/stream", body).Body.String())
	if len(errLines) != 0 || len(results) != 3 || stats == nil {
		t.Fatalf("gzip stream: results %v, errs %v, stats %v", results, errLines, stats)
	}
	if !results[0].Valid || results[1].PotentiallyValid || results[2].Error == "" {
		t.Errorf("gzip stream verdicts: %+v", results)
	}
}

// countStreamDocs counts non-stats result lines in an NDJSON response.
func countStreamDocs(t *testing.T, body string) int {
	t.Helper()
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line != "" && !strings.Contains(line, `"stats"`) {
			n++
		}
	}
	return n
}

// TestStreamGzipOversizedAfterInflate pins the satellite's cap semantics:
// a document under the 64MB cap on the wire (gzip shrinks 64MB of 'x' to
// ~64KB) but over it after inflation draws the same 413 as a plain
// oversized document — the cap is enforced on decompressed bytes.
func TestStreamGzipOversizedAfterInflate(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	big := strings.Repeat("x", MaxDocumentBytes+1)
	body := ndjson(header(t, dtd.Figure1, "r"), docLine(t, "big", big, ""))
	rec := postGzip(t, h, "/check/stream", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413; body: %.200s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "cap") {
		t.Errorf("413 body should name the cap: %.200s", rec.Body)
	}
}

// TestStreamGzipGarbageAndUnsupportedEncoding: a gzip header that is not
// gzip is a 400; an encoding the server does not speak is a 415.
func TestStreamGzipGarbageAndUnsupportedEncoding(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))
	req := httptest.NewRequest("POST", "/check/stream", strings.NewReader("this is not gzip"))
	req.Header.Set("Content-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage gzip: status %d, want 400", rec.Code)
	}

	req = httptest.NewRequest("POST", "/complete/stream", strings.NewReader("{}"))
	req.Header.Set("Content-Encoding", "br")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Errorf("br encoding: status %d, want 415", rec.Code)
	}
}
