package engine

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dtd"
)

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func checkBody(t *testing.T, schema, root, document string) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{"schema": schema, "root": root, "document": document})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestServerCheck(t *testing.T) {
	h := NewServer(New(Config{Workers: 2}))

	rec := post(t, h, "/check", checkBody(t, dtd.Figure1, "r", `<r><a><c>x</c><d></d></a></r>`))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res resultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.PotentiallyValid || !res.Valid || res.Error != "" {
		t.Errorf("verdict: %+v", res)
	}

	rec = post(t, h, "/check", checkBody(t, dtd.Figure1, "r", `<r><a><b>x</b><e></e><c>y</c></a></r>`))
	json.Unmarshal(rec.Body.Bytes(), &res)
	if res.PotentiallyValid || res.Detail == "" {
		t.Errorf("not-PV verdict: %+v", res)
	}

	rec = post(t, h, "/check", checkBody(t, dtd.Figure1, "r", `<r><a>`))
	json.Unmarshal(rec.Body.Bytes(), &res)
	if res.PotentiallyValid || res.Error == "" {
		t.Errorf("malformed verdict: %+v", res)
	}
}

func TestServerBatchAndStats(t *testing.T) {
	e := New(Config{Workers: 4})
	h := NewServer(e)
	body, _ := json.Marshal(map[string]any{
		"schema": dtd.Figure1,
		"root":   "r",
		"documents": []Doc{
			{ID: "good", Content: `<r><a><c>x</c><d></d></a></r>`},
			{ID: "bad", Content: `<r><zzz></zzz></r>`},
			{ID: "broken", Content: `<r`},
		},
	})
	rec := post(t, h, "/batch", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 || res.Stats.Docs != 3 || res.Stats.Valid != 1 || res.Stats.Malformed != 1 {
		t.Errorf("batch response: %+v", res)
	}
	if res.Results[0].ID != "good" || !res.Results[0].Valid {
		t.Errorf("result 0: %+v", res.Results[0])
	}

	rec = get(t, h, "/stats")
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.Docs != 3 || stats.Registry.Compiles != 1 {
		t.Errorf("stats: %+v", stats)
	}

	rec = get(t, h, "/schemas")
	var schemas struct {
		Schemas []SchemaInfo `json:"schemas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &schemas); err != nil {
		t.Fatal(err)
	}
	if len(schemas.Schemas) != 1 || schemas.Schemas[0].Root != "r" {
		t.Errorf("schemas: %+v", schemas)
	}
}

func TestServerErrors(t *testing.T) {
	h := NewServer(New(Config{}))
	if rec := post(t, h, "/check", `{not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad json: status %d", rec.Code)
	}
	if rec := post(t, h, "/check", `{"schema":"<!ELEMENT a EMPTY>","document":"<a/>"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("missing root: status %d", rec.Code)
	}
	if rec := post(t, h, "/check", checkBody(t, "<!ELEMENT a (b)>", "a", "<a/>")); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("uncompilable schema: status %d", rec.Code)
	}
	body, _ := json.Marshal(map[string]any{"schema": "<!ELEMENT a EMPTY>", "kind": "relaxng", "root": "a", "document": "<a/>"})
	if rec := post(t, h, "/check", string(body)); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d", rec.Code)
	}
	if rec := get(t, h, "/check"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /check: status %d", rec.Code)
	}
	huge := `{"schema":"<!ELEMENT a EMPTY>","root":"a","document":"` + strings.Repeat("x", MaxRequestBytes+1) + `"}`
	if rec := post(t, h, "/check", huge); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}
}
