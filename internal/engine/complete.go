package engine

import (
	"sync"
	"time"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/dom"
)

// outBufs pools the completion path's serialization buffers: each document
// serializes into a recycled []byte (grown once, reused across documents
// and workers) and pays exactly one allocation — the output string — where
// the strings.Builder path allocated its whole growth chain plus a
// replacer per text node.
var outBufs = sync.Pool{New: func() any { return new([]byte) }}

// serializeDoc renders the completed document through a pooled buffer.
func serializeDoc(doc *dom.Document) string {
	bp := outBufs.Get().(*[]byte)
	buf := doc.AppendXML((*bp)[:0])
	out := string(buf)
	*bp = buf
	outBufs.Put(bp)
	return out
}

// The completion path is the engine's second workload: instead of a boolean
// verdict, each potentially valid document is rewritten into a valid one
// (the paper's Definition 3, constructively) and the insertions come back
// as a structured diff. It shares the registry, the SchemaRef routing and
// the worker-pool discipline of the checking path; completers are pooled
// per schema exactly like stream checkers, because a Completer memoizes
// per-schema state (automata, minimal instances) that is expensive to
// rebuild and unsafe to share across goroutines.

// CompleteResult is the outcome of one document completion. Err is set for
// lexical/well-formedness or routing problems (no verdict); Detail is set
// when the document is not potentially valid (completion is impossible);
// otherwise Completed is true, Output holds the completed document
// (serialized at document level — prolog and epilog comments/PIs are
// preserved) and Inserted counts the elements added (zero for an
// already-valid input, whose Output is then the parsed input's own
// serialization).
type CompleteResult struct {
	ID           string
	Index        int
	Completed    bool
	AlreadyValid bool
	Inserted     int
	Insertions   []diff.Insertion
	Output       string
	Detail       string
	Err          error
	Bytes        int
}

// tallyResult maps a completion outcome onto the verdict accounting shared
// with the checking path: a completable document is by definition
// potentially valid; an already-valid one counts as valid too.
func (r *CompleteResult) tallyResult() Result {
	return Result{
		ID:               r.ID,
		Index:            r.Index,
		PotentiallyValid: r.Completed,
		Valid:            r.AlreadyValid,
		Detail:           r.Detail,
		Err:              r.Err,
		Bytes:            r.Bytes,
	}
}

// Completer fetches a pooled completer for the schema. Completers memoize
// per-schema state (automata, minimal instances) that is expensive to
// rebuild and unsafe to share across goroutines; return the completer
// with PutCompleter when done. The root-package API reuses this pool so
// warm completers survive registry cache hits.
func (s *Schema) Completer() *complete.Completer {
	return s.completers.Get().(*complete.Completer)
}

// PutCompleter returns a completer obtained from Completer to the pool.
func (s *Schema) PutCompleter(c *complete.Completer) { s.completers.Put(c) }

// completeOne runs one completion on a pooled completer. The tree parse
// settles well-formedness; already-valid documents short-circuit to a
// serialization round trip (the regression-tested identity: zero
// insertions, output identical to the parsed input's own serialization);
// the rest go through the completion DP. withDiff controls whether
// insertion records are computed.
func (e *Engine) completeOne(s *Schema, c *complete.Completer, d Doc, withDiff bool) CompleteResult {
	res := CompleteResult{ID: d.ID, Bytes: d.Size()}
	var doc *dom.Document
	var err error
	if d.Bytes != nil {
		doc, err = dom.ParseBytes(d.Bytes)
	} else {
		doc, err = dom.Parse(d.Content)
	}
	if err != nil {
		res.Err = err
		return res
	}
	if s.Valid != nil && s.Valid.Validate(doc.Root) == nil {
		res.Completed = true
		res.AlreadyValid = true
		res.Output = serializeDoc(doc)
		return res
	}
	out, nodes, err := c.CompleteTracked(doc.Root)
	if err != nil {
		if core.IsViolation(err) {
			res.Detail = err.Error()
		} else {
			res.Err = err
		}
		return res
	}
	res.Completed = true
	res.Inserted = len(nodes)
	// Serialize at document level: prolog/epilog nodes (XML declaration
	// PI, license comments) survive completion.
	doc.Root = out
	res.Output = serializeDoc(doc)
	if withDiff {
		res.Insertions = diff.ComputeDoc(out, nodes, res.Output).Insertions
	}
	return res
}

// Complete runs one document's completion synchronously on the caller's
// goroutine (counting against the engine-wide worker bound). s may be nil
// when the document carries a SchemaRef. withDiff asks for per-insertion
// records in addition to the completed output.
func (e *Engine) Complete(s *Schema, d Doc, withDiff bool) CompleteResult {
	if d.SchemaRef != "" {
		rs, err := e.store.ResolveRef(d.SchemaRef)
		if err != nil {
			res := CompleteResult{ID: d.ID, Bytes: d.Size(), Err: err}
			e.accountComplete(&res)
			return res
		}
		s = rs
	}
	if s == nil {
		res := CompleteResult{ID: d.ID, Bytes: d.Size(), Err: errNoSchema}
		e.accountComplete(&res)
		return res
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	c := s.Completer()
	res := e.completeOne(s, c, d, withDiff)
	s.PutCompleter(c)
	e.accountComplete(&res)
	return res
}

// CompleteBatch fans docs out over the engine's worker pool and returns one
// CompleteResult per input, in input order, plus aggregate stats. The
// concurrency shape is CheckBatch's (the shared runBatch core): an atomic
// cursor hands out documents (work stealing), results land in disjoint
// slots, and each worker keeps one pooled completer per schema it
// encounters. Documents carrying a SchemaRef route to the referenced
// registry-cached schema; s covers the rest and may be nil when every
// document routes itself. Outputs and inserted counts are identical to
// sequential per-document completion (the differential tests pin this).
func (e *Engine) CompleteBatch(s *Schema, docs []Doc, withDiff bool) ([]CompleteResult, BatchStats) {
	start := time.Now()
	results, workers := runBatch(e, s, docs,
		func(sc *Schema) *complete.Completer { return sc.Completer() },
		func(sc *Schema, c *complete.Completer) { sc.PutCompleter(c) },
		func(sc *Schema, c *complete.Completer, d Doc) CompleteResult {
			return e.completeOne(sc, c, d, withDiff)
		},
		func(d *Doc, err error) CompleteResult { return CompleteResult{ID: d.ID, Bytes: d.Size(), Err: err} },
	)
	stats := BatchStats{Docs: len(docs), Workers: workers}
	for i := range results {
		results[i].Index = i
		r := results[i].tallyResult()
		stats.tally(&r)
		stats.Inserted += int64(results[i].Inserted)
	}
	e.finishBatch(&stats, start)
	return results, stats
}

// accountComplete folds one synchronous completion into the lifetime
// counters.
func (e *Engine) accountComplete(r *CompleteResult) {
	bs := BatchStats{Docs: 1, Inserted: int64(r.Inserted)}
	tr := r.tallyResult()
	bs.tally(&tr)
	e.accountBatch(bs)
}
