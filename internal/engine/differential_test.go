package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/validator"
)

// sequentialVerdict replicates the sequential tree path (pv.Schema
// CheckString semantics): parse errors have no verdict; otherwise the
// potential-validity and full-validity bits.
func sequentialVerdict(c *core.Schema, v *validator.Validator, xml string) (pv, valid, malformed bool) {
	doc, err := dom.Parse(xml)
	if err != nil {
		return false, false, true
	}
	if c.CheckDocument(doc.Root) != nil {
		return false, false, false
	}
	return true, v.Validate(doc.Root) == nil, false
}

func verdictLine(id string, pv, valid, malformed bool) string {
	return fmt.Sprintf("%s pv=%t valid=%t malformed=%t", id, pv, valid, malformed)
}

// TestBatchMatchesSequential is the differential property test of the
// acceptance criteria: engine.CheckBatch with 8 workers must produce
// byte-identical verdicts to the sequential tree path over a generated
// corpus covering all three DTD recursion classes and valid, tag-stripped,
// corrupted and malformed documents. Run under -race in CI.
func TestBatchMatchesSequential(t *testing.T) {
	classes := []struct {
		name string
		c    gen.DTDClass
	}{
		{"nonrecursive", gen.ClassNonRecursive},
		{"weak", gen.ClassWeak},
		{"strong", gen.ClassStrong},
	}
	e := New(Config{Workers: 8})
	total := 0
	for ci, cl := range classes {
		t.Run(cl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			d := gen.RandDTD(rng, gen.DTDOptions{Elements: 10, Class: cl.c})
			schema, err := e.Compile(DTDSource, d.String(), "e0", CompileOptions{})
			if err != nil {
				t.Fatalf("generated DTD does not compile: %v\n%s", err, d.String())
			}

			var docs []Doc
			add := func(kind string, xml string) {
				docs = append(docs, Doc{ID: fmt.Sprintf("%s-%s%03d", cl.name, kind, len(docs)), Content: xml})
			}
			for i := 0; i < 25; i++ {
				doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
				add("valid", doc.String())
			}
			for i := 0; i < 20; i++ {
				doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
				gen.Strip(rng, doc, 0.3+0.5*rng.Float64())
				add("stripped", doc.String())
			}
			for i := 0; i < 15; i++ {
				doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
				gen.Corrupt(rng, d, doc)
				add("corrupted", doc.String())
			}
			for i := 0; i < 10; i++ {
				doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
				src := doc.String()
				add("truncated", src[:rng.Intn(len(src))])
			}
			total += len(docs)

			results, stats := e.CheckBatch(schema, docs)
			if stats.Workers < 1 || stats.Docs != len(docs) {
				t.Fatalf("stats: %+v", stats)
			}
			var batchLines, seqLines []string
			for i, r := range results {
				batchLines = append(batchLines, verdictLine(r.ID, r.PotentiallyValid, r.Valid, r.Err != nil))
				pv, valid, malformed := sequentialVerdict(schema.Core, schema.Valid, docs[i].Content)
				seqLines = append(seqLines, verdictLine(docs[i].ID, pv, valid, malformed))
			}
			batch, seq := strings.Join(batchLines, "\n"), strings.Join(seqLines, "\n")
			if batch != seq {
				for i := range batchLines {
					if batchLines[i] != seqLines[i] {
						t.Errorf("verdict mismatch:\n  batch: %s\n  seq:   %s\n  doc:   %.200q",
							batchLines[i], seqLines[i], docs[i].Content)
					}
				}
				t.Fatal("batch and sequential verdicts differ")
			}

			// Every valid document must be PV (Valid ⊆ PV), and all stripped
			// documents must be PV (Theorem 2).
			for _, r := range results {
				if r.Valid && !r.PotentiallyValid {
					t.Errorf("%s: valid but not PV", r.ID)
				}
				kind := strings.Split(r.ID, "-")[1]
				if (strings.HasPrefix(kind, "valid") || strings.HasPrefix(kind, "stripped")) && !r.PotentiallyValid {
					t.Errorf("%s: generated-PV document rejected: %s / %v", r.ID, r.Detail, r.Err)
				}
			}
		})
	}
	if total < 200 {
		t.Fatalf("corpus too small: %d documents, want >= 200", total)
	}
}

// TestBatchDeterministic re-runs the same batch and demands identical
// results regardless of worker interleaving.
func TestBatchDeterministic(t *testing.T) {
	e := New(Config{Workers: 8})
	rng := rand.New(rand.NewSource(42))
	d := gen.RandDTD(rng, gen.DTDOptions{Elements: 8, Class: gen.ClassWeak})
	schema, err := e.Compile(DTDSource, d.String(), "e0", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var docs []Doc
	for i := 0; i < 64; i++ {
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 6})
		gen.Strip(rng, doc, 0.4)
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	first, _ := e.CheckBatch(schema, docs)
	for round := 0; round < 4; round++ {
		again, _ := e.CheckBatch(schema, docs)
		for i := range again {
			if again[i].PotentiallyValid != first[i].PotentiallyValid ||
				again[i].Valid != first[i].Valid ||
				(again[i].Err != nil) != (first[i].Err != nil) ||
				again[i].Detail != first[i].Detail {
				t.Fatalf("round %d doc %d: %+v vs %+v", round, i, again[i], first[i])
			}
		}
	}
}
