package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Three tiny schemas for mixed-schema job corpora.
const (
	jobDTDA = `<!ELEMENT a (x*)><!ELEMENT x (#PCDATA)>`
	jobDTDB = `<!ELEMENT b (y, z)><!ELEMENT y (#PCDATA)><!ELEMENT z EMPTY>`
	jobDTDC = `<!ELEMENT c (w+)><!ELEMENT w (#PCDATA)>`
)

// jobRefs compiles the three schemas through the engine's store and
// returns their refs (16-hex prefixes).
func jobRefs(t *testing.T, e *Engine) [3]string {
	t.Helper()
	var refs [3]string
	for i, src := range []struct{ dtd, root string }{
		{jobDTDA, "a"}, {jobDTDB, "b"}, {jobDTDC, "c"},
	} {
		s, err := e.Compile(DTDSource, src.dtd, src.root, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = s.Ref[:16]
	}
	return refs
}

// mixedJobCorpus builds n documents spread over the three schemas, mixing
// valid, potentially valid, not-PV and malformed inputs.
func mixedJobCorpus(t *testing.T, e *Engine, n int) []Doc {
	t.Helper()
	refs := jobRefs(t, e)
	content := [3][4]string{
		{`<a><x>one</x></a>`, `<a></a>`, `<a><q></q></a>`, `<a><x>`},
		{`<b><y>two</y><z></z></b>`, `<b><y>two</y></b>`, `<b><z></z><y>y</y></b>`, `<b`},
		{`<c><w>three</w></c>`, `<c></c>`, `<c><x>x</x></c>`, `<c><w>`},
	}
	docs := make([]Doc, n)
	for i := range docs {
		schema := i % 3
		docs[i] = Doc{
			ID:        fmt.Sprintf("doc-%d", i),
			Content:   content[schema][(i/3)%4],
			SchemaRef: refs[schema],
		}
	}
	return docs
}

// postJSON posts body to path and returns the recorder.
func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return post(t, h, path, string(b))
}

// submitAsync posts documents to path?async=1 and returns the accepted
// job id.
func submitAsync(t *testing.T, h http.Handler, path string, docs []Doc) string {
	t.Helper()
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	rec := postJSON(t, h, path+sep+"async=1", map[string]any{"documents": docs})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var acc jobAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.JobID == "" || acc.State != "queued" || acc.Total != len(docs) {
		t.Fatalf("accepted = %+v", acc)
	}
	if loc := rec.Header().Get("Location"); loc != "/jobs/"+acc.JobID {
		t.Fatalf("Location = %q", loc)
	}
	return acc.JobID
}

// pollJob polls GET /jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, h http.Handler, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := get(t, h, "/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d: %s", id, rec.Code, rec.Body)
		}
		var info map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		switch info["state"] {
		case "done", "failed", "canceled":
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, info)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fetchResults reads GET /jobs/{id}/results into one resultJSON per line.
func fetchResults(t *testing.T, h http.Handler, id string) []resultJSON {
	t.Helper()
	rec := get(t, h, "/jobs/"+id+"/results")
	if rec.Code != http.StatusOK {
		t.Fatalf("results status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	var out []resultJSON
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var r resultJSON
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	return out
}

// TestAsyncBatchEndToEnd is the acceptance check for the async ingest
// path: 1k mixed-schema documents submitted via POST /batch?async=1,
// polled to completion, and the NDJSON results must equal the synchronous
// CheckBatch verdicts document for document.
func TestAsyncBatchEndToEnd(t *testing.T) {
	e := New(Config{Workers: 4, JobWorkers: 2})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 1000)

	id := submitAsync(t, h, "/batch", docs)
	info := pollJob(t, h, id)
	if info["state"] != "done" {
		t.Fatalf("job ended %v: %v", info["state"], info["error"])
	}
	if done, total := info["done"].(float64), info["total"].(float64); done != 1000 || total != 1000 {
		t.Fatalf("progress %v/%v, want 1000/1000", done, total)
	}

	got := fetchResults(t, h, id)
	want, stats := e.CheckBatch(nil, docs)
	if stats.RoutingErrors != 0 {
		t.Fatalf("sync reference run had %d routing errors", stats.RoutingErrors)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d result lines, want %d", len(got), len(want))
	}
	for i, g := range got {
		w := toJSON(want[i])
		w.Index = i
		if g != w {
			t.Fatalf("result %d: async %+v != sync %+v", i, g, w)
		}
	}
}

// TestAsyncCompleteBatch runs the completion workload through the async
// path (on the /complete/batch alias) and pins outputs to the synchronous
// CompleteBatch.
func TestAsyncCompleteBatch(t *testing.T) {
	e := New(Config{Workers: 2, JobWorkers: 1})
	defer e.Close()
	h := NewServer(e)
	s, err := e.Compile(DTDSource, jobDTDB, "b", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]Doc, 100)
	for i := range docs {
		docs[i] = Doc{ID: fmt.Sprintf("d%d", i), Content: `<b><y>text</y></b>`, SchemaRef: s.Ref[:16]}
	}

	id := submitAsync(t, h, "/complete/batch", docs)
	if st := pollJob(t, h, id); st["state"] != "done" {
		t.Fatalf("job ended %v", st["state"])
	}
	rec := get(t, h, "/jobs/"+id+"/results")
	want, _ := e.CompleteBatch(nil, docs, true)
	sc := bufio.NewScanner(rec.Body)
	i := 0
	for sc.Scan() {
		var g completeJSON
		if err := json.Unmarshal(sc.Bytes(), &g); err != nil {
			t.Fatal(err)
		}
		w := completeToJSON(want[i])
		w.Index = i
		if g.ID != w.ID || g.Completed != w.Completed || g.Output != w.Output ||
			g.Inserted != w.Inserted || len(g.Insertions) != len(w.Insertions) {
			t.Fatalf("completion %d: async %+v != sync %+v", i, g, w)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("got %d lines, want %d", i, len(want))
	}
}

// TestCheckBatchAliasSync pins the /check/batch alias to /batch semantics
// on the synchronous path.
func TestCheckBatchAliasSync(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	h := NewServer(e)
	body := map[string]any{
		"schema": jobDTDA, "root": "a",
		"documents": []Doc{{ID: "one", Content: `<a><x>hi</x></a>`}},
	}
	rec := postJSON(t, h, "/check/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || !out.Results[0].Valid {
		t.Fatalf("alias verdicts: %+v", out)
	}
}

// TestAsyncQueueFull429 pins the queue-full path: with one job worker
// occupied and a one-slot queue already holding a job, an async submission
// answers 429.
func TestAsyncQueueFull429(t *testing.T) {
	e := New(Config{Workers: 2, JobWorkers: 1, JobQueueDepth: 1})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 3)

	block := make(chan struct{})
	started := make(chan struct{})
	if _, err := e.Jobs().Submit("test", 1, nil, func(lo, hi int) ([][]byte, error) {
		close(started)
		<-block
		return [][]byte{[]byte("{}")}, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e.Jobs().Submit("test", 1, nil, func(lo, hi int) ([][]byte, error) {
		return [][]byte{[]byte("{}")}, nil
	}); err != nil {
		t.Fatal(err)
	}

	rec := postJSON(t, h, "/batch?async=1", map[string]any{"documents": docs})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("429 body: %s (%v)", rec.Body, err)
	}
	close(block)
	// The synchronous path must be unaffected by a full job queue.
	rec = postJSON(t, h, "/batch", map[string]any{"documents": docs})
	if rec.Code != http.StatusOK {
		t.Fatalf("sync status %d after queue-full: %s", rec.Code, rec.Body)
	}
}

// TestAsyncCancelWhileRunning cancels a running job over HTTP and checks
// the canceled terminal state, the retained partial results, and the
// DELETE-a-finished-job removal path.
func TestAsyncCancelWhileRunning(t *testing.T) {
	e := New(Config{Workers: 2, JobWorkers: 1})
	defer e.Close()
	h := NewServer(e)

	firstChunk := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	j, err := e.Jobs().Submit("check", 200, nil, func(lo, hi int) ([][]byte, error) {
		once.Do(func() { close(firstChunk) })
		<-release
		lines := make([][]byte, hi-lo)
		for i := range lines {
			lines[i] = fmt.Appendf(nil, `{"index":%d}`, lo+i)
		}
		return lines, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-firstChunk

	req := httptest.NewRequest("DELETE", "/jobs/"+j.ID(), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE status %d: %s", rec.Code, rec.Body)
	}
	var del struct {
		Canceled bool `json:"canceled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &del); err != nil || !del.Canceled {
		t.Fatalf("DELETE body: %s (%v)", rec.Body, err)
	}
	close(release)
	info := pollJob(t, h, j.ID())
	if info["state"] != "canceled" {
		t.Fatalf("state %v, want canceled", info["state"])
	}
	// One chunk (64 docs) ran before the cancellation was observed.
	if done := info["done"].(float64); done != 64 {
		t.Fatalf("done = %v, want 64 (one chunk)", done)
	}
	rec = get(t, h, "/jobs/"+j.ID()+"/results")
	if rec.Code != http.StatusOK {
		t.Fatalf("results status %d", rec.Code)
	}
	if n := strings.Count(rec.Body.String(), "\n"); n != 64 {
		t.Fatalf("partial results = %d lines, want 64", n)
	}

	// DELETE on the now-finished job removes it outright.
	req = httptest.NewRequest("DELETE", "/jobs/"+j.ID(), nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var rm struct {
		Removed bool `json:"removed"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rm); err != nil || rec.Code != http.StatusOK || !rm.Removed {
		t.Fatalf("second DELETE: %d %s (%v)", rec.Code, rec.Body, err)
	}
	if rec := get(t, h, "/jobs/"+j.ID()); rec.Code != http.StatusNotFound {
		t.Fatalf("GET after removal: %d", rec.Code)
	}
}

// TestAsyncTTLReapThen404 pins the retention contract: after the TTL
// passes and the reaper sweeps, the job's status and results answer 404.
func TestAsyncTTLReapThen404(t *testing.T) {
	e := New(Config{Workers: 2, JobWorkers: 1, JobResultTTL: time.Millisecond})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 10)

	id := submitAsync(t, h, "/batch", docs)
	pollJob(t, h, id)
	time.Sleep(10 * time.Millisecond)
	if n := e.Jobs().Reap(); n != 1 {
		t.Fatalf("Reap() = %d, want 1", n)
	}
	for _, path := range []string{"/jobs/" + id, "/jobs/" + id + "/results"} {
		if rec := get(t, h, path); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s after reap: %d %s", path, rec.Code, rec.Body)
		}
	}
	if rec := get(t, h, "/jobs/zzzz"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d", rec.Code)
	}
}

// TestStatsJobGauges checks the jobs block of GET /stats and the /jobs
// listing.
func TestStatsJobGauges(t *testing.T) {
	e := New(Config{Workers: 2, JobWorkers: 1})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 30)

	id := submitAsync(t, h, "/batch", docs)
	pollJob(t, h, id)

	rec := get(t, h, "/stats")
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	js := stats.Jobs
	if js.Submitted != 1 || js.Completed != 1 || js.Retained != 1 || js.Running != 0 {
		t.Fatalf("job stats = %+v", js)
	}
	if js.Workers != 1 || js.QueueDepth != 64 {
		t.Fatalf("job config echo = %+v", js)
	}

	rec = get(t, h, "/jobs")
	var list struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0]["id"] != id || list.Jobs[0]["state"] != "done" {
		t.Fatalf("jobs listing = %+v", list.Jobs)
	}
}

// TestAsyncConcurrentHTTP is the HTTP-level race check: concurrent
// submissions, polls, cancels and result fetches against one server.
// Run under -race.
func TestAsyncConcurrentHTTP(t *testing.T) {
	e := New(Config{Workers: 4, JobWorkers: 4, JobQueueDepth: 256})
	defer e.Close()
	h := NewServer(e)
	docs := mixedJobCorpus(t, e, 120)

	var wg sync.WaitGroup
	ids := make(chan string, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rec := postJSON(t, h, "/batch?async=1", map[string]any{"documents": docs})
				if rec.Code != http.StatusAccepted && rec.Code != http.StatusTooManyRequests {
					t.Errorf("submit status %d", rec.Code)
					return
				}
				if rec.Code == http.StatusAccepted {
					var acc jobAccepted
					_ = json.Unmarshal(rec.Body.Bytes(), &acc)
					ids <- acc.JobID
				}
			}
		}()
	}
	var pollWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		pollWG.Add(1)
		go func(g int) {
			defer pollWG.Done()
			for id := range ids {
				if g%2 == 0 {
					req := httptest.NewRequest("DELETE", "/jobs/"+id, nil)
					h.ServeHTTP(httptest.NewRecorder(), req)
				}
				get(t, h, "/jobs/"+id)
				get(t, h, "/jobs/"+id+"/results")
				get(t, h, "/jobs")
				get(t, h, "/stats")
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	pollWG.Wait()
	// Drain: every retained job must reach a terminal state.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := e.Jobs().Stats()
		if st.Queued == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
