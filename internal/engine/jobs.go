package engine

import (
	"encoding/json"

	"repro/internal/jobs"
)

// The async ingest path: instead of holding an HTTP connection open while
// a huge corpus is checked, a client submits the batch as a *job*
// (POST /batch?async=1 → 202 {jobId}), polls GET /jobs/{id} for state and
// progress, and fetches the verdicts as NDJSON from GET /jobs/{id}/results
// once the job is done. The job layer (internal/jobs) owns the bounded
// queue, the worker pool, the state machine and result retention; this
// file adapts it to the engine: each job's runner drains chunks of the
// submitted documents through the same CheckBatch/CompleteBatch the
// synchronous routes use, so async verdicts are identical to synchronous
// ones (the end-to-end test pins this), progress advances once per chunk,
// and cancellation takes effect at chunk boundaries.

// ErrJobQueueFull rejects an async submission when the job queue is at
// capacity — the HTTP layer maps it to 429.
var ErrJobQueueFull = jobs.ErrQueueFull

// Jobs returns the engine's async job manager (queue, state, results).
func (e *Engine) Jobs() *jobs.Manager { return e.jobs }

// SubmitCheckBatch enqueues docs for asynchronous checking and returns
// the accepted job without waiting for any verdict. The job's workers
// drain the documents through CheckBatch in chunks — identical verdicts,
// SchemaRef routing and lifetime accounting as the synchronous call — and
// retain one NDJSON verdict line per document. s is the default schema
// for documents without a SchemaRef and may be nil when every document
// routes itself. Fails with ErrJobQueueFull when the queue is at
// capacity. The docs slice is retained until the job reaches a terminal
// state (it is released at finish, not held for the retention TTL);
// callers must not mutate it after submission.
func (e *Engine) SubmitCheckBatch(s *Schema, docs []Doc) (*jobs.Job, error) {
	return e.jobs.Submit("check", len(docs), func(lo, hi int) ([][]byte, error) {
		results, _ := e.CheckBatch(s, docs[lo:hi])
		lines := make([][]byte, len(results))
		for i := range results {
			results[i].Index = lo + i
			b, err := json.Marshal(toJSON(results[i]))
			if err != nil {
				return nil, err
			}
			lines[i] = b
		}
		return lines, nil
	})
}

// SubmitCompleteBatch enqueues docs for asynchronous completion — the
// CompleteBatch twin of SubmitCheckBatch. Each retained NDJSON line is a
// /complete result object (completed output, inserted count, and the
// per-insertion records when withDiff is set).
func (e *Engine) SubmitCompleteBatch(s *Schema, docs []Doc, withDiff bool) (*jobs.Job, error) {
	return e.jobs.Submit("complete", len(docs), func(lo, hi int) ([][]byte, error) {
		results, _ := e.CompleteBatch(s, docs[lo:hi], withDiff)
		lines := make([][]byte, len(results))
		for i := range results {
			results[i].Index = lo + i
			b, err := json.Marshal(completeToJSON(results[i]))
			if err != nil {
				return nil, err
			}
			lines[i] = b
		}
		return lines, nil
	})
}
