package engine

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/jobs"
	"repro/internal/receipt"
)

// The async ingest path: instead of holding an HTTP connection open while
// a huge corpus is checked, a client submits the batch as a *job*
// (POST /batch?async=1 → 202 {jobId}), polls GET /jobs/{id} for state and
// progress, and fetches the verdicts as NDJSON from GET /jobs/{id}/results
// once the job is done. The job layer (internal/jobs) owns the bounded
// queue, the worker pool, the state machine and result retention; this
// file adapts it to the engine: each job's runner drains chunks of the
// submitted documents through the same CheckBatch/CompleteBatch the
// synchronous routes use, so async verdicts are identical to synchronous
// ones (the end-to-end test pins this), progress advances once per chunk,
// and cancellation takes effect at chunk boundaries.
//
// When the job store is durable, every submission also persists a payload
// — the documents plus schema references — from which recoverRunner
// rebuilds the runner on a fresh process: per-document SchemaRefs and the
// default schema's registry ref resolve through the store (the disk tier
// resurrects compiled schemas across restarts), so a replayed job produces
// byte-identical verdicts without the submitting process.

// ErrJobQueueFull rejects an async submission when the job queue is at
// capacity — the HTTP layer maps it to 429.
var ErrJobQueueFull = jobs.ErrQueueFull

// Jobs returns the engine's async job manager (queue, state, results).
func (e *Engine) Jobs() *jobs.Manager { return e.jobs }

// jobPayload is the persisted submission: everything recoverRunner needs
// to rebuild the job on a fresh process. Documents carry their content
// inline (Bytes base64-encoded by encoding/json); schemas travel as
// registry refs, never as compiled artifacts.
type jobPayload struct {
	Op     string `json:"op"`               // "check" or "complete"
	Schema string `json:"schema,omitempty"` // default schema's registry ref
	// HasDefault distinguishes "submitted without a default schema" (docs
	// route themselves; errors reproduce faithfully) from "the default
	// schema had no registry ref to persist" (unrecoverable).
	HasDefault bool         `json:"hasDefault,omitempty"`
	Diff       bool         `json:"diff,omitempty"` // completion: emit per-insertion records
	Receipt    bool         `json:"receipt,omitempty"`
	Docs       []payloadDoc `json:"docs"`
}

// payloadDoc is one persisted batch input. Doc.Bytes is json:"-" on the
// wire type (the HTTP layer must never echo raw documents), so the
// payload needs its own encodable shape.
type payloadDoc struct {
	ID      string `json:"id,omitempty"`
	Ref     string `json:"ref,omitempty"` // per-document SchemaRef
	Content string `json:"c,omitempty"`
	Bytes   []byte `json:"b,omitempty"`
}

// encodeJobPayload serializes a submission for the write-ahead log — nil
// (skip the cost) when the job store is volatile and nothing would replay
// it anyway.
func (e *Engine) encodeJobPayload(op string, s *Schema, docs []Doc, diff, withReceipt bool) ([]byte, error) {
	if !e.jobs.Durable() {
		return nil, nil
	}
	p := jobPayload{Op: op, Diff: diff, Receipt: withReceipt, Docs: make([]payloadDoc, len(docs))}
	if s != nil {
		// A schema compiled outside the registry has no ref to persist; the
		// job still runs now, but a restart cannot rebuild it — recovery
		// will fail the job with a clear error instead of guessing.
		p.Schema = s.Ref
		p.HasDefault = true
	}
	for i := range docs {
		p.Docs[i] = payloadDoc{
			ID:      docs[i].ID,
			Ref:     docs[i].SchemaRef,
			Content: docs[i].Content,
			Bytes:   docs[i].Bytes,
		}
	}
	return json.Marshal(p)
}

// recoverRunner is the jobs.RunnerResolver the engine hands to
// Manager.Recover: it decodes a persisted payload and rebuilds the same
// chunk runner Submit would have built, resolving schemas by ref through
// the (disk-tier-backed) registry. Errors mark the job Failed — a
// terminal answer for pollers — rather than losing it.
func (e *Engine) recoverRunner(sub jobs.Submission) (jobs.Runner, error) {
	if len(sub.Payload) == 0 {
		return nil, errors.New("submission has no persisted payload")
	}
	var p jobPayload
	if err := json.Unmarshal(sub.Payload, &p); err != nil {
		return nil, fmt.Errorf("decoding persisted payload: %w", err)
	}
	if len(p.Docs) != sub.Total {
		return nil, fmt.Errorf("persisted payload has %d documents, submission recorded %d", len(p.Docs), sub.Total)
	}
	var def *Schema
	if p.HasDefault {
		if p.Schema == "" {
			return nil, errors.New("default schema was not registry-backed; cannot rebuild")
		}
		s, err := e.store.ResolveRef(p.Schema)
		if err != nil {
			return nil, fmt.Errorf("resolving default schema %s: %w", p.Schema, err)
		}
		def = s
	}
	docs := make([]Doc, len(p.Docs))
	for i, pd := range p.Docs {
		docs[i] = Doc{ID: pd.ID, Content: pd.Content, Bytes: pd.Bytes, SchemaRef: pd.Ref}
	}
	// Receipt-bearing jobs rebuild their collector too: a recovered job
	// re-run from input zero commits the same leaves the original would
	// have, so the replayed receipt root matches a byte-identical re-run.
	// (A *resumed* job skips its durable chunks; its collector never fills
	// and no fresh receipt is built — the root persisted with the terminal
	// event, when one exists, still serves.) Delivery resolves the job
	// handle by id: recovery registers every job before the worker pool
	// starts, so the handle exists before any chunk can run.
	var col *receiptCollector
	if p.Receipt {
		col = &receiptCollector{
			e: e, kind: p.Op, batch: sub.ID,
			leaves: make([]receipt.Leaf, len(docs)),
			deliver: func(rec *Receipt) {
				if j, ok := e.jobs.Get(sub.ID); ok {
					applyReceipt(j, rec)
				}
			},
		}
	}
	switch p.Op {
	case "check":
		return e.checkRunner(def, docs, col), nil
	case "complete":
		return e.completeRunner(def, docs, p.Diff, col), nil
	}
	return nil, fmt.Errorf("unknown persisted job op %q", p.Op)
}

// checkRunner builds the chunk runner for an async check job: each call
// drains docs[lo:hi] through CheckBatch and encodes one verdict line per
// document. A non-nil collector additionally commits each chunk's leaves
// toward the job's verdict receipt; the manager runs a job's chunks
// sequentially on one worker, so the collector is touched by one
// goroutine at a time.
func (e *Engine) checkRunner(s *Schema, docs []Doc, col *receiptCollector) jobs.Runner {
	return func(lo, hi int) ([][]byte, error) {
		results, _ := e.CheckBatch(s, docs[lo:hi])
		lines := make([][]byte, len(results))
		for i := range results {
			results[i].Index = lo + i
			b, err := json.Marshal(toJSON(results[i]))
			if err != nil {
				return nil, err
			}
			lines[i] = b
		}
		if col != nil {
			leaves := make([]receipt.Leaf, len(results))
			for i := range results {
				leaves[i] = docLeaf(&docs[lo+i], s, checkVerdict(&results[i]), 0)
			}
			col.add(lo, leaves)
		}
		return lines, nil
	}
}

// completeRunner builds the chunk runner for an async completion job —
// the CompleteBatch twin of checkRunner.
func (e *Engine) completeRunner(s *Schema, docs []Doc, withDiff bool, col *receiptCollector) jobs.Runner {
	return func(lo, hi int) ([][]byte, error) {
		results, _ := e.CompleteBatch(s, docs[lo:hi], withDiff)
		lines := make([][]byte, len(results))
		for i := range results {
			results[i].Index = lo + i
			b, err := json.Marshal(completeToJSON(results[i]))
			if err != nil {
				return nil, err
			}
			lines[i] = b
		}
		if col != nil {
			leaves := make([]receipt.Leaf, len(results))
			for i := range results {
				leaves[i] = docLeaf(&docs[lo+i], s, completeVerdict(&results[i]), int64(results[i].Inserted))
			}
			col.add(lo, leaves)
		}
		return lines, nil
	}
}

// SubmitCheckBatch enqueues docs for asynchronous checking and returns
// the accepted job without waiting for any verdict. The job's workers
// drain the documents through CheckBatch in chunks — identical verdicts,
// SchemaRef routing and lifetime accounting as the synchronous call — and
// retain one NDJSON verdict line per document. s is the default schema
// for documents without a SchemaRef and may be nil when every document
// routes itself. Fails with ErrJobQueueFull when the queue is at
// capacity. The docs slice is retained until the job reaches a terminal
// state (it is released at finish, not held for the retention TTL);
// callers must not mutate it after submission. On a durable store the
// submission is logged write-ahead (documents and schema refs persisted),
// so the job survives a process restart.
func (e *Engine) SubmitCheckBatch(s *Schema, docs []Doc) (*jobs.Job, error) {
	payload, err := e.encodeJobPayload("check", s, docs, false, false)
	if err != nil {
		return nil, err
	}
	return e.jobs.Submit("check", len(docs), payload, e.checkRunner(s, docs, nil))
}

// SubmitCompleteBatch enqueues docs for asynchronous completion — the
// CompleteBatch twin of SubmitCheckBatch. Each retained NDJSON line is a
// /complete result object (completed output, inserted count, and the
// per-insertion records when withDiff is set).
func (e *Engine) SubmitCompleteBatch(s *Schema, docs []Doc, withDiff bool) (*jobs.Job, error) {
	payload, err := e.encodeJobPayload("complete", s, docs, withDiff, false)
	if err != nil {
		return nil, err
	}
	return e.jobs.Submit("complete", len(docs), payload, e.completeRunner(s, docs, withDiff, nil))
}
