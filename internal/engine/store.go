package engine

// SchemaStore is the engine's schema-resolution surface: everything the
// batch checker, the completion path, the HTTP server and the stream
// pipeline need from a compiled-schema cache. The built-in implementation
// is the sharded two-tier Registry; the interface exists so those layers
// depend on the capability, not on one mutex-guarded structure — a custom
// store (remote, read-only, pre-warmed) can slot in without touching the
// worker or server code.
type SchemaStore interface {
	// Compile resolves (kind, src, root, opts) to a compiled schema,
	// compiling at most once per distinct key.
	Compile(kind SourceKind, src, root string, opts CompileOptions) (*Schema, error)
	// ResolveRef resolves a schemaRef prefix (>=RefMinLen hex digits) to a
	// cached schema; failures are RoutingErrors.
	ResolveRef(ref string) (*Schema, error)
	// Stats snapshots the store's counters.
	Stats() RegistryStats
	// Schemas lists cached artifacts, most recently used first.
	Schemas() []SchemaInfo
	// Len reports the number of cached artifacts.
	Len() int
}

// Registry implements SchemaStore.
var _ SchemaStore = (*Registry)(nil)
