package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// benchCorpus builds a mixed Play-DTD corpus: valid, stripped and corrupted
// documents, the firehose shape the engine is for.
func benchCorpus(n int) []Doc {
	rng := rand.New(rand.NewSource(7))
	d := dtd.MustParse(dtd.Play)
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.3)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	return docs
}

// BenchmarkEngineBatch measures batch throughput across worker counts; CI
// runs it once (-benchtime=1x) as a compile-and-run guard.
func BenchmarkEngineBatch(b *testing.B) {
	docs := benchCorpus(256)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Content))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Config{Workers: workers})
			s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, _ := e.CheckBatch(s, docs)
				if len(results) != len(docs) {
					b.Fatal("missing results")
				}
			}
		})
	}
}
