package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/gen"
)

// benchCorpus builds a mixed Play-DTD corpus: valid, stripped and corrupted
// documents, the firehose shape the engine is for.
func benchCorpus(n int) []Doc {
	rng := rand.New(rand.NewSource(7))
	d := dtd.MustParse(dtd.Play)
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.3)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	return docs
}

// asBytes converts a corpus to byte-path documents.
func asBytes(docs []Doc) []Doc {
	out := make([]Doc, len(docs))
	for i, d := range docs {
		out[i] = Doc{ID: d.ID, Bytes: []byte(d.Content)}
	}
	return out
}

// BenchmarkEngineBatchPath is experiment X8: CheckBatch throughput and
// allocs/op over a 1k-document mixed corpus, string path versus zero-copy
// byte path, in both verdict modes. The acceptance bar is >=30% fewer
// allocs/op for bytes (TestBytePathAllocReduction enforces it).
func BenchmarkEngineBatchPath(b *testing.B) {
	docs := benchCorpus(1000)
	byteDocs := asBytes(docs)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Content))
	}
	for _, mode := range []struct {
		name   string
		pvOnly bool
	}{{"full", false}, {"pvonly", true}} {
		for _, path := range []struct {
			name string
			docs []Doc
		}{{"string", docs}, {"bytes", byteDocs}} {
			b.Run(mode.name+"/"+path.name, func(b *testing.B) {
				e := New(Config{Workers: 4, PVOnly: mode.pvOnly})
				s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(bytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					results, _ := e.CheckBatch(s, path.docs)
					if len(results) != len(path.docs) {
						b.Fatal("missing results")
					}
				}
			})
		}
	}
}

// measureBatchAllocs runs CheckBatch over docs several times and returns
// the steady-state allocation count per batch.
func measureBatchAllocs(tb testing.TB, e *Engine, s *Schema, docs []Doc, rounds int) float64 {
	tb.Helper()
	e.CheckBatch(s, docs) // warm pools
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < rounds; i++ {
		if results, _ := e.CheckBatch(s, docs); len(results) != len(docs) {
			tb.Fatal("missing results")
		}
	}
	runtime.ReadMemStats(&ms1)
	return float64(ms1.Mallocs-ms0.Mallocs) / float64(rounds)
}

// TestBytePathAllocReduction enforces the X8 acceptance criterion: over a
// 1k-document mixed corpus, the byte path must allocate at least 30% less
// per CheckBatch than the string path (in practice the reduction is far
// larger; 30% is the regression floor).
func TestBytePathAllocReduction(t *testing.T) {
	docs := benchCorpus(1000)
	byteDocs := asBytes(docs)
	e := New(Config{Workers: 4})
	s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	strAllocs := measureBatchAllocs(t, e, s, docs, 3)
	byteAllocs := measureBatchAllocs(t, e, s, byteDocs, 3)
	t.Logf("allocs per 1k-doc batch: string=%.0f bytes=%.0f (%.1f%% reduction)",
		strAllocs, byteAllocs, 100*(1-byteAllocs/strAllocs))
	if byteAllocs > 0.7*strAllocs {
		t.Errorf("byte path allocates %.0f per batch, string path %.0f — want >=30%% reduction",
			byteAllocs, strAllocs)
	}
}

// BenchmarkEngineBatch measures batch throughput across worker counts; CI
// runs it once (-benchtime=1x) as a compile-and-run guard.
func BenchmarkEngineBatch(b *testing.B) {
	docs := benchCorpus(256)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Content))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Config{Workers: workers})
			s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, _ := e.CheckBatch(s, docs)
				if len(results) != len(docs) {
					b.Fatal("missing results")
				}
			}
		})
	}
}

// TestCompletionSerializationPooledAllocs pins the byte-path completion
// output satellite (the allocation drop BenchmarkEngineComplete reports):
// serializing a completed document through the pooled buffer must cost at
// most the output string itself plus a couple of amortized pool/growth
// allocations — not the strings.Builder growth chain plus a replacer per
// text node that doc.String() paid.
func TestCompletionSerializationPooledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; the pin runs in the non-race CI lane")
	}
	rng := rand.New(rand.NewSource(11))
	d := dtd.MustParse(dtd.Play)
	doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 4})
	parsed, err := dom.Parse(doc.String())
	if err != nil {
		t.Fatal(err)
	}
	textNodes := 0
	parsed.Root.Walk(func(n *dom.Node) bool {
		if n.Kind == dom.TextNode {
			textNodes++
		}
		return true
	})
	if textNodes < 20 {
		t.Fatalf("corpus document too small to be meaningful (%d text nodes)", textNodes)
	}
	serializeDoc(parsed) // warm the pool so growth is out of the measurement
	allocs := testing.AllocsPerRun(50, func() {
		if out := serializeDoc(parsed); out == "" {
			t.Fatal("empty serialization")
		}
	})
	// One allocation for the output string; allow two more for pool
	// internals. The old path's floor was ~2 allocations per text node
	// (replacer + machine) plus the builder growth chain.
	if allocs > 3 {
		t.Errorf("pooled serialization allocates %.0f per document (%d text nodes), want <= 3", allocs, textNodes)
	}
}

// completableCorpus builds a completion-workload corpus: tag-stripped (and
// some already-valid) play documents, all potentially valid.
func completableCorpus(n int) []Doc {
	rng := rand.New(rand.NewSource(9))
	d := dtd.MustParse(dtd.Play)
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 7, MaxRepeat: 2})
		if i%4 != 0 {
			gen.Strip(rng, doc, 0.3)
		}
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	return docs
}

// BenchmarkEngineComplete measures batched completion throughput across
// worker counts (the X9 workload); CI runs it once (-benchtime=1x) as a
// compile-and-run guard.
func BenchmarkEngineComplete(b *testing.B) {
	docs := completableCorpus(128)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Content))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Config{Workers: workers})
			s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, stats := e.CompleteBatch(s, docs, true)
				if len(results) != len(docs) || stats.Malformed != 0 {
					b.Fatal("completion corpus must be completable")
				}
			}
		})
	}
}
