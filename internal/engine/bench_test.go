package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// benchCorpus builds a mixed Play-DTD corpus: valid, stripped and corrupted
// documents, the firehose shape the engine is for.
func benchCorpus(n int) []Doc {
	rng := rand.New(rand.NewSource(7))
	d := dtd.MustParse(dtd.Play)
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.3)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	return docs
}

// asBytes converts a corpus to byte-path documents.
func asBytes(docs []Doc) []Doc {
	out := make([]Doc, len(docs))
	for i, d := range docs {
		out[i] = Doc{ID: d.ID, Bytes: []byte(d.Content)}
	}
	return out
}

// BenchmarkEngineBatchPath is experiment X8: CheckBatch throughput and
// allocs/op over a 1k-document mixed corpus, string path versus zero-copy
// byte path, in both verdict modes. The acceptance bar is >=30% fewer
// allocs/op for bytes (TestBytePathAllocReduction enforces it).
func BenchmarkEngineBatchPath(b *testing.B) {
	docs := benchCorpus(1000)
	byteDocs := asBytes(docs)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Content))
	}
	for _, mode := range []struct {
		name   string
		pvOnly bool
	}{{"full", false}, {"pvonly", true}} {
		for _, path := range []struct {
			name string
			docs []Doc
		}{{"string", docs}, {"bytes", byteDocs}} {
			b.Run(mode.name+"/"+path.name, func(b *testing.B) {
				e := New(Config{Workers: 4, PVOnly: mode.pvOnly})
				s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(bytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					results, _ := e.CheckBatch(s, path.docs)
					if len(results) != len(path.docs) {
						b.Fatal("missing results")
					}
				}
			})
		}
	}
}

// measureBatchAllocs runs CheckBatch over docs several times and returns
// the steady-state allocation count per batch.
func measureBatchAllocs(tb testing.TB, e *Engine, s *Schema, docs []Doc, rounds int) float64 {
	tb.Helper()
	e.CheckBatch(s, docs) // warm pools
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < rounds; i++ {
		if results, _ := e.CheckBatch(s, docs); len(results) != len(docs) {
			tb.Fatal("missing results")
		}
	}
	runtime.ReadMemStats(&ms1)
	return float64(ms1.Mallocs-ms0.Mallocs) / float64(rounds)
}

// TestBytePathAllocReduction enforces the X8 acceptance criterion: over a
// 1k-document mixed corpus, the byte path must allocate at least 30% less
// per CheckBatch than the string path (in practice the reduction is far
// larger; 30% is the regression floor).
func TestBytePathAllocReduction(t *testing.T) {
	docs := benchCorpus(1000)
	byteDocs := asBytes(docs)
	e := New(Config{Workers: 4})
	s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	strAllocs := measureBatchAllocs(t, e, s, docs, 3)
	byteAllocs := measureBatchAllocs(t, e, s, byteDocs, 3)
	t.Logf("allocs per 1k-doc batch: string=%.0f bytes=%.0f (%.1f%% reduction)",
		strAllocs, byteAllocs, 100*(1-byteAllocs/strAllocs))
	if byteAllocs > 0.7*strAllocs {
		t.Errorf("byte path allocates %.0f per batch, string path %.0f — want >=30%% reduction",
			byteAllocs, strAllocs)
	}
}

// BenchmarkEngineBatch measures batch throughput across worker counts; CI
// runs it once (-benchtime=1x) as a compile-and-run guard.
func BenchmarkEngineBatch(b *testing.B) {
	docs := benchCorpus(256)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Content))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Config{Workers: workers})
			s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, _ := e.CheckBatch(s, docs)
				if len(results) != len(docs) {
					b.Fatal("missing results")
				}
			}
		})
	}
}

// completableCorpus builds a completion-workload corpus: tag-stripped (and
// some already-valid) play documents, all potentially valid.
func completableCorpus(n int) []Doc {
	rng := rand.New(rand.NewSource(9))
	d := dtd.MustParse(dtd.Play)
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 7, MaxRepeat: 2})
		if i%4 != 0 {
			gen.Strip(rng, doc, 0.3)
		}
		docs = append(docs, Doc{ID: fmt.Sprint(i), Content: doc.String()})
	}
	return docs
}

// BenchmarkEngineComplete measures batched completion throughput across
// worker counts (the X9 workload); CI runs it once (-benchtime=1x) as a
// compile-and-run guard.
func BenchmarkEngineComplete(b *testing.B) {
	docs := completableCorpus(128)
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Content))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Config{Workers: workers})
			s, err := e.Compile(DTDSource, dtd.Play, "play", CompileOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, stats := e.CompleteBatch(s, docs, true)
				if len(results) != len(docs) || stats.Malformed != 0 {
					b.Fatal("completion corpus must be completable")
				}
			}
		})
	}
}
