package dfa

import (
	"testing"

	"repro/internal/contentmodel"
	"repro/internal/dtd"
)

// run drives the machine over a symbol sequence and returns the final
// state, or Dead as soon as a transition is missing.
func run(m *Machine, syms []int32) int32 {
	state := int32(0)
	for _, s := range syms {
		state = m.Step(state, s)
		if state == Dead {
			return Dead
		}
	}
	return state
}

func compileOne(t *testing.T, src, elem string) (*Set, *Machine, map[string]int32) {
	t.Helper()
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	set := Compile(d, 0)
	ids := map[string]int32{contentmodel.PCDATASymbol: 0}
	for i, name := range d.Order {
		ids[name] = int32(i + 1)
	}
	return set, set.Machine(ids[elem]), ids
}

func TestSequenceModel(t *testing.T) {
	src := `<!ELEMENT r (a, b*, c?)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`
	_, m, ids := compileOne(t, src, "r")
	if m == nil {
		t.Fatal("deterministic model got no machine")
	}
	a, b, c := ids["a"], ids["b"], ids["c"]
	cases := []struct {
		syms   []int32
		alive  bool
		accept bool
	}{
		{nil, true, false},
		{[]int32{a}, true, true},
		{[]int32{a, b}, true, true},
		{[]int32{a, b, b, c}, true, true},
		{[]int32{a, c}, true, true},
		{[]int32{a, c, b}, false, false}, // b after c
		{[]int32{b}, false, false},       // must start with a
		{[]int32{a, 0}, false, false},    // σ in element content
	}
	for _, tc := range cases {
		state := run(m, tc.syms)
		if (state != Dead) != tc.alive {
			t.Errorf("syms %v: alive = %v, want %v", tc.syms, state != Dead, tc.alive)
			continue
		}
		if tc.alive && m.Accepting(state) != tc.accept {
			t.Errorf("syms %v: accepting = %v, want %v", tc.syms, m.Accepting(state), tc.accept)
		}
	}
}

func TestMixedModel(t *testing.T) {
	src := `<!ELEMENT p (#PCDATA | b | i)*> <!ELEMENT b EMPTY> <!ELEMENT i EMPTY>`
	_, m, ids := compileOne(t, src, "p")
	if m == nil {
		t.Fatal("mixed model got no machine")
	}
	b, i := ids["b"], ids["i"]
	for _, syms := range [][]int32{nil, {0}, {b}, {0, b, 0, i, b}, {i, i, 0}} {
		state := run(m, syms)
		if state == Dead || !m.Accepting(state) {
			t.Errorf("mixed content %v should be accepted (state %d)", syms, state)
		}
	}
}

func TestEmptyAndAny(t *testing.T) {
	src := `<!ELEMENT r (e, y)> <!ELEMENT e EMPTY> <!ELEMENT y ANY>`
	set, _, ids := compileOne(t, src, "r")
	e := set.Machine(ids["e"])
	if !e.Accepting(0) {
		t.Error("EMPTY start state must accept")
	}
	if e.Step(0, ids["y"]) != Dead || e.Step(0, 0) != Dead {
		t.Error("EMPTY must have no transitions")
	}
	y := set.Machine(ids["y"])
	if !y.Accepting(0) {
		t.Error("ANY start state must accept")
	}
	for sym := int32(0); sym < set.Stride; sym++ {
		if y.Step(0, sym) != 0 {
			t.Errorf("ANY must self-loop on symbol %d", sym)
		}
	}
}

// TestMatchesGlushkov cross-checks the DFA against the Glushkov
// automaton's own Match/MatchPrefix over every symbol string up to length
// 4: the DFA must stay alive exactly on viable prefixes and accept
// exactly the language.
func TestMatchesGlushkov(t *testing.T) {
	src := `<!ELEMENT r ((a, b) | ((a, c)*, d))> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	auto := contentmodel.CompileAutomaton(d.Elements["r"].Model)
	set := Compile(d, 0)
	m := set.Machine(1)
	if m == nil {
		t.Fatal("model got no machine (ambiguous models still determinize under the cap)")
	}
	alphabet := []string{"a", "b", "c", "d"}
	var walk func(syms []string, idsyms []int32)
	walk = func(syms []string, idsyms []int32) {
		state := run(m, idsyms)
		wantAlive := auto.MatchPrefix(syms) == len(syms)
		if (state != Dead) != wantAlive {
			t.Fatalf("syms %v: DFA alive=%v, Glushkov viable=%v", syms, state != Dead, wantAlive)
		}
		if state != Dead {
			if got, want := m.Accepting(state), auto.Match(syms); got != want {
				t.Fatalf("syms %v: DFA accept=%v, Glushkov match=%v", syms, got, want)
			}
		}
		if len(syms) == 4 {
			return
		}
		for i, a := range alphabet {
			walk(append(syms, a), append(idsyms, int32(i+2))) // r=1, a..d = 2..5
		}
	}
	walk(nil, nil)
}

func TestStateCapDisablesFastPath(t *testing.T) {
	src := `<!ELEMENT r (a, b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>`
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	set := Compile(d, 2) // (a, b) needs 3 states
	if set.Machine(1) != nil {
		t.Error("over-cap model should have no machine")
	}
	if set.Machine(2) == nil || set.Machine(3) == nil {
		t.Error("EMPTY machines are never capped")
	}
	if set.States() != 2 {
		t.Errorf("States() = %d, want 2 (the two EMPTY machines)", set.States())
	}
}

func TestNewMachineValidates(t *testing.T) {
	if _, err := NewMachine([]int32{0, Dead}, []bool{true}, 2); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	for _, tc := range []struct {
		trans  []int32
		accept []bool
		stride int32
	}{
		{nil, nil, 2},                     // no states
		{[]int32{0}, []bool{true}, 2},     // short table
		{[]int32{1, 0}, []bool{true}, 2},  // target out of range
		{[]int32{-2, 0}, []bool{true}, 2}, // below Dead
		{[]int32{0, 0}, []bool{true}, 0},  // bad stride
	} {
		if _, err := NewMachine(tc.trans, tc.accept, tc.stride); err == nil {
			t.Errorf("NewMachine(%v, %v, %d) accepted invalid shape", tc.trans, tc.accept, tc.stride)
		}
	}
}
