// Package dfa compiles DTD content models into dense deterministic
// finite-automaton tables — the fast path of the two-tier streaming
// checker. Each declared element gets one Machine over interned symbol
// IDs (σ is ID 0, elements are 1-based in declaration order), built by
// determinizing the content model's Glushkov position automaton. XML 1.0
// content models are 1-unambiguous, so subset construction is linear in
// practice; a state cap guards the rare ambiguous models found in the
// wild, for which the element simply gets no fast path (a nil Machine) —
// correctness never depends on a fast path existing, only speed does.
//
// A Machine step is one bounds-checked table load with zero allocations.
// Glushkov automata are trim (every state lies on some accepting path),
// so any live Machine state witnesses a viable prefix of the exact
// content language: while an element stays on its DFA lane its content
// is completable to strictly valid, and a fortiori potentially valid.
// A Dead transition only means the exact model cannot continue — the PV
// recognizer, which may hypothesize inserted elements, takes over from
// there.
//
// Tables are immutable after Compile and safe to share across any number
// of concurrent checkers.
package dfa

import (
	"fmt"
	"sort"

	"repro/internal/contentmodel"
	"repro/internal/dtd"
)

// Dead is the transition-table entry meaning "no transition": the symbol
// is not part of any continuation of the exact content model from this
// state.
const Dead = -1

// DefaultMaxStates caps per-element subset construction. Deterministic
// content models determinize to at most positions+1 states, so only a
// pathologically ambiguous model can approach the cap; such an element
// falls back to the PV recognizer for every document.
const DefaultMaxStates = 512

// Machine is one element's content-model DFA over interned symbol IDs.
// State 0 is the start state; Trans is a dense row-major table indexed by
// state*Stride()+symbol, holding the next state or Dead.
type Machine struct {
	// Trans is the dense transition table, len(Accept)*stride entries.
	Trans []int32
	// Accept marks states in which the symbols consumed so far form a
	// complete word of the content model (the element may close strictly
	// valid here).
	Accept []bool

	stride int32
}

// NewMachine assembles a Machine from raw decoded tables, validating the
// shape (the codec path). trans must hold len(accept)*stride entries,
// each either Dead or a valid state index.
func NewMachine(trans []int32, accept []bool, stride int32) (*Machine, error) {
	n := len(accept)
	if n == 0 {
		return nil, fmt.Errorf("dfa: machine with no states")
	}
	if stride <= 0 {
		return nil, fmt.Errorf("dfa: non-positive stride %d", stride)
	}
	if len(trans) != n*int(stride) {
		return nil, fmt.Errorf("dfa: transition table has %d entries, want %d states x %d symbols", len(trans), n, stride)
	}
	for _, v := range trans {
		if v < Dead || v >= int32(n) {
			return nil, fmt.Errorf("dfa: transition target %d out of range (%d states)", v, n)
		}
	}
	return &Machine{Trans: trans, Accept: accept, stride: stride}, nil
}

// Step returns the successor of state on symbol sym, or Dead.
func (m *Machine) Step(state, sym int32) int32 {
	return m.Trans[state*m.stride+sym]
}

// Accepting reports whether state accepts (a complete word of the model).
func (m *Machine) Accepting(state int32) bool { return m.Accept[state] }

// States returns the machine's state count.
func (m *Machine) States() int { return len(m.Accept) }

// Stride returns the symbol-alphabet size (σ plus every declared element).
func (m *Machine) Stride() int32 { return m.stride }

// Set holds the per-element machines of one compiled schema.
type Set struct {
	// Stride is the shared alphabet size: σ (ID 0) plus one ID per
	// declared element in declaration order.
	Stride int32
	// ByID holds the machine for element ID i+1 (declaration order), nil
	// for elements with no fast path (subset construction exceeded the
	// state cap).
	ByID []*Machine
}

// Machine returns the machine for the 1-based element symbol ID, or nil
// when that element has no fast path.
func (s *Set) Machine(id int32) *Machine { return s.ByID[id-1] }

// States returns the total state count across all machines — the
// pv_engine_dfa_states gauge.
func (s *Set) States() int {
	n := 0
	for _, m := range s.ByID {
		if m != nil {
			n += m.States()
		}
	}
	return n
}

// Compile builds the DFA set for every element of d. maxStates caps
// per-element subset construction (<=0 selects DefaultMaxStates); an
// element over the cap — or one whose model references an undeclared
// element — gets a nil machine.
func Compile(d *dtd.DTD, maxStates int) *Set {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	m := len(d.Order)
	stride := int32(m + 1)
	ids := make(map[string]int32, m)
	for i, name := range d.Order {
		ids[name] = int32(i + 1)
	}
	set := &Set{Stride: stride, ByID: make([]*Machine, m)}
	for i, name := range d.Order {
		set.ByID[i] = compileElement(d.Elements[name], ids, stride, maxStates)
	}
	return set
}

func compileElement(decl *dtd.ElementDecl, ids map[string]int32, stride int32, maxStates int) *Machine {
	switch decl.Category {
	case dtd.Empty:
		// One accepting state, no transitions: any content leaves the
		// fast path (and EMPTY content is beyond even the recognizer's
		// repair, so the fallback promptly reports the violation).
		trans := make([]int32, stride)
		for i := range trans {
			trans[i] = Dead
		}
		return &Machine{Trans: trans, Accept: []bool{true}, stride: stride}
	case dtd.Any:
		// One accepting state with self-loops on the whole alphabet:
		// ANY admits text and every declared element in any order
		// (undeclared names are rejected before the table is consulted).
		return &Machine{Trans: make([]int32, stride), Accept: []bool{true}, stride: stride}
	}
	return determinize(contentmodel.CompileAutomaton(decl.Model), ids, stride, maxStates)
}

// determinize subset-constructs the DFA from a Glushkov automaton. DFA
// states are sets of Glushkov positions; state 0 is the initial state
// (its move candidates are the first set). Returns nil when the state
// count would exceed maxStates or a position carries an unknown symbol.
func determinize(a *contentmodel.Automaton, ids map[string]int32, stride int32, maxStates int) *Machine {
	positions := a.Positions()
	posSym := make([]int32, positions+1)
	for p := 1; p <= positions; p++ {
		sym := a.Symbol(p)
		if sym == contentmodel.PCDATASymbol {
			continue // posSym[p] = 0 = σ
		}
		id, ok := ids[sym]
		if !ok {
			return nil // undeclared reference; core.Compile rejects these upstream
		}
		posSym[p] = id
	}

	sets := [][]int{nil} // position set per DFA state; nil = initial
	index := map[string]int32{}
	accept := []bool{a.Nullable()}
	overflow := false
	intern := func(set []int) int32 {
		k := fmt.Sprint(set)
		if id, ok := index[k]; ok {
			return id
		}
		if len(sets) >= maxStates {
			overflow = true
			return Dead
		}
		id := int32(len(sets))
		index[k] = id
		sets = append(sets, set)
		acc := false
		for _, p := range set {
			if a.Last(p) {
				acc = true
				break
			}
		}
		accept = append(accept, acc)
		return id
	}

	var trans []int32
	for qi := 0; qi < len(sets); qi++ {
		// Move candidates: the positions reachable in one step from any
		// position of this state.
		var cands []int
		if qi == 0 {
			cands = a.First()
		} else {
			seen := map[int]bool{}
			for _, p := range sets[qi] {
				for _, q := range a.Follow(p) {
					seen[q] = true
				}
			}
			cands = make([]int, 0, len(seen))
			for p := range seen {
				cands = append(cands, p)
			}
			sort.Ints(cands)
		}
		bySym := map[int32][]int{}
		for _, p := range cands {
			bySym[posSym[p]] = append(bySym[posSym[p]], p)
		}
		row := make([]int32, stride)
		// Fixed symbol order keeps state numbering — and therefore the
		// serialized tables — deterministic across builds.
		for sym := int32(0); sym < stride; sym++ {
			tgt, ok := bySym[sym]
			if !ok {
				row[sym] = Dead
				continue
			}
			row[sym] = intern(tgt)
			if overflow {
				return nil
			}
		}
		trans = append(trans, row...)
	}
	return &Machine{Trans: trans, Accept: accept, stride: stride}
}
