// Package gen generates workloads for tests, examples and benchmarks:
// random DTDs of each recursion class, random valid documents, tag-stripped
// (hence potentially valid, by Theorem 2) documents, corrupted documents,
// and document-centric editing traces. Everything is deterministic in the
// provided *rand.Rand.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/reach"
)

// DTDClass selects the recursion class of a generated DTD (Definitions
// 6-8).
type DTDClass int

const (
	// ClassNonRecursive generates layered DTDs with no recursion.
	ClassNonRecursive DTDClass = iota
	// ClassWeak adds recursion only inside star-groups.
	ClassWeak
	// ClassStrong adds recursion through non-star-group occurrences.
	ClassStrong
)

// DTDOptions parameterizes RandDTD.
type DTDOptions struct {
	// Elements is the number of element types m (≥ 2).
	Elements int
	// MaxChildren bounds the references per content model.
	MaxChildren int
	// Class is the desired recursion class.
	Class DTDClass
	// MixedFraction (0..1) is the share of mixed-content declarations
	// among the leaf-most third of elements.
	MixedFraction float64
}

func (o *DTDOptions) defaults() {
	if o.Elements < 2 {
		o.Elements = 2
	}
	if o.MaxChildren <= 0 {
		o.MaxChildren = 4
	}
	if o.MixedFraction == 0 {
		o.MixedFraction = 0.5
	}
}

// elemName returns the name of generated element i: e0, e1, ...
func elemName(i int) string { return fmt.Sprintf("e%d", i) }

// RandDTD generates a random DTD with m elements named e0..e{m-1}, rooted
// at e0. Layering guarantees productivity and reachability: element ei only
// references elements ej with j > i (plus controlled back-references for
// the recursive classes), and the last elements are leaves (EMPTY or
// PCDATA). The result always compiles (all elements usable).
func RandDTD(rng *rand.Rand, opts DTDOptions) *dtd.DTD {
	opts.defaults()
	m := opts.Elements
	var b strings.Builder
	for i := 0; i < m; i++ {
		name := elemName(i)
		// The last ~third of elements are leaves so every chain bottoms
		// out.
		if i >= m-1-(m/3) && i != 0 {
			if rng.Float64() < opts.MixedFraction {
				fmt.Fprintf(&b, "<!ELEMENT %s (#PCDATA)>\n", name)
			} else {
				fmt.Fprintf(&b, "<!ELEMENT %s EMPTY>\n", name)
			}
			continue
		}
		model := randModel(rng, i, m, opts)
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, model)
		_ = name
	}
	d, err := dtd.Parse(b.String())
	if err != nil {
		panic(fmt.Sprintf("gen: generated DTD does not parse: %v\n%s", err, b.String()))
	}
	return d
}

// randModel builds a content-model string for element i referencing only
// later elements (j > i), with recursion injected per the class.
func randModel(rng *rand.Rand, i, m int, opts DTDOptions) string {
	// Candidate references: strictly later elements.
	later := func() string {
		j := i + 1 + rng.Intn(m-i-1)
		return elemName(j)
	}
	n := 1 + rng.Intn(opts.MaxChildren)
	parts := make([]string, 0, n+1)
	for k := 0; k < n; k++ {
		switch rng.Intn(6) {
		case 0:
			parts = append(parts, later()+"?")
		case 1:
			parts = append(parts, later()+"*")
		case 2:
			parts = append(parts, later()+"+")
		case 3:
			// A small choice group.
			parts = append(parts, "("+later()+" | "+later()+")")
		default:
			parts = append(parts, later())
		}
	}
	// Recursion injection: a back-reference to self or an earlier element.
	if i > 0 || m > 2 {
		back := elemName(rng.Intn(i + 1)) // self or earlier
		switch opts.Class {
		case ClassWeak:
			// Inside a star-group: (back, x)* or mixed-style choice star.
			parts = append(parts, "("+back+" | "+later()+")*")
		case ClassStrong:
			// Outside any star-group, but optional so the element stays
			// productive: (back | leaf).
			parts = append(parts, "("+back+" | "+later()+")")
		}
	}
	if len(parts) == 1 && !strings.HasPrefix(parts[0], "(") {
		return "(" + parts[0] + ")"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// words for generated text content.
var loremWords = []string{
	"quick", "brown", "fox", "jumps", "over", "lazy", "dog", "editor",
	"markup", "scholar", "folio", "quarto", "verse", "stanza", "gloss",
}

// RandText returns 1-4 random words.
func RandText(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = loremWords[rng.Intn(len(loremWords))]
	}
	return strings.Join(parts, " ")
}

// DocOptions parameterizes GenValid.
type DocOptions struct {
	// MaxDepth bounds element nesting (the generator may exceed it only
	// where the DTD forces deeper structure; layered RandDTD output never
	// does).
	MaxDepth int
	// MaxRepeat bounds how many repetitions a * or + expands to.
	MaxRepeat int
}

func (o *DocOptions) defaults() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MaxRepeat <= 0 {
		o.MaxRepeat = 3
	}
}

// GenValid produces a random document that is fully valid w.r.t. d and
// root, by expanding content models top-down. Choice alternatives that can
// terminate within the depth budget are preferred; the minimal-height
// alternative is forced when the budget is exhausted.
func GenValid(rng *rand.Rand, d *dtd.DTD, root string, opts DocOptions) *dom.Node {
	opts.defaults()
	g := &docGen{rng: rng, dtd: d, opts: opts, minH: minHeights(d)}
	return g.element(root, opts.MaxDepth)
}

type docGen struct {
	rng  *rand.Rand
	dtd  *dtd.DTD
	opts DocOptions
	minH map[string]int
}

// minHeights computes, per element, the minimal subtree height of any valid
// instance (1 for leaves). Unproductive elements get a large sentinel.
func minHeights(d *dtd.DTD) map[string]int {
	const inf = 1 << 20
	h := make(map[string]int, len(d.Order))
	for _, n := range d.Order {
		h[n] = inf
	}
	for changed := true; changed; {
		changed = false
		for _, n := range d.Order {
			decl := d.Elements[n]
			var hh int
			switch decl.Category {
			case dtd.Empty, dtd.Any, dtd.Mixed:
				hh = 1
			default:
				hh = 1 + exprMinHeight(decl.Model, h)
			}
			if hh < h[n] {
				h[n] = hh
				changed = true
			}
		}
	}
	return h
}

// exprMinHeight is the minimal child-height needed to satisfy e (0 if e is
// nullable or contains only PCDATA).
func exprMinHeight(e *contentmodel.Expr, h map[string]int) int {
	const inf = 1 << 20
	switch e.Kind {
	case contentmodel.KindPCDATA:
		return 0
	case contentmodel.KindName:
		v := h[e.Name]
		if v >= inf {
			return inf
		}
		return v
	case contentmodel.KindSeq:
		max := 0
		for _, c := range e.Children {
			v := exprMinHeight(c, h)
			if v > max {
				max = v
			}
		}
		return max
	case contentmodel.KindChoice:
		best := inf
		for _, c := range e.Children {
			if v := exprMinHeight(c, h); v < best {
				best = v
			}
		}
		return best
	case contentmodel.KindStar, contentmodel.KindOpt:
		return 0
	case contentmodel.KindPlus:
		return exprMinHeight(e.Children[0], h)
	}
	return inf
}

func (g *docGen) element(name string, budget int) *dom.Node {
	n := dom.NewElement(name)
	decl := g.dtd.Elements[name]
	switch decl.Category {
	case dtd.Empty:
		return n
	case dtd.Any:
		// Keep ANY content simple: optional text.
		if g.rng.Intn(2) == 0 {
			n.Append(dom.NewText(RandText(g.rng)))
		}
		return n
	case dtd.Mixed:
		g.mixed(n, decl.Model, budget)
		return n
	default:
		for _, child := range g.expand(decl.Model, budget) {
			n.Append(child)
		}
		return n
	}
}

func (g *docGen) mixed(parent *dom.Node, model *contentmodel.Expr, budget int) {
	names := model.ElementNames()
	reps := g.rng.Intn(g.opts.MaxRepeat + 1)
	parent.Append(dom.NewText(RandText(g.rng)))
	for i := 0; i < reps && len(names) > 0; i++ {
		child := names[g.rng.Intn(len(names))]
		if budget-1 < g.minH[child] {
			continue
		}
		parent.Append(g.element(child, budget-1))
		parent.Append(dom.NewText(RandText(g.rng)))
	}
}

// expand produces a child-node sequence matching e within the height
// budget.
func (g *docGen) expand(e *contentmodel.Expr, budget int) []*dom.Node {
	switch e.Kind {
	case contentmodel.KindPCDATA:
		if g.rng.Intn(2) == 0 {
			return []*dom.Node{dom.NewText(RandText(g.rng))}
		}
		return nil
	case contentmodel.KindName:
		return []*dom.Node{g.element(e.Name, budget-1)}
	case contentmodel.KindSeq:
		var out []*dom.Node
		for _, c := range e.Children {
			out = append(out, g.expand(c, budget)...)
		}
		return out
	case contentmodel.KindChoice:
		// Prefer alternatives that fit the budget.
		var fits []*contentmodel.Expr
		for _, c := range e.Children {
			if exprMinHeight(c, g.minH) <= budget-1 {
				fits = append(fits, c)
			}
		}
		if len(fits) == 0 {
			// Forced: take the minimal-height alternative.
			best := e.Children[0]
			for _, c := range e.Children[1:] {
				if exprMinHeight(c, g.minH) < exprMinHeight(best, g.minH) {
					best = c
				}
			}
			return g.expand(best, budget)
		}
		return g.expand(fits[g.rng.Intn(len(fits))], budget)
	case contentmodel.KindStar, contentmodel.KindPlus:
		min := 0
		if e.Kind == contentmodel.KindPlus {
			min = 1
		}
		reps := min
		if exprMinHeight(e.Children[0], g.minH) <= budget-1 {
			reps += g.rng.Intn(g.opts.MaxRepeat + 1 - min)
		}
		var out []*dom.Node
		for i := 0; i < reps; i++ {
			out = append(out, g.expand(e.Children[0], budget)...)
		}
		return out
	case contentmodel.KindOpt:
		if g.rng.Intn(2) == 0 && exprMinHeight(e.Children[0], g.minH) <= budget-1 {
			return g.expand(e.Children[0], budget)
		}
		return nil
	}
	return nil
}

// Strip removes markup from doc: each non-root element is unwrapped with
// probability fraction. By Theorem 2 the result of stripping a valid (or
// potentially valid) document is potentially valid. It returns the number
// of elements removed. The document is modified in place.
func Strip(rng *rand.Rand, root *dom.Node, fraction float64) int {
	removed := 0
	// Collect first: unwrapping invalidates traversal order.
	var victims []*dom.Node
	root.Walk(func(n *dom.Node) bool {
		if n.Kind == dom.ElementNode && n.Parent != nil && rng.Float64() < fraction {
			victims = append(victims, n)
		}
		return true
	})
	for _, v := range victims {
		v.Unwrap()
		removed++
	}
	return removed
}

// StripAll unwraps every non-root element, leaving only the root holding
// the raw text — the starting point of document-centric encoding. Returns
// the removed elements' names in removal (document) order.
func StripAll(root *dom.Node) []string {
	var names []string
	for {
		var victim *dom.Node
		root.Walk(func(n *dom.Node) bool {
			if victim == nil && n.Kind == dom.ElementNode && n.Parent != nil {
				victim = n
			}
			return victim == nil
		})
		if victim == nil {
			return names
		}
		names = append(names, victim.Name)
		victim.Unwrap()
	}
}

// Corrupt applies one random PV-breaking candidate mutation: renaming an
// element to a random other declared name, or swapping two adjacent element
// children. The result is not guaranteed to break potential validity — the
// caller labels it with a checker; Corrupt just produces plausible editing
// mistakes. Returns false if the document has no mutable spot.
func Corrupt(rng *rand.Rand, d *dtd.DTD, root *dom.Node) bool {
	elems := root.Elements()
	if len(elems) == 0 {
		return false
	}
	switch rng.Intn(2) {
	case 0:
		n := elems[rng.Intn(len(elems))]
		names := d.Names()
		n.Name = names[rng.Intn(len(names))]
		return true
	default:
		// Swap two adjacent element children somewhere.
		var candidates []*dom.Node
		for _, e := range elems {
			count := 0
			for _, c := range e.Children {
				if c.Kind == dom.ElementNode {
					count++
				}
			}
			if count >= 2 {
				candidates = append(candidates, e)
			}
		}
		if len(candidates) == 0 {
			return false
		}
		p := candidates[rng.Intn(len(candidates))]
		var idx []int
		for i, c := range p.Children {
			if c.Kind == dom.ElementNode {
				idx = append(idx, i)
			}
		}
		k := rng.Intn(len(idx) - 1)
		i, j := idx[k], idx[k+1]
		p.Children[i], p.Children[j] = p.Children[j], p.Children[i]
		return true
	}
}

// Classify builds the reachability table and returns the DTD's class; a
// convenience for generators' tests and the benchmark harness.
func Classify(d *dtd.DTD) reach.Class { return reach.Build(d).Class() }
