package gen

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/validator"
)

// TestStreamValidIsValid streams documents for random DTDs of every class
// past a byte target and checks the result against the tree validator —
// the same oracle as GenValid.
func TestStreamValidIsValid(t *testing.T) {
	const target = 32 << 10
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, class := range []DTDClass{ClassNonRecursive, ClassWeak, ClassStrong} {
			d := RandDTD(rng, DTDOptions{Elements: 10, Class: class})
			var buf bytes.Buffer
			n, err := StreamValid(&buf, rng, d, "e0", DocOptions{MaxDepth: 8}, target)
			if err != nil {
				t.Fatalf("seed %d class %v: %v", seed, class, err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("seed %d class %v: reported %d bytes, wrote %d", seed, class, n, buf.Len())
			}
			doc, err := dom.ParseRoot(buf.String())
			if err != nil {
				t.Fatalf("seed %d class %v: streamed document does not parse: %v", seed, class, err)
			}
			if err := validator.MustNew(d, "e0").Validate(doc); err != nil {
				t.Errorf("seed %d class %v: streamed document invalid: %v\n%s", seed, class, err, d)
			}
			// When the grammar admits a pump from the root, the stream
			// must meet the target (some roots reference only EMPTY
			// leaves — those legitimately stay small).
			if pumpables(d)["e0"] && n < target {
				t.Errorf("seed %d class %v: streamed %d bytes, want >= %d\n%s", seed, class, n, target, d)
			}
		}
	}
}

// TestStreamValidFixtures covers hand-written grammars: a pump directly
// under the root, a pump one element down, mixed content, and a grammar
// with no pump at all (which must still emit a small valid document).
func TestStreamValidFixtures(t *testing.T) {
	const target = 16 << 10
	cases := []struct {
		name     string
		dtd      string
		root     string
		pumpable bool
	}{
		{"star-at-root", `<!ELEMENT log (entry)*>
<!ELEMENT entry (msg, code)>
<!ELEMENT msg (#PCDATA)>
<!ELEMENT code (#PCDATA)>`, "log", true},
		{"star-one-down", `<!ELEMENT feed (head, body)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT body (item+)>
<!ELEMENT item (#PCDATA)>`, "feed", true},
		{"mixed-root", `<!ELEMENT p (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>`, "p", true},
		{"no-pump", `<!ELEMENT pair (a, b)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>`, "pair", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, err := dtd.Parse(c.dtd)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			rng := rand.New(rand.NewSource(7))
			n, err := StreamValid(&buf, rng, d, c.root, DocOptions{}, target)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := dom.ParseRoot(buf.String())
			if err != nil {
				t.Fatalf("streamed document does not parse: %v (%.120q)", err, buf.String())
			}
			if err := validator.MustNew(d, c.root).Validate(doc); err != nil {
				t.Errorf("streamed document invalid: %v", err)
			}
			if c.pumpable && n < target {
				t.Errorf("streamed %d bytes, want >= %d", n, target)
			}
			if !c.pumpable && n >= target {
				t.Errorf("unpumpable grammar streamed %d bytes past the target %d", n, target)
			}
		})
	}
}

// TestStreamValidDeterministic pins determinism in the seed.
func TestStreamValidDeterministic(t *testing.T) {
	d, err := dtd.Parse(`<!ELEMENT log (entry)*>
<!ELEMENT entry (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := StreamValid(&a, rand.New(rand.NewSource(42)), d, "log", DocOptions{}, 8<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := StreamValid(&b, rand.New(rand.NewSource(42)), d, "log", DocOptions{}, 8<<10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("StreamValid is not deterministic in the seed")
	}
}
