package gen

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/reach"
	"repro/internal/validator"
)

func TestRandDTDClasses(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cases := []struct {
			class DTDClass
			want  reach.Class
		}{
			{ClassNonRecursive, reach.NonRecursive},
			{ClassWeak, reach.PVWeakRecursive},
			{ClassStrong, reach.PVStrongRecursive},
		}
		for _, c := range cases {
			d := RandDTD(rng, DTDOptions{Elements: 8, Class: c.class})
			if got := Classify(d); got != c.want {
				t.Errorf("seed %d class %v: got %v\n%s", seed, c.class, got, d)
			}
			if missing := d.UndeclaredReferences(); len(missing) > 0 {
				t.Errorf("seed %d: undeclared %v", seed, missing)
			}
			// Generated DTDs must always compile (productivity guaranteed).
			if _, err := core.Compile(d, "e0", core.Options{}); err != nil {
				t.Errorf("seed %d: %v\n%s", seed, err, d)
			}
		}
	}
}

func TestGenValidIsValid(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, class := range []DTDClass{ClassNonRecursive, ClassWeak, ClassStrong} {
			d := RandDTD(rng, DTDOptions{Elements: 10, Class: class})
			doc := GenValid(rng, d, "e0", DocOptions{MaxDepth: 8})
			v := validator.MustNew(d, "e0")
			if err := v.Validate(doc); err != nil {
				t.Errorf("seed %d class %v: generated document invalid: %v\n%s\n%s",
					seed, class, err, d, doc)
			}
			if err := doc.Validate(); err != nil {
				t.Errorf("seed %d: tree invariants: %v", seed, err)
			}
		}
	}
}

func TestGenValidFixtures(t *testing.T) {
	// The realistic fixtures generate valid documents too.
	for _, fix := range []struct{ src, root string }{
		{dtd.Figure1, "r"},
		{dtd.Play, "play"},
		{dtd.Article, "article"},
		{dtd.WeakRecursive, "p"},
	} {
		d := dtd.MustParse(fix.src)
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			doc := GenValid(rng, d, fix.root, DocOptions{MaxDepth: 10})
			if err := validator.MustNew(d, fix.root).Validate(doc); err != nil {
				t.Errorf("%s seed %d: %v\n%s", fix.root, seed, err, doc)
			}
		}
	}
}

func TestStripPreservesContentAndPV(t *testing.T) {
	// Theorem 2 in action: stripping tags from a valid document keeps
	// character data intact and potential validity true.
	d := dtd.MustParse(dtd.Play)
	s := core.MustCompile(d, "play", core.Options{})
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := GenValid(rng, d, "play", DocOptions{MaxDepth: 10})
		content := doc.Content()
		removed := Strip(rng, doc, 0.4)
		if doc.Content() != content {
			t.Fatalf("seed %d: Strip changed character data", seed)
		}
		if v := s.CheckDocument(doc); v != nil {
			t.Errorf("seed %d (removed %d): stripped document not PV: %v\n%s",
				seed, removed, v, doc)
		}
		if err := doc.Validate(); err != nil {
			t.Errorf("seed %d: tree invariants: %v", seed, err)
		}
	}
}

func TestStripAll(t *testing.T) {
	doc := dom.MustParse(`<r><a><b>one</b><c>two</c></a><a><c>three</c></a></r>`)
	names := StripAll(doc.Root)
	if len(names) != 5 {
		t.Errorf("removed %v, want 5 elements", names)
	}
	if got := doc.Root.String(); got != `<r>onetwothree</r>` {
		t.Errorf("after StripAll: %q", got)
	}
}

func TestCorruptMutates(t *testing.T) {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(7))
	doc := GenValid(rng, d, "play", DocOptions{MaxDepth: 8})
	before := doc.String()
	changed := false
	for i := 0; i < 10; i++ {
		clone := doc.Clone()
		if Corrupt(rng, d, clone) && clone.String() != before {
			changed = true
		}
		if err := clone.Validate(); err != nil {
			t.Fatalf("corrupt broke invariants: %v", err)
		}
	}
	if !changed {
		t.Error("Corrupt never changed the document in 10 tries")
	}
}

func TestGenValidDeterministic(t *testing.T) {
	d := dtd.MustParse(dtd.Article)
	a := GenValid(rand.New(rand.NewSource(42)), d, "article", DocOptions{})
	b := GenValid(rand.New(rand.NewSource(42)), d, "article", DocOptions{})
	if !a.Equal(b) {
		t.Error("GenValid is not deterministic in the seed")
	}
}

func TestGenValidRespectsDepth(t *testing.T) {
	d := dtd.MustParse(dtd.WeakRecursive) // unbounded nesting possible
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := GenValid(rng, d, "p", DocOptions{MaxDepth: 4})
		if got := doc.Depth(); got > 4 {
			t.Errorf("seed %d: depth %d exceeds budget 4", seed, got)
		}
	}
}
