package gen

import (
	"bufio"
	"io"
	"math/rand"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/dtd"
)

// StreamValid writes one document, valid w.r.t. d and root, directly to w,
// stretching * and + repetitions until at least minBytes bytes have been
// emitted. Memory stays O(MaxDepth): repetitions of a pumped group are
// generated one at a time, serialized, and dropped — the document never
// exists as a tree, so multi-GB inputs for benchmarks and acceptance tests
// cost a fixed few hundred KB to produce. Deterministic in rng, like
// GenValid.
//
// The stretch happens at the pumpable spot nearest the root: a star or
// plus group (or mixed content) reachable through the sequence/choice
// structure within the depth budget. If the grammar admits no unbounded
// repetition from root, the output is an ordinary small valid document and
// the returned count falls short of minBytes — callers should compare.
func StreamValid(w io.Writer, rng *rand.Rand, d *dtd.DTD, root string, opts DocOptions, minBytes int64) (int64, error) {
	opts.defaults()
	g := &docGen{rng: rng, dtd: d, opts: opts, minH: minHeights(d)}
	cw := &countWriter{w: w}
	s := &streamGen{
		g:      g,
		pump:   pumpables(d),
		cw:     cw,
		bw:     bufio.NewWriterSize(cw, 64<<10),
		target: minBytes,
	}
	s.element(root, opts.MaxDepth, s.pump[root])
	if err := s.bw.Flush(); s.err == nil {
		s.err = err
	}
	return cw.n, s.err
}

// countWriter counts bytes on their way to the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// streamGen drives a single streamed expansion. Small subtrees (one
// repetition of a pumped group, one forced child) are still built with
// docGen and serialized through a reusable scratch buffer; only the spine
// from the root to the pump is streamed structurally.
type streamGen struct {
	g       *docGen
	pump    map[string]bool
	cw      *countWriter
	bw      *bufio.Writer
	target  int64
	scratch []byte
	err     error
}

// written is the document size so far, including bytes parked in the
// bufio layer.
func (s *streamGen) written() int64 { return s.cw.n + int64(s.bw.Buffered()) }

func (s *streamGen) done() bool { return s.written() >= s.target }

func (s *streamGen) str(v string) {
	if s.err != nil {
		return
	}
	if _, err := s.bw.WriteString(v); err != nil {
		s.err = err
	}
}

// emitTree serializes a docGen-built subtree through the scratch buffer.
func (s *streamGen) emitTree(n *dom.Node) {
	if s.err != nil {
		return
	}
	s.scratch = n.AppendXML(s.scratch[:0])
	if _, err := s.bw.Write(s.scratch); err != nil {
		s.err = err
	}
}

// emitNodes serializes an expanded child sequence.
func (s *streamGen) emitNodes(nodes []*dom.Node) {
	for _, n := range nodes {
		s.emitTree(n)
	}
}

// element streams one element. With stretch set (and the element
// pumpable), its content model is expanded structurally so a star, plus
// or mixed group inside can repeat until the byte target is met;
// otherwise the subtree is generated and serialized the ordinary way.
func (s *streamGen) element(name string, budget int, stretch bool) {
	if s.err != nil {
		return
	}
	if !stretch {
		s.emitTree(s.g.element(name, budget))
		return
	}
	s.str("<")
	s.str(name)
	s.str(">")
	decl := s.g.dtd.Elements[name]
	switch decl.Category {
	case dtd.Empty:
	case dtd.Any:
		s.pumpText()
	case dtd.Mixed:
		s.pumpMixed(decl.Model, budget)
	default:
		s.expand(decl.Model, budget, true)
	}
	s.str("</")
	s.str(name)
	s.str(">")
}

// expand streams a content-model expansion, mirroring docGen.expand but
// with repetition counts driven by the byte target wherever stretch
// holds. Choices prefer pumpable alternatives; sequences hand the stretch
// to every pumpable part (the first to reach the target turns the rest
// into minimal expansions).
func (s *streamGen) expand(e *contentmodel.Expr, budget int, stretch bool) {
	if s.err != nil {
		return
	}
	if !stretch {
		s.emitNodes(s.g.expand(e, budget))
		return
	}
	switch e.Kind {
	case contentmodel.KindPCDATA:
		s.text()
	case contentmodel.KindName:
		s.element(e.Name, budget-1, s.pump[e.Name] && !s.done())
	case contentmodel.KindSeq:
		for _, c := range e.Children {
			s.expand(c, budget, exprPumpable(c, s.pump))
		}
	case contentmodel.KindChoice:
		// Prefer a pumpable alternative that fits the budget.
		var fits []*contentmodel.Expr
		for _, c := range e.Children {
			if exprPumpable(c, s.pump) && exprMinHeight(c, s.g.minH) <= budget-1 {
				fits = append(fits, c)
			}
		}
		if len(fits) == 0 {
			s.emitNodes(s.g.expand(e, budget))
			return
		}
		s.expand(fits[s.g.rng.Intn(len(fits))], budget, true)
	case contentmodel.KindStar, contentmodel.KindPlus:
		s.pumpRepeat(e, budget)
	case contentmodel.KindOpt:
		if exprPumpable(e.Children[0], s.pump) && exprMinHeight(e.Children[0], s.g.minH) <= budget-1 {
			s.expand(e.Children[0], budget, true)
			return
		}
		s.emitNodes(s.g.expand(e, budget))
	}
}

// pumpRepeat is the stretch engine: repeat a * or + group until the
// target is met. Each repetition is an ordinary small expansion, so depth
// stays within budget while width grows. A nullable group may expand to
// nothing; a run of empty repetitions aborts the pump rather than spin.
func (s *streamGen) pumpRepeat(e *contentmodel.Expr, budget int) {
	child := e.Children[0]
	if e.Kind == contentmodel.KindPlus {
		s.emitNodes(s.g.expand(child, budget))
	}
	if exprMinHeight(child, s.g.minH) > budget-1 {
		return
	}
	empty := 0
	for !s.done() && empty < 16 && s.err == nil {
		before := s.written()
		s.emitNodes(s.g.expand(child, budget))
		if s.written() == before {
			empty++
		} else {
			empty = 0
		}
	}
}

// pumpMixed repeats the (#PCDATA | e1 | ...)* body of a mixed or ANY
// declaration; text alone always makes progress, so this pump cannot
// stall.
func (s *streamGen) pumpMixed(model *contentmodel.Expr, budget int) {
	names := model.ElementNames()
	s.text()
	for !s.done() && s.err == nil {
		if len(names) > 0 {
			child := names[s.g.rng.Intn(len(names))]
			if budget-1 >= s.g.minH[child] {
				s.emitTree(s.g.element(child, budget-1))
			}
		}
		s.text()
	}
}

// pumpText fills an ANY element with plain text up to the target.
func (s *streamGen) pumpText() {
	s.text()
	for !s.done() && s.err == nil {
		s.str(" ")
		s.text()
	}
}

// text writes 1-4 random words (always at least one byte, never needing
// escapes).
func (s *streamGen) text() { s.str(RandText(s.g.rng)) }

// pumpables computes, per element, whether its content admits an
// unbounded repetition point: a star/plus (or mixed/ANY content)
// reachable through the content-model structure, possibly via child
// elements. The fixpoint mirrors minHeights. A star over an
// uninstantiable body still counts — pumpRepeat's height guard simply
// declines to pump there and the element stays small.
func pumpables(d *dtd.DTD) map[string]bool {
	p := make(map[string]bool, len(d.Order))
	for changed := true; changed; {
		changed = false
		for _, n := range d.Order {
			if p[n] {
				continue
			}
			decl := d.Elements[n]
			var ok bool
			switch decl.Category {
			case dtd.Mixed, dtd.Any:
				ok = true
			case dtd.Empty:
			default:
				ok = exprPumpable(decl.Model, p)
			}
			if ok {
				p[n] = true
				changed = true
			}
		}
	}
	return p
}

// exprPumpable reports whether e contains an unbounded repetition point,
// given the pumpability of referenced elements.
func exprPumpable(e *contentmodel.Expr, p map[string]bool) bool {
	switch e.Kind {
	case contentmodel.KindStar, contentmodel.KindPlus:
		return true
	case contentmodel.KindName:
		return p[e.Name]
	case contentmodel.KindSeq, contentmodel.KindChoice:
		for _, c := range e.Children {
			if exprPumpable(c, p) {
				return true
			}
		}
		return false
	case contentmodel.KindOpt:
		return exprPumpable(e.Children[0], p)
	}
	return false
}
