// Package xsd imports a practical subset of W3C XML Schema into the DTD
// content-model representation, exercising the paper's remark (Section 2)
// that potential validity "can be straightforward generalized to any other
// XML schema language": only the structural content model matters, so any
// schema formalism that compiles to regular expressions over element names
// plugs into the same reachability/DAG/recognizer machinery.
//
// Supported subset (namespace prefixes are accepted and ignored):
//
//	<schema>
//	  <element name="..."> (top level: global element declarations)
//	    <complexType mixed="true|false">
//	      <sequence|choice minOccurs=".." maxOccurs="..|unbounded">
//	        <element ref=".."|name=".." minOccurs=".." maxOccurs=".."/>
//	        nested <sequence>/<choice>
//	      </sequence|choice>
//	    </complexType>
//	  </element>
//	  <element name="..." type="xs:string|..."/>  (simple content -> #PCDATA)
//	</schema>
//
// Local (anonymous) element declarations are hoisted to global scope by
// name; attributes and simple-type facets are ignored (the paper's
// footnote 3: attribute declarations play no role in potential validity).
package xsd

import (
	"fmt"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/dtd"
)

// Parse converts XSD source text into the DTD representation.
func Parse(src string) (*dtd.DTD, error) {
	doc, err := dom.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	root := doc.Root
	if local(root.Name) != "schema" {
		return nil, fmt.Errorf("xsd: root element is <%s>, expected <schema>", root.Name)
	}
	c := &converter{out: &dtd.DTD{Elements: map[string]*dtd.ElementDecl{}}}
	for _, child := range root.Children {
		if child.Kind == dom.ElementNode && local(child.Name) == "element" {
			if err := c.globalElement(child); err != nil {
				return nil, err
			}
		}
	}
	if len(c.out.Order) == 0 {
		return nil, fmt.Errorf("xsd: no global element declarations")
	}
	if missing := c.out.UndeclaredReferences(); len(missing) > 0 {
		return nil, fmt.Errorf("xsd: unresolved element references: %s", strings.Join(missing, ", "))
	}
	return c.out, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) *dtd.DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type converter struct {
	out *dtd.DTD
}

func local(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func attr(n *dom.Node, name string) string {
	for _, a := range n.Attrs {
		if local(a.Name) == name {
			return a.Value
		}
	}
	return ""
}

func childElement(n *dom.Node, localName string) *dom.Node {
	for _, c := range n.Children {
		if c.Kind == dom.ElementNode && local(c.Name) == localName {
			return c
		}
	}
	return nil
}

// globalElement handles a top-level <element name="...">.
func (c *converter) globalElement(n *dom.Node) error {
	name := attr(n, "name")
	if name == "" {
		return fmt.Errorf("xsd: global element without a name")
	}
	return c.declare(name, n)
}

// declare registers element name with the content derived from its
// declaration node (shared by global and hoisted local declarations).
func (c *converter) declare(name string, n *dom.Node) error {
	if _, dup := c.out.Elements[name]; dup {
		return fmt.Errorf("xsd: duplicate declaration of element %q", name)
	}
	decl := &dtd.ElementDecl{Name: name}
	// Reserve the slot before descending so recursive references resolve.
	c.out.Elements[name] = decl
	c.out.Order = append(c.out.Order, name)

	ct := childElement(n, "complexType")
	if ct == nil {
		// type="xs:string" etc., or no type: simple character content.
		decl.Category = dtd.Mixed
		decl.Model = contentmodel.NewPCDATA()
		return nil
	}
	group := firstGroup(ct)
	mixed := attr(ct, "mixed") == "true"
	if group == nil {
		if mixed {
			decl.Category = dtd.Mixed
			decl.Model = contentmodel.NewPCDATA()
		} else {
			decl.Category = dtd.Empty
		}
		return nil
	}
	expr, err := c.group(group)
	if err != nil {
		return fmt.Errorf("xsd: element %q: %w", name, err)
	}
	if mixed {
		// XSD mixed content allows text anywhere; the closest DTD shape is
		// the mixed star over the group's element set (Proposition 1 makes
		// the inner structure irrelevant for potential validity, and
		// full-validity checks for mixed DTD content are set-based too).
		parts := []*contentmodel.Expr{contentmodel.NewPCDATA()}
		for _, ref := range expr.ElementNames() {
			parts = append(parts, contentmodel.NewName(ref))
		}
		decl.Category = dtd.Mixed
		decl.Model = contentmodel.NewStar(contentmodel.NewChoice(parts...))
		return nil
	}
	decl.Category = dtd.Children
	decl.Model = expr
	return nil
}

func firstGroup(ct *dom.Node) *dom.Node {
	for _, c := range ct.Children {
		if c.Kind != dom.ElementNode {
			continue
		}
		switch local(c.Name) {
		case "sequence", "choice", "all":
			return c
		}
	}
	return nil
}

// group converts <sequence>/<choice>/<all> into a content-model expression,
// applying minOccurs/maxOccurs.
func (c *converter) group(n *dom.Node) (*contentmodel.Expr, error) {
	var parts []*contentmodel.Expr
	for _, ch := range n.Children {
		if ch.Kind != dom.ElementNode {
			continue
		}
		switch local(ch.Name) {
		case "element":
			expr, err := c.particleElement(ch)
			if err != nil {
				return nil, err
			}
			parts = append(parts, expr)
		case "sequence", "choice", "all":
			inner, err := c.group(ch)
			if err != nil {
				return nil, err
			}
			parts = append(parts, inner)
		case "annotation", "attribute", "attributeGroup", "anyAttribute":
			// ignored (footnote 3)
		default:
			return nil, fmt.Errorf("unsupported particle <%s>", ch.Name)
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty <%s> group", local(n.Name))
	}
	var expr *contentmodel.Expr
	switch local(n.Name) {
	case "sequence":
		expr = contentmodel.NewSeq(parts...)
	case "choice":
		expr = contentmodel.NewChoice(parts...)
	case "all":
		// xs:all permits any order; DTDs cannot express it exactly. The
		// standard over-approximation for potential validity is the starred
		// choice (order-free, repeatable); exact once-each semantics would
		// need a factorial expansion. Documented as part of the subset.
		expr = contentmodel.NewStar(contentmodel.NewChoice(parts...))
	}
	return occurs(expr, attr(n, "minOccurs"), attr(n, "maxOccurs"))
}

// particleElement converts an <element ref=...> or local <element name=...>
// particle.
func (c *converter) particleElement(n *dom.Node) (*contentmodel.Expr, error) {
	name := attr(n, "ref")
	if name == "" {
		name = attr(n, "name")
		if name == "" {
			return nil, fmt.Errorf("element particle without ref or name")
		}
		// Hoist the local declaration to global scope (once).
		if _, ok := c.out.Elements[local(name)]; !ok {
			if err := c.declare(local(name), n); err != nil {
				return nil, err
			}
		}
	}
	return occurs(contentmodel.NewName(local(name)), attr(n, "minOccurs"), attr(n, "maxOccurs"))
}

// occurs wraps expr per minOccurs/maxOccurs. Supported combinations:
// (0|1) x (1|unbounded) exactly; other numeric bounds degrade to the
// nearest DTD operator (documented subset behavior).
func occurs(expr *contentmodel.Expr, minS, maxS string) (*contentmodel.Expr, error) {
	min, max := 1, 1
	unbounded := false
	if minS != "" {
		if _, err := fmt.Sscanf(minS, "%d", &min); err != nil {
			return nil, fmt.Errorf("bad minOccurs %q", minS)
		}
	}
	switch maxS {
	case "":
	case "unbounded":
		unbounded = true
	default:
		if _, err := fmt.Sscanf(maxS, "%d", &max); err != nil {
			return nil, fmt.Errorf("bad maxOccurs %q", maxS)
		}
	}
	switch {
	case min == 0 && unbounded:
		return contentmodel.NewStar(expr), nil
	case min >= 1 && unbounded:
		// minOccurs>1 degrades to 1 (DTD has no counters).
		return contentmodel.NewPlus(expr), nil
	case min == 0:
		// maxOccurs>1 degrades to 1.
		return contentmodel.NewOpt(expr), nil
	default:
		return expr, nil
	}
}
