package xsd

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/reach"
)

// figure1XSD is the Figure 1 DTD transliterated to the XSD subset.
const figure1XSD = `
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="a" minOccurs="1" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="a">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="b" minOccurs="0"/>
        <xs:choice>
          <xs:element ref="c"/>
          <xs:element ref="f"/>
        </xs:choice>
        <xs:element ref="d"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="b">
    <xs:complexType>
      <xs:choice>
        <xs:element ref="d"/>
        <xs:element ref="f"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
  <xs:element name="c" type="xs:string"/>
  <xs:element name="d">
    <xs:complexType mixed="true">
      <xs:sequence>
        <xs:element ref="e" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="e">
    <xs:complexType/>
  </xs:element>
  <xs:element name="f">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="c"/>
        <xs:element ref="e"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func TestParseFigure1XSD(t *testing.T) {
	d := MustParse(figure1XSD)
	if len(d.Order) != 7 {
		t.Fatalf("elements = %v", d.Order)
	}
	cases := []struct {
		name     string
		category dtd.Category
		model    string
	}{
		{"r", dtd.Children, "(a)+"},
		{"a", dtd.Children, "((b)?, (c | f), d)"},
		{"b", dtd.Children, "(d | f)"},
		{"c", dtd.Mixed, "#PCDATA"},
		{"d", dtd.Mixed, "(#PCDATA | e)*"},
		{"e", dtd.Empty, ""},
		{"f", dtd.Children, "(c, e)"},
	}
	for _, c := range cases {
		decl := d.Element(c.name)
		if decl == nil {
			t.Fatalf("missing element %q", c.name)
		}
		if decl.Category != c.category {
			t.Errorf("%s category = %v, want %v", c.name, decl.Category, c.category)
		}
		if c.model != "" && decl.Model.String() != c.model {
			t.Errorf("%s model = %q, want %q", c.name, decl.Model.String(), c.model)
		}
	}
}

// TestXSDSemanticEquivalence: the XSD import must behave exactly like the
// DTD on the paper's Example 1.
func TestXSDSemanticEquivalence(t *testing.T) {
	fromXSD := core.MustCompile(MustParse(figure1XSD), "r", core.Options{})
	fromDTD := core.MustCompile(dtd.MustParse(dtd.Figure1), "r", core.Options{})
	cases := []string{
		`<r><a><b>A quick brown</b><e></e><c>x</c> dog</a></r>`,
		`<r><a><b>A quick brown</b><c>x</c> dog<e></e></a></r>`,
		`<r><a><c>x</c><d></d></a></r>`,
		`<r>loose</r>`,
	}
	for _, src := range cases {
		a, err := fromXSD.CheckString(src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fromDTD.CheckString(src)
		if err != nil {
			t.Fatal(err)
		}
		if (a == nil) != (b == nil) {
			t.Errorf("XSD/DTD disagree on %s: xsd=%v dtd=%v", src, a, b)
		}
	}
	if fromXSD.Class() != reach.NonRecursive {
		t.Errorf("class = %v", fromXSD.Class())
	}
}

func TestLocalElementHoisting(t *testing.T) {
	d := MustParse(`
<schema>
  <element name="doc">
    <complexType>
      <sequence>
        <element name="title" type="string"/>
        <element name="section" minOccurs="0" maxOccurs="unbounded">
          <complexType>
            <sequence>
              <element ref="title"/>
            </sequence>
          </complexType>
        </element>
      </sequence>
    </complexType>
  </element>
</schema>`)
	for _, name := range []string{"doc", "title", "section"} {
		if d.Element(name) == nil {
			t.Errorf("element %q not hoisted", name)
		}
	}
	if got := d.Element("doc").Model.String(); got != "(title, (section)*)" {
		t.Errorf("doc model = %q", got)
	}
}

func TestRecursiveXSD(t *testing.T) {
	// T2 in XSD form: PV-strong recursion must classify identically.
	d := MustParse(`
<schema>
  <element name="a">
    <complexType>
      <sequence>
        <choice>
          <element ref="a"/>
          <element ref="b"/>
        </choice>
        <element ref="b"/>
      </sequence>
    </complexType>
  </element>
  <element name="b"><complexType/></element>
</schema>`)
	lt := reach.Build(d)
	if lt.Class() != reach.PVStrongRecursive {
		t.Errorf("class = %v, want PV-strong", lt.Class())
	}
}

func TestXSDAll(t *testing.T) {
	// xs:all over-approximates to a starred choice (documented).
	d := MustParse(`
<schema>
  <element name="r">
    <complexType>
      <all>
        <element name="x" type="string"/>
        <element name="y" type="string"/>
      </all>
    </complexType>
  </element>
</schema>`)
	if got := d.Element("r").Model.String(); got != "(x | y)*" {
		t.Errorf("all model = %q", got)
	}
}

func TestXSDMixedWithElements(t *testing.T) {
	d := MustParse(`
<schema>
  <element name="p">
    <complexType mixed="true">
      <sequence>
        <element name="b" type="string" minOccurs="0" maxOccurs="unbounded"/>
      </sequence>
    </complexType>
  </element>
</schema>`)
	decl := d.Element("p")
	if decl.Category != dtd.Mixed {
		t.Fatalf("category = %v", decl.Category)
	}
	if got := decl.Model.String(); got != "(#PCDATA | b)*" {
		t.Errorf("model = %q", got)
	}
}

func TestXSDErrors(t *testing.T) {
	cases := []string{
		`<notaschema/>`,
		`<schema></schema>`, // no global elements
		`<schema><element/></schema>`,
		`<schema><element name="a"><complexType><sequence><element ref="ghost"/></sequence></complexType></element></schema>`,
		`<schema><element name="a" type="string"/><element name="a" type="string"/></schema>`,
		`<schema><element name="a"><complexType><sequence><element name="b" type="string" minOccurs="bogus"/></sequence></complexType></element></schema>`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %s", strings.TrimSpace(src)[:30])
		}
	}
}
