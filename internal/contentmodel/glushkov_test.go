package contentmodel

import (
	"testing"
	"testing/quick"
)

func match(t *testing.T, e *Expr, symbols []string, want bool) {
	t.Helper()
	a := CompileAutomaton(e)
	if got := a.Match(symbols); got != want {
		t.Errorf("Match(%s, %v) = %v, want %v", e, symbols, got, want)
	}
}

func TestAutomatonBasics(t *testing.T) {
	abc := NewSeq(NewName("a"), NewName("b"), NewName("c"))
	match(t, abc, []string{"a", "b", "c"}, true)
	match(t, abc, []string{"a", "b"}, false)
	match(t, abc, []string{"a", "b", "c", "c"}, false)
	match(t, abc, nil, false)

	choice := NewChoice(NewName("a"), NewName("b"))
	match(t, choice, []string{"a"}, true)
	match(t, choice, []string{"b"}, true)
	match(t, choice, []string{"c"}, false)
	match(t, choice, []string{"a", "b"}, false)
}

func TestAutomatonRepetition(t *testing.T) {
	star := NewStar(NewName("a"))
	match(t, star, nil, true)
	match(t, star, []string{"a", "a", "a"}, true)
	match(t, star, []string{"a", "b"}, false)

	plus := NewPlus(NewName("a"))
	match(t, plus, nil, false)
	match(t, plus, []string{"a"}, true)
	match(t, plus, []string{"a", "a"}, true)

	opt := NewOpt(NewName("a"))
	match(t, opt, nil, true)
	match(t, opt, []string{"a"}, true)
	match(t, opt, []string{"a", "a"}, false)
}

func TestAutomatonFigure1A(t *testing.T) {
	// a's model: (b?, (c | f), d)
	a := NewSeq(NewOpt(NewName("b")), NewChoice(NewName("c"), NewName("f")), NewName("d"))
	match(t, a, []string{"b", "c", "d"}, true)
	match(t, a, []string{"b", "f", "d"}, true)
	match(t, a, []string{"c", "d"}, true)
	match(t, a, []string{"f", "d"}, true)
	match(t, a, []string{"b", "d"}, false)
	match(t, a, []string{"b", "c", "f", "d"}, false)
	match(t, a, []string{"b", "e", "c", "d"}, false) // Example 1's w order
}

func TestAutomatonMixed(t *testing.T) {
	// d's model: (#PCDATA | e)*
	d := NewStar(NewChoice(NewPCDATA(), NewName("e")))
	match(t, d, nil, true)
	match(t, d, []string{PCDATASymbol}, true)
	match(t, d, []string{PCDATASymbol, "e", PCDATASymbol}, true)
	match(t, d, []string{"f"}, false)
}

func TestAutomatonNestedStars(t *testing.T) {
	// (a, (b* | (c, d*, e)*))
	e := NewSeq(
		NewName("a"),
		NewChoice(
			NewStar(NewName("b")),
			NewStar(NewSeq(NewName("c"), NewStar(NewName("d")), NewName("e"))),
		),
	)
	match(t, e, []string{"a"}, true)
	match(t, e, []string{"a", "b", "b"}, true)
	match(t, e, []string{"a", "c", "e"}, true)
	match(t, e, []string{"a", "c", "d", "d", "e", "c", "e"}, true)
	match(t, e, []string{"a", "c", "d"}, false)
	match(t, e, []string{"a", "b", "c", "e"}, false)
}

func TestMatchPrefix(t *testing.T) {
	abc := NewSeq(NewName("a"), NewName("b"), NewName("c"))
	a := CompileAutomaton(abc)
	if got := a.MatchPrefix([]string{"a", "b", "c"}); got != 3 {
		t.Errorf("MatchPrefix = %d, want 3", got)
	}
	if got := a.MatchPrefix([]string{"a", "x", "c"}); got != 1 {
		t.Errorf("MatchPrefix = %d, want 1", got)
	}
	if got := a.MatchPrefix([]string{"x"}); got != 0 {
		t.Errorf("MatchPrefix = %d, want 0", got)
	}
}

func TestEmptyAutomaton(t *testing.T) {
	a := CompileAutomaton(nil)
	if !a.Match(nil) {
		t.Error("nil model must accept the empty sequence (EMPTY)")
	}
	if a.Match([]string{"a"}) {
		t.Error("nil model must reject content")
	}
}

func TestDeterminismCheck(t *testing.T) {
	// ((a, b) | (a, c)) is the textbook non-deterministic model.
	bad := NewChoice(NewSeq(NewName("a"), NewName("b")), NewSeq(NewName("a"), NewName("c")))
	if v := CompileAutomaton(bad).CheckDeterminism(); len(v) == 0 {
		t.Error("expected determinism violation for ((a,b)|(a,c))")
	}
	good := NewSeq(NewName("a"), NewChoice(NewName("b"), NewName("c")))
	if v := CompileAutomaton(good).CheckDeterminism(); len(v) != 0 {
		t.Errorf("unexpected violations for (a,(b|c)): %v", v)
	}
}

func TestAutomatonAgainstBruteForce(t *testing.T) {
	// Property: Glushkov Match agrees with a direct recursive matcher on
	// random expressions and random short inputs.
	f := func(seed int64) bool {
		e := randomExpr(seed, 3)
		a := CompileAutomaton(e)
		state := uint64(seed) ^ 0x9e3779b97f4a7c15
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		syms := []string{"a", "b", "c", "d", "e", PCDATASymbol}
		for trial := 0; trial < 20; trial++ {
			input := make([]string, next(5))
			for i := range input {
				input[i] = syms[next(len(syms))]
			}
			if a.Match(input) != bruteMatch(e, input) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// bruteMatch decides membership by trying all splits — exponential, for
// cross-checking only.
func bruteMatch(e *Expr, input []string) bool {
	switch e.Kind {
	case KindName:
		return len(input) == 1 && input[0] == e.Name
	case KindPCDATA:
		return len(input) == 0 || (len(input) == 1 && input[0] == PCDATASymbol)
	case KindSeq:
		return bruteSeq(e.Children, input)
	case KindChoice:
		for _, c := range e.Children {
			if bruteMatch(c, input) {
				return true
			}
		}
		return false
	case KindOpt:
		return len(input) == 0 || bruteMatch(e.Children[0], input)
	case KindStar:
		if len(input) == 0 {
			return true
		}
		// Try a non-empty first chunk then recurse; chunks of length 0
		// would not consume input and are skipped to guarantee progress.
		for i := 1; i <= len(input); i++ {
			if bruteMatch(e.Children[0], input[:i]) && bruteMatch(e, input[i:]) {
				return true
			}
		}
		return false
	case KindPlus:
		star := NewStar(e.Children[0])
		for i := 0; i <= len(input); i++ {
			if bruteMatch(e.Children[0], input[:i]) && bruteMatch(star, input[i:]) {
				return true
			}
		}
		return false
	}
	return false
}

func bruteSeq(children []*Expr, input []string) bool {
	if len(children) == 0 {
		return len(input) == 0
	}
	for i := 0; i <= len(input); i++ {
		if bruteMatch(children[0], input[:i]) && bruteSeq(children[1:], input[i:]) {
			return true
		}
	}
	return false
}
