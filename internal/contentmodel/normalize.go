package contentmodel

import "sort"

// Normalize applies the simplifications licensed by Corollary 3.1 of the
// paper: every "?" operator is removed (X? becomes X) and every "+" operator
// is replaced by "*". The transformations do not change the language of the
// potential-validity grammar G'(T,r) because every nonterminal of G' derives
// the empty string (Theorem 3). The result is a fresh tree; the input is not
// modified.
func Normalize(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	switch e.Kind {
	case KindPCDATA, KindName:
		return e.Clone()
	case KindOpt:
		// X? -> X (Corollary 3.1).
		return Normalize(e.Children[0])
	case KindPlus:
		// X+ -> X* (Corollary 3.1).
		return NewStar(Normalize(e.Children[0]))
	case KindStar:
		return NewStar(Normalize(e.Children[0]))
	case KindSeq, KindChoice:
		children := make([]*Expr, len(e.Children))
		for i, c := range e.Children {
			children[i] = Normalize(c)
		}
		return &Expr{Kind: e.Kind, Children: children}
	}
	return e.Clone()
}

// StarGroup describes one star-group of a normalized content model
// (Definition 4): a maximal starred subexpression — an expression of the
// form a* or (...)* that is not itself nested inside another starred
// subexpression. Only the *set* of elements appearing in the group matters
// for potential validity (Proposition 1).
type StarGroup struct {
	// Expr is the starred subexpression as found in the model.
	Expr *Expr
	// Elements is the sorted set of element names occurring in the group.
	Elements []string
	// HasPCDATA reports whether #PCDATA occurs in the group (mixed content).
	HasPCDATA bool
}

// StarGroups returns the star-groups of e per Definition 4: each starred
// subexpression that is not contained in another starred subexpression.
// The expression should already be normalized (no "?" or "+" operators);
// for un-normalized input, Plus and Opt subtrees are treated like their
// normalized forms (Plus counts as starred, Opt does not).
func StarGroups(e *Expr) []StarGroup {
	var groups []StarGroup
	var visit func(x *Expr)
	visit = func(x *Expr) {
		if x == nil {
			return
		}
		if x.Kind == KindStar || x.Kind == KindPlus {
			groups = append(groups, StarGroup{
				Expr:      x,
				Elements:  x.ElementNames(),
				HasPCDATA: x.HasPCDATA(),
			})
			return // maximality: do not descend into a star-group
		}
		for _, c := range x.Children {
			visit(c)
		}
	}
	visit(e)
	return groups
}

// InStarGroup reports, for every element-name occurrence in e, whether that
// occurrence lies inside a star-group. It returns two sets: names with at
// least one occurrence outside any star-group, and names with at least one
// occurrence inside a star-group. A name can appear in both. The expression
// should be normalized first.
func InStarGroup(e *Expr) (outside, inside map[string]bool) {
	outside = map[string]bool{}
	inside = map[string]bool{}
	var visit func(x *Expr, in bool)
	visit = func(x *Expr, in bool) {
		if x == nil {
			return
		}
		switch x.Kind {
		case KindName:
			if in {
				inside[x.Name] = true
			} else {
				outside[x.Name] = true
			}
		case KindStar, KindPlus:
			for _, c := range x.Children {
				visit(c, true)
			}
		default:
			for _, c := range x.Children {
				visit(c, in)
			}
		}
	}
	visit(e, false)
	return outside, inside
}

// FlattenStarGroups rewrites each star-group of a normalized expression into
// the canonical form (a1, ..., an)* over the sorted element set of the
// group, per Proposition 1: the language of G'(T,r) depends only on the
// element set of each star-group, not on its internal structure. #PCDATA
// membership is preserved by prepending it to the sequence. The result is a
// fresh tree.
func FlattenStarGroups(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	switch e.Kind {
	case KindStar:
		group := e.Children[0]
		var items []*Expr
		if group.HasPCDATA() {
			items = append(items, NewPCDATA())
		}
		names := group.ElementNames()
		sort.Strings(names)
		for _, n := range names {
			items = append(items, NewName(n))
		}
		if len(items) == 0 {
			// ()* over nothing: equivalent to the empty sequence; keep a
			// degenerate empty star for structural stability.
			return NewStar(NewSeq(NewPCDATA()))
		}
		if len(items) == 1 {
			return NewStar(items[0])
		}
		return NewStar(&Expr{Kind: KindSeq, Children: items})
	case KindPCDATA, KindName:
		return e.Clone()
	default:
		children := make([]*Expr, len(e.Children))
		for i, c := range e.Children {
			children[i] = FlattenStarGroups(c)
		}
		return &Expr{Kind: e.Kind, Children: children}
	}
}
