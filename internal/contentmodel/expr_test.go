package contentmodel

import (
	"testing"
	"testing/quick"
)

// exprFor builds (a, (b* | (c, d*, e)*)) — the star-group example following
// Definition 4 in the paper.
func def4Example() *Expr {
	return NewSeq(
		NewName("a"),
		NewChoice(
			NewStar(NewName("b")),
			NewStar(NewSeq(NewName("c"), NewStar(NewName("d")), NewName("e"))),
		),
	)
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		expr *Expr
		want string
	}{
		{NewName("a"), "a"},
		{NewPCDATA(), "#PCDATA"},
		{NewSeq(NewName("a"), NewName("b")), "(a, b)"},
		{NewChoice(NewName("a"), NewName("b")), "(a | b)"},
		{NewStar(NewName("a")), "(a)*"},
		{NewPlus(NewSeq(NewName("a"), NewName("b"))), "(a, b)+"},
		{NewOpt(NewName("b")), "(b)?"},
		{def4Example(), "(a, ((b)* | (c, (d)*, e)*))"},
	}
	for _, tt := range tests {
		if got := tt.expr.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSingletonCollapse(t *testing.T) {
	if e := NewSeq(NewName("a")); e.Kind != KindName {
		t.Errorf("NewSeq of one child should collapse, got kind %v", e.Kind)
	}
	if e := NewChoice(NewName("a")); e.Kind != KindName {
		t.Errorf("NewChoice of one child should collapse, got kind %v", e.Kind)
	}
}

func TestElementNames(t *testing.T) {
	got := def4Example().ElementNames()
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("ElementNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ElementNames = %v, want %v", got, want)
		}
	}
}

func TestHasPCDATA(t *testing.T) {
	if def4Example().HasPCDATA() {
		t.Error("def4Example has no PCDATA")
	}
	mixed := NewStar(NewChoice(NewPCDATA(), NewName("e")))
	if !mixed.HasPCDATA() {
		t.Error("mixed model should report PCDATA")
	}
}

func TestNullable(t *testing.T) {
	tests := []struct {
		expr *Expr
		want bool
	}{
		{NewName("a"), false},
		{NewPCDATA(), true},
		{NewStar(NewName("a")), true},
		{NewPlus(NewName("a")), false},
		{NewOpt(NewName("a")), true},
		{NewSeq(NewOpt(NewName("a")), NewStar(NewName("b"))), true},
		{NewSeq(NewOpt(NewName("a")), NewName("b")), false},
		{NewChoice(NewName("a"), NewStar(NewName("b"))), true},
	}
	for _, tt := range tests {
		if got := tt.expr.Nullable(); got != tt.want {
			t.Errorf("Nullable(%s) = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	e := def4Example()
	c := e.Clone()
	if !e.Equal(c) {
		t.Fatal("clone is not Equal to original")
	}
	c.Children[0].Name = "z"
	if e.Equal(c) {
		t.Fatal("mutated clone still Equal — Clone must deep-copy")
	}
	if e.Children[0].Name != "a" {
		t.Fatal("mutating clone affected original")
	}
}

func TestSizeCountsNodes(t *testing.T) {
	// (a, ((b)* | (c, (d)*, e)*)): a, b, c, d, e leaves + seq + choice +
	// 3 stars + inner seq = 11 nodes.
	if got := def4Example().Size(); got != 11 {
		t.Errorf("Size = %d, want 11", got)
	}
}

func TestNormalizeCorollary31(t *testing.T) {
	// Corollary 3.1: remove "?", replace "+" by "*".
	e := NewSeq(NewOpt(NewName("b")), NewPlus(NewName("a")), NewStar(NewName("c")))
	n := Normalize(e)
	want := "(b, (a)*, (c)*)"
	if got := n.String(); got != want {
		t.Errorf("Normalize = %q, want %q", got, want)
	}
	// Normalization must not mutate its input.
	if e.Children[0].Kind != KindOpt {
		t.Error("Normalize mutated its input")
	}
	// Idempotence.
	if !Normalize(n).Equal(n) {
		t.Error("Normalize is not idempotent")
	}
}

func TestNormalizeNested(t *testing.T) {
	// ((a?, b)+)? -> ((a, b))*
	e := NewOpt(NewPlus(NewSeq(NewOpt(NewName("a")), NewName("b"))))
	n := Normalize(e)
	if n.Kind != KindStar {
		t.Fatalf("want outer star, got %v", n.Kind)
	}
	if got := n.String(); got != "(a, b)*" {
		t.Errorf("Normalize = %q, want %q", got, "(a, b)*")
	}
}

func TestStarGroupsDefinition4(t *testing.T) {
	// In (a, (b* | (c, d*, e)*)): b* and (c,d*,e)* are star-groups; d* is
	// not (it is a subexpression of a star-group) — the paper's example.
	groups := StarGroups(def4Example())
	if len(groups) != 2 {
		t.Fatalf("want 2 star-groups, got %d", len(groups))
	}
	if got := groups[0].Expr.String(); got != "(b)*" {
		t.Errorf("group 0 = %q, want (b)*", got)
	}
	if len(groups[0].Elements) != 1 || groups[0].Elements[0] != "b" {
		t.Errorf("group 0 elements = %v", groups[0].Elements)
	}
	wantElems := []string{"c", "d", "e"}
	if len(groups[1].Elements) != 3 {
		t.Fatalf("group 1 elements = %v, want %v", groups[1].Elements, wantElems)
	}
	for i, w := range wantElems {
		if groups[1].Elements[i] != w {
			t.Fatalf("group 1 elements = %v, want %v", groups[1].Elements, wantElems)
		}
	}
}

func TestStarGroupsMixed(t *testing.T) {
	mixed := NewStar(NewChoice(NewPCDATA(), NewName("e")))
	groups := StarGroups(mixed)
	if len(groups) != 1 {
		t.Fatalf("want 1 star-group, got %d", len(groups))
	}
	if !groups[0].HasPCDATA {
		t.Error("mixed star-group should report PCDATA")
	}
}

func TestInStarGroup(t *testing.T) {
	outside, inside := InStarGroup(Normalize(def4Example()))
	if !outside["a"] {
		t.Error("a occurs outside star-groups")
	}
	for _, n := range []string{"b", "c", "d", "e"} {
		if !inside[n] {
			t.Errorf("%s occurs inside a star-group", n)
		}
		if outside[n] {
			t.Errorf("%s has no occurrence outside star-groups", n)
		}
	}
}

func TestFlattenStarGroupsProposition1(t *testing.T) {
	// (a, (b* | (c, d*, e)*)) flattens the groups to canonical element-set
	// sequences: (a, ((b)* | (c, d, e)*)).
	n := FlattenStarGroups(Normalize(def4Example()))
	want := "(a, ((b)* | (c, d, e)*))"
	if got := n.String(); got != want {
		t.Errorf("FlattenStarGroups = %q, want %q", got, want)
	}
}

func TestFlattenPreservesPCDATA(t *testing.T) {
	mixed := NewStar(NewChoice(NewName("e"), NewPCDATA())) // (e | #PCDATA)*
	n := FlattenStarGroups(mixed)
	if !n.HasPCDATA() {
		t.Error("flattening dropped #PCDATA")
	}
	if got := n.String(); got != "(#PCDATA, e)*" {
		t.Errorf("flattened = %q, want (#PCDATA, e)*", got)
	}
}

func TestNormalizePropertyNoOptPlus(t *testing.T) {
	// Property: Normalize output never contains Opt or Plus nodes.
	f := func(seed int64) bool {
		e := randomExpr(seed, 4)
		n := Normalize(e)
		ok := true
		n.Walk(func(x *Expr) bool {
			if x.Kind == KindOpt || x.Kind == KindPlus {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlattenPropertyCanonicalGroups(t *testing.T) {
	// Property: after Normalize+Flatten, every star's body is #PCDATA, a
	// name, or a flat sequence of names/#PCDATA (no nested structure).
	f := func(seed int64) bool {
		e := FlattenStarGroups(Normalize(randomExpr(seed, 4)))
		ok := true
		e.Walk(func(x *Expr) bool {
			if x.Kind == KindStar {
				body := x.Children[0]
				switch body.Kind {
				case KindName, KindPCDATA:
				case KindSeq:
					for _, c := range body.Children {
						if c.Kind != KindName && c.Kind != KindPCDATA {
							ok = false
						}
					}
				default:
					ok = false
				}
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomExpr builds a small random expression from a seed, for property
// tests. Deterministic in the seed.
func randomExpr(seed int64, depth int) *Expr {
	state := uint64(seed)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	names := []string{"a", "b", "c", "d", "e"}
	var build func(d int) *Expr
	build = func(d int) *Expr {
		if d <= 0 || next(4) == 0 {
			if next(6) == 0 {
				return NewPCDATA()
			}
			return NewName(names[next(len(names))])
		}
		switch next(5) {
		case 0:
			k := 2 + next(3)
			ch := make([]*Expr, k)
			for i := range ch {
				ch[i] = build(d - 1)
			}
			return &Expr{Kind: KindSeq, Children: ch}
		case 1:
			k := 2 + next(3)
			ch := make([]*Expr, k)
			for i := range ch {
				ch[i] = build(d - 1)
			}
			return &Expr{Kind: KindChoice, Children: ch}
		case 2:
			return NewStar(build(d - 1))
		case 3:
			return NewPlus(build(d - 1))
		default:
			return NewOpt(build(d - 1))
		}
	}
	return build(depth)
}
