// Package contentmodel implements the content-model expression algebra used
// throughout the reproduction: the regular-expression AST that appears on
// the right-hand side of DTD element type declarations, the normalization
// steps of Corollary 3.1 ("?" removal, "+" to "*"), star-group discovery
// (Definition 4) and flattening (Proposition 1), and a Glushkov automaton
// construction used by the standard (full) validity checker.
package contentmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the shape of a content-model expression node.
type Kind int

const (
	// KindPCDATA is the #PCDATA leaf (character data).
	KindPCDATA Kind = iota
	// KindName is an element-name leaf.
	KindName
	// KindSeq is a comma sequence (e1, e2, ..., en).
	KindSeq
	// KindChoice is an alternation (e1 | e2 | ... | en).
	KindChoice
	// KindStar is zero-or-more repetition e*.
	KindStar
	// KindPlus is one-or-more repetition e+.
	KindPlus
	// KindOpt is the optional operator e?.
	KindOpt
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindPCDATA:
		return "#PCDATA"
	case KindName:
		return "name"
	case KindSeq:
		return "seq"
	case KindChoice:
		return "choice"
	case KindStar:
		return "star"
	case KindPlus:
		return "plus"
	case KindOpt:
		return "opt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Expr is a node of a content-model expression tree. Seq and Choice nodes
// carry two or more children; Star, Plus and Opt carry exactly one; Name
// carries an element name; PCDATA carries nothing.
type Expr struct {
	Kind     Kind
	Name     string  // element name, for KindName
	Children []*Expr // operands, for Seq/Choice/Star/Plus/Opt
}

// NewName returns an element-name leaf.
func NewName(name string) *Expr { return &Expr{Kind: KindName, Name: name} }

// NewPCDATA returns a #PCDATA leaf.
func NewPCDATA() *Expr { return &Expr{Kind: KindPCDATA} }

// NewSeq returns a sequence node. Sequences of a single expression collapse
// to that expression.
func NewSeq(children ...*Expr) *Expr {
	if len(children) == 1 {
		return children[0]
	}
	return &Expr{Kind: KindSeq, Children: children}
}

// NewChoice returns a choice node. Choices of a single expression collapse
// to that expression.
func NewChoice(children ...*Expr) *Expr {
	if len(children) == 1 {
		return children[0]
	}
	return &Expr{Kind: KindChoice, Children: children}
}

// NewStar returns e*.
func NewStar(e *Expr) *Expr { return &Expr{Kind: KindStar, Children: []*Expr{e}} }

// NewPlus returns e+.
func NewPlus(e *Expr) *Expr { return &Expr{Kind: KindPlus, Children: []*Expr{e}} }

// NewOpt returns e?.
func NewOpt(e *Expr) *Expr { return &Expr{Kind: KindOpt, Children: []*Expr{e}} }

// Clone returns a deep copy of the expression.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := &Expr{Kind: e.Kind, Name: e.Name}
	if len(e.Children) > 0 {
		c.Children = make([]*Expr, len(e.Children))
		for i, ch := range e.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Equal reports whether two expressions are structurally identical.
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Kind != o.Kind || e.Name != o.Name || len(e.Children) != len(o.Children) {
		return false
	}
	for i := range e.Children {
		if !e.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the expression in DTD syntax. Leaves render bare; composite
// expressions are parenthesized, matching the usual DTD conventions.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, true)
	return b.String()
}

func (e *Expr) write(b *strings.Builder, top bool) {
	switch e.Kind {
	case KindPCDATA:
		b.WriteString("#PCDATA")
	case KindName:
		b.WriteString(e.Name)
	case KindSeq, KindChoice:
		sep := ", "
		if e.Kind == KindChoice {
			sep = " | "
		}
		b.WriteByte('(')
		for i, c := range e.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			c.write(b, false)
		}
		b.WriteByte(')')
	case KindStar, KindPlus, KindOpt:
		op := byte('*')
		if e.Kind == KindPlus {
			op = '+'
		} else if e.Kind == KindOpt {
			op = '?'
		}
		c := e.Children[0]
		if c.Kind == KindName || c.Kind == KindPCDATA {
			b.WriteByte('(')
			c.write(b, false)
			b.WriteByte(')')
		} else {
			c.write(b, false)
		}
		b.WriteByte(op)
	}
}

// ElementNames returns the sorted set of element names occurring in the
// expression.
func (e *Expr) ElementNames() []string {
	set := map[string]bool{}
	e.collectNames(set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (e *Expr) collectNames(set map[string]bool) {
	if e == nil {
		return
	}
	if e.Kind == KindName {
		set[e.Name] = true
	}
	for _, c := range e.Children {
		c.collectNames(set)
	}
}

// HasPCDATA reports whether #PCDATA occurs anywhere in the expression.
func (e *Expr) HasPCDATA() bool {
	if e == nil {
		return false
	}
	if e.Kind == KindPCDATA {
		return true
	}
	for _, c := range e.Children {
		if c.HasPCDATA() {
			return true
		}
	}
	return false
}

// Nullable reports whether the expression matches the empty sequence under
// ordinary regular-expression semantics (#PCDATA is nullable: character
// data may be the empty string).
func (e *Expr) Nullable() bool {
	switch e.Kind {
	case KindPCDATA:
		return true
	case KindName:
		return false
	case KindSeq:
		for _, c := range e.Children {
			if !c.Nullable() {
				return false
			}
		}
		return true
	case KindChoice:
		for _, c := range e.Children {
			if c.Nullable() {
				return true
			}
		}
		return false
	case KindStar, KindOpt:
		return true
	case KindPlus:
		return e.Children[0].Nullable()
	}
	return false
}

// Size returns the number of nodes in the expression tree. It is the "k"
// measure of Theorem 4 when summed over a DTD's declarations.
func (e *Expr) Size() int {
	if e == nil {
		return 0
	}
	n := 1
	for _, c := range e.Children {
		n += c.Size()
	}
	return n
}

// Walk calls fn on e and every descendant in preorder. If fn returns false
// the walk does not descend into that node's children.
func (e *Expr) Walk(fn func(*Expr) bool) {
	if e == nil {
		return
	}
	if !fn(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(fn)
	}
}
