package contentmodel

import (
	"fmt"
	"sort"
)

// PCDATASymbol is the symbol used for character data in automaton input.
// Element symbols are plain element names; they can never collide with this
// value because "#" is not a valid XML name start character.
const PCDATASymbol = "#PCDATA"

// Automaton is a Glushkov (position) automaton for a content-model
// expression. It matches sequences of symbols, where each symbol is an
// element name or PCDATASymbol. Construction is the classical
// first/last/follow computation; matching a sequence of length n over an
// automaton with p positions costs O(n·p) in the worst case.
type Automaton struct {
	symbols  []string       // symbol at each position, 1-based (index 0 unused)
	first    map[int]bool   // positions reachable from the start
	last     map[int]bool   // positions that can end a match
	follow   []map[int]bool // follow sets, 1-based
	nullable bool
}

// CompileAutomaton builds the Glushkov automaton for e. A nil expression
// yields an automaton accepting only the empty sequence (the EMPTY content
// model).
func CompileAutomaton(e *Expr) *Automaton {
	a := &Automaton{
		symbols: []string{""},
		first:   map[int]bool{},
		last:    map[int]bool{},
		follow:  []map[int]bool{nil},
	}
	if e == nil {
		a.nullable = true
		return a
	}
	info := a.build(e)
	a.nullable = info.nullable
	for p := range info.first {
		a.first[p] = true
	}
	for p := range info.last {
		a.last[p] = true
	}
	return a
}

type posInfo struct {
	first    map[int]bool
	last     map[int]bool
	nullable bool
}

func newPosInfo() posInfo {
	return posInfo{first: map[int]bool{}, last: map[int]bool{}}
}

func (a *Automaton) newPosition(sym string) int {
	a.symbols = append(a.symbols, sym)
	a.follow = append(a.follow, map[int]bool{})
	return len(a.symbols) - 1
}

func (a *Automaton) build(e *Expr) posInfo {
	switch e.Kind {
	case KindName:
		p := a.newPosition(e.Name)
		info := newPosInfo()
		info.first[p] = true
		info.last[p] = true
		return info
	case KindPCDATA:
		p := a.newPosition(PCDATASymbol)
		info := newPosInfo()
		info.first[p] = true
		info.last[p] = true
		info.nullable = true // character data may be empty
		return info
	case KindSeq:
		info := a.build(e.Children[0])
		for _, c := range e.Children[1:] {
			right := a.build(c)
			// follow(last(left)) += first(right)
			for lp := range info.last {
				for rp := range right.first {
					a.follow[lp][rp] = true
				}
			}
			merged := newPosInfo()
			for p := range info.first {
				merged.first[p] = true
			}
			if info.nullable {
				for p := range right.first {
					merged.first[p] = true
				}
			}
			for p := range right.last {
				merged.last[p] = true
			}
			if right.nullable {
				for p := range info.last {
					merged.last[p] = true
				}
			}
			merged.nullable = info.nullable && right.nullable
			info = merged
		}
		return info
	case KindChoice:
		info := newPosInfo()
		for _, c := range e.Children {
			ci := a.build(c)
			for p := range ci.first {
				info.first[p] = true
			}
			for p := range ci.last {
				info.last[p] = true
			}
			info.nullable = info.nullable || ci.nullable
		}
		return info
	case KindStar, KindPlus:
		info := a.build(e.Children[0])
		for lp := range info.last {
			for fp := range info.first {
				a.follow[lp][fp] = true
			}
		}
		if e.Kind == KindStar {
			info.nullable = true
		}
		return info
	case KindOpt:
		info := a.build(e.Children[0])
		info.nullable = true
		return info
	}
	panic(fmt.Sprintf("contentmodel: unknown expression kind %v", e.Kind))
}

// Positions returns the number of positions in the automaton.
func (a *Automaton) Positions() int { return len(a.symbols) - 1 }

// Symbol returns the symbol carried by position p (1-based).
func (a *Automaton) Symbol(p int) string { return a.symbols[p] }

// First returns the sorted positions reachable from the start.
func (a *Automaton) First() []int { return sortedKeys(a.first) }

// Follow returns the sorted positions following position p.
func (a *Automaton) Follow(p int) []int { return sortedKeys(a.follow[p]) }

// Last reports whether position p may end a match.
func (a *Automaton) Last(p int) bool { return a.last[p] }

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Nullable reports whether the automaton accepts the empty sequence.
func (a *Automaton) Nullable() bool { return a.nullable }

// Match reports whether the sequence of symbols is in the language of the
// content model.
func (a *Automaton) Match(symbols []string) bool {
	if len(symbols) == 0 {
		return a.nullable
	}
	state := a.first
	for i, sym := range symbols {
		next := map[int]bool{}
		for p := range state {
			if a.symbols[p] == sym {
				if i == len(symbols)-1 {
					if a.last[p] {
						return true
					}
				}
				for q := range a.follow[p] {
					next[q] = true
				}
			}
		}
		if i == len(symbols)-1 {
			return false // only the last-position check above can accept
		}
		if len(next) == 0 {
			return false
		}
		state = next
	}
	return false
}

// MatchPrefix reports whether symbols is a prefix of some sequence in the
// language (useful for diagnostics: the first index at which matching fails).
// It returns the length of the longest viable prefix; len(symbols) means the
// whole input is viable.
func (a *Automaton) MatchPrefix(symbols []string) int {
	state := a.first
	for i, sym := range symbols {
		next := map[int]bool{}
		matched := false
		for p := range state {
			if a.symbols[p] == sym {
				matched = true
				for q := range a.follow[p] {
					next[q] = true
				}
			}
		}
		if !matched {
			return i
		}
		state = next
	}
	return len(symbols)
}

// DeterminismViolation describes a failure of the XML 1.0 "deterministic
// content model" constraint: two distinct positions carrying the same symbol
// are simultaneously reachable.
type DeterminismViolation struct {
	Symbol string
	// Context describes where the ambiguity arises ("first set" or the
	// symbol whose follow set is ambiguous).
	Context string
}

func (v DeterminismViolation) String() string {
	return fmt.Sprintf("content model is not deterministic: symbol %q is ambiguous in %s", v.Symbol, v.Context)
}

// CheckDeterminism verifies the XML 1.0 determinism (1-unambiguity)
// constraint on the automaton and returns all violations found. A valid DTD
// content model must be deterministic; the potential-validity machinery does
// not require determinism, so this check is surfaced as a lint.
func (a *Automaton) CheckDeterminism() []DeterminismViolation {
	var out []DeterminismViolation
	check := func(set map[int]bool, context string) {
		seen := map[string]int{}
		var dup []string
		for p := range set {
			sym := a.symbols[p]
			if _, ok := seen[sym]; ok {
				dup = append(dup, sym)
			}
			seen[sym] = p
		}
		sort.Strings(dup)
		prev := ""
		for _, sym := range dup {
			if sym == prev {
				continue
			}
			prev = sym
			out = append(out, DeterminismViolation{Symbol: sym, Context: context})
		}
	}
	check(a.first, "first set")
	for p := 1; p < len(a.symbols); p++ {
		check(a.follow[p], fmt.Sprintf("follow set of %q", a.symbols[p]))
	}
	return out
}
