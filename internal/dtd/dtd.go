// Package dtd parses Document Type Definitions (the internal/external
// subset syntax of XML 1.0) into content-model expressions.
//
// Only <!ELEMENT ...> declarations affect potential validity (the paper,
// Section 2, footnote 3: attribute declarations play no role), so
// <!ATTLIST ...>, <!ENTITY ...> and <!NOTATION ...> declarations are parsed
// for well-formedness and then discarded. Parameter entities are not
// expanded; DTDs that rely on them must be pre-expanded.
package dtd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/contentmodel"
)

// Category classifies an element type declaration's content specification.
type Category int

const (
	// Empty is the EMPTY content model: no content of any kind.
	Empty Category = iota
	// Any is the ANY content model: any declared elements and character
	// data, in any order.
	Any
	// Mixed is mixed content: (#PCDATA | a | b)* or (#PCDATA).
	Mixed
	// Children is element content: a deterministic regular expression over
	// element names.
	Children
)

// String returns the DTD keyword or a descriptive name for the category.
func (c Category) String() string {
	switch c {
	case Empty:
		return "EMPTY"
	case Any:
		return "ANY"
	case Mixed:
		return "mixed"
	case Children:
		return "children"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// ElementDecl is one <!ELEMENT name contentspec> declaration.
type ElementDecl struct {
	Name     string
	Category Category
	// Model is the content-model expression for Mixed and Children
	// categories; nil for EMPTY and ANY.
	Model *contentmodel.Expr
}

// String renders the declaration back in DTD syntax.
func (d *ElementDecl) String() string {
	switch d.Category {
	case Empty:
		return fmt.Sprintf("<!ELEMENT %s EMPTY>", d.Name)
	case Any:
		return fmt.Sprintf("<!ELEMENT %s ANY>", d.Name)
	default:
		m := d.Model.String()
		if !strings.HasPrefix(m, "(") {
			// Bare leaves (a name, or #PCDATA) need the parentheses the
			// XML grammar requires around a content spec.
			m = "(" + m + ")"
		}
		return fmt.Sprintf("<!ELEMENT %s %s>", d.Name, m)
	}
}

// DTD is a parsed set of element type declarations Γ together with the set
// of declared element types T (the paper's T = ⟨Γ, T⟩).
type DTD struct {
	// Elements maps element names to their declarations.
	Elements map[string]*ElementDecl
	// Order lists element names in declaration order.
	Order []string
}

// Element returns the declaration for name, or nil if name is undeclared.
func (d *DTD) Element(name string) *ElementDecl { return d.Elements[name] }

// Names returns all declared element names in declaration order.
func (d *DTD) Names() []string {
	out := make([]string, len(d.Order))
	copy(out, d.Order)
	return out
}

// SortedNames returns all declared element names sorted lexicographically.
func (d *DTD) SortedNames() []string {
	out := d.Names()
	sort.Strings(out)
	return out
}

// Size returns the paper's k measure: the total number of element and
// #PCDATA occurrences over all content-model expressions, plus one per
// declaration (so that k ≥ m and reading the DTD is O(k)).
func (d *DTD) Size() int {
	k := 0
	for _, name := range d.Order {
		decl := d.Elements[name]
		k++
		if decl.Model != nil {
			decl.Model.Walk(func(e *contentmodel.Expr) bool {
				if e.Kind == contentmodel.KindName || e.Kind == contentmodel.KindPCDATA {
					k++
				}
				return true
			})
		}
	}
	return k
}

// String renders the whole DTD, one declaration per line, in declaration
// order.
func (d *DTD) String() string {
	var b strings.Builder
	for _, name := range d.Order {
		b.WriteString(d.Elements[name].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// UndeclaredReferences returns the sorted set of element names that occur in
// some content model but have no declaration of their own. Valid XML
// requires every referenced type to be declared; the potential-validity
// machinery also requires it (reachability is computed over declarations).
func (d *DTD) UndeclaredReferences() []string {
	missing := map[string]bool{}
	for _, name := range d.Order {
		decl := d.Elements[name]
		if decl.Model == nil {
			continue
		}
		for _, ref := range decl.Model.ElementNames() {
			if _, ok := d.Elements[ref]; !ok {
				missing[ref] = true
			}
		}
	}
	out := make([]string, 0, len(missing))
	for n := range missing {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate performs structural sanity checks on the DTD: every referenced
// element is declared, and every content model of category Children
// satisfies the XML 1.0 determinism constraint. It returns a nil slice when
// the DTD is clean. Determinism violations are advisory for potential
// validity (the recognizer does not need determinism) but real DTDs must
// satisfy them.
func (d *DTD) Validate() []string {
	var problems []string
	for _, ref := range d.UndeclaredReferences() {
		problems = append(problems, fmt.Sprintf("element %q is referenced but not declared", ref))
	}
	for _, name := range d.Order {
		decl := d.Elements[name]
		if decl.Category != Children {
			continue
		}
		auto := contentmodel.CompileAutomaton(decl.Model)
		for _, v := range auto.CheckDeterminism() {
			problems = append(problems, fmt.Sprintf("element %q: %s", name, v.String()))
		}
	}
	return problems
}
