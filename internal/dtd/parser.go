package dtd

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/contentmodel"
)

// ParseError is a DTD syntax error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd: line %d, col %d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses the textual content of a DTD (internal or external subset
// syntax: a sequence of markup declarations). It returns an error on syntax
// errors and on duplicate element type declarations (an XML validity
// constraint).
func Parse(src string) (*DTD, error) {
	p := &parser{src: src, line: 1, col: 1}
	d := &DTD{Elements: map[string]*ElementDecl{}}
	for {
		p.skipSpaceAndComments()
		if p.eof() {
			return d, nil
		}
		if !p.hasPrefix("<!") && !p.hasPrefix("<?") {
			return nil, p.errf("expected markup declaration, found %q", p.peekContext())
		}
		switch {
		case p.hasPrefix("<!ELEMENT"):
			decl, err := p.parseElementDecl()
			if err != nil {
				return nil, err
			}
			if _, dup := d.Elements[decl.Name]; dup {
				return nil, p.errf("duplicate declaration of element %q", decl.Name)
			}
			d.Elements[decl.Name] = decl
			d.Order = append(d.Order, decl.Name)
		case p.hasPrefix("<!ATTLIST"), p.hasPrefix("<!ENTITY"), p.hasPrefix("<!NOTATION"):
			// Parsed for well-formedness only; contents are irrelevant to
			// potential validity (paper Section 2, footnote 3).
			if err := p.skipDeclaration(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unsupported declaration %q", p.peekContext())
		}
	}
}

// MustParse is Parse that panics on error; intended for tests and fixtures.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	src       string
	pos       int
	line, col int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) peekContext() string {
	end := p.pos + 20
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func (p *parser) advance(n int) {
	for i := 0; i < n && p.pos < len(p.src); i++ {
		if p.src[p.pos] == '\n' {
			p.line++
			p.col = 1
		} else {
			p.col++
		}
		p.pos++
	}
}

func (p *parser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\n', '\r':
			p.advance(1)
		default:
			return
		}
	}
}

func (p *parser) skipSpaceAndComments() {
	for {
		p.skipSpace()
		if p.hasPrefix("<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.advance(len(p.src) - p.pos)
				return
			}
			p.advance(4 + end + 3)
			continue
		}
		return
	}
}

// skipDeclaration consumes a markup declaration whose details we ignore,
// honoring quoted literals (which may contain '>').
func (p *parser) skipDeclaration() error {
	start := p.pos
	for !p.eof() {
		switch p.peek() {
		case '"', '\'':
			q := p.peek()
			p.advance(1)
			for !p.eof() && p.peek() != q {
				p.advance(1)
			}
			if p.eof() {
				return p.errf("unterminated literal in declaration starting at offset %d", start)
			}
			p.advance(1)
		case '>':
			p.advance(1)
			return nil
		default:
			p.advance(1)
		}
	}
	return p.errf("unterminated declaration starting at offset %d", start)
}

func (p *parser) skipPI() error {
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return p.errf("unterminated processing instruction")
	}
	p.advance(end + 2)
	return nil
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}

func (p *parser) parseName() (string, error) {
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if size == 0 || !isNameStart(r) {
		return "", p.errf("expected a name, found %q", p.peekContext())
	}
	start := p.pos
	p.advance(size)
	for !p.eof() {
		r, size = utf8.DecodeRuneInString(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.advance(size)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(s string) error {
	if !p.hasPrefix(s) {
		return p.errf("expected %q, found %q", s, p.peekContext())
	}
	p.advance(len(s))
	return nil
}

func (p *parser) parseElementDecl() (*ElementDecl, error) {
	if err := p.expect("<!ELEMENT"); err != nil {
		return nil, err
	}
	p.skipSpace()
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	decl := &ElementDecl{Name: name}
	switch {
	case p.hasPrefix("EMPTY"):
		p.advance(len("EMPTY"))
		decl.Category = Empty
	case p.hasPrefix("ANY"):
		p.advance(len("ANY"))
		decl.Category = Any
	case p.hasPrefix("#PCDATA"):
		// Figure 1 of the paper writes <!ELEMENT c #PCDATA> without the
		// parentheses the XML grammar requires; accept the spelling as the
		// equivalent mixed model (#PCDATA).
		p.advance(len("#PCDATA"))
		decl.Category = Mixed
		decl.Model = contentmodel.NewPCDATA()
	case p.peek() == '(':
		model, mixed, err := p.parseContentSpec()
		if err != nil {
			return nil, err
		}
		decl.Model = model
		if mixed {
			decl.Category = Mixed
		} else {
			decl.Category = Children
		}
	default:
		return nil, p.errf("expected EMPTY, ANY or a content model, found %q", p.peekContext())
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	return decl, nil
}

// parseContentSpec parses either Mixed or children content, starting at '('.
func (p *parser) parseContentSpec() (*contentmodel.Expr, bool, error) {
	// Look ahead for mixed content: '(' S? '#PCDATA' ...
	save := *p
	if err := p.expect("("); err != nil {
		return nil, false, err
	}
	p.skipSpace()
	if p.hasPrefix("#PCDATA") {
		expr, err := p.parseMixedTail()
		return expr, true, err
	}
	*p = save
	expr, err := p.parseCP()
	return expr, false, err
}

// parseMixedTail parses the remainder of a mixed content model after
// "(" S? and positioned at "#PCDATA". Forms:
//
//	(#PCDATA)            -> PCDATA
//	(#PCDATA)*           -> (PCDATA)*  (semantically identical)
//	(#PCDATA | a | b)*   -> Star(Choice(PCDATA, a, b))
func (p *parser) parseMixedTail() (*contentmodel.Expr, error) {
	if err := p.expect("#PCDATA"); err != nil {
		return nil, err
	}
	children := []*contentmodel.Expr{contentmodel.NewPCDATA()}
	for {
		p.skipSpace()
		if p.peek() == '|' {
			p.advance(1)
			p.skipSpace()
			name, err := p.parseName()
			if err != nil {
				return nil, err
			}
			children = append(children, contentmodel.NewName(name))
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	hasStar := false
	if p.peek() == '*' {
		p.advance(1)
		hasStar = true
	}
	if len(children) > 1 && !hasStar {
		return nil, p.errf("mixed content with elements must end in )*")
	}
	if len(children) == 1 {
		if hasStar {
			return contentmodel.NewStar(children[0]), nil
		}
		return children[0], nil
	}
	return contentmodel.NewStar(contentmodel.NewChoice(children...)), nil
}

// parseCP parses a content particle: (name | choice | seq) ('?'|'*'|'+')?
func (p *parser) parseCP() (*contentmodel.Expr, error) {
	var expr *contentmodel.Expr
	p.skipSpace()
	if p.peek() == '(' {
		inner, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		expr = inner
	} else {
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		expr = contentmodel.NewName(name)
	}
	switch p.peek() {
	case '?':
		p.advance(1)
		expr = contentmodel.NewOpt(expr)
	case '*':
		p.advance(1)
		expr = contentmodel.NewStar(expr)
	case '+':
		p.advance(1)
		expr = contentmodel.NewPlus(expr)
	}
	return expr, nil
}

// parseGroup parses '(' cp ((',' cp)* | ('|' cp)*) ')' — a seq or choice.
func (p *parser) parseGroup() (*contentmodel.Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	first, err := p.parseCP()
	if err != nil {
		return nil, err
	}
	children := []*contentmodel.Expr{first}
	sep := byte(0)
	for {
		p.skipSpace()
		c := p.peek()
		if c == ')' {
			p.advance(1)
			break
		}
		if c != ',' && c != '|' {
			return nil, p.errf("expected ',', '|' or ')' in content model, found %q", p.peekContext())
		}
		if sep == 0 {
			sep = c
		} else if sep != c {
			return nil, p.errf("cannot mix ',' and '|' at the same level of a content model")
		}
		p.advance(1)
		next, err := p.parseCP()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	if sep == '|' {
		return contentmodel.NewChoice(children...), nil
	}
	return contentmodel.NewSeq(children...), nil
}
