package dtd

// Fixture DTD sources used across tests, examples and benchmarks. They are
// the paper's running examples plus a few realistic document-centric
// schemas.

// Figure1 is the sample DTD of Figure 1 in the paper. Note the paper spells
// element c's declaration as "#PCDATA" without parentheses; the parser
// accepts it (see parseElementDecl).
const Figure1 = `
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b ( d | f)>
<!ELEMENT c #PCDATA>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
`

// T1 is the PV-strong recursive DTD of Example 5: without a depth bound the
// greedy recognizer would loop on <a><b></b><b></b></a> (Figure 7).
const T1 = `
<!ELEMENT a (a | b*)>
<!ELEMENT b EMPTY>
`

// T2 is the PV-strong recursive DTD of Example 6: recognizing
// <a><b></b><b></b></a> requires taking one recursive step (one nested
// recognizer), so recursion cannot simply be cut off.
const T2 = `
<!ELEMENT a ((a | b), b)>
<!ELEMENT b EMPTY>
`

// WeakRecursive is a PV-weak recursive DTD in the style of XHTML inline
// markup: b and i nest through star-groups only (mixed content), so
// Proposition 2 resolves recursion through reachability with no nested
// recognizers.
const WeakRecursive = `
<!ELEMENT p (#PCDATA | b | i | tt)*>
<!ELEMENT b (#PCDATA | b | i | tt)*>
<!ELEMENT i (#PCDATA | b | i | tt)*>
<!ELEMENT tt (#PCDATA)>
`

// Play is a Shakespeare-play style document-centric DTD (after Jon Bosak's
// play.dtd, simplified): the classic digital-library encoding workload the
// paper's introduction motivates.
const Play = `
<!ELEMENT play     (title, personae, act+)>
<!ELEMENT title    (#PCDATA)>
<!ELEMENT personae (persona+)>
<!ELEMENT persona  (#PCDATA)>
<!ELEMENT act      (title, scene+)>
<!ELEMENT scene    (title, (speech | stagedir)+)>
<!ELEMENT speech   (speaker, (line | stagedir)+)>
<!ELEMENT speaker  (#PCDATA)>
<!ELEMENT line     (#PCDATA | stagedir)*>
<!ELEMENT stagedir (#PCDATA)>
`

// TEILite is a TEI-Lite flavored DTD for scholarly text encoding — the
// digital-library workload of the paper's introduction at a more realistic
// scale: front/body/back structure, nested divisions (PV-weak recursion
// through the div star-group), paragraph-level mixed content with inline
// markup (hi/emph/name/date nest freely, also PV-weak), notes, line groups
// and bibliographic citations.
const TEILite = `
<!ELEMENT TEI        (teiHeader, text)>
<!ELEMENT teiHeader  (fileDesc)>
<!ELEMENT fileDesc   (titleStmt, publicationStmt?, sourceDesc?)>
<!ELEMENT titleStmt  (title+, author*, editor*)>
<!ELEMENT title      (#PCDATA | hi | emph)*>
<!ELEMENT author     (#PCDATA | name | date)*>
<!ELEMENT editor     (#PCDATA | name)*>
<!ELEMENT publicationStmt (publisher?, pubPlace?, date?)>
<!ELEMENT publisher  (#PCDATA)>
<!ELEMENT pubPlace   (#PCDATA)>
<!ELEMENT sourceDesc (bibl*)>
<!ELEMENT bibl       (#PCDATA | title | author | date | note)*>
<!ELEMENT text       (front?, body, back?)>
<!ELEMENT front      (titlePage?, div*)>
<!ELEMENT titlePage  (docTitle, docAuthor*, docDate?)>
<!ELEMENT docTitle   (#PCDATA | hi)*>
<!ELEMENT docAuthor  (#PCDATA)>
<!ELEMENT docDate    (#PCDATA)>
<!ELEMENT body       (div+)>
<!ELEMENT back       (div*, bibl*)>
<!ELEMENT div        (head?, (p | lg | quote | list | note | div)*)>
<!ELEMENT head       (#PCDATA | hi | emph | note)*>
<!ELEMENT p          (#PCDATA | hi | emph | name | date | ref | note | quote | list)*>
<!ELEMENT hi         (#PCDATA | hi | emph | name)*>
<!ELEMENT emph       (#PCDATA | hi | emph)*>
<!ELEMENT name       (#PCDATA)>
<!ELEMENT date       (#PCDATA)>
<!ELEMENT ref        (#PCDATA | hi)*>
<!ELEMENT note       (#PCDATA | hi | emph | ref | bibl)*>
<!ELEMENT quote      (#PCDATA | hi | emph | lg | p)*>
<!ELEMENT list       (item+)>
<!ELEMENT item       (#PCDATA | hi | emph | list | p)*>
<!ELEMENT lg         (l+)>
<!ELEMENT l          (#PCDATA | hi | emph | name | note)*>
`

// Article is a small TEI/DocBook flavored article DTD with moderate nesting
// and both element and mixed content; sect is recursive through element
// content that sits inside a star-group (PV-weak).
const Article = `
<!ELEMENT article  (front, body, back?)>
<!ELEMENT front    (title, author+, abstract?)>
<!ELEMENT title    (#PCDATA | emph)*>
<!ELEMENT author   (name, affil?)>
<!ELEMENT name     (#PCDATA)>
<!ELEMENT affil    (#PCDATA)>
<!ELEMENT abstract (para+)>
<!ELEMENT body     (sect+)>
<!ELEMENT sect     (title, (para | list | sect)*)>
<!ELEMENT para     (#PCDATA | emph | cite | list)*>
<!ELEMENT emph     (#PCDATA | emph)*>
<!ELEMENT cite     (#PCDATA)>
<!ELEMENT list     (item+)>
<!ELEMENT item     (para+)>
<!ELEMENT back     (biblio)>
<!ELEMENT biblio   (cite+)>
`
