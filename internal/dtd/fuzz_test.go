package dtd

import (
	"testing"
)

// FuzzParseDTD asserts the DTD parser never panics, and that accepted
// input survives a render/re-parse round trip with the same size measure —
// the invariant the registry's hash-keyed caching and the generator's
// String() round trips rely on.
func FuzzParseDTD(f *testing.F) {
	for _, seed := range []string{
		Figure1, T1, T2, WeakRecursive, Play, TEILite, Article,
		"<!ELEMENT a EMPTY>",
		"<!ELEMENT a (#PCDATA)>",
		"<!ELEMENT a (b, (c | d)*, e+)><!ELEMENT b ANY>",
		"<!ELEMENT a (#PCDATA | b)*>",
		"<!ELEMENT",
		"<!ELEMENT a (b>",
		"<!ATTLIST a b CDATA #IMPLIED>",
		"<!-- comment only -->",
		"",
		"garbage",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted DTDs must render and re-parse losslessly enough that the
		// size measure, declaration order and lint verdicts are stable.
		rendered := d.String()
		d2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered DTD failed: %v\noriginal: %q\nrendered: %q", err, src, rendered)
		}
		if d.Size() != d2.Size() {
			t.Fatalf("size changed across round trip: %d -> %d\noriginal: %q\nrendered: %q",
				d.Size(), d2.Size(), src, rendered)
		}
		if len(d.Names()) != len(d2.Names()) {
			t.Fatalf("declaration count changed across round trip: %v -> %v", d.Names(), d2.Names())
		}
		_ = d.Validate()
		_ = d.UndeclaredReferences()
	})
}
