package dtd

import (
	"strings"
	"testing"

	"repro/internal/contentmodel"
)

func TestParseFigure1(t *testing.T) {
	d, err := Parse(Figure1)
	if err != nil {
		t.Fatalf("Parse(Figure1): %v", err)
	}
	wantOrder := []string{"r", "a", "b", "c", "d", "e", "f"}
	if len(d.Order) != len(wantOrder) {
		t.Fatalf("Order = %v, want %v", d.Order, wantOrder)
	}
	for i, w := range wantOrder {
		if d.Order[i] != w {
			t.Fatalf("Order = %v, want %v", d.Order, wantOrder)
		}
	}
	tests := []struct {
		name     string
		category Category
		model    string
	}{
		{"r", Children, "(a)+"},
		{"a", Children, "((b)?, (c | f), d)"},
		{"b", Children, "(d | f)"},
		{"c", Mixed, "#PCDATA"},
		{"d", Mixed, "(#PCDATA | e)*"},
		{"e", Empty, ""},
		{"f", Children, "(c, e)"},
	}
	for _, tt := range tests {
		decl := d.Element(tt.name)
		if decl == nil {
			t.Fatalf("element %q missing", tt.name)
		}
		if decl.Category != tt.category {
			t.Errorf("element %q category = %v, want %v", tt.name, decl.Category, tt.category)
		}
		if tt.model != "" {
			if got := decl.Model.String(); got != tt.model {
				t.Errorf("element %q model = %q, want %q", tt.name, got, tt.model)
			}
		} else if decl.Model != nil {
			t.Errorf("element %q should have nil model", tt.name)
		}
	}
}

func TestParseMixedForms(t *testing.T) {
	d := MustParse(`
		<!ELEMENT a (#PCDATA)>
		<!ELEMENT b (#PCDATA)*>
		<!ELEMENT c (#PCDATA | x | y)*>
		<!ELEMENT x EMPTY>
		<!ELEMENT y ANY>
	`)
	if d.Element("a").Category != Mixed {
		t.Error("(#PCDATA) should be Mixed")
	}
	if d.Element("b").Category != Mixed {
		t.Error("(#PCDATA)* should be Mixed")
	}
	c := d.Element("c")
	if c.Category != Mixed {
		t.Error("(#PCDATA|x|y)* should be Mixed")
	}
	if got := c.Model.String(); got != "(#PCDATA | x | y)*" {
		t.Errorf("c model = %q", got)
	}
	if d.Element("y").Category != Any {
		t.Error("ANY category lost")
	}
}

func TestParseRejectsBadMixed(t *testing.T) {
	// Mixed content with elements must end in ")*".
	if _, err := Parse(`<!ELEMENT a (#PCDATA | b)>`); err == nil {
		t.Error("expected error for (#PCDATA | b) without star")
	}
}

func TestParseRejectsMixedSeparators(t *testing.T) {
	if _, err := Parse(`<!ELEMENT a (b, c | d)>`); err == nil {
		t.Error("expected error for mixing ',' and '|' at one level")
	}
}

func TestParseRejectsDuplicateDecl(t *testing.T) {
	if _, err := Parse("<!ELEMENT a EMPTY>\n<!ELEMENT a ANY>"); err == nil {
		t.Error("expected error for duplicate declaration")
	}
}

func TestParseNestedGroups(t *testing.T) {
	d := MustParse(`<!ELEMENT a ((b | c)+, (d, e)?, f*)> <!ELEMENT b EMPTY>
		<!ELEMENT c EMPTY> <!ELEMENT d EMPTY> <!ELEMENT e EMPTY> <!ELEMENT f EMPTY>`)
	want := "((b | c)+, (d, e)?, (f)*)"
	if got := d.Element("a").Model.String(); got != want {
		t.Errorf("model = %q, want %q", got, want)
	}
}

func TestParseSkipsIrrelevantDeclarations(t *testing.T) {
	d := MustParse(`
		<!-- a comment with <!ELEMENT fake EMPTY> inside -->
		<!ELEMENT a (b)>
		<!ATTLIST a id ID #REQUIRED note CDATA "with > inside">
		<!ENTITY copy "&#169;">
		<!NOTATION gif SYSTEM "image/gif">
		<?xml-stylesheet href="x.css"?>
		<!ELEMENT b EMPTY>
	`)
	if len(d.Order) != 2 {
		t.Fatalf("want 2 elements, got %v", d.Order)
	}
	if d.Element("fake") != nil {
		t.Error("commented-out declaration was parsed")
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("<!ELEMENT a (b,)>\n<!ELEMENT b EMPTY>")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error %T is not a *ParseError", err)
	}
	if pe.Line != 1 {
		t.Errorf("error line = %d, want 1", pe.Line)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error text %q lacks position", err)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestSizeMeasure(t *testing.T) {
	d := MustParse(Figure1)
	// Occurrences: r:a=1; a:b,c,f,d=4; b:d,f=2; c:PCDATA=1; d:PCDATA,e=2;
	// e:0; f:c,e=2. Total 12 + 7 declarations = 19.
	if got := d.Size(); got != 19 {
		t.Errorf("Size = %d, want 19", got)
	}
	if got := d.Size(); got < len(d.Order) {
		t.Errorf("k=%d must be >= m=%d", got, len(d.Order))
	}
}

func TestUndeclaredReferences(t *testing.T) {
	d := MustParse(`<!ELEMENT a (b, ghost)> <!ELEMENT b (#PCDATA | phantom)*>`)
	got := d.UndeclaredReferences()
	if len(got) != 2 || got[0] != "ghost" || got[1] != "phantom" {
		t.Errorf("UndeclaredReferences = %v, want [ghost phantom]", got)
	}
}

func TestValidateCatchesNondeterminism(t *testing.T) {
	d := MustParse(`<!ELEMENT a ((b, c) | (b, d))> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`)
	problems := d.Validate()
	if len(problems) == 0 {
		t.Error("expected a determinism problem for ((b,c)|(b,d))")
	}
	clean := MustParse(Figure1)
	if problems := clean.Validate(); len(problems) != 0 {
		t.Errorf("Figure 1 DTD should be clean, got %v", problems)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	for _, src := range []string{Figure1, T1, T2, WeakRecursive, Play, Article} {
		d1 := MustParse(src)
		d2, err := Parse(d1.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, d1.String())
		}
		if len(d1.Order) != len(d2.Order) {
			t.Fatalf("round-trip changed element count")
		}
		for _, name := range d1.Order {
			a, b := d1.Element(name), d2.Element(name)
			if a.Category != b.Category {
				t.Errorf("element %q category changed: %v vs %v", name, a.Category, b.Category)
			}
			if a.Model != nil && !normEq(a.Model, b.Model) {
				t.Errorf("element %q model changed: %v vs %v", name, a.Model, b.Model)
			}
		}
	}
}

// normEq compares models modulo the redundant parentheses String() emits.
func normEq(a, b *contentmodel.Expr) bool {
	return a.String() == b.String()
}

func TestFixturesParse(t *testing.T) {
	fixtures := map[string]string{
		"Figure1": Figure1, "T1": T1, "T2": T2,
		"WeakRecursive": WeakRecursive, "Play": Play, "Article": Article,
	}
	for name, src := range fixtures {
		d, err := Parse(src)
		if err != nil {
			t.Errorf("fixture %s: %v", name, err)
			continue
		}
		if missing := d.UndeclaredReferences(); len(missing) > 0 {
			t.Errorf("fixture %s has undeclared references %v", name, missing)
		}
	}
}
