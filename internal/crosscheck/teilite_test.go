package crosscheck

import (
	"math/rand"
	"testing"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/reach"
)

// TestTEILiteEndToEnd exercises the realistic digital-library workload at
// scale: generate, strip, check (tree + stream), complete, validate.
func TestTEILiteEndToEnd(t *testing.T) {
	d := dtd.MustParse(dtd.TEILite)
	if missing := d.UndeclaredReferences(); len(missing) > 0 {
		t.Fatalf("TEILite has undeclared references: %v", missing)
	}
	lt := reach.Build(d)
	if lt.Class() != reach.PVWeakRecursive {
		t.Errorf("TEILite class = %v, want PV-weak (div and inline recursion through star-groups)", lt.Class())
	}
	f := newFixture(t, d, "TEI")
	comp := complete.New(f.schema)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := gen.GenValid(rng, d, "TEI", gen.DocOptions{MaxDepth: 9, MaxRepeat: 3})
		if err := f.valid.Validate(doc); err != nil {
			t.Fatalf("seed %d: generated doc invalid: %v", seed, err)
		}
		content := doc.Content()
		gen.Strip(rng, doc, 0.5)
		if !f.pvFast(doc) {
			t.Fatalf("seed %d: stripped TEI doc rejected (Theorem 2)", seed)
		}
		if err := f.schema.CheckStream(doc.String()); err != nil {
			t.Fatalf("seed %d: stream check disagrees: %v", seed, err)
		}
		ext, _, err := comp.Complete(doc)
		if err != nil {
			t.Fatalf("seed %d: completion failed: %v", seed, err)
		}
		if err := f.valid.Validate(ext); err != nil {
			t.Fatalf("seed %d: completion invalid: %v", seed, err)
		}
		if ext.Content() != content {
			t.Fatalf("seed %d: completion changed character data", seed)
		}
	}
}

// TestTEILiteHardViolation: a head after body content inside a div can
// never be fixed by insertions.
func TestTEILiteHardViolation(t *testing.T) {
	d := dtd.MustParse(dtd.TEILite)
	s := core.MustCompile(d, "TEI", core.Options{})
	// div -> (head?, (p | lg | ...)*): a real <head> after a real <p> is a
	// hard order violation...
	v, err := s.CheckString(`<TEI><teiHeader><fileDesc><titleStmt><title>T</title></titleStmt></fileDesc></teiHeader>` +
		`<text><body><div><p>para</p><head>late heading</head></div></body></text></TEI>`)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		// ... unless head can hide inside something in the star-group:
		// head is not reachable from p/lg/quote/list/note/div? div -> head!
		// head hides inside a nested inserted <div>. So this IS potentially
		// valid. Use an unfixable case instead below.
		t.Log("head-after-p is PV via a nested div — as the reachability predicts")
	}
	// teiHeader after text is unfixable: TEI -> (teiHeader, text), neither
	// reaches teiHeader.
	v, err = s.CheckString(`<TEI><text><body><div><p>x</p></div></body></text>` +
		`<teiHeader><fileDesc><titleStmt><title>T</title></titleStmt></fileDesc></teiHeader></TEI>`)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Error("teiHeader after text must be a hard violation")
	}
}
