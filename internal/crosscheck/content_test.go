package crosscheck

import (
	"math/rand"
	"testing"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/earley"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/reach"
)

// contentOracle checks Problem ECPV through Theorem 1: the children
// sequence of element x is potentially valid iff
// <x> (symbols as tag pairs / σ) </x> ∈ L(G'(T, x)).
type contentOracle struct {
	perRoot map[string]*earley.Recognizer
	d       *dtd.DTD
}

func newContentOracle(t *testing.T, d *dtd.DTD) *contentOracle {
	t.Helper()
	o := &contentOracle{perRoot: map[string]*earley.Recognizer{}, d: d}
	for _, name := range d.Order {
		g, err := grammar.BuildECFG(d, name, true)
		if err != nil {
			t.Fatal(err)
		}
		o.perRoot[name] = earley.New(g.ToCFG())
	}
	return o
}

func (o *contentOracle) check(elem string, symbols []core.Symbol) bool {
	tokens := []string{grammar.StartTagTerminal(elem)}
	for _, s := range symbols {
		if s.Text {
			tokens = append(tokens, grammar.SigmaTerminal)
		} else {
			tokens = append(tokens, grammar.StartTagTerminal(s.Name), grammar.EndTagTerminal(s.Name))
		}
	}
	tokens = append(tokens, grammar.EndTagTerminal(elem))
	return o.perRoot[elem].Recognize(tokens)
}

// TestECPVAgainstOracleFigure1 exhaustively checks all content sequences up
// to length 3 over Figure 1's symbols, for every element, against the
// Theorem 1 oracle.
func TestECPVAgainstOracleFigure1(t *testing.T) {
	d := dtd.MustParse(dtd.Figure1)
	s := core.MustCompile(d, "r", core.Options{})
	o := newContentOracle(t, d)
	alphabet := []core.Symbol{
		core.Elem("a"), core.Elem("b"), core.Elem("c"), core.Elem("d"),
		core.Elem("e"), core.Elem("f"), core.Sigma,
	}
	var enumerate func(prefix []core.Symbol, depth int)
	checked := 0
	enumerate = func(prefix []core.Symbol, depth int) {
		for _, elem := range d.Order {
			fast := s.CheckContent(elem, prefix)
			slow := o.check(elem, prefix)
			if fast != slow {
				t.Fatalf("ECPV disagreement: elem=%s content=[%s] fast=%v oracle=%v",
					elem, core.FormatSymbols(prefix), fast, slow)
			}
			checked++
		}
		if depth == 0 {
			return
		}
		for _, sym := range alphabet {
			// σσ is not a legal Δ_T image; skip adjacent text.
			if sym.Text && len(prefix) > 0 && prefix[len(prefix)-1].Text {
				continue
			}
			enumerate(append(prefix[:len(prefix):len(prefix)], sym), depth-1)
		}
	}
	enumerate(nil, 3)
	t.Logf("checked %d (element, content) pairs", checked)
}

// TestECPVAgainstOracleRandomDTDs samples random content sequences on
// random DTDs of every class and compares the recognizer with the oracle.
func TestECPVAgainstOracleRandomDTDs(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle is slow")
	}
	classes := []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, class := range classes {
			d := gen.RandDTD(rng, gen.DTDOptions{Elements: 6, Class: class})
			s := core.MustCompile(d, "e0", core.Options{MaxDepth: 20})
			o := newContentOracle(t, d)
			names := d.Names()
			for trial := 0; trial < 60; trial++ {
				n := rng.Intn(5)
				content := make([]core.Symbol, 0, n)
				for i := 0; i < n; i++ {
					if rng.Intn(6) == 0 && (len(content) == 0 || !content[len(content)-1].Text) {
						content = append(content, core.Sigma)
					} else {
						content = append(content, core.Elem(names[rng.Intn(len(names))]))
					}
				}
				elem := names[rng.Intn(len(names))]
				fast := s.CheckContent(elem, content)
				slow := o.check(elem, content)
				if fast == slow {
					continue
				}
				if !fast && slow && s.Class() == reach.PVStrongRecursive {
					continue // depth-bound incompleteness is tolerated
				}
				t.Fatalf("seed %d class %v: elem=%s content=[%s] fast=%v oracle=%v\n%s",
					seed, class, elem, core.FormatSymbols(content), fast, slow, d)
			}
		}
	}
}

// TestCompleteAgainstOracleRandom: whenever the checker says PV, the
// completer must produce a document the validator accepts — on random DTDs.
func TestCompleteAgainstOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, class := range []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak} {
			d := gen.RandDTD(rng, gen.DTDOptions{Elements: 8, Class: class})
			f := newFixture(t, d, "e0")
			comp := complete.New(f.schema)
			doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 6})
			gen.Strip(rng, doc, 0.5)
			content := doc.Content()
			ext, _, err := comp.Complete(doc)
			if err != nil {
				t.Fatalf("seed %d: complete failed on a stripped (PV) doc: %v\n%s\n%s",
					seed, err, d, doc)
			}
			if err := f.valid.Validate(ext); err != nil {
				t.Fatalf("seed %d: completion invalid: %v\n%s\noriginal: %s\ncompleted: %s",
					seed, err, d, doc, ext)
			}
			if ext.Content() != content {
				t.Fatalf("seed %d: completion changed content", seed)
			}
			// And the completion is itself PV under both checkers.
			if !f.pvFast(ext) || !f.pvOracle(ext) {
				t.Fatalf("seed %d: completion not PV", seed)
			}
		}
	}
}
