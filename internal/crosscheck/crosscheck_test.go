// Package crosscheck contains the system-level agreement tests: the fast
// ECRecognizer-based checker (internal/core), the Earley recognizer on the
// grammar G' (Theorem 1 ground truth), the brute-force extension search
// (Definitions 2-3 executed literally), and the full validator must tell a
// consistent story on generated and mutated documents.
package crosscheck

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/earley"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/oracle"
	"repro/internal/reach"
	"repro/internal/validator"
)

// fixture bundles all checkers for one DTD+root.
type fixture struct {
	d      *dtd.DTD
	root   string
	schema *core.Schema
	gprime *earley.Recognizer
	valid  *validator.Validator
}

func newFixture(t *testing.T, d *dtd.DTD, root string) *fixture {
	t.Helper()
	s, err := core.Compile(d, root, core.Options{MaxDepth: 24})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, d)
	}
	g, err := grammar.BuildECFG(d, root, true)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		d:      d,
		root:   root,
		schema: s,
		gprime: earley.New(g.ToCFG()),
		valid:  validator.MustNew(d, root),
	}
}

// pvFast is the paper's algorithm; pvOracle is Theorem 1's characterization.
func (f *fixture) pvFast(doc *dom.Node) bool   { return f.schema.CheckDocument(doc) == nil }
func (f *fixture) pvOracle(doc *dom.Node) bool { return f.gprime.Recognize(grammar.DeltaT(doc)) }

// checkAgreement asserts the fast checker and the Earley oracle agree on
// doc, with a caveat for PV-strong DTDs where the fast algorithm is only
// complete up to the depth bound: fast=false/oracle=true is tolerated there
// (and counted), every other disagreement is fatal.
func (f *fixture) checkAgreement(t *testing.T, doc *dom.Node, context string) (agreed bool) {
	t.Helper()
	fast, slow := f.pvFast(doc), f.pvOracle(doc)
	if fast == slow {
		return true
	}
	if !fast && slow && f.schema.Class() == reach.PVStrongRecursive {
		return false // depth-bound incompleteness; tolerated
	}
	t.Fatalf("%s: fast=%v oracle=%v\nDTD:\n%s\ndoc: %s", context, fast, slow, f.d, doc)
	return false
}

func TestAgreementOnPaperExamples(t *testing.T) {
	f := newFixture(t, dtd.MustParse(dtd.Figure1), "r")
	for _, src := range []string{
		`<r><a><b>x</b><e></e><c>y</c> z</a></r>`,
		`<r><a><b>x</b><c>y</c> z<e></e></a></r>`,
		`<r><a><b><d>x</d></b><c>y</c><d>z<e></e></d></a></r>`,
		`<r></r>`,
		`<r><a><e></e><e></e></a></r>`,
		`<r><a><f><c>x</c><e></e></f><d></d></a></r>`,
		`<r><a><f><e></e><c>x</c></f><d></d></a></r>`,
	} {
		doc := dom.MustParse(src)
		f.checkAgreement(t, doc.Root, src)
	}
}

// TestTheorem1OracleAgreement: on random DTDs of every class, the fast
// checker agrees with the Earley characterization on (a) generated valid
// documents, (b) tag-stripped documents, (c) corrupted documents.
func TestTheorem1OracleAgreement(t *testing.T) {
	classes := []gen.DTDClass{gen.ClassNonRecursive, gen.ClassWeak, gen.ClassStrong}
	depthMisses := 0
	seeds := int64(25)
	if testing.Short() {
		seeds = 6 // Earley on G' is cubic; keep -short runs quick
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, class := range classes {
			d := gen.RandDTD(rng, gen.DTDOptions{Elements: 7, Class: class})
			f := newFixture(t, d, "e0")
			doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 6})

			// (a) valid documents are PV under both.
			if !f.pvFast(doc) {
				t.Fatalf("seed %d: valid document rejected by fast checker\n%s\n%s", seed, d, doc)
			}
			if !f.checkAgreement(t, doc, "valid doc") {
				depthMisses++
			}

			// (b) stripped documents remain PV (Theorem 2) under both.
			stripped := doc.Clone()
			gen.Strip(rng, stripped, 0.5)
			if !f.pvFast(stripped) {
				t.Fatalf("seed %d: stripped document rejected (Theorem 2 violated)\n%s\n%s",
					seed, d, stripped)
			}
			if !f.checkAgreement(t, stripped, "stripped doc") {
				depthMisses++
			}

			// (c) corrupted documents: verdicts may be yes or no, but the
			// two checkers must agree.
			for k := 0; k < 3; k++ {
				mutant := doc.Clone()
				if !gen.Corrupt(rng, d, mutant) {
					continue
				}
				if !f.checkAgreement(t, mutant, "corrupted doc") {
					depthMisses++
				}
			}
		}
	}
	// The tolerated misses must stay rare; a flood signals a real bug.
	if depthMisses > 5 {
		t.Errorf("depth-bound misses = %d; suspiciously many", depthMisses)
	}
}

// TestDefinitionSearchAgreement validates Theorem 1 itself on tiny
// instances: the Earley verdict must match the literal extension search.
func TestDefinitionSearchAgreement(t *testing.T) {
	d := dtd.MustParse(dtd.Figure1)
	f := newFixture(t, d, "r")
	cases := []struct {
		src    string
		budget int
	}{
		{`<r></r>`, 2},
		{`<r><a></a></r>`, 3},
		{`<r><c>x</c></r>`, 3},               // c alone under r: needs a wrapper a... and d sibling? search decides
		{`<r><a><e></e></a></r>`, 3},         // e needs d or f context
		{`<r><a><b>x</b></a></r>`, 4},        // b's text needs d inside b
		{`<r><e></e></r>`, 4},                // e deep under inserted a,d
		{`<r><a><e></e><c>x</c></a></r>`, 4}, // hard order problem? (e in inserted b)
	}
	for _, c := range cases {
		doc := dom.MustParse(c.src)
		res, witness := oracle.Search(d, "r", doc.Root, c.budget)
		want := f.pvOracle(doc.Root)
		got := res == oracle.Yes
		if got != want && want {
			// The budget may have been too small to find the witness; that
			// is the only allowed direction of disagreement.
			t.Logf("budget %d too small for %s (oracle says PV)", c.budget, c.src)
			continue
		}
		if got != want {
			t.Errorf("search found an extension of non-PV %s: %v", c.src, witness)
		}
		if got {
			// The witness must be valid and have the same character data.
			if err := f.valid.Validate(witness); err != nil {
				t.Errorf("witness for %s is not valid: %v\n%s", c.src, err, witness)
			}
			if witness.Content() != doc.Root.Content() {
				t.Errorf("witness changed character data: %q vs %q",
					witness.Content(), doc.Root.Content())
			}
			// And the fast checker must accept the original.
			if !f.pvFast(doc.Root) {
				t.Errorf("fast checker rejects %s though a witness exists", c.src)
			}
		}
	}
}

// TestSearchFindsFigure3Extension: the witness for Example 1's s must exist
// and, like Figure 3, uses two <d> insertions.
func TestSearchFindsFigure3Extension(t *testing.T) {
	d := dtd.MustParse(dtd.Figure1)
	doc := dom.MustParse(`<r><a><b>A quick brown</b><c> fox</c> dog<e></e></a></r>`)
	res, witness := oracle.Search(d, "r", doc.Root, 2)
	if res != oracle.Yes {
		t.Fatal("no extension found for s with 2 insertions")
	}
	v := validator.MustNew(d, "r")
	if err := v.Validate(witness); err != nil {
		t.Fatalf("witness invalid: %v\n%s", err, witness)
	}
}

// TestValidImpliesPV: on every fixture DTD, generated valid documents are
// potentially valid under the fast checker (D ⊆ D*).
func TestValidImpliesPV(t *testing.T) {
	fixtures := []struct{ src, root string }{
		{dtd.Figure1, "r"}, {dtd.Play, "play"}, {dtd.Article, "article"},
		{dtd.WeakRecursive, "p"}, {dtd.T1, "a"}, {dtd.T2, "a"},
	}
	for _, fix := range fixtures {
		d := dtd.MustParse(fix.src)
		f := newFixture(t, d, fix.root)
		for seed := int64(0); seed < 15; seed++ {
			rng := rand.New(rand.NewSource(seed))
			doc := gen.GenValid(rng, d, fix.root, gen.DocOptions{MaxDepth: 7})
			if err := f.valid.Validate(doc); err != nil {
				t.Fatalf("%s seed %d: generator produced invalid doc: %v", fix.root, seed, err)
			}
			if !f.pvFast(doc) {
				t.Errorf("%s seed %d: valid document rejected by PV checker\n%s",
					fix.root, seed, doc)
			}
		}
	}
}

// TestStreamAgreesWithTree on random documents.
func TestStreamAgreesWithTree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 8, Class: gen.ClassWeak})
		f := newFixture(t, d, "e0")
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 6})
		gen.Strip(rng, doc, 0.3)
		if rng.Intn(2) == 0 {
			gen.Corrupt(rng, d, doc)
		}
		tree := f.pvFast(doc)
		stream := f.schema.CheckStream(doc.String()) == nil
		if tree != stream {
			t.Errorf("seed %d: tree=%v stream=%v\n%s\n%s", seed, tree, stream, d, doc)
		}
	}
}
