package receipt

import (
	"testing"
)

// FuzzReceiptVerify throws arbitrary bytes at the whole verification
// surface — root decode, proof decode, leaf hashing, path walk — and
// enforces two invariants: Verify never panics, and no fuzzed (root,
// leaf, proof) triple verifies unless it reproduces a genuine one. The
// second check anchors on a real four-leaf tree: a proof for the genuine
// leaf must keep verifying, and the same proof must reject any fuzz
// variation of that leaf.
func FuzzReceiptVerify(f *testing.F) {
	tree, err := Build(testLeaves(4))
	if err != nil {
		f.Fatal(err)
	}
	genuineRoot := tree.RootRecord()
	genuineLeaf := testLeaf(1)
	genuineProof, err := tree.Prove(1)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(genuineRoot, genuineProof, genuineLeaf.DocID, genuineLeaf.SchemaRef, genuineLeaf.Verdict, genuineLeaf.Insertions, genuineLeaf.ContentDigest)
	f.Add("", "", "", "", "", int64(0), "")
	f.Add("pvr1:zz", "pvp1:!!", "doc", "ref", "valid", int64(-1), "abc")
	f.Add(genuineRoot, "pvp1:AAAA", "doc-001", "", "potentially-valid", int64(1), DigestContent([]byte("x")))
	f.Add("pvr1:"+genuineRoot[5:], genuineProof+"=", genuineLeaf.DocID, genuineLeaf.SchemaRef, genuineLeaf.Verdict, int64(1<<40), genuineLeaf.ContentDigest)

	f.Fuzz(func(t *testing.T, root, proof, docID, schemaRef, verdict string, insertions int64, digest string) {
		leaf := Leaf{DocID: docID, SchemaRef: schemaRef, Verdict: verdict, Insertions: insertions, ContentDigest: digest}
		// Must never panic, whatever the bytes.
		_ = Verify(root, leaf, proof)

		// A genuine proof must never accept a different leaf: any change
		// the fuzzer makes to the leaf fields must flip the verdict to
		// false (equality would require a SHA-256 collision).
		if leaf != genuineLeaf {
			if Verify(genuineRoot, leaf, genuineProof) {
				t.Fatalf("mutated leaf %+v verified under a genuine proof", leaf)
			}
		} else if !Verify(genuineRoot, leaf, genuineProof) {
			t.Fatal("genuine triple stopped verifying")
		}

		// Decoders must be canonical: anything DecodeProof accepts must
		// re-encode to the exact input string.
		if p, err := DecodeProof(proof); err == nil && p.Encode() != proof {
			t.Fatalf("non-canonical proof accepted: %q", proof)
		}
		if h, err := DecodeRoot(root); err == nil && EncodeRoot(h) != root {
			t.Fatalf("non-canonical root accepted: %q", root)
		}
	})
}
