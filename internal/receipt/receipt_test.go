package receipt

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
)

// testLeaf builds a deterministic leaf for document i of a batch.
func testLeaf(i int) Leaf {
	return Leaf{
		DocID:         fmt.Sprintf("doc-%03d", i),
		SchemaRef:     "c0ffee1234abcd",
		Verdict:       []string{"valid", "potentially-valid", "not-potentially-valid", "malformed"}[i%4],
		Insertions:    int64(i % 7),
		ContentDigest: DigestContent([]byte(fmt.Sprintf("<r>content %d</r>", i))),
	}
}

func testLeaves(n int) []Leaf {
	out := make([]Leaf, n)
	for i := range out {
		out[i] = testLeaf(i)
	}
	return out
}

// refRoot recomputes the root with an independent, straightforward
// implementation (promote-odd, leaf/inner domains) so Build's tree shape
// is pinned by something other than itself.
func refRoot(t *testing.T, leaves []Leaf) Hash {
	t.Helper()
	var level []Hash
	for i := range leaves {
		h, err := leaves[i].Hash()
		if err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		level = append(level, h)
	}
	for len(level) > 1 {
		var next []Hash
		i := 0
		for ; i+1 < len(level); i += 2 {
			buf := append([]byte{domainInner}, level[i][:]...)
			buf = append(buf, level[i+1][:]...)
			next = append(next, sha256.Sum256(buf))
		}
		if i < len(level) {
			next = append(next, level[i])
		}
		level = next
	}
	// The published root commits to the batch size on top of the bare
	// Merkle top.
	buf := []byte{domainRoot}
	buf = binary.AppendUvarint(buf, uint64(len(leaves)))
	buf = append(buf, level[0][:]...)
	return sha256.Sum256(buf)
}

// TestProofBattery is the property battery over batch sizes 1..64
// (including every non-power-of-2): the root matches an independent
// reference construction, every document's proof verifies against the
// root, and no proof verifies against another leaf or another index.
func TestProofBattery(t *testing.T) {
	for n := 1; n <= 64; n++ {
		leaves := testLeaves(n)
		tree, err := Build(leaves)
		if err != nil {
			t.Fatalf("n=%d: Build: %v", n, err)
		}
		if tree.Leaves() != n {
			t.Fatalf("n=%d: tree reports %d leaves", n, tree.Leaves())
		}
		if got, want := tree.Root(), refRoot(t, leaves); got != want {
			t.Fatalf("n=%d: root %x differs from reference %x", n, got, want)
		}
		root := tree.RootRecord()
		for i := 0; i < n; i++ {
			proof, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: Prove: %v", n, i, err)
			}
			if !Verify(root, leaves[i], proof) {
				t.Fatalf("n=%d i=%d: genuine proof did not verify", n, i)
			}
			// A proof must not verify any other document of the batch.
			if n > 1 {
				other := (i + 1) % n
				if Verify(root, leaves[other], proof) {
					t.Fatalf("n=%d: proof for leaf %d verified leaf %d", n, i, other)
				}
			}
		}
	}
}

// mutateString returns s with byte i xored by x.
func mutateString(s string, i int, x byte) string {
	b := []byte(s)
	b[i] ^= x
	return string(b)
}

// TestProofTamperRejected flips every single byte of the encoded root,
// the encoded proof, and each leaf field — for every document of every
// batch size 1..64 — and requires Verify to reject each mutation.
func TestProofTamperRejected(t *testing.T) {
	for n := 1; n <= 64; n++ {
		leaves := testLeaves(n)
		tree, err := Build(leaves)
		if err != nil {
			t.Fatalf("n=%d: Build: %v", n, err)
		}
		root := tree.RootRecord()
		for i := 0; i < n; i++ {
			proof, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: Prove: %v", n, i, err)
			}
			// Every single-byte mutation of the root record.
			for pos := 0; pos < len(root); pos++ {
				if bad := mutateString(root, pos, 0x01); bad != root && Verify(bad, leaves[i], proof) {
					t.Fatalf("n=%d i=%d: root mutated at byte %d still verified", n, i, pos)
				}
			}
			// Every single-byte mutation of the proof record.
			for pos := 0; pos < len(proof); pos++ {
				if bad := mutateString(proof, pos, 0x01); bad != proof && Verify(root, leaves[i], bad) {
					t.Fatalf("n=%d i=%d: proof mutated at byte %d still verified", n, i, pos)
				}
			}
			// Every single-byte mutation of every leaf field, plus
			// off-by-one insertion counts.
			leaf := leaves[i]
			for pos := 0; pos < len(leaf.DocID); pos++ {
				bad := leaf
				bad.DocID = mutateString(leaf.DocID, pos, 0x01)
				if Verify(root, bad, proof) {
					t.Fatalf("n=%d i=%d: DocID mutated at byte %d still verified", n, i, pos)
				}
			}
			for pos := 0; pos < len(leaf.SchemaRef); pos++ {
				bad := leaf
				bad.SchemaRef = mutateString(leaf.SchemaRef, pos, 0x01)
				if Verify(root, bad, proof) {
					t.Fatalf("n=%d i=%d: SchemaRef mutated at byte %d still verified", n, i, pos)
				}
			}
			for pos := 0; pos < len(leaf.Verdict); pos++ {
				bad := leaf
				bad.Verdict = mutateString(leaf.Verdict, pos, 0x01)
				if Verify(root, bad, proof) {
					t.Fatalf("n=%d i=%d: Verdict mutated at byte %d still verified", n, i, pos)
				}
			}
			for pos := 0; pos < len(leaf.ContentDigest); pos++ {
				bad := leaf
				bad.ContentDigest = mutateString(leaf.ContentDigest, pos, 0x01)
				if Verify(root, bad, proof) {
					t.Fatalf("n=%d i=%d: ContentDigest mutated at byte %d still verified", n, i, pos)
				}
			}
			for _, delta := range []int64{-1, 1, 64} {
				bad := leaf
				bad.Insertions += delta
				if Verify(root, bad, proof) {
					t.Fatalf("n=%d i=%d: Insertions%+d still verified", n, i, delta)
				}
			}
		}
	}
}

// TestFieldBoundariesAreUnambiguous pins the length-prefixed leaf
// encoding: moving bytes between adjacent fields must change the hash.
func TestFieldBoundariesAreUnambiguous(t *testing.T) {
	a := Leaf{DocID: "ab", SchemaRef: "cd", Verdict: "valid", ContentDigest: DigestContent(nil)}
	b := Leaf{DocID: "abc", SchemaRef: "d", Verdict: "valid", ContentDigest: DigestContent(nil)}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("shifting a byte across the DocID/SchemaRef boundary did not change the leaf hash")
	}
}

// TestLeafDigestValidation rejects digests that are not lowercase hex
// SHA-256 — including the uppercase alias of a valid digest, which would
// otherwise give one leaf two accepted spellings.
func TestLeafDigestValidation(t *testing.T) {
	good := testLeaf(0)
	if _, err := good.Hash(); err != nil {
		t.Fatalf("valid leaf rejected: %v", err)
	}
	for _, digest := range []string{
		"",
		"abc",
		strings.ToUpper(good.ContentDigest),
		good.ContentDigest[:63] + "g",
		good.ContentDigest + "00",
	} {
		bad := good
		bad.ContentDigest = digest
		if _, err := bad.Hash(); err == nil {
			t.Fatalf("digest %q accepted", digest)
		}
	}
}

// TestDecodeCanonical pins the canonical-encoding guarantees the tamper
// battery relies on: re-encoded proofs round-trip, and non-canonical
// spellings (uppercase root hex, padded/non-minimal proof bytes) fail.
func TestDecodeCanonical(t *testing.T) {
	tree, err := Build(testLeaves(5))
	if err != nil {
		t.Fatal(err)
	}
	root := tree.RootRecord()
	if _, err := DecodeRoot(root); err != nil {
		t.Fatalf("canonical root rejected: %v", err)
	}
	if _, err := DecodeRoot(strings.ToUpper(root)); err == nil {
		t.Fatal("uppercase root accepted")
	}
	if _, err := DecodeRoot("pvr2:" + root[5:]); err == nil {
		t.Fatal("unknown root version accepted")
	}
	proof, err := tree.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeProof(proof)
	if err != nil {
		t.Fatalf("canonical proof rejected: %v", err)
	}
	if p.Encode() != proof {
		t.Fatalf("proof round trip: %q != %q", p.Encode(), proof)
	}
	if _, err := DecodeProof("pvp2:" + proof[5:]); err == nil {
		t.Fatal("unknown proof version accepted")
	}
	if _, err := DecodeProof(proof + "A"); err == nil {
		t.Fatal("lengthened proof accepted")
	}
	if _, err := DecodeProof(proof[:len(proof)-1]); err == nil {
		t.Fatal("truncated proof accepted")
	}
}

// TestBuildEmpty pins the zero-leaf error.
func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("Build(nil) succeeded")
	}
	if _, err := BuildHashes(nil); err == nil {
		t.Fatal("BuildHashes(nil) succeeded")
	}
}

// TestProveRange pins out-of-range proving.
func TestProveRange(t *testing.T) {
	tree, err := Build(testLeaves(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 3, 64} {
		if _, err := tree.Prove(i); err == nil {
			t.Fatalf("Prove(%d) succeeded on a 3-leaf tree", i)
		}
	}
}
