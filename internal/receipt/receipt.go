// Package receipt turns a batch of checking verdicts into a verifiable
// audit artifact: the verdicts become the leaves of a deterministic
// Merkle tree, the tree's root is the batch *receipt root*, and every
// document gets an inclusion proof that binds its exact verdict — and the
// exact bytes that were checked, via a content digest — to that root.
// Anyone holding the root can later verify "this document, with this
// content, was checked with this verdict in that batch" with nothing but
// this package: Verify is stateless and needs no engine, schema or cache
// directory.
//
// Construction. Each leaf hash is a domain-separated SHA-256 over a
// canonical length-prefixed encoding of the leaf fields (document id,
// schema ref, verdict, insertion count, content digest); interior nodes
// hash a distinct domain byte over the concatenated children, so a leaf
// can never be reinterpreted as an interior node (second-preimage
// structure attacks). Levels with an odd node count promote the odd node
// unchanged — no duplication — so the tree shape is a pure function of
// the leaf count. Roots and proofs travel in versioned textual encodings
// ("pvr1:" / "pvp1:" prefixes) whose decoders insist on canonical bytes:
// any single-byte variation of an encoded root or proof either fails to
// decode or changes the hash walk, and is rejected either way.
//
// The companion AnchorLog (anchor.go) appends root records to a
// crash-tolerant local log so roots survive process restarts
// independently of the receipts handed to callers.
package receipt

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// HashSize is the byte length of every node hash (SHA-256).
const HashSize = sha256.Size

// Hash is one Merkle node value.
type Hash = [HashSize]byte

// Domain-separation prefixes: the first byte hashed for a leaf, an
// interior node and the size-committed root. Distinct bytes make the
// three hash domains disjoint.
const (
	domainLeaf  = 0x00
	domainInner = 0x01
	domainRoot  = 0x02
)

// Wire-encoding prefixes. The digit is the format version; decoders
// reject prefixes (and versions) they do not know.
const (
	rootPrefix  = "pvr1:"
	proofPrefix = "pvp1:"
)

// leafEncodingVersion versions the canonical leaf byte encoding that gets
// hashed; bumping it changes every leaf hash, so it is part of the hashed
// bytes.
const leafEncodingVersion = 1

// Leaf is one document's verdict record — the preimage of one Merkle
// leaf. The fields are exactly what a verifier must know (and an issuer
// must disclose) to check an inclusion proof: the verdict binds to the
// document id, the schema it was checked against, the verdict string, the
// completion insertion count, and a SHA-256 digest of the document bytes.
type Leaf struct {
	// DocID is the submitter-chosen document identifier.
	DocID string `json:"docId"`
	// SchemaRef is the registry reference of the schema the document was
	// checked against (empty when the schema was not registry-backed).
	SchemaRef string `json:"schemaRef,omitempty"`
	// Verdict is the outcome string ("valid", "potentially-valid",
	// "not-potentially-valid", "completed", "already-valid", "malformed",
	// "routing-error").
	Verdict string `json:"verdict"`
	// Insertions is the number of elements a completion inserted (zero on
	// the checking path).
	Insertions int64 `json:"insertions,omitempty"`
	// ContentDigest is the lowercase hex SHA-256 of the exact document
	// bytes that were checked.
	ContentDigest string `json:"contentDigest"`
}

// DigestContent returns the lowercase hex SHA-256 of content — the value
// a Leaf.ContentDigest must carry for those bytes.
func DigestContent(content []byte) string {
	sum := sha256.Sum256(content)
	return hex.EncodeToString(sum[:])
}

// appendField appends one length-prefixed field to the canonical leaf
// encoding.
func appendField(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Hash computes the leaf's Merkle hash: SHA-256 over the leaf domain
// byte, the encoding version and the length-prefixed fields. It fails
// when ContentDigest is not a lowercase hex SHA-256 — a malformed digest
// must never silently hash into a valid-looking leaf.
func (l *Leaf) Hash() (Hash, error) {
	if err := checkDigest(l.ContentDigest); err != nil {
		return Hash{}, err
	}
	buf := make([]byte, 0, 2+len(l.DocID)+len(l.SchemaRef)+len(l.Verdict)+len(l.ContentDigest)+5*binary.MaxVarintLen64)
	buf = append(buf, domainLeaf, leafEncodingVersion)
	buf = appendField(buf, l.DocID)
	buf = appendField(buf, l.SchemaRef)
	buf = appendField(buf, l.Verdict)
	buf = binary.AppendUvarint(buf, uint64(l.Insertions))
	buf = appendField(buf, l.ContentDigest)
	return sha256.Sum256(buf), nil
}

// checkDigest validates a lowercase hex SHA-256 string.
func checkDigest(s string) error {
	if len(s) != 2*HashSize {
		return fmt.Errorf("receipt: content digest must be %d hex characters, got %d", 2*HashSize, len(s))
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("receipt: content digest is not lowercase hex at byte %d", i)
		}
	}
	return nil
}

// innerHash combines two children into their parent node.
func innerHash(left, right Hash) Hash {
	var buf [1 + 2*HashSize]byte
	buf[0] = domainInner
	copy(buf[1:], left[:])
	copy(buf[1+HashSize:], right[:])
	return sha256.Sum256(buf[:])
}

// Tree is a built Merkle tree over a batch's leaf hashes. levels[0] is
// the leaf level; each higher level halves (odd nodes promote unchanged)
// until levels[len-1] holds the single root.
type Tree struct {
	levels [][]Hash
}

// BuildHashes assembles the tree over precomputed leaf hashes. It fails
// on an empty batch — an empty tree has no meaningful root.
func BuildHashes(leaves []Hash) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("receipt: cannot build a tree over zero leaves")
	}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	t := &Tree{levels: [][]Hash{level}}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, innerHash(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			// Odd node: promoted unchanged to the next level.
			next = append(next, level[len(level)-1])
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Build hashes the leaves and assembles the tree over them.
func Build(leaves []Leaf) (*Tree, error) {
	hashes := make([]Hash, len(leaves))
	for i := range leaves {
		h, err := leaves[i].Hash()
		if err != nil {
			return nil, fmt.Errorf("receipt: leaf %d: %w", i, err)
		}
		hashes[i] = h
	}
	return BuildHashes(hashes)
}

// Leaves returns the number of leaves the tree was built over.
func (t *Tree) Leaves() int { return len(t.levels[0]) }

// bindRoot commits the batch size into the published root: without this
// binding, a proof whose leaf-count field is inflated to a size with the
// same promotion geometry along its path (12 -> 16 for index 0, say)
// would still walk to the bare Merkle top. Hashing the count into the
// root makes any single-byte size mutation — in the root record or in a
// proof — fail verification.
func bindRoot(top Hash, leaves int) Hash {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+HashSize)
	buf = append(buf, domainRoot)
	buf = binary.AppendUvarint(buf, uint64(leaves))
	buf = append(buf, top[:]...)
	return sha256.Sum256(buf)
}

// Root returns the tree's published root: the size-committed hash over
// the leaf count and the bare Merkle top.
func (t *Tree) Root() Hash { return bindRoot(t.levels[len(t.levels)-1][0], t.Leaves()) }

// RootRecord returns the versioned textual encoding of the root
// ("pvr1:<64 lowercase hex>") — the form that travels on the wire, lands
// in the anchor log and feeds Verify.
func (t *Tree) RootRecord() string { return EncodeRoot(t.Root()) }

// EncodeRoot renders a root hash in the versioned textual form.
func EncodeRoot(h Hash) string { return rootPrefix + hex.EncodeToString(h[:]) }

// DecodeRoot parses a versioned root record, insisting on the canonical
// form: the exact prefix and exactly 64 lowercase hex digits.
func DecodeRoot(s string) (Hash, error) {
	var h Hash
	if len(s) != len(rootPrefix)+2*HashSize || s[:len(rootPrefix)] != rootPrefix {
		return h, fmt.Errorf("receipt: not a %q root record", rootPrefix)
	}
	hexPart := s[len(rootPrefix):]
	if err := checkDigest(hexPart); err != nil {
		return h, fmt.Errorf("receipt: root record is not canonical lowercase hex")
	}
	b, err := hex.DecodeString(hexPart)
	if err != nil {
		return h, err
	}
	copy(h[:], b)
	return h, nil
}

// Proof is one leaf's decoded inclusion proof: the batch size and leaf
// index (which together determine the promotion pattern and sibling
// directions at every level) plus the sibling hashes bottom-up.
type Proof struct {
	// Leaves is the batch size of the tree the proof was issued from.
	Leaves int
	// Index is the leaf's position in the batch.
	Index int
	// Siblings are the sibling hashes on the path to the root, leaf level
	// first. Levels where the node was promoted (odd tail) contribute no
	// sibling.
	Siblings []Hash
}

// siblingCount returns how many siblings a proof for index idx in a tree
// of n leaves must carry — the walk of Verify, counting.
func siblingCount(n, idx int) int {
	count := 0
	for n > 1 {
		if idx%2 == 0 && idx+1 >= n {
			// Promoted odd tail: no sibling at this level.
		} else {
			count++
		}
		idx /= 2
		n = (n + 1) / 2
	}
	return count
}

// Prove returns the versioned textual inclusion proof for leaf i.
func (t *Tree) Prove(i int) (string, error) {
	n := t.Leaves()
	if i < 0 || i >= n {
		return "", fmt.Errorf("receipt: leaf index %d out of range [0,%d)", i, n)
	}
	p := Proof{Leaves: n, Index: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		var sib int
		if idx%2 == 0 {
			sib = idx + 1
		} else {
			sib = idx - 1
		}
		if sib < len(level) {
			p.Siblings = append(p.Siblings, level[sib])
		}
		idx /= 2
	}
	return p.Encode(), nil
}

// Encode renders the proof in the versioned textual form
// ("pvp1:<base64url>"): uvarint leaf count, uvarint index, then the raw
// sibling hashes bottom-up.
func (p *Proof) Encode() string {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(p.Siblings)*HashSize)
	buf = binary.AppendUvarint(buf, uint64(p.Leaves))
	buf = binary.AppendUvarint(buf, uint64(p.Index))
	for _, s := range p.Siblings {
		buf = append(buf, s[:]...)
	}
	return proofPrefix + base64.RawURLEncoding.EncodeToString(buf)
}

// DecodeProof parses a versioned proof record. The decode is strict and
// canonical: unknown prefixes, non-canonical base64, non-minimal varints,
// out-of-range indices and sibling counts that disagree with the
// (leaves, index) geometry all fail — so a proof string has exactly one
// valid byte form.
func DecodeProof(s string) (*Proof, error) {
	if len(s) < len(proofPrefix) || s[:len(proofPrefix)] != proofPrefix {
		return nil, fmt.Errorf("receipt: not a %q proof record", proofPrefix)
	}
	raw, err := base64.RawURLEncoding.Strict().DecodeString(s[len(proofPrefix):])
	if err != nil {
		return nil, fmt.Errorf("receipt: proof is not canonical base64url: %w", err)
	}
	pos := 0
	leaves, n := binary.Uvarint(raw)
	if n <= 0 {
		return nil, errors.New("receipt: truncated proof (leaf count)")
	}
	pos += n
	index, n := binary.Uvarint(raw[pos:])
	if n <= 0 {
		return nil, errors.New("receipt: truncated proof (index)")
	}
	pos += n
	// Bound before any arithmetic: a fuzzer-supplied 2^60 leaf count must
	// not allocate or overflow anything.
	const maxLeaves = 1 << 32
	if leaves == 0 || leaves > maxLeaves {
		return nil, fmt.Errorf("receipt: proof leaf count %d out of range", leaves)
	}
	if index >= leaves {
		return nil, fmt.Errorf("receipt: proof index %d out of range for %d leaves", index, leaves)
	}
	p := &Proof{Leaves: int(leaves), Index: int(index)}
	want := siblingCount(p.Leaves, p.Index)
	if len(raw)-pos != want*HashSize {
		return nil, fmt.Errorf("receipt: proof carries %d sibling bytes, geometry requires %d", len(raw)-pos, want*HashSize)
	}
	p.Siblings = make([]Hash, want)
	for i := 0; i < want; i++ {
		copy(p.Siblings[i][:], raw[pos:])
		pos += HashSize
	}
	// Canonical-form check: re-encoding must reproduce the input exactly,
	// so non-minimal varints (a second byte form of the same proof) are
	// rejected and every accepted proof string is unique for its content.
	if p.Encode() != s {
		return nil, errors.New("receipt: proof encoding is not canonical")
	}
	return p, nil
}

// VerifyHash walks a decoded proof from a leaf hash up to the bare
// Merkle top, binds the proof's leaf count into it, and reports whether
// the result is root. Stateless.
func VerifyHash(root Hash, leaf Hash, p *Proof) bool {
	if p == nil || p.Index < 0 || p.Leaves <= 0 || p.Index >= p.Leaves {
		return false
	}
	h := leaf
	idx, n := p.Index, p.Leaves
	sib := 0
	for n > 1 {
		if idx%2 == 0 && idx+1 >= n {
			// Promoted odd tail: the node rises unchanged.
		} else {
			if sib >= len(p.Siblings) {
				return false
			}
			if idx%2 == 0 {
				h = innerHash(h, p.Siblings[sib])
			} else {
				h = innerHash(p.Siblings[sib], h)
			}
			sib++
		}
		idx /= 2
		n = (n + 1) / 2
	}
	return sib == len(p.Siblings) && bindRoot(h, p.Leaves) == root
}

// Verify checks one encoded inclusion proof offline: it decodes the root
// record and the proof, hashes the disclosed leaf, and walks the path.
// It needs no state beyond its arguments and returns false — never an
// error, never a panic — on any malformed or tampered input.
func Verify(rootRecord string, leaf Leaf, proofRecord string) bool {
	root, err := DecodeRoot(rootRecord)
	if err != nil {
		return false
	}
	p, err := DecodeProof(proofRecord)
	if err != nil {
		return false
	}
	lh, err := leaf.Hash()
	if err != nil {
		return false
	}
	return VerifyHash(root, lh, p)
}
