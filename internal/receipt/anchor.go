package receipt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// The anchor log makes receipt roots outlive the process that issued
// them: every batch root is appended as one framed record to
// <dir>/anchors.log, and a restarted engine re-serves the full root
// history from the same file. Proofs are not logged — they are derivable
// only at execution time and belong to the caller — but a proof plus a
// re-served root is exactly what the cross-restart verification story
// needs: the root a verifier fetches after a restart is byte-equal to the
// one the receipt was issued under.
//
// Record framing is size-signed and checksummed: uvarint payload length,
// JSON payload, little-endian CRC32 (IEEE) of the payload. A torn tail —
// the one failure an append-only local log must tolerate — fails either
// the length or the checksum and is truncated away at open; everything
// before it replays intact. One process writes at a time (the log lives
// under the engine's cache directory, whose job WAL already enforces a
// single durable owner).

// anchorFile is the log's file name under the receipts directory.
const anchorFile = "anchors.log"

// Anchor is one logged root record.
type Anchor struct {
	// Seq is the record's sequence number in this log, starting at 1.
	Seq int64 `json:"seq"`
	// Time is when the root was anchored.
	Time time.Time `json:"time"`
	// Kind is the workload that produced the batch ("check" or
	// "complete").
	Kind string `json:"kind"`
	// Batch identifies the batch: the async job id, or empty for a
	// synchronous request.
	Batch string `json:"batch,omitempty"`
	// Leaves is the batch size the root commits to.
	Leaves int `json:"leaves"`
	// Root is the versioned root record ("pvr1:<hex>").
	Root string `json:"root"`
}

// AnchorLog is an append-only, crash-tolerant log of receipt roots.
// Append and List are safe for concurrent use within one process.
type AnchorLog struct {
	mu   sync.Mutex
	fsys faultfs.FS
	f    faultfs.File
	path string
	seq  int64
	n    int
}

// OpenAnchorLog opens (creating if needed) the root log under dir over
// the real filesystem, replays it to find the next sequence number, and
// truncates any torn tail left by a crash mid-append.
func OpenAnchorLog(dir string) (*AnchorLog, error) { return OpenAnchorLogFS(dir, nil) }

// OpenAnchorLogFS is OpenAnchorLog over an explicit filesystem seam (nil
// selects the real filesystem); crash-consistency tests inject a
// faultfs.FaultFS.
func OpenAnchorLogFS(dir string, fsys faultfs.FS) (*AnchorLog, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("receipt: %w", err)
	}
	path := filepath.Join(dir, anchorFile)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("receipt: %w", err)
	}
	// Pin the directory chain and the log's own entry: without these a
	// crash could drop the just-created (or just-rotated) log file even
	// after its bytes were flushed.
	if err := faultfs.SyncDirs(fsys, filepath.Dir(dir), dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("receipt: syncing receipts dir: %w", err)
	}
	l := &AnchorLog{fsys: fsys, f: f, path: path}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("receipt: reading anchor log: %w", err)
	}
	good := 0
	for pos := 0; pos < len(data); {
		a, next, ok := decodeRecord(data, pos)
		if !ok {
			break
		}
		l.seq = a.Seq
		l.n++
		good = next
		pos = next
	}
	if good < len(data) {
		// Torn or corrupt tail: keep the intact prefix, drop the rest.
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("receipt: truncating torn anchor log tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("receipt: %w", err)
	}
	return l, nil
}

// decodeRecord parses one framed record at pos, returning the record, the
// offset past it, and whether the frame was intact.
func decodeRecord(data []byte, pos int) (Anchor, int, bool) {
	var a Anchor
	size, n := binary.Uvarint(data[pos:])
	if n <= 0 || size == 0 || size > 1<<20 {
		return a, pos, false
	}
	pos += n
	end := pos + int(size)
	if end+4 > len(data) {
		return a, pos, false
	}
	payload := data[pos:end]
	want := binary.LittleEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return a, pos, false
	}
	if err := json.Unmarshal(payload, &a); err != nil {
		return a, pos, false
	}
	return a, end + 4, true
}

// Append logs one root. Seq and Time are assigned by the log (the passed
// values are ignored); the completed record is returned. The write is
// flushed to the file before Append returns; like the job WAL's
// non-submission records it is not fsynced — a process crash loses
// nothing (the page cache survives it), and a machine crash costs at most
// the newest anchors, each of which is also embedded in the receipts
// already handed to callers.
func (l *AnchorLog) Append(a Anchor) (Anchor, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return a, fmt.Errorf("receipt: anchor log is closed")
	}
	l.seq++
	a.Seq = l.seq
	if a.Time.IsZero() {
		a.Time = time.Now().UTC()
	}
	payload, err := json.Marshal(a)
	if err != nil {
		l.seq--
		return a, err
	}
	buf := make([]byte, 0, len(payload)+binary.MaxVarintLen64+4)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(buf); err != nil {
		l.seq--
		return a, fmt.Errorf("receipt: appending anchor: %w", err)
	}
	l.n++
	return a, nil
}

// List re-reads the log and returns every intact record in append order.
func (l *AnchorLog) List() ([]Anchor, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := l.fsys.ReadFile(l.path)
	if err != nil {
		return nil, fmt.Errorf("receipt: %w", err)
	}
	var out []Anchor
	for pos := 0; pos < len(data); {
		a, next, ok := decodeRecord(data, pos)
		if !ok {
			break
		}
		out = append(out, a)
		pos = next
	}
	return out, nil
}

// Len returns the number of intact records (replayed plus appended).
func (l *AnchorLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Close releases the log file. Appends after Close fail.
func (l *AnchorLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
