package receipt

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testAnchor(root string, leaves int) Anchor {
	return Anchor{Kind: "check", Leaves: leaves, Root: root}
}

// TestAnchorLogRoundTrip appends across two opens and requires the full
// byte-equal history back, with continuous sequence numbers.
func TestAnchorLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenAnchorLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := Build(testLeaves(4))
	a1, err := l.Append(testAnchor(tree.RootRecord(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Seq != 1 || a1.Time.IsZero() {
		t.Fatalf("first append got seq=%d time=%v", a1.Seq, a1.Time)
	}
	tree2, _ := Build(testLeaves(7))
	if _, err := l.Append(testAnchor(tree2.RootRecord(), 7)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenAnchorLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || l2.Len() != 2 {
		t.Fatalf("reopened log has %d records (Len=%d), want 2", len(got), l2.Len())
	}
	if got[0].Root != tree.RootRecord() || got[1].Root != tree2.RootRecord() {
		t.Fatalf("roots did not survive the restart byte-equal: %+v", got)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("sequence numbers %d,%d want 1,2", got[0].Seq, got[1].Seq)
	}
	a3, err := l2.Append(testAnchor(tree.RootRecord(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if a3.Seq != 3 {
		t.Fatalf("post-restart append got seq %d, want 3", a3.Seq)
	}
}

// TestAnchorLogTornTail truncates a torn (partial) final record at open
// and keeps every intact record before it.
func TestAnchorLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenAnchorLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := Build(testLeaves(3))
	if _, err := l.Append(testAnchor(tree.RootRecord(), 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testAnchor(tree.RootRecord(), 3)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := filepath.Join(dir, anchorFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the second record.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenAnchorLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("torn log replayed %d records, want 1", len(got))
	}
	// The log must stay appendable after the truncation, with the next
	// sequence continuing from the surviving prefix.
	a, err := l2.Append(testAnchor(tree.RootRecord(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq != 2 {
		t.Fatalf("append after torn-tail truncation got seq %d, want 2", a.Seq)
	}
}

// TestAnchorLogCorruptRecord stops replay at a checksum mismatch instead
// of serving damaged roots.
func TestAnchorLogCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenAnchorLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := Build(testLeaves(2))
	if _, err := l.Append(testAnchor(tree.RootRecord(), 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testAnchor(tree.RootRecord(), 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := filepath.Join(dir, anchorFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the second record (well before its CRC).
	data[len(data)-20] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenAnchorLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("corrupt log replayed %d records, want 1", len(got))
	}
}

// TestAnchorLogClosed pins the append-after-close error.
func TestAnchorLogClosed(t *testing.T) {
	l, err := OpenAnchorLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(Anchor{Root: "pvr1:00", Time: time.Now()}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
