package receipt

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/faultfs/harness"
)

// The anchor log's crash matrix. The log is append-only and deliberately
// never fsyncs its records (the comment on Append is the contract), so
// the invariant after a crash anywhere is purely structural: the log
// reopens, List yields a record-prefix of what was appended — contiguous
// Seq from 1, every surviving record byte-intact (the CRC frame already
// rejected torn tails at open) — and the next Append continues the
// sequence where the prefix left off.

// anchorAt builds the deterministic record appended at sequence seq; the
// verifier reconstructs it to check surviving records are unmangled.
func anchorAt(seq int64) Anchor {
	return Anchor{
		Time:   time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC),
		Kind:   "check",
		Batch:  fmt.Sprintf("job-%02d", seq),
		Leaves: int(seq) * 3,
		Root:   fmt.Sprintf("pvr1:%064x", seq),
	}
}

// anchorWorkload is two anchor-writing process lifetimes back to back:
// open, append a batch of roots, close, then a restart that replays and
// appends more. The restart inside the workload means the matrix also
// crashes the replay-and-truncate path itself.
func anchorWorkload(fsys *faultfs.FaultFS) error {
	l, err := OpenAnchorLogFS("receipts", fsys)
	if err != nil {
		return err
	}
	for seq := int64(1); seq <= 6; seq++ {
		if _, err := l.Append(anchorAt(seq)); err != nil {
			return err
		}
	}
	if err := l.Close(); err != nil {
		return err
	}
	l, err = OpenAnchorLogFS("receipts", fsys)
	if err != nil {
		return err
	}
	for seq := int64(7); seq <= 12; seq++ {
		if _, err := l.Append(anchorAt(seq)); err != nil {
			return err
		}
	}
	if _, err := l.List(); err != nil {
		return err
	}
	return l.Close()
}

// verifyAnchors reopens the recovered log and checks the prefix
// invariant.
func verifyAnchors(fsys *faultfs.FaultFS) error {
	l, err := OpenAnchorLogFS("receipts", fsys)
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	defer l.Close()
	anchors, err := l.List()
	if err != nil {
		return fmt.Errorf("List after crash: %w", err)
	}
	if len(anchors) > 12 {
		return fmt.Errorf("log replayed %d records, only 12 were appended", len(anchors))
	}
	for i, a := range anchors {
		want := anchorAt(int64(i) + 1)
		if a.Seq != int64(i)+1 {
			return fmt.Errorf("record %d has Seq %d: surviving records are not a contiguous prefix", i, a.Seq)
		}
		if a.Kind != want.Kind || a.Batch != want.Batch || a.Leaves != want.Leaves || a.Root != want.Root {
			return fmt.Errorf("record %d survived mangled: %+v", i, a)
		}
	}
	// The restarted engine keeps anchoring: the next root must extend the
	// surviving prefix, and List must serve it back.
	next, err := l.Append(anchorAt(int64(len(anchors)) + 1))
	if err != nil {
		return fmt.Errorf("Append after crash: %w", err)
	}
	if next.Seq != int64(len(anchors))+1 {
		return fmt.Errorf("post-crash Append got Seq %d, want %d", next.Seq, len(anchors)+1)
	}
	again, err := l.List()
	if err != nil {
		return err
	}
	if len(again) != len(anchors)+1 {
		return fmt.Errorf("List after post-crash Append: %d records, want %d", len(again), len(anchors)+1)
	}
	return nil
}

func anchorRound() harness.Round {
	return harness.Round{Workload: anchorWorkload, Verify: verifyAnchors}
}

// TestCrashMatrixAnchorLog crashes the two-lifetime anchor workload at
// every filesystem operation.
func TestCrashMatrixAnchorLog(t *testing.T) {
	points := harness.Matrix(t, harness.Options{Package: "./internal/receipt"}, anchorRound)
	t.Logf("crash points exercised: %d", points)
	if points < 35 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}

// TestCrashMatrixAnchorLogDropUnsyncedDirs is the adversarial directory
// recovery: the receipts dir entry itself may be dropped (the log file
// vanishes wholesale), which is exactly what the SyncDirs call at open
// exists to bound. Any surviving file must still replay as a clean
// prefix.
func TestCrashMatrixAnchorLogDropUnsyncedDirs(t *testing.T) {
	points := harness.Matrix(t, harness.Options{
		Package:          "./internal/receipt",
		DropUnsyncedDirs: true,
	}, anchorRound)
	t.Logf("crash points exercised: %d", points)
	if points < 35 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}

// TestAnchorLogENOSPC drives the log into a sticky ENOSPC with short
// writes mid-append and then clears it: failed appends must not corrupt
// the tail (the CRC frame seals each record), and once space returns the
// log resumes from an intact prefix.
func TestAnchorLogENOSPC(t *testing.T) {
	golden := faultfs.New(faultfs.NoFaults(1))
	if err := anchorWorkload(golden); err != nil {
		t.Fatalf("golden workload: %v", err)
	}
	n := golden.OpCount()
	stride := int64(1)
	if !harness.Full() {
		stride = 3
	}
	for op := int64(0); op < n; op += stride {
		plan := faultfs.NoFaults(1)
		plan.ENOSPCAtOp = op
		plan.ShortWrites = true
		plan.ENOSPCSticky = true
		fsys := faultfs.New(plan)
		_ = anchorWorkload(fsys) // ENOSPC-era appends may fail; that is the point
		fsys.ClearFaults()
		if err := verifyAnchors(fsys); err != nil {
			t.Fatalf("op %d: log unusable after ENOSPC cleared: %v", op, err)
		}
	}
}
