// Package earley implements an Earley recognizer for plain context-free
// grammars, with the Aycock–Horspool treatment of nullable nonterminals
// (when predicting a nullable B, the predicting item is also advanced over
// B). It is the generic-CFG baseline of Section 3.3: the paper's grammars
// G'(T,r) are highly ambiguous and almost every nonterminal is nullable
// (Theorem 3), which is exactly the regime where Earley parsing degrades —
// the point experiment X2 demonstrates. It also serves as the ground-truth
// oracle for potential validity via Theorem 1.
package earley

import (
	"fmt"

	"repro/internal/grammar"
)

// item is a dotted production with an origin position:
// lhs → rhs[0..dot) • rhs[dot..], started at chart column origin.
type item struct {
	lhs    string
	alt    int // index into prods[lhs]
	dot    int
	origin int
}

// Recognizer holds the preprocessed grammar.
type Recognizer struct {
	g        *grammar.CFG
	nullable map[string]bool
	// prods is a stable snapshot: lhs -> alternatives.
	prods map[string][][]string
}

// New preprocesses the grammar (nullable computation) for recognition.
func New(g *grammar.CFG) *Recognizer {
	r := &Recognizer{g: g, prods: g.Prods}
	r.nullable = computeNullable(g)
	return r
}

func computeNullable(g *grammar.CFG) map[string]bool {
	nullable := map[string]bool{}
	changed := true
	for changed {
		changed = false
		for lhs, alts := range g.Prods {
			if nullable[lhs] {
				continue
			}
			for _, rhs := range alts {
				all := true
				for _, sym := range rhs {
					if g.IsTerminal(sym) || !nullable[sym] {
						all = false
						break
					}
				}
				if all {
					nullable[lhs] = true
					changed = true
					break
				}
			}
		}
	}
	return nullable
}

// Nullable reports whether nonterminal nt derives ε — used by the
// Theorem 3 test.
func (r *Recognizer) Nullable(nt string) bool { return r.nullable[nt] }

// Stats holds work counters from a recognition run, used by the X2
// benchmark tables to report Earley effort alongside wall time.
type Stats struct {
	Items   int // total chart items created
	Columns int
}

// Recognize reports whether tokens ∈ L(g).
func (r *Recognizer) Recognize(tokens []string) bool {
	ok, _ := r.RecognizeStats(tokens)
	return ok
}

// RecognizeStats is Recognize with work counters.
func (r *Recognizer) RecognizeStats(tokens []string) (bool, Stats) {
	n := len(tokens)
	chart := make([][]item, n+1)
	// seen[k] dedupes items in column k.
	seen := make([]map[item]bool, n+1)
	for k := range seen {
		seen[k] = map[item]bool{}
	}
	var stats Stats
	stats.Columns = n + 1

	push := func(k int, it item) {
		if seen[k][it] {
			return
		}
		seen[k][it] = true
		chart[k] = append(chart[k], it)
		stats.Items++
	}

	for _, alt := range indices(r.prods[r.g.Start]) {
		push(0, item{lhs: r.g.Start, alt: alt, dot: 0, origin: 0})
	}

	for k := 0; k <= n; k++ {
		// Process column k to fixpoint (chart[k] grows during the loop).
		for i := 0; i < len(chart[k]); i++ {
			it := chart[k][i]
			rhs := r.prods[it.lhs][it.alt]
			if it.dot < len(rhs) {
				sym := rhs[it.dot]
				if r.g.IsTerminal(sym) {
					// Scanner.
					if k < n && tokens[k] == sym {
						push(k+1, item{lhs: it.lhs, alt: it.alt, dot: it.dot + 1, origin: it.origin})
					}
				} else {
					// Predictor.
					for _, alt := range indices(r.prods[sym]) {
						push(k, item{lhs: sym, alt: alt, dot: 0, origin: k})
					}
					// Aycock–Horspool nullable shortcut: if sym is
					// nullable, also advance over it immediately.
					if r.nullable[sym] {
						push(k, item{lhs: it.lhs, alt: it.alt, dot: it.dot + 1, origin: it.origin})
					}
				}
			} else {
				// Completer.
				for _, parent := range chart[it.origin] {
					prhs := r.prods[parent.lhs][parent.alt]
					if parent.dot < len(prhs) && prhs[parent.dot] == it.lhs {
						push(k, item{lhs: parent.lhs, alt: parent.alt, dot: parent.dot + 1, origin: parent.origin})
					}
				}
			}
		}
	}

	for _, it := range chart[n] {
		if it.lhs == r.g.Start && it.origin == 0 && it.dot == len(r.prods[r.g.Start][it.alt]) {
			return true, stats
		}
	}
	return false, stats
}

func indices(alts [][]string) []int {
	out := make([]int, len(alts))
	for i := range alts {
		out[i] = i
	}
	return out
}

// String renders an item for debugging.
func (r *Recognizer) itemString(it item) string {
	rhs := r.prods[it.lhs][it.alt]
	s := it.lhs + " ->"
	for i, sym := range rhs {
		if i == it.dot {
			s += " •"
		}
		s += " " + sym
	}
	if it.dot == len(rhs) {
		s += " •"
	}
	return fmt.Sprintf("[%s, %d]", s, it.origin)
}
