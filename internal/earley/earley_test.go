package earley

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/grammar"
)

func figure1CFG(t *testing.T, relaxed bool) *Recognizer {
	t.Helper()
	g, err := grammar.BuildECFG(dtd.MustParse(dtd.Figure1), "r", relaxed)
	if err != nil {
		t.Fatal(err)
	}
	return New(g.ToCFG())
}

func tokensOf(t *testing.T, src string) []string {
	t.Helper()
	root, err := dom.ParseRoot(src)
	if err != nil {
		t.Fatal(err)
	}
	return grammar.DeltaT(root)
}

func TestValidityGrammarG(t *testing.T) {
	r := figure1CFG(t, false)
	// The Figure 3 extension is valid, so δ_T(ext) ∈ L(G).
	ext := `<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`
	if !r.Recognize(tokensOf(t, ext)) {
		t.Error("valid extension must be in L(G)")
	}
	// Both Example 1 encodings are invalid, so outside L(G).
	for _, src := range []string{
		`<r><a><b>x</b><e></e><c>y</c> dog</a></r>`,
		`<r><a><b>x</b><c>y</c> dog<e></e></a></r>`,
	} {
		if r.Recognize(tokensOf(t, src)) {
			t.Errorf("invalid document in L(G): %s", src)
		}
	}
}

func TestPotentialValidityGrammarGPrime(t *testing.T) {
	// Theorem 1: w ∈ D*(T,r) ⇔ δ_T(w) ∈ L(G').
	r := figure1CFG(t, true)
	cases := []struct {
		src  string
		want bool
	}{
		{`<r><a><b>x</b><c>y</c> dog<e></e></a></r>`, true},  // s: PV
		{`<r><a><b>x</b><e></e><c>y</c> dog</a></r>`, false}, // w: not PV
		{`<r></r>`, true},
		{`<r><a></a></r>`, true},
		{`<r><a><e></e><e></e></a></r>`, true},
		{`<r><a><b><d></d></b><e></e><c>x</c></a></r>`, false},
	}
	for _, c := range cases {
		if got := r.Recognize(tokensOf(t, c.src)); got != c.want {
			t.Errorf("G' on %s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestTheorem3AllNullable(t *testing.T) {
	// Theorem 3: in G', every nonterminal derives ε.
	for _, src := range []string{dtd.Figure1, dtd.T1, dtd.T2, dtd.WeakRecursive, dtd.Play, dtd.Article} {
		d := dtd.MustParse(src)
		g, err := grammar.BuildECFG(d, d.Order[0], true)
		if err != nil {
			t.Fatal(err)
		}
		r := New(g.ToCFG())
		for _, x := range d.Order {
			for _, nt := range []string{"nt_" + x, "hat_" + x} {
				if !r.Nullable(nt) {
					t.Errorf("DTD %q: nonterminal %s is not nullable, violating Theorem 3", d.Order[0], nt)
				}
			}
		}
		if !r.Nullable("S") {
			t.Error("S must be nullable in G'")
		}
	}
}

func TestGNotAllNullable(t *testing.T) {
	// Sanity: in the strict grammar G the element nonterminals are NOT
	// nullable (tags are mandatory).
	g, _ := grammar.BuildECFG(dtd.MustParse(dtd.Figure1), "r", false)
	r := New(g.ToCFG())
	if r.Nullable("nt_r") {
		t.Error("nt_r must not be nullable in G")
	}
	if !r.Nullable("hat_e") {
		t.Error("hat_e (EMPTY content) is nullable even in G")
	}
}

func TestEmptyInputRelaxed(t *testing.T) {
	// ε ∈ L(G') (everything omitted) but ε ∉ L(G).
	if !figure1CFG(t, true).Recognize(nil) {
		t.Error("ε must be in L(G')")
	}
	if figure1CFG(t, false).Recognize(nil) {
		t.Error("ε must not be in L(G)")
	}
}

func TestStatsGrowth(t *testing.T) {
	r := figure1CFG(t, true)
	small := tokensOf(t, `<r><a><c>x</c><d></d></a></r>`)
	big := tokensOf(t, `<r><a><c>x</c><d></d></a><a><c>x</c><d></d></a><a><c>x</c><d></d></a></r>`)
	_, s1 := r.RecognizeStats(small)
	_, s2 := r.RecognizeStats(big)
	if s2.Items <= s1.Items {
		t.Errorf("chart items should grow with input: %d vs %d", s1.Items, s2.Items)
	}
	if s1.Columns != len(small)+1 {
		t.Errorf("columns = %d, want %d", s1.Columns, len(small)+1)
	}
}

func TestRejectsForeignTerminal(t *testing.T) {
	r := figure1CFG(t, true)
	if r.Recognize([]string{"<r>", "<zzz>", "</zzz>", "</r>"}) {
		t.Error("unknown terminals must reject")
	}
}
