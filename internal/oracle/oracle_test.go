package oracle

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
)

func TestSearchFindsExample2Extension(t *testing.T) {
	// Example 2: s extends to a valid document by inserting two <d>s.
	d := dtd.MustParse(dtd.Figure1)
	doc := dom.MustParse(`<r><a><b>A quick brown</b><c> fox</c> dog<e></e></a></r>`)
	res, witness := Search(d, "r", doc.Root, 2)
	if res != Yes {
		t.Fatal("expected an extension within 2 insertions")
	}
	// The witness preserves content and only adds markup.
	if witness.Content() != doc.Root.Content() {
		t.Errorf("content changed: %q", witness.Content())
	}
	if got := witness.String(); !strings.Contains(got, "<d>") {
		t.Errorf("expected <d> insertions, got %s", got)
	}
}

func TestSearchRejectsExample1W(t *testing.T) {
	// w has no extension at all; within any budget the search finds none.
	// (The budget is kept small — the BFS is exponential by design.)
	d := dtd.MustParse(dtd.Figure1)
	doc := dom.MustParse(`<r><a><b>x</b><e></e><c>y</c> z</a></r>`)
	res, _ := Search(d, "r", doc.Root, 2)
	if res != No {
		t.Error("w must have no valid extension")
	}
}

func TestSearchValidInputImmediate(t *testing.T) {
	d := dtd.MustParse(dtd.Figure1)
	doc := dom.MustParse(`<r><a><c>x</c><d></d></a></r>`)
	res, witness := Search(d, "r", doc.Root, 0)
	if res != Yes {
		t.Fatal("valid document needs zero insertions")
	}
	if !witness.Equal(doc.Root) {
		t.Error("witness should be the document itself")
	}
}

func TestSearchDoesNotMutateInput(t *testing.T) {
	d := dtd.MustParse(dtd.Figure1)
	doc := dom.MustParse(`<r><a><b>x</b></a></r>`)
	before := doc.Root.String()
	Search(d, "r", doc.Root, 2)
	if doc.Root.String() != before {
		t.Error("Search mutated its input")
	}
}

func TestExtensionsDefinition2(t *testing.T) {
	// Definition 2 base case: w ∈ Ext(w, T).
	d := dtd.MustParse(`<!ELEMENT a (b?)> <!ELEMENT b EMPTY>`)
	doc := dom.MustParse(`<a></a>`)
	ext0 := Extensions(d, doc.Root, 0)
	if len(ext0) != 1 || ext0[0] != `<a></a>` {
		t.Fatalf("Ext with 0 insertions = %v", ext0)
	}
	// One insertion: wrap the empty range in a or b, inside either element.
	ext1 := Extensions(d, doc.Root, 1)
	want := map[string]bool{
		`<a></a>`:        true,
		`<a><a></a></a>`: true,
		`<a><b></b></a>`: true,
	}
	if len(ext1) != len(want) {
		t.Fatalf("Ext1 = %v", ext1)
	}
	for _, e := range ext1 {
		if !want[e] {
			t.Errorf("unexpected extension %q", e)
		}
	}
	// Monotone growth.
	ext2 := Extensions(d, doc.Root, 2)
	if len(ext2) <= len(ext1) {
		t.Errorf("Ext2 (%d) should be larger than Ext1 (%d)", len(ext2), len(ext1))
	}
}

func TestExtensionsPreserveOrderAndContent(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b?)> <!ELEMENT b (#PCDATA)>`)
	doc := dom.MustParse(`<a>xy</a>`)
	for _, e := range Extensions(d, doc.Root, 2) {
		re, err := dom.Parse(e)
		if err != nil {
			t.Fatalf("extension %q does not parse: %v", e, err)
		}
		if got := re.Root.Content(); got != "xy" {
			t.Errorf("extension %q changed content to %q", e, got)
		}
	}
}
