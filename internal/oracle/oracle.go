// Package oracle implements Definitions 2 and 3 of the paper literally: a
// brute-force search over extension strings Ext(w, T) — all documents
// obtainable from w by inserting matching tag pairs — looking for a valid
// one. It is exponential and usable only on small instances; its purpose is
// to validate Theorem 1 (the grammar characterization) and the fast
// recognizer against the definition itself.
package oracle

import (
	"sort"

	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/validator"
)

// Result of a bounded search.
type Result int

const (
	// No: no valid extension exists within the insertion budget.
	No Result = iota
	// Yes: a valid extension was found.
	Yes
)

// Search looks for a valid extension of root using at most maxInsertions
// tag-pair insertions. If found, it returns Yes and one witness (a valid
// extension document). The search explores extension documents in BFS order
// over the number of insertions, deduplicating by serialized form.
//
// Completeness caveat: potential validity per Definition 3 quantifies over
// unboundedly many insertions; Search is therefore a semi-decision bounded
// by the budget. For the small fixtures in the test suite the Earley oracle
// (Theorem 1) provides the unbounded ground truth, and Search cross-checks
// it within the budget.
func Search(d *dtd.DTD, rootElem string, root *dom.Node, maxInsertions int) (Result, *dom.Node) {
	v, err := validator.New(d, rootElem)
	if err != nil {
		return No, nil
	}
	type state struct {
		doc  *dom.Node
		used int
	}
	start := root.Clone()
	if v.IsValid(start) {
		return Yes, start
	}
	seen := map[string]bool{start.String(): true}
	queue := []state{{doc: start, used: 0}}
	names := d.Names()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.used >= maxInsertions {
			continue
		}
		for _, next := range expand(cur.doc, names) {
			key := next.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			if v.IsValid(next) {
				return Yes, next
			}
			queue = append(queue, state{doc: next, used: cur.used + 1})
		}
	}
	return No, nil
}

// expand returns every document obtainable from doc by one insertion: for
// every element node p, every consecutive child range [i, j) (including
// empty ranges), and every declared element name δ, wrap the range in a new
// <δ> element (Definition 2's w1<δ>w2</δ>w3 with the well-formedness
// constraint that w2 is a balanced child range).
func expand(doc *dom.Node, names []string) []*dom.Node {
	var out []*dom.Node
	var targets []*dom.Node
	doc.Walk(func(n *dom.Node) bool {
		if n.Kind == dom.ElementNode {
			targets = append(targets, n)
		}
		return true
	})
	// Work on clones: identify nodes by their preorder element index.
	for t := range targets {
		nc := len(targets[t].Children)
		for i := 0; i <= nc; i++ {
			for j := i; j <= nc; j++ {
				for _, name := range names {
					c := doc.Clone()
					target := nthElement(c, t)
					target.WrapChildren(i, j, name)
					out = append(out, c)
				}
			}
		}
	}
	return out
}

func nthElement(root *dom.Node, idx int) *dom.Node {
	var found *dom.Node
	i := 0
	root.Walk(func(n *dom.Node) bool {
		if found != nil {
			return false
		}
		if n.Kind == dom.ElementNode {
			if i == idx {
				found = n
				return false
			}
			i++
		}
		return true
	})
	return found
}

// Extensions enumerates the distinct serialized members of Ext(w, T)
// reachable with at most k insertions, in sorted order — a direct,
// finite-slice rendering of Definition 2 for tests.
func Extensions(d *dtd.DTD, root *dom.Node, k int) []string {
	names := d.Names()
	seen := map[string]bool{root.String(): true}
	frontier := []*dom.Node{root.Clone()}
	for step := 0; step < k; step++ {
		var next []*dom.Node
		for _, doc := range frontier {
			for _, e := range expand(doc, names) {
				key := e.String()
				if !seen[key] {
					seen[key] = true
					next = append(next, e)
				}
			}
		}
		frontier = next
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
