// Package diff turns a completion into a structured, serializable record:
// which elements the completer inserted (as path/position/name records
// locating each insertion in the completed document) plus the completed
// document's serialization. A diff describes the outcome of the paper's
// constructive completion (Definition 3); the records pinpoint every
// inserted element for review and tooling. They are not a self-contained
// replayable edit script — a wrapper insertion does not carry the span of
// pre-existing children it absorbed (an applicable patch format is listed
// as ROADMAP future work).
package diff

import (
	"fmt"
	"strings"

	"repro/internal/dom"
)

// Insertion records one inserted element in the completed document.
type Insertion struct {
	// Path addresses the inserted element's parent in the completed
	// document: "/" for the root's parent, otherwise segments of the form
	// name[i] where i is the index among same-name element siblings, e.g.
	// "/play/act[0]/scene[1]". Paths may traverse other inserted elements;
	// records are emitted in document order, so replaying them in order is
	// well defined.
	Path string `json:"path"`
	// Index is the child slot (among all child nodes of the parent in the
	// completed document) at which the element sits.
	Index int `json:"index"`
	// Name is the inserted element's name.
	Name string `json:"name"`
	// Synthesized reports that the element's whole subtree was invented by
	// the completer (an empty wrapper or a minimal valid instance), as
	// opposed to a wrapper around pre-existing content.
	Synthesized bool `json:"synthesized,omitempty"`
}

// String renders the record as "+<name> at path[index]".
func (i Insertion) String() string {
	return fmt.Sprintf("+<%s> at %s[%d]", i.Name, i.Path, i.Index)
}

// Diff is the structured outcome of one completion.
type Diff struct {
	// Inserted is the number of elements the completion added; zero means
	// the document was already valid.
	Inserted int `json:"inserted"`
	// Insertions lists the inserted elements in document order of the
	// completed document.
	Insertions []Insertion `json:"insertions,omitempty"`
	// Completed is the completed document's serialization.
	Completed string `json:"completed"`
}

// Compute builds the Diff for a completed tree and the inserted element
// nodes reported by the completer (nodes of that same tree). The
// serialization is the completed root's; callers holding a full document
// (prolog/epilog nodes outside the root) should use ComputeDoc with the
// document-level rendering instead. Insertion records come out in
// document order regardless of the completer's creation order.
func Compute(completed *dom.Node, inserted []*dom.Node) *Diff {
	return ComputeDoc(completed, inserted, completed.String())
}

// ComputeDoc is Compute with a caller-supplied serialization of the
// completed document — typically dom.Document.String(), which preserves
// prolog and epilog comment/PI nodes that live outside the root element.
func ComputeDoc(completed *dom.Node, inserted []*dom.Node, serialized string) *Diff {
	d := &Diff{
		Inserted:  len(inserted),
		Completed: serialized,
	}
	if len(inserted) == 0 {
		return d
	}
	set := make(map[*dom.Node]bool, len(inserted))
	for _, n := range inserted {
		set[n] = true
	}
	d.Insertions = Records(completed, set)
	return d
}

// Records walks the completed tree in document order and emits one
// Insertion per element in the inserted set. An element all of whose
// descendant elements are themselves inserted (and which holds no text) is
// marked Synthesized.
func Records(completed *dom.Node, inserted map[*dom.Node]bool) []Insertion {
	var out []Insertion
	var walk func(n *dom.Node, path string)
	walk = func(n *dom.Node, path string) {
		// Count same-name element occurrences to build child segments.
		nameSeen := map[string]int{}
		for idx, ch := range n.Children {
			if ch.Kind != dom.ElementNode {
				continue
			}
			occ := nameSeen[ch.Name]
			nameSeen[ch.Name]++
			if inserted[ch] {
				out = append(out, Insertion{
					Path:        path,
					Index:       idx,
					Name:        ch.Name,
					Synthesized: synthesized(ch, inserted),
				})
			}
			childPath := fmt.Sprintf("%s/%s[%d]", strings.TrimSuffix(path, "/"), ch.Name, occ)
			walk(ch, childPath)
		}
	}
	if inserted[completed] {
		out = append(out, Insertion{
			Path:        "/",
			Index:       0,
			Name:        completed.Name,
			Synthesized: synthesized(completed, inserted),
		})
	}
	walk(completed, "/"+completed.Name)
	return out
}

// synthesized reports whether n's entire subtree was invented: every
// descendant element is inserted and no text rides inside.
func synthesized(n *dom.Node, inserted map[*dom.Node]bool) bool {
	ok := true
	n.Walk(func(x *dom.Node) bool {
		switch {
		case x.Kind == dom.ElementNode && !inserted[x]:
			ok = false
		case x.Kind == dom.TextNode && x.Data != "":
			ok = false
		}
		return ok
	})
	return ok
}

// Summary renders the diff as human-readable lines: one per insertion,
// prefixed by the total. Empty diff summarizes as "already valid".
func (d *Diff) Summary() string {
	if d.Inserted == 0 {
		return "already valid (0 insertions)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d insertion(s):\n", d.Inserted)
	for _, ins := range d.Insertions {
		fmt.Fprintf(&b, "  %s\n", ins)
	}
	return b.String()
}
