package diff

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/complete"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
)

// exampleS is the paper's running example s (Figure 3 completes it with two
// <d> insertions).
const exampleS = `<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`

func completeTracked(t *testing.T, dtdSrc, root, xml string) (*dom.Node, []*dom.Node, *core.Schema) {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	schema := core.MustCompile(d, root, core.Options{})
	doc, err := dom.Parse(xml)
	if err != nil {
		t.Fatal(err)
	}
	out, nodes, err := complete.New(schema).CompleteTracked(doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	return out, nodes, schema
}

func TestComputeFigure3(t *testing.T) {
	out, nodes, _ := completeTracked(t, dtd.Figure1, "r", exampleS)
	d := Compute(out, nodes)
	if d.Inserted != 2 || len(d.Insertions) != 2 {
		t.Fatalf("diff: %+v", d)
	}
	if d.Completed != out.String() {
		t.Error("Completed must be the completed tree's serialization")
	}
	// Figure 3: one <d> inside <b>, one <d> inside <a>; document order puts
	// the <b> interior first.
	first, second := d.Insertions[0], d.Insertions[1]
	if first.Name != "d" || first.Path != "/r/a[0]/b[0]" || first.Index != 0 {
		t.Errorf("first insertion: %+v", first)
	}
	if second.Name != "d" || second.Path != "/r/a[0]" {
		t.Errorf("second insertion: %+v", second)
	}
	if first.Synthesized || second.Synthesized {
		t.Errorf("both <d>s wrap pre-existing content: %+v %+v", first, second)
	}
	// The records address real nodes: resolve each path+index and confirm
	// name match.
	for _, ins := range d.Insertions {
		parent := resolve(t, out, ins.Path)
		if parent == nil || ins.Index >= len(parent.Children) {
			t.Fatalf("unresolvable insertion %+v", ins)
		}
		got := parent.Children[ins.Index]
		if got.Kind != dom.ElementNode || got.Name != ins.Name {
			t.Errorf("insertion %+v resolves to %v <%s>", ins, got.Kind, got.Name)
		}
	}
}

// resolve walks a /name[i] path to the named node.
func resolve(t *testing.T, root *dom.Node, path string) *dom.Node {
	t.Helper()
	segs := strings.Split(strings.Trim(path, "/"), "/")
	if len(segs) == 0 || segs[0] == "" {
		return root
	}
	if want := segs[0]; want != root.Name {
		t.Fatalf("path %q does not start at root <%s>", path, root.Name)
	}
	cur := root
	for _, seg := range segs[1:] {
		name := seg
		occ := 0
		if i := strings.IndexByte(seg, '['); i >= 0 {
			name = seg[:i]
			n, err := strconv.Atoi(strings.TrimSuffix(seg[i+1:], "]"))
			if err != nil {
				t.Fatalf("bad segment %q: %v", seg, err)
			}
			occ = n
		}
		var next *dom.Node
		seen := 0
		for _, ch := range cur.Children {
			if ch.Kind == dom.ElementNode && ch.Name == name {
				if seen == occ {
					next = ch
					break
				}
				seen++
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

func TestComputeAlreadyValid(t *testing.T) {
	valid := `<r><a><c>x</c><d></d></a></r>`
	out, nodes, _ := completeTracked(t, dtd.Figure1, "r", valid)
	d := Compute(out, nodes)
	if d.Inserted != 0 || len(d.Insertions) != 0 {
		t.Fatalf("valid document produced insertions: %+v", d)
	}
	if d.Completed != valid {
		t.Errorf("Completed = %q, want input unchanged", d.Completed)
	}
	if !strings.Contains(d.Summary(), "already valid") {
		t.Errorf("summary: %q", d.Summary())
	}
}

func TestSynthesizedMinimalInstance(t *testing.T) {
	// Model forces a mandatory <c>(c,e) style subtree out of thin air:
	// <a></a> under (b), b EMPTY is trivial; use Figure1's f = (c, e) with a
	// doc missing everything: <r><a><c>x</c></a></r> needs a <d> appended.
	out, nodes, _ := completeTracked(t, dtd.Figure1, "r", `<r><a><c>x</c></a></r>`)
	d := Compute(out, nodes)
	if d.Inserted == 0 {
		t.Fatal("expected insertions")
	}
	for _, ins := range d.Insertions {
		if !ins.Synthesized {
			t.Errorf("insertion %+v hosts no original content; want Synthesized", ins)
		}
	}
}

func TestDiffJSONShape(t *testing.T) {
	out, nodes, _ := completeTracked(t, dtd.Figure1, "r", exampleS)
	d := Compute(out, nodes)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"inserted":2`, `"insertions":[`, `"path":"/r/a[0]/b[0]"`, `"completed":"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON missing %s: %s", want, b)
		}
	}
}
