package jobs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/faultfs/harness"
	"repro/internal/jobs/walstore"
)

// The end-to-end crash matrix: a whole manager lifecycle — submit, run to
// completion, remove, cancel mid-run, shutdown — over a WAL store whose
// filesystem crashes at every operation. The WAL lives on the fault
// filesystem; result spill files live on the real one (the manager writes
// them through package os), which splits the failure like a real machine
// crash splits it: the log loses its unsynced tail, the results directory
// keeps whatever the dead process wrote.
//
// The invariants, per job the original Submit acked:
//   - never-removed, never-canceled: the restarted manager drives it to
//     Done with results byte-equal to an uninterrupted run — whether it
//     replays as finished, resumes from a chunk boundary, or re-runs.
//   - removed: absent (the Removed record was durable) or resurrected
//     into SOME terminal state; if Done, results are complete.
//   - canceled: terminal; a lost cancel record legally re-runs to Done
//     (full results), a durable one re-serves Canceled.
//
// Jobs the Submit call rejected may still resurrect (the record can be
// durable even when the ack was not delivered) — ghosts are legal and the
// verifier simply ignores ids it never acked.

// crashRound tracks what the workload's manager acknowledged, so the
// verifier knows which invariants each job owes.
type crashRound struct {
	spillDir string // real filesystem: survives the simulated crash
	doneID   string // ran to completion, never touched again
	removeID string // completed, then Remove acked true
	cancelID string // canceled between its first and second chunk
}

func (c *crashRound) workload(fsys *faultfs.FaultFS) error {
	st, err := walstore.Open("jobdb", walstore.Options{FS: fsys})
	if err != nil {
		return err
	}
	m := NewManager(Config{Workers: 2, Chunk: 4, SpillDir: c.spillDir, Store: st})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer m.Shutdown(ctx)

	// Job 1: a full clean lifecycle, final chunk partial (total 10, chunk 4).
	j1, err := m.Submit("check", 10, []byte("crash-payload-1"), func(lo, hi int) ([][]byte, error) {
		return mkLines(lo, hi), nil
	})
	if err != nil {
		return err
	}
	c.doneID = j1.ID()
	<-j1.Done()

	// Job 2: completes, then is removed — its log history retires and its
	// results file is deleted.
	j2, err := m.Submit("check", 8, []byte("crash-payload-2"), func(lo, hi int) ([][]byte, error) {
		return mkLines(lo, hi), nil
	})
	if err != nil {
		return err
	}
	<-j2.Done()
	if m.Remove(j2.ID()) {
		c.removeID = j2.ID()
	}

	// Job 3: canceled between chunk one and chunk two. The runner parks
	// inside chunk two until the cancel flag is set, so the between-chunks
	// check after it sees the cancellation deterministically... except the
	// check runs BEFORE each chunk: parking in chunk one's call and
	// canceling there means chunk two's pre-check fires. Results keep the
	// first chunk's four lines.
	started := make(chan struct{})
	proceed := make(chan struct{})
	defer func() {
		// A crash can strand the choreography; unblock the runner so
		// Shutdown's drain never hangs.
		select {
		case <-proceed:
		default:
			close(proceed)
		}
	}()
	j3, err := m.Submit("check", 12, []byte("crash-payload-3"), func(lo, hi int) ([][]byte, error) {
		if lo == 0 {
			close(started)
			<-proceed
		}
		return mkLines(lo, hi), nil
	})
	if err != nil {
		return err
	}
	c.cancelID = j3.ID()
	<-started
	j3.Cancel()
	close(proceed)
	<-j3.Done()

	return m.Shutdown(ctx)
}

// waitTerminal blocks until the job is terminal, bounded; it returns an
// error (not a Fatal) so the harness can print the crash-point repro.
func waitTerminal(j *Job) error {
	select {
	case <-j.Done():
		return nil
	case <-time.After(15 * time.Second):
		return fmt.Errorf("job %s stuck in state %s after recovery", j.ID(), j.State())
	}
}

func (c *crashRound) verify(fsys *faultfs.FaultFS) error {
	st, err := walstore.Open("jobdb", walstore.Options{FS: fsys})
	if err != nil {
		return fmt.Errorf("reopening WAL after crash: %w", err)
	}
	m := NewManager(Config{Workers: 2, Chunk: 4, SpillDir: c.spillDir, Store: st})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer m.Shutdown(ctx)
	res := &resolveReal{}
	if _, err := m.Recover(res.resolve); err != nil {
		return fmt.Errorf("Recover after crash: %w", err)
	}
	type want struct {
		id, label string
		total     int
		removed   bool
		canceled  bool
	}
	checks := []want{
		{id: c.doneID, label: "completed", total: 10},
		{id: c.removeID, label: "removed", total: 8, removed: true},
		{id: c.cancelID, label: "canceled", total: 12, canceled: true},
	}
	for _, w := range checks {
		if w.id == "" {
			continue // the crash landed before this job was acked
		}
		j, ok := m.Get(w.id)
		if !ok {
			if w.removed {
				continue // the Removed record was durable: correctly gone
			}
			return fmt.Errorf("%s job %s lost: acked submission did not replay", w.label, w.id)
		}
		if err := waitTerminal(j); err != nil {
			return err
		}
		state := j.State()
		switch {
		case w.removed, w.canceled:
			// Resurrected removed jobs and cancel records lost to the crash
			// may legally land anywhere terminal; a Done verdict must still
			// be backed by complete results.
			if !state.Finished() {
				return fmt.Errorf("%s job %s recovered non-terminal: %s", w.label, w.id, state)
			}
			if state == Done {
				if got := readResultsErr(j); got != expectedResults(w.total) {
					return fmt.Errorf("%s job %s done with wrong results (%d bytes, want %d)",
						w.label, w.id, len(got), len(expectedResults(w.total)))
				}
			}
		default:
			if state != Done {
				return fmt.Errorf("%s job %s recovered to %s (%s), want done",
					w.label, w.id, state, j.Info().Error)
			}
			if got := readResultsErr(j); got != expectedResults(w.total) {
				return fmt.Errorf("%s job %s results diverged after recovery: %d bytes, want %d",
					w.label, w.id, len(got), len(expectedResults(w.total)))
			}
		}
	}
	return nil
}

// readResultsErr drains a job's results, folding a read error into a
// never-matching sentinel (the caller compares against expected bytes).
func readResultsErr(j *Job) string {
	var buf []byte
	w := writerFunc(func(p []byte) (int, error) { buf = append(buf, p...); return len(p), nil })
	if _, err := j.WriteResults(w); err != nil {
		return "results unreadable: " + err.Error()
	}
	return string(buf)
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func managerRound(t *testing.T) func() harness.Round {
	return func() harness.Round {
		c := &crashRound{spillDir: t.TempDir()}
		return harness.Round{Workload: c.workload, Verify: c.verify}
	}
}

// TestCrashMatrixManagerLifecycle crashes the WAL filesystem under a full
// manager lifecycle at every operation and asserts the recovered manager
// honors every acked submission.
func TestCrashMatrixManagerLifecycle(t *testing.T) {
	points := harness.Matrix(t, harness.Options{Package: "./internal/jobs"}, managerRound(t))
	t.Logf("crash points exercised: %d", points)
	if points < 60 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}

// TestCrashMatrixManagerDropUnsyncedDirs is the same lifecycle under
// maximally adversarial directory recovery: any dir entry not pinned by
// an fsync of its parent is dropped.
func TestCrashMatrixManagerDropUnsyncedDirs(t *testing.T) {
	points := harness.Matrix(t, harness.Options{
		Package:          "./internal/jobs",
		DropUnsyncedDirs: true,
	}, managerRound(t))
	t.Logf("crash points exercised: %d", points)
	if points < 60 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}
