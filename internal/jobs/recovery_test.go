package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs/jobstore"
	"repro/internal/jobs/walstore"
)

// The crash-recovery suite: each test "kills" a manager at a specific
// point in a job's life — between the WAL append and the first chunk,
// mid-job, and post-completion — by simply abandoning it (a killed
// process calls nothing) and opening a fresh store + manager over the
// same directory, exactly as a restarted pvserve would. The invariants
// pinned here: an interrupted job reaches a terminal state on the new
// manager instead of being lost, a resumed job's results are byte-equal
// to an uninterrupted run's, and a finished job is re-served verbatim.

// openWAL opens the write-ahead store rooted at dir. NoLock: these tests
// simulate a killed process by abandoning a live manager, so the
// "crashed" predecessor still holds its store open and the single-writer
// flock (pinned by the walstore tests) would refuse the successor.
func openWAL(t *testing.T, dir string) *walstore.Store {
	t.Helper()
	st, err := walstore.Open(dir, walstore.Options{NoLock: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// durableManager builds a manager over a fresh WAL store rooted at dir.
func durableManager(t *testing.T, dir string, chunk int) *Manager {
	t.Helper()
	return NewManager(Config{Workers: 1, Chunk: chunk, SpillDir: dir, Store: openWAL(t, dir)})
}

// mkLines is the deterministic result generator shared by original runs,
// resumed runs and expectations: one "doc-<index>" line per input.
func mkLines(lo, hi int) [][]byte {
	lines := make([][]byte, 0, hi-lo)
	for i := lo; i < hi; i++ {
		lines = append(lines, []byte(fmt.Sprintf("doc-%04d", i)))
	}
	return lines
}

// expectedResults is the full uninterrupted output for total inputs.
func expectedResults(total int) string {
	var b strings.Builder
	for i := 0; i < total; i++ {
		fmt.Fprintf(&b, "doc-%04d\n", i)
	}
	return b.String()
}

// resolveReal is a RunnerResolver producing the real (deterministic)
// runner, recording the submission it saw and the chunk offsets it runs.
type resolveReal struct {
	mu   sync.Mutex
	subs []Submission
	los  []int
}

func (r *resolveReal) resolve(sub Submission) (Runner, error) {
	r.mu.Lock()
	r.subs = append(r.subs, sub)
	r.mu.Unlock()
	return func(lo, hi int) ([][]byte, error) {
		r.mu.Lock()
		r.los = append(r.los, lo)
		r.mu.Unlock()
		return mkLines(lo, hi), nil
	}, nil
}

func readResults(t *testing.T, j *Job) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := j.WriteResults(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRecoverBeforeFirstChunk kills the manager after the write-ahead
// append but before any chunk ran: the new manager must re-run the job
// from scratch.
func TestRecoverBeforeFirstChunk(t *testing.T) {
	dir := t.TempDir()
	m1 := durableManager(t, dir, 4)
	gate := make(chan struct{})
	defer func() { close(gate); m1.Close() }()
	j1, err := m1.Submit("check", 10, []byte("payload-1"), func(lo, hi int) ([][]byte, error) {
		<-gate // the "crash" lands before the first chunk produces anything
		return nil, errors.New("aborted by test")
	})
	if err != nil {
		t.Fatal(err)
	}
	// The restarted process: same directory, fresh store and manager.
	m2 := durableManager(t, dir, 4)
	defer m2.Close()
	res := &resolveReal{}
	stats, err := m2.Recover(res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 1 || stats.Resumed != 0 || stats.Served != 0 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if len(res.subs) != 1 || res.subs[0].ID != j1.ID() || res.subs[0].Kind != "check" ||
		res.subs[0].Total != 10 || res.subs[0].Chunk != 4 || string(res.subs[0].Payload) != "payload-1" {
		t.Fatalf("resolver saw %+v", res.subs)
	}
	j2, ok := m2.Get(j1.ID())
	if !ok {
		t.Fatal("recovered job not retained under its original id")
	}
	if !j2.Recovered() || !j2.Info().Recovered {
		t.Fatal("recovered job not annotated as recovered")
	}
	waitDone(t, j2)
	if st := j2.State(); st != Done {
		t.Fatalf("recovered job state = %v", st)
	}
	if got := readResults(t, j2); got != expectedResults(10) {
		t.Fatalf("recovered results differ:\n%q\nwant\n%q", got, expectedResults(10))
	}
}

// TestRecoverMidJobResumes kills the manager after the first chunk's
// progress record went durable: the new manager must resume from the
// chunk boundary — never re-running durable chunks — and the final
// results must be byte-equal to an uninterrupted run.
func TestRecoverMidJobResumes(t *testing.T) {
	dir := t.TempDir()
	m1 := durableManager(t, dir, 4)
	gate := make(chan struct{})
	defer func() { close(gate); m1.Close() }()
	j1, err := m1.Submit("check", 10, []byte("payload-1"), func(lo, hi int) ([][]byte, error) {
		if lo >= 4 {
			<-gate // the "crash" lands mid-job, after chunk [0,4) is durable
			return nil, errors.New("aborted by test")
		}
		return mkLines(lo, hi), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first chunk's progress to commit before "crashing".
	deadline := time.Now().Add(10 * time.Second)
	for j1.Info().Done < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("first chunk never completed: %+v", j1.Info())
		}
		time.Sleep(time.Millisecond)
	}
	m2 := durableManager(t, dir, 4)
	defer m2.Close()
	res := &resolveReal{}
	stats, err := m2.Recover(res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 1 || stats.Resumed != 1 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	j2, ok := m2.Get(j1.ID())
	if !ok {
		t.Fatal("recovered job not retained")
	}
	waitDone(t, j2)
	if st := j2.State(); st != Done {
		t.Fatalf("resumed job state = %v (%+v)", st, j2.Info())
	}
	res.mu.Lock()
	los := append([]int(nil), res.los...)
	res.mu.Unlock()
	for _, lo := range los {
		if lo < 4 {
			t.Fatalf("resumed run re-ran durable chunk at offset %d (offsets %v)", lo, los)
		}
	}
	if got := readResults(t, j2); got != expectedResults(10) {
		t.Fatalf("resumed results not byte-equal:\n%q\nwant\n%q", got, expectedResults(10))
	}
	if info := j2.Info(); info.Done != 10 || !info.Recovered {
		t.Fatalf("resumed info = %+v", info)
	}
}

// TestRecoverFinishedJobIsReserved kills the process after completion:
// the new manager must serve the job's state and byte-identical results
// without ever resolving a runner.
func TestRecoverFinishedJobIsReserved(t *testing.T) {
	dir := t.TempDir()
	m1 := durableManager(t, dir, 4)
	j1, err := m1.Submit("check", 10, []byte("payload-1"), func(lo, hi int) ([][]byte, error) {
		return mkLines(lo, hi), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	want := readResults(t, j1)
	if want != expectedResults(10) {
		t.Fatalf("original results wrong: %q", want)
	}
	// Graceful path this time: Shutdown drains and releases the store.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	m2 := durableManager(t, dir, 4)
	defer m2.Close()
	stats, err := m2.Recover(func(sub Submission) (Runner, error) {
		t.Errorf("resolver called for finished job %s", sub.ID)
		return nil, errors.New("must not run")
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != 1 || stats.Requeued != 0 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	j2, ok := m2.Get(j1.ID())
	if !ok {
		t.Fatal("finished job not re-served")
	}
	select {
	case <-j2.Done():
	default:
		t.Fatal("re-served finished job's Done channel is open")
	}
	info := j2.Info()
	if info.State != "done" || info.Done != 10 || !info.Recovered {
		t.Fatalf("re-served info = %+v", info)
	}
	if got := readResults(t, j2); got != want {
		t.Fatalf("re-served results not byte-equal:\n%q\nwant\n%q", got, want)
	}
	// Removing the re-served job retires its history: a third incarnation
	// recovers nothing.
	if !m2.Remove(j2.ID()) {
		t.Fatal("Remove failed on re-served job")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := m2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	m3 := durableManager(t, dir, 4)
	defer m3.Close()
	stats3, err := m3.Recover(func(sub Submission) (Runner, error) { return nil, errors.New("no") })
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Total() != 0 {
		t.Fatalf("removed job came back: %+v", stats3)
	}
}

// TestRecoverUnresolvableJobFails pins the degraded path: when the
// resolver cannot rebuild a runner, the job lands terminal-failed (not
// lost), the verdict is persisted, and the next incarnation serves the
// failure without re-resolving.
func TestRecoverUnresolvableJobFails(t *testing.T) {
	dir := t.TempDir()
	m1 := durableManager(t, dir, 4)
	gate := make(chan struct{})
	defer func() { close(gate); m1.Close() }()
	j1, err := m1.Submit("check", 10, nil, func(lo, hi int) ([][]byte, error) {
		<-gate
		return nil, errors.New("aborted by test")
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := durableManager(t, dir, 4)
	stats, err := m2.Recover(func(sub Submission) (Runner, error) {
		return nil, errors.New("schema evaporated")
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || stats.Requeued != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	j2, ok := m2.Get(j1.ID())
	if !ok {
		t.Fatal("unresolvable job was lost")
	}
	info := j2.Info()
	if info.State != "failed" || !strings.Contains(info.Error, "schema evaporated") {
		t.Fatalf("unresolvable job info = %+v", info)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	m3 := durableManager(t, dir, 4)
	defer m3.Close()
	stats3, err := m3.Recover(func(sub Submission) (Runner, error) {
		t.Errorf("resolver re-invoked for terminally failed job %s", sub.ID)
		return nil, errors.New("no")
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Served != 1 || stats3.Failed != 0 {
		t.Fatalf("third incarnation stats = %+v", stats3)
	}
}

// seedInterruptedAtFinalChunk fabricates the WAL of a process killed
// after the final chunk's progress record went durable but before the
// terminal record: total 10, chunk 4, so the last record (done=10) is NOT
// chunk-aligned. withResults controls whether the write-through results
// file (which covers all 10 inputs) survives too. Returns the job id.
func seedInterruptedAtFinalChunk(t *testing.T, dir string, withResults bool) string {
	t.Helper()
	const id = "0123456789abcdef"
	if withResults {
		if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "results", id+".ndjson"), []byte(expectedResults(10)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st := openWAL(t, dir)
	bytesAt := func(n int) int64 { return int64(len(expectedResults(n))) }
	for _, ev := range []jobstore.Event{
		{Type: jobstore.Submitted, Job: id, Time: time.Now(), Kind: "check", Total: 10, Chunk: 4, Payload: []byte("payload-1")},
		{Type: jobstore.Started, Job: id},
		{Type: jobstore.Progress, Job: id, Done: 4, ResultBytes: bytesAt(4)},
		{Type: jobstore.Progress, Job: id, Done: 8, ResultBytes: bytesAt(8)},
		{Type: jobstore.Progress, Job: id, Done: 10, ResultBytes: bytesAt(10)},
	} {
		ev := ev
		if err := st.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestRecoverFinalPartialChunkServesDone pins the crash window between
// the final partial chunk's progress record and the terminal record: the
// results file already covers every input, so the recovered job must be
// finalized done and served verbatim — re-queueing it from the last
// aligned boundary would re-run chunk [8,10) and append duplicate result
// lines while still reporting state=done.
func TestRecoverFinalPartialChunkServesDone(t *testing.T) {
	dir := t.TempDir()
	id := seedInterruptedAtFinalChunk(t, dir, true)
	m := durableManager(t, dir, 4)
	res := &resolveReal{}
	stats, err := m.Recover(res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != 1 || stats.Requeued != 0 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	j, ok := m.Get(id)
	if !ok {
		t.Fatal("job not recovered")
	}
	if st := j.State(); st != Done {
		t.Fatalf("recovered job state = %v (%+v)", st, j.Info())
	}
	if got := readResults(t, j); got != expectedResults(10) {
		t.Fatalf("recovered results not byte-equal (duplicated final chunk?):\n%q\nwant\n%q", got, expectedResults(10))
	}
	if info := j.Info(); info.Done != 10 || !info.Recovered {
		t.Fatalf("recovered info = %+v", info)
	}
	res.mu.Lock()
	ran := len(res.los)
	res.mu.Unlock()
	if ran != 0 {
		t.Fatalf("completed job re-ran chunks at offsets %v", res.los)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The synthesized terminal record went durable: the next incarnation
	// replays a finished job outright, byte-equal again.
	m2 := durableManager(t, dir, 4)
	defer m2.Close()
	stats2, err := m2.Recover(func(sub Submission) (Runner, error) {
		t.Errorf("resolver called for finalized job %s", sub.ID)
		return nil, errors.New("must not run")
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Served != 1 || stats2.Requeued != 0 {
		t.Fatalf("second recovery stats = %+v", stats2)
	}
	j2, ok := m2.Get(id)
	if !ok {
		t.Fatal("finalized job not re-served")
	}
	if got := readResults(t, j2); got != expectedResults(10) {
		t.Fatalf("re-served results not byte-equal: %q", got)
	}
}

// TestRecoverFinalPartialChunkWithoutResultsReruns is the degraded twin:
// same crash window, but the write-through results file did not survive.
// With nothing to serve, the job must re-run from input zero (the
// non-aligned final record is not a resume point) and still converge to
// done with byte-equal results.
func TestRecoverFinalPartialChunkWithoutResultsReruns(t *testing.T) {
	dir := t.TempDir()
	id := seedInterruptedAtFinalChunk(t, dir, false)
	m := durableManager(t, dir, 4)
	defer m.Close()
	res := &resolveReal{}
	stats, err := m.Recover(res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 1 || stats.Resumed != 0 || stats.Served != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	j, ok := m.Get(id)
	if !ok {
		t.Fatal("job not recovered")
	}
	waitDone(t, j)
	if st := j.State(); st != Done {
		t.Fatalf("re-run job state = %v (%+v)", st, j.Info())
	}
	if got := readResults(t, j); got != expectedResults(10) {
		t.Fatalf("re-run results not byte-equal:\n%q\nwant\n%q", got, expectedResults(10))
	}
	res.mu.Lock()
	los := append([]int(nil), res.los...)
	res.mu.Unlock()
	if len(los) == 0 || los[0] != 0 {
		t.Fatalf("re-run did not restart from zero: offsets %v", los)
	}
}

// TestSweepWaitsForRecover pins the sweep gate: a manager that starts
// without a Recover pass (a library user submitting directly) must not
// delete prior jobs' write-through results — the WAL still retains their
// histories, and sweeping the files would degrade those jobs to failed
// ("recovered results incomplete") on the next Recover.
func TestSweepWaitsForRecover(t *testing.T) {
	dir := t.TempDir()
	m1 := durableManager(t, dir, 4)
	j1, err := m1.Submit("check", 8, nil, func(lo, hi int) ([][]byte, error) { return mkLines(lo, hi), nil })
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resultsFile := filepath.Join(dir, "results", j1.ID()+".ndjson")
	if _, err := os.Stat(resultsFile); err != nil {
		t.Fatalf("finished job's write-through results missing: %v", err)
	}
	// Second incarnation skips Recover and submits directly.
	m2 := durableManager(t, dir, 4)
	j2, err := m2.Submit("check", 4, nil, func(lo, hi int) ([][]byte, error) { return mkLines(lo, hi), nil })
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if _, err := os.Stat(resultsFile); err != nil {
		t.Fatalf("no-Recover manager swept a prior job's results: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := m2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	// The incarnation that does recover serves both finished jobs intact.
	m3 := durableManager(t, dir, 4)
	defer m3.Close()
	stats, err := m3.Recover(func(sub Submission) (Runner, error) {
		t.Errorf("resolver called for finished job %s", sub.ID)
		return nil, errors.New("must not run")
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != 2 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	jr, ok := m3.Get(j1.ID())
	if !ok {
		t.Fatal("prior job lost")
	}
	if info := jr.Info(); info.State != "done" {
		t.Fatalf("prior job degraded: %+v", info)
	}
	if got := readResults(t, jr); got != expectedResults(8) {
		t.Fatalf("prior job results not byte-equal: %q", got)
	}
}

// TestRecoverAfterSubmitRejected pins the ordering contract: replay on a
// manager that already accepted work is refused.
func TestRecoverAfterSubmitRejected(t *testing.T) {
	dir := t.TempDir()
	m := durableManager(t, dir, 4)
	defer m.Close()
	j, err := m.Submit("check", 1, nil, func(lo, hi int) ([][]byte, error) { return mkLines(lo, hi), nil })
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if _, err := m.Recover(func(sub Submission) (Runner, error) { return nil, nil }); err != ErrRecoverAfterStart {
		t.Fatalf("Recover after Submit = %v, want ErrRecoverAfterStart", err)
	}
}

// TestShutdownDrains pins the graceful-shutdown contract: Shutdown waits
// for the running job to finalize, then releases the store; a context
// that expires first returns ctx.Err() without wedging.
func TestShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	st := openWAL(t, dir)
	m := NewManager(Config{Workers: 1, Chunk: 4, SpillDir: dir, Store: st})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	j, err := m.Submit("check", 4, nil, func(lo, hi int) ([][]byte, error) {
		once.Do(func() { close(started) })
		<-release
		return mkLines(lo, hi), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is inside the chunk; the drain must block on it
	// Expired context: Shutdown reports the deadline, the drain continues.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with blocked job = %v, want deadline exceeded", err)
	}
	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := m.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	// The store must be released after a completed drain.
	if err := st.Append(&jobstore.Event{Type: jobstore.Submitted, Job: "x"}); err != walstore.ErrClosed {
		t.Fatalf("store append after drained Shutdown = %v, want ErrClosed", err)
	}
}

// TestConcurrentSubmitThenReplay hammers the write-ahead path from many
// goroutines (the -race CI pass runs this), then replays the log on a
// fresh manager and checks nothing was lost or duplicated.
func TestConcurrentSubmitThenReplay(t *testing.T) {
	dir := t.TempDir()
	st := openWAL(t, dir)
	m1 := NewManager(Config{Workers: 4, QueueDepth: 256, Chunk: 4, SpillDir: dir, Store: st})
	const goroutines, perG = 8, 8
	var wg sync.WaitGroup
	ids := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j, err := m1.Submit("check", 8, []byte(fmt.Sprintf("p-%d-%d", g, i)),
					func(lo, hi int) ([][]byte, error) { return mkLines(lo, hi), nil })
				if err != nil {
					t.Error(err)
					return
				}
				ids[g] = append(ids[g], j.ID())
				waitDone(t, j)
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	m2 := durableManager(t, dir, 4)
	defer m2.Close()
	stats, err := m2.Recover(func(sub Submission) (Runner, error) {
		return func(lo, hi int) ([][]byte, error) { return mkLines(lo, hi), nil }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != goroutines*perG {
		t.Fatalf("served %d jobs, want %d (stats %+v)", stats.Served, goroutines*perG, stats)
	}
	for g := range ids {
		for _, id := range ids[g] {
			j, ok := m2.Get(id)
			if !ok {
				t.Fatalf("job %s lost across restart", id)
			}
			if got := readResults(t, j); got != expectedResults(8) {
				t.Fatalf("job %s results differ after replay", id)
			}
		}
	}
}
