// Package walstore is the local-disk jobstore.Store: a segmented NDJSON
// write-ahead log of job-lifecycle events plus out-of-band payload blobs.
// A Submitted event is fsynced before Append returns (the write-ahead
// guarantee), so a job accepted with a 202 survives the process; progress
// and terminal records are appended without sync — a crash loses at most
// the tail transitions, and replay then re-runs the job from its last
// durable chunk boundary.
//
// Layout under the store root:
//
//	LOCK                      single-writer flock (held while a process owns the store)
//	wal/seg-00000001.ndjson   log segments, one JSON record per line
//	payload/<jobID>.pay       submission payloads (runner reconstruction)
//
// One live process owns a store directory at a time: Open takes an
// exclusive flock on LOCK and fails with ErrLocked while another holder
// is alive. Process death releases the lock, so restart-after-crash — the
// reason this package exists — is never blocked by it.
//
// Each process opens a fresh segment (existing segments are never
// appended to, so a torn tail can only be the previous process's last
// line, which replay tolerates). Segments rotate at a size bound, and a
// prefix of fully-reaped segments — every job with records in them has a
// Removed marker — is deleted at open and after removals: retention is
// TTL-driven and roughly FIFO, so prefix compaction reclaims the log in
// practice. Payload blobs are deleted as soon as the job reaches a
// terminal state (they exist only to re-run interrupted jobs).
//
// All filesystem access goes through the faultfs seam (Options.FS,
// defaulting to the real filesystem), and directory entries are made
// durable the hard way: the wal and payload directories are fsynced after
// creation, after each new segment or payload blob, and after
// compaction deletes — a crash between a file's fsync and its parent
// directory's can otherwise lose the file wholesale. The crash-matrix
// tests in this package enumerate every filesystem operation of a
// lifecycle workload and pin the replay invariants at each crash point.
package walstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/jobs/jobstore"
)

// The open flag combinations the store uses.
const (
	osCreateTrunc = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	osCreateExcl  = os.O_CREATE | os.O_WRONLY | os.O_EXCL
)

// isNotExist matches not-found errors from any FS implementation.
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// DefaultSegmentBytes is the default segment rotation bound.
const DefaultSegmentBytes = 4 << 20

// Options parameterizes Open. The zero value selects the defaults:
// fsync on submission, 4MB segments, the real filesystem.
type Options struct {
	// NoSync disables the fsync of Submitted (and Finished) records —
	// faster submits at the cost of the write-ahead guarantee across
	// machine crashes (a process kill still loses nothing: the records are
	// written before Append returns). Directory fsyncs are skipped too;
	// they exist for the same machine-crash guarantee. Bench X12
	// quantifies the gap.
	NoSync bool
	// SegmentBytes rotates the active segment once it exceeds this size;
	// <=0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// NoLock skips the single-writer directory lock. The lock is what
	// keeps a second live process from replaying and re-running the
	// owner's in-flight jobs over a shared directory (and both from
	// sweeping each other's state); disable it only in crash-simulation
	// tests, where the "killed" predecessor is really still running in the
	// same process.
	NoLock bool
	// FS is the filesystem seam; nil selects the real filesystem
	// (faultfs.OS). Tests inject a faultfs.FaultFS to crash the store at
	// arbitrary operations.
	FS faultfs.FS
}

// ErrClosed rejects appends after Close.
var ErrClosed = errors.New("walstore: store is closed")

// ErrLocked reports that another live process owns the store directory.
// The flock is released when its owner exits — however it exits — so a
// crashed predecessor never wedges its successor; a live one refusing to
// share is the point (two managers over one log would re-run each other's
// jobs and sweep each other's state).
var ErrLocked = errors.New("walstore: store directory is locked by another process")

// record is the on-disk line form of an event: the event fields plus the
// out-of-band payload reference.
type record struct {
	jobstore.Event
	// PayloadRef is the payload blob's file name under payload/, recorded
	// on Submitted events that carried one.
	PayloadRef string `json:"payload,omitempty"`
}

// segment is one sealed (or active) log file and the set of jobs with
// records in it — the unit of compaction.
type segment struct {
	index int
	path  string
	jobs  map[string]struct{}
}

// Store is the write-ahead log. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	fs   faultfs.FS

	lock io.Closer // holds the single-writer flock; nil with NoLock

	mu       sync.Mutex
	segments []*segment // oldest first; the last one is active
	active   faultfs.File
	activeN  int64           // bytes written to the active segment
	damaged  bool            // active segment has torn bytes past activeN (failed self-heal)
	live     map[string]bool // job id -> submitted and not Removed
	replayed []record        // the on-disk history as of Open, for Replay
	closed   bool

	appends  int64
	syncs    int64
	badLines int64
	heals    int64
}

// Stats is a snapshot of the store's counters, for tests and operators.
type Stats struct {
	// Segments is the current log segment count (including the active one).
	Segments int `json:"segments"`
	// LiveJobs counts jobs whose history is retained (not Removed).
	LiveJobs int `json:"liveJobs"`
	// Appends and Syncs count records written and fsync calls issued
	// (file and directory fsyncs alike).
	Appends int64 `json:"appends"`
	Syncs   int64 `json:"syncs"`
	// BadLines counts undecodable log lines skipped during open (a torn
	// tail from a crashed process, or bytes torn by a failed append, are
	// the expected sources).
	BadLines int64 `json:"badLines"`
	// Heals counts failed appends the store repaired in place
	// (truncating the torn bytes) or sealed away (rotating to a fresh
	// segment) — the ENOSPC survival path.
	Heals int64 `json:"heals"`
}

// Open opens (creating if needed) the write-ahead log rooted at dir: it
// takes the single-writer lock (failing with ErrLocked when another live
// process owns the directory), scans the existing segments, compacts the
// fully-reaped prefix, removes orphaned payload blobs, and opens a fresh
// active segment.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	s := &Store{dir: dir, opts: opts, fs: opts.FS, live: map[string]bool{}}
	for _, sub := range []string{s.walDir(), s.payloadDir()} {
		if err := s.fs.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("walstore: creating %s: %w", sub, err)
		}
	}
	// Make the directory tree itself durable before anything is promised:
	// a crash must not be able to drop the wal/ or payload/ entries (and
	// with them every synced record) out from under a synced store.
	if err := s.syncDirs(filepath.Dir(dir), dir, s.walDir(), s.payloadDir()); err != nil {
		return nil, fmt.Errorf("walstore: syncing store directories: %w", err)
	}
	if !opts.NoLock {
		lock, err := s.fs.TryLock(filepath.Join(dir, "LOCK"))
		if err != nil {
			if errors.Is(err, faultfs.ErrLocked) {
				return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
			}
			return nil, fmt.Errorf("walstore: locking store directory: %w", err)
		}
		s.lock = lock
	}
	if err := s.scan(); err != nil {
		s.unlock()
		return nil, err
	}
	if s.compactLocked() {
		_ = s.syncDirs(s.walDir()) // best-effort: deletions re-run at next open
	}
	s.sweepPayloads()
	if err := s.rotateLocked(); err != nil {
		s.unlock()
		return nil, err
	}
	return s, nil
}

// syncDirs fsyncs the given directories unless NoSync opted out of
// durability altogether.
func (s *Store) syncDirs(dirs ...string) error {
	if s.opts.NoSync {
		return nil
	}
	if err := faultfs.SyncDirs(s.fs, dirs...); err != nil {
		return err
	}
	s.syncs += int64(len(dirs))
	return nil
}

// unlock releases the single-writer lock, if held.
func (s *Store) unlock() {
	if s.lock != nil {
		_ = s.lock.Close()
		s.lock = nil
	}
}

func (s *Store) walDir() string     { return filepath.Join(s.dir, "wal") }
func (s *Store) payloadDir() string { return filepath.Join(s.dir, "payload") }

// payloadPath is where a job's submission payload blob lives.
func (s *Store) payloadPath(job string) string {
	return filepath.Join(s.payloadDir(), job+".pay")
}

// segmentPath names the segment file with the given index.
func (s *Store) segmentPath(index int) string {
	return filepath.Join(s.walDir(), fmt.Sprintf("seg-%08d.ndjson", index))
}

// scan reads every existing segment in index order, building the
// live-job set, the per-segment job sets, and the replay buffer.
func (s *Store) scan() error {
	ents, err := s.fs.ReadDir(s.walDir())
	if err != nil {
		return fmt.Errorf("walstore: reading wal dir: %w", err)
	}
	var indices []int
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".ndjson") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".ndjson"))
		if err != nil {
			continue
		}
		indices = append(indices, n)
	}
	sort.Ints(indices)
	for _, idx := range indices {
		seg := &segment{index: idx, path: s.segmentPath(idx), jobs: map[string]struct{}{}}
		if err := s.scanSegment(seg); err != nil {
			return err
		}
		s.segments = append(s.segments, seg)
	}
	return nil
}

// scanSegment parses one segment's lines into the replay buffer.
// Undecodable lines (a torn tail from a killed process, or bytes a
// failed append left behind) are counted and skipped.
func (s *Store) scanSegment(seg *segment) error {
	f, err := s.fs.Open(seg.path)
	if err != nil {
		return fmt.Errorf("walstore: opening segment: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Job == "" {
			s.badLines++
			continue
		}
		seg.jobs[rec.Job] = struct{}{}
		switch rec.Type {
		case jobstore.Submitted:
			s.live[rec.Job] = true
		case jobstore.Removed:
			delete(s.live, rec.Job)
		}
		s.replayed = append(s.replayed, rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("walstore: scanning segment %s: %w", seg.path, err)
	}
	return nil
}

// Append records one event; see the jobstore.Store contract. Submitted
// records (and their payload blobs) are synced before return unless
// NoSync is set. A failed or short write never wedges the store: the
// torn bytes are truncated away, or the segment is sealed and a fresh
// one opened, so subsequent appends land intact (ENOSPC safety).
func (s *Store) Append(ev *jobstore.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.damaged {
		// A previous append failed and could not be healed in place; retry
		// the seal-and-rotate before accepting new records.
		if err := s.rotateLocked(); err != nil {
			return fmt.Errorf("walstore: store damaged and rotation failed: %w", err)
		}
		s.damaged = false
	}
	rec := record{Event: *ev}
	switch ev.Type {
	case jobstore.Submitted:
		if len(ev.Payload) > 0 {
			if err := s.writePayload(ev.Job, ev.Payload); err != nil {
				return err
			}
			rec.PayloadRef = ev.Job + ".pay"
		}
		s.live[ev.Job] = true
	case jobstore.Finished:
		// The payload exists to re-run an interrupted job; a terminal job
		// will never run again.
		_ = s.fs.Remove(s.payloadPath(ev.Job))
	case jobstore.Removed:
		_ = s.fs.Remove(s.payloadPath(ev.Job))
		delete(s.live, ev.Job)
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("walstore: encoding record: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.active.Write(line); err != nil {
		s.healLocked()
		s.dropFailedSubmission(ev)
		return fmt.Errorf("walstore: appending record: %w", err)
	}
	s.activeN += int64(len(line))
	s.appends++
	seg := s.segments[len(s.segments)-1]
	seg.jobs[ev.Job] = struct{}{}
	if !s.opts.NoSync && (ev.Type == jobstore.Submitted || ev.Type == jobstore.Finished) {
		if err := s.active.Sync(); err != nil {
			// The record's durability cannot be promised; roll it back so a
			// rejected submission cannot resurrect at replay.
			s.activeN -= int64(len(line))
			s.appends--
			s.healLocked()
			s.dropFailedSubmission(ev)
			return fmt.Errorf("walstore: syncing segment: %w", err)
		}
		s.syncs++
	}
	if ev.Type == jobstore.Removed {
		if s.compactLocked() {
			_ = s.syncDirs(s.walDir()) // best-effort: deletions re-run at next open
		}
	}
	if s.activeN >= s.opts.SegmentBytes {
		// The record is already committed (and, for synced types, durable):
		// a failed size rotation is housekeeping, not a lost append.
		// Reporting it would make the caller treat a durably-accepted
		// submission as rejected — which replay would then resurrect as a
		// ghost job. Mark the store damaged and let the next Append retry.
		if err := s.rotateLocked(); err != nil {
			s.damaged = true
		}
	}
	return nil
}

// dropFailedSubmission unwinds the in-memory effects of a Submitted
// append that could not be made durable: the job is not live (the
// submission is failing upstream) and its payload blob is retired so a
// partially persisted record cannot be reconstructed into a ghost job.
// Called with s.mu held.
func (s *Store) dropFailedSubmission(ev *jobstore.Event) {
	if ev.Type != jobstore.Submitted {
		return
	}
	delete(s.live, ev.Job)
	if len(ev.Payload) > 0 {
		_ = s.fs.Remove(s.payloadPath(ev.Job))
	}
}

// healLocked repairs the active segment after a failed append: the torn
// bytes past activeN are truncated away, or — when the truncate itself
// fails — the segment is sealed and a fresh one opened so the torn bytes
// can only ever surface as BadLines at the next replay. If even rotation
// fails the store is marked damaged and the next Append retries. Called
// with s.mu held.
func (s *Store) healLocked() {
	s.heals++
	if s.active != nil {
		terr := s.active.Truncate(s.activeN)
		if terr == nil {
			if _, serr := s.active.Seek(s.activeN, io.SeekStart); serr == nil {
				return // healed in place: the segment ends at the last good record
			}
		}
	}
	if err := s.rotateLocked(); err != nil {
		s.damaged = true
	}
}

// writePayload persists one submission payload blob (synced unless
// NoSync, along with its directory entry), called with s.mu held. A
// failed write removes the partial blob: the submission is failing, and
// a torn blob must not be what a later replay reconstructs the job from.
func (s *Store) writePayload(job string, payload []byte) error {
	path := s.payloadPath(job)
	fail := func(f faultfs.File, err error, what string) error {
		if f != nil {
			_ = f.Close()
		}
		_ = s.fs.Remove(path)
		return fmt.Errorf("walstore: %s payload blob: %w", what, err)
	}
	f, err := s.fs.OpenFile(path, osCreateTrunc, 0o644)
	if err != nil {
		return fmt.Errorf("walstore: creating payload blob: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		return fail(f, err, "writing")
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			return fail(f, err, "syncing")
		}
		s.syncs++
	}
	if err := f.Close(); err != nil {
		return fail(nil, err, "closing")
	}
	// The blob is synced but its directory entry is not: without this a
	// crash can lose the whole file and with it the job it reconstructs.
	if err := s.syncDirs(s.payloadDir()); err != nil {
		return fail(nil, err, "syncing directory of")
	}
	return nil
}

// rotateLocked seals the active segment (if any) and opens the next one,
// making the new segment's directory entry durable before any record is
// promised to it. Called with s.mu held.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		// Seal fully durable: records appended since the last sync (and the
		// heal truncations) go to disk with the segment.
		if !s.opts.NoSync {
			if err := s.active.Sync(); err == nil {
				s.syncs++
			}
		}
		// A close error is not actionable: the handle is spent either way,
		// and replay tolerates whatever tail the sealed segment kept.
		// Failing the rotation here would wedge the damaged-retry path on a
		// handle that can never close twice.
		_ = s.active.Close()
		s.active = nil
	}
	next := 1
	if len(s.segments) > 0 {
		next = s.segments[len(s.segments)-1].index + 1
	}
	seg := &segment{index: next, path: s.segmentPath(next), jobs: map[string]struct{}{}}
	f, err := s.fs.OpenFile(seg.path, osCreateExcl, 0o644)
	if err != nil {
		return fmt.Errorf("walstore: creating segment: %w", err)
	}
	if err := s.syncDirs(s.walDir()); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(seg.path)
		return fmt.Errorf("walstore: syncing wal dir: %w", err)
	}
	s.segments = append(s.segments, seg)
	s.active = f
	s.activeN = 0
	return nil
}

// compactLocked deletes the longest prefix of sealed segments whose jobs
// are all Removed, reporting whether it deleted any (the caller owns the
// directory sync). Oldest-first order is what makes this safe: a job's
// Submitted record always precedes its Removed marker, so the marker can
// only be deleted together with — or after — every record it retires.
// Called with s.mu held.
func (s *Store) compactLocked() bool {
	removed := false
	for len(s.segments) > 0 {
		seg := s.segments[0]
		if s.active != nil && seg == s.segments[len(s.segments)-1] {
			return removed // never compact the active segment
		}
		for job := range seg.jobs {
			if s.live[job] {
				return removed
			}
		}
		if err := s.fs.Remove(seg.path); err != nil && !isNotExist(err) {
			return removed
		}
		removed = true
		s.segments = s.segments[1:]
	}
	return removed
}

// sweepPayloads removes payload blobs that no live job references
// (orphans of jobs finished or removed by a previous process).
func (s *Store) sweepPayloads() {
	ents, err := s.fs.ReadDir(s.payloadDir())
	if err != nil {
		return
	}
	for _, ent := range ents {
		job := strings.TrimSuffix(ent.Name(), ".pay")
		if job == ent.Name() || s.live[job] {
			continue
		}
		_ = s.fs.Remove(filepath.Join(s.payloadDir(), ent.Name()))
	}
}

// Replay invokes fn for every live job's events as of Open, in append
// order, loading Submitted payload blobs back into the events.
func (s *Store) Replay(fn func(ev *jobstore.Event) error) error {
	s.mu.Lock()
	records := make([]record, 0, len(s.replayed))
	for _, rec := range s.replayed {
		if s.live[rec.Job] {
			records = append(records, rec)
		}
	}
	s.mu.Unlock()
	for i := range records {
		rec := &records[i]
		if rec.Type == jobstore.Submitted && rec.PayloadRef != "" {
			data, err := s.fs.ReadFile(filepath.Join(s.payloadDir(), rec.PayloadRef))
			if err == nil {
				rec.Payload = data
			}
			// A missing blob is not fatal here: the manager fails the one
			// job it cannot reconstruct, not the whole recovery.
		}
		if err := fn(&rec.Event); err != nil {
			return err
		}
	}
	return nil
}

// Durable reports true: the log survives the process.
func (s *Store) Durable() bool { return true }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Segments: len(s.segments),
		LiveJobs: len(s.live),
		Appends:  s.appends,
		Syncs:    s.syncs,
		BadLines: s.badLines,
		Heals:    s.heals,
	}
}

// Close seals the active segment and releases the single-writer lock.
// Idempotent; appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.active != nil {
		err = s.active.Close()
		s.active = nil
	}
	s.unlock()
	return err
}
