package walstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/jobs/jobstore"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func replayAll(t *testing.T, s *Store) []jobstore.Event {
	t.Helper()
	var out []jobstore.Event
	if err := s.Replay(func(ev *jobstore.Event) error {
		e := *ev
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	now := time.Now().UTC().Truncate(time.Millisecond)
	events := []jobstore.Event{
		{Type: jobstore.Submitted, Job: "a", Time: now, Kind: "check", Total: 10, Chunk: 4, Payload: []byte("payload-a")},
		{Type: jobstore.Started, Job: "a", Time: now},
		{Type: jobstore.Progress, Job: "a", Time: now, Done: 4, ResultBytes: 40},
		{Type: jobstore.Submitted, Job: "b", Time: now, Kind: "complete", Total: 2, Chunk: 4, Payload: []byte("payload-b")},
		{Type: jobstore.Finished, Job: "a", Time: now, Done: 10, ResultBytes: 100, State: "done"},
	}
	for i := range events {
		if err := s.Append(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	got := replayAll(t, r)
	if len(got) != len(events) {
		t.Fatalf("replayed %d events, want %d", len(got), len(events))
	}
	for i, ev := range got {
		want := events[i]
		if ev.Type != want.Type || ev.Job != want.Job || ev.Kind != want.Kind ||
			ev.Total != want.Total || ev.Chunk != want.Chunk || ev.Done != want.Done ||
			ev.ResultBytes != want.ResultBytes || ev.State != want.State {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want)
		}
	}
	// Job b is live and interrupted: its payload must come back. Job a is
	// finished: its blob was deleted at the Finished append.
	if !bytes.Equal(got[3].Payload, []byte("payload-b")) {
		t.Fatalf("job b payload = %q", got[3].Payload)
	}
	if len(got[0].Payload) != 0 {
		t.Fatalf("finished job a still has a payload blob: %q", got[0].Payload)
	}
}

func TestPayloadIsOutOfBand(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	payload := []byte(`{"docs":["<a/>"]}`)
	if err := s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: "j1", Kind: "check", Total: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	// The blob lives under payload/, and the segment lines never embed it.
	blob, err := os.ReadFile(filepath.Join(dir, "payload", "j1.pay"))
	if err != nil || !bytes.Equal(blob, payload) {
		t.Fatalf("payload blob = %q, %v", blob, err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("wal dir: %v", err)
	}
	for _, ent := range ents {
		seg, err := os.ReadFile(filepath.Join(dir, "wal", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(seg, []byte("<a/>")) {
			t.Fatalf("segment %s embeds the payload", ent.Name())
		}
	}
	// Terminal state retires the blob.
	if err := s.Append(&jobstore.Event{Type: jobstore.Finished, Job: "j1", State: "done"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "payload", "j1.pay")); !os.IsNotExist(err) {
		t.Fatalf("payload blob survived the terminal state: %v", err)
	}
}

func TestSegmentationAndPrefixCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every append rotates.
	s := mustOpen(t, dir, Options{NoSync: true, SegmentBytes: 1})
	jobs := []string{"a", "b", "c"}
	for _, j := range jobs {
		if err := s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: j, Kind: "check", Total: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(&jobstore.Event{Type: jobstore.Finished, Job: j, State: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	// Removing a suffix job does not unblock the prefix (job a is live in
	// the oldest segment)...
	if err := s.Append(&jobstore.Event{Type: jobstore.Removed, Job: "c"}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LiveJobs != 2 || st.Segments < 3 {
		t.Fatalf("after removing c: %+v", st)
	}
	// ...but removing oldest-first compacts the whole retired prefix.
	for _, j := range []string{"a", "b"} {
		if err := s.Append(&jobstore.Event{Type: jobstore.Removed, Job: j}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LiveJobs != 0 {
		t.Fatalf("live jobs = %d, want 0", st.LiveJobs)
	}
	if st.Segments > 2 {
		t.Fatalf("fully-retired log kept %d segments", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A reopen compacts the rest and replays nothing.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := replayAll(t, r); len(got) != 0 {
		t.Fatalf("removed jobs replayed: %+v", got)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true})
	if err := s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: "a", Kind: "check", Total: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a half-written JSON line at the tail of
	// the newest segment.
	ents, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("wal dir: %v", err)
	}
	last := filepath.Join(dir, "wal", ents[len(ents)-1].Name())
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"progress","job":"a","do`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	got := replayAll(t, r)
	if len(got) != 1 || got[0].Type != jobstore.Submitted || got[0].Job != "a" {
		t.Fatalf("replay after torn tail = %+v", got)
	}
	if st := r.Stats(); st.BadLines != 1 {
		t.Fatalf("bad lines = %d, want 1", st.BadLines)
	}
}

func TestSyncAccounting(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, filepath.Join(dir, "sync"), Options{})
	if err := s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: "a", Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&jobstore.Event{Type: jobstore.Progress, Job: "a", Done: 1}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Syncs < 2 { // payload blob + submitted record
		t.Fatalf("syncs = %d, want >= 2", st.Syncs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ns := mustOpen(t, filepath.Join(dir, "nosync"), Options{NoSync: true})
	defer ns.Close()
	if err := ns.Append(&jobstore.Event{Type: jobstore.Submitted, Job: "a", Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	if st := ns.Stats(); st.Syncs != 0 {
		t.Fatalf("NoSync store issued %d syncs", st.Syncs)
	}
}

func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	// A second live opener is refused — two managers over one log would
	// re-run each other's jobs.
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	// NoLock is the crash-simulation escape hatch.
	shared := mustOpen(t, dir, Options{NoLock: true})
	if err := shared.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock; a successor opens cleanly.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: "a"}); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if !s.Durable() {
		t.Fatal("walstore must report durable")
	}
}
