package walstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/faultfs/harness"
	"repro/internal/jobs/jobstore"
)

// The crash matrix for the WAL itself: a full multi-job lifecycle —
// submissions with payloads, progress, terminal records, removal,
// compaction, segment rotation — is crashed at every filesystem
// operation, recovered, and reopened. The invariants checked at every
// point:
//
//   - Reopen never fails and never wedges: the store accepts appends again.
//   - Per job, the replayed events are a prefix of the appended sequence —
//     the log can lose an unsynced suffix, never reorder or fabricate.
//   - Events the store acknowledged *synced* (Submitted, Finished) are
//     never lost; a removed job either stays gone or comes back whole.
//   - A replayed submission's payload is byte-equal to what was stored,
//     or absent (the manager then fails that one job) — never torn.

// attempt is one Append the workload issued: the event plus whether the
// store acknowledged it.
type attempt struct {
	ev    jobstore.Event
	acked bool
}

// lifecycleWorkload drives the multi-job lifecycle against a store over
// fsys, recording every attempted append. Tiny segments force rotations
// and removal-driven prefix compaction mid-run.
func lifecycleWorkload(fsys *faultfs.FaultFS, attempts *[]attempt) error {
	s, err := Open("store", Options{FS: fsys, SegmentBytes: 200})
	if err != nil {
		return err
	}
	defer s.Close()
	events := []jobstore.Event{
		{Type: jobstore.Submitted, Job: "a", Kind: "check", Total: 8, Chunk: 4, Payload: []byte("payload-alpha")},
		{Type: jobstore.Started, Job: "a"},
		{Type: jobstore.Progress, Job: "a", Done: 4, ResultBytes: 40},
		{Type: jobstore.Submitted, Job: "b", Kind: "complete", Total: 4, Chunk: 4, Payload: []byte("payload-beta")},
		{Type: jobstore.Progress, Job: "a", Done: 8, ResultBytes: 80},
		{Type: jobstore.Finished, Job: "a", Done: 8, ResultBytes: 80, State: "done"},
		{Type: jobstore.Started, Job: "b"},
		{Type: jobstore.Removed, Job: "a"},
		{Type: jobstore.Progress, Job: "b", Done: 4, ResultBytes: 44},
		{Type: jobstore.Finished, Job: "b", Done: 4, ResultBytes: 44, State: "done"},
		{Type: jobstore.Submitted, Job: "c", Kind: "check", Total: 2, Chunk: 2, Payload: []byte("payload-gamma")},
		{Type: jobstore.Removed, Job: "b"},
		{Type: jobstore.Started, Job: "c"},
		{Type: jobstore.Progress, Job: "c", Done: 2, ResultBytes: 20},
	}
	for i := range events {
		ev := events[i]
		err := s.Append(&ev)
		*attempts = append(*attempts, attempt{ev: events[i], acked: err == nil})
		if err != nil {
			return err
		}
	}
	return s.Close()
}

// payloads is the byte content each job's submission carried.
var payloads = map[string][]byte{
	"a": []byte("payload-alpha"),
	"b": []byte("payload-beta"),
	"c": []byte("payload-gamma"),
}

// sameEvent compares the replay-visible fields of two events.
func sameEvent(got jobstore.Event, want jobstore.Event) bool {
	return got.Type == want.Type && got.Job == want.Job && got.Kind == want.Kind &&
		got.Total == want.Total && got.Chunk == want.Chunk && got.Done == want.Done &&
		got.ResultBytes == want.ResultBytes && got.State == want.State
}

// verifyLifecycle reopens the recovered image and checks the invariants
// against the recorded attempts.
func verifyLifecycle(fsys *faultfs.FaultFS, attempts []attempt) error {
	s, err := Open("store", Options{FS: fsys})
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	defer s.Close()
	replayed := map[string][]jobstore.Event{}
	if err := s.Replay(func(ev *jobstore.Event) error {
		replayed[ev.Job] = append(replayed[ev.Job], *ev)
		return nil
	}); err != nil {
		return fmt.Errorf("replay after crash: %w", err)
	}
	// Per-job attempted history (Removed markers never replay) plus the
	// index of the last event whose ack implied an fsync.
	attempted := map[string][]jobstore.Event{}
	removalAttempted := map[string]bool{}
	lastSynced := map[string]int{}
	for _, a := range attempts {
		if a.ev.Type == jobstore.Removed {
			removalAttempted[a.ev.Job] = true
			continue
		}
		attempted[a.ev.Job] = append(attempted[a.ev.Job], a.ev)
		if a.acked && (a.ev.Type == jobstore.Submitted || a.ev.Type == jobstore.Finished) {
			lastSynced[a.ev.Job] = len(attempted[a.ev.Job])
		}
	}
	for job, got := range replayed {
		want := attempted[job]
		if len(got) > len(want) {
			return fmt.Errorf("job %s replayed %d events, only %d were ever attempted", job, len(got), len(want))
		}
		for i := range got {
			if !sameEvent(got[i], want[i]) {
				return fmt.Errorf("job %s event %d = %+v, want %+v (replay reordered or fabricated)", job, i, got[i], want[i])
			}
			if got[i].Type == jobstore.Submitted && len(got[i].Payload) > 0 &&
				!bytes.Equal(got[i].Payload, payloads[job]) {
				return fmt.Errorf("job %s replayed a torn payload: %q", job, got[i].Payload)
			}
		}
	}
	for job, n := range lastSynced {
		if removalAttempted[job] {
			continue // removal may or may not have persisted; absence is legal
		}
		if len(replayed[job]) < n {
			return fmt.Errorf("job %s lost synced events: replayed %d, synced through %d", job, len(replayed[job]), n)
		}
	}
	// The reopened store must accept and persist new work: the one
	// invariant every crash point shares is "the WAL never wedges".
	probe := jobstore.Event{Type: jobstore.Submitted, Job: "probe", Total: 1, Payload: []byte("probe-payload")}
	if err := s.Append(&probe); err != nil {
		return fmt.Errorf("append after recovery: %w", err)
	}
	return nil
}

// lifecycleRound builds one fresh crash-matrix round.
func lifecycleRound() harness.Round {
	var attempts []attempt
	return harness.Round{
		Workload: func(fsys *faultfs.FaultFS) error { return lifecycleWorkload(fsys, &attempts) },
		Verify:   func(fsys *faultfs.FaultFS) error { return verifyLifecycle(fsys, attempts) },
	}
}

// TestCrashMatrixLifecycle crashes the lifecycle workload at every
// filesystem operation under per-entry coin-flip directory recovery.
func TestCrashMatrixLifecycle(t *testing.T) {
	points := harness.Matrix(t, harness.Options{Package: "./internal/jobs/walstore"}, lifecycleRound)
	t.Logf("crash points exercised: %d", points)
	if points < 100 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}

// TestCrashMatrixDropUnsyncedDirs is the maximally adversarial variant:
// every directory entry not pinned by an explicit parent-directory fsync
// is dropped at recovery. This is the regression test for the
// fsync-the-parent calls on payload blobs, fresh segments and compaction
// deletes — remove any of them and this matrix fails.
func TestCrashMatrixDropUnsyncedDirs(t *testing.T) {
	points := harness.Matrix(t, harness.Options{
		Package:          "./internal/jobs/walstore",
		DropUnsyncedDirs: true,
	}, lifecycleRound)
	t.Logf("crash points exercised: %d", points)
	if points < 100 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}

// TestENOSPCMatrix sweeps a write-failure injector across every operation
// index of the lifecycle: plain ENOSPC, short writes (a prefix of the
// buffer lands before the failure), and sticky full-disk. After the disk
// "gets space back" (ClearFaults) the store must accept appends again,
// and a clean reopen must replay exactly the acknowledged events — failed
// appends heal away (in place or by sealing the segment), surfacing as at
// most BadLines, never as replayed records.
func TestENOSPCMatrix(t *testing.T) {
	variants := []struct {
		name   string
		short  bool
		sticky bool
	}{
		{"enospc", false, false},
		{"short-write", true, false},
		{"sticky", false, true},
	}
	// Golden run bounds the op range.
	golden := faultfs.New(faultfs.NoFaults(1))
	var goldenAttempts []attempt
	if err := lifecycleWorkload(golden, &goldenAttempts); err != nil {
		t.Fatalf("golden workload: %v", err)
	}
	n := golden.OpCount()
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			stride := int64(1)
			if !harness.Full() {
				stride = 3 // bounded sweep on push CI; nightly runs every index
			}
			for op := int64(0); op < n; op += stride {
				plan := faultfs.NoFaults(1)
				plan.ENOSPCAtOp = op
				plan.ShortWrites = v.short
				plan.ENOSPCSticky = v.sticky
				fsys := faultfs.New(plan)
				var attempts []attempt
				failedAt := -1
				werr := lifecycleWorkload(fsys, &attempts)
				for i, a := range attempts {
					if !a.acked {
						failedAt = i
						break
					}
				}
				if werr != nil && failedAt < 0 {
					t.Fatalf("op %d: workload failed outside Append: %v", op, werr)
				}
				// Space comes back; the store (reopened fresh, as the same
				// process would retry) must work again.
				fsys.ClearFaults()
				s, err := Open("store", Options{FS: fsys, NoLock: true})
				if err != nil {
					t.Fatalf("op %d (%s): reopen after ENOSPC: %v", op, v.name, err)
				}
				acked := map[string][]jobstore.Event{}
				removedAcked := map[string]bool{}
				for _, a := range attempts {
					if !a.acked {
						continue
					}
					if a.ev.Type == jobstore.Removed {
						removedAcked[a.ev.Job] = true
						continue
					}
					acked[a.ev.Job] = append(acked[a.ev.Job], a.ev)
				}
				replayed := map[string][]jobstore.Event{}
				if err := s.Replay(func(ev *jobstore.Event) error {
					replayed[ev.Job] = append(replayed[ev.Job], *ev)
					return nil
				}); err != nil {
					t.Fatalf("op %d (%s): replay: %v", op, v.name, err)
				}
				for job, want := range acked {
					if removedAcked[job] {
						want = nil // removal acked with no crash: the job is gone
					}
					got := replayed[job]
					if len(got) != len(want) {
						t.Fatalf("op %d (%s): job %s replayed %d events, want %d\nrepro: go test -run TestENOSPCMatrix/%s ./internal/jobs/walstore (ENOSPCAtOp=%d)",
							op, v.name, job, len(got), len(want), v.name, op)
					}
					for i := range got {
						if !sameEvent(got[i], want[i]) {
							t.Fatalf("op %d (%s): job %s event %d = %+v, want %+v", op, v.name, job, i, got[i], want[i])
						}
					}
				}
				probe := jobstore.Event{Type: jobstore.Submitted, Job: "probe", Total: 1}
				if err := s.Append(&probe); err != nil {
					t.Fatalf("op %d (%s): store wedged after ENOSPC recovery: %v", op, v.name, err)
				}
				if err := s.Close(); err != nil {
					t.Fatalf("op %d (%s): close: %v", op, v.name, err)
				}
			}
		})
	}
}

// TestSyncFailureRollsBackSubmission sweeps an fsync-failure injector
// across the op range: a Submitted append whose sync fails must be
// rolled back — reported to the caller AND absent from replay — so a
// submission rejected upstream can never resurrect as a ghost job.
func TestSyncFailureRollsBackSubmission(t *testing.T) {
	golden := faultfs.New(faultfs.NoFaults(1))
	var goldenAttempts []attempt
	if err := lifecycleWorkload(golden, &goldenAttempts); err != nil {
		t.Fatalf("golden workload: %v", err)
	}
	n := golden.OpCount()
	stride := int64(1)
	if !harness.Full() {
		stride = 3
	}
	for op := int64(0); op < n; op += stride {
		plan := faultfs.NoFaults(1)
		plan.FailSyncAtOp = op
		fsys := faultfs.New(plan)
		var attempts []attempt
		_ = lifecycleWorkload(fsys, &attempts) // a failed sync fails one append (or Open)
		fsys.ClearFaults()
		s, err := Open("store", Options{FS: fsys, NoLock: true})
		if err != nil {
			t.Fatalf("op %d: reopen after sync failure: %v", op, err)
		}
		nacked := map[string]bool{}
		for _, a := range attempts {
			if !a.acked && a.ev.Type == jobstore.Submitted {
				nacked[a.ev.Job] = true
			}
		}
		if err := s.Replay(func(ev *jobstore.Event) error {
			if ev.Type == jobstore.Submitted && nacked[ev.Job] {
				return fmt.Errorf("ghost job: rejected submission %s replayed", ev.Job)
			}
			return nil
		}); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("op %d: close: %v", op, err)
		}
	}
}

// TestConcurrentAppendersCrash is the concurrent-writer harness mode:
// several goroutines drive independent job lifecycles through one store
// while a crash is planted mid-stream. After recovery, per-job histories
// must still be intact prefixes — concurrency must not let one writer's
// torn bytes corrupt another's records. The -race CI pass runs this.
func TestConcurrentAppendersCrash(t *testing.T) {
	const writers, perWriter = 4, 6
	for _, seed := range harness.Seeds(3) {
		for _, crashOp := range []int64{25, 60, 110, 180, 260} {
			fsys := faultfs.New(faultfs.CrashPlan(seed, crashOp))
			s, err := Open("store", Options{FS: fsys, SegmentBytes: 300})
			if err != nil {
				if fsys.Crashed() {
					continue // crashed inside Open; nothing further to check
				}
				t.Fatalf("seed %d crash %d: open: %v", seed, crashOp, err)
			}
			var wg sync.WaitGroup
			acked := make([]map[string]int, writers) // job -> events acked
			for w := 0; w < writers; w++ {
				w := w
				acked[w] = map[string]int{}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						job := fmt.Sprintf("w%d-j%d", w, i)
						seqs := []jobstore.Event{
							{Type: jobstore.Submitted, Job: job, Total: 4, Chunk: 2, Payload: []byte("pay-" + job)},
							{Type: jobstore.Progress, Job: job, Done: 2, ResultBytes: 20},
							{Type: jobstore.Finished, Job: job, Done: 4, ResultBytes: 40, State: "done"},
						}
						for k := range seqs {
							ev := seqs[k]
							if err := s.Append(&ev); err != nil {
								return // crashed (or healing failed under crash): stop this writer
							}
							acked[w][job]++
						}
					}
				}()
			}
			wg.Wait()
			_ = s.Close()
			fsys.Recover()
			r, err := Open("store", Options{FS: fsys})
			if err != nil {
				t.Fatalf("seed %d crash %d: reopen: %v", seed, crashOp, err)
			}
			counts := map[string]int{}
			if err := r.Replay(func(ev *jobstore.Event) error {
				counts[ev.Job]++
				if ev.Type == jobstore.Submitted && len(ev.Payload) > 0 &&
					!bytes.Equal(ev.Payload, []byte("pay-"+ev.Job)) {
					return fmt.Errorf("job %s replayed torn payload %q", ev.Job, ev.Payload)
				}
				return nil
			}); err != nil {
				t.Fatalf("seed %d crash %d: %v", seed, crashOp, err)
			}
			for job, n := range counts {
				if n > 3 {
					t.Fatalf("seed %d crash %d: job %s replayed %d events, max 3 ever appended", seed, crashOp, job, n)
				}
			}
			_ = r.Close()
		}
	}
}
